package vpindex_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	vpindex "repro"
	"repro/internal/model"
)

// bfReporter adapts the brute-force oracle index to the Reporter surface so
// a legacy Monitor over it can mirror the Store's subscription engine.
type bfReporter struct{ *model.BruteForce }

func (r bfReporter) Report(o model.Object) error {
	if _, ok := r.BruteForce.Get(o.ID); ok {
		if err := r.BruteForce.Delete(model.Object{ID: o.ID}); err != nil {
			return err
		}
	}
	return r.BruteForce.Insert(o)
}

func (r bfReporter) Remove(id model.ObjectID) error {
	return r.BruteForce.Delete(model.Object{ID: id})
}

// drainEvents empties the Store's event channel without blocking. The
// oracle driver is single-threaded and every verb emits its batch before
// returning, so a non-blocking drain right after a verb collects exactly
// that verb's deltas.
func drainEvents(ch <-chan vpindex.MonitorEvent) []vpindex.MonitorEvent {
	var out []vpindex.MonitorEvent
	for {
		select {
		case e := <-ch:
			out = append(out, e)
		default:
			return out
		}
	}
}

// canonEvents sorts an event slice by every field so two streams can be
// compared step-by-step regardless of intra-batch grouping.
func canonEvents(evs []vpindex.MonitorEvent) []vpindex.MonitorEvent {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Sub != evs[j].Sub {
			return evs[i].Sub < evs[j].Sub
		}
		if evs[i].ID != evs[j].ID {
			return evs[i].ID < evs[j].ID
		}
		if evs[i].Kind != evs[j].Kind {
			return evs[i].Kind < evs[j].Kind
		}
		return evs[i].T < evs[j].T
	})
	return evs
}

func eventsEqual(t *testing.T, step int, verb string, got, want []vpindex.MonitorEvent) {
	t.Helper()
	got, want = canonEvents(got), canonEvents(want)
	if len(got) != len(want) {
		t.Fatalf("step %d (%s): %d events vs oracle %d\n got: %v\nwant: %v",
			step, verb, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("step %d (%s): event %d differs: %+v vs oracle %+v",
				step, verb, i, got[i], want[i])
		}
	}
}

// TestStoreSubscriptionDifferentialOracle is the brute-force differential
// oracle for Store-native subscriptions: a single-threaded random script of
// reports, uniform-time batches, removes, subscribes, unsubscribes and
// refreshes is mirrored into a BruteForce-backed legacy Monitor, and after
// every step the Store's event stream (drained from Events()) must match
// the monitor's returned deltas exactly, and all result sets must agree.
// The whole run races a background goroutine firing manual repartition
// swaps, so under -race this also proves the engine's evaluation state
// survives epoch swaps untouched.
func TestStoreSubscriptionDifferentialOracle(t *testing.T) {
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithShards(4),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(testSample(800, 9)),
		vpindex.WithTauRefreshInterval(300),
		vpindex.WithSeed(5),
		vpindex.WithEventBuffer(1<<16, vpindex.BlockOnFull),
	)
	if err != nil {
		t.Fatal(err)
	}
	mirror := vpindex.NewMonitor(bfReporter{model.NewBruteForce()})
	ch := store.Events()

	// Background repartition swaps racing the whole script.
	var (
		stop  atomic.Bool
		swaps sync.WaitGroup
	)
	swaps.Add(1)
	go func() {
		defer swaps.Done()
		for !stop.Load() {
			if err := store.Repartition(); err != nil {
				t.Errorf("repartition: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	rng := rand.New(rand.NewSource(1234))
	newSub := func() vpindex.Subscription {
		return vpindex.Subscription{
			Query: vpindex.SliceQuery(vpindex.Circle{
				C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
				R: 1200 + rng.Float64()*2200,
			}, 0, 0),
			Horizon: rng.Float64() * 30,
			Window:  float64(rng.Intn(2)) * rng.Float64() * 10,
		}
	}
	live := []vpindex.SubscriptionID{}
	now := 0.0
	object := func() vpindex.Object {
		o := testObject(1+rng.Intn(250), rng)
		o.T = now
		return o
	}

	checkResults := func(step int) {
		for _, id := range live {
			got, err := store.SubscriptionResults(id)
			if err != nil {
				t.Fatalf("step %d: results %d: %v", step, id, err)
			}
			want := mirror.Results(id)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("step %d: sub %d result set %v vs oracle %v", step, id, got, want)
			}
		}
	}

	// Seed a few subscriptions before traffic.
	for i := 0; i < 4; i++ {
		s := newSub()
		sid, seed, err := store.Subscribe(s, now)
		if err != nil {
			t.Fatal(err)
		}
		mid, mseed, err := mirror.Subscribe(s, now)
		if err != nil {
			t.Fatal(err)
		}
		if sid != mid {
			t.Fatalf("subscription ids diverged: %d vs %d", sid, mid)
		}
		live = append(live, sid)
		eventsEqual(t, -i, "subscribe-seed", seed, mseed)
		eventsEqual(t, -i, "subscribe-stream", drainEvents(ch), mseed)
	}

	for step := 0; step < 1200; step++ {
		now += 0.25
		switch r := rng.Intn(20); {
		case r < 10: // single report
			o := object()
			if err := store.Report(o); err != nil {
				t.Fatalf("step %d report: %v", step, err)
			}
			mevs, err := mirror.ProcessReport(o)
			if err != nil {
				t.Fatalf("step %d mirror report: %v", step, err)
			}
			eventsEqual(t, step, "report", drainEvents(ch), mevs)
		case r < 13: // uniform-time batch
			batch := make([]vpindex.Object, 0, 12)
			seen := map[vpindex.ObjectID]bool{}
			for i := 0; i < 12; i++ {
				o := object()
				// One record per ID per batch keeps the mirror's
				// per-report evaluation equivalent to the Store's
				// batch-instant evaluation.
				if seen[o.ID] {
					continue
				}
				seen[o.ID] = true
				batch = append(batch, o)
			}
			if err := store.ReportBatch(batch); err != nil {
				t.Fatalf("step %d batch: %v", step, err)
			}
			var mevs []vpindex.MonitorEvent
			for _, o := range batch {
				evs, err := mirror.ProcessReport(o)
				if err != nil {
					t.Fatalf("step %d mirror batch: %v", step, err)
				}
				mevs = append(mevs, evs...)
			}
			eventsEqual(t, step, "batch", drainEvents(ch), mevs)
		case r < 16: // remove
			id := vpindex.ObjectID(1 + rng.Intn(250))
			serr := store.Remove(id)
			mevs, merr := mirror.ProcessRemove(id)
			if (serr == nil) != (merr == nil) {
				t.Fatalf("step %d remove %d: store err %v, oracle err %v", step, id, serr, merr)
			}
			if serr != nil && !errors.Is(serr, vpindex.ErrNotFound) {
				t.Fatalf("step %d remove: %v", step, serr)
			}
			eventsEqual(t, step, "remove", drainEvents(ch), mevs)
		case r < 17 && len(live) < 10: // subscribe
			s := newSub()
			sid, seed, err := store.Subscribe(s, now)
			if err != nil {
				t.Fatalf("step %d subscribe: %v", step, err)
			}
			mid, mseed, err := mirror.Subscribe(s, now)
			if err != nil {
				t.Fatalf("step %d mirror subscribe: %v", step, err)
			}
			if sid != mid {
				t.Fatalf("step %d: subscription ids diverged: %d vs %d", step, sid, mid)
			}
			live = append(live, sid)
			eventsEqual(t, step, "subscribe-seed", seed, mseed)
			eventsEqual(t, step, "subscribe-stream", drainEvents(ch), mseed)
		case r < 18 && len(live) > 2: // unsubscribe
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := store.Unsubscribe(id); err != nil {
				t.Fatalf("step %d unsubscribe: %v", step, err)
			}
			mirror.Unsubscribe(id)
			if evs := drainEvents(ch); len(evs) != 0 {
				t.Fatalf("step %d: unsubscribe emitted %v", step, evs)
			}
			if _, err := store.SubscriptionResults(id); !errors.Is(err, vpindex.ErrNotFound) {
				t.Fatalf("step %d: results after unsubscribe: %v", step, err)
			}
		default: // refresh
			sevs, err := store.RefreshSubscriptions(now)
			if err != nil {
				t.Fatalf("step %d refresh: %v", step, err)
			}
			mevs, err := mirror.Refresh(now)
			if err != nil {
				t.Fatalf("step %d mirror refresh: %v", step, err)
			}
			eventsEqual(t, step, "refresh", sevs, mevs)
			eventsEqual(t, step, "refresh-stream", drainEvents(ch), mevs)
		}
		if step%100 == 99 {
			checkResults(step)
		}
	}
	stop.Store(true)
	swaps.Wait()

	if n := store.Stats().Repartitions; n < 1 {
		t.Fatalf("no repartition swap raced the oracle (got %d)", n)
	}
	// Final refresh on both sides, then a last full comparison.
	now += 1
	sevs, err := store.RefreshSubscriptions(now)
	if err != nil {
		t.Fatal(err)
	}
	mevs, err := mirror.Refresh(now)
	if err != nil {
		t.Fatal(err)
	}
	eventsEqual(t, -1, "final refresh", sevs, mevs)
	drainEvents(ch)
	checkResults(-1)
}

// TestStoreSubscribeValidation pins the up-front validation and typed
// errors of the Store subscription surface.
func TestStoreSubscribeValidation(t *testing.T) {
	store, err := vpindex.Open(vpindex.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Subscribe(vpindex.Subscription{Horizon: -1}, 0); err == nil {
		t.Fatal("negative horizon accepted")
	}
	bad := vpindex.Subscription{Query: vpindex.RangeQuery{Circle: vpindex.Circle{R: -3}}}
	if _, _, err := store.Subscribe(bad, 0); err == nil {
		t.Fatal("negative radius accepted")
	}
	if err := store.Unsubscribe(99); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("unsubscribe unknown: %v", err)
	}
	if _, err := store.SubscriptionResults(99); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("results unknown: %v", err)
	}
	if store.NumSubscriptions() != 0 {
		t.Fatalf("subscriptions leaked: %d", store.NumSubscriptions())
	}
}

// TestStoreEventStreamDropOldest pins the lossy back-pressure policy: with
// a full buffer and no consumer, the oldest deltas are dropped, counted,
// and the newest retained.
func TestStoreEventStreamDropOldest(t *testing.T) {
	store, err := vpindex.Open(
		vpindex.WithShards(2),
		vpindex.WithEventBuffer(4, vpindex.DropOldest),
	)
	if err != nil {
		t.Fatal(err)
	}
	ch := store.Events()
	// One subscription covering everything: every first report enters.
	if _, _, err := store.Subscribe(vpindex.Subscription{
		Query: vpindex.RectSliceQuery(vpindex.R(-1e9, -1e9, 1e9, 1e9), 0, 0),
	}, 0); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 1; i <= n; i++ {
		if err := store.Report(vpindex.Object{ID: vpindex.ObjectID(i), Pos: vpindex.V(float64(i), 0), T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.DroppedEvents(); got != n-4 {
		t.Fatalf("dropped %d events, want %d", got, n-4)
	}
	evs := drainEvents(ch)
	if len(evs) != 4 {
		t.Fatalf("buffer held %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := vpindex.ObjectID(n - 3 + i); e.ID != want || e.Kind != vpindex.Enter {
			t.Fatalf("retained event %d is %+v, want enter of %d", i, e, want)
		}
	}
}

// TestStoreSubscriptionsSurviveRepartition pins the epoch-swap contract
// directly: a swap changes no result set, re-seeds the filter's velocity
// classes, and evaluation keeps working afterwards.
func TestStoreSubscriptionsSurviveRepartition(t *testing.T) {
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithShards(4),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(testSample(600, 3)),
		vpindex.WithSeed(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 1; i <= 400; i++ {
		if err := store.Report(testObject(i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	sub := vpindex.Subscription{
		Query:   vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(10000, 10000), R: 5000}, 0, 0),
		Horizon: 20,
	}
	id, seed, err := store.Subscribe(sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) == 0 {
		t.Fatal("seed empty — pick a bigger region")
	}
	if got := store.SubscriptionFilterClasses(); got != 3 {
		t.Fatalf("filter classes before swap: %d, want 3 (2 DVAs + catch-all)", got)
	}
	before, err := store.SubscriptionResults(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Repartition(); err != nil {
		t.Fatal(err)
	}
	after, err := store.SubscriptionResults(id)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatalf("result set changed across swap: %v -> %v", before, after)
	}
	if got := store.SubscriptionFilterClasses(); got != 3 {
		t.Fatalf("filter classes after swap: %d, want 3", got)
	}
	// Evaluation still works post-swap: park an object inside the region.
	o := vpindex.Object{ID: 9999, Pos: vpindex.V(10000, 10000), Vel: vpindex.V(0, 0), T: 1}
	if err := store.Report(o); err != nil {
		t.Fatal(err)
	}
	got, err := store.SubscriptionResults(id)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range got {
		found = found || m == 9999
	}
	if !found {
		t.Fatal("post-swap report not evaluated into the result set")
	}
}

// TestStoreSubscriptionsConcurrentStorm extends the PR 3 -race oracle to
// the subscription engine: writers with disjoint ID ranges, readers polling
// result sets and refreshing, and manual repartition swaps all race; after
// quiescence a final refresh must leave every subscription's result set
// exactly equal to a brute-force evaluation over the merged final states.
func TestStoreSubscriptionsConcurrentStorm(t *testing.T) {
	const (
		writers   = 4
		perWriter = 300
		idsPer    = 250
	)
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithShards(4),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(testSample(600, 13)),
		vpindex.WithSeed(6),
		vpindex.WithEventBuffer(256, vpindex.DropOldest),
	)
	if err != nil {
		t.Fatal(err)
	}
	// A consumer drains the stream throughout, so emission code runs under
	// race with the storm no matter the policy.
	done := make(chan struct{})
	var consumed atomic.Int64
	go func() {
		ch := store.Events()
		for {
			select {
			case <-ch:
				consumed.Add(1)
			case <-done:
				return
			}
		}
	}()

	rng := rand.New(rand.NewSource(77))
	subs := make([]vpindex.SubscriptionID, 0, 8)
	var subsMeta []vpindex.Subscription
	for i := 0; i < 8; i++ {
		s := vpindex.Subscription{
			Query: vpindex.SliceQuery(vpindex.Circle{
				C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
				R: 2000 + rng.Float64()*3000,
			}, 0, 0),
			Horizon: rng.Float64() * 25,
		}
		id, _, err := store.Subscribe(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, id)
		subsMeta = append(subsMeta, s)
	}

	final := make([]map[vpindex.ObjectID]*vpindex.Object, writers)
	var wg sync.WaitGroup
	errs := make(chan error, writers+3)
	for w := 0; w < writers; w++ {
		final[w] = make(map[vpindex.ObjectID]*vpindex.Object)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(900 + w)))
			base := w * idsPer
			for i := 0; i < perWriter; i++ {
				id := base + 1 + rng.Intn(idsPer)
				o := testObject(id, rng)
				o.T = float64(i) / 8
				if i%9 == 8 {
					err := store.Remove(o.ID)
					if err != nil && !errors.Is(err, vpindex.ErrNotFound) {
						errs <- fmt.Errorf("writer %d remove: %w", w, err)
						return
					}
					if err == nil {
						delete(final[w], o.ID)
					}
					continue
				}
				if err := store.Report(o); err != nil {
					errs <- fmt.Errorf("writer %d report: %w", w, err)
					return
				}
				final[w][o.ID] = &o
			}
		}(w)
	}
	// Readers poll results and refresh; a maintenance goroutine swaps.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			for _, id := range subs {
				if _, err := store.SubscriptionResults(id); err != nil {
					errs <- fmt.Errorf("results: %w", err)
					return
				}
			}
			if _, err := store.RefreshSubscriptions(float64(i)); err != nil {
				errs <- fmt.Errorf("refresh: %w", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := store.Repartition(); err != nil {
				errs <- fmt.Errorf("repartition: %w", err)
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesce: one final refresh converges any memberships a racing pair of
	// same-moment evaluations left behind, then compare against brute force.
	now := float64(perWriter)/8 + 1
	if _, err := store.RefreshSubscriptions(now); err != nil {
		t.Fatal(err)
	}
	close(done)

	oracle := model.NewBruteForce()
	for w := range final {
		for _, o := range final[w] {
			if err := oracle.Insert(*o); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, id := range subs {
		got, err := store.SubscriptionResults(id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Search(subsMeta[i].QueryAt(now))
		if err != nil {
			t.Fatal(err)
		}
		want = sortedIDs(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("sub %d: %v vs oracle %v", id, got, want)
		}
	}
	if consumed.Load() == 0 {
		t.Fatal("storm emitted no events")
	}
}
