// Store concurrency benchmarks: sharded vs single-lock throughput on the
// production facade. Run with
//
//	go test -bench=Store -benchmem -run='^$' -cpu 1,4,8
//
// shards=1 is the pre-sharding single-lock baseline; shards=N is the
// GOMAXPROCS default. CI runs these non-gating and archives the output next
// to BENCH_concurrency.json (cmd/vpbench -exp concurrency).
package vpindex_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	vpindex "repro"
)

// benchStoreObjects is the live population the Store benchmarks run over.
const benchStoreObjects = 20000

// benchDiskLatency injects the simulated per-page-access delay. The Store's
// performance model is disk-bound (every structure lives on simulated 4 KB
// pages; the paper's metric is page I/O), so the scaling win of sharding is
// overlapping those waits: the single global lock holds every other
// operation hostage while one sleeps on a miss, independent shards overlap
// them. 20µs is a fast-SSD-class page cost.
const benchDiskLatency = 20 * time.Microsecond

// benchTotalPages is the aggregate page-cache budget, held constant across
// the shard axis (each of the shards × 3 pools gets an equal slice) so the
// shards=1 vs shards=N comparison isolates lock overlap instead of also
// handing the sharded configuration a bigger cache.
const benchTotalPages = 384

// newBenchStore opens a velocity-partitioned (k=2 via upfront sample) Bx
// Store with the given shard count and preloads the population. Extra
// options (e.g. WithLegacyScan for the scan-engine baseline) apply on top.
func newBenchStore(b *testing.B, shards int, objs []vpindex.Object, extra ...vpindex.Option) *vpindex.Store {
	b.Helper()
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}
	perPool := benchTotalPages / (shards * 3)
	if perPool < 1 {
		perPool = 1
	}
	opts := []vpindex.Option{
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithShards(shards),
		vpindex.WithBufferPages(perPool),
		vpindex.WithDiskLatency(benchDiskLatency),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(sample),
		vpindex.WithSeed(1),
	}
	store, err := vpindex.Open(append(opts, extra...)...)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.ReportBatch(objs); err != nil {
		b.Fatal(err)
	}
	return store
}

// shardCounts returns the benchmark's shard axis: the single-lock baseline
// and the GOMAXPROCS default (when they differ).
func shardCounts() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkStoreMixed is the headline mixed read/write workload: 7 in 8
// operations are ID-keyed reports (upserts that may migrate partitions),
// 1 in 8 is a predictive range query.
func BenchmarkStoreMixed(b *testing.B) {
	objs := randomObjects(benchStoreObjects, 7)
	for _, shards := range shardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			store := newBenchStore(b, shards, objs)
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seq.Add(1)))
				for pb.Next() {
					if rng.Intn(8) == 0 {
						c := vpindex.V(rng.Float64()*100000, rng.Float64()*100000)
						if _, err := store.Search(vpindex.SliceQuery(vpindex.Circle{C: c, R: 500}, 0, 60)); err != nil {
							b.Fatal(err)
						}
						continue
					}
					o := objs[rng.Intn(len(objs))]
					o.Pos = vpindex.V(rng.Float64()*100000, rng.Float64()*100000)
					if err := store.Report(o); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkStoreReport is the pure write path: every operation is an
// ID-keyed upsert of an existing object.
func BenchmarkStoreReport(b *testing.B) {
	objs := randomObjects(benchStoreObjects, 8)
	for _, shards := range shardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			store := newBenchStore(b, shards, objs)
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seq.Add(1)))
				for pb.Next() {
					o := objs[rng.Intn(len(objs))]
					o.Pos = vpindex.V(rng.Float64()*100000, rng.Float64()*100000)
					if err := store.Report(o); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkStoreIngestAllocs pins allocations per Report on the write path.
// Disk latency is zeroed so the measurement is pure CPU + allocator work:
// the coalesced path must stay allocation-free in steady state (pooled
// pending slots, pooled per-shard batch scratch, pooled WAL encode buffers),
// and the direct durable path must not allocate per-record encode closures.
// The wal axis uses SyncNone so fsync stalls don't drown the numbers.
func BenchmarkStoreIngestAllocs(b *testing.B) {
	objs := randomObjects(benchStoreObjects, 10)
	modes := []struct {
		name string
		opts []vpindex.Option
	}{
		{"direct", nil},
		{"coalesced", []vpindex.Option{vpindex.WithWriteCoalescing(0, vpindex.DefaultCoalesceBatch)}},
	}
	for _, mode := range modes {
		for _, durable := range []bool{false, true} {
			name := fmt.Sprintf("mode=%s/durable=%v", mode.name, durable)
			b.Run(name, func(b *testing.B) {
				extra := append([]vpindex.Option{vpindex.WithDiskLatency(0)}, mode.opts...)
				if durable {
					extra = append(extra,
						vpindex.WithDataDir(b.TempDir()),
						vpindex.WithSyncPolicy(vpindex.SyncNone()),
					)
				}
				store := newBenchStore(b, runtime.GOMAXPROCS(0), objs, extra...)
				defer store.Close()
				var seq atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(seq.Add(1)))
					for pb.Next() {
						o := objs[rng.Intn(len(objs))]
						o.Pos = vpindex.V(rng.Float64()*100000, rng.Float64()*100000)
						if err := store.Report(o); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// BenchmarkStoreSearch is the pure read path: concurrent predictive range
// queries against a static population (readers share shard read locks; the
// striped per-partition pools keep page-cache hits from serializing). The
// engine axis compares the batched leaf-walk scan (bptree.ScanMany) against
// the legacy per-interval descent path.
func BenchmarkStoreSearch(b *testing.B) {
	objs := randomObjects(benchStoreObjects, 9)
	engines := []struct {
		name string
		opts []vpindex.Option
	}{
		{"batched", nil},
		{"legacy", []vpindex.Option{vpindex.WithLegacyScan()}},
	}
	for _, eng := range engines {
		for _, shards := range shardCounts() {
			b.Run(fmt.Sprintf("engine=%s/shards=%d", eng.name, shards), func(b *testing.B) {
				store := newBenchStore(b, shards, objs, eng.opts...)
				var seq atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(seq.Add(1)))
					for pb.Next() {
						c := vpindex.V(rng.Float64()*100000, rng.Float64()*100000)
						if _, err := store.Search(vpindex.SliceQuery(vpindex.Circle{C: c, R: 500}, 0, 60)); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}
