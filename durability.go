package vpindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/wal"
)

// This file is the Store's durable mode (WithDataDir): a group-commit
// write-ahead log of logical records, periodic checkpoints, and crash
// recovery. The division of labor:
//
//   - The WAL (internal/wal) is the only source of crash consistency. Every
//     acknowledged write verb appends one logical record — report, batch,
//     remove, subscribe, unsubscribe, refresh — and waits for durability per
//     the SyncPolicy before returning. Partition transitions append a swap
//     record carrying the completed analysis, so recovery rebuilds the exact
//     partitions without re-running the analyzer.
//   - Checkpoints snapshot the full logical state — objects, the partition
//     analysis, the subscription registry with its memberships — to a shadow
//     file that is atomically renamed over the previous checkpoint, then
//     reclaim the log segments the snapshot covers.
//   - Recovery loads the newest checkpoint and replays the log tail through
//     the normal write paths, so every index invariant, subscription
//     evaluation, and maintenance hook behaves exactly as it did the first
//     time. The page file (FileStore) is rebuilt from logical state at every
//     open: index pages newer than the checkpoint are never trusted.
//
// Consistency between a checkpoint and the log is the commitMu protocol:
// each write verb holds commitMu shared across its {apply, append} pair and
// a checkpoint holds it exclusively while capturing {snapshot, log position},
// so every operation is either fully inside the snapshot or entirely after
// the captured LSN — replay is exactly once. The fsync wait happens after
// the shared lock is released, so a checkpoint never stalls behind group
// commit. Swap records are the one exception: they are appended without
// commitMu (the cutover already runs inside maintenance, not inside a verb's
// pair) and tolerate it by being idempotent — replaying a swap against an
// already-partitioned store rebuilds the same partitions.

// durability is the durable-mode state hanging off a Store.
type durability struct {
	dir    string
	wal    *wal.WAL
	fstore *storage.FileStore

	// commitMu orders write-verb {apply, append} pairs against checkpoint
	// {snapshot, LSN} capture; see the file comment.
	commitMu sync.RWMutex

	ckptMu    sync.Mutex // serializes checkpoint writers
	ckptEvery int64
	records   atomic.Int64 // records logged, for the auto-checkpoint cadence
	ckptLSN   atomic.Uint64
	ckpts     atomic.Int64

	// recovering suppresses logging and maintenance while Open replays: the
	// replayed verbs run their normal in-memory paths but append nothing.
	recovering atomic.Bool
	replayed   atomic.Int64

	// closed makes Close idempotent and safe for concurrent callers: the
	// CAS winner does the shutdown, everyone else returns nil immediately.
	closed atomic.Bool

	// Background scrubber lifetime (WithScrubEvery) and counters.
	scrubStop    chan struct{}
	scrubDone    chan struct{}
	scrubPasses  atomic.Int64
	scrubCorrupt atomic.Int64
}

const (
	pagesFileName = "pages.dat"
	walDirName    = "wal"
	ckptFileName  = "checkpoint.ckpt"
	ckptTmpName   = "checkpoint.tmp"
)

// initDurable opens the data directory's page file and log. Called from Open
// before any index is built; recovery itself runs after the shards exist.
func (s *Store) initDurable() error {
	cfg := &s.cfg
	if err := os.MkdirAll(cfg.dataDir, 0o755); err != nil {
		return fmt.Errorf("vpindex: data dir: %w", err)
	}
	fstore, err := storage.OpenFileStore(filepath.Join(cfg.dataDir, pagesFileName), storage.FileStoreOptions{
		// Index pages are rebuilt from checkpoint + log replay at every
		// open; stale images must not survive into the new generation.
		Truncate: true,
		Injector: cfg.injector,
	})
	if err != nil {
		return err
	}
	w, err := wal.Open(filepath.Join(cfg.dataDir, walDirName), wal.Options{
		SegmentBytes: cfg.walSegBytes,
		Policy:       cfg.syncPol,
		Injector:     cfg.injector,
		Retry:        cfg.retry,
	})
	if err != nil {
		fstore.Close()
		return err
	}
	s.disk = fstore
	s.dur = &durability{dir: cfg.dataDir, wal: w, fstore: fstore, ckptEvery: cfg.ckptEvery}
	// Index building inside Open (upfront sample, staging shards) must not
	// log; recover() lifts this once the replay is done.
	s.dur.recovering.Store(true)
	return nil
}

// closeFiles releases the durable files after a failed Open; it ignores
// errors (the store never escaped).
func (s *Store) closeFiles() {
	if d := s.dur; d != nil {
		d.wal.Close()
		d.fstore.Close()
	}
}

// Close flushes the log and the page file and closes both, stopping the
// background scrubber first. A non-durable Store has nothing to flush; Close
// is then a no-op. Close is idempotent and safe for concurrent callers —
// exactly one does the shutdown, the rest return nil — and leaves the store
// Failed ("closed"): later writes return ErrFailed, reads keep serving the
// final in-memory state.
func (s *Store) Close() error {
	d := s.dur
	if d == nil {
		return nil
	}
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	if d.scrubStop != nil {
		close(d.scrubStop)
		<-d.scrubDone
	}
	var first error
	if err := d.wal.Sync(); err != nil {
		first = err
	}
	if err := d.wal.Close(); err != nil && first == nil {
		first = err
	}
	if err := d.fstore.Close(); err != nil && first == nil {
		first = err
	}
	s.failStore("closed", nil)
	return first
}

// durableApply wraps a write verb's in-memory apply with logging: under the
// shared commit lock, a successful apply appends its record; after release,
// the caller waits for durability per the sync policy. Non-durable stores
// (and replay during recovery) run the apply alone.
func (s *Store) durableApply(t wal.Type, encode func() []byte, apply func() (bool, error)) (bool, error) {
	d := s.dur
	if d == nil || d.recovering.Load() {
		return apply()
	}
	if herr := s.writeAllowed(); herr != nil {
		return false, herr
	}
	d.commitMu.RLock()
	trip, err := apply()
	if err != nil {
		d.commitMu.RUnlock()
		s.noteIOFault(err)
		return false, err
	}
	lsn, werr := d.wal.Append(t, encode())
	d.commitMu.RUnlock()
	if werr != nil {
		s.noteIOFault(werr)
		return false, werr
	}
	if cerr := d.wal.Commit(lsn); cerr != nil {
		s.noteIOFault(cerr)
		return false, cerr
	}
	d.noteRecords(s, 1)
	return trip, nil
}

// reportBatchDurable is ReportBatch's durable path: apply the batch, log
// exactly the records that landed as one batch record (concurrent batches
// ride one fsync under the group-commit policy), then run maintenance.
func (s *Store) reportBatchDurable(d *durability, objs []Object) error {
	if herr := s.writeAllowed(); herr != nil {
		return herr
	}
	d.commitMu.RLock()
	evalGroups, reported, trip, err := s.applyReportBatch(objs)
	n := 0
	for _, g := range evalGroups {
		n += len(g)
	}
	var (
		lsn  uint64
		werr error
	)
	if n > 0 {
		flat := make([]Object, 0, n)
		for _, g := range evalGroups {
			flat = append(flat, g...)
		}
		lsn, werr = d.wal.Append(wal.TypeReportBatch, wal.EncodeReportBatch(flat))
	}
	d.commitMu.RUnlock()
	if werr != nil {
		s.noteIOFault(werr)
		return werr
	}
	if n > 0 {
		if cerr := d.wal.Commit(lsn); cerr != nil {
			s.noteIOFault(cerr)
			return cerr
		}
		d.noteRecords(s, 1)
	}
	s.noteIOFault(err)
	return s.finishReportBatch(reported, trip, err)
}

// logSwap appends a partition-swap record carrying the completed analysis.
// It runs outside commitMu — the cutover fires from maintenance, and the
// record is idempotent under replay (see the file comment) — and does not
// wait for the fsync: no caller is blocked on the swap, and the record
// becomes durable with the next committed record, checkpoint, or Close.
func (s *Store) logSwap(an core.Analysis) {
	d := s.dur
	if d == nil || d.recovering.Load() {
		return
	}
	if _, err := d.wal.Append(wal.TypePartitionSwap, core.EncodeAnalysis(an)); err != nil {
		s.noteIOFault(err)
	} else {
		d.noteRecords(s, 1)
	}
}

// noteRecords advances the auto-checkpoint cadence by n logged records and
// kicks a background checkpoint each time the running counter crosses a
// multiple of WithCheckpointEvery. Like the repartition cadence, the counter
// is never reset, so every multiple fires exactly once.
func (d *durability) noteRecords(s *Store, n int64) {
	if d.ckptEvery <= 0 {
		return
	}
	after := d.records.Add(n)
	if after/d.ckptEvery != (after-n)/d.ckptEvery {
		go func() { _ = s.Checkpoint() }()
	}
}

// DurabilityStats reports the durable subsystem's counters; ok is false for
// a non-durable Store.
type DurabilityStats struct {
	// WALAppendedLSN / WALDurableLSN are the log's end offset and the prefix
	// known to be on stable storage (equal except under SyncNone or between
	// an append and its group commit).
	WALAppendedLSN uint64
	WALDurableLSN  uint64
	// WALSegments is the number of live log segment files.
	WALSegments int
	// Checkpoints counts completed checkpoints this process; CheckpointLSN
	// is the log position the newest on-disk checkpoint covers.
	Checkpoints   int64
	CheckpointLSN uint64
	// ReplayedRecords counts log records replayed by this process's Open.
	ReplayedRecords int64
	// Health / HealthReason mirror Store.Health with the reason recorded at
	// the first transition out of Healthy ("" while healthy).
	Health       Health
	HealthReason string
	// QuarantinedPages counts data pages currently fenced off after a
	// checksum failure (a full rewrite repairs and releases a page).
	QuarantinedPages int
	// ScrubPasses / ScrubCorruptions count completed integrity scrub passes
	// (WithScrubEvery, ScrubNow) and the corruptions they surfaced.
	ScrubPasses      int64
	ScrubCorruptions int64
	// IORetries counts transient storage faults absorbed by the retry
	// policy across the live buffer pools and the log — faults the clients
	// never saw.
	IORetries int64
}

// DurabilityStats returns the durable-mode counters, and whether the Store
// is durable at all.
func (s *Store) DurabilityStats() (DurabilityStats, bool) {
	d := s.dur
	if d == nil {
		return DurabilityStats{}, false
	}
	retries := d.wal.Retries()
	for _, p := range s.Pools() {
		retries += p.Retries()
	}
	s.healthMu.Lock()
	reason := s.healthReason
	s.healthMu.Unlock()
	return DurabilityStats{
		WALAppendedLSN:   d.wal.AppendedLSN(),
		WALDurableLSN:    d.wal.DurableLSN(),
		WALSegments:      d.wal.Segments(),
		Checkpoints:      d.ckpts.Load(),
		CheckpointLSN:    d.ckptLSN.Load(),
		ReplayedRecords:  d.replayed.Load(),
		Health:           s.Health(),
		HealthReason:     reason,
		QuarantinedPages: d.fstore.Quarantined(),
		ScrubPasses:      d.scrubPasses.Load(),
		ScrubCorruptions: d.scrubCorrupt.Load(),
		IORetries:        retries,
	}, true
}

// checkpointState is one consistent cut of the Store's logical state.
type checkpointState struct {
	lsn         uint64
	partitioned bool
	analysis    core.Analysis
	objects     []Object

	hasEngine bool
	clock     float64
	nextID    SubscriptionID
	subs      []checkpointSub
}

// checkpointSub is one subscription with its full membership.
type checkpointSub struct {
	id      SubscriptionID
	sub     Subscription
	members []ObjectID
}

// Checkpoint snapshots the Store's full logical state to the data
// directory — shadow file, fsync, atomic rename — and then reclaims the log
// segments the snapshot covers. Returns ErrUnsupported for a non-durable
// Store. Safe to call concurrently with writes (the snapshot capture briefly
// blocks the write verbs); concurrent checkpoints serialize. The outcome is
// also recorded as a maintenance event (MaintCheckpoint).
func (s *Store) Checkpoint() error {
	d := s.dur
	if d == nil {
		return fmt.Errorf("vpindex: checkpoint of a non-durable store: %w", ErrUnsupported)
	}
	// A failed store's files are closed (or its process image is dead); a
	// degraded store may still checkpoint — the snapshot path is separate
	// from whatever fault degraded it, and a successful checkpoint can
	// reclaim log segments.
	if Health(s.health.Load()) == HealthFailed {
		return s.healthErr(ErrFailed)
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	d.commitMu.Lock()
	ck := s.captureCheckpoint(d)
	d.commitMu.Unlock()
	err := d.writeCheckpoint(ck)
	if err == nil {
		d.ckptLSN.Store(ck.lsn)
		d.ckpts.Add(1)
		// Reclamation is best-effort: a failure leaves extra segments whose
		// replay is harmless (the next recovery starts at the checkpoint's
		// LSN and skips everything before it).
		_ = d.wal.TruncateBefore(ck.lsn)
	}
	ev := MaintenanceEvent{Op: MaintCheckpoint, Err: err, SampleSize: len(ck.objects), Swapped: err == nil}
	s.recordMaintenance(ev)
	s.notifyMaintenance(ev)
	return err
}

// captureCheckpoint snapshots the logical state. Caller holds d.commitMu
// exclusively, so no write verb is between its apply and its append: every
// operation is either fully reflected here or entirely after ck.lsn.
func (s *Store) captureCheckpoint(d *durability) checkpointState {
	ck := checkpointState{lsn: d.wal.AppendedLSN()}
	ck.analysis, ck.partitioned = s.Analysis()
	for _, sh := range s.shards {
		sh.mu.RLock()
		if sh.mgr != nil {
			ck.objects = append(ck.objects, sh.mgr.Objects()...)
		} else {
			for _, o := range sh.objs {
				ck.objects = append(ck.objects, o)
			}
		}
		sh.mu.RUnlock()
	}
	e := s.subEng.Load()
	if e == nil {
		return ck
	}
	ck.hasEngine = true
	ck.clock = e.now()
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	ck.nextID = e.nextID
	ids := make([]SubscriptionID, 0, len(e.subs))
	for id := range e.subs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cs := checkpointSub{id: id, sub: e.subs[id]}
		for si := range e.shards {
			sh := &e.shards[si]
			sh.mu.Lock()
			cs.members = append(cs.members, sh.rs.Members(id)...)
			sh.mu.Unlock()
		}
		ck.subs = append(ck.subs, cs)
	}
	return ck
}

// Checkpoint file layout: magic, version, payload, CRC32 of the payload.
const (
	ckptMagic   = 0x5650434B // "VPCK"
	ckptVersion = 1
)

// encodeCheckpoint serializes a checkpointState.
func encodeCheckpoint(ck checkpointState) []byte {
	b := make([]byte, 0, 64+len(ck.objects)*48)
	b = binary.LittleEndian.AppendUint32(b, ckptMagic)
	b = binary.LittleEndian.AppendUint32(b, ckptVersion)
	payloadStart := len(b)
	b = binary.LittleEndian.AppendUint64(b, ck.lsn)
	var flags byte
	if ck.partitioned {
		flags |= 1
	}
	if ck.hasEngine {
		flags |= 2
	}
	b = append(b, flags)
	an := core.EncodeAnalysis(ck.analysis)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(an)))
	b = append(b, an...)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.objects)))
	for _, o := range ck.objects {
		b = wal.AppendObject(b, o)
	}
	if ck.hasEngine {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(ck.clock))
		b = binary.LittleEndian.AppendUint64(b, uint64(ck.nextID))
		b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.subs)))
		for _, cs := range ck.subs {
			b = binary.LittleEndian.AppendUint64(b, uint64(cs.id))
			b = wal.AppendSubscription(b, cs.sub)
			b = binary.LittleEndian.AppendUint64(b, uint64(len(cs.members)))
			for _, id := range cs.members {
				b = binary.LittleEndian.AppendUint64(b, uint64(id))
			}
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[payloadStart:]))
}

// decodeCheckpoint reverses encodeCheckpoint, validating magic, version,
// and CRC. The rename protocol makes a torn checkpoint impossible, so any
// validation failure is real corruption and surfaces as an error.
func decodeCheckpoint(b []byte) (checkpointState, error) {
	var ck checkpointState
	bad := func(what string) (checkpointState, error) {
		return ck, fmt.Errorf("vpindex: checkpoint: %s", what)
	}
	if len(b) < 12 {
		return bad("truncated header")
	}
	if binary.LittleEndian.Uint32(b) != ckptMagic {
		return bad("bad magic")
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != ckptVersion {
		return bad(fmt.Sprintf("unsupported version %d", v))
	}
	payload := b[8 : len(b)-4]
	if got, want := binary.LittleEndian.Uint32(b[len(b)-4:]), crc32.ChecksumIEEE(payload); got != want {
		return bad("CRC mismatch")
	}
	r := payload
	u64 := func() (uint64, bool) {
		if len(r) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(r)
		r = r[8:]
		return v, true
	}
	lsn, ok := u64()
	if !ok || len(r) < 1 {
		return bad("truncated")
	}
	ck.lsn = lsn
	flags := r[0]
	r = r[1:]
	ck.partitioned = flags&1 != 0
	ck.hasEngine = flags&2 != 0
	anLen, ok := u64()
	if !ok || uint64(len(r)) < anLen {
		return bad("truncated analysis")
	}
	var err error
	if ck.analysis, err = core.DecodeAnalysis(r[:anLen]); err != nil {
		return ck, err
	}
	r = r[anLen:]
	nObjs, ok := u64()
	if !ok || uint64(len(r)) < nObjs*48 {
		return bad("truncated objects")
	}
	ck.objects = make([]Object, nObjs)
	for i := range ck.objects {
		ck.objects[i], r, _ = wal.TakeObject(r)
	}
	if !ck.hasEngine {
		if len(r) != 0 {
			return bad("trailing bytes")
		}
		return ck, nil
	}
	clockBits, ok1 := u64()
	nextID, ok2 := u64()
	nSubs, ok3 := u64()
	if !ok1 || !ok2 || !ok3 {
		return bad("truncated registry")
	}
	ck.clock = math.Float64frombits(clockBits)
	ck.nextID = SubscriptionID(nextID)
	ck.subs = make([]checkpointSub, 0, nSubs)
	for i := uint64(0); i < nSubs; i++ {
		id, ok := u64()
		if !ok {
			return bad("truncated subscription")
		}
		sub, rest, err := wal.TakeSubscription(r)
		if err != nil {
			return ck, err
		}
		r = rest
		nMem, ok := u64()
		if !ok || uint64(len(r)) < nMem*8 {
			return bad("truncated members")
		}
		cs := checkpointSub{id: SubscriptionID(id), sub: sub, members: make([]ObjectID, nMem)}
		for j := range cs.members {
			v, _ := u64()
			cs.members[j] = ObjectID(v)
		}
		ck.subs = append(ck.subs, cs)
	}
	if len(r) != 0 {
		return bad("trailing bytes")
	}
	return ck, nil
}

// writeCheckpoint persists ck with the shadow-file protocol: write to a tmp
// file, fsync it, rename over the previous checkpoint, fsync the directory.
// A crash anywhere leaves either the old or the new checkpoint, never a torn
// one. The fault injector gates the write and both fsyncs, so the kill
// matrix exercises every crash position.
func (d *durability) writeCheckpoint(ck checkpointState) error {
	fi := d.fstore.Injector()
	if err := fi.BeforeWrite(); err != nil {
		return err
	}
	tmp := filepath.Join(d.dir, ckptTmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("vpindex: checkpoint: %w", err)
	}
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(encodeCheckpoint(ck)); err != nil {
		return cleanup(fmt.Errorf("vpindex: checkpoint write: %w", err))
	}
	if err := fi.BeforeSync(); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("vpindex: checkpoint fsync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("vpindex: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, ckptFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("vpindex: checkpoint rename: %w", err)
	}
	if err := fi.BeforeSync(); err != nil {
		return err
	}
	dir, err := os.Open(d.dir)
	if err == nil {
		err = dir.Sync()
		dir.Close()
	}
	if err != nil {
		return fmt.Errorf("vpindex: checkpoint dir fsync: %w", err)
	}
	return nil
}

// loadCheckpoint reads the newest checkpoint; ok is false when none exists.
func (d *durability) loadCheckpoint() (ck checkpointState, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(d.dir, ckptFileName))
	if os.IsNotExist(err) {
		return checkpointState{}, false, nil
	}
	if err != nil {
		return checkpointState{}, false, err
	}
	ck, err = decodeCheckpoint(b)
	return ck, err == nil, err
}

// recover restores the Store from the data directory: load the newest
// checkpoint, rebuild partitions and objects and subscriptions from it
// through the normal code paths, then replay the log tail. Runs inside Open
// with the recovering flag set, so nothing is re-logged and no maintenance
// analyses launch; the subscription filter's velocity classes are re-armed
// at the end from whatever analysis survived.
func (s *Store) recover() error {
	d := s.dur
	defer d.recovering.Store(false)
	ck, ok, err := d.loadCheckpoint()
	if err != nil {
		return err
	}
	if ok {
		if ck.partitioned {
			s.replaySwap(ck.analysis)
		}
		if len(ck.objects) > 0 {
			if err := s.ReportBatch(ck.objects); err != nil {
				return fmt.Errorf("vpindex: recover objects: %w", err)
			}
		}
		if ck.hasEngine {
			s.restoreSubscriptions(ck)
		}
		d.ckptLSN.Store(ck.lsn)
	}
	if err := d.wal.Replay(ck.lsn, func(_ uint64, t wal.Type, p []byte) error {
		s.replayRecord(t, p)
		return nil
	}); err != nil {
		if !errors.Is(err, wal.ErrCorrupt) {
			return fmt.Errorf("vpindex: wal replay: %w", err)
		}
		// Mid-log corruption: valid acknowledged records exist past the bad
		// frame, so silently dropping them is not an option — but neither is
		// refusing to open, which would hold the intact prefix hostage. The
		// store opens read-only on everything replayed before the corruption.
		s.degrade("wal corruption detected during replay", err)
	}
	// A corrupt (not merely torn) tail in the active segment means the same:
	// the prefix recovered cleanly, but acknowledged history past the bad
	// frame may be gone. Serve the prefix read-only.
	if err := d.wal.CorruptTail(); err != nil {
		s.degrade("wal tail corruption", err)
	}
	if s.partitioned.Load() {
		s.refreshSubClasses()
	}
	if s.cfg.scrubEvery > 0 {
		d.scrubStop = make(chan struct{})
		d.scrubDone = make(chan struct{})
		go s.scrubLoop(s.cfg.scrubEvery, d.scrubStop, d.scrubDone)
	}
	return nil
}

// replayRecord applies one log record through the normal write paths.
// Replay is exactly-once (the commitMu protocol), so per-record errors are
// not expected; any that occur are swallowed — a partially recovered store
// beats none, and the differential oracle would catch real divergence.
func (s *Store) replayRecord(t wal.Type, p []byte) {
	d := s.dur
	switch t {
	case wal.TypeReport:
		if o, err := wal.DecodeReport(p); err == nil {
			_ = s.Report(o)
			d.replayed.Add(1)
		}
	case wal.TypeReportBatch:
		if objs, err := wal.DecodeReportBatch(p); err == nil {
			_ = s.ReportBatch(objs)
			d.replayed.Add(1)
		}
	case wal.TypeRemove:
		if id, err := wal.DecodeRemove(p); err == nil {
			_ = s.Remove(id)
			d.replayed.Add(1)
		}
	case wal.TypeSubscribe:
		if id, sub, now, err := wal.DecodeSubscribe(p); err == nil {
			s.replaySubscribe(id, sub, now)
			d.replayed.Add(1)
		}
	case wal.TypeUnsubscribe:
		if id, err := wal.DecodeUnsubscribe(p); err == nil {
			_ = s.Unsubscribe(id)
			d.replayed.Add(1)
		}
	case wal.TypeRefresh:
		if now, err := wal.DecodeRefresh(p); err == nil {
			_, _ = s.RefreshSubscriptions(now)
			d.replayed.Add(1)
		}
	case wal.TypePartitionSwap:
		if an, err := core.DecodeAnalysis(p); err == nil {
			s.replaySwap(an)
			d.replayed.Add(1)
		}
	}
}

// replaySwap re-applies a logged partition transition: the bootstrap cutover
// when the store is still staging (migrating the staged population), a
// per-shard rebuild when it is already partitioned. Recovery is
// single-threaded, so taking the swap machinery without maintMu is safe.
func (s *Store) replaySwap(an core.Analysis) {
	if s.partitioned.Load() {
		_ = s.swapPartitions(an)
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	err := s.applyAnalysisLocked(an, nil)
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	_ = err
}

// restoreSubscriptions rebuilds the subscription registry from a checkpoint:
// registered ids, the engine clock, and the membership sets are restored
// verbatim (no seed queries run — memberships are history-dependent, so
// re-deriving them could differ from what the crashed process acknowledged).
func (s *Store) restoreSubscriptions(ck checkpointState) {
	e := s.engine()
	e.clock.Store(math.Float64bits(ck.clock))
	e.regMu.Lock()
	e.nextID = ck.nextID
	for _, cs := range ck.subs {
		e.subs[cs.id] = cs.sub
		e.filter.Add(cs.id, cs.sub)
	}
	e.regMu.Unlock()
	e.nsubs.Store(int64(len(ck.subs)))
	for _, cs := range ck.subs {
		byShard := make([][]ObjectID, len(e.shards))
		for _, id := range cs.members {
			si := s.shardIndex(id)
			byShard[si] = append(byShard[si], id)
		}
		for si := range e.shards {
			if len(byShard[si]) == 0 {
				continue
			}
			sh := &e.shards[si]
			sh.mu.Lock()
			sh.rs.Seed(cs.id, byShard[si])
			sh.mu.Unlock()
		}
	}
}

// replaySubscribe re-registers a logged subscription under its original id
// and re-runs the seed evaluation at the logged clock — the same sequence
// Subscribe ran the first time, minus the id allocation.
func (s *Store) replaySubscribe(id SubscriptionID, sub Subscription, now float64) {
	e := s.engine()
	e.advance(now)
	e.regMu.Lock()
	if id > e.nextID {
		e.nextID = id
	}
	e.subs[id] = sub
	e.filter.Add(id, sub)
	e.regMu.Unlock()
	e.nsubs.Add(1)
	evs, err := e.refreshSub(id, now)
	if err != nil {
		e.regMu.Lock()
		delete(e.subs, id)
		e.filter.Remove(id)
		e.regMu.Unlock()
		e.nsubs.Add(-1)
		return
	}
	e.emit(evs)
}
