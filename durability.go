package vpindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/wal"
)

// This file is the Store's durable mode (WithDataDir): a group-commit
// write-ahead log of logical records, periodic checkpoints, and crash
// recovery. The division of labor:
//
//   - The WAL (internal/wal) is the only source of crash consistency. Every
//     acknowledged write verb appends one logical record — report, batch,
//     remove, subscribe, unsubscribe, refresh — and waits for durability per
//     the SyncPolicy before returning. Partition transitions append a swap
//     record carrying the completed analysis, so recovery rebuilds the exact
//     partitions without re-running the analyzer.
//   - Checkpoints are incremental: the first one snapshots the full logical
//     state — objects, the partition analysis, the subscription registry with
//     its memberships — and every later one captures only what changed since
//     the previous checkpoint (per-shard dirty sets of touched ObjectIDs,
//     removed-ID tombstones, and registry/partition dirty flags) into a delta
//     file (ckpt-<gen>.delta) chained to the last full snapshot. Every file
//     uses the same shadow-write protocol — tmp, fsync, atomic rename, dir
//     fsync — so a crash never leaves a torn element. A compaction policy
//     (WithCheckpointCompaction) folds a long chain back into a single full
//     snapshot in the background, off the commit lock.
//   - Recovery loads the full snapshot plus its deltas in generation order and
//     replays the log tail through the normal write paths, so every index
//     invariant, subscription evaluation, and maintenance hook behaves exactly
//     as it did the first time. The page file (FileStore) is rebuilt from
//     logical state at every open: index pages newer than the checkpoint are
//     never trusted.
//
// Consistency between a checkpoint and the log is the commitMu protocol:
// each write verb holds commitMu shared across its {apply, append} pair and
// a checkpoint holds it exclusively while capturing {snapshot, log position},
// so every operation is either fully inside the snapshot or entirely after
// the captured LSN — replay is exactly once. The fsync wait happens after
// the shared lock is released, so a checkpoint never stalls behind group
// commit. Swap records are the one exception: they are appended without
// commitMu (the cutover already runs inside maintenance, not inside a verb's
// pair) and tolerate it by being idempotent — replaying a swap against an
// already-partitioned store rebuilds the same partitions.

// durability is the durable-mode state hanging off a Store.
type durability struct {
	dir    string
	wal    *wal.WAL
	fstore *storage.FileStore

	// commitMu orders write-verb {apply, append} pairs against checkpoint
	// {snapshot, LSN} capture; see the file comment.
	commitMu sync.RWMutex

	ckptMu    sync.Mutex // serializes checkpoint writers (incl. compaction)
	ckptEvery int64
	records   atomic.Int64 // records logged, for the auto-checkpoint cadence
	ckptLSN   atomic.Uint64
	ckpts     atomic.Int64

	// Incremental-checkpoint state. ckptGen is the generation of the newest
	// durable chain element (0 = none yet, so the next checkpoint is full);
	// chainLen / chainBytes describe the delta chain behind the last full
	// snapshot and drive the compaction policy; subsDirty / partDirty flag
	// subscription-registry and partition-analysis changes since the last
	// checkpoint (the per-object dirty sets live on the shards). ckptInFlight
	// dedups the auto-checkpoint cadence's background trigger; compacting
	// dedups background compactions. pauseLast / pauseMax / ckptBytes are the
	// observability counters behind DurabilityStats.
	ckptGen         atomic.Uint64
	chainLen        atomic.Int64
	chainBytes      atomic.Int64
	subsDirty       atomic.Bool
	partDirty       atomic.Bool
	ckptInFlight    atomic.Bool
	compacting      atomic.Bool
	compactions     atomic.Int64
	pauseLast       atomic.Int64
	pauseMax        atomic.Int64
	ckptBytes       atomic.Int64
	compactChainMax int
	compactBytesMax int64

	// recovering suppresses logging and maintenance while Open replays: the
	// replayed verbs run their normal in-memory paths but append nothing.
	recovering atomic.Bool
	replayed   atomic.Int64

	// closed makes Close idempotent and safe for concurrent callers: the
	// CAS winner does the shutdown, everyone else returns nil immediately.
	closed atomic.Bool

	// Background scrubber lifetime (WithScrubEvery) and counters.
	scrubStop    chan struct{}
	scrubDone    chan struct{}
	scrubPasses  atomic.Int64
	scrubCorrupt atomic.Int64
}

const (
	pagesFileName = "pages.dat"
	walDirName    = "wal"
	ckptFileName  = "checkpoint.ckpt"
	ckptTmpName   = "checkpoint.tmp"
)

// deltaFileName names one delta-chain element. The zero-padded generation
// makes lexical directory order equal generation order.
func deltaFileName(gen uint64) string { return fmt.Sprintf("ckpt-%020d.delta", gen) }

// initDurable opens the data directory's page file and log. Called from Open
// before any index is built; recovery itself runs after the shards exist.
func (s *Store) initDurable() error {
	cfg := &s.cfg
	if err := os.MkdirAll(cfg.dataDir, 0o755); err != nil {
		return fmt.Errorf("vpindex: data dir: %w", err)
	}
	fstore, err := storage.OpenFileStore(filepath.Join(cfg.dataDir, pagesFileName), storage.FileStoreOptions{
		// Index pages are rebuilt from checkpoint + log replay at every
		// open; stale images must not survive into the new generation.
		Truncate: true,
		Injector: cfg.injector,
		Mmap:     cfg.mmapOn,
	})
	if err != nil {
		return err
	}
	w, err := wal.Open(filepath.Join(cfg.dataDir, walDirName), wal.Options{
		SegmentBytes: cfg.walSegBytes,
		Policy:       cfg.syncPol,
		Injector:     cfg.injector,
		Retry:        cfg.retry,
	})
	if err != nil {
		fstore.Close()
		return err
	}
	s.disk = fstore
	s.dur = &durability{
		dir: cfg.dataDir, wal: w, fstore: fstore, ckptEvery: cfg.ckptEvery,
		compactChainMax: cfg.compactChain, compactBytesMax: cfg.compactBytes,
	}
	// Index building inside Open (upfront sample, staging shards) must not
	// log; recover() lifts this once the replay is done.
	s.dur.recovering.Store(true)
	return nil
}

// closeFiles releases the durable files after a failed Open; it ignores
// errors (the store never escaped).
func (s *Store) closeFiles() {
	if d := s.dur; d != nil {
		d.wal.Close()
		d.fstore.Close()
	}
}

// Close flushes the log and the page file and closes both, stopping the
// background scrubber first. A non-durable Store has nothing to flush; Close
// is then a no-op. Close is idempotent and safe for concurrent callers —
// exactly one does the shutdown, the rest return nil — and leaves the store
// Failed ("closed"): later writes return ErrFailed, reads keep serving the
// final in-memory state.
func (s *Store) Close() error {
	d := s.dur
	if d == nil {
		return nil
	}
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Drain the write coalescer first: every Report acknowledged before
	// this point must reach the log before it is flushed and closed.
	// (Reports that race Close past this barrier fail on the closed log,
	// exactly like direct writes racing Close.)
	s.coalFlush()
	if d.scrubStop != nil {
		close(d.scrubStop)
		<-d.scrubDone
	}
	// Drain any in-flight background checkpoint or compaction: both hold
	// ckptMu for their whole file-writing span and re-check closed after
	// acquiring it, so once this barrier passes, nothing touches the data
	// directory again.
	d.ckptMu.Lock()
	d.ckptMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	var first error
	if err := d.wal.Sync(); err != nil {
		first = err
	}
	if err := d.wal.Close(); err != nil && first == nil {
		first = err
	}
	if err := d.fstore.Close(); err != nil && first == nil {
		first = err
	}
	s.failStore("closed", nil)
	return first
}

// durableApply wraps a write verb's in-memory apply with logging: under the
// shared commit lock, a successful apply appends its record; after release,
// the caller waits for durability per the sync policy. Non-durable stores
// (and replay during recovery) run the apply alone. encode appends the record
// payload to dst — a pooled buffer that WAL.Append copies out of before
// returning, so the steady-state write path allocates nothing per record.
func (s *Store) durableApply(t wal.Type, encode func(dst []byte) []byte, apply func() (bool, error)) (bool, error) {
	d := s.dur
	if d == nil || d.recovering.Load() {
		return apply()
	}
	if herr := s.writeAllowed(); herr != nil {
		return false, herr
	}
	d.commitMu.RLock()
	trip, err := apply()
	if err != nil {
		d.commitMu.RUnlock()
		s.noteIOFault(err)
		return false, err
	}
	buf := wal.GetBuf()
	*buf = encode((*buf)[:0])
	lsn, werr := d.wal.Append(t, *buf)
	d.commitMu.RUnlock()
	wal.PutBuf(buf)
	if werr != nil {
		s.noteIOFault(werr)
		return false, werr
	}
	if cerr := d.wal.Commit(lsn); cerr != nil {
		s.noteIOFault(cerr)
		return false, cerr
	}
	d.noteRecords(s, 1)
	return trip, nil
}

// durableApplyObject is durableApply specialized to the hot verbs whose
// record is one encoded object (Report, Insert, Update): the encode step is
// inlined over the pooled buffer and the apply half is a method expression
// instead of a per-call closure, so the uncoalesced single-record path
// allocates nothing per record in steady state.
func (s *Store) durableApplyObject(t wal.Type, o Object, apply func(*Store, Object) (bool, error)) (bool, error) {
	d := s.dur
	if d == nil || d.recovering.Load() {
		return apply(s, o)
	}
	if herr := s.writeAllowed(); herr != nil {
		return false, herr
	}
	d.commitMu.RLock()
	trip, err := apply(s, o)
	if err != nil {
		d.commitMu.RUnlock()
		s.noteIOFault(err)
		return false, err
	}
	buf := wal.GetBuf()
	*buf = wal.AppendObject((*buf)[:0], o)
	lsn, werr := d.wal.Append(t, *buf)
	d.commitMu.RUnlock()
	wal.PutBuf(buf)
	if werr != nil {
		s.noteIOFault(werr)
		return false, werr
	}
	if cerr := d.wal.Commit(lsn); cerr != nil {
		s.noteIOFault(cerr)
		return false, cerr
	}
	d.noteRecords(s, 1)
	return trip, nil
}

// durableApplyRemove is the same closure-free shape for Remove's ID-only
// record.
func (s *Store) durableApplyRemove(id ObjectID) error {
	d := s.dur
	if d == nil || d.recovering.Load() {
		return s.applyRemove(id)
	}
	if herr := s.writeAllowed(); herr != nil {
		return herr
	}
	d.commitMu.RLock()
	if err := s.applyRemove(id); err != nil {
		d.commitMu.RUnlock()
		s.noteIOFault(err)
		return err
	}
	buf := wal.GetBuf()
	*buf = wal.AppendRemove((*buf)[:0], id)
	lsn, werr := d.wal.Append(wal.TypeRemove, *buf)
	d.commitMu.RUnlock()
	wal.PutBuf(buf)
	if werr != nil {
		s.noteIOFault(werr)
		return werr
	}
	if cerr := d.wal.Commit(lsn); cerr != nil {
		s.noteIOFault(cerr)
		return cerr
	}
	d.noteRecords(s, 1)
	return nil
}

// reportBatchDurable is ReportBatch's durable path: apply the batch, log
// exactly the records that landed as one batch record (concurrent batches
// ride one fsync under the group-commit policy), then run maintenance.
func (s *Store) reportBatchDurable(d *durability, objs []Object) error {
	if herr := s.writeAllowed(); herr != nil {
		return herr
	}
	sc := s.getBatchScratch()
	d.commitMu.RLock()
	reported, trip, err := s.applyReportBatch(objs, sc)
	n := 0
	for _, g := range sc.eval {
		n += len(g)
	}
	var (
		lsn  uint64
		werr error
	)
	if n > 0 {
		// Encode straight from the per-shard groups into a pooled buffer:
		// no flattened intermediate slice, no per-batch payload allocation.
		buf := wal.GetBuf()
		*buf = wal.AppendReportBatch((*buf)[:0], sc.eval)
		lsn, werr = d.wal.Append(wal.TypeReportBatch, *buf)
		wal.PutBuf(buf)
	}
	d.commitMu.RUnlock()
	s.putBatchScratch(sc)
	if werr != nil {
		s.noteIOFault(werr)
		return werr
	}
	if n > 0 {
		if cerr := d.wal.Commit(lsn); cerr != nil {
			s.noteIOFault(cerr)
			return cerr
		}
		d.noteRecords(s, 1)
	}
	s.noteIOFault(err)
	return s.finishReportBatch(reported, trip, err)
}

// logSwap appends a partition-swap record carrying the completed analysis.
// It runs outside commitMu — the cutover fires from maintenance, and the
// record is idempotent under replay (see the file comment) — and does not
// wait for the fsync: no caller is blocked on the swap, and the record
// becomes durable with the next committed record, checkpoint, or Close.
func (s *Store) logSwap(an core.Analysis) {
	d := s.dur
	if d == nil || d.recovering.Load() {
		return
	}
	// Mark the partitions dirty before the append: a delta capture that sees
	// the flag clear is guaranteed to have cut before this record's LSN, so
	// the swap is covered by the WAL tail instead; seeing it set merely adds
	// a redundant analysis to the next delta.
	d.partDirty.Store(true)
	if _, err := d.wal.Append(wal.TypePartitionSwap, core.EncodeAnalysis(an)); err != nil {
		s.noteIOFault(err)
	} else {
		d.noteRecords(s, 1)
	}
}

// noteRecords advances the auto-checkpoint cadence by n logged records and
// kicks a background checkpoint each time the running counter crosses a
// multiple of WithCheckpointEvery. Like the repartition cadence, the counter
// is never reset. At most one background checkpoint is in flight at a time:
// without the CAS guard, a write burst would spawn one goroutine per cadence
// trip and they would all queue on ckptMu behind a slow checkpoint, piling up
// without bound and then running back-to-back redundant snapshots. A multiple
// crossed while one is in flight is simply absorbed — the in-flight
// checkpoint already covers those records.
func (d *durability) noteRecords(s *Store, n int64) {
	if d.ckptEvery <= 0 {
		return
	}
	after := d.records.Add(n)
	if after/d.ckptEvery != (after-n)/d.ckptEvery {
		if d.ckptInFlight.CompareAndSwap(false, true) {
			go func() {
				defer d.ckptInFlight.Store(false)
				_ = s.Checkpoint()
			}()
		}
	}
}

// DurabilityStats reports the durable subsystem's counters; ok is false for
// a non-durable Store.
type DurabilityStats struct {
	// WALAppendedLSN / WALDurableLSN are the log's end offset and the prefix
	// known to be on stable storage (equal except under SyncNone or between
	// an append and its group commit).
	WALAppendedLSN uint64
	WALDurableLSN  uint64
	// WALSegments is the number of live log segment files.
	WALSegments int
	// Checkpoints counts completed checkpoints this process; CheckpointLSN
	// is the log position the newest on-disk checkpoint covers.
	Checkpoints   int64
	CheckpointLSN uint64
	// CheckpointPauseNs / CheckpointPauseMaxNs are the commit-lock hold time
	// of the most recent checkpoint capture and the worst one this process —
	// the stop-the-world window writes actually feel, which delta checkpoints
	// shrink from O(dataset) to O(changes). CheckpointBytes is the byte size
	// of the most recently written checkpoint file (full or delta).
	CheckpointPauseNs    int64
	CheckpointPauseMaxNs int64
	CheckpointBytes      int64
	// DeltaChainLen is the number of delta files currently chained behind the
	// last full snapshot; Compactions counts background chain folds.
	DeltaChainLen int64
	Compactions   int64
	// MmapReads reports whether page reads are currently served from a
	// read-only memory mapping of the data file (WithMmap) rather than pread.
	MmapReads bool
	// ReplayedRecords counts log records replayed by this process's Open.
	ReplayedRecords int64
	// Health / HealthReason mirror Store.Health with the reason recorded at
	// the first transition out of Healthy ("" while healthy).
	Health       Health
	HealthReason string
	// QuarantinedPages counts data pages currently fenced off after a
	// checksum failure (a full rewrite repairs and releases a page).
	QuarantinedPages int
	// ScrubPasses / ScrubCorruptions count completed integrity scrub passes
	// (WithScrubEvery, ScrubNow) and the corruptions they surfaced.
	ScrubPasses      int64
	ScrubCorruptions int64
	// IORetries counts transient storage faults absorbed by the retry
	// policy across the live buffer pools and the log — faults the clients
	// never saw.
	IORetries int64
	// CoalescedBatches / CoalescedRecords / FlushBarriers mirror the write
	// coalescer's counters (see WithWriteCoalescing and Store.IngestStats):
	// drained batches, the Reports they carried, and the flush-barrier
	// waits run by the non-Report write verbs, Checkpoint, and Close. All
	// zero when coalescing is off.
	CoalescedBatches int64
	CoalescedRecords int64
	FlushBarriers    int64
}

// DurabilityStats returns the durable-mode counters, and whether the Store
// is durable at all.
func (s *Store) DurabilityStats() (DurabilityStats, bool) {
	d := s.dur
	if d == nil {
		return DurabilityStats{}, false
	}
	retries := d.wal.Retries()
	for _, p := range s.Pools() {
		retries += p.Retries()
	}
	s.healthMu.Lock()
	reason := s.healthReason
	s.healthMu.Unlock()
	ing, _ := s.IngestStats()
	return DurabilityStats{
		WALAppendedLSN:       d.wal.AppendedLSN(),
		WALDurableLSN:        d.wal.DurableLSN(),
		WALSegments:          d.wal.Segments(),
		Checkpoints:          d.ckpts.Load(),
		CheckpointLSN:        d.ckptLSN.Load(),
		CheckpointPauseNs:    d.pauseLast.Load(),
		CheckpointPauseMaxNs: d.pauseMax.Load(),
		CheckpointBytes:      d.ckptBytes.Load(),
		DeltaChainLen:        d.chainLen.Load(),
		Compactions:          d.compactions.Load(),
		MmapReads:            d.fstore.MmapActive(),
		ReplayedRecords:      d.replayed.Load(),
		Health:               s.Health(),
		HealthReason:         reason,
		QuarantinedPages:     d.fstore.Quarantined(),
		ScrubPasses:          d.scrubPasses.Load(),
		ScrubCorruptions:     d.scrubCorrupt.Load(),
		IORetries:            retries,
		CoalescedBatches:     ing.CoalescedBatches,
		CoalescedRecords:     ing.CoalescedRecords,
		FlushBarriers:        ing.FlushBarriers,
	}, true
}

// checkpointState is one chain element: a consistent cut of the Store's
// logical state (full snapshot) or of everything that changed since the
// previous element (delta). partitioned doubles as "this element carries an
// analysis to apply": always set for a partitioned full snapshot, set on a
// delta only when the partitions changed since the previous element.
type checkpointState struct {
	gen       uint64 // chain generation; monotonic across fulls and deltas
	parentGen uint64 // generation this delta chains onto (0 for a full)
	delta     bool

	lsn         uint64
	partitioned bool
	analysis    core.Analysis
	objects     []Object
	tombs       []ObjectID // IDs removed since the previous element (delta only)

	hasEngine bool
	clock     float64
	nextID    SubscriptionID
	subs      []checkpointSub

	// Capture bookkeeping, never encoded: the dirty/gone maps swapped out of
	// the shards (restored if the write fails) and the captured dirty-flag
	// values; size is the on-disk element size filled in by readChain.
	savedDirty []map[ObjectID]struct{}
	savedGone  []map[ObjectID]struct{}
	savedSubs  bool
	savedPart  bool
	size       int64
}

// checkpointSub is one subscription with its full membership.
type checkpointSub struct {
	id      SubscriptionID
	sub     Subscription
	members []ObjectID
}

// Checkpoint persists a consistent cut of the Store's logical state to the
// data directory — the first checkpoint (and any compaction) writes a full
// snapshot, every later one writes only the state dirtied since the previous
// checkpoint as a delta file chained to the last full snapshot — and then
// reclaims the log segments the cut covers. The write-verb pause is the
// capture window only, O(changes) for a delta; serialization and fsync run
// off the commit lock. Returns ErrUnsupported for a non-durable Store. Safe
// to call concurrently with writes; concurrent checkpoints serialize. The
// outcome is also recorded as a maintenance event (MaintCheckpoint).
func (s *Store) Checkpoint() error {
	d := s.dur
	if d == nil {
		return fmt.Errorf("vpindex: checkpoint of a non-durable store: %w", ErrUnsupported)
	}
	// A failed store's files are closed (or its process image is dead); a
	// degraded store may still checkpoint — the snapshot path is separate
	// from whatever fault degraded it, and a successful checkpoint can
	// reclaim log segments.
	if Health(s.health.Load()) == HealthFailed {
		return s.healthErr(ErrFailed)
	}
	// Flush barrier: drain every Report enqueued before this call, so the
	// capture's coverage is deterministic with respect to the queue. (A
	// drain can never be split by the capture either way — it holds the
	// commit lock's read side across its apply and its append — so this is
	// the same cross-verb ordering rule the other barriers enforce, not a
	// consistency requirement.)
	s.coalFlush()
	ck, err := s.checkpointLocked(d)
	ev := MaintenanceEvent{Op: MaintCheckpoint, Err: err, SampleSize: len(ck.objects), Swapped: err == nil}
	s.recordMaintenance(ev)
	s.notifyMaintenance(ev)
	if err == nil && ck.delta {
		s.maybeCompact(d)
	}
	return err
}

// checkpointLocked is Checkpoint's core under ckptMu: capture, write, stats.
// Hook notification and compaction scheduling stay outside the lock so a
// maintenance hook may call any Store method — including Close, which drains
// in-flight checkpoints by acquiring ckptMu itself.
func (s *Store) checkpointLocked(d *durability) (checkpointState, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	// Re-check under the lock: a Close that won the race has already drained
	// the files, and a checkpoint written now would recreate them.
	if d.closed.Load() {
		return checkpointState{}, s.healthErr(ErrFailed)
	}
	full := d.ckptGen.Load() == 0 // nothing durable yet: the chain needs its base
	start := time.Now()
	d.commitMu.Lock()
	var ck checkpointState
	if full {
		ck = s.captureCheckpoint(d)
	} else {
		ck = s.captureDelta(d)
	}
	d.commitMu.Unlock()
	pause := time.Since(start).Nanoseconds()
	d.pauseLast.Store(pause)
	for {
		max := d.pauseMax.Load()
		if pause <= max || d.pauseMax.CompareAndSwap(max, pause) {
			break
		}
	}
	name := ckptFileName
	if ck.delta {
		name = deltaFileName(ck.gen)
	}
	n, err := d.writeCheckpointFile(name, ck)
	if err != nil {
		// The capture emptied the dirty sets; the write never became durable,
		// so fold them back in (newer marks win) for the next attempt.
		s.restoreDirty(d, ck)
	} else {
		d.ckptGen.Store(ck.gen)
		d.ckptLSN.Store(ck.lsn)
		d.ckptBytes.Store(n)
		d.ckpts.Add(1)
		if ck.delta {
			d.chainLen.Add(1)
			d.chainBytes.Add(n)
		} else {
			d.resetChain(ck.gen)
		}
		// Reclamation is best-effort: a failure leaves extra segments whose
		// replay is harmless (the next recovery starts at the checkpoint's
		// LSN and skips everything before it).
		_ = d.wal.TruncateBefore(ck.lsn)
	}
	return ck, err
}

// captureCheckpoint snapshots the full logical state. Caller holds
// d.commitMu exclusively, so no write verb is between its apply and its
// append: every operation is either fully reflected here or entirely after
// ck.lsn. The dirty sets are consumed — the snapshot covers everything —
// and stashed on the returned state so a failed write can restore them.
func (s *Store) captureCheckpoint(d *durability) checkpointState {
	ck := checkpointState{lsn: d.wal.AppendedLSN(), gen: d.ckptGen.Load() + 1}
	ck.analysis, ck.partitioned = s.Analysis()
	ck.savedSubs = d.subsDirty.Swap(false)
	ck.savedPart = d.partDirty.Swap(false)
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.mgr != nil {
			ck.objects = append(ck.objects, sh.mgr.Objects()...)
		} else {
			for _, o := range sh.objs {
				ck.objects = append(ck.objects, o)
			}
		}
		ck.savedDirty = append(ck.savedDirty, sh.dirty)
		ck.savedGone = append(ck.savedGone, sh.gone)
		if sh.dirty != nil {
			sh.dirty = make(map[ObjectID]struct{})
			sh.gone = make(map[ObjectID]struct{})
		}
		sh.mu.Unlock()
	}
	s.captureEngine(&ck)
	return ck
}

// captureDelta snapshots only the state dirtied since the previous
// checkpoint: the current records of the dirty IDs, tombstones for the
// removed ones, the analysis only if the partitions changed, and the
// subscription registry whenever it exists and could have changed (a live
// subscription's membership moves on every report, so the engine section
// rides every delta while subscriptions are registered). Caller holds
// d.commitMu exclusively; the locking discipline matches captureCheckpoint.
func (s *Store) captureDelta(d *durability) checkpointState {
	prev := d.ckptGen.Load()
	ck := checkpointState{lsn: d.wal.AppendedLSN(), gen: prev + 1, parentGen: prev, delta: true}
	ck.savedSubs = d.subsDirty.Swap(false)
	ck.savedPart = d.partDirty.Swap(false)
	if ck.savedPart {
		ck.analysis, ck.partitioned = s.Analysis()
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id := range sh.dirty {
			var (
				o  Object
				ok bool
			)
			if sh.mgr != nil {
				o, ok = sh.mgr.Get(id)
			} else {
				o, ok = sh.objs[id]
			}
			if ok {
				ck.objects = append(ck.objects, o)
			} else {
				ck.tombs = append(ck.tombs, id)
			}
		}
		for id := range sh.gone {
			ck.tombs = append(ck.tombs, id)
		}
		ck.savedDirty = append(ck.savedDirty, sh.dirty)
		ck.savedGone = append(ck.savedGone, sh.gone)
		if sh.dirty != nil {
			sh.dirty = make(map[ObjectID]struct{})
			sh.gone = make(map[ObjectID]struct{})
		}
		sh.mu.Unlock()
	}
	if e := s.subEng.Load(); e != nil && (e.nsubs.Load() > 0 || ck.savedSubs) {
		s.captureEngine(&ck)
	}
	return ck
}

// captureEngine fills ck's subscription-registry section from the live
// engine (no-op when none exists).
func (s *Store) captureEngine(ck *checkpointState) {
	e := s.subEng.Load()
	if e == nil {
		return
	}
	ck.hasEngine = true
	ck.clock = e.now()
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	ck.nextID = e.nextID
	ids := make([]SubscriptionID, 0, len(e.subs))
	for id := range e.subs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cs := checkpointSub{id: id, sub: e.subs[id]}
		for si := range e.shards {
			sh := &e.shards[si]
			sh.mu.Lock()
			cs.members = append(cs.members, sh.rs.Members(id)...)
			sh.mu.Unlock()
		}
		ck.subs = append(ck.subs, cs)
	}
}

// restoreDirty folds a failed checkpoint's captured dirty state back into
// the live shards so the next attempt re-covers it. Marks made after the
// capture win: an ID re-dirtied since stays dirty, one removed since stays
// gone.
func (s *Store) restoreDirty(d *durability, ck checkpointState) {
	for i, sh := range s.shards {
		if i >= len(ck.savedDirty) || ck.savedDirty[i] == nil {
			continue
		}
		sh.mu.Lock()
		for id := range ck.savedDirty[i] {
			if _, newer := sh.gone[id]; !newer {
				sh.dirty[id] = struct{}{}
			}
		}
		for id := range ck.savedGone[i] {
			if _, newer := sh.dirty[id]; !newer {
				sh.gone[id] = struct{}{}
			}
		}
		sh.mu.Unlock()
	}
	if ck.savedSubs {
		d.subsDirty.Store(true)
	}
	if ck.savedPart {
		d.partDirty.Store(true)
	}
}

// clearDirtyState empties every shard's dirty set and both dirty flags.
// Recovery calls it after applying the on-disk chain (whose contents are by
// definition already durable) and before replaying the WAL tail, whose
// records re-mark exactly the state the next delta must cover.
func (s *Store) clearDirtyState(d *durability) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.dirty != nil {
			sh.dirty = make(map[ObjectID]struct{})
			sh.gone = make(map[ObjectID]struct{})
		}
		sh.mu.Unlock()
	}
	d.subsDirty.Store(false)
	d.partDirty.Store(false)
}

// resetChain records that a full snapshot at gen replaced the chain, and
// removes any delta files it made stale (best-effort; recovery also skips
// deltas at or below the full snapshot's generation).
func (d *durability) resetChain(gen uint64) {
	d.chainLen.Store(0)
	d.chainBytes.Store(0)
	names, err := filepath.Glob(filepath.Join(d.dir, "ckpt-*.delta"))
	if err != nil {
		return
	}
	stale := filepath.Join(d.dir, deltaFileName(gen))
	for _, name := range names {
		if name <= stale {
			_ = os.Remove(name)
		}
	}
}

// compactionDue reports whether the delta chain has outgrown the
// WithCheckpointCompaction policy.
func (d *durability) compactionDue() bool {
	return (d.compactChainMax > 0 && d.chainLen.Load() >= int64(d.compactChainMax)) ||
		(d.compactBytesMax > 0 && d.chainBytes.Load() >= d.compactBytesMax)
}

// maybeCompact starts a background chain fold when the policy says so; at
// most one compaction runs at a time.
func (s *Store) maybeCompact(d *durability) {
	if !d.compactionDue() {
		return
	}
	if !d.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer d.compacting.Store(false)
		_ = s.compactCheckpoints()
	}()
}

// compactCheckpoints folds the on-disk full+delta chain into a single full
// snapshot, entirely off the commit lock: it re-reads the chain from disk,
// merges it, shadow-writes the merged state over checkpoint.ckpt, and
// deletes the folded delta files. Writes proceed concurrently — their dirty
// marks are untouched — and a crash at any point leaves the old chain
// intact (a surviving stale delta is skipped at recovery). Serialized with
// Checkpoint by ckptMu, so the chain cannot grow under the fold.
func (s *Store) compactCheckpoints() error {
	d := s.dur
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.closed.Load() || Health(s.health.Load()) == HealthFailed {
		return nil
	}
	elems, err := d.readChain()
	if err != nil || len(elems) < 2 {
		return err
	}
	folded := foldChain(elems)
	if _, err := d.writeCheckpointFile(ckptFileName, folded); err != nil {
		return err
	}
	for _, e := range elems[1:] {
		_ = os.Remove(filepath.Join(d.dir, deltaFileName(e.gen)))
	}
	d.chainLen.Store(0)
	d.chainBytes.Store(0)
	d.compactions.Add(1)
	return nil
}

// foldChain merges a full snapshot and its deltas (in chain order) into one
// full checkpointState carrying the last element's generation and LSN:
// later object versions win, tombstones delete, and the newest analysis and
// registry sections carry over (an element without those sections means
// "unchanged since the previous one").
func foldChain(elems []checkpointState) checkpointState {
	out := checkpointState{
		gen: elems[len(elems)-1].gen,
		lsn: elems[len(elems)-1].lsn,
	}
	objs := make(map[ObjectID]Object, len(elems[0].objects))
	for _, e := range elems {
		for _, o := range e.objects {
			objs[o.ID] = o
		}
		for _, id := range e.tombs {
			delete(objs, id)
		}
		if e.partitioned {
			out.analysis, out.partitioned = e.analysis, true
		}
		if e.hasEngine {
			out.hasEngine = true
			out.clock, out.nextID, out.subs = e.clock, e.nextID, e.subs
		}
	}
	out.objects = make([]Object, 0, len(objs))
	for _, o := range objs {
		out.objects = append(out.objects, o)
	}
	sort.Slice(out.objects, func(i, j int) bool { return out.objects[i].ID < out.objects[j].ID })
	return out
}

// Checkpoint file layout: magic, version, payload, CRC32 of the payload.
// Version 2 added the chain fields (generation, parent generation, delta
// flag, tombstones) and made the analysis section conditional on its flag;
// v1 files from older builds are still read (as a full snapshot heading a
// chain of zero deltas), but every new element is written as v2.
const (
	ckptMagic   = 0x5650434B // "VPCK"
	ckptVersion = 2
)

// Flag bits in the checkpoint payload.
const (
	ckptFlagAnalysis = 1 << 0 // element carries a partition analysis
	ckptFlagEngine   = 1 << 1 // element carries the subscription registry
	ckptFlagDelta    = 1 << 2 // element is a delta, not a full snapshot
)

// encodeCheckpoint serializes a checkpointState.
func encodeCheckpoint(ck checkpointState) []byte {
	b := make([]byte, 0, 96+len(ck.objects)*48+len(ck.tombs)*8)
	b = binary.LittleEndian.AppendUint32(b, ckptMagic)
	b = binary.LittleEndian.AppendUint32(b, ckptVersion)
	payloadStart := len(b)
	b = binary.LittleEndian.AppendUint64(b, ck.gen)
	b = binary.LittleEndian.AppendUint64(b, ck.parentGen)
	b = binary.LittleEndian.AppendUint64(b, ck.lsn)
	var flags byte
	if ck.partitioned {
		flags |= ckptFlagAnalysis
	}
	if ck.hasEngine {
		flags |= ckptFlagEngine
	}
	if ck.delta {
		flags |= ckptFlagDelta
	}
	b = append(b, flags)
	if ck.partitioned {
		an := core.EncodeAnalysis(ck.analysis)
		b = binary.LittleEndian.AppendUint64(b, uint64(len(an)))
		b = append(b, an...)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.objects)))
	for _, o := range ck.objects {
		b = wal.AppendObject(b, o)
	}
	if ck.delta {
		b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.tombs)))
		for _, id := range ck.tombs {
			b = binary.LittleEndian.AppendUint64(b, uint64(id))
		}
	}
	if ck.hasEngine {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(ck.clock))
		b = binary.LittleEndian.AppendUint64(b, uint64(ck.nextID))
		b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.subs)))
		for _, cs := range ck.subs {
			b = binary.LittleEndian.AppendUint64(b, uint64(cs.id))
			b = wal.AppendSubscription(b, cs.sub)
			b = binary.LittleEndian.AppendUint64(b, uint64(len(cs.members)))
			for _, id := range cs.members {
				b = binary.LittleEndian.AppendUint64(b, uint64(id))
			}
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[payloadStart:]))
}

// decodeCheckpoint reverses encodeCheckpoint, validating magic, version,
// and CRC. The rename protocol makes a torn checkpoint impossible, so any
// validation failure is real corruption and surfaces as an error.
func decodeCheckpoint(b []byte) (checkpointState, error) {
	var ck checkpointState
	bad := func(what string) (checkpointState, error) {
		return ck, fmt.Errorf("vpindex: checkpoint: %s", what)
	}
	if len(b) < 12 {
		return bad("truncated header")
	}
	if binary.LittleEndian.Uint32(b) != ckptMagic {
		return bad("bad magic")
	}
	ver := binary.LittleEndian.Uint32(b[4:])
	if ver != 1 && ver != ckptVersion {
		return bad(fmt.Sprintf("unsupported version %d", ver))
	}
	payload := b[8 : len(b)-4]
	if got, want := binary.LittleEndian.Uint32(b[len(b)-4:]), crc32.ChecksumIEEE(payload); got != want {
		return bad("CRC mismatch")
	}
	r := payload
	u64 := func() (uint64, bool) {
		if len(r) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(r)
		r = r[8:]
		return v, true
	}
	if ver >= 2 {
		gen, ok1 := u64()
		parentGen, ok2 := u64()
		if !ok1 || !ok2 {
			return bad("truncated")
		}
		ck.gen, ck.parentGen = gen, parentGen
	} else {
		// A v1 file is a full snapshot from before chains existed; give it
		// generation 1 so deltas written after recovery chain onto it.
		ck.gen = 1
	}
	lsn, ok := u64()
	if !ok || len(r) < 1 {
		return bad("truncated")
	}
	ck.lsn = lsn
	flags := r[0]
	r = r[1:]
	ck.partitioned = flags&ckptFlagAnalysis != 0
	ck.hasEngine = flags&ckptFlagEngine != 0
	ck.delta = ver >= 2 && flags&ckptFlagDelta != 0
	if ck.partitioned || ver == 1 {
		// v1 wrote the analysis section unconditionally; v2 only when the
		// analysis flag is set.
		anLen, ok := u64()
		if !ok || uint64(len(r)) < anLen {
			return bad("truncated analysis")
		}
		var err error
		if ck.analysis, err = core.DecodeAnalysis(r[:anLen]); err != nil {
			return ck, err
		}
		r = r[anLen:]
	}
	nObjs, ok := u64()
	if !ok || uint64(len(r)) < nObjs*48 {
		return bad("truncated objects")
	}
	ck.objects = make([]Object, nObjs)
	for i := range ck.objects {
		ck.objects[i], r, _ = wal.TakeObject(r)
	}
	if ck.delta {
		nTombs, ok := u64()
		if !ok || uint64(len(r)) < nTombs*8 {
			return bad("truncated tombstones")
		}
		ck.tombs = make([]ObjectID, nTombs)
		for i := range ck.tombs {
			v, _ := u64()
			ck.tombs[i] = ObjectID(v)
		}
	}
	if !ck.hasEngine {
		if len(r) != 0 {
			return bad("trailing bytes")
		}
		return ck, nil
	}
	clockBits, ok1 := u64()
	nextID, ok2 := u64()
	nSubs, ok3 := u64()
	if !ok1 || !ok2 || !ok3 {
		return bad("truncated registry")
	}
	ck.clock = math.Float64frombits(clockBits)
	ck.nextID = SubscriptionID(nextID)
	ck.subs = make([]checkpointSub, 0, nSubs)
	for i := uint64(0); i < nSubs; i++ {
		id, ok := u64()
		if !ok {
			return bad("truncated subscription")
		}
		sub, rest, err := wal.TakeSubscription(r)
		if err != nil {
			return ck, err
		}
		r = rest
		nMem, ok := u64()
		if !ok || uint64(len(r)) < nMem*8 {
			return bad("truncated members")
		}
		cs := checkpointSub{id: SubscriptionID(id), sub: sub, members: make([]ObjectID, nMem)}
		for j := range cs.members {
			v, _ := u64()
			cs.members[j] = ObjectID(v)
		}
		ck.subs = append(ck.subs, cs)
	}
	if len(r) != 0 {
		return bad("trailing bytes")
	}
	return ck, nil
}

// writeCheckpointFile persists ck as name (checkpoint.ckpt or a delta file)
// with the shadow-file protocol: write to a tmp file, fsync it, rename to
// the target, fsync the directory. A crash anywhere leaves either the old
// element set or the new one, never a torn file. The fault injector gates
// the write and both fsyncs, so the kill matrix exercises every crash
// position. Returns the element's encoded size.
func (d *durability) writeCheckpointFile(name string, ck checkpointState) (int64, error) {
	fi := d.fstore.Injector()
	if err := fi.BeforeWrite(); err != nil {
		return 0, err
	}
	tmp := filepath.Join(d.dir, ckptTmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("vpindex: checkpoint: %w", err)
	}
	cleanup := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	enc := encodeCheckpoint(ck)
	if _, err := f.Write(enc); err != nil {
		return cleanup(fmt.Errorf("vpindex: checkpoint write: %w", err))
	}
	if err := fi.BeforeSync(); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("vpindex: checkpoint fsync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("vpindex: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, name)); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("vpindex: checkpoint rename: %w", err)
	}
	if err := fi.BeforeSync(); err != nil {
		return 0, err
	}
	dir, err := os.Open(d.dir)
	if err == nil {
		err = dir.Sync()
		dir.Close()
	}
	if err != nil {
		return 0, fmt.Errorf("vpindex: checkpoint dir fsync: %w", err)
	}
	return int64(len(enc)), nil
}

// loadCheckpointFile reads and decodes one chain element; ok is false when
// the file does not exist.
func (d *durability) loadCheckpointFile(name string) (ck checkpointState, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(d.dir, name))
	if os.IsNotExist(err) {
		return checkpointState{}, false, nil
	}
	if err != nil {
		return checkpointState{}, false, err
	}
	ck, err = decodeCheckpoint(b)
	ck.size = int64(len(b))
	return ck, err == nil, err
}

// readChain loads the on-disk checkpoint chain: the full snapshot followed
// by its delta files in generation order. Deltas at or below the full
// snapshot's generation are pre-compaction leftovers and are deleted; a gap
// in the parent linkage means a missing element, which is corruption the
// shadow-write protocol cannot produce, so it surfaces as an error rather
// than a silently shortened history. Returns an empty chain when no
// checkpoint exists yet.
func (d *durability) readChain() ([]checkpointState, error) {
	full, ok, err := d.loadCheckpointFile(ckptFileName)
	if err != nil {
		return nil, err
	}
	names, gerr := filepath.Glob(filepath.Join(d.dir, "ckpt-*.delta"))
	if gerr != nil {
		return nil, gerr
	}
	sort.Strings(names) // zero-padded generations: lexical order == chain order
	if !ok {
		if len(names) > 0 {
			return nil, fmt.Errorf("vpindex: checkpoint: %d delta file(s) with no full snapshot", len(names))
		}
		return nil, nil
	}
	chain := []checkpointState{full}
	for _, name := range names {
		e, ok, err := d.loadCheckpointFile(filepath.Base(name))
		if err != nil {
			return nil, err
		}
		if !ok || !e.delta {
			return nil, fmt.Errorf("vpindex: checkpoint: %s is not a delta element", filepath.Base(name))
		}
		if e.gen <= full.gen {
			_ = os.Remove(name) // folded into the full snapshot by a compaction
			continue
		}
		if e.parentGen != chain[len(chain)-1].gen {
			return nil, fmt.Errorf("vpindex: checkpoint: delta chain gap at gen %d (parent %d, want %d)",
				e.gen, e.parentGen, chain[len(chain)-1].gen)
		}
		chain = append(chain, e)
	}
	return chain, nil
}

// recover restores the Store from the data directory: load the checkpoint
// chain (full snapshot plus deltas in generation order), rebuild partitions
// and objects and subscriptions from it through the normal code paths, then
// replay the log tail. Runs inside Open with the recovering flag set, so
// nothing is re-logged and no maintenance analyses launch; the subscription
// filter's velocity classes are re-armed at the end from whatever analysis
// survived.
func (s *Store) recover() error {
	d := s.dur
	defer d.recovering.Store(false)
	chain, err := d.readChain()
	if err != nil {
		return err
	}
	var replayFrom uint64
	if len(chain) > 0 {
		// The newest analysis in the chain is the partition layout at the
		// last capture; apply it first so every object lands in the right
		// partitions directly (per-element swap replay would re-migrate the
		// population once per layout change for nothing).
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].partitioned {
				s.replaySwap(chain[i].analysis)
				break
			}
		}
		// Objects and tombstones must apply in chain order: a later delta
		// can re-report an ID an earlier one tombstoned, and vice versa.
		// Within one element the two sets are disjoint. A tombstone may
		// target an ID no earlier element carried (insert+remove between two
		// checkpoints), so unknown IDs are ignored.
		for _, e := range chain {
			if len(e.objects) > 0 {
				if err := s.ReportBatch(e.objects); err != nil {
					return fmt.Errorf("vpindex: recover objects: %w", err)
				}
			}
			for _, id := range e.tombs {
				_ = s.Remove(id)
			}
		}
		// The newest registry section is the registry at the last capture
		// (an element without one means "unchanged").
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].hasEngine {
				s.restoreSubscriptions(chain[i])
				break
			}
		}
		last := chain[len(chain)-1]
		replayFrom = last.lsn
		d.ckptLSN.Store(last.lsn)
		d.ckptGen.Store(last.gen)
		d.chainLen.Store(int64(len(chain) - 1))
		var bytes int64
		for _, e := range chain[1:] {
			bytes += e.size
		}
		d.chainBytes.Store(bytes)
		// Everything the chain just re-applied is already durable; only the
		// WAL tail below re-marks state the next delta must cover.
		s.clearDirtyState(d)
	}
	if err := d.wal.Replay(replayFrom, func(_ uint64, t wal.Type, p []byte) error {
		s.replayRecord(t, p)
		return nil
	}); err != nil {
		if !errors.Is(err, wal.ErrCorrupt) {
			return fmt.Errorf("vpindex: wal replay: %w", err)
		}
		// Mid-log corruption: valid acknowledged records exist past the bad
		// frame, so silently dropping them is not an option — but neither is
		// refusing to open, which would hold the intact prefix hostage. The
		// store opens read-only on everything replayed before the corruption.
		s.degrade("wal corruption detected during replay", err)
	}
	// A corrupt (not merely torn) tail in the active segment means the same:
	// the prefix recovered cleanly, but acknowledged history past the bad
	// frame may be gone. Serve the prefix read-only.
	if err := d.wal.CorruptTail(); err != nil {
		s.degrade("wal tail corruption", err)
	}
	if s.partitioned.Load() {
		s.refreshSubClasses()
	}
	if s.cfg.scrubEvery > 0 {
		d.scrubStop = make(chan struct{})
		d.scrubDone = make(chan struct{})
		go s.scrubLoop(s.cfg.scrubEvery, d.scrubStop, d.scrubDone)
	}
	return nil
}

// replayRecord applies one log record through the normal write paths.
// Replay is exactly-once (the commitMu protocol), so per-record errors are
// not expected; any that occur are swallowed — a partially recovered store
// beats none, and the differential oracle would catch real divergence.
func (s *Store) replayRecord(t wal.Type, p []byte) {
	d := s.dur
	switch t {
	case wal.TypeReport:
		if o, err := wal.DecodeReport(p); err == nil {
			_ = s.Report(o)
			d.replayed.Add(1)
		}
	case wal.TypeReportBatch:
		if objs, err := wal.DecodeReportBatch(p); err == nil {
			_ = s.ReportBatch(objs)
			d.replayed.Add(1)
		}
	case wal.TypeRemove:
		if id, err := wal.DecodeRemove(p); err == nil {
			_ = s.Remove(id)
			d.replayed.Add(1)
		}
	case wal.TypeSubscribe:
		if id, sub, now, err := wal.DecodeSubscribe(p); err == nil {
			s.replaySubscribe(id, sub, now)
			d.replayed.Add(1)
		}
	case wal.TypeUnsubscribe:
		if id, err := wal.DecodeUnsubscribe(p); err == nil {
			_ = s.Unsubscribe(id)
			d.replayed.Add(1)
		}
	case wal.TypeRefresh:
		if now, err := wal.DecodeRefresh(p); err == nil {
			_, _ = s.RefreshSubscriptions(now)
			d.replayed.Add(1)
		}
	case wal.TypePartitionSwap:
		if an, err := core.DecodeAnalysis(p); err == nil {
			s.replaySwap(an)
			d.replayed.Add(1)
		}
	}
}

// replaySwap re-applies a logged partition transition: the bootstrap cutover
// when the store is still staging (migrating the staged population), a
// per-shard rebuild when it is already partitioned. Recovery is
// single-threaded, so taking the swap machinery without maintMu is safe.
func (s *Store) replaySwap(an core.Analysis) {
	if s.partitioned.Load() {
		_ = s.swapPartitions(an)
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	err := s.applyAnalysisLocked(an, nil)
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	_ = err
}

// restoreSubscriptions rebuilds the subscription registry from a checkpoint:
// registered ids, the engine clock, and the membership sets are restored
// verbatim (no seed queries run — memberships are history-dependent, so
// re-deriving them could differ from what the crashed process acknowledged).
func (s *Store) restoreSubscriptions(ck checkpointState) {
	e := s.engine()
	e.clock.Store(math.Float64bits(ck.clock))
	e.regMu.Lock()
	e.nextID = ck.nextID
	for _, cs := range ck.subs {
		e.subs[cs.id] = cs.sub
		e.filter.Add(cs.id, cs.sub)
	}
	e.regMu.Unlock()
	e.nsubs.Store(int64(len(ck.subs)))
	for _, cs := range ck.subs {
		byShard := make([][]ObjectID, len(e.shards))
		for _, id := range cs.members {
			si := s.shardIndex(id)
			byShard[si] = append(byShard[si], id)
		}
		for si := range e.shards {
			if len(byShard[si]) == 0 {
				continue
			}
			sh := &e.shards[si]
			sh.mu.Lock()
			sh.rs.Seed(cs.id, byShard[si])
			sh.mu.Unlock()
		}
	}
}

// replaySubscribe re-registers a logged subscription under its original id
// and re-runs the seed evaluation at the logged clock — the same sequence
// Subscribe ran the first time, minus the id allocation.
func (s *Store) replaySubscribe(id SubscriptionID, sub Subscription, now float64) {
	e := s.engine()
	e.advance(now)
	e.regMu.Lock()
	if id > e.nextID {
		e.nextID = id
	}
	e.subs[id] = sub
	e.filter.Add(id, sub)
	e.regMu.Unlock()
	e.nsubs.Add(1)
	evs, err := e.refreshSub(id, now)
	if err != nil {
		e.regMu.Lock()
		delete(e.subs, id)
		e.filter.Remove(id)
		e.regMu.Unlock()
		e.nsubs.Add(-1)
		return
	}
	e.emit(evs)
}
