package vpindex_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	vpindex "repro"
)

// coalOpts is the base configuration for the write-coalescing tests: a
// sharded, velocity-partitioned store with the coalescer on a small window
// and batch cap so multi-slot drains actually happen under test concurrency.
func coalOpts(extra ...vpindex.Option) []vpindex.Option {
	opts := []vpindex.Option{
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithShards(2),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(testSample(400, 19)),
		vpindex.WithSeed(7),
		vpindex.WithWriteCoalescing(100*time.Microsecond, 8),
	}
	return append(opts, extra...)
}

// TestCoalescedReportBasic: the coalesced path keeps Report's contract for a
// single caller — upsert semantics, Get/Len/Search visibility as soon as the
// call returns — and a durable coalesced store recovers every acknowledged
// report after Close.
func TestCoalescedReportBasic(t *testing.T) {
	dir := t.TempDir()
	store, err := vpindex.Open(coalOpts(vpindex.WithDataDir(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	want := map[vpindex.ObjectID]vpindex.Object{}
	for i := 1; i <= 40; i++ {
		o := testObject(i%25+1, rng) // IDs repeat: later reports must win
		o.T = float64(i)
		if err := store.Report(o); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		want[o.ID] = o
		got, ok := store.Get(o.ID)
		if !ok || got != o {
			t.Fatalf("report %d not visible at return: got %+v ok=%v", i, got, ok)
		}
	}
	if store.Len() != len(want) {
		t.Fatalf("len = %d, want %d", store.Len(), len(want))
	}
	if ing, ok := store.IngestStats(); !ok || ing.CoalescedRecords != 40 {
		t.Fatalf("ingest stats = %+v ok=%v, want 40 coalesced records", ing, ok)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	recovered, err := vpindex.Open(coalOpts(vpindex.WithDataDir(dir))...)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer recovered.Close()
	if recovered.Len() != len(want) {
		t.Fatalf("recovered len = %d, want %d", recovered.Len(), len(want))
	}
	for id, o := range want {
		got, ok := recovered.Get(id)
		if !ok || got != o {
			t.Fatalf("recovered object %d = %+v ok=%v, want %+v", id, got, ok, o)
		}
	}
}

// TestCoalescerDifferentialOracle is the coalescer's -race differential
// oracle: N concurrent writers drive the coalesced store with a mixed
// Report/Remove/Update/Insert stream (the non-Report verbs crossing the
// flush barrier) while a maintenance goroutine forces repartition swaps
// under the load; each writer owns a disjoint ID range, so replaying its
// interleaving through a brute-force shadow map is exact. The final store
// state must equal the shadow, and — for the durable variant — must survive
// a Close/reopen through the coalesced batch records in the log.
func TestCoalescerDifferentialOracle(t *testing.T) {
	const (
		writers   = 4
		perWriter = 300
		idsPer    = 200
	)
	run := func(t *testing.T, dir string) {
		extra := []vpindex.Option{}
		if dir != "" {
			extra = append(extra,
				vpindex.WithDataDir(dir),
				vpindex.WithSyncPolicy(vpindex.SyncGroupCommit(100*time.Microsecond)),
			)
		}
		store, err := vpindex.Open(coalOpts(extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		var (
			wg      sync.WaitGroup
			written atomic.Int64
		)
		shadow := make([]map[vpindex.ObjectID]vpindex.Object, writers)
		errs := make(chan error, writers+1)
		for w := 0; w < writers; w++ {
			shadow[w] = make(map[vpindex.ObjectID]vpindex.Object)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(900 + w)))
				base := w * idsPer
				for i := 0; i < perWriter; i++ {
					id := base + 1 + rng.Intn(idsPer)
					o := testObject(id, rng)
					o.T = float64(i) / 8
					switch {
					case i%23 == 11: // Remove: a flush-barrier verb
						err := store.Remove(o.ID)
						if err != nil && !errors.Is(err, vpindex.ErrNotFound) {
							errs <- fmt.Errorf("writer %d remove: %w", w, err)
							return
						}
						if err == nil {
							delete(shadow[w], o.ID)
						}
					case i%23 == 17: // Update: barrier + strict not-found
						err := store.Update(vpindex.Object{ID: o.ID}, o)
						if err != nil && !errors.Is(err, vpindex.ErrNotFound) {
							errs <- fmt.Errorf("writer %d update: %w", w, err)
							return
						}
						if err == nil {
							shadow[w][o.ID] = o
						}
					case i%23 == 5: // Insert: barrier + strict duplicate
						err := store.Insert(o)
						if err != nil && !errors.Is(err, vpindex.ErrDuplicate) {
							errs <- fmt.Errorf("writer %d insert: %w", w, err)
							return
						}
						if err == nil {
							shadow[w][o.ID] = o
						}
					default:
						if err := store.Report(o); err != nil {
							errs <- fmt.Errorf("writer %d report: %w", w, err)
							return
						}
						shadow[w][o.ID] = o
					}
					written.Add(1)
				}
			}(w)
		}
		// Force repartition swaps while the coalescer drains, so batches
		// land across epoch cutovers.
		wg.Add(1)
		go func() {
			defer wg.Done()
			total := int64(writers * perWriter)
			for _, obj := range []vpindex.PartitionObjective{
				vpindex.ObjectiveSpeed, vpindex.ObjectiveDVA,
			} {
				for written.Load() < total/3 {
					time.Sleep(time.Millisecond)
				}
				if err := store.RepartitionTo(obj); err != nil {
					errs <- fmt.Errorf("RepartitionTo(%v): %w", obj, err)
					return
				}
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		verify := func(s *vpindex.Store, when string) {
			t.Helper()
			want := map[vpindex.ObjectID]vpindex.Object{}
			for w := range shadow {
				for id, o := range shadow[w] {
					want[id] = o
				}
			}
			if s.Len() != len(want) {
				t.Fatalf("%s: len = %d, want %d", when, s.Len(), len(want))
			}
			for id, o := range want {
				got, ok := s.Get(id)
				if !ok || got != o {
					t.Fatalf("%s: object %d = %+v ok=%v, want %+v", when, id, got, ok, o)
				}
			}
			found, err := s.Search(wholeDomain())
			if err != nil {
				t.Fatalf("%s: search: %v", when, err)
			}
			if len(found) != len(want) {
				t.Fatalf("%s: search found %d, want %d", when, len(found), len(want))
			}
			for _, id := range found {
				if _, ok := want[id]; !ok {
					t.Fatalf("%s: search returned unknown id %d", when, id)
				}
			}
		}
		verify(store, "live")
		if ing, ok := store.IngestStats(); !ok || ing.CoalescedRecords == 0 || ing.FlushBarriers == 0 {
			t.Fatalf("ingest stats = %+v ok=%v, want coalesced records and barriers", ing, ok)
		}
		if dir == "" {
			return
		}
		if err := store.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		recovered, err := vpindex.Open(coalOpts(vpindex.WithDataDir(dir))...)
		if err != nil {
			t.Fatalf("recovery open: %v", err)
		}
		defer recovered.Close()
		verify(recovered, "recovered")
	}
	t.Run("memory", func(t *testing.T) { run(t, "") })
	t.Run("durable", func(t *testing.T) { run(t, t.TempDir()) })
}

// TestKillPointCoalescedOracle extends the kill-point matrix to the
// coalesced write path: concurrent writers stream unique-ID reports through
// the coalescer while the injector kills the process image at every
// successive fsync. After recovery, every acknowledged report must be
// present with its exact value (acked = survives), and nothing may appear
// that was not at least submitted — a recovered ID is either acked or the
// in-flight op that died mid-commit (unacked ops otherwise leave no trace).
func TestKillPointCoalescedOracle(t *testing.T) {
	const (
		writers   = 4
		perWriter = 24
	)
	obj := func(w, i int) vpindex.Object {
		rng := rand.New(rand.NewSource(int64(w*1000 + i)))
		o := testObject(w*10000+i+1, rng)
		o.T = float64(i) / 8
		return o
	}
	for killAt := int64(1); ; killAt++ {
		dir := t.TempDir()
		fi := vpindex.NewFaultInjector(killAt)
		store, err := vpindex.Open(coalOpts(
			vpindex.WithDataDir(dir),
			vpindex.WithSyncPolicy(vpindex.SyncGroupCommit(100*time.Microsecond)),
			vpindex.WithFaultInjector(fi),
			vpindex.WithCheckpointEvery(10),
			vpindex.WithWALSegmentBytes(2048),
		)...)
		if err != nil {
			t.Fatalf("killAt %d: open: %v", killAt, err)
		}
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			acked   = map[vpindex.ObjectID]vpindex.Object{}
			errored = map[vpindex.ObjectID]vpindex.Object{}
			crashed atomic.Bool
		)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					o := obj(w, i)
					if err := store.Report(o); err != nil {
						if !errors.Is(err, vpindex.ErrInjectedCrash) {
							t.Errorf("killAt %d: writer %d op %d: %v is not an injected crash", killAt, w, i, err)
						}
						crashed.Store(true)
						mu.Lock()
						errored[o.ID] = o
						mu.Unlock()
						return
					}
					mu.Lock()
					acked[o.ID] = o
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		_ = store.Close()
		if t.Failed() {
			return
		}

		recovered, err := vpindex.Open(coalOpts(vpindex.WithDataDir(dir))...)
		if err != nil {
			t.Fatalf("killAt %d: recovery open: %v", killAt, err)
		}
		for id, want := range acked {
			got, ok := recovered.Get(id)
			if !ok || got != want {
				t.Fatalf("killAt %d: acked object %d lost or corrupt (got %+v ok=%v)", killAt, id, got, ok)
			}
		}
		found, err := recovered.Search(wholeDomain())
		if err != nil {
			t.Fatalf("killAt %d: recovered search: %v", killAt, err)
		}
		for _, id := range found {
			if _, ok := acked[id]; ok {
				continue
			}
			want, wasInFlight := errored[id]
			if !wasInFlight {
				t.Fatalf("killAt %d: recovered id %d was never submitted", killAt, id)
			}
			got, _ := recovered.Get(id)
			if got != want {
				t.Fatalf("killAt %d: in-flight id %d recovered with wrong value %+v", killAt, id, got)
			}
		}
		recovered.Close()
		if !crashed.Load() {
			// The whole script outran the kill point (or it landed in a
			// background checkpoint): higher kill points change nothing more.
			if fi.SyncPoints() < killAt {
				t.Logf("matrix covered %d kill points", killAt-1)
				return
			}
		}
	}
}

// TestCoalescingCounters pins the counters exactly: with a zero window and
// no concurrency every Report drains as its own batch, every barrier verb
// counts one flush barrier, and DurabilityStats mirrors IngestStats.
func TestCoalescingCounters(t *testing.T) {
	dir := t.TempDir()
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithShards(2),
		vpindex.WithSeed(7),
		vpindex.WithWriteCoalescing(0, 8),
		vpindex.WithDataDir(dir),
		vpindex.WithSyncPolicy(vpindex.SyncNone()),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	const reports = 10
	for i := 1; i <= reports; i++ {
		if err := store.Report(testObject(i, rng)); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
	}
	ing, ok := store.IngestStats()
	if !ok {
		t.Fatal("coalesced store reports no ingest stats")
	}
	if ing.CoalescedBatches != reports || ing.CoalescedRecords != reports || ing.FlushBarriers != 0 {
		t.Fatalf("after %d sequential reports: %+v", reports, ing)
	}

	if err := store.Insert(testObject(100, rng)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	o5 := testObject(5, rng)
	if err := store.Update(vpindex.Object{ID: 5}, o5); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := store.Remove(100); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := store.ReportBatch([]vpindex.Object{testObject(101, rng), testObject(102, rng)}); err != nil {
		t.Fatalf("report batch: %v", err)
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	ing, _ = store.IngestStats()
	if ing.FlushBarriers != 5 {
		t.Fatalf("after insert+update+remove+batch+checkpoint: barriers = %d, want 5", ing.FlushBarriers)
	}
	if ing.CoalescedBatches != reports || ing.CoalescedRecords != reports {
		t.Fatalf("barrier verbs must not count as coalesced: %+v", ing)
	}
	ds, ok := store.DurabilityStats()
	if !ok {
		t.Fatal("durable store reports no durability stats")
	}
	if ds.CoalescedBatches != ing.CoalescedBatches ||
		ds.CoalescedRecords != ing.CoalescedRecords ||
		ds.FlushBarriers != ing.FlushBarriers {
		t.Fatalf("DurabilityStats %+v does not mirror IngestStats %+v", ds, ing)
	}

	// Concurrent phase: exact record count, batches in [records/maxBatch, records].
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				if err := store.Report(testObject(w*per+i+200, rng)); err != nil {
					t.Errorf("concurrent report: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ing2, _ := store.IngestStats()
	if got := ing2.CoalescedRecords - ing.CoalescedRecords; got != workers*per {
		t.Fatalf("concurrent phase recorded %d coalesced records, want %d", got, workers*per)
	}
	if ing2.CoalescedBatches <= ing.CoalescedBatches || ing2.CoalescedBatches > ing2.CoalescedRecords {
		t.Fatalf("implausible batch count: %+v -> %+v", ing, ing2)
	}

	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ing3, _ := store.IngestStats()
	if ing3.FlushBarriers != ing2.FlushBarriers+1 {
		t.Fatalf("close must count one flush barrier: %d -> %d", ing2.FlushBarriers, ing3.FlushBarriers)
	}

	// A store without the option reports no ingest stats.
	plain, err := vpindex.Open(vpindex.WithDomain(vpindex.R(0, 0, 100, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.IngestStats(); ok {
		t.Fatal("non-coalesced store must report ok=false")
	}
}

// TestCoalescedErrorAttribution: a failing record must fail only its own
// caller — here a strict Insert-style duplicate cannot happen on Report, so
// the error path is exercised through a degraded store instead: after the
// store leaves Healthy every queued and future Report fails, and the error
// is delivered per caller.
func TestCoalescedDegradedReports(t *testing.T) {
	dir := t.TempDir()
	fi := vpindex.NewFaultInjector(1)
	store, err := vpindex.Open(coalOpts(
		vpindex.WithDataDir(dir),
		vpindex.WithSyncPolicy(vpindex.SyncAlways()),
		vpindex.WithFaultInjector(fi),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rng := rand.New(rand.NewSource(9))
	var firstErr error
	for i := 1; i <= 50 && firstErr == nil; i++ {
		firstErr = store.Report(testObject(i, rng))
	}
	if firstErr == nil {
		t.Fatal("injected crash never surfaced")
	}
	if !errors.Is(firstErr, vpindex.ErrInjectedCrash) {
		t.Fatalf("report error %v does not wrap the injected crash", firstErr)
	}
	// Every later Report must fail fast with the same classification.
	if err := store.Report(testObject(99, rng)); err == nil || !errors.Is(err, vpindex.ErrInjectedCrash) {
		t.Fatalf("post-crash report error = %v, want injected-crash classification", err)
	}
}
