package vpindex

import (
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/wal"
)

// PartitionObjective selects a partitioning objective for a
// velocity-partitioned Store (see WithPartitioner / WithPartitionerAuto).
type PartitionObjective = core.PartitionerKind

const (
	// ObjectiveDVA partitions by dominant velocity axes — the paper's
	// technique and the default.
	ObjectiveDVA = core.KindDVA
	// ObjectiveSpeed partitions by concentric speed bands with thresholds
	// minimizing the expected query enlargement over the sampled speed
	// distribution.
	ObjectiveSpeed = core.KindSpeed
	// ObjectiveNone keeps a single unpartitioned index inside the
	// partition machinery — the baseline the auto chooser can fall back to.
	ObjectiveNone = core.KindNone
)

// DefaultAutoPartitionSample is the bootstrap sample size used when velocity
// partitioning is requested without an explicit WithVelocitySample or
// WithAutoPartition setting. It matches the paper's analyzer input ("a
// sample set of 10,000 velocities").
const DefaultAutoPartitionSample = 10_000

// DefaultDriftThreshold is the axis-drift angle (radians, ~11.5 degrees)
// past which the adaptive repartition policy rebuilds the partitions when no
// explicit WithDriftThreshold is given.
const DefaultDriftThreshold = 0.2

// RepartitionPolicy configures adaptive online repartitioning (Section 5.5
// of the paper: re-run the velocity analyzer when "the dominant direction of
// object travel changes significantly"). Once the Store is partitioned it
// keeps a bounded reservoir of recently reported velocities; after Every
// post-partition reports a fresh DVA analysis runs over the reservoir off
// the write path, and when any live axis has drifted past DriftThreshold the
// Store rebuilds every shard's partitions from the new analysis while
// queries keep serving.
type RepartitionPolicy struct {
	// Every is the check cadence in post-partition reports. <= 0 disables
	// automatic checks; Store.Repartition remains available as the manual
	// trigger.
	Every int
	// DriftThreshold is the largest angle (radians) any live DVA may drift
	// from the matching axis of a fresh analysis before the partitions are
	// rebuilt. <= 0 takes DefaultDriftThreshold.
	DriftThreshold float64
	// ReservoirSize bounds the pooled recent-velocity reservoir that feeds
	// the fresh analysis (split evenly across the shards). <= 0 takes
	// DefaultAutoPartitionSample.
	ReservoirSize int
}

// Option configures a Store. Pass any combination to Open; later options
// override earlier ones.
type Option func(*storeConfig)

// storeConfig is the resolved configuration behind Open's functional
// options. The base-index knobs reuse the Options struct of the deprecated
// constructor API so both surfaces stay in lockstep.
type storeConfig struct {
	base Options

	// k > 0, a velocity sample, or an auto-partition threshold all enable
	// velocity partitioning; Open normalizes the trio.
	k      int
	sample []Vec2
	autoN  int

	tauBuckets int
	tauRefresh int
	seed       int64

	// objective is the fixed partitioning objective (default ObjectiveDVA);
	// objectiveSet marks that WithPartitioner was given (which alone enables
	// velocity partitioning); autoObjective turns on the cost-driven chooser.
	objective     PartitionObjective
	objectiveSet  bool
	autoObjective bool

	// repart is the adaptive repartitioning policy; maintHook observes
	// maintenance outcomes (bootstrap cutovers, drift checks, swaps).
	repart    RepartitionPolicy
	maintHook func(MaintenanceEvent)

	// shards is the ObjectID-hash shard count (normalized to >= 1);
	// searchPar bounds the query fan-out worker pools (0 = GOMAXPROCS).
	shards    int
	searchPar int

	// eventBuf / eventPolicy configure the Events() subscription stream
	// (see WithEventBuffer).
	eventBuf    int
	eventPolicy BackpressurePolicy

	// Durable-mode knobs (see WithDataDir). dataDir == "" keeps the Store
	// purely in-memory over the simulated MemStore.
	dataDir     string
	syncPol     SyncPolicy
	ckptEvery   int64
	walSegBytes int64
	injector    *FaultInjector

	// retry bounds the transient-fault retry loops in the buffer pools and
	// the WAL (the zero value takes the storage defaults); scrubEvery is the
	// background integrity scrubber's cadence (0 disables it).
	retry      RetryPolicy
	scrubEvery time.Duration

	// mmapOn maps pages.dat read-only so page reads skip the pread syscall
	// (see WithMmap); compactChain / compactBytes bound the delta-checkpoint
	// chain before a background compaction folds it into a full snapshot
	// (see WithCheckpointCompaction; 0 = unbounded).
	mmapOn       bool
	compactChain int
	compactBytes int64

	// coalesce enables the leader-drained write coalescer on Report
	// (see WithWriteCoalescing); coalWindow is the leader's dwell, coalMax
	// the drained batch cap.
	coalesce   bool
	coalWindow time.Duration
	coalMax    int
}

// SyncPolicy says when a durable Store's acknowledged writes must reach
// stable storage; build one with SyncAlways, SyncGroupCommit, or SyncNone.
type SyncPolicy = wal.SyncPolicy

// SyncAlways fsyncs the log before every write acknowledgment — full
// durability, one fsync per write (amortized across concurrent writers by
// the group-commit leader election). This is the default for WithDataDir.
func SyncAlways() SyncPolicy { return wal.Always() }

// SyncGroupCommit acknowledges a write only after its log record is fsynced,
// but lets the flush leader linger up to window before syncing so concurrent
// writers share one fsync. Durability of acknowledged writes is preserved;
// latency is traded for throughput.
func SyncGroupCommit(window time.Duration) SyncPolicy { return wal.GroupCommit(window) }

// SyncNone acknowledges writes without waiting for the log to reach disk; a
// crash may lose the tail of acknowledged writes (never corrupting what
// survives). Checkpoints and Close still sync.
func SyncNone() SyncPolicy { return wal.None() }

// FaultInjector simulates kill -9 at a chosen sync point for crash-recovery
// tests: the Nth fsync fails and every later write is refused.
type FaultInjector = storage.FaultInjector

// NewFaultInjector returns an injector that kills the process image at the
// killAtSync-th sync point (1-based); killAtSync <= 0 never kills.
func NewFaultInjector(killAtSync int64) *FaultInjector {
	return storage.NewFaultInjector(killAtSync)
}

// WithKind selects the base index structure for every partition (default
// TPRStar).
func WithKind(k Kind) Option { return func(c *storeConfig) { c.base.Kind = k } }

// WithDomain sets the data space (default 100,000 x 100,000 m, Table 1).
func WithDomain(r Rect) Option { return func(c *storeConfig) { c.base.Domain = r } }

// WithBufferPages sizes each LRU buffer pool in pages (default 50, Table 1).
// The Store creates one pool per index structure — one per shard while
// unpartitioned, one per velocity partition per shard afterwards, i.e.
// shards × (k+1) pools — so the total page cache is n times that count, not
// n. (The deprecated New/NewVP constructors keep one shared n-page pool.)
func WithBufferPages(n int) Option { return func(c *storeConfig) { c.base.BufferPages = n } }

// WithDiskLatency injects a delay per simulated physical page access so
// execution time tracks I/O like a disk would; 0 (default) disables it.
func WithDiskLatency(d time.Duration) Option {
	return func(c *storeConfig) { c.base.DiskLatency = d }
}

// WithHorizon sets the TPR*-tree cost-integral horizon (default 120 ts).
func WithHorizon(h float64) Option { return func(c *storeConfig) { c.base.Horizon = h } }

// WithQueryExtent sets the query side length the TPR*-tree optimizes for
// (default 1000 m).
func WithQueryExtent(e float64) Option { return func(c *storeConfig) { c.base.QueryExtent = e } }

// WithGridOrder sets the Bx-tree curve grid's bits per axis (default 8).
func WithGridOrder(bits uint) Option { return func(c *storeConfig) { c.base.GridOrder = bits } }

// WithTimeBuckets sets the Bx-tree's time-bucket count (default 2).
func WithTimeBuckets(n int) Option { return func(c *storeConfig) { c.base.Buckets = n } }

// WithMaxUpdateInterval sets the guaranteed max time between an object's
// updates, which sizes the Bx-tree's bucket rotation (default 120 ts).
func WithMaxUpdateInterval(d float64) Option {
	return func(c *storeConfig) { c.base.MaxUpdateInterval = d }
}

// WithHistogramCells sets the Bx velocity histogram resolution (default 64).
func WithHistogramCells(n int) Option { return func(c *storeConfig) { c.base.HistogramCells = n } }

// WithZOrder switches the Bx-tree from the Hilbert curve to the Z-curve.
func WithZOrder() Option { return func(c *storeConfig) { c.base.UseZOrder = true } }

// WithLegacyScan restores the Bx-tree's per-interval scan path — one full
// B+-tree root-to-leaf descent per space-filling-curve interval — instead of
// the batched leaf-walk engine that serves a whole time bucket's intervals
// with a single descent plus sibling hops. Query results are identical
// either way; the knob exists as the measured baseline of the scan
// benchmark (vpbench -exp scan) and for differential tests. Ignored by
// TPR*-backed stores.
func WithLegacyScan() Option { return func(c *storeConfig) { c.base.LegacyScan = true } }

// WithBaseOptions replaces every base-index knob at once with an Options
// struct — the migration bridge for callers moving off New/NewVP. Individual
// With... options given after it still apply on top.
func WithBaseOptions(o Options) Option { return func(c *storeConfig) { c.base = o } }

// WithVelocityPartitioning enables the VP technique with k DVA partitions
// (plus the outlier partition). k <= 0 keeps the paper's default of 2 ("most
// road networks have two dominant traffic directions"). Unless
// WithVelocitySample supplies an upfront sample, the Store bootstraps online:
// it starts unpartitioned and migrates itself once enough velocities have
// been reported (see WithAutoPartition).
func WithVelocityPartitioning(k int) Option {
	return func(c *storeConfig) {
		if k <= 0 {
			k = 2
		}
		c.k = k
	}
}

// WithVelocitySample supplies an upfront velocity sample; the DVA analysis
// runs during Open and the Store is partitioned from the first Report.
// Implies velocity partitioning.
func WithVelocitySample(sample []Vec2) Option {
	return func(c *storeConfig) { c.sample = sample }
}

// WithAutoPartition enables the online bootstrap: the Store starts in a
// staging (unpartitioned) index, collects the first n reported velocities as
// the analysis sample, then runs the DVA analysis and migrates every live
// object into the partitions — no upfront sample needed. Implies velocity
// partitioning. n <= 0 uses DefaultAutoPartitionSample. Ignored when
// WithVelocitySample provides a sample.
func WithAutoPartition(n int) Option {
	return func(c *storeConfig) {
		if n <= 0 {
			n = DefaultAutoPartitionSample
		}
		c.autoN = n
	}
}

// WithPartitioner fixes the partitioning objective: every analysis — the
// bootstrap, drift checks, manual Repartition — runs that objective's
// partitioner. Implies velocity partitioning (the partition count comes
// from WithVelocityPartitioning, default 2: k DVA partitions plus the
// outlier index, or k speed bands). The default objective is ObjectiveDVA,
// the paper's technique; ObjectiveNone runs the partition machinery with a
// single unpartitioned index.
func WithPartitioner(obj PartitionObjective) Option {
	return func(c *storeConfig) {
		c.objective = obj
		c.objectiveSet = true
		c.autoObjective = false
	}
}

// WithPartitionerAuto enables the cost-driven objective chooser: each
// analysis (bootstrap, drift checks, manual Repartition) runs every
// candidate partitioner — DVA, speed bands, none — over the velocity
// sample, scores each candidate against the recent query-shape log with
// the enlargement cost model (see core.EstimateCost), and installs the
// cheapest, with a 10% preference for the live objective so near-ties
// cannot flap the partitions. Implies velocity partitioning.
func WithPartitionerAuto() Option {
	return func(c *storeConfig) {
		c.objectiveSet = true
		c.autoObjective = true
	}
}

// WithRepartitionPolicy sets the complete adaptive repartitioning policy at
// once. The shorthand options WithRepartitionEvery and WithDriftThreshold
// cover the common cases; later options override earlier ones field-wise
// only when they set a field.
func WithRepartitionPolicy(p RepartitionPolicy) Option {
	return func(c *storeConfig) { c.repart = p }
}

// WithRepartitionEvery enables the adaptive repartition policy: after every
// n post-partition reports the Store re-analyzes its recent-velocity
// reservoir off the write path and rebuilds the partitions if the dominant
// axes drifted past the threshold (WithDriftThreshold, default
// DefaultDriftThreshold). n <= 0 disables automatic checks.
func WithRepartitionEvery(n int) Option {
	return func(c *storeConfig) { c.repart.Every = n }
}

// WithDriftThreshold sets the axis-drift angle (radians) past which an
// automatic repartition check rebuilds the partitions. It only takes effect
// together with WithRepartitionEvery (or a full WithRepartitionPolicy).
func WithDriftThreshold(radians float64) Option {
	return func(c *storeConfig) { c.repart.DriftThreshold = radians }
}

// WithMaintenanceHook observes every completed maintenance action — the
// bootstrap cutover, automatic drift checks, and repartition swaps — with
// its outcome. Maintenance failures never surface through Report or
// ReportBatch (the triggering write is already applied when maintenance
// runs); the hook and LastMaintenanceError are how they are seen. The hook
// is called outside the Store's locks and may itself call Store methods; it
// must be safe for concurrent calls.
func WithMaintenanceHook(h func(MaintenanceEvent)) Option {
	return func(c *storeConfig) { c.maintHook = h }
}

// WithShards splits the Store into n ObjectID-hash shards, each with its own
// lock, id→record table, and index structure, so writes to different shards
// run in parallel (see the Store type docs). n <= 0 (the default) uses
// GOMAXPROCS; WithShards(1) restores the single global lock. More shards
// mean more parallelism but also more index structures for a query to fan
// out over, so the default tracks the machine's parallelism rather than the
// data size.
func WithShards(n int) Option { return func(c *storeConfig) { c.shards = n } }

// WithSearchParallelism bounds the worker pools that fan queries (Search,
// SearchKNN) out across the Store's shards and, within each shard, across
// its velocity partitions. 0 (the default) uses GOMAXPROCS; 1 forces the
// strictly sequential probe order, which is the baseline the parallel path
// is tested byte-identical against. It does not affect ReportBatch's write
// fan-out, which is always bounded by GOMAXPROCS (use WithShards(1) to
// serialize writes).
func WithSearchParallelism(n int) Option { return func(c *storeConfig) { c.searchPar = n } }

// WithEventBuffer configures the Store's subscription event stream (see
// Store.Events): n is the channel buffer capacity (n <= 0 takes
// DefaultEventBuffer) and policy says what happens when it fills —
// BlockOnFull (the default) applies back-pressure to the write verbs and
// loses nothing, DropOldest discards the oldest buffered deltas so the
// write path never waits on a slow consumer (Store.DroppedEvents counts
// the losses). The setting takes effect when the stream is created by the
// first Events call.
func WithEventBuffer(n int, policy BackpressurePolicy) Option {
	return func(c *storeConfig) {
		c.eventBuf = n
		c.eventPolicy = policy
	}
}

// WithDataDir makes the Store durable: dir holds a single-file page store
// (pages.dat), a segmented write-ahead log (wal-*.seg), and checkpoint
// snapshots (checkpoint.ckpt). Every acknowledged write verb is logged before
// it is acknowledged (per the SyncPolicy), periodic checkpoints bound the log,
// and a later Open with the same dir recovers the full logical state —
// objects, velocity partitions, and subscriptions — by loading the newest
// checkpoint and replaying the log tail through the normal write paths. The
// dir is created if missing. Call Close to shut the store down cleanly.
func WithDataDir(dir string) Option { return func(c *storeConfig) { c.dataDir = dir } }

// WithSyncPolicy sets when durable writes are acknowledged relative to the
// log fsync (default SyncAlways). Only meaningful with WithDataDir.
func WithSyncPolicy(p SyncPolicy) Option { return func(c *storeConfig) { c.syncPol = p } }

// WithCheckpointEvery checkpoints the Store automatically after every n
// logged records, truncating WAL segments older than the snapshot. n <= 0
// (the default) disables automatic checkpoints; Store.Checkpoint remains the
// manual trigger. Only meaningful with WithDataDir.
func WithCheckpointEvery(n int) Option {
	return func(c *storeConfig) { c.ckptEvery = int64(n) }
}

// WithWALSegmentBytes sets the log segment rotation size (default 4 MiB).
// Smaller segments mean finer-grained reclamation after checkpoints; tests
// use tiny segments to exercise rotation. Only meaningful with WithDataDir.
func WithWALSegmentBytes(n int64) Option {
	return func(c *storeConfig) { c.walSegBytes = n }
}

// WithFaultInjector wires a crash simulator into the durable Store's data
// file and log: at the injector's chosen sync point the fsync fails and all
// later file writes are refused, modeling kill -9 where everything already
// handed to the OS may survive but nothing after does. Only meaningful with
// WithDataDir; used by the crash-recovery tests and vpbench.
func WithFaultInjector(fi *FaultInjector) Option {
	return func(c *storeConfig) { c.injector = fi }
}

// WithRetryPolicy bounds the exponential-backoff loop that retries
// transient storage faults (intermittent EIO, failed fsyncs) under every
// physical page access and log append before the error ever reaches a Store
// verb: MaxAttempts total tries, delays doubling from BaseDelay up to
// MaxDelay. Zero fields take the defaults (4 attempts, 1ms base, 50ms cap).
// Permanent faults and checksum failures are never retried — they degrade
// the store instead (see Store.Health).
func WithRetryPolicy(p RetryPolicy) Option { return func(c *storeConfig) { c.retry = p } }

// WithScrubEvery starts a background scrubber on a durable Store: every d it
// checksum-verifies each live page of the page file and re-scans the sealed
// WAL segments, quarantining corrupt pages and degrading the store to
// read-only when latent corruption is found — instead of letting a future
// read trip over it. d <= 0 (the default) disables the scrubber; ScrubNow
// remains the manual trigger. Only meaningful with WithDataDir.
func WithScrubEvery(d time.Duration) Option { return func(c *storeConfig) { c.scrubEvery = d } }

// WithMmap serves durable page reads from a read-only memory mapping of the
// data file instead of pread: slot checksums are verified straight from the
// mapping and the page is copied out with no syscall per read. Writes keep
// going through pwrite + fsync (the shared mapping observes them), the
// mapping is re-established when the file grows, and the Store silently
// falls back to pread when the platform lacks mmap or a mapping attempt
// fails — behavior is identical either way, only the syscall count differs.
// Only meaningful with WithDataDir.
func WithMmap() Option { return func(c *storeConfig) { c.mmapOn = true } }

// WithCheckpointCompaction bounds a durable Store's delta-checkpoint chain:
// when a checkpoint leaves more than maxChain delta files, or more than
// maxBytes cumulative delta bytes, behind the last full snapshot, a
// background compaction folds the chain into a fresh full snapshot off the
// commit lock. A zero threshold is ignored; passing both as 0 disables
// compaction (the chain grows until the next full checkpoint). Only
// meaningful with WithDataDir.
func WithCheckpointCompaction(maxChain int, maxBytes int64) Option {
	return func(c *storeConfig) {
		c.compactChain = maxChain
		c.compactBytes = maxBytes
	}
}

// WithTauBuckets sizes the tau histograms (default 100, paper setting).
func WithTauBuckets(n int) Option { return func(c *storeConfig) { c.tauBuckets = n } }

// WithTauRefreshInterval recomputes each partition's outlier threshold after
// this many routed inserts (Section 5.5); 0 (default) disables refresh.
func WithTauRefreshInterval(n int) Option { return func(c *storeConfig) { c.tauRefresh = n } }

// WithSeed makes the DVA analysis' clustering deterministic.
func WithSeed(seed int64) Option { return func(c *storeConfig) { c.seed = seed } }

// WithWriteCoalescing turns on the write coalescer (see ingest.go):
// concurrent Report calls enqueue into a FIFO and an elected leader drains
// them as one shard-batched apply plus one WAL record, waiting out the sync
// policy once per batch instead of once per record. Report keeps its
// synchronous, per-record-error contract; per-object order is preserved by
// the FIFO drain; Insert/Update/Remove/ReportBatch, Checkpoint, and Close
// act as flush barriers.
//
// window is the longest a leader dwells waiting for more callers before
// draining — the latency a lone Report trades for batching. 0 disables the
// dwell entirely: batches still form naturally from the Reports that arrive
// while the previous batch drains and syncs, which is the right setting for
// saturated pipelines. maxBatch caps one drained batch (<= 0 means
// DefaultCoalesceBatch). Works on durable and in-memory stores alike; on
// in-memory stores it amortizes shard-lock acquisitions and subscription
// evaluation only.
func WithWriteCoalescing(window time.Duration, maxBatch int) Option {
	return func(c *storeConfig) {
		c.coalesce = true
		c.coalWindow = window
		c.coalMax = maxBatch
	}
}

// vpEnabled reports whether any option asked for velocity partitioning.
func (c *storeConfig) vpEnabled() bool {
	return c.k > 0 || len(c.sample) > 0 || c.autoN > 0 || c.objectiveSet
}

// normalize fills defaults and reconciles the VP trio.
func (c *storeConfig) normalize() {
	c.base = c.base.withDefaults()
	if c.shards <= 0 {
		c.shards = runtime.GOMAXPROCS(0)
	}
	if c.eventBuf <= 0 {
		c.eventBuf = DefaultEventBuffer
	}
	if c.coalesce {
		if c.coalWindow < 0 {
			c.coalWindow = 0
		}
		if c.coalMax <= 0 {
			c.coalMax = DefaultCoalesceBatch
		}
	}
	if !c.vpEnabled() {
		return
	}
	if c.k <= 0 {
		c.k = 2
	}
	if len(c.sample) > 0 {
		c.autoN = 0 // upfront sample wins; nothing to bootstrap
	} else if c.autoN <= 0 {
		c.autoN = DefaultAutoPartitionSample
	}
	// The velocity reservoir is always collected once partitioned (it is
	// what the manual Repartition analyzes); the policy's Every only gates
	// the automatic checks.
	if c.repart.ReservoirSize <= 0 {
		c.repart.ReservoirSize = DefaultAutoPartitionSample
	}
	if c.repart.DriftThreshold <= 0 {
		c.repart.DriftThreshold = DefaultDriftThreshold
	}
}
