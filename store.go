package vpindex

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/parallel"
	"repro/internal/storage"
)

// Store is the production facade over every index configuration in this
// package: one type that is plain or velocity-partitioned, TPR*- or
// Bx-backed, depending only on the Options passed to Open.
//
// Unlike the raw index interface — where Delete and Update need the caller
// to hand back the exact old record — the Store keeps an id→record table
// (its own while unpartitioned, the partition manager's afterwards), so
// clients speak in production verbs: Report (insert-or-update by ID), Remove
// (by ID), Get, ReportBatch. This is the operational shape of a live
// location service: devices send bare position/velocity reports; nobody
// ships the server's previous state back to it.
//
// # Concurrency: sharded locking
//
// A Store is safe for concurrent use and is internally sharded by ObjectID
// (WithShards, default GOMAXPROCS). Each shard owns a private RWMutex, its
// own id→record table, and its own index structure — a staging index while
// unpartitioned, a full velocity-partition manager afterwards — so the
// ID-keyed write verbs (Report, Remove, Insert, Update) contend only on the
// shard their object hashes to, and writes to different shards proceed
// genuinely in parallel. Reads (Get) touch one shard under its read lock;
// queries (Search, SearchKNN) fan out across the shards with a bounded
// worker pool (WithSearchParallelism) and merge the per-shard buffers in
// shard order after the joins — and inside every shard the partition
// manager fans out across its velocity partitions the same way. ReportBatch
// groups the batch by shard and applies the groups concurrently, one lock
// acquisition per shard. WithShards(1) restores a single global lock.
//
// Every partition index (and every shard's staging index) draws pages from
// its own LRU buffer pool over one shared simulated disk, so page-cache
// hits on independent partitions never contend on a single pool mutex;
// Stats aggregates the counters across all pools.
//
// # Online bootstrap
//
// With velocity partitioning enabled but no upfront sample, the Store
// bootstraps online: it starts in staging (unpartitioned) indexes,
// accumulates the first n reported velocities (collected per shard, counted
// globally), then runs the DVA analysis once over the pooled sample and
// cuts every shard over to freshly built partitions in a single coordinated
// migration under all shard locks — queries work identically before,
// during, and after the cutover.
type Store struct {
	cfg    storeConfig
	disk   *storage.Disk
	shards []*storeShard

	// pools tracks every buffer pool the Store has created (one per shard
	// staging index, one per partition per shard after the cutover) so
	// Stats can aggregate I/O counters across all of them.
	poolMu sync.Mutex
	pools  []*storage.BufferPool

	// Bootstrap coordination: sampled counts staged velocities across all
	// shards; a report that pushes it to nextTrip attempts the cutover;
	// bootMu serializes cutovers; partitioned flips true exactly once,
	// under all shard locks. A failed cutover (degenerate sample) re-arms
	// nextTrip a full sample size later instead of retrying the O(n)
	// analysis on every subsequent write.
	bootMu      sync.Mutex
	sampled     atomic.Int64
	nextTrip    atomic.Int64
	partitioned atomic.Bool

	anMu     sync.RWMutex
	analysis core.Analysis
}

// storeShard is one lock domain of the Store: the objects whose IDs hash
// here, plus the index structure they live in. Exactly one of base/mgr is
// active: base while staging or permanently unpartitioned, mgr once the
// velocity partitions exist.
type storeShard struct {
	mu   sync.RWMutex
	base model.Index
	mgr  *core.Manager

	// objs is the shard's id→record table (world frame) while staging or
	// permanently unpartitioned — the base trees have no ID surface of
	// their own. After the cutover the manager's internal table is the
	// single copy and objs is nil.
	objs map[ObjectID]Object

	// sample accumulates reported velocities toward the auto-partition
	// threshold; nil when not bootstrapping.
	sample []Vec2
}

// Store satisfies the full index interface, so it drops into every API that
// accepts one (monitors, benchmarks, the oracle tests).
var (
	_ model.Index      = (*Store)(nil)
	_ model.KNNIndex   = (*Store)(nil)
	_ monitor.Reporter = (*Store)(nil)
)

// Open builds a Store from functional options. Examples:
//
//	// Unpartitioned TPR*-tree with defaults (sharded across GOMAXPROCS).
//	s, err := vpindex.Open()
//
//	// VP-partitioned Bx-tree that bootstraps its own partitions after
//	// the first 10,000 reports, with 8 Store shards.
//	s, err := vpindex.Open(
//		vpindex.WithKind(vpindex.Bx),
//		vpindex.WithShards(8),
//		vpindex.WithVelocityPartitioning(2),
//		vpindex.WithAutoPartition(10_000),
//	)
//
//	// VP with an upfront sample (partitioned immediately, like NewVP).
//	s, err := vpindex.Open(vpindex.WithVelocitySample(sample))
func Open(opts ...Option) (*Store, error) {
	var cfg storeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.normalize()
	if cfg.autoN > 0 && cfg.autoN < cfg.k {
		return nil, fmt.Errorf("vpindex: auto-partition sample of %d cannot form %d partitions", cfg.autoN, cfg.k)
	}
	s := &Store{cfg: cfg, disk: storage.NewDisk()}
	s.disk.SetLatency(cfg.base.DiskLatency)
	s.shards = make([]*storeShard, cfg.shards)
	for i := range s.shards {
		s.shards[i] = &storeShard{}
	}
	if len(cfg.sample) > 0 {
		if err := s.partitionLocked(cfg.sample); err != nil {
			return nil, err
		}
		return s, nil
	}
	suffix := ""
	if cfg.autoN > 0 {
		suffix = "staging"
		s.nextTrip.Store(int64(cfg.autoN))
	}
	for _, sh := range s.shards {
		idx, err := buildBase(s.newPool(), cfg.base, cfg.base.Domain, suffix)
		if err != nil {
			return nil, err
		}
		sh.base = idx
		sh.objs = make(map[ObjectID]Object)
		if cfg.autoN > 0 {
			sh.sample = make([]Vec2, 0, cfg.autoN/len(s.shards)+1)
		}
	}
	return s, nil
}

// shardFor routes an ObjectID to its shard. Fibonacci hashing spreads the
// dense sequential ID ranges real device fleets use evenly across shards.
func (s *Store) shardFor(id ObjectID) *storeShard {
	return s.shards[s.shardIndex(id)]
}

func (s *Store) shardIndex(id ObjectID) int {
	if len(s.shards) == 1 {
		return 0
	}
	return int(uint64(id) * 0x9E3779B97F4A7C15 % uint64(len(s.shards)))
}

// newPool creates one buffer pool over the Store's shared disk and registers
// it for Stats aggregation. Every index structure the Store builds gets its
// own pool so concurrent page-cache hits never serialize on one pool mutex.
func (s *Store) newPool() *storage.BufferPool {
	p := storage.NewBufferPool(s.disk, s.cfg.base.BufferPages)
	s.poolMu.Lock()
	s.pools = append(s.pools, p)
	s.poolMu.Unlock()
	return p
}

// buildManager constructs one shard's partition manager from the completed
// analysis, each partition over its own buffer pool. New pools are appended
// to *pools rather than registered on the Store, so a failed cutover
// attempt leaks nothing into Stats — the caller registers them on commit.
func (s *Store) buildManager(an core.Analysis, pools *[]*storage.BufferPool) (*core.Manager, error) {
	mgr, err := core.NewManager(an, core.ManagerConfig{
		Domain:             s.cfg.base.Domain,
		TauRefreshInterval: s.cfg.tauRefresh,
		TauBuckets:         s.cfg.tauBuckets,
		SearchParallelism:  s.cfg.searchPar,
	}, func(spec core.PartitionSpec) (model.Index, error) {
		p := storage.NewBufferPool(s.disk, s.cfg.base.BufferPages)
		idx, err := buildBase(p, s.cfg.base, spec.Domain, spec.Name)
		if err != nil {
			return nil, err
		}
		*pools = append(*pools, p)
		return idx, nil
	})
	if err != nil {
		return nil, err
	}
	mgr.SetName(s.cfg.base.Kind.String() + "(vp)")
	return mgr, nil
}

// partitionLocked runs the DVA analysis over sample, builds one partition
// manager per shard, and migrates every live object into them. Nothing is
// committed until every shard's migration has succeeded, so a failure
// leaves the staging state serving. Caller holds every shard's lock (or is
// Open, before the Store escapes).
func (s *Store) partitionLocked(sample []Vec2) error {
	an, err := core.Analyze(sample, core.AnalyzerConfig{
		K:          s.cfg.k,
		TauBuckets: s.cfg.tauBuckets,
		Cluster:    clusterOptions(s.cfg.seed),
	})
	if err != nil {
		return fmt.Errorf("vpindex: velocity analysis: %w", err)
	}
	mgrs := make([]*core.Manager, len(s.shards))
	var pools []*storage.BufferPool
	for i, sh := range s.shards {
		mgr, err := s.buildManager(an, &pools)
		if err != nil {
			return err
		}
		if len(sh.objs) > 0 {
			live := make([]Object, 0, len(sh.objs))
			for _, o := range sh.objs {
				live = append(live, o)
			}
			if err := mgr.InsertBulk(live); err != nil {
				return fmt.Errorf("vpindex: bootstrap migration: %w", err)
			}
		}
		mgrs[i] = mgr
	}
	// Commit the cutover: the staging indexes are abandoned in place — their
	// pools stop being touched and only still count toward cumulative Stats —
	// and each shard's manager table becomes the only record copy. The new
	// partition pools become visible to Stats only now, so a failed attempt
	// above left no trace.
	s.poolMu.Lock()
	s.pools = append(s.pools, pools...)
	s.poolMu.Unlock()
	for i, sh := range s.shards {
		sh.mgr = mgrs[i]
		sh.base = nil
		sh.objs = nil
		sh.sample = nil
	}
	s.anMu.Lock()
	s.analysis = an
	s.anMu.Unlock()
	s.partitioned.Store(true)
	return nil
}

// cutover performs the coordinated bootstrap migration: it pools the
// per-shard samples under every shard's lock and partitions all shards at
// once. Safe to call from any number of tripping reporters; only the first
// does the work. On failure (a degenerate sample the analysis rejects) the
// staging state keeps serving — the triggering report itself was already
// applied — and the trip threshold is re-armed a full sample size later,
// so the O(n) analysis is not retried on every subsequent write but gets a
// fresh chance once the workload has produced new velocities.
func (s *Store) cutover() error {
	s.bootMu.Lock()
	defer s.bootMu.Unlock()
	if s.partitioned.Load() {
		return nil
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].mu.Unlock()
		}
	}()
	sample := make([]Vec2, 0, s.sampled.Load())
	for _, sh := range s.shards {
		sample = append(sample, sh.sample...)
	}
	err := s.partitionLocked(sample)
	if err != nil {
		s.nextTrip.Store(s.sampled.Load() + int64(s.cfg.autoN))
	}
	return err
}

// reportShardLocked applies one ID-keyed upsert to sh and advances the
// bootstrap sample. It reports whether this record tripped the
// auto-partition threshold (the caller runs the cutover after releasing the
// shard lock — the cutover needs every shard's lock). Caller holds sh.mu.
func (s *Store) reportShardLocked(sh *storeShard, o Object) (trip bool, err error) {
	if sh.mgr != nil {
		return false, sh.mgr.Report(o)
	}
	old, exists := sh.objs[o.ID]
	if exists {
		err = sh.base.Update(old, o)
	} else {
		err = sh.base.Insert(o)
	}
	if err != nil {
		return false, err
	}
	sh.objs[o.ID] = o
	if sh.sample == nil {
		return false, nil
	}
	sh.sample = append(sh.sample, o.Vel)
	return s.sampled.Add(1) >= s.nextTrip.Load(), nil
}

// Report upserts one object by ID: a new ID is inserted, a known ID replaces
// its previous record (routing between partitions as the velocity dictates).
// The record's T must carry the report timestamp; the Store never needs the
// previous record from the caller. Only the object's shard is locked.
func (s *Store) Report(o Object) error {
	sh := s.shardFor(o.ID)
	sh.mu.Lock()
	trip, err := s.reportShardLocked(sh, o)
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	if trip {
		return s.cutover()
	}
	return nil
}

// ReportBatch upserts many objects, grouped by shard and applied with one
// lock acquisition per shard, concurrently across shards (which also
// amortizes the partition manager's tau-refresh bookkeeping per group). On
// error, records that were applied before the failure stay applied; because
// shards proceed independently, those are not necessarily a prefix of the
// batch, though within each shard records apply in batch order. A batch
// that crosses the auto-partition threshold lands in staging first and the
// coordinated cutover migrates it at the end of the batch.
func (s *Store) ReportBatch(objs []Object) error {
	if len(objs) == 0 {
		return nil
	}
	groups := make([][]Object, len(s.shards))
	if len(s.shards) == 1 {
		groups[0] = objs
	} else {
		for _, o := range objs {
			i := s.shardIndex(o.ID)
			groups[i] = append(groups[i], o)
		}
	}
	var trip atomic.Bool
	// Write fan-out is bounded by GOMAXPROCS, independent of the query knob
	// WithSearchParallelism: the final state is identical whatever order the
	// groups land in (each shard applies its group in batch order), so
	// there is nothing for a sequential setting to pin down. Callers who
	// need fully serialized writes run WithShards(1).
	err := parallel.Do(len(s.shards), 0, func(i int) error {
		group := groups[i]
		if len(group) == 0 {
			return nil
		}
		sh := s.shards[i]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if sh.mgr != nil {
			if _, err := sh.mgr.ReportBatch(group); err != nil {
				return fmt.Errorf("vpindex: batch report: %w", err)
			}
			return nil
		}
		for _, o := range group {
			t, err := s.reportShardLocked(sh, o)
			if err != nil {
				return fmt.Errorf("vpindex: batch report of object %d: %w", o.ID, err)
			}
			if t {
				trip.Store(true)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if trip.Load() {
		return s.cutover()
	}
	return nil
}

// Remove deletes the object by ID. Returns ErrNotFound (errors.Is-able) when
// no such object is indexed.
func (s *Store) Remove(id ObjectID) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.mgr != nil {
		// The manager only consults the ID; its table supplies the record.
		return sh.mgr.Delete(Object{ID: id})
	}
	old, ok := sh.objs[id]
	if !ok {
		return fmt.Errorf("vpindex: remove of object %d: %w", id, ErrNotFound)
	}
	if err := sh.base.Delete(old); err != nil {
		return err
	}
	delete(sh.objs, id)
	return nil
}

// Get returns the current record for id, touching only its shard.
func (s *Store) Get(id ObjectID) (Object, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.mgr != nil {
		return sh.mgr.Get(id)
	}
	o, ok := sh.objs[id]
	return o, ok
}

// searchShardLocked answers q within one shard. Caller holds sh.mu (read).
func searchShardLocked(sh *storeShard, q RangeQuery) ([]ObjectID, error) {
	if sh.mgr != nil {
		return sh.mgr.Search(q)
	}
	return sh.base.Search(q)
}

// Search answers a predictive range query. It works identically in staging,
// unpartitioned, and partitioned configurations. The query fans out across
// the shards (and, inside each shard, across the velocity partitions) with
// bounded worker pools; per-shard result buffers are merged in shard order
// after the joins, so the result is deterministic for a given Store state.
func (s *Store) Search(q RangeQuery) ([]ObjectID, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	lists := make([][]ObjectID, len(s.shards))
	err := parallel.Do(len(s.shards), s.cfg.searchPar, func(i int) error {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		ids, err := searchShardLocked(sh, q)
		if err != nil {
			return err
		}
		lists[i] = ids
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(lists) == 1 {
		return lists[0], nil
	}
	total := 0
	for _, ids := range lists {
		total += len(ids)
	}
	out := make([]ObjectID, 0, total)
	for _, ids := range lists {
		out = append(out, ids...)
	}
	return out, nil
}

// SearchKNN returns the k objects nearest the query center at the query's
// evaluation time, fanning out across shards like Search and merging the
// per-shard top-k lists. Returns ErrUnsupported if the configured base
// structure has no kNN implementation (both built-in kinds do).
func (s *Store) SearchKNN(q KNNQuery) ([]Neighbor, error) {
	lists := make([][]Neighbor, len(s.shards))
	err := parallel.Do(len(s.shards), s.cfg.searchPar, func(i int) error {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		var (
			ns  []Neighbor
			err error
		)
		if sh.mgr != nil {
			ns, err = sh.mgr.SearchKNN(q)
		} else {
			knn, ok := sh.base.(model.KNNIndex)
			if !ok {
				return fmt.Errorf("vpindex: %s does not support kNN: %w", sh.base.Name(), ErrUnsupported)
			}
			ns, err = knn.SearchKNN(q)
		}
		if err != nil {
			return err
		}
		lists[i] = ns
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(lists) == 1 {
		return lists[0], nil
	}
	return model.MergeNeighbors(q.K, lists...), nil
}

// Len returns the number of live objects across all shards.
func (s *Store) Len() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if sh.mgr != nil {
			total += sh.mgr.Len()
		} else {
			total += len(sh.objs)
		}
		sh.mu.RUnlock()
	}
	return total
}

// NumShards returns the Store's shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Partitioned reports whether the Store is currently velocity-partitioned
// (immediately true with an upfront sample; flips true at the bootstrap
// cutover in auto-partition mode; always false otherwise).
func (s *Store) Partitioned() bool { return s.partitioned.Load() }

// Analysis returns the velocity analysis that shaped the partitions, and
// whether one has run yet.
func (s *Store) Analysis() (core.Analysis, bool) {
	s.anMu.RLock()
	defer s.anMu.RUnlock()
	return s.analysis, s.partitioned.Load()
}

// BootstrapProgress reports how many velocities have been collected toward
// the auto-partition threshold, and the threshold itself. The threshold is
// the currently armed one: after a failed cutover attempt it moves a full
// sample size out, so collected never sits above target while the Store is
// still unpartitioned. After the cutover (or when auto-partitioning is off)
// it returns (0, 0).
func (s *Store) BootstrapProgress() (collected, target int) {
	if s.cfg.autoN == 0 || s.partitioned.Load() {
		return 0, 0
	}
	return int(s.sampled.Load()), int(s.nextTrip.Load())
}

// Partitions snapshots the live logical partition set (empty until
// partitioned): one entry per velocity partition, with Size summed across
// every shard. Spec, rotation, tau, and the Index handle come from shard 0
// (shards may drift apart slightly in tau once online refresh runs).
func (s *Store) Partitions() []core.PartitionInfo {
	if !s.partitioned.Load() {
		return nil
	}
	var out []core.PartitionInfo
	for i, sh := range s.shards {
		sh.mu.RLock()
		infos := sh.mgr.Partitions()
		sh.mu.RUnlock()
		if i == 0 {
			out = infos
			continue
		}
		for j := range infos {
			out[j].Size += infos[j].Size
		}
	}
	return out
}

// Stats returns cumulative simulated I/O counters aggregated across every
// buffer pool the Store has created (one per staging index, one per
// partition per shard).
func (s *Store) Stats() IOStats {
	s.poolMu.Lock()
	pools := append([]*storage.BufferPool(nil), s.pools...)
	s.poolMu.Unlock()
	var st IOStats
	for _, p := range pools {
		ps := p.Stats()
		st.Reads += ps.Misses
		st.Writes += ps.Writes
		st.Hits += ps.Hits
	}
	return st
}

// Pools snapshots every buffer pool the Store has created, for
// instrumentation (benchmarks snapshot miss counters around operations).
func (s *Store) Pools() []*storage.BufferPool {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	return append([]*storage.BufferPool(nil), s.pools...)
}

// Name implements model.Index.
func (s *Store) Name() string {
	sh := s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.mgr != nil {
		return sh.mgr.Name()
	}
	return sh.base.Name()
}

// IO implements model.Index (same counters as Stats).
func (s *Store) IO() IOStats { return s.Stats() }

// Insert implements model.Index with strict semantics: reporting an ID that
// is already indexed returns ErrDuplicate. Application code should prefer
// Report.
func (s *Store) Insert(o Object) error {
	sh := s.shardFor(o.ID)
	sh.mu.Lock()
	var (
		trip bool
		err  error
	)
	switch {
	case sh.mgr != nil:
		err = sh.mgr.Insert(o)
	default:
		if _, dup := sh.objs[o.ID]; dup {
			err = fmt.Errorf("vpindex: insert of object %d: %w", o.ID, ErrDuplicate)
		} else {
			trip, err = s.reportShardLocked(sh, o)
		}
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	if trip {
		return s.cutover()
	}
	return nil
}

// Delete implements model.Index. Only the ID of o is consulted — the stored
// record comes from the Store's own table.
func (s *Store) Delete(o Object) error { return s.Remove(o.ID) }

// Update implements model.Index. Only old.ID is consulted; the rest of the
// old record comes from the table, so legacy delete+insert call sites keep
// working without tracking server state.
func (s *Store) Update(old, new Object) error {
	if new.ID != old.ID {
		return fmt.Errorf("vpindex: update changes object id %d -> %d", old.ID, new.ID)
	}
	sh := s.shardFor(old.ID)
	sh.mu.Lock()
	var (
		trip bool
		err  error
	)
	switch {
	case sh.mgr != nil:
		err = sh.mgr.UpdateByID(new)
	default:
		if _, ok := sh.objs[old.ID]; !ok {
			err = fmt.Errorf("vpindex: update of object %d: %w", old.ID, ErrNotFound)
		} else {
			trip, err = s.reportShardLocked(sh, new)
		}
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	if trip {
		return s.cutover()
	}
	return nil
}
