package vpindex

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/parallel"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Store is the production facade over every index configuration in this
// package: one type that is plain or velocity-partitioned, TPR*- or
// Bx-backed, depending only on the Options passed to Open.
//
// Unlike the raw index interface — where Delete and Update need the caller
// to hand back the exact old record — the Store keeps an id→record table
// (its own while unpartitioned, the partition manager's afterwards), so
// clients speak in production verbs: Report (insert-or-update by ID), Remove
// (by ID), Get, ReportBatch. This is the operational shape of a live
// location service: devices send bare position/velocity reports; nobody
// ships the server's previous state back to it.
//
// # Concurrency: sharded locking
//
// A Store is safe for concurrent use and is internally sharded by ObjectID
// (WithShards, default GOMAXPROCS). Each shard owns a private RWMutex, its
// own id→record table, and its own index structure — a staging index while
// unpartitioned, a full velocity-partition manager afterwards — so the
// ID-keyed write verbs (Report, Remove, Insert, Update) contend only on the
// shard their object hashes to, and writes to different shards proceed
// genuinely in parallel. Reads (Get) touch one shard under its read lock;
// queries (Search, SearchKNN) fan out across the shards with a bounded
// worker pool (WithSearchParallelism) and merge the per-shard buffers in
// shard order after the joins — and inside every shard the partition
// manager fans out across its velocity partitions the same way. ReportBatch
// groups the batch by shard and applies the groups concurrently, one lock
// acquisition per shard. WithShards(1) restores a single global lock.
//
// Every partition index (and every shard's staging index) draws pages from
// its own LRU buffer pool over one shared simulated disk, so page-cache
// hits on independent partitions never contend on a single pool mutex;
// Stats aggregates the counters across all pools.
//
// # Online bootstrap
//
// With velocity partitioning enabled but no upfront sample, the Store
// bootstraps online: it starts in staging (unpartitioned) indexes,
// accumulates the first n reported velocities (collected per shard, counted
// globally), then runs the DVA analysis once over the pooled sample and
// cuts every shard over to freshly built partitions in a single coordinated
// migration under all shard locks — queries work identically before,
// during, and after the cutover.
//
// # Adaptive repartitioning
//
// Once partitioned, each shard keeps a bounded ring of recently reported
// velocities. With a repartition policy configured (WithRepartitionEvery /
// WithDriftThreshold / WithRepartitionPolicy), every policy-cadence reports
// a fresh DVA analysis of the pooled reservoir runs in the background and,
// when any live axis has drifted past the threshold, the Store rebuilds the
// partitions: per shard, a new manager (with fresh per-partition pools) is
// built, the live population is migrated with InsertBulk under that shard's
// write lock, and the manager is swapped in — the same cutover machinery as
// the bootstrap, applied one shard at a time so the other shards keep
// serving reads and writes throughout. Repartition is the synchronous
// manual trigger.
//
// Maintenance is decoupled from the write path: a failed background
// analysis (e.g. a degenerate reservoir) is recorded — LastMaintenanceError,
// WithMaintenanceHook — never returned from Report/ReportBatch, and the
// cadence keeps counting so the next multiple re-arms the check.
//
// # Continuous queries
//
// Standing subscriptions (Subscribe, Unsubscribe, SubscriptionResults,
// RefreshSubscriptions, Events) are served by a Store-native engine whose
// evaluation state is sharded with the same ObjectID hash as the write
// path and updated outside the shard locks — see subscriptions.go.
// Subscription result sets reference ObjectIDs, not index internals, so
// they ride through bootstrap cutovers and repartition swaps unchanged;
// only the engine's coarse velocity-class filter is re-seeded from each
// new epoch's analysis.
type Store struct {
	cfg    storeConfig
	disk   storage.PageStore
	shards []*storeShard

	// dur is the durable-mode state (WAL, checkpoints, recovery bookkeeping);
	// nil unless WithDataDir was given. See durability.go.
	dur *durability

	// coal is the leader-drained write coalescer; nil unless
	// WithWriteCoalescing was given. See ingest.go.
	coal *coalescer

	// scratchPool recycles the per-shard grouping scratch of the batched
	// write paths (applyReportBatch, the coalescer drain), so a steady
	// stream of batches allocates no per-batch slices.
	scratchPool sync.Pool

	// pools tracks every live buffer pool (one per shard staging index, one
	// per partition per shard after the cutover) so Stats can aggregate I/O
	// counters across all of them. When a partition epoch is replaced — the
	// bootstrap cutover retiring the staging indexes, a repartition swap
	// retiring the previous epoch — the outgoing pools' counters are folded
	// into retired (keeping Stats cumulative and monotonic) and the pools
	// themselves are retired, releasing their cached frames and their
	// indexes' disk pages, so repeated swaps do not grow memory forever.
	poolMu  sync.Mutex
	pools   []*storage.BufferPool
	retired IOStats

	// Bootstrap coordination: sampled counts staged velocities across all
	// shards; a report that pushes it to nextTrip attempts the cutover;
	// bootMu serializes cutovers; partitioned flips true exactly once,
	// under all shard locks. A failed cutover (degenerate sample) re-arms
	// nextTrip a full sample size later instead of retrying the O(n)
	// analysis on every subsequent write.
	bootMu      sync.Mutex
	sampled     atomic.Int64
	nextTrip    atomic.Int64
	partitioned atomic.Bool

	anMu     sync.RWMutex
	analysis core.Analysis

	// Adaptive repartitioning: resCap is each shard's velocity-ring
	// capacity; reports counts post-partition reports toward the policy
	// cadence (never reset — each multiple of Every fires exactly once);
	// maintMu serializes maintenance actions (drift checks, swaps) without
	// ever blocking the write path (background checks TryLock and yield);
	// epoch tags the current partition generation and repartitions counts
	// completed swaps.
	resCap       int
	reports      atomic.Int64
	maintMu      sync.Mutex
	epoch        atomic.Int64
	repartitions atomic.Int64
	swapping     atomic.Bool

	// Query-shape logging for the partitioning cost model: qlogCap is each
	// shard's ring capacity; qrr distributes observed queries round-robin
	// across the shard rings so one ring's mutex never becomes a global
	// query-path bottleneck.
	qlogCap int
	qrr     atomic.Uint64

	maintErrMu sync.Mutex
	maintErr   error

	// subEng is the Store-native continuous-query engine (see
	// subscriptions.go), created lazily by the first Subscribe or Events
	// call; nil until then, so sub-less stores pay one atomic load per
	// write. Its evaluation state is sharded with the same ObjectID hash
	// as the write path and updated outside the shard locks.
	subEng atomic.Pointer[subEngine]

	// Health state machine (see health.go): health holds the current Health
	// value; healthMu guards the reason/cause pair recorded when the Store
	// first left Healthy. Transitions are one-way (Healthy → Degraded →
	// Failed), driven by noteIOFault classification at the write-verb exits
	// and by the background scrubber.
	health       atomic.Int32
	healthMu     sync.Mutex
	healthReason string
	healthCause  error
}

// MaintenanceOp names a Store maintenance action.
type MaintenanceOp string

const (
	// MaintBootstrap is the one-shot auto-partition cutover.
	MaintBootstrap MaintenanceOp = "bootstrap"
	// MaintDriftCheck is an automatic analyze-and-compare round that did
	// not swap (below threshold, or failed before the swap decision).
	MaintDriftCheck MaintenanceOp = "drift-check"
	// MaintRepartition is an analyze round that decided to rebuild the
	// partitions (threshold tripped, or the manual Repartition trigger).
	MaintRepartition MaintenanceOp = "repartition"
	// MaintCheckpoint is a durable-mode checkpoint (manual Checkpoint call
	// or the WithCheckpointEvery cadence).
	MaintCheckpoint MaintenanceOp = "checkpoint"
	// MaintHealth is a health-state transition (Healthy → Degraded or
	// → Failed); Err carries the classified cause. See Store.Health.
	MaintHealth MaintenanceOp = "health"
	// MaintScrub is one completed integrity scrub pass (the WithScrubEvery
	// cadence or a manual ScrubNow); Err is the first corruption found.
	MaintScrub MaintenanceOp = "scrub"
)

// MaintenanceEvent reports one completed maintenance action to the
// WithMaintenanceHook observer.
type MaintenanceEvent struct {
	Op  MaintenanceOp
	Err error // nil on success
	// Drift is the objective distance between the live partition set and
	// the fresh analysis (drift checks and repartitions): the largest axis
	// angle in radians under the DVA objective, the scaled threshold shift
	// under the speed objective, core.DriftMax on an objective change.
	Drift float64
	// SampleSize is the number of velocities the analysis consumed.
	SampleSize int
	// Swapped reports whether a new partition set went live.
	Swapped bool
	// Objective is the partitioning objective of the analysis the action
	// selected (meaningful for bootstrap, drift-check, and repartition
	// events).
	Objective PartitionObjective
}

// storeShard is one lock domain of the Store: the objects whose IDs hash
// here, plus the index structure they live in. Exactly one of base/mgr is
// active: base while staging or permanently unpartitioned, mgr once the
// velocity partitions exist.
type storeShard struct {
	mu   sync.RWMutex
	base model.Index
	mgr  *core.Manager

	// objs is the shard's id→record table (world frame) while staging or
	// permanently unpartitioned — the base trees have no ID surface of
	// their own. After the cutover the manager's internal table is the
	// single copy and objs is nil.
	objs map[ObjectID]Object

	// sample accumulates reported velocities toward the auto-partition
	// threshold; nil when not bootstrapping.
	sample []Vec2

	// epoch tags the partition generation mgr belongs to, so Partitions()
	// can tell when it observes shards on opposite sides of an in-flight
	// repartition swap, and the drift check can tell a partial swap needs
	// finishing.
	epoch int

	// pools are the buffer pools behind the shard's current index
	// structure (the staging pool, then one per partition); the previous
	// generation is retired when a new one swaps in.
	pools []*storage.BufferPool

	// dirty / gone are the shard's incremental-checkpoint sets (durable
	// stores only; both nil otherwise): the IDs reported/inserted/updated
	// and the IDs removed since the last checkpoint capture. An ID is in at
	// most one of the two — the newest verb wins — so a delta checkpoint
	// reads each dirty ID's current record and tombstones the gone ones.
	// Guarded by mu like the tables they shadow.
	dirty map[ObjectID]struct{}
	gone  map[ObjectID]struct{}

	// res is a bounded ring of the shard's most recently reported
	// velocities (the repartition analysis sample); resPos is the next
	// overwrite position once the ring is full.
	res    []Vec2
	resPos int

	// qlog is a bounded ring of recently observed query shapes (the cost
	// model's workload evidence), under its own mutex because Search holds
	// only sh.mu's read side and must not serialize on it.
	qmu  sync.Mutex
	qlog []core.QueryShape
	qpos int
}

// observeQuery records one query shape in the shard's ring (capacity cap;
// oldest entry overwritten first). Takes qmu itself.
func (sh *storeShard) observeQuery(q core.QueryShape, cap int) {
	if cap <= 0 {
		return
	}
	sh.qmu.Lock()
	if len(sh.qlog) < cap {
		if sh.qlog == nil {
			sh.qlog = make([]core.QueryShape, 0, cap)
		}
		sh.qlog = append(sh.qlog, q)
	} else {
		sh.qlog[sh.qpos] = q
		sh.qpos++
		if sh.qpos == len(sh.qlog) {
			sh.qpos = 0
		}
	}
	sh.qmu.Unlock()
}

// markDirty records that id's record changed since the last checkpoint
// capture. Caller holds sh.mu. No-op on non-durable stores.
func (sh *storeShard) markDirty(id ObjectID) {
	if sh.dirty == nil {
		return
	}
	delete(sh.gone, id)
	sh.dirty[id] = struct{}{}
}

// markGone records that id was removed since the last checkpoint capture.
// Caller holds sh.mu. No-op on non-durable stores.
func (sh *storeShard) markGone(id ObjectID) {
	if sh.gone == nil {
		return
	}
	delete(sh.dirty, id)
	sh.gone[id] = struct{}{}
}

// observeVel records a reported velocity in the shard's recent-velocity
// ring (capacity cap; oldest entry overwritten first). Caller holds sh.mu.
func (sh *storeShard) observeVel(v Vec2, cap int) {
	if cap <= 0 {
		return
	}
	if len(sh.res) < cap {
		if sh.res == nil {
			sh.res = make([]Vec2, 0, cap)
		}
		sh.res = append(sh.res, v)
		return
	}
	sh.res[sh.resPos] = v
	sh.resPos++
	if sh.resPos == len(sh.res) {
		sh.resPos = 0
	}
}

// Store satisfies the full index interface, so it drops into every API that
// accepts one (monitors, benchmarks, the oracle tests).
var (
	_ model.Index      = (*Store)(nil)
	_ model.KNNIndex   = (*Store)(nil)
	_ monitor.Reporter = (*Store)(nil)
)

// Open builds a Store from functional options. Examples:
//
//	// Unpartitioned TPR*-tree with defaults (sharded across GOMAXPROCS).
//	s, err := vpindex.Open()
//
//	// VP-partitioned Bx-tree that bootstraps its own partitions after
//	// the first 10,000 reports, with 8 Store shards.
//	s, err := vpindex.Open(
//		vpindex.WithKind(vpindex.Bx),
//		vpindex.WithShards(8),
//		vpindex.WithVelocityPartitioning(2),
//		vpindex.WithAutoPartition(10_000),
//	)
//
//	// VP with an upfront sample (partitioned immediately, like NewVP).
//	s, err := vpindex.Open(vpindex.WithVelocitySample(sample))
func Open(opts ...Option) (*Store, error) {
	var cfg storeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.normalize()
	if cfg.autoN > 0 && cfg.autoN < cfg.k {
		return nil, fmt.Errorf("vpindex: auto-partition sample of %d cannot form %d partitions", cfg.autoN, cfg.k)
	}
	s := &Store{cfg: cfg}
	if cfg.dataDir != "" {
		if err := s.initDurable(); err != nil {
			return nil, err
		}
	} else {
		ms := storage.NewMemStore()
		ms.SetLatency(cfg.base.DiskLatency)
		s.disk = ms
	}
	fail := func(err error) (*Store, error) {
		s.closeFiles()
		return nil, err
	}
	if cfg.vpEnabled() {
		s.resCap = (cfg.repart.ReservoirSize + cfg.shards - 1) / cfg.shards
		s.qlogCap = (defaultQueryLogSize + cfg.shards - 1) / cfg.shards
	}
	s.shards = make([]*storeShard, cfg.shards)
	for i := range s.shards {
		s.shards[i] = &storeShard{}
		if cfg.dataDir != "" {
			// Durable stores track per-shard dirty sets for delta checkpoints.
			s.shards[i].dirty = make(map[ObjectID]struct{})
			s.shards[i].gone = make(map[ObjectID]struct{})
		}
	}
	if len(cfg.sample) > 0 {
		if err := s.partitionLocked(cfg.sample); err != nil {
			return fail(err)
		}
	} else {
		suffix := ""
		if cfg.autoN > 0 {
			suffix = "staging"
			s.nextTrip.Store(int64(cfg.autoN))
		}
		for _, sh := range s.shards {
			pool := s.newPool()
			idx, err := buildBase(pool, cfg.base, cfg.base.Domain, suffix)
			if err != nil {
				return fail(err)
			}
			sh.base = idx
			sh.pools = []*storage.BufferPool{pool}
			sh.objs = make(map[ObjectID]Object)
			if cfg.autoN > 0 {
				sh.sample = make([]Vec2, 0, cfg.autoN/len(s.shards)+1)
			}
		}
	}
	if cfg.coalesce {
		s.coal = newCoalescer(s, cfg.coalWindow, cfg.coalMax)
	}
	if s.dur != nil {
		if err := s.recover(); err != nil {
			return fail(err)
		}
	}
	return s, nil
}

// retireUnregistered releases a failed attempt's pools: they were never
// registered for Stats, so nothing folds in — frames and disk pages are
// simply freed and the attempt leaves no trace.
func retireUnregistered(pools []*storage.BufferPool) {
	for _, p := range pools {
		p.Retire()
	}
}

// retirePools removes an outgoing index generation's pools from Stats
// aggregation — folding their counters into the cumulative retired total
// first — and releases their frames and disk pages.
func (s *Store) retirePools(ps []*storage.BufferPool) {
	if len(ps) == 0 {
		return
	}
	dead := make(map[*storage.BufferPool]bool, len(ps))
	s.poolMu.Lock()
	for _, p := range ps {
		dead[p] = true
		st := p.Stats()
		s.retired.Reads += st.Misses
		s.retired.Writes += st.Writes
		s.retired.Hits += st.Hits
	}
	live := s.pools[:0]
	for _, p := range s.pools {
		if !dead[p] {
			live = append(live, p)
		}
	}
	s.pools = live
	s.poolMu.Unlock()
	for _, p := range ps {
		p.Retire()
	}
}

// shardFor routes an ObjectID to its shard. Fibonacci hashing spreads the
// dense sequential ID ranges real device fleets use evenly across shards.
func (s *Store) shardFor(id ObjectID) *storeShard {
	return s.shards[s.shardIndex(id)]
}

func (s *Store) shardIndex(id ObjectID) int {
	if len(s.shards) == 1 {
		return 0
	}
	return int(uint64(id) * 0x9E3779B97F4A7C15 % uint64(len(s.shards)))
}

// newPool creates one buffer pool over the Store's shared disk and registers
// it for Stats aggregation. Every index structure the Store builds gets its
// own pool so concurrent page-cache hits never serialize on one pool mutex.
func (s *Store) newPool() *storage.BufferPool {
	p := storage.NewBufferPool(s.disk, s.cfg.base.BufferPages)
	p.SetRetryPolicy(s.cfg.retry)
	s.poolMu.Lock()
	s.pools = append(s.pools, p)
	s.poolMu.Unlock()
	return p
}

// buildManager constructs one shard's partition manager from the completed
// analysis, each partition over its own buffer pool. New pools are appended
// to *pools rather than registered on the Store, so a failed cutover
// attempt leaks nothing into Stats — the caller registers them on commit.
func (s *Store) buildManager(an core.Analysis, pools *[]*storage.BufferPool) (*core.Manager, error) {
	mgr, err := core.NewManager(an, core.ManagerConfig{
		Domain:             s.cfg.base.Domain,
		TauRefreshInterval: s.cfg.tauRefresh,
		TauBuckets:         s.cfg.tauBuckets,
		SearchParallelism:  s.cfg.searchPar,
	}, func(spec core.PartitionSpec) (model.Index, error) {
		p := storage.NewBufferPool(s.disk, s.cfg.base.BufferPages)
		p.SetRetryPolicy(s.cfg.retry)
		idx, err := buildBase(p, s.cfg.base, spec.Domain, spec.Name)
		if err != nil {
			return nil, err
		}
		*pools = append(*pools, p)
		return idx, nil
	})
	if err != nil {
		return nil, err
	}
	mgr.SetName(s.cfg.base.Kind.String() + "(vp)")
	return mgr, nil
}

// defaultQueryLogSize is the total capacity of the query-shape log, split
// evenly across the shards (mirroring the velocity reservoir's split).
const defaultQueryLogSize = 1024

// partitionerFor builds the configured Partitioner for one objective.
func (s *Store) partitionerFor(obj PartitionObjective) core.Partitioner {
	switch obj {
	case ObjectiveSpeed:
		return core.SpeedPartitioner{Bands: s.cfg.k, Buckets: s.cfg.tauBuckets}
	case ObjectiveNone:
		return core.NonePartitioner{}
	default:
		return core.DVAPartitioner{Config: core.AnalyzerConfig{
			K:          s.cfg.k,
			TauBuckets: s.cfg.tauBuckets,
			Cluster:    clusterOptions(s.cfg.seed),
		}}
	}
}

// costQueries returns the workload evidence for the partitioning cost
// model: the pooled query-shape log, or — before any query has been
// observed — a single synthetic shape built from the configured query
// extent and a medium prediction window, so the chooser is never blind.
func (s *Store) costQueries() []core.QueryShape {
	out := make([]core.QueryShape, 0, s.qlogCap*len(s.shards))
	for _, sh := range s.shards {
		sh.qmu.Lock()
		out = append(out, sh.qlog...)
		sh.qmu.Unlock()
	}
	if len(out) > 0 {
		return out
	}
	extent := s.cfg.base.QueryExtent
	if extent <= 0 {
		extent = 1000 // the TPR*-tree's Table 1 default
	}
	return []core.QueryShape{{HalfW: extent / 2, HalfH: extent / 2, Window: 60}}
}

// chooseAnalysis picks the analysis the next partition epoch is built from.
// forced pins one objective (RepartitionTo); otherwise a fixed objective
// (WithPartitioner) analyzes with that partitioner only, and the auto
// chooser (WithPartitionerAuto) runs every candidate partitioner over the
// sample, scores each result against the recent query-shape log with
// core.EstimateCost, and takes the cheapest — with a 10% preference for the
// live objective so cost-model noise near a tie cannot flap the partitions
// between objectives on every drift check.
func (s *Store) chooseAnalysis(sample []Vec2, forced *PartitionObjective) (core.Analysis, error) {
	if forced != nil {
		an, err := s.partitionerFor(*forced).Analyze(sample)
		if err != nil {
			return core.Analysis{}, fmt.Errorf("vpindex: velocity analysis (%s): %w", *forced, err)
		}
		return an, nil
	}
	if !s.cfg.autoObjective {
		an, err := s.partitionerFor(s.cfg.objective).Analyze(sample)
		if err != nil {
			return core.Analysis{}, fmt.Errorf("vpindex: velocity analysis: %w", err)
		}
		return an, nil
	}
	queries := s.costQueries()
	live := ObjectiveDVA
	haveLive := false
	if s.partitioned.Load() {
		s.anMu.RLock()
		live = s.analysis.Kind
		s.anMu.RUnlock()
		haveLive = true
	}
	var (
		best     core.Analysis
		bestCost float64
		found    bool
		firstErr error
	)
	for _, obj := range []PartitionObjective{ObjectiveDVA, ObjectiveSpeed, ObjectiveNone} {
		an, err := s.partitionerFor(obj).Analyze(sample)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		cost := core.EstimateCost(an, sample, queries)
		if haveLive && obj == live {
			cost *= 0.9
		}
		if !found || cost < bestCost {
			best, bestCost, found = an, cost, true
		}
	}
	if !found {
		return core.Analysis{}, fmt.Errorf("vpindex: velocity analysis: %w", firstErr)
	}
	return best, nil
}

// partitionLocked runs the configured partitioning analysis over sample,
// builds one partition manager per shard, and migrates every live object
// into them. Nothing is committed until every shard's migration has
// succeeded, so a failure leaves the staging state serving. Caller holds
// every shard's lock (or is Open, before the Store escapes).
func (s *Store) partitionLocked(sample []Vec2) error {
	an, err := s.chooseAnalysis(sample, nil)
	if err != nil {
		return err
	}
	return s.applyAnalysisLocked(an, sample)
}

// applyAnalysisLocked installs partitions built from a completed analysis —
// the second half of partitionLocked, split out so crash recovery can rebuild
// the exact partition set a logged swap record carries without re-running the
// analyzer. sample, when non-empty, seeds the recent-velocity reservoir.
// Caller holds every shard's lock (or is Open, before the Store escapes).
func (s *Store) applyAnalysisLocked(an core.Analysis, sample []Vec2) error {
	mgrs := make([]*core.Manager, len(s.shards))
	shardPools := make([][]*storage.BufferPool, len(s.shards))
	// A failed attempt's pools were never registered; retire them directly
	// (freeing their pages) so the attempt leaves no trace in Stats or on
	// the simulated disk.
	fail := func(err error) error {
		for _, ps := range shardPools {
			retireUnregistered(ps)
		}
		return err
	}
	for i, sh := range s.shards {
		mgr, err := s.buildManager(an, &shardPools[i])
		if err != nil {
			return fail(err)
		}
		if len(sh.objs) > 0 {
			live := make([]Object, 0, len(sh.objs))
			for _, o := range sh.objs {
				live = append(live, o)
			}
			if err := mgr.InsertBulk(live); err != nil {
				return fail(fmt.Errorf("vpindex: bootstrap migration: %w", err))
			}
		}
		mgrs[i] = mgr
	}
	// Commit the cutover: each shard's manager table becomes the only
	// record copy, the staging pools are retired (their counters fold into
	// the cumulative Stats totals, their frames and disk pages are
	// released), and the new partition pools become visible to Stats only
	// now — so a failed attempt above left no trace.
	epoch := int(s.epoch.Add(1))
	for i, sh := range s.shards {
		sh.mgr = mgrs[i]
		sh.base = nil
		sh.objs = nil
		sh.sample = nil
		sh.epoch = epoch
		s.retirePools(sh.pools)
		sh.pools = shardPools[i]
		s.poolMu.Lock()
		s.pools = append(s.pools, shardPools[i]...)
		s.poolMu.Unlock()
	}
	// Seed the recent-velocity reservoir from the analysis sample so a
	// drift check (or manual Repartition) right after the cutover has a
	// population to analyze instead of an empty ring.
	for i, v := range sample {
		s.shards[i%len(s.shards)].observeVel(v, s.resCap)
	}
	s.anMu.Lock()
	s.analysis = an
	s.anMu.Unlock()
	s.partitioned.Store(true)
	s.logSwap(an)
	return nil
}

// cutover performs the coordinated bootstrap migration: it pools the
// per-shard samples under every shard's lock and partitions all shards at
// once. Safe to call from any number of tripping reporters; only the first
// does the work. The outcome is recorded as a maintenance event — never
// returned to the tripping writer, whose own report was already applied. On
// failure (a degenerate sample the analysis rejects) the staging state
// keeps serving and the trip threshold is re-armed a full sample size
// later, so the O(n) analysis is not retried on every subsequent write but
// gets a fresh chance once the workload has produced new velocities.
func (s *Store) cutover() {
	s.bootMu.Lock()
	if s.partitioned.Load() {
		s.bootMu.Unlock()
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	sample := make([]Vec2, 0, s.sampled.Load())
	for _, sh := range s.shards {
		sample = append(sample, sh.sample...)
	}
	err := s.partitionLocked(sample)
	if err != nil {
		s.nextTrip.Store(s.sampled.Load() + int64(s.cfg.autoN))
	}
	ev := MaintenanceEvent{
		Op: MaintBootstrap, Err: err, SampleSize: len(sample), Swapped: err == nil,
	}
	if err == nil {
		s.anMu.RLock()
		ev.Objective = s.analysis.Kind
		s.anMu.RUnlock()
	}
	s.recordMaintenance(ev)
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	s.bootMu.Unlock()
	if err == nil {
		// The subscription filter's velocity classes follow the partition
		// epoch; reseed with no shard locks held (the engine's registry
		// lock is held shared by report evaluation, which reads shards).
		s.refreshSubClasses()
	}
	s.notifyMaintenance(ev)
}

// recordMaintenance stores the outcome of one maintenance action for
// LastMaintenanceError. Callers invoke it while still holding the mutex
// that serialized the action (maintMu, or bootMu for the cutover), so
// outcomes are recorded in completion order and a stale action can never
// overwrite a newer one.
func (s *Store) recordMaintenance(ev MaintenanceEvent) {
	s.maintErrMu.Lock()
	s.maintErr = ev.Err
	s.maintErrMu.Unlock()
}

// notifyMaintenance delivers the event to the hook. Called with no Store
// locks held: the hook contract allows it to call Store methods, including
// Repartition, which takes maintMu.
func (s *Store) notifyMaintenance(ev MaintenanceEvent) {
	if s.cfg.maintHook != nil {
		s.cfg.maintHook(ev)
	}
}

// LastMaintenanceError returns the error of the most recently completed
// maintenance action (bootstrap cutover, drift check, repartition swap), or
// nil if it succeeded. Maintenance failures are reported here and through
// WithMaintenanceHook only: they never surface as a Report/ReportBatch
// error, because the triggering write is already applied by the time
// maintenance runs.
func (s *Store) LastMaintenanceError() error {
	s.maintErrMu.Lock()
	defer s.maintErrMu.Unlock()
	return s.maintErr
}

// driftCheck is the automatic repartition probe launched by the policy
// cadence: re-analyze the recent-velocity reservoir off the write path —
// under WithPartitionerAuto, evaluating every candidate objective against
// the recent query log — and rebuild the partitions when the live set
// drifted past the threshold or a different objective won. At most one
// maintenance action runs at a time; a probe that finds one in flight
// yields — the cadence counter keeps running, so the next multiple tries
// again.
func (s *Store) driftCheck() {
	if !s.maintMu.TryLock() {
		return
	}
	ev := s.repartitionLocked(false, nil)
	s.recordMaintenance(ev)
	s.maintMu.Unlock()
	s.notifyMaintenance(ev)
}

// Repartition synchronously re-analyzes the recent-velocity reservoir and
// rebuilds every shard's partitions from the result, regardless of the
// drift threshold — the manual maintenance trigger of Section 5.5. It
// requires the Store to be velocity-partitioned already (the bootstrap
// handles the first partitioning) and at least k reservoir velocities.
// Queries and writes keep serving while it runs; only the shard whose
// population is being migrated blocks, one shard at a time. The outcome is
// also recorded like any other maintenance action (LastMaintenanceError,
// hook).
func (s *Store) Repartition() error {
	s.maintMu.Lock()
	ev := s.repartitionLocked(true, nil)
	s.recordMaintenance(ev)
	s.maintMu.Unlock()
	s.notifyMaintenance(ev)
	return ev.Err
}

// RepartitionTo synchronously rebuilds every shard's partitions under the
// given objective, regardless of the drift threshold, the configured
// objective, and the auto chooser's cost ranking — the operational override
// for pinning an objective on a live store (and the lever the cross-
// objective swap tests drive). Like Repartition it requires the Store to be
// partitioned already and records its outcome as a maintenance action.
func (s *Store) RepartitionTo(obj PartitionObjective) error {
	s.maintMu.Lock()
	ev := s.repartitionLocked(true, &obj)
	s.recordMaintenance(ev)
	s.maintMu.Unlock()
	s.notifyMaintenance(ev)
	return ev.Err
}

// repartitionLocked runs one analyze → compare → swap round. force skips
// the drift threshold (the manual triggers); forced additionally pins the
// objective. Caller holds maintMu.
func (s *Store) repartitionLocked(force bool, forced *PartitionObjective) MaintenanceEvent {
	ev := MaintenanceEvent{Op: MaintDriftCheck}
	if force {
		ev.Op = MaintRepartition
	}
	if !s.partitioned.Load() {
		ev.Err = fmt.Errorf("vpindex: repartition before the store is partitioned: %w", ErrUnsupported)
		return ev
	}
	sample := s.reservoirSnapshot()
	ev.SampleSize = len(sample)
	an, err := s.chooseAnalysis(sample, forced)
	if err != nil {
		ev.Err = fmt.Errorf("vpindex: repartition analysis: %w", err)
		return ev
	}
	ev.Objective = an.Kind
	// Drift of the live partition set against the fresh analysis; shard 0
	// is the representative (all shards share one analysis per epoch). An
	// objective or partition-count change reads as core.DriftMax, so a new
	// chooser winner always trips any sane threshold. While collecting,
	// also detect a partial previous swap: if the shards sit on mixed
	// epochs, shard 0 already carries the new partitions — its drift reads
	// ~0 — but the unswapped shards are still degraded, so the threshold
	// must not be allowed to veto finishing the job.
	mixed := false
	var epoch0 int
	for i, sh := range s.shards {
		sh.mu.RLock()
		if i == 0 {
			ev.Drift = sh.mgr.Drift(an)
			epoch0 = sh.epoch
		} else if sh.epoch != epoch0 {
			mixed = true
		}
		sh.mu.RUnlock()
	}
	if !force && !mixed && ev.Drift <= s.cfg.repart.DriftThreshold {
		return ev
	}
	ev.Op = MaintRepartition
	if err := s.swapPartitions(an); err != nil {
		ev.Err = err
		return ev
	}
	ev.Swapped = true
	return ev
}

// reservoirSnapshot pools every shard's recent-velocity ring.
func (s *Store) reservoirSnapshot() []Vec2 {
	out := make([]Vec2, 0, s.resCap*len(s.shards))
	for _, sh := range s.shards {
		sh.mu.RLock()
		out = append(out, sh.res...)
		sh.mu.RUnlock()
	}
	return out
}

// swapPartitions rebuilds every shard's partition set from a fresh
// analysis, one shard at a time: build the empty manager with its
// per-partition pools, then, under that shard's write lock, migrate the
// live population with InsertBulk and swap the manager in — the bootstrap
// cutover machinery re-applied per shard. Only the shard being migrated
// blocks its callers; every other shard keeps serving reads and writes.
// Shards therefore cross to the new epoch one at a time, which Partitions()
// tolerates by matching epochs. A mid-swap failure leaves a mix of epochs:
// correctness is unaffected (every shard answers queries exactly, whatever
// its axes), the error is recorded, and the next check detects the epoch
// mix and re-swaps every shard regardless of the drift threshold. Each
// shard's outgoing generation is retired as its replacement goes live —
// counters folded into the cumulative Stats totals, frames and disk pages
// released — so repeated swaps do not accumulate dead structures.
func (s *Store) swapPartitions(an core.Analysis) error {
	s.swapping.Store(true)
	defer s.swapping.Store(false)
	epoch := int(s.epoch.Add(1))
	for _, sh := range s.shards {
		var pools []*storage.BufferPool
		mgr, err := s.buildManager(an, &pools)
		if err != nil {
			// Partitions built before the failure already own pools and
			// pages; a failed attempt leaves no trace.
			retireUnregistered(pools)
			return fmt.Errorf("vpindex: repartition rebuild: %w", err)
		}
		sh.mu.Lock()
		live := sh.mgr.Objects()
		if len(live) > 0 {
			if err := mgr.InsertBulk(live); err != nil {
				sh.mu.Unlock()
				retireUnregistered(pools)
				return fmt.Errorf("vpindex: repartition migration: %w", err)
			}
		}
		old := sh.pools
		sh.mgr = mgr
		sh.epoch = epoch
		sh.pools = pools
		sh.mu.Unlock()
		s.retirePools(old)
		s.poolMu.Lock()
		s.pools = append(s.pools, pools...)
		s.poolMu.Unlock()
	}
	s.anMu.Lock()
	s.analysis = an
	s.anMu.Unlock()
	s.repartitions.Add(1)
	s.logSwap(an)
	// Re-seed the subscription filter's velocity classes from the new
	// epoch's analysis (no shard locks are held here).
	s.refreshSubClasses()
	return nil
}

// reportShardLocked applies one ID-keyed upsert to sh and advances the
// bootstrap sample. It reports whether this record tripped the
// auto-partition threshold (the caller runs the cutover after releasing the
// shard lock — the cutover needs every shard's lock). Caller holds sh.mu.
func (s *Store) reportShardLocked(sh *storeShard, o Object) (trip bool, err error) {
	if sh.mgr != nil {
		if err := sh.mgr.Report(o); err != nil {
			return false, err
		}
		sh.markDirty(o.ID)
		sh.observeVel(o.Vel, s.resCap)
		return false, nil
	}
	old, exists := sh.objs[o.ID]
	if exists {
		err = sh.base.Update(old, o)
	} else {
		err = sh.base.Insert(o)
	}
	if err != nil {
		return false, err
	}
	sh.objs[o.ID] = o
	sh.markDirty(o.ID)
	if sh.sample == nil {
		return false, nil
	}
	sh.sample = append(sh.sample, o.Vel)
	return s.sampled.Add(1) >= s.nextTrip.Load(), nil
}

// noteReports advances the repartition cadence by n post-partition reports
// and, with an automatic policy configured, kicks a background drift check
// each time the running counter crosses a multiple of the cadence. The
// counter is never reset, and atomic.Add hands each caller a unique value,
// so every multiple fires exactly once — including after a failed check,
// which is how the trigger re-arms itself.
func (s *Store) noteReports(n int) {
	every := int64(s.cfg.repart.Every)
	if n <= 0 || every <= 0 || !s.partitioned.Load() {
		return
	}
	after := s.reports.Add(int64(n))
	if after/every != (after-int64(n))/every {
		go s.driftCheck()
	}
}

// Report upserts one object by ID: a new ID is inserted, a known ID replaces
// its previous record (routing between partitions as the velocity dictates).
// The record's T must carry the report timestamp; the Store never needs the
// previous record from the caller. Only the object's shard is locked.
//
// Report returns an error only when the write itself fails. Maintenance the
// write triggers (the bootstrap cutover, drift checks) runs after the write
// is applied and reports its outcome through LastMaintenanceError and the
// maintenance hook instead.
func (s *Store) Report(o Object) error {
	// With WithWriteCoalescing on, concurrent Reports are drained in
	// batches by an elected leader (see ingest.go); recovery replay
	// bypasses the coalescer — replayed records must apply inline.
	if c := s.coal; c != nil {
		if d := s.dur; d == nil || !d.recovering.Load() {
			return c.report(o)
		}
	}
	trip, err := s.durableApplyObject(wal.TypeReport, o, (*Store).applyReport)
	if err != nil {
		return err
	}
	s.afterReports(trip, 1)
	return nil
}

// applyReport is Report's in-memory half: the shard-locked upsert plus the
// subscription delta.
func (s *Store) applyReport(o Object) (bool, error) {
	sh := s.shardFor(o.ID)
	sh.mu.Lock()
	trip, err := s.reportShardLocked(sh, o)
	sh.mu.Unlock()
	if err != nil {
		return false, err
	}
	if e := s.subEng.Load(); e != nil {
		e.noteReport(o)
	}
	return trip, nil
}

// afterReports runs the maintenance a successful write triggered. Suppressed
// during crash recovery: replayed records must not launch analyses of their
// own — partition transitions replay from their logged swap records, and a
// trip left pending by the crash fires on the first post-recovery report.
func (s *Store) afterReports(trip bool, n int) {
	if d := s.dur; d != nil && d.recovering.Load() {
		return
	}
	if trip {
		s.cutover()
	} else {
		s.noteReports(n)
	}
}

// ReportBatch upserts many objects, grouped by shard and applied with one
// lock acquisition per shard, concurrently across shards (which also
// amortizes the partition manager's tau-refresh bookkeeping per group). On
// error, records that were applied before the failure stay applied; because
// shards proceed independently, those are not necessarily a prefix of the
// batch, though within each shard records apply in batch order. A batch
// that crosses the auto-partition threshold lands in staging first and the
// coordinated cutover migrates it at the end of the batch.
func (s *Store) ReportBatch(objs []Object) error {
	if len(objs) == 0 {
		return nil
	}
	// An explicit batch is a flush barrier for the coalescer: Reports
	// enqueued before this call are acknowledged first, so per-object
	// ordering across the two paths cannot invert.
	s.coalFlush()
	d := s.dur
	if d == nil || d.recovering.Load() {
		sc := s.getBatchScratch()
		reported, trip, err := s.applyReportBatch(objs, sc)
		s.putBatchScratch(sc)
		return s.finishReportBatch(reported, trip, err)
	}
	return s.reportBatchDurable(d, objs)
}

// batchScratch is the pooled per-shard scratch behind the batched write
// paths: the shard-grouped records, the applied-prefix counts, the per-shard
// first errors, the eval slices handed to the subscription engine (and the
// WAL encoder on the durable path), plus the coalescer's flattened batch and
// attribution cursors. The group slices are owned by the scratch — records
// are always copied in, never aliased to caller memory — so returning a
// scratch to the pool keeps its capacity without capturing caller slices.
type batchScratch struct {
	groups  [][]Object
	eval    [][]Object
	applied []int
	errs    []error
	cursor  []int
	objs    []Object
	// slots is the coalescer's drained batch: it lives in the scratch (not
	// on the coalescer) so pipelined drains — one batch in its sync wait
	// while the next applies — never share a backing array.
	slots []*pendingSlot
}

// getBatchScratch hands out a scratch sized to the shard count (the count is
// fixed for a Store's lifetime, so pooled scratches always fit).
func (s *Store) getBatchScratch() *batchScratch {
	sc, _ := s.scratchPool.Get().(*batchScratch)
	if sc == nil {
		n := len(s.shards)
		sc = &batchScratch{
			groups:  make([][]Object, n),
			eval:    make([][]Object, n),
			applied: make([]int, n),
			errs:    make([]error, n),
			cursor:  make([]int, n),
		}
	}
	return sc
}

// putBatchScratch resets and recycles sc. The caller must be done with every
// slice view into it (eval groups included).
func (s *Store) putBatchScratch(sc *batchScratch) {
	for i := range sc.groups {
		sc.groups[i] = sc.groups[i][:0]
		sc.eval[i] = nil
		sc.applied[i] = 0
		sc.errs[i] = nil
		sc.cursor[i] = 0
	}
	sc.objs = sc.objs[:0]
	for i := range sc.slots {
		sc.slots[i] = nil
	}
	sc.slots = sc.slots[:0]
	s.scratchPool.Put(sc)
}

// applyReportBatch is ReportBatch's in-memory half. It fills sc with the
// per-shard groups of records that actually landed (sc.eval — exactly what
// must be logged, since on a partial failure the applied records stay
// applied; sc.applied/sc.errs carry the per-shard applied-prefix bookkeeping
// the coalescer attributes per-record errors from) and returns the number of
// post-partition reports, whether the batch tripped the bootstrap threshold,
// and the first error.
func (s *Store) applyReportBatch(objs []Object, sc *batchScratch) (reported int, trip bool, err error) {
	groups := sc.groups
	if len(s.shards) == 1 {
		groups[0] = append(groups[0][:0], objs...)
	} else {
		for i := range groups {
			groups[i] = groups[i][:0]
		}
		for _, o := range objs {
			i := s.shardIndex(o.ID)
			groups[i] = append(groups[i], o)
		}
	}
	var (
		tripped   atomic.Bool
		nReported atomic.Int64 // post-partition reports, for the repartition cadence
	)
	// sc.applied[i] counts how many of groups[i] landed before any error, so
	// the subscription engine evaluates exactly the records that are in
	// the index — applied records stay applied on a partial failure.
	applied := sc.applied
	worker := func(i int) error {
		group := groups[i]
		if len(group) == 0 {
			return nil
		}
		sh := s.shards[i]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if sh.mgr != nil {
			n, err := sh.mgr.ReportBatch(group)
			for _, o := range group[:n] {
				sh.markDirty(o.ID)
				sh.observeVel(o.Vel, s.resCap)
			}
			nReported.Add(int64(n))
			applied[i] = n
			if err != nil {
				sc.errs[i] = fmt.Errorf("vpindex: batch report: %w", err)
				return sc.errs[i]
			}
			return nil
		}
		for _, o := range group {
			t, err := s.reportShardLocked(sh, o)
			if err != nil {
				sc.errs[i] = fmt.Errorf("vpindex: batch report of object %d: %w", o.ID, err)
				return sc.errs[i]
			}
			applied[i]++
			if t {
				tripped.Store(true)
			}
		}
		return nil
	}
	for i := range groups {
		applied[i] = 0
		sc.errs[i] = nil
	}
	// Write fan-out is bounded by GOMAXPROCS, independent of the query
	// knob WithSearchParallelism: the final state is identical whatever
	// order the groups land in (each shard applies its group in batch
	// order), so there is nothing for a sequential setting to pin down.
	// Callers who need fully serialized writes run WithShards(1).
	err = parallel.Do(len(s.shards), 0, worker)
	// Subscription deltas are computed after the shard locks are released,
	// from the records the batch just applied, and emitted as one sorted
	// batch — even when the batch failed partway, for the applied prefix.
	for i := range groups {
		sc.eval[i] = groups[i][:applied[i]]
	}
	if e := s.subEng.Load(); e != nil {
		e.noteBatch(sc.eval)
	}
	return int(nReported.Load()), tripped.Load(), err
}

// finishReportBatch runs ReportBatch's post-apply maintenance, preserving
// the original ordering: the repartition cadence advances even for a failed
// batch's applied prefix; the cutover only runs after a fully applied batch.
func (s *Store) finishReportBatch(reported int, trip bool, err error) error {
	if d := s.dur; d != nil && d.recovering.Load() {
		return err
	}
	s.noteReports(reported)
	if err != nil {
		return err
	}
	if trip {
		s.cutover()
	}
	return nil
}

// Remove deletes the object by ID. Returns ErrNotFound (errors.Is-able) when
// no such object is indexed. The object leaves every subscription result
// set it was in (evaluated after the shard lock is released).
func (s *Store) Remove(id ObjectID) error {
	// Flush barrier: a coalesced Report of id enqueued before this call
	// must land first, or the removal could be resurrected by it.
	s.coalFlush()
	return s.durableApplyRemove(id)
}

// applyRemove is Remove's in-memory half.
func (s *Store) applyRemove(id ObjectID) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	var err error
	switch {
	case sh.mgr != nil:
		// The manager only consults the ID; its table supplies the record.
		err = sh.mgr.Delete(Object{ID: id})
	default:
		old, ok := sh.objs[id]
		if !ok {
			err = fmt.Errorf("vpindex: remove of object %d: %w", id, ErrNotFound)
		} else if err = sh.base.Delete(old); err == nil {
			delete(sh.objs, id)
		}
	}
	if err == nil {
		sh.markGone(id)
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	if e := s.subEng.Load(); e != nil {
		e.noteRemove(id)
	}
	return nil
}

// Get returns the current record for id, touching only its shard.
func (s *Store) Get(id ObjectID) (Object, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.mgr != nil {
		return sh.mgr.Get(id)
	}
	o, ok := sh.objs[id]
	return o, ok
}

// rangeQueryShape summarizes a validated range query for the cost model:
// the region's half-extents and how far past the issue time it evaluates.
func rangeQueryShape(q RangeQuery) core.QueryShape {
	r := q.Rect
	if q.IsCircle() {
		r = q.Circle.Bound()
	}
	t := q.T0
	if q.Kind != TimeSlice && q.T1 > t {
		t = q.T1
	}
	w := t - q.Now
	if w < 0 {
		w = 0
	}
	return core.QueryShape{HalfW: r.Width() / 2, HalfH: r.Height() / 2, Window: w}
}

// knnQueryShape summarizes a kNN query: no region extent (the search region
// grows from a point), only the prediction window.
func knnQueryShape(q KNNQuery) core.QueryShape {
	w := q.T - q.Now
	if w < 0 {
		w = 0
	}
	return core.QueryShape{Window: w}
}

// observeQueryShape records one observed query in the per-shard query-shape
// log, round-robin across shards so no single ring mutex serializes the
// query path. Disabled (qlogCap == 0) unless velocity partitioning is on.
func (s *Store) observeQueryShape(q core.QueryShape) {
	if s.qlogCap <= 0 {
		return
	}
	sh := s.shards[int(s.qrr.Add(1)%uint64(len(s.shards)))]
	sh.observeQuery(q, s.qlogCap)
}

// QueryLogSize reports how many query shapes the partitioning cost model
// currently has as workload evidence (0 when velocity partitioning is off).
func (s *Store) QueryLogSize() int {
	n := 0
	for _, sh := range s.shards {
		sh.qmu.Lock()
		n += len(sh.qlog)
		sh.qmu.Unlock()
	}
	return n
}

// searchShardLocked answers q within one shard. Caller holds sh.mu (read).
func searchShardLocked(sh *storeShard, q RangeQuery) ([]ObjectID, error) {
	if sh.mgr != nil {
		return sh.mgr.Search(q)
	}
	return sh.base.Search(q)
}

// Search answers a predictive range query. It works identically in staging,
// unpartitioned, and partitioned configurations. The query fans out across
// the shards (and, inside each shard, across the velocity partitions) with
// bounded worker pools; per-shard result buffers are merged in shard order
// after the joins, so the result is deterministic for a given Store state.
func (s *Store) Search(q RangeQuery) ([]ObjectID, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	s.observeQueryShape(rangeQueryShape(q))
	lists := make([][]ObjectID, len(s.shards))
	err := parallel.Do(len(s.shards), s.cfg.searchPar, func(i int) error {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		ids, err := searchShardLocked(sh, q)
		if err != nil {
			return err
		}
		lists[i] = ids
		return nil
	})
	if err != nil {
		// Reads are never gated by health — a degraded store keeps serving
		// queries — but a read that surfaced a media fault still moves the
		// health state machine.
		s.noteIOFault(err)
		return nil, err
	}
	if len(lists) == 1 {
		return lists[0], nil
	}
	total := 0
	for _, ids := range lists {
		total += len(ids)
	}
	out := make([]ObjectID, 0, total)
	for _, ids := range lists {
		out = append(out, ids...)
	}
	return out, nil
}

// SearchKNN returns the k objects nearest the query center at the query's
// evaluation time, fanning out across shards like Search and merging the
// per-shard top-k lists. Returns ErrUnsupported if the configured base
// structure has no kNN implementation (both built-in kinds do).
func (s *Store) SearchKNN(q KNNQuery) ([]Neighbor, error) {
	s.observeQueryShape(knnQueryShape(q))
	lists := make([][]Neighbor, len(s.shards))
	err := parallel.Do(len(s.shards), s.cfg.searchPar, func(i int) error {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		var (
			ns  []Neighbor
			err error
		)
		if sh.mgr != nil {
			ns, err = sh.mgr.SearchKNN(q)
		} else {
			knn, ok := sh.base.(model.KNNIndex)
			if !ok {
				return fmt.Errorf("vpindex: %s does not support kNN: %w", sh.base.Name(), ErrUnsupported)
			}
			ns, err = knn.SearchKNN(q)
		}
		if err != nil {
			return err
		}
		lists[i] = ns
		return nil
	})
	if err != nil {
		s.noteIOFault(err)
		return nil, err
	}
	if len(lists) == 1 {
		return lists[0], nil
	}
	return model.MergeNeighbors(q.K, lists...), nil
}

// Len returns the number of live objects across all shards.
func (s *Store) Len() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if sh.mgr != nil {
			total += sh.mgr.Len()
		} else {
			total += len(sh.objs)
		}
		sh.mu.RUnlock()
	}
	return total
}

// NumShards returns the Store's shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Partitioned reports whether the Store is currently velocity-partitioned
// (immediately true with an upfront sample; flips true at the bootstrap
// cutover in auto-partition mode; always false otherwise).
func (s *Store) Partitioned() bool { return s.partitioned.Load() }

// Analysis returns the velocity analysis that shaped the current partition
// epoch (the bootstrap analysis, or the most recent completed repartition
// swap's), and whether one has run yet.
func (s *Store) Analysis() (core.Analysis, bool) {
	s.anMu.RLock()
	defer s.anMu.RUnlock()
	return s.analysis, s.partitioned.Load()
}

// BootstrapProgress reports how many velocities have been collected toward
// the auto-partition threshold, and the threshold itself. The threshold is
// the currently armed one: after a failed cutover attempt it moves a full
// sample size out, so collected never sits above target while the Store is
// still unpartitioned. After the cutover (or when auto-partitioning is off)
// it returns (0, 0).
func (s *Store) BootstrapProgress() (collected, target int) {
	if s.cfg.autoN == 0 || s.partitioned.Load() {
		return 0, 0
	}
	return int(s.sampled.Load()), int(s.nextTrip.Load())
}

// Partitions snapshots the live logical partition set (empty until
// partitioned): one entry per velocity partition, with Size summed across
// every shard. Spec, rotation, tau, and the Index handle come from shard 0
// (shards may drift apart slightly in tau once online refresh runs).
//
// The aggregation never aliases manager-internal state: Manager.Partitions
// returns a freshly built snapshot slice each call, so adding sizes into
// shard 0's entries mutates only this snapshot. A repartition swap crosses
// the shards one at a time, so shards observed mid-swap can be on a
// different partition epoch — possibly with a different partition count —
// than shard 0; those shards are skipped rather than mis-summed, so a
// mid-swap snapshot may undercount sizes but never panics or mixes axes
// from two epochs.
func (s *Store) Partitions() []core.PartitionInfo {
	if !s.partitioned.Load() {
		return nil
	}
	var (
		out    []core.PartitionInfo
		epoch0 int
	)
	for i, sh := range s.shards {
		sh.mu.RLock()
		infos := sh.mgr.Partitions()
		epoch := sh.epoch
		sh.mu.RUnlock()
		if i == 0 {
			out = infos
			epoch0 = epoch
			continue
		}
		if epoch != epoch0 || len(infos) != len(out) {
			continue
		}
		for j := range infos {
			out[j].Size += infos[j].Size
		}
	}
	return out
}

// StoreStats extends the simulated I/O counters with the Store's
// maintenance counters. IOStats is embedded, so existing callers reading
// Reads/Writes/Hits off Stats() keep working unchanged.
type StoreStats struct {
	IOStats
	// Repartitions counts completed partition swaps (adaptive and manual),
	// not including the bootstrap cutover.
	Repartitions int64
	// PartitionEpoch counts partition generations ever started: 0 while
	// unpartitioned, 1 from the bootstrap (or upfront-sample) partitioning,
	// +1 at the start of each repartition swap attempt (failed attempts
	// consume an epoch too — their already-swapped shards carry the tag).
	PartitionEpoch int64
	// SwapInFlight reports whether a repartition swap is migrating shards
	// right now (its I/O is landing in the shared counters).
	SwapInFlight bool
}

// Stats returns cumulative simulated I/O counters — every live buffer pool
// (one per staging index, one per partition per shard) plus the folded-in
// totals of pools retired by past cutovers and repartition swaps — and the
// maintenance counters. The counters are monotonic across swaps.
func (s *Store) Stats() StoreStats {
	s.poolMu.Lock()
	pools := append([]*storage.BufferPool(nil), s.pools...)
	st := StoreStats{IOStats: s.retired}
	s.poolMu.Unlock()
	for _, p := range pools {
		ps := p.Stats()
		st.Reads += ps.Misses
		st.Writes += ps.Writes
		st.Hits += ps.Hits
	}
	st.Repartitions = s.repartitions.Load()
	st.PartitionEpoch = s.epoch.Load()
	st.SwapInFlight = s.swapping.Load()
	return st
}

// Pools snapshots every live buffer pool (pools retired by cutovers and
// repartition swaps are excluded; their counters live on in Stats), for
// instrumentation.
func (s *Store) Pools() []*storage.BufferPool {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	return append([]*storage.BufferPool(nil), s.pools...)
}

// Name implements model.Index.
func (s *Store) Name() string {
	sh := s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.mgr != nil {
		return sh.mgr.Name()
	}
	return sh.base.Name()
}

// IO implements model.Index (same counters as Stats).
func (s *Store) IO() IOStats { return s.Stats().IOStats }

// Insert implements model.Index with strict semantics: reporting an ID that
// is already indexed returns ErrDuplicate. Application code should prefer
// Report.
func (s *Store) Insert(o Object) error {
	// Flush barrier: strict duplicate rejection must observe every Report
	// enqueued before this call.
	s.coalFlush()
	// A successful Insert is logged as a plain report record: the ID was
	// absent, so replaying it as an upsert reproduces the insert exactly.
	trip, err := s.durableApplyObject(wal.TypeReport, o, (*Store).applyInsert)
	if err != nil {
		return err
	}
	s.afterReports(trip, 1)
	return nil
}

// applyInsert is Insert's in-memory half (strict duplicate rejection).
func (s *Store) applyInsert(o Object) (bool, error) {
	sh := s.shardFor(o.ID)
	sh.mu.Lock()
	var (
		trip bool
		err  error
	)
	switch {
	case sh.mgr != nil:
		if err = sh.mgr.Insert(o); err == nil {
			sh.markDirty(o.ID)
			sh.observeVel(o.Vel, s.resCap)
		}
	default:
		if _, dup := sh.objs[o.ID]; dup {
			err = fmt.Errorf("vpindex: insert of object %d: %w", o.ID, ErrDuplicate)
		} else {
			trip, err = s.reportShardLocked(sh, o)
		}
	}
	sh.mu.Unlock()
	if err != nil {
		return false, err
	}
	if e := s.subEng.Load(); e != nil {
		e.noteReport(o)
	}
	return trip, nil
}

// Delete implements model.Index. Only the ID of o is consulted — the stored
// record comes from the Store's own table.
func (s *Store) Delete(o Object) error { return s.Remove(o.ID) }

// Update implements model.Index. Only old.ID is consulted; the rest of the
// old record comes from the table, so legacy delete+insert call sites keep
// working without tracking server state.
func (s *Store) Update(old, new Object) error {
	if new.ID != old.ID {
		return fmt.Errorf("vpindex: update changes object id %d -> %d", old.ID, new.ID)
	}
	// Flush barrier: strict not-found rejection must observe every Report
	// enqueued before this call.
	s.coalFlush()
	// A successful Update is logged as a plain report record: the ID was
	// present, so replaying it as an upsert reproduces the update exactly.
	// Only new's fields are consulted past the ID check above, so the
	// update rides the shared single-object path.
	trip, err := s.durableApplyObject(wal.TypeReport, new, applyUpdateByID)
	if err != nil {
		return err
	}
	s.afterReports(trip, 1)
	return nil
}

// applyUpdateByID adapts applyUpdate to the single-object apply shape (the
// old record's only consulted field is its ID, equal to o's by the check in
// Update).
func applyUpdateByID(s *Store, o Object) (bool, error) { return s.applyUpdate(o, o) }

// applyUpdate is Update's in-memory half (strict not-found rejection).
func (s *Store) applyUpdate(old, new Object) (bool, error) {
	sh := s.shardFor(old.ID)
	sh.mu.Lock()
	var (
		trip bool
		err  error
	)
	switch {
	case sh.mgr != nil:
		if err = sh.mgr.UpdateByID(new); err == nil {
			sh.markDirty(new.ID)
			sh.observeVel(new.Vel, s.resCap)
		}
	default:
		if _, ok := sh.objs[old.ID]; !ok {
			err = fmt.Errorf("vpindex: update of object %d: %w", old.ID, ErrNotFound)
		} else {
			trip, err = s.reportShardLocked(sh, new)
		}
	}
	sh.mu.Unlock()
	if err != nil {
		return false, err
	}
	if e := s.subEng.Load(); e != nil {
		e.noteReport(new)
	}
	return trip, nil
}
