package vpindex

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/storage"
)

// Store is the production facade over every index configuration in this
// package: one type that is plain or velocity-partitioned, TPR*- or
// Bx-backed, depending only on the Options passed to Open.
//
// Unlike the raw index interface — where Delete and Update need the caller
// to hand back the exact old record — the Store keeps an id→record table
// (its own while unpartitioned, the partition manager's afterwards), so
// clients speak in production verbs: Report (insert-or-update by ID), Remove
// (by ID), Get, ReportBatch. This is the operational shape of a live
// location service: devices send bare position/velocity reports; nobody
// ships the server's previous state back to it.
//
// With velocity partitioning enabled but no upfront sample, the Store
// bootstraps online: it starts in a staging (unpartitioned) index,
// accumulates the first n reported velocities, then runs the DVA analysis
// and migrates every live object into the partitions — queries work
// identically before, during, and after the cutover.
//
// A Store is safe for concurrent use. A single RWMutex serializes writers
// and lets readers (Search, SearchKNN, Get, Len, Stats) proceed in parallel;
// this lock is deliberately the one choke point, making it the seam where
// future sharding (hash by ObjectID, one Store shard per lock) slots in
// without touching the unsynchronized base trees.
type Store struct {
	mu   sync.RWMutex
	cfg  storeConfig
	pool *storage.BufferPool

	// Exactly one of base/mgr is active: base while staging or permanently
	// unpartitioned, mgr once the partitions exist.
	base model.Index
	mgr  *core.Manager

	// objs is the id→record table (world frame) while staging or
	// permanently unpartitioned — the base trees have no ID surface of
	// their own. After the cutover the Manager's internal table is the
	// single copy and objs is nil.
	objs map[ObjectID]Object

	// sample accumulates reported velocities toward the auto-partition
	// threshold; nil when not bootstrapping.
	sample   []Vec2
	analysis core.Analysis
}

// Store satisfies the full index interface, so it drops into every API that
// accepts one (monitors, benchmarks, the oracle tests).
var (
	_ model.Index      = (*Store)(nil)
	_ model.KNNIndex   = (*Store)(nil)
	_ monitor.Reporter = (*Store)(nil)
)

// Open builds a Store from functional options. Examples:
//
//	// Unpartitioned TPR*-tree with defaults.
//	s, err := vpindex.Open()
//
//	// VP-partitioned Bx-tree that bootstraps its own partitions after
//	// the first 10,000 reports.
//	s, err := vpindex.Open(
//		vpindex.WithKind(vpindex.Bx),
//		vpindex.WithVelocityPartitioning(2),
//		vpindex.WithAutoPartition(10_000),
//	)
//
//	// VP with an upfront sample (partitioned immediately, like NewVP).
//	s, err := vpindex.Open(vpindex.WithVelocitySample(sample))
func Open(opts ...Option) (*Store, error) {
	var cfg storeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.normalize()
	if cfg.autoN > 0 && cfg.autoN < cfg.k {
		return nil, fmt.Errorf("vpindex: auto-partition sample of %d cannot form %d partitions", cfg.autoN, cfg.k)
	}
	disk := storage.NewDisk()
	disk.SetLatency(cfg.base.DiskLatency)
	s := &Store{
		cfg:  cfg,
		pool: storage.NewBufferPool(disk, cfg.base.BufferPages),
		objs: make(map[ObjectID]Object),
	}
	if len(cfg.sample) > 0 {
		if err := s.partitionLocked(cfg.sample); err != nil {
			return nil, err
		}
		return s, nil
	}
	suffix := ""
	if cfg.autoN > 0 {
		suffix = "staging"
		s.sample = make([]Vec2, 0, cfg.autoN)
	}
	idx, err := buildBase(s.pool, cfg.base, cfg.base.Domain, suffix)
	if err != nil {
		return nil, err
	}
	s.base = idx
	return s, nil
}

// partitionLocked runs the DVA analysis over sample, builds the partition
// manager, and migrates every live object into it. Caller holds mu (or is
// Open, before the Store escapes).
func (s *Store) partitionLocked(sample []Vec2) error {
	an, err := core.Analyze(sample, core.AnalyzerConfig{
		K:          s.cfg.k,
		TauBuckets: s.cfg.tauBuckets,
		Cluster:    clusterOptions(s.cfg.seed),
	})
	if err != nil {
		return fmt.Errorf("vpindex: velocity analysis: %w", err)
	}
	mgr, err := core.NewManager(an, core.ManagerConfig{
		Domain:             s.cfg.base.Domain,
		TauRefreshInterval: s.cfg.tauRefresh,
		TauBuckets:         s.cfg.tauBuckets,
	}, func(spec core.PartitionSpec) (model.Index, error) {
		return buildBase(s.pool, s.cfg.base, spec.Domain, spec.Name)
	})
	if err != nil {
		return err
	}
	mgr.SetName(s.cfg.base.Kind.String() + "(vp)")
	if len(s.objs) > 0 {
		live := make([]Object, 0, len(s.objs))
		for _, o := range s.objs {
			live = append(live, o)
		}
		if err := mgr.InsertBulk(live); err != nil {
			return fmt.Errorf("vpindex: bootstrap migration: %w", err)
		}
	}
	// Cutover: the staging index (if any) is abandoned in place — its pages
	// fall out of the shared LRU pool naturally as partition pages displace
	// them — and the manager's lookup table becomes the only record copy.
	s.mgr = mgr
	s.analysis = an
	s.base = nil
	s.sample = nil
	s.objs = nil
	return nil
}

// reportLocked applies one ID-keyed upsert and advances the bootstrap state.
// Caller holds mu.
func (s *Store) reportLocked(o Object) error {
	if s.mgr != nil {
		return s.mgr.Report(o)
	}
	old, exists := s.objs[o.ID]
	var err error
	if exists {
		err = s.base.Update(old, o)
	} else {
		err = s.base.Insert(o)
	}
	if err != nil {
		return err
	}
	s.objs[o.ID] = o
	if s.sample == nil {
		return nil
	}
	s.sample = append(s.sample, o.Vel)
	if len(s.sample) < s.cfg.autoN {
		return nil
	}
	return s.partitionLocked(s.sample)
}

// Report upserts one object by ID: a new ID is inserted, a known ID replaces
// its previous record (routing between partitions as the velocity dictates).
// The record's T must carry the report timestamp; the Store never needs the
// previous record from the caller.
func (s *Store) Report(o Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reportLocked(o)
}

// ReportBatch upserts many objects under one lock acquisition, amortizing
// locking (and, in partitioned mode, the tau-refresh bookkeeping) across the
// batch. On error, records before the failing one remain applied. The online
// bootstrap may trigger mid-batch; the remainder of the batch lands directly
// in the partitions.
func (s *Store) ReportBatch(objs []Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Staging reports go one at a time (each may be the one that triggers
	// the bootstrap); everything from the cutover on is handed to the
	// manager as a single amortized batch.
	i := 0
	for ; i < len(objs) && s.mgr == nil; i++ {
		if err := s.reportLocked(objs[i]); err != nil {
			return fmt.Errorf("vpindex: batch report of object %d: %w", objs[i].ID, err)
		}
	}
	if i == len(objs) {
		return nil
	}
	if _, err := s.mgr.ReportBatch(objs[i:]); err != nil {
		return fmt.Errorf("vpindex: batch report: %w", err)
	}
	return nil
}

// Remove deletes the object by ID. Returns ErrNotFound (errors.Is-able) when
// no such object is indexed.
func (s *Store) Remove(id ObjectID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mgr != nil {
		// The manager only consults the ID; its table supplies the record.
		return s.mgr.Delete(Object{ID: id})
	}
	old, ok := s.objs[id]
	if !ok {
		return fmt.Errorf("vpindex: remove of object %d: %w", id, ErrNotFound)
	}
	if err := s.base.Delete(old); err != nil {
		return err
	}
	delete(s.objs, id)
	return nil
}

// Get returns the current record for id.
func (s *Store) Get(id ObjectID) (Object, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.mgr != nil {
		return s.mgr.Get(id)
	}
	o, ok := s.objs[id]
	return o, ok
}

// Search answers a predictive range query. It works identically in staging,
// unpartitioned, and partitioned configurations.
func (s *Store) Search(q RangeQuery) ([]ObjectID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.mgr != nil {
		return s.mgr.Search(q)
	}
	return s.base.Search(q)
}

// SearchKNN returns the k objects nearest the query center at the query's
// evaluation time. Returns ErrUnsupported if the configured base structure
// has no kNN implementation (both built-in kinds do).
func (s *Store) SearchKNN(q KNNQuery) ([]Neighbor, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.mgr != nil {
		return s.mgr.SearchKNN(q)
	}
	knn, ok := s.base.(model.KNNIndex)
	if !ok {
		return nil, fmt.Errorf("vpindex: %s does not support kNN: %w", s.base.Name(), ErrUnsupported)
	}
	return knn.SearchKNN(q)
}

// Len returns the number of live objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.mgr != nil {
		return s.mgr.Len()
	}
	return len(s.objs)
}

// Partitioned reports whether the Store is currently velocity-partitioned
// (immediately true with an upfront sample; flips true at the bootstrap
// cutover in auto-partition mode; always false otherwise).
func (s *Store) Partitioned() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mgr != nil
}

// Analysis returns the velocity analysis that shaped the partitions, and
// whether one has run yet.
func (s *Store) Analysis() (core.Analysis, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.analysis, s.mgr != nil
}

// BootstrapProgress reports how many velocities have been collected toward
// the auto-partition threshold, and the threshold itself. After the cutover
// (or when auto-partitioning is off) it returns (0, 0).
func (s *Store) BootstrapProgress() (collected, target int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.sample == nil {
		return 0, 0
	}
	return len(s.sample), s.cfg.autoN
}

// Partitions snapshots the live partition set (empty until partitioned).
func (s *Store) Partitions() []core.PartitionInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.mgr == nil {
		return nil
	}
	return s.mgr.Partitions()
}

// Stats returns cumulative simulated I/O counters for the whole Store (all
// partitions share one buffer pool).
func (s *Store) Stats() IOStats {
	st := s.pool.Stats()
	return IOStats{Reads: st.Misses, Writes: st.Writes, Hits: st.Hits}
}

// Pool exposes the shared buffer pool for instrumentation (benchmarks
// snapshot miss counters around operations).
func (s *Store) Pool() *storage.BufferPool { return s.pool }

// Name implements model.Index.
func (s *Store) Name() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.mgr != nil {
		return s.mgr.Name()
	}
	return s.base.Name()
}

// IO implements model.Index (same counters as Stats).
func (s *Store) IO() IOStats { return s.Stats() }

// Insert implements model.Index with strict semantics: reporting an ID that
// is already indexed returns ErrDuplicate. Application code should prefer
// Report.
func (s *Store) Insert(o Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mgr != nil {
		return s.mgr.Insert(o)
	}
	if _, dup := s.objs[o.ID]; dup {
		return fmt.Errorf("vpindex: insert of object %d: %w", o.ID, ErrDuplicate)
	}
	return s.reportLocked(o)
}

// Delete implements model.Index. Only the ID of o is consulted — the stored
// record comes from the Store's own table.
func (s *Store) Delete(o Object) error { return s.Remove(o.ID) }

// Update implements model.Index. Only old.ID is consulted; the rest of the
// old record comes from the table, so legacy delete+insert call sites keep
// working without tracking server state.
func (s *Store) Update(old, new Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if new.ID != old.ID {
		return fmt.Errorf("vpindex: update changes object id %d -> %d", old.ID, new.ID)
	}
	if s.mgr != nil {
		return s.mgr.UpdateByID(new)
	}
	if _, ok := s.objs[old.ID]; !ok {
		return fmt.Errorf("vpindex: update of object %d: %w", old.ID, ErrNotFound)
	}
	return s.reportLocked(new)
}
