package vpindex

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// This file is the write coalescer behind WithWriteCoalescing: a
// leader-drained ingest pipeline that turns concurrent Report calls into one
// shard-batched apply plus one WAL record, while keeping Report's
// synchronous, per-record-error contract.
//
// The discipline is the same leader/follower election internal/wal's group
// commit uses, one layer up: callers enqueue a pooled pending slot into a
// FIFO and block; whoever finds no active leader and a non-empty queue
// becomes it, dwells up to the configured window for stragglers (cut short
// when the queue reaches maxBatch or a flush barrier arrives), drains up to
// maxBatch slots, and runs them as one batch — one shard-lock acquisition
// per touched shard (applyReportBatch), one merged subscription delta, one
// TypeReportBatch append through the pooled-buffer path, one wait on the
// sync policy — then wakes every drained waiter with its own error.
//
// The drain is pipelined around the sync wait: leadership is handed back
// right after the WAL append, before wal.Commit. The next batch's apply and
// append then overlap the in-flight fsync — and, under group commit, land
// before the flush leader captures its sync target, so consecutive batches
// ride one fsync. This also collapses the per-record Commit storm of the
// direct path (N callers taking the flush lock in turn just to observe the
// durable watermark) into one Commit call per batch, which is where the
// coalescer's throughput win comes from when fsyncs are already shared.
//
// Ordering: the FIFO drain preserves per-object order (two Reports of the
// same object hash to the same shard and apply in drain order, and the
// earlier one is never drained later than the second). Cross-verb order is
// preserved by flush barriers: Remove/Insert/Update/ReportBatch, Checkpoint,
// and Close first wait for every previously enqueued Report to be
// acknowledged, so the exclusive commit-lock semantics and the recovery
// invariants are untouched. During recovery replay the coalescer is bypassed
// entirely (replayed records must not re-batch), and a disabled coalescer
// leaves Report on the direct path.
//
// Error attribution: applyReportBatch's applied-prefix bookkeeping says, per
// shard, how many of the shard's drained records landed before its first
// error. A slot whose position is inside the prefix gets nil (or the batch's
// WAL append/commit error — exactly what the direct path would return); the
// slot at the prefix boundary gets the shard's error; later slots of that
// shard were not attempted (shards stop at the first error, like
// ReportBatch) and report that explicitly.

// DefaultCoalesceBatch caps one drained batch when WithWriteCoalescing is
// given a non-positive maxBatch.
const DefaultCoalesceBatch = 256

// pendingSlot is one queued Report awaiting its drain. Slots are pooled
// (satellite of the zero-allocation plumbing): a slot lives from enqueue to
// the moment its owner reads err back, and the owner returns it to the pool.
type pendingSlot struct {
	o    Object
	err  error
	done bool
}

var slotPool = sync.Pool{New: func() any { return new(pendingSlot) }}

// coalescer is the shared ingest pipeline state. All queue fields are
// guarded by mu; the scratch fields (batch, objs, timer) are owned by the
// currently active leader, which there is at most one of by construction.
type coalescer struct {
	s        *Store
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*pendingSlot
	active  bool  // a leader is dwelling or draining
	barrier int   // flush barriers currently waiting (skips the dwell)
	enqSeq  int64 // slots ever enqueued
	doneSeq int64 // slots ever drained and woken
	// kick cuts the leader's dwell short: sent (non-blocking, buffered 1)
	// when the queue reaches maxBatch or a flush barrier arrives.
	kick chan struct{}

	// Leader-owned (there is at most one dwelling leader at a time), reused
	// across drains. The drained batch itself lives in the pooled
	// batchScratch so pipelined drains don't share it.
	timer *time.Timer

	batches  atomic.Int64 // drained batches (CoalescedBatches)
	records  atomic.Int64 // drained records (CoalescedRecords)
	barriers atomic.Int64 // flush-barrier invocations (FlushBarriers)
}

func newCoalescer(s *Store, window time.Duration, maxBatch int) *coalescer {
	c := &coalescer{s: s, window: window, maxBatch: maxBatch, kick: make(chan struct{}, 1)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// kickLeader wakes a dwelling leader without blocking.
func (c *coalescer) kickLeader() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// report is Report's coalesced path: enqueue, then either wait for a leader
// to drain the slot or become the leader. The loop re-elects leadership the
// way wal.Commit does: every woken waiter whose slot is still pending may
// take over, so the queue always drains as long as any caller is blocked on
// it.
func (c *coalescer) report(o Object) error {
	if herr := c.s.writeAllowed(); herr != nil {
		return herr
	}
	slot := slotPool.Get().(*pendingSlot)
	slot.o, slot.err, slot.done = o, nil, false
	c.mu.Lock()
	c.queue = append(c.queue, slot)
	c.enqSeq++
	if len(c.queue) >= c.maxBatch {
		c.kickLeader()
	}
	for !slot.done {
		// Only take leadership when there is something to drain: a caller
		// whose slot is already in an in-flight batch waits for that batch's
		// finish instead of spinning on an empty queue.
		if c.active || len(c.queue) == 0 {
			c.cond.Wait()
			continue
		}
		c.active = true
		c.mu.Unlock()
		c.lead()
		c.mu.Lock()
	}
	err := slot.err
	c.mu.Unlock()
	slotPool.Put(slot)
	return err
}

// dwell waits up to window for followers to pile on. Skipped when the window
// is zero, the queue already holds a full batch, or a flush barrier is
// waiting; cut short by kickLeader. The timer is leader-owned and reused.
func (c *coalescer) dwell() {
	if c.window <= 0 {
		return
	}
	// Clear a stale kick so this dwell can wait its full window.
	select {
	case <-c.kick:
	default:
	}
	c.mu.Lock()
	skip := len(c.queue) >= c.maxBatch || c.barrier > 0
	c.mu.Unlock()
	if skip {
		return
	}
	if c.timer == nil {
		c.timer = time.NewTimer(c.window)
	} else {
		c.timer.Reset(c.window)
	}
	select {
	case <-c.kick:
		if !c.timer.Stop() {
			<-c.timer.C
		}
	case <-c.timer.C:
	}
}

// lead runs one leader turn. Called with c.active held (set by the caller)
// and c.mu released. The turn has two halves: under leadership — dwell, take
// the batch, apply it, append its WAL record; after handing leadership back —
// wait out the sync policy, attribute per-slot errors, wake the waiters, run
// once-per-batch maintenance. The handoff point is what pipelines drains
// around the fsync, and it also keeps a cutover's all-shard lock sweep
// (finishReportBatch) from stalling the next drain's election.
func (c *coalescer) lead() {
	c.dwell()
	sc := c.s.getBatchScratch()
	c.mu.Lock()
	n := len(c.queue)
	if n > c.maxBatch {
		n = c.maxBatch
	}
	sc.slots = append(sc.slots[:0], c.queue[:n]...)
	rest := copy(c.queue, c.queue[n:])
	for i := rest; i < len(c.queue); i++ {
		c.queue[i] = nil
	}
	c.queue = c.queue[:rest]
	c.mu.Unlock()

	res := c.s.coalescedPhase1(sc)
	c.batches.Add(1)
	c.records.Add(int64(n))

	c.mu.Lock()
	c.active = false
	c.cond.Broadcast()
	c.mu.Unlock()

	err := c.s.coalescedFinish(sc, res)

	c.mu.Lock()
	for _, sl := range sc.slots {
		sl.done = true
	}
	c.doneSeq += int64(n)
	c.cond.Broadcast()
	c.mu.Unlock()
	c.s.putBatchScratch(sc)
	_ = c.s.finishReportBatch(res.reported, res.trip, err)
}

// coalResult carries a drained batch's apply/append outcome from the
// leadership half of the turn to the post-handoff half.
type coalResult struct {
	reported int
	trip     bool
	err      error // apply-path error (first shard error)
	lsn      uint64
	werr     error // WAL append error
	evalN    int   // records actually applied and logged
	durable  bool
	health   bool // store unhealthy: slots already carry the error
}

// coalescedPhase1 is the leadership half of a drain: the slots' records
// through the batched apply and one TypeReportBatch append via the pooled
// encode buffer, all under the shared commit lock — exactly
// reportBatchDurable's discipline, so a checkpoint capture can never split
// the batch. It does NOT wait for durability; that is coalescedFinish's job,
// after leadership has been handed back.
func (s *Store) coalescedPhase1(sc *batchScratch) coalResult {
	var res coalResult
	if herr := s.writeAllowed(); herr != nil {
		for _, sl := range sc.slots {
			sl.err = herr
		}
		res.health = true
		return res
	}
	sc.objs = sc.objs[:0]
	for _, sl := range sc.slots {
		sc.objs = append(sc.objs, sl.o)
	}
	d := s.dur
	res.durable = d != nil
	if res.durable {
		d.commitMu.RLock()
	}
	res.reported, res.trip, res.err = s.applyReportBatch(sc.objs, sc)
	for _, g := range sc.eval {
		res.evalN += len(g)
	}
	if res.durable && res.evalN > 0 {
		buf := wal.GetBuf()
		*buf = wal.AppendReportBatch((*buf)[:0], sc.eval)
		res.lsn, res.werr = d.wal.Append(wal.TypeReportBatch, *buf)
		wal.PutBuf(buf)
	}
	if res.durable {
		d.commitMu.RUnlock()
	}
	return res
}

// coalescedFinish completes a drained batch after leadership handoff: one
// wait on the sync policy, per-slot error attribution, health-fault
// classification. Returns the batch-level error for maintenance accounting.
func (s *Store) coalescedFinish(sc *batchScratch, res coalResult) error {
	if res.health {
		return nil
	}
	var cerr error
	if res.durable && res.werr == nil && res.evalN > 0 {
		cerr = s.dur.wal.Commit(res.lsn)
	}
	s.attributeSlots(sc, res.werr, cerr)
	if res.durable {
		s.noteIOFault(res.werr)
		s.noteIOFault(cerr)
		s.noteIOFault(res.err)
		if res.evalN > 0 && res.werr == nil && cerr == nil {
			s.dur.noteRecords(s, 1)
		}
	}
	err := res.err
	if err == nil {
		err = res.werr
	}
	if err == nil {
		err = cerr
	}
	return err
}

// attributeSlots hands each drained slot its own error from the
// applied-prefix bookkeeping: within a shard the drained records applied in
// FIFO order, so a slot's position among its shard's records says whether it
// landed (then only a durability failure can fail it), hit the shard's first
// error, or was never attempted because an earlier record of its shard
// failed.
func (s *Store) attributeSlots(sc *batchScratch, werr, cerr error) {
	single := len(s.shards) == 1
	for i := range sc.cursor {
		sc.cursor[i] = 0
	}
	for _, sl := range sc.slots {
		si := 0
		if !single {
			si = s.shardIndex(sl.o.ID)
		}
		pos := sc.cursor[si]
		sc.cursor[si]++
		switch {
		case pos < sc.applied[si]:
			if werr != nil {
				sl.err = werr
			} else {
				sl.err = cerr
			}
		case sc.errs[si] != nil && pos == sc.applied[si]:
			sl.err = sc.errs[si]
		default:
			sl.err = fmt.Errorf("vpindex: coalesced report of object %d skipped after an earlier failure in its shard: %w", sl.o.ID, sc.errs[si])
		}
	}
}

// flush is the write-path barrier: it blocks until every Report enqueued
// before the call has been drained and acknowledged, so the verb that
// follows observes all of them. It does not wait for Reports enqueued after
// it — under sustained ingest the queue may never be empty, and a barrier
// only owes ordering to its past. Cheap (one mutex round-trip) when the
// coalescer is idle.
func (c *coalescer) flush() {
	c.mu.Lock()
	target := c.enqSeq
	if c.doneSeq < target {
		c.barrier++
		c.kickLeader()
		for c.doneSeq < target {
			c.cond.Wait()
		}
		c.barrier--
	}
	c.mu.Unlock()
}

// coalFlush runs the flush barrier (and counts it) for the non-Report write
// verbs, Checkpoint, and Close. No-op when coalescing is off or during
// recovery replay (the queue is empty then by construction, and replayed
// verbs must not inflate the barrier counter).
func (s *Store) coalFlush() {
	c := s.coal
	if c == nil {
		return
	}
	if d := s.dur; d != nil && d.recovering.Load() {
		return
	}
	c.barriers.Add(1)
	c.flush()
}

// IngestStats reports the write coalescer's counters; ok is false when
// WithWriteCoalescing is off. The same counters surface through
// DurabilityStats for durable stores.
type IngestStats struct {
	// CoalescedBatches / CoalescedRecords count drained batches and the
	// Reports they carried; their ratio is the realized batch size.
	CoalescedBatches int64
	CoalescedRecords int64
	// FlushBarriers counts barrier waits run by the non-Report write verbs
	// (Insert/Update/Remove/ReportBatch), Checkpoint, and Close.
	FlushBarriers int64
}

// IngestStats returns the coalescer's counters, and whether write
// coalescing is enabled at all.
func (s *Store) IngestStats() (IngestStats, bool) {
	c := s.coal
	if c == nil {
		return IngestStats{}, false
	}
	return IngestStats{
		CoalescedBatches: c.batches.Load(),
		CoalescedRecords: c.records.Load(),
		FlushBarriers:    c.barriers.Load(),
	}, true
}
