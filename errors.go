package vpindex

import (
	"errors"

	"repro/internal/model"
	"repro/internal/storage"
)

// Sentinel errors returned by the Store and by the deprecated Index/VPIndex
// wrappers. They are re-exported from the shared internal data model, so a
// value that bubbled up from any layer of the system matches here.
//
// All call sites wrap these with context (object IDs, partition names), so
// test with errors.Is, never with equality:
//
//	if err := store.Remove(42); errors.Is(err, vpindex.ErrNotFound) { ... }
var (
	// ErrNotFound reports that no record with the given ID is indexed
	// (Remove/Get-style misses, updates of unknown objects).
	ErrNotFound = model.ErrNotFound
	// ErrDuplicate reports a strict Insert of an ID that is already
	// indexed. Report never returns it: reporting an existing ID is an
	// update.
	ErrDuplicate = model.ErrDuplicate
	// ErrUnsupported reports an operation the configured index structure
	// does not implement.
	ErrUnsupported = model.ErrUnsupported
	// ErrInjectedCrash reports that a WithFaultInjector kill point fired:
	// the simulated process image is dead and every further durable write
	// is refused (see NewFaultInjector).
	ErrInjectedCrash = storage.ErrInjectedCrash
	// ErrCorruptPage reports that a data page failed its CRC-32C checksum on
	// read: a torn write, bit rot, or a misdirected write. The page is
	// quarantined, never decoded.
	ErrCorruptPage = storage.ErrCorruptPage
)

// Sentinel errors of the Store health state machine (see Store.Health).
var (
	// ErrDegraded reports a write refused because the Store is degraded to
	// read-only after a persistent storage fault. Reads, searches, and
	// subscription evaluation keep serving.
	ErrDegraded = errors.New("vpindex: store degraded to read-only")
	// ErrFailed reports an operation refused because the Store has failed
	// (closed, or hit an unrecoverable fault).
	ErrFailed = errors.New("vpindex: store failed")
)
