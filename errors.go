package vpindex

import (
	"repro/internal/model"
	"repro/internal/storage"
)

// Sentinel errors returned by the Store and by the deprecated Index/VPIndex
// wrappers. They are re-exported from the shared internal data model, so a
// value that bubbled up from any layer of the system matches here.
//
// All call sites wrap these with context (object IDs, partition names), so
// test with errors.Is, never with equality:
//
//	if err := store.Remove(42); errors.Is(err, vpindex.ErrNotFound) { ... }
var (
	// ErrNotFound reports that no record with the given ID is indexed
	// (Remove/Get-style misses, updates of unknown objects).
	ErrNotFound = model.ErrNotFound
	// ErrDuplicate reports a strict Insert of an ID that is already
	// indexed. Report never returns it: reporting an existing ID is an
	// update.
	ErrDuplicate = model.ErrDuplicate
	// ErrUnsupported reports an operation the configured index structure
	// does not implement.
	ErrUnsupported = model.ErrUnsupported
	// ErrInjectedCrash reports that a WithFaultInjector kill point fired:
	// the simulated process image is dead and every further durable write
	// is refused (see NewFaultInjector).
	ErrInjectedCrash = storage.ErrInjectedCrash
)
