package vpindex_test

import (
	"errors"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	vpindex "repro"
)

// TestDeltaChainRecoveryEquivalence drives the same scripted workload into
// two durable stores — one checkpointing mid-stream (full snapshot plus a
// two-delta chain), one never checkpointing — and requires the recovered
// states to be identical: same objects, same search results, same
// subscription result set. The checkpointed store must also replay a
// strictly shorter WAL tail, proving the chain actually covered the prefix.
func TestDeltaChainRecoveryEquivalence(t *testing.T) {
	script := oracleScript(7101, 48)
	dirA, dirB := t.TempDir(), t.TempDir()
	optsA := durableOpts(vpindex.WithDataDir(dirA))
	optsB := durableOpts(vpindex.WithDataDir(dirB))
	storeA, err := vpindex.Open(optsA...)
	if err != nil {
		t.Fatal(err)
	}
	storeB, err := vpindex.Open(optsB...)
	if err != nil {
		t.Fatal(err)
	}
	ckptAfter := map[int]bool{15: true, 27: true, 39: true}
	for i, op := range script {
		if err := applyOp(storeA, op); err != nil {
			t.Fatalf("store A op %d: %v", i, err)
		}
		if err := applyOp(storeB, op); err != nil {
			t.Fatalf("store B op %d: %v", i, err)
		}
		if ckptAfter[i] {
			if err := storeA.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after op %d: %v", i, err)
			}
		}
	}
	stA, _ := storeA.DurabilityStats()
	if stA.Checkpoints != 3 || stA.DeltaChainLen != 2 {
		t.Fatalf("store A stats = %d checkpoints, chain %d; want 3 and 2", stA.Checkpoints, stA.DeltaChainLen)
	}
	if stA.CheckpointBytes <= 0 || stA.CheckpointPauseNs <= 0 || stA.CheckpointPauseMaxNs < stA.CheckpointPauseNs {
		t.Fatalf("checkpoint cost stats unpopulated: %+v", stA)
	}
	if deltas, _ := filepath.Glob(filepath.Join(dirA, "ckpt-*.delta")); len(deltas) != 2 {
		t.Fatalf("store A dir holds %d delta files, want 2", len(deltas))
	}
	if err := storeA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := storeB.Close(); err != nil {
		t.Fatal(err)
	}

	recA, err := vpindex.Open(optsA...)
	if err != nil {
		t.Fatalf("recovering chained store: %v", err)
	}
	defer recA.Close()
	recB, err := vpindex.Open(optsB...)
	if err != nil {
		t.Fatalf("recovering WAL-only store: %v", err)
	}
	defer recB.Close()

	if !matchesPrefix(t, recA, script, len(script)) {
		t.Fatal("chained recovery diverged from the scripted state")
	}
	if !matchesPrefix(t, recB, script, len(script)) {
		t.Fatal("WAL-only recovery diverged from the scripted state")
	}
	searchA, err := recA.Search(wholeDomain())
	if err != nil {
		t.Fatal(err)
	}
	searchB, err := recB.Search(wholeDomain())
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(searchA), sortedIDs(searchB)) {
		t.Fatalf("recovered searches diverge: %v vs %v", searchA, searchB)
	}
	subA, errA := recA.SubscriptionResults(vpindex.SubscriptionID(1))
	subB, errB := recB.SubscriptionResults(vpindex.SubscriptionID(1))
	if errA != nil || errB != nil {
		t.Fatalf("recovered subscription lookups: %v, %v", errA, errB)
	}
	if !equalIDs(sortedIDs(subA), sortedIDs(subB)) {
		t.Fatalf("recovered subscriptions diverge: %v vs %v", subA, subB)
	}
	replayA, _ := recA.DurabilityStats()
	replayB, _ := recB.DurabilityStats()
	if replayA.DeltaChainLen != 2 {
		t.Fatalf("recovered chain length = %d, want 2", replayA.DeltaChainLen)
	}
	if replayA.ReplayedRecords >= replayB.ReplayedRecords {
		t.Fatalf("chained store replayed %d records, WAL-only %d: the chain covered nothing",
			replayA.ReplayedRecords, replayB.ReplayedRecords)
	}
}

// TestCheckpointCompactionFoldsChain verifies the background fold: once the
// delta chain reaches the configured length, compaction rewrites the full
// snapshot, removes the delta files, and the next recovery sees a chain of
// zero with unchanged logical state.
func TestCheckpointCompactionFoldsChain(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(vpindex.WithDataDir(dir), vpindex.WithCheckpointCompaction(2, 0))
	store, err := vpindex.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(88))
	live := map[vpindex.ObjectID]vpindex.Object{}
	report := func(n int) {
		for i := 0; i < n; i++ {
			o := testObject(1+rng.Intn(40), rng)
			if err := store.Report(o); err != nil {
				t.Fatal(err)
			}
			live[o.ID] = o
		}
	}
	report(30)
	if err := store.Checkpoint(); err != nil { // full snapshot, chain 0
		t.Fatal(err)
	}
	report(10)
	if err := store.Checkpoint(); err != nil { // delta, chain 1
		t.Fatal(err)
	}
	if st, _ := store.DurabilityStats(); st.Compactions != 0 || st.DeltaChainLen != 1 {
		t.Fatalf("below threshold: %d compactions, chain %d; want 0 and 1", st.Compactions, st.DeltaChainLen)
	}
	victim := mustAnyID(t, live)
	if err := store.Remove(victim); err != nil {
		t.Fatal(err)
	}
	delete(live, victim)
	report(10)
	if err := store.Checkpoint(); err != nil { // delta, chain 2 -> compaction due
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := store.DurabilityStats()
		if st.Compactions >= 1 && st.DeltaChainLen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction never folded the chain: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if deltas, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.delta")); len(deltas) != 0 {
		t.Fatalf("%d delta files survive compaction", len(deltas))
	}
	want, err := store.Search(wholeDomain())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := vpindex.Open(opts...)
	if err != nil {
		t.Fatalf("recovery after compaction: %v", err)
	}
	defer recovered.Close()
	got, err := recovered.Search(wholeDomain())
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(got), sortedIDs(want)) {
		t.Fatalf("post-compaction recovery = %v, want %v", got, want)
	}
	if st, _ := recovered.DurabilityStats(); st.DeltaChainLen != 0 {
		t.Fatalf("recovered chain length = %d after compaction, want 0", st.DeltaChainLen)
	}
}

// mustAnyID returns an arbitrary key of a non-empty live map.
func mustAnyID(t *testing.T, live map[vpindex.ObjectID]vpindex.Object) vpindex.ObjectID {
	t.Helper()
	for id := range live {
		return id
	}
	t.Fatal("live set empty")
	return 0
}

// TestBackgroundCheckpointNoPileup is the regression test for the unbounded
// cadence goroutines: with a checkpoint every record, a burst of reports used
// to spawn one background checkpoint goroutine per record, all queued on the
// checkpoint mutex. The in-flight guard must keep the goroutine count flat
// while the burst runs.
func TestBackgroundCheckpointNoPileup(t *testing.T) {
	store, err := vpindex.Open(durableOpts(
		vpindex.WithDataDir(t.TempDir()),
		vpindex.WithCheckpointEvery(1),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rng := rand.New(rand.NewSource(6))
	base := runtime.NumGoroutine()
	peak := base
	for i := 1; i <= 300; i++ {
		if err := store.Report(testObject(i, rng)); err != nil {
			t.Fatal(err)
		}
		if n := runtime.NumGoroutine(); n > peak {
			peak = n
		}
	}
	if peak > base+16 {
		t.Fatalf("goroutines grew from %d to %d during the burst: background checkpoints piled up", base, peak)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := store.DurabilityStats(); st.Checkpoints >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no background checkpoint completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKillPointDeltaChainOracle extends the crash matrix to the chain
// machinery: the script checkpoints explicitly four times under a
// chain-length-2 compaction trigger, so the injector's kill points land
// inside the full-snapshot write, both delta writes, the background fold,
// and the WAL appends between them. Every recovered state must equal the
// brute-force survivor of an acknowledged-consistent prefix.
func TestKillPointDeltaChainOracle(t *testing.T) {
	script := oracleScript(4242, 30)
	ckptAfter := map[int]bool{7: true, 13: true, 19: true, 25: true}
	for killAt := int64(1); ; killAt++ {
		dir := t.TempDir()
		fi := vpindex.NewFaultInjector(killAt)
		opts := durableOpts(
			vpindex.WithDataDir(dir),
			vpindex.WithSyncPolicy(vpindex.SyncAlways()),
			vpindex.WithFaultInjector(fi),
			vpindex.WithCheckpointCompaction(2, 0),
			vpindex.WithWALSegmentBytes(2048),
		)
		store, err := vpindex.Open(opts...)
		if err != nil {
			t.Fatalf("killAt %d: open: %v", killAt, err)
		}
		acked := 0
		crashed := false
		for i, op := range script {
			if err := applyOp(store, op); err != nil {
				if !errors.Is(err, vpindex.ErrInjectedCrash) {
					t.Fatalf("killAt %d: op %d failed with %v, not an injected crash", killAt, acked, err)
				}
				crashed = true
				break
			}
			acked++
			if ckptAfter[i] {
				// A checkpoint that dies loses nothing acknowledged; stop
				// driving the store, recovery must still see every acked op.
				if err := store.Checkpoint(); err != nil {
					if !errors.Is(err, vpindex.ErrInjectedCrash) {
						t.Fatalf("killAt %d: checkpoint after op %d: %v", killAt, i, err)
					}
					crashed = true
					break
				}
			}
		}
		if !crashed {
			_ = store.Close()
			recovered, err := vpindex.Open(durableOpts(vpindex.WithDataDir(dir))...)
			if err != nil {
				t.Fatalf("killAt %d: final recovery: %v", killAt, err)
			}
			if !matchesPrefix(t, recovered, script, len(script)) {
				t.Fatalf("killAt %d: clean run did not recover the full script", killAt)
			}
			recovered.Close()
			if fi.SyncPoints() < killAt {
				t.Logf("delta-chain matrix covered %d kill points", killAt-1)
				return
			}
			continue
		}
		_ = store.Close()

		recovered, err := vpindex.Open(durableOpts(vpindex.WithDataDir(dir))...)
		if err != nil {
			t.Fatalf("killAt %d: recovery open: %v", killAt, err)
		}
		ok := matchesPrefix(t, recovered, script, acked) ||
			(acked+1 <= len(script) && matchesPrefix(t, recovered, script, acked+1))
		if !ok {
			t.Fatalf("killAt %d: recovered state matches neither prefix %d nor %d of the script",
				killAt, acked, acked+1)
		}
		recovered.Close()
	}
}
