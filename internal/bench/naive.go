package bench

import (
	"repro/internal/analysis/cluster"
	"repro/internal/analysis/pca"
	"repro/internal/geom"
)

// pcaAnalyze returns the first principal component of the whole sample —
// naive approach I of Section 5.1 (Fig. 10a): a single PCA averages the
// DVAs together.
func pcaAnalyze(sample []geom.Vec2) (geom.Vec2, error) {
	res, err := pca.Analyze(sample, pca.Uncentered)
	if err != nil {
		return geom.Vec2{}, err
	}
	return res.PC1, nil
}

// centroidAxes returns the per-cluster 1st PCs found by centroid k-means —
// naive approach II of Section 5.1 (Fig. 10b): clustering by distance to a
// point produces clusters centered on centroids, not axes.
func centroidAxes(sample []geom.Vec2, seed int64) ([]geom.Vec2, error) {
	clusters, _, err := cluster.KMeansCentroids(sample, 2, cluster.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	out := make([]geom.Vec2, len(clusters))
	for i, c := range clusters {
		out[i] = c.Axis
	}
	return out, nil
}
