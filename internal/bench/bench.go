// Package bench is the experiment harness that regenerates every figure of
// the VP paper's evaluation (Section 6). Each RunFigNN function drives the
// four index configurations — Bx, Bx(VP), TPR*, TPR*(VP) — through the
// Chen-benchmark workload of internal/workload and reports the same
// series/rows the paper plots: average query I/O (buffer-pool misses),
// average query execution time, and (for Fig. 19) update costs.
//
// The harness is scale-parameterized: Scale{} chooses the object count,
// query count and duration. Paper scale (Table 1) is minutes per figure;
// the default test scale finishes in seconds while preserving the paper's
// qualitative outcomes (who wins, how gaps widen with speed/time/size).
package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	vpindex "repro"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/workload"
)

// Setup names one index configuration of the paper's comparison.
type Setup string

const (
	SetupBx    Setup = "Bx"
	SetupBxVP  Setup = "Bx(VP)"
	SetupTPR   Setup = "TPR*"
	SetupTPRVP Setup = "TPR*(VP)"
)

// AllSetups returns the four configurations in the paper's legend order.
func AllSetups() []Setup { return []Setup{SetupBx, SetupBxVP, SetupTPR, SetupTPRVP} }

// IsVP reports whether the setup uses velocity partitioning.
func (s Setup) IsVP() bool { return s == SetupBxVP || s == SetupTPRVP }

// Kind returns the base index kind.
func (s Setup) Kind() vpindex.Kind {
	if s == SetupBx || s == SetupBxVP {
		return vpindex.Bx
	}
	return vpindex.TPRStar
}

// Scale controls experiment size. Reduced scales must preserve two ratios
// or the paper's effects vanish into cache noise: the *object density*
// (Table 1: 100K objects on a 100,000 m side, 1e-5 objects/m^2) and the
// *buffer-to-index* ratio (50 pages against a ~1200-page index, ~4%).
// ScaleFor derives both from the object count.
type Scale struct {
	Objects    int
	Queries    int
	Duration   float64
	DomainSide float64 // data space side length (m)
	Buffer     int     // buffer pool pages
}

// ScaleFor derives a density- and buffer-ratio-preserving scale for an
// object count.
func ScaleFor(objects, queries int, duration float64) Scale {
	side := 100000 * math.Sqrt(float64(objects)/100000)
	buf := objects * 50 / 100000
	if buf < 8 {
		buf = 8
	}
	return Scale{
		Objects:    objects,
		Queries:    queries,
		Duration:   duration,
		DomainSide: side,
		Buffer:     buf,
	}
}

// TestScale is small enough for go test / testing.B.
func TestScale() Scale { return ScaleFor(4000, 60, 40) }

// DefaultScale is the CLI default: large enough for stable trends, minutes
// per figure.
func DefaultScale() Scale { return ScaleFor(20000, 200, 120) }

// PaperScale is Table 1: 100K objects on the full 100 km domain, 240 ts,
// 50 buffer pages.
func PaperScale() Scale {
	return Scale{Objects: 100000, Queries: 200, Duration: 240, DomainSide: 100000, Buffer: 50}
}

// Instrumented is an index whose buffer pool can be snapshooted.
type Instrumented interface {
	model.Index
	Stats() vpindex.IOStats
}

// Build constructs one of the four setups for the given workload generator.
// VP setups analyze the generator's velocity sample first.
func Build(s Setup, gen *workload.Generator, bufferPages int) (Instrumented, error) {
	p := gen.Params()
	opts := vpindex.Options{
		Kind:              s.Kind(),
		Domain:            p.Domain,
		BufferPages:       bufferPages,
		MaxUpdateInterval: p.MaxUpdateInterval,
		Horizon:           p.MaxUpdateInterval,
	}
	if !s.IsVP() {
		return vpindex.New(opts)
	}
	sample := gen.VelocitySample(p.SampleSize)
	return vpindex.NewVP(sample, vpindex.VPOptions{
		Options: opts,
		K:       2,
		Seed:    p.Seed,
	})
}

// Metrics aggregates one setup's measured costs over a workload run.
type Metrics struct {
	Setup   Setup
	Dataset workload.Dataset

	Queries     int
	Updates     int
	QueryIO     float64 // average buffer misses per query
	QueryMs     float64 // average wall ms per query
	UpdateIO    float64
	UpdateMs    float64
	AvgResults  float64
	LoadSeconds float64
}

// Run loads the initial population, then replays the update stream
// interleaved with the query stream in timestamp order, measuring per-
// operation I/O (buffer misses) and wall time.
func Run(s Setup, gen *workload.Generator, bufferPages int) (Metrics, error) {
	idx, err := Build(s, gen, bufferPages)
	if err != nil {
		return Metrics{}, err
	}
	return RunOn(idx, s, gen)
}

// RunOn replays the workload against a pre-built index (used by the
// fixed-tau sweep, which tweaks the index before loading).
func RunOn(idx Instrumented, s Setup, gen *workload.Generator) (Metrics, error) {
	m := Metrics{Setup: s, Dataset: gen.Params().Dataset}

	loadStart := time.Now()
	for _, o := range gen.Initial() {
		if err := idx.Insert(o); err != nil {
			return m, fmt.Errorf("bench: load %v: %w", o.ID, err)
		}
	}
	m.LoadSeconds = time.Since(loadStart).Seconds()

	queries := gen.Queries(gen.Params().NumQueries)
	qi := 0
	var totalResults int64

	runQuery := func(q model.RangeQuery) error {
		before := idx.Stats()
		t0 := time.Now()
		ids, err := idx.Search(q)
		if err != nil {
			return err
		}
		m.QueryMs += time.Since(t0).Seconds() * 1000
		m.QueryIO += float64(idx.Stats().Reads - before.Reads)
		m.Queries++
		totalResults += int64(len(ids))
		return nil
	}

	for {
		ev, ok := gen.NextUpdate()
		if !ok {
			break
		}
		for qi < len(queries) && queries[qi].Now <= ev.T {
			if err := runQuery(queries[qi]); err != nil {
				return m, err
			}
			qi++
		}
		before := idx.Stats()
		t0 := time.Now()
		if err := idx.Update(ev.Old, ev.New); err != nil {
			return m, fmt.Errorf("bench: update %v at t=%g: %w", ev.Old.ID, ev.T, err)
		}
		m.UpdateMs += time.Since(t0).Seconds() * 1000
		m.UpdateIO += float64(idx.Stats().Reads - before.Reads)
		m.Updates++
	}
	for ; qi < len(queries); qi++ {
		if err := runQuery(queries[qi]); err != nil {
			return m, err
		}
	}

	if m.Queries > 0 {
		m.QueryIO /= float64(m.Queries)
		m.QueryMs /= float64(m.Queries)
		m.AvgResults = float64(totalResults) / float64(m.Queries)
	}
	if m.Updates > 0 {
		m.UpdateIO /= float64(m.Updates)
		m.UpdateMs /= float64(m.Updates)
	}
	return m, nil
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// params builds workload parameters for a dataset at the given scale.
func params(ds workload.Dataset, sc Scale, seed int64) workload.Params {
	p := workload.DefaultParams(ds, sc.Objects)
	p.Duration = sc.Duration
	p.NumQueries = sc.Queries
	p.Seed = seed
	if sc.DomainSide > 0 {
		p.Domain = geomR(sc.DomainSide)
	}
	if sc.Objects < p.SampleSize {
		p.SampleSize = sc.Objects
	}
	return p
}

func geomR(side float64) geom.Rect { return geom.R(0, 0, side, side) }
