package bench

import (
	"fmt"
	"strings"
	"testing"

	vpindex "repro"
	"repro/internal/model"
	"repro/internal/workload"
)

func tinyScale() Scale { return ScaleFor(1500, 25, 25) }

func TestRunAllSetupsProduceMetrics(t *testing.T) {
	sc := tinyScale()
	for _, s := range AllSetups() {
		gen, err := workload.NewGenerator(params(workload.Chicago, sc, 1))
		if err != nil {
			t.Fatal(err)
		}
		m, err := Run(s, gen, sc.Buffer)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if m.Queries == 0 || m.Updates == 0 {
			t.Fatalf("%s: no work measured: %+v", s, m)
		}
		if m.QueryIO <= 0 {
			t.Fatalf("%s: query I/O %g", s, m.QueryIO)
		}
		if m.UpdateIO < 0 || m.QueryMs < 0 {
			t.Fatalf("%s: negative metrics: %+v", s, m)
		}
	}
}

// TestResultParityAcrossSetups: all four setups must return identical
// result sets for the same workload — they index the same objects.
func TestResultParityAcrossSetups(t *testing.T) {
	sc := tinyScale()
	p := params(workload.SanFrancisco, sc, 3)
	results := map[Setup][]int{}
	for _, s := range AllSetups() {
		gen, err := workload.NewGenerator(p)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := Build(s, gen, sc.Buffer)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range gen.Initial() {
			if err := idx.Insert(o); err != nil {
				t.Fatal(err)
			}
		}
		// Replay updates, then run queries and count per-query results.
		for {
			ev, ok := gen.NextUpdate()
			if !ok {
				break
			}
			if err := idx.Update(ev.Old, ev.New); err != nil {
				t.Fatalf("%s: %v", s, err)
			}
		}
		var counts []int
		for _, q := range gen.Queries(20) {
			// Issue all queries at the end: shift Now forward so the
			// comparison is at identical logical times.
			q.Now = p.Duration
			q.T0 = p.Duration + p.PredictiveTime
			ids, err := idx.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			counts = append(counts, len(ids))
		}
		results[s] = counts
	}
	want := results[SetupBx]
	for s, got := range results {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("setup %s disagrees on query %d: %d vs %d", s, i, got[i], want[i])
			}
		}
	}
}

func TestVPWinsOnChicagoTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := ScaleFor(6000, 50, 30)
	ios := map[Setup]float64{}
	for _, s := range AllSetups() {
		gen, err := workload.NewGenerator(params(workload.Chicago, sc, 7))
		if err != nil {
			t.Fatal(err)
		}
		m, err := Run(s, gen, sc.Buffer)
		if err != nil {
			t.Fatal(err)
		}
		ios[s] = m.QueryIO
	}
	t.Logf("query I/O: %v", ios)
	if ios[SetupBxVP] >= ios[SetupBx] {
		t.Errorf("Bx(VP) %.1f should beat Bx %.1f on Chicago", ios[SetupBxVP], ios[SetupBx])
	}
	if ios[SetupTPRVP] >= ios[SetupTPR] {
		t.Errorf("TPR*(VP) %.1f should beat TPR* %.1f on Chicago", ios[SetupTPRVP], ios[SetupTPR])
	}
}

func TestFig7ProducesAnisotropySplit(t *testing.T) {
	points, tab, err := RunFig7(tinyScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 || len(tab.Rows) < 4 {
		t.Fatalf("fig7 empty: %d points, %d rows", len(points), len(tab.Rows))
	}
	// Partitioned series must be markedly more anisotropic (minor/major
	// closer to 0) than unpartitioned.
	ratio := map[string]float64{}
	for _, r := range tab.Rows {
		var v float64
		if _, err := sscan(r[4], &v); err != nil {
			t.Fatal(err)
		}
		ratio[r[0]] = v
	}
	for _, base := range []string{"TPR*", "Bx"} {
		flat, ok := ratio[base]
		if !ok {
			t.Fatalf("missing series %s in %v", base, ratio)
		}
		for name, v := range ratio {
			if strings.HasPrefix(name, base+" partition") && v > flat/2 {
				t.Errorf("%s ratio %.3f not clearly below %s %.3f", name, v, base, flat)
			}
		}
	}
	t.Log("\n" + tab.Format())
}

func TestFig18AnalyzerTimes(t *testing.T) {
	tab, err := RunFig18(tinyScale(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("expected 5 datasets, got %d", len(tab.Rows))
	}
	t.Log("\n" + tab.Format())
}

func TestDVADumpListsAllMethods(t *testing.T) {
	tab, err := RunDVADump(workload.SanFrancisco, tinyScale(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 { // 2 VP partitions + naive I + 2 naive II
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	t.Log("\n" + tab.Format())
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		Title:  "t",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"xxxxxx", "1"}},
	}
	out := tab.Format()
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "xxxxxx") {
		t.Fatalf("format: %q", out)
	}
}

// sscan parses a float out of a formatted table cell.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestMetricsOnBrokenWorkload(t *testing.T) {
	// Validate that Run surfaces index errors instead of swallowing them:
	// use an index that rejects everything.
	gen, err := workload.NewGenerator(params(workload.Uniform, tinyScale(), 5))
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunOn(rejectingIndex{}, SetupBx, gen)
	if err == nil {
		t.Fatal("expected error from rejecting index")
	}
}

type rejectingIndex struct{}

func (rejectingIndex) Insert(model.Object) error                         { return errRejected }
func (rejectingIndex) Delete(model.Object) error                         { return errRejected }
func (rejectingIndex) Update(_, _ model.Object) error                    { return errRejected }
func (rejectingIndex) Search(model.RangeQuery) ([]model.ObjectID, error) { return nil, errRejected }
func (rejectingIndex) Len() int                                          { return 0 }
func (rejectingIndex) IO() model.IOStats                                 { return model.IOStats{} }
func (rejectingIndex) Name() string                                      { return "reject" }
func (rejectingIndex) Stats() vpindex.IOStats                            { return vpindex.IOStats{} }

var errRejected = errString("rejected")

type errString string

func (e errString) Error() string { return string(e) }
