package bench

import (
	"fmt"
	"math"
	"time"

	vpindex "repro"
	"repro/internal/bxtree"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/tprtree"
	"repro/internal/workload"
)

// BufferPages is the paper's RAM buffer (Table 1).
const BufferPages = 50

// --- Fig. 7: search space expansion ------------------------------------------

// ExpansionPoint is one scatter point of Fig. 7: the per-axis expansion
// rate of a leaf MBR (TPR* variants) or of the enlarged query window (Bx
// variants). For partitioned series, X is the rate along the partition's
// DVA and Y orthogonal to it.
type ExpansionPoint struct {
	Series string
	X, Y   float64
}

// RunFig7 reproduces Fig. 7: the unpartitioned TPR*/Bx expand in 2-D while
// their VP counterparts expand in a near-1D space. Returns the scatter
// points plus a summary table of mean rates and anisotropy.
func RunFig7(sc Scale, seed int64) ([]ExpansionPoint, Table, error) {
	p := params(workload.Chicago, sc, seed)
	var points []ExpansionPoint

	// TPR* unpartitioned.
	genT, err := workload.NewGenerator(p)
	if err != nil {
		return nil, Table{}, err
	}
	flatT, err := Build(SetupTPR, genT, sc.Buffer)
	if err != nil {
		return nil, Table{}, err
	}
	for _, o := range genT.Initial() {
		if err := flatT.Insert(o); err != nil {
			return nil, Table{}, err
		}
	}
	tpr := flatT.(*vpindex.Index).Index.(*tprtree.Tree)
	lbs, err := tpr.LeafBounds(0)
	if err != nil {
		return nil, Table{}, err
	}
	for _, lb := range lbs {
		points = append(points, ExpansionPoint{
			Series: "TPR*",
			X:      lb.MR.VBR.MaxX - lb.MR.VBR.MinX,
			Y:      lb.MR.VBR.MaxY - lb.MR.VBR.MinY,
		})
	}

	// TPR* partitioned: rates per DVA partition in that partition's frame.
	genTV, err := workload.NewGenerator(p)
	if err != nil {
		return nil, Table{}, err
	}
	vpT, err := Build(SetupTPRVP, genTV, sc.Buffer)
	if err != nil {
		return nil, Table{}, err
	}
	for _, o := range genTV.Initial() {
		if err := vpT.Insert(o); err != nil {
			return nil, Table{}, err
		}
	}
	for pi, part := range vpT.(*vpindex.VPIndex).Partitions() {
		tree, ok := part.Index.(*tprtree.Tree)
		if !ok || part.Spec.IsOutlier {
			continue
		}
		plbs, err := tree.LeafBounds(0)
		if err != nil {
			return nil, Table{}, err
		}
		for _, lb := range plbs {
			points = append(points, ExpansionPoint{
				Series: fmt.Sprintf("TPR* partition %d", pi),
				X:      lb.MR.VBR.MaxX - lb.MR.VBR.MinX,
				Y:      lb.MR.VBR.MaxY - lb.MR.VBR.MinY,
			})
		}
	}

	// Bx unpartitioned: query window expansion rates sampled over random
	// query regions.
	genB, err := workload.NewGenerator(p)
	if err != nil {
		return nil, Table{}, err
	}
	flatB, err := Build(SetupBx, genB, sc.Buffer)
	if err != nil {
		return nil, Table{}, err
	}
	for _, o := range genB.Initial() {
		if err := flatB.Insert(o); err != nil {
			return nil, Table{}, err
		}
	}
	bx := flatB.(*vpindex.Index).Index.(*bxtree.Tree)
	for _, q := range genB.Queries(sc.Queries) {
		for _, r := range bx.ExpansionRate(q.Region()) {
			points = append(points, ExpansionPoint{Series: "Bx", X: r.X, Y: r.Y})
		}
	}

	// Bx partitioned.
	genBV, err := workload.NewGenerator(p)
	if err != nil {
		return nil, Table{}, err
	}
	vpB, err := Build(SetupBxVP, genBV, sc.Buffer)
	if err != nil {
		return nil, Table{}, err
	}
	for _, o := range genBV.Initial() {
		if err := vpB.Insert(o); err != nil {
			return nil, Table{}, err
		}
	}
	for pi, part := range vpB.(*vpindex.VPIndex).Partitions() {
		tree, ok := part.Index.(*bxtree.Tree)
		if !ok || part.Spec.IsOutlier {
			continue
		}
		for _, q := range genBV.Queries(sc.Queries) {
			tq := q.Transform(part.Rot)
			for _, r := range tree.ExpansionRate(tq.Region()) {
				points = append(points, ExpansionPoint{
					Series: fmt.Sprintf("Bx partition %d", pi),
					X:      r.X, Y: r.Y,
				})
			}
		}
	}

	// Summary: mean rates and anisotropy ratio per series.
	type agg struct {
		n          int
		sx, sy     float64
		anisotropy float64
	}
	aggs := map[string]*agg{}
	var order []string
	for _, pt := range points {
		a, ok := aggs[pt.Series]
		if !ok {
			a = &agg{}
			aggs[pt.Series] = a
			order = append(order, pt.Series)
		}
		a.n++
		a.sx += pt.X
		a.sy += pt.Y
		lo, hi := math.Min(pt.X, pt.Y), math.Max(pt.X, pt.Y)
		if hi > 0 {
			a.anisotropy += lo / hi
		}
	}
	tab := Table{
		Title:  "Fig. 7 — search space expansion rates (CH), mean m/ts per axis",
		Header: []string{"series", "points", "mean rate major", "mean rate minor", "minor/major"},
	}
	for _, s := range order {
		a := aggs[s]
		mx, my := a.sx/float64(a.n), a.sy/float64(a.n)
		tab.Rows = append(tab.Rows, []string{
			s, fmt.Sprint(a.n),
			f1(math.Max(mx, my)), f1(math.Min(mx, my)),
			f3(a.anisotropy / float64(a.n)),
		})
	}
	return points, tab, nil
}

// --- Fig. 17: fixed tau sweep vs automatic tau -------------------------------

// TauSweepValues mirrors the paper's x-axis.
var TauSweepValues = []float64{0, 1, 2, 5, 10, 15, 20, 40, 60}

// RunFig17 reproduces Fig. 17 for one dataset: query I/O of Bx(VP) and
// TPR*(VP) at fixed tau thresholds versus the automatically derived tau.
func RunFig17(ds workload.Dataset, sc Scale, seed int64) (Table, error) {
	tab := Table{
		Title:  fmt.Sprintf("Fig. 17 — tau sweep on %s (query I/O)", ds),
		Header: []string{"tau", "Bx(VP)", "TPR*(VP)"},
	}
	run := func(s Setup, tau float64, auto bool) (float64, error) {
		gen, err := workload.NewGenerator(params(ds, sc, seed))
		if err != nil {
			return 0, err
		}
		idx, err := Build(s, gen, sc.Buffer)
		if err != nil {
			return 0, err
		}
		vp := idx.(*vpindex.VPIndex)
		if !auto {
			for i := 0; i < vp.NumPartitions()-1; i++ {
				vp.SetTau(i, tau)
			}
		}
		m, err := RunOn(idx, s, gen)
		if err != nil {
			return 0, err
		}
		return m.QueryIO, nil
	}
	for _, tau := range TauSweepValues {
		bxIO, err := run(SetupBxVP, tau, false)
		if err != nil {
			return tab, err
		}
		tprIO, err := run(SetupTPRVP, tau, false)
		if err != nil {
			return tab, err
		}
		tab.Rows = append(tab.Rows, []string{f1(tau), f1(bxIO), f1(tprIO)})
	}
	bxAuto, err := run(SetupBxVP, 0, true)
	if err != nil {
		return tab, err
	}
	tprAuto, err := run(SetupTPRVP, 0, true)
	if err != nil {
		return tab, err
	}
	tab.Rows = append(tab.Rows, []string{"auto", f1(bxAuto), f1(tprAuto)})
	return tab, nil
}

// --- Fig. 18: velocity analyzer overhead --------------------------------------

// RunFig18 times the velocity analyzer (PCA-guided k-means + tau) on a
// 10,000-point sample of every dataset, averaged over runs (the paper runs
// each five times).
func RunFig18(sc Scale, seed int64, runs int) (Table, error) {
	if runs <= 0 {
		runs = 5
	}
	tab := Table{
		Title:  "Fig. 18 — velocity analyzer run time (ms)",
		Header: []string{"dataset", "analyzer ms"},
	}
	for _, ds := range workload.Datasets() {
		p := params(ds, sc, seed)
		gen, err := workload.NewGenerator(p)
		if err != nil {
			return tab, err
		}
		sample := gen.VelocitySample(p.SampleSize)
		var total time.Duration
		for r := 0; r < runs; r++ {
			an, err := core.Analyze(sample, core.AnalyzerConfig{K: 2})
			if err != nil {
				return tab, err
			}
			total += an.Elapsed
		}
		ms := total.Seconds() * 1000 / float64(runs)
		tab.Rows = append(tab.Rows, []string{string(ds), f2(ms)})
	}
	return tab, nil
}

// --- Fig. 19: all datasets, query and update costs ----------------------------

// RunFig19 reproduces Fig. 19(a-d): the four setups across the five data
// sets, reporting average query I/O, query time, update I/O and update time.
func RunFig19(sc Scale, seed int64) (Table, error) {
	tab := Table{
		Title: "Fig. 19 — all data sets (query I/O, query ms, update I/O, update ms)",
		Header: []string{"dataset", "setup", "query I/O", "query ms",
			"update I/O", "update ms"},
	}
	for _, ds := range workload.Datasets() {
		for _, s := range AllSetups() {
			gen, err := workload.NewGenerator(params(ds, sc, seed))
			if err != nil {
				return tab, err
			}
			m, err := Run(s, gen, sc.Buffer)
			if err != nil {
				return tab, fmt.Errorf("%s/%s: %w", ds, s, err)
			}
			tab.Rows = append(tab.Rows, []string{
				string(ds), string(s),
				f1(m.QueryIO), f3(m.QueryMs), f2(m.UpdateIO), f3(m.UpdateMs),
			})
		}
	}
	return tab, nil
}

// --- Fig. 20-24: parameter sweeps ---------------------------------------------

// sweep runs the four setups over a parameter sweep, mutating params per
// point.
func sweep(title string, xName string, xs []float64, sc Scale, seed int64,
	mut func(*workload.Params, float64)) (Table, error) {

	tab := Table{
		Title:  title,
		Header: []string{xName, "Bx IO", "Bx(VP) IO", "TPR* IO", "TPR*(VP) IO", "Bx ms", "Bx(VP) ms", "TPR* ms", "TPR*(VP) ms"},
	}
	for _, x := range xs {
		row := []string{f1(x)}
		var ios, times []string
		for _, s := range AllSetups() {
			p := params(workload.Chicago, sc, seed)
			mut(&p, x)
			gen, err := workload.NewGenerator(p)
			if err != nil {
				return tab, err
			}
			m, err := Run(s, gen, sc.Buffer)
			if err != nil {
				return tab, fmt.Errorf("%s x=%g: %w", s, x, err)
			}
			ios = append(ios, f1(m.QueryIO))
			times = append(times, f3(m.QueryMs))
		}
		row = append(row, ios...)
		row = append(row, times...)
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// RunFig20 sweeps the object count (paper: 100K..500K).
func RunFig20(sizes []int, sc Scale, seed int64) (Table, error) {
	xs := make([]float64, len(sizes))
	for i, s := range sizes {
		xs[i] = float64(s)
	}
	return sweep("Fig. 20 — effect of data size on range query", "objects", xs, sc, seed,
		func(p *workload.Params, x float64) { p.NumObjects = int(x) })
}

// RunFig21 sweeps the maximum object speed (paper: 20..200 m/ts).
func RunFig21(speeds []float64, sc Scale, seed int64) (Table, error) {
	return sweep("Fig. 21 — effect of maximum object speed", "max speed", speeds, sc, seed,
		func(p *workload.Params, x float64) { p.MaxSpeed = x })
}

// RunFig22 sweeps the circular query radius (paper: 100..1000 m).
func RunFig22(radii []float64, sc Scale, seed int64) (Table, error) {
	return sweep("Fig. 22 — effect of range query size", "radius", radii, sc, seed,
		func(p *workload.Params, x float64) { p.QueryRadius = x })
}

// RunFig23 sweeps the query predictive time (paper: 20..120 ts).
func RunFig23(times []float64, sc Scale, seed int64) (Table, error) {
	return sweep("Fig. 23 — effect of query predictive time (circle)", "predictive ts",
		times, sc, seed,
		func(p *workload.Params, x float64) { p.PredictiveTime = x })
}

// RunFig24 repeats the predictive-time sweep with 1000x1000 m rectangular
// queries.
func RunFig24(times []float64, sc Scale, seed int64) (Table, error) {
	return sweep("Fig. 24 — effect of query predictive time (rectangle)", "predictive ts",
		times, sc, seed,
		func(p *workload.Params, x float64) {
			p.PredictiveTime = x
			p.UseRectQueries = true
		})
}

// --- DVA illustration (Fig. 10-13) ---------------------------------------------

// RunDVADump reproduces the velocity-analyzer illustrations: it reports the
// DVAs and taus found on a dataset's sample (Fig. 11/13) plus what the two
// naive approaches would have found (Fig. 10), as a table; the raw sample
// can be dumped via cmd/datagen for plotting.
func RunDVADump(ds workload.Dataset, sc Scale, seed int64) (Table, error) {
	p := params(ds, sc, seed)
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return Table{}, err
	}
	sample := gen.VelocitySample(p.SampleSize)
	tab := Table{
		Title:  fmt.Sprintf("Fig. 10-13 — DVA discovery on %s (sample %d)", ds, len(sample)),
		Header: []string{"method", "axis", "angle deg", "tau", "kept", "outliers"},
	}

	an, err := core.Analyze(sample, core.AnalyzerConfig{K: 2})
	if err != nil {
		return tab, err
	}
	for i, d := range an.Frames {
		if d.IsOutlier {
			continue
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("VP (partition %d)", i),
			fmt.Sprintf("(%.3f, %.3f)", d.Axis.X, d.Axis.Y),
			f1(d.Axis.Angle() * 180 / math.Pi),
			f2(d.Tau), fmt.Sprint(d.Count), fmt.Sprint(d.OutlierCount),
		})
	}

	// Naive approach I: plain PCA over everything.
	if res, err := pcaAll(sample); err == nil {
		tab.Rows = append(tab.Rows, []string{
			"naive I (PCA)",
			fmt.Sprintf("(%.3f, %.3f)", res.X, res.Y),
			f1(res.Angle() * 180 / math.Pi),
			"-", fmt.Sprint(len(sample)), "0",
		})
	}

	// Naive approach II: centroid k-means then PCA per cluster.
	cens, err := centroidAxes(sample, seed)
	if err == nil {
		for i, ax := range cens {
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprintf("naive II (cluster %d)", i),
				fmt.Sprintf("(%.3f, %.3f)", ax.X, ax.Y),
				f1(ax.Angle() * 180 / math.Pi),
				"-", "-", "-",
			})
		}
	}
	return tab, nil
}

func pcaAll(sample []geom.Vec2) (geom.Vec2, error) {
	res, err := pcaAnalyze(sample)
	if err != nil {
		return geom.Vec2{}, err
	}
	return res, nil
}
