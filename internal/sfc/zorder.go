package sfc

import "fmt"

// ZOrder is the Z-order (Morton) curve over a 2^order x 2^order grid: the
// curve value interleaves the bits of x and y (x in the even positions).
// The VP paper's Bx-tree configuration uses the Hilbert curve; the Z-curve
// is provided because the Bx-tree definition admits either, and the
// repository's ablation benches compare the two.
type ZOrder struct {
	order uint
}

// NewZOrder returns the Z-order curve with the given bits per axis.
func NewZOrder(order uint) (*ZOrder, error) {
	if order < 1 || order > MaxOrder {
		return nil, fmt.Errorf("sfc: z-order order %d out of range [1,%d]", order, MaxOrder)
	}
	return &ZOrder{order: order}, nil
}

// MustZOrder is NewZOrder that panics on error.
func MustZOrder(order uint) *ZOrder {
	z, err := NewZOrder(order)
	if err != nil {
		panic(err)
	}
	return z
}

// Order implements Curve.
func (z *ZOrder) Order() uint { return z.order }

// Size implements Curve.
func (z *ZOrder) Size() uint32 { return uint32(1) << z.order }

// Name implements Curve.
func (z *ZOrder) Name() string { return "zorder" }

// spread2 spaces the low 32 bits of v apart with zero bits in between.
func spread2(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// squash2 inverts spread2.
func squash2(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return uint32(x)
}

// Encode implements Curve.
func (z *ZOrder) Encode(x, y uint32) uint64 {
	size := z.Size()
	if x >= size || y >= size {
		panic(fmt.Sprintf("sfc: z-order cell (%d,%d) outside %dx%d grid", x, y, size, size))
	}
	return spread2(x) | spread2(y)<<1
}

// Decode implements Curve.
func (z *ZOrder) Decode(d uint64) (uint32, uint32) {
	size := z.Size()
	if d >= uint64(size)*uint64(size) {
		panic(fmt.Sprintf("sfc: z-order value %d outside %dx%d grid", d, size, size))
	}
	return squash2(d), squash2(d >> 1)
}

// DecomposeWindow implements Curve via quadtree recursion. Z-order needs no
// frame rotation: quadrants are visited in (y,x) bit order.
func (z *ZOrder) DecomposeWindow(x0, y0, x1, y1 uint32) []Interval {
	return z.AppendWindow(nil, x0, y0, x1, y1)
}

// AppendWindow implements Curve.
func (z *ZOrder) AppendWindow(dst []Interval, x0, y0, x1, y1 uint32) []Interval {
	size := z.Size()
	if !normalizeWindow(size, &x0, &y0, &x1, &y1) {
		return dst
	}
	mark := len(dst)
	z.decompose(x0, y0, x1, y1, size, 0, &dst)
	return compactAppended(dst, mark)
}

func (z *ZOrder) decompose(x0, y0, x1, y1, size uint32, base uint64, out *[]Interval) {
	if x0 == 0 && y0 == 0 && x1 == size-1 && y1 == size-1 {
		*out = append(*out, Interval{base, base + uint64(size)*uint64(size)})
		return
	}
	if size == 1 {
		*out = append(*out, Interval{base, base + 1})
		return
	}
	s := size / 2
	area := uint64(s) * uint64(s)
	// Z-curve quadrant rank: q = ry<<1 | rx.
	for q := uint64(0); q < 4; q++ {
		rx := uint32(q & 1)
		ry := uint32(q >> 1)
		qx0, qy0 := rx*s, ry*s
		qx1, qy1 := qx0+s-1, qy0+s-1
		ix0, iy0 := maxU32(x0, qx0), maxU32(y0, qy0)
		ix1, iy1 := minU32(x1, qx1), minU32(y1, qy1)
		if ix0 > ix1 || iy0 > iy1 {
			continue
		}
		z.decompose(ix0-qx0, iy0-qy0, ix1-qx0, iy1-qy0, s, base+q*area, out)
	}
}
