package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func curves(order uint) []Curve {
	return []Curve{MustHilbert(order), MustZOrder(order)}
}

func TestBijectionSmallGrids(t *testing.T) {
	for order := uint(1); order <= 6; order++ {
		for _, c := range curves(order) {
			size := c.Size()
			seen := make(map[uint64]bool, int(size)*int(size))
			for x := uint32(0); x < size; x++ {
				for y := uint32(0); y < size; y++ {
					d := c.Encode(x, y)
					if d >= uint64(size)*uint64(size) {
						t.Fatalf("%s order %d: value %d out of range", c.Name(), order, d)
					}
					if seen[d] {
						t.Fatalf("%s order %d: duplicate value %d", c.Name(), order, d)
					}
					seen[d] = true
					gx, gy := c.Decode(d)
					if gx != x || gy != y {
						t.Fatalf("%s order %d: decode(%d) = (%d,%d), want (%d,%d)",
							c.Name(), order, d, gx, gy, x, y)
					}
				}
			}
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive Hilbert values must be 4-adjacent cells — the defining
	// locality property (Z-order does not have it).
	for order := uint(1); order <= 7; order++ {
		h := MustHilbert(order)
		n := uint64(h.Size()) * uint64(h.Size())
		px, py := h.Decode(0)
		for d := uint64(1); d < n; d++ {
			x, y := h.Decode(d)
			dx := int64(x) - int64(px)
			dy := int64(y) - int64(py)
			if dx*dx+dy*dy != 1 {
				t.Fatalf("order %d: step %d->%d jumps (%d,%d)->(%d,%d)",
					order, d-1, d, px, py, x, y)
			}
			px, py = x, y
		}
	}
}

func TestBijectionPropertyLargeOrder(t *testing.T) {
	for _, c := range curves(16) {
		c := c
		f := func(x, y uint32) bool {
			x %= c.Size()
			y %= c.Size()
			gx, gy := c.Decode(c.Encode(x, y))
			return gx == x && gy == y
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestEncodePanicsOutOfRange(t *testing.T) {
	for _, c := range curves(4) {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic for out-of-range encode", c.Name())
				}
			}()
			c.Encode(c.Size(), 0)
		}()
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := NewHilbert(0); err == nil {
		t.Fatal("order 0 should fail")
	}
	if _, err := NewHilbert(MaxOrder + 1); err == nil {
		t.Fatal("order > MaxOrder should fail")
	}
	if _, err := NewZOrder(0); err == nil {
		t.Fatal("z-order 0 should fail")
	}
}

// windowOracle computes the exact value set of a window by brute force.
func windowOracle(c Curve, x0, y0, x1, y1 uint32) map[uint64]bool {
	out := make(map[uint64]bool)
	size := c.Size()
	for x := x0; x <= x1 && x < size; x++ {
		for y := y0; y <= y1 && y < size; y++ {
			out[c.Encode(x, y)] = true
		}
	}
	return out
}

func TestDecomposeWindowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, order := range []uint{3, 5, 7} {
		for _, c := range curves(order) {
			size := c.Size()
			for trial := 0; trial < 200; trial++ {
				x0 := uint32(rng.Intn(int(size)))
				y0 := uint32(rng.Intn(int(size)))
				x1 := x0 + uint32(rng.Intn(int(size-x0)))
				y1 := y0 + uint32(rng.Intn(int(size-y0)))
				ivs := c.DecomposeWindow(x0, y0, x1, y1)
				want := windowOracle(c, x0, y0, x1, y1)
				var total uint64
				prevHi := uint64(0)
				for i, iv := range ivs {
					if iv.Hi <= iv.Lo {
						t.Fatalf("%s: empty interval %v", c.Name(), iv)
					}
					if i > 0 && iv.Lo <= prevHi {
						t.Fatalf("%s: intervals not disjoint/sorted", c.Name())
					}
					prevHi = iv.Hi
					total += iv.Len()
					for d := iv.Lo; d < iv.Hi; d++ {
						if !want[d] {
							t.Fatalf("%s: window [%d,%d]x[%d,%d] decomposition includes stray %d",
								c.Name(), x0, x1, y0, y1, d)
						}
					}
				}
				if total != uint64(len(want)) {
					t.Fatalf("%s: decomposition covers %d values, want %d", c.Name(), total, len(want))
				}
			}
		}
	}
}

func TestDecomposeWindowFullGrid(t *testing.T) {
	for _, c := range curves(6) {
		size := c.Size()
		ivs := c.DecomposeWindow(0, 0, size-1, size-1)
		if len(ivs) != 1 || ivs[0].Lo != 0 || ivs[0].Hi != uint64(size)*uint64(size) {
			t.Fatalf("%s: full grid should be one interval, got %v", c.Name(), ivs)
		}
	}
}

func TestDecomposeWindowClipsAndRejects(t *testing.T) {
	c := MustHilbert(4)
	if ivs := c.DecomposeWindow(20, 20, 30, 30); ivs != nil {
		t.Fatalf("fully outside window should be nil, got %v", ivs)
	}
	if ivs := c.DecomposeWindow(3, 3, 2, 2); ivs != nil {
		t.Fatalf("inverted window should be nil, got %v", ivs)
	}
	// Clipped window equals clamped oracle.
	ivs := c.DecomposeWindow(10, 10, 99, 99)
	want := windowOracle(c, 10, 10, 15, 15)
	var total uint64
	for _, iv := range ivs {
		total += iv.Len()
		for d := iv.Lo; d < iv.Hi; d++ {
			if !want[d] {
				t.Fatalf("stray value %d", d)
			}
		}
	}
	if total != uint64(len(want)) {
		t.Fatalf("covered %d, want %d", total, len(want))
	}
}

func TestMergeIntervals(t *testing.T) {
	ivs := []Interval{{0, 2}, {5, 6}, {7, 9}, {100, 110}}
	// Merging to 2 should bridge the two smallest gaps (5..7 area first,
	// then 2..5), keeping the 9..100 chasm.
	got := MergeIntervals(append([]Interval(nil), ivs...), 2)
	if len(got) != 2 {
		t.Fatalf("got %d intervals: %v", len(got), got)
	}
	if got[0] != (Interval{0, 9}) || got[1] != (Interval{100, 110}) {
		t.Fatalf("unexpected merge: %v", got)
	}
	// max <= 0 and max >= len are no-ops.
	if out := MergeIntervals(ivs, 0); len(out) != len(ivs) {
		t.Fatal("max=0 should be a no-op")
	}
	if out := MergeIntervals(ivs, 10); len(out) != len(ivs) {
		t.Fatal("large max should be a no-op")
	}
}

func TestMergeIntervalsCoversInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		var ivs []Interval
		cursor := uint64(0)
		for i := 0; i < 20; i++ {
			cursor += uint64(rng.Intn(50)) + 1
			lo := cursor
			cursor += uint64(rng.Intn(30)) + 1
			ivs = append(ivs, Interval{lo, cursor})
		}
		max := 1 + rng.Intn(20)
		merged := MergeIntervals(append([]Interval(nil), ivs...), max)
		if len(merged) > max {
			t.Fatalf("merged to %d > max %d", len(merged), max)
		}
		// Every original value must remain covered.
		for _, iv := range ivs {
			for d := iv.Lo; d < iv.Hi; d++ {
				covered := false
				for _, m := range merged {
					if d >= m.Lo && d < m.Hi {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("value %d lost in merge", d)
				}
			}
		}
	}
}

func TestMergeIntervalsTieBreaksTowardEarlierGaps(t *testing.T) {
	// Three equal 10-wide gaps; budget 3 forces bridging exactly one.
	// Deterministic gap-aware merging must pick the earliest.
	ivs := []Interval{{0, 5}, {15, 20}, {30, 35}, {45, 50}}
	got := MergeIntervals(append([]Interval(nil), ivs...), 3)
	want := []Interval{{0, 20}, {30, 35}, {45, 50}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMergeIntervalsPrefersSmallestGaps(t *testing.T) {
	// Gaps: 1, 100, 2, 50. Budget 3 bridges the two smallest (1 and 2).
	ivs := []Interval{{0, 10}, {11, 20}, {120, 130}, {132, 140}, {190, 200}}
	got := MergeIntervals(append([]Interval(nil), ivs...), 3)
	want := []Interval{{0, 20}, {120, 140}, {190, 200}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAppendWindowMatchesDecomposeAndKeepsPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, c := range []Curve{MustHilbert(5), MustZOrder(5)} {
		size := c.Size()
		prefix := []Interval{{999, 1000}}
		buf := append([]Interval(nil), prefix...)
		for trial := 0; trial < 200; trial++ {
			x0 := rng.Uint32() % size
			x1 := x0 + rng.Uint32()%(size-x0)
			y0 := rng.Uint32() % size
			y1 := y0 + rng.Uint32()%(size-y0)
			want := c.DecomposeWindow(x0, y0, x1, y1)
			buf = c.AppendWindow(buf[:len(prefix)], x0, y0, x1, y1)
			if buf[0] != prefix[0] {
				t.Fatalf("%s: AppendWindow clobbered the prefix: %v", c.Name(), buf[0])
			}
			got := buf[len(prefix):]
			if len(got) != len(want) {
				t.Fatalf("%s window (%d,%d)-(%d,%d): append %v != decompose %v",
					c.Name(), x0, y0, x1, y1, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s window (%d,%d)-(%d,%d): append %v != decompose %v",
						c.Name(), x0, y0, x1, y1, got, want)
				}
			}
		}
	}
}

func TestHilbertLocalityBeatsZOrder(t *testing.T) {
	// Sanity for the paper's choice: average number of intervals per window
	// should be no worse for Hilbert than Z-order on random windows.
	rng := rand.New(rand.NewSource(77))
	h, z := MustHilbert(8), MustZOrder(8)
	var hTotal, zTotal int
	for trial := 0; trial < 300; trial++ {
		x0 := uint32(rng.Intn(200))
		y0 := uint32(rng.Intn(200))
		w := uint32(rng.Intn(40) + 1)
		hTotal += len(h.DecomposeWindow(x0, y0, x0+w, y0+w))
		zTotal += len(z.DecomposeWindow(x0, y0, x0+w, y0+w))
	}
	if hTotal > zTotal*12/10 {
		t.Fatalf("hilbert fragmentation %d should not be much worse than z-order %d", hTotal, zTotal)
	}
}
