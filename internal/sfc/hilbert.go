package sfc

import "fmt"

// Hilbert is the Hilbert curve over a 2^order x 2^order grid. It is the
// Bx-tree's default curve (the paper's configuration uses the Hilbert
// curve, Section 6).
//
// The implementation descends quadrants: at each level the point is
// translated into its quadrant and the quadrant's local frame is
// un-rotated, so the same rotation transform serves Encode, Decode and the
// window decomposition, keeping all three mutually consistent by
// construction.
type Hilbert struct {
	order uint
}

// NewHilbert returns the Hilbert curve with the given bits per axis
// (1 <= order <= MaxOrder).
func NewHilbert(order uint) (*Hilbert, error) {
	if order < 1 || order > MaxOrder {
		return nil, fmt.Errorf("sfc: hilbert order %d out of range [1,%d]", order, MaxOrder)
	}
	return &Hilbert{order: order}, nil
}

// MustHilbert is NewHilbert that panics on error; for tests and internal
// construction with constant orders.
func MustHilbert(order uint) *Hilbert {
	h, err := NewHilbert(order)
	if err != nil {
		panic(err)
	}
	return h
}

// Order implements Curve.
func (h *Hilbert) Order() uint { return h.order }

// Size implements Curve.
func (h *Hilbert) Size() uint32 { return uint32(1) << h.order }

// Name implements Curve.
func (h *Hilbert) Name() string { return "hilbert" }

// rot applies the level-s quadrant frame transform for quadrant (rx, ry).
// It is an involution (flip-both-axes commutes with swap), so it serves as
// its own inverse in Decode.
func rot(s uint32, x, y *uint32, rx, ry uint32) {
	if ry == 0 {
		if rx == 1 {
			*x = s - 1 - *x
			*y = s - 1 - *y
		}
		*x, *y = *y, *x
	}
}

// quadRank maps quadrant bits (rx, ry) to the curve visit order 0..3.
func quadRank(rx, ry uint32) uint64 { return uint64((3 * rx) ^ ry) }

// rankQuad inverts quadRank.
func rankQuad(q uint64) (rx, ry uint32) {
	rx = uint32(1 & (q >> 1))
	ry = uint32(1 & (q ^ uint64(rx)))
	return rx, ry
}

// Encode implements Curve.
func (h *Hilbert) Encode(x, y uint32) uint64 {
	size := h.Size()
	if x >= size || y >= size {
		panic(fmt.Sprintf("sfc: hilbert cell (%d,%d) outside %dx%d grid", x, y, size, size))
	}
	var d uint64
	for s := size / 2; s > 0; s /= 2 {
		var rx, ry uint32
		if x >= s {
			rx = 1
			x -= s
		}
		if y >= s {
			ry = 1
			y -= s
		}
		d += quadRank(rx, ry) * uint64(s) * uint64(s)
		rot(s, &x, &y, rx, ry)
	}
	return d
}

// Decode implements Curve.
func (h *Hilbert) Decode(d uint64) (uint32, uint32) {
	size := h.Size()
	if d >= uint64(size)*uint64(size) {
		panic(fmt.Sprintf("sfc: hilbert value %d outside %dx%d grid", d, size, size))
	}
	var x, y uint32
	t := d
	for s := uint32(1); s < size; s *= 2 {
		rx, ry := rankQuad(t & 3)
		rot(s, &x, &y, rx, ry)
		x += s * rx
		y += s * ry
		t >>= 2
	}
	return x, y
}

// DecomposeWindow implements Curve. It walks the implicit quadtree of the
// curve: a quadrant fully inside the window contributes its whole
// (contiguous) curve range; a partially covered quadrant is recursed into
// with the window translated and un-rotated into the child frame.
func (h *Hilbert) DecomposeWindow(x0, y0, x1, y1 uint32) []Interval {
	return h.AppendWindow(nil, x0, y0, x1, y1)
}

// AppendWindow implements Curve.
func (h *Hilbert) AppendWindow(dst []Interval, x0, y0, x1, y1 uint32) []Interval {
	size := h.Size()
	if !normalizeWindow(size, &x0, &y0, &x1, &y1) {
		return dst
	}
	mark := len(dst)
	h.decompose(x0, y0, x1, y1, size, 0, &dst)
	return compactAppended(dst, mark)
}

// decompose handles one square of side `size` whose curve values span
// [base, base+size^2) in the current local frame; (x0..y1) is the window
// intersected with and expressed in that frame.
func (h *Hilbert) decompose(x0, y0, x1, y1, size uint32, base uint64, out *[]Interval) {
	if x0 == 0 && y0 == 0 && x1 == size-1 && y1 == size-1 {
		*out = append(*out, Interval{base, base + uint64(size)*uint64(size)})
		return
	}
	if size == 1 {
		*out = append(*out, Interval{base, base + 1})
		return
	}
	s := size / 2
	area := uint64(s) * uint64(s)
	for q := uint64(0); q < 4; q++ {
		rx, ry := rankQuad(q)
		// Quadrant extent in parent frame.
		qx0, qy0 := rx*s, ry*s
		qx1, qy1 := qx0+s-1, qy0+s-1
		// Intersect window with quadrant.
		ix0, iy0 := maxU32(x0, qx0), maxU32(y0, qy0)
		ix1, iy1 := minU32(x1, qx1), minU32(y1, qy1)
		if ix0 > ix1 || iy0 > iy1 {
			continue
		}
		// Translate into quadrant-local coordinates.
		ix0 -= qx0
		ix1 -= qx0
		iy0 -= qy0
		iy1 -= qy0
		// Un-rotate the window into the child frame. rot maps child-frame
		// points to parent-quadrant points and is an involution, so
		// applying it to the corners maps parent-local to child-frame.
		ax, ay := ix0, iy0
		bx, by := ix1, iy1
		rot(s, &ax, &ay, rx, ry)
		rot(s, &bx, &by, rx, ry)
		nx0, nx1 := minU32(ax, bx), maxU32(ax, bx)
		ny0, ny1 := minU32(ay, by), maxU32(ay, by)
		h.decompose(nx0, ny0, nx1, ny1, s, base+q*area, out)
	}
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
