// Package sfc implements the space-filling curves the Bx-tree uses to
// linearize 2-D grid cells into B+-tree keys (Section 3.2 of the VP paper:
// "a space-filling curve (Hilbert-curve or Z-curve) to map the location of
// each grid cell to a 1D space where 2D proximity is approximately
// preserved").
//
// Both curves expose the same interface: a bijection between (x, y) cells of
// a 2^order x 2^order grid and [0, 4^order), plus an exact decomposition of
// an axis-aligned cell window into maximal runs of consecutive curve values.
// The decomposition drives Bx-tree range scans; a post-pass can merge
// nearby runs to trade a few extra scanned keys for fewer B+-tree probes.
package sfc

import (
	"fmt"
	"slices"
	"sort"
)

// MaxOrder bounds the grid resolution so that curve values fit comfortably
// in a uint64 alongside the Bx-tree's bucket prefix.
const MaxOrder = 24

// Curve is a 2-D space-filling curve over a 2^Order x 2^Order grid.
type Curve interface {
	// Order returns the number of bits per axis.
	Order() uint
	// Size returns the grid side length, 2^Order.
	Size() uint32
	// Encode maps a cell to its curve value. Coordinates must be < Size.
	Encode(x, y uint32) uint64
	// Decode inverts Encode.
	Decode(d uint64) (x, y uint32)
	// DecomposeWindow returns the sorted, disjoint, maximal half-open
	// intervals [Lo, Hi) of curve values covering the inclusive cell
	// window [x0, x1] x [y0, y1] (clipped to the grid).
	DecomposeWindow(x0, y0, x1, y1 uint32) []Interval
	// AppendWindow is DecomposeWindow appending into dst (like append),
	// so a caller decomposing many windows — the Bx-tree does one per time
	// bucket per query — can reuse a single scratch buffer instead of
	// allocating a fresh interval list each time. The appended region is
	// itself sorted, disjoint and maximal; dst's existing contents are not
	// touched.
	AppendWindow(dst []Interval, x0, y0, x1, y1 uint32) []Interval
	// Name identifies the curve ("hilbert" or "zorder").
	Name() string
}

// Interval is a half-open range [Lo, Hi) of curve values.
type Interval struct {
	Lo, Hi uint64
}

// Len returns the number of values in the interval.
func (iv Interval) Len() uint64 { return iv.Hi - iv.Lo }

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// MergeIntervals coalesces a sorted, disjoint interval list down to at most
// max entries by bridging the smallest inter-interval gaps first, so a
// fixed scan budget wastes the fewest bridged (non-matching) keys — the
// gap-aware counterpart of simply merging adjacent intervals left to right.
// Ties between equal gaps are broken toward the earlier gap, making the
// output deterministic. The result covers a superset of the input (callers
// filter exactly afterwards) and reuses ivs' backing array; the input is
// consumed. max <= 0 or max >= len(ivs) returns ivs unchanged.
func MergeIntervals(ivs []Interval, max int) []Interval {
	if max <= 0 || len(ivs) <= max {
		return ivs
	}
	gaps := make([]uint64, len(ivs)-1)
	for i := range gaps {
		gaps[i] = ivs[i+1].Lo - ivs[i].Hi
	}
	ordered := make([]uint64, len(gaps))
	copy(ordered, gaps)
	slices.Sort(ordered)
	// Bridge every gap strictly below the selection threshold, plus the
	// earliest gaps equal to it until exactly len(ivs)-max are bridged.
	nBridge := len(ivs) - max
	threshold := ordered[nBridge-1]
	atThreshold := 0
	for _, g := range ordered[:nBridge] {
		if g == threshold {
			atThreshold++
		}
	}
	out := ivs[:1]
	for i := 0; i+1 < len(ivs); i++ {
		bridge := gaps[i] < threshold
		if gaps[i] == threshold && atThreshold > 0 {
			bridge = true
			atThreshold--
		}
		if bridge {
			out[len(out)-1].Hi = ivs[i+1].Hi
		} else {
			out = append(out, ivs[i+1])
		}
	}
	return out
}

// normalizeWindow clips the inclusive window to the grid and reports
// whether anything remains.
func normalizeWindow(size uint32, x0, y0, x1, y1 *uint32) bool {
	if *x0 > *x1 || *y0 > *y1 {
		return false
	}
	if *x0 >= size || *y0 >= size {
		return false
	}
	if *x1 >= size {
		*x1 = size - 1
	}
	if *y1 >= size {
		*y1 = size - 1
	}
	return true
}

// compactAppended sorts and merges the touching/overlapping intervals in
// ivs[mark:], leaving ivs[:mark] untouched — the post-pass of AppendWindow,
// which must only normalize the region it appended.
func compactAppended(ivs []Interval, mark int) []Interval {
	tail := ivs[mark:]
	if len(tail) <= 1 {
		return ivs
	}
	sort.Slice(tail, func(a, b int) bool { return tail[a].Lo < tail[b].Lo })
	n := 1
	for _, iv := range tail[1:] {
		last := &tail[n-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			tail[n] = iv
			n++
		}
	}
	return ivs[:mark+n]
}
