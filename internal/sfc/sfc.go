// Package sfc implements the space-filling curves the Bx-tree uses to
// linearize 2-D grid cells into B+-tree keys (Section 3.2 of the VP paper:
// "a space-filling curve (Hilbert-curve or Z-curve) to map the location of
// each grid cell to a 1D space where 2D proximity is approximately
// preserved").
//
// Both curves expose the same interface: a bijection between (x, y) cells of
// a 2^order x 2^order grid and [0, 4^order), plus an exact decomposition of
// an axis-aligned cell window into maximal runs of consecutive curve values.
// The decomposition drives Bx-tree range scans; a post-pass can merge
// nearby runs to trade a few extra scanned keys for fewer B+-tree probes.
package sfc

import (
	"fmt"
	"sort"
)

// MaxOrder bounds the grid resolution so that curve values fit comfortably
// in a uint64 alongside the Bx-tree's bucket prefix.
const MaxOrder = 24

// Curve is a 2-D space-filling curve over a 2^Order x 2^Order grid.
type Curve interface {
	// Order returns the number of bits per axis.
	Order() uint
	// Size returns the grid side length, 2^Order.
	Size() uint32
	// Encode maps a cell to its curve value. Coordinates must be < Size.
	Encode(x, y uint32) uint64
	// Decode inverts Encode.
	Decode(d uint64) (x, y uint32)
	// DecomposeWindow returns the sorted, disjoint, maximal half-open
	// intervals [Lo, Hi) of curve values covering the inclusive cell
	// window [x0, x1] x [y0, y1] (clipped to the grid).
	DecomposeWindow(x0, y0, x1, y1 uint32) []Interval
	// Name identifies the curve ("hilbert" or "zorder").
	Name() string
}

// Interval is a half-open range [Lo, Hi) of curve values.
type Interval struct {
	Lo, Hi uint64
}

// Len returns the number of values in the interval.
func (iv Interval) Len() uint64 { return iv.Hi - iv.Lo }

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// MergeIntervals coalesces a sorted interval list down to at most max
// entries by repeatedly bridging the smallest gaps between consecutive
// intervals. The result covers a superset of the input (callers filter
// exactly afterwards). max <= 0 or max >= len(ivs) returns ivs unchanged.
func MergeIntervals(ivs []Interval, max int) []Interval {
	if max <= 0 || len(ivs) <= max {
		return ivs
	}
	type gap struct {
		idx  int
		size uint64
	}
	gaps := make([]gap, 0, len(ivs)-1)
	for i := 0; i+1 < len(ivs); i++ {
		gaps = append(gaps, gap{idx: i, size: ivs[i+1].Lo - ivs[i].Hi})
	}
	sort.Slice(gaps, func(a, b int) bool { return gaps[a].size < gaps[b].size })
	// Bridge the len(ivs)-max smallest gaps.
	bridge := make(map[int]bool, len(ivs)-max)
	for i := 0; i < len(ivs)-max; i++ {
		bridge[gaps[i].idx] = true
	}
	out := make([]Interval, 0, max)
	cur := ivs[0]
	for i := 0; i+1 < len(ivs); i++ {
		if bridge[i] {
			cur.Hi = ivs[i+1].Hi
		} else {
			out = append(out, cur)
			cur = ivs[i+1]
		}
	}
	out = append(out, cur)
	return out
}

// normalizeWindow clips the inclusive window to the grid and reports
// whether anything remains.
func normalizeWindow(size uint32, x0, y0, x1, y1 *uint32) bool {
	if *x0 > *x1 || *y0 > *y1 {
		return false
	}
	if *x0 >= size || *y0 >= size {
		return false
	}
	if *x1 >= size {
		*x1 = size - 1
	}
	if *y1 >= size {
		*y1 = size - 1
	}
	return true
}

// compactIntervals sorts and merges touching/overlapping intervals.
func compactIntervals(ivs []Interval) []Interval {
	if len(ivs) <= 1 {
		return ivs
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].Lo < ivs[b].Lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}
