package tprtree

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
)

// Config tunes the tree. The zero value is usable; NewTree fills defaults.
type Config struct {
	// Horizon is the time window (ts) over which insertion/split costs
	// integrate sweeping-region volumes. The TPR* convention ties it to the
	// maximum update interval (Table 1: 120 ts).
	Horizon float64
	// QueryExtent is the query side length (m) the tree is optimized for;
	// the paper states "optimized for query size of 1000x1000 m^2". Cost
	// integrals inflate node extents by half this value per side.
	QueryExtent float64
	// ReinsertFraction is the share of entries force-reinserted on first
	// overflow (R*/TPR* convention: 0.3).
	ReinsertFraction float64
	// PositionOnlySplits disables the velocity sort keys during node
	// splits, reducing the split search to the classic R*-tree's four
	// position boundaries. The TPR*-tree's velocity-aware splits are one
	// of the properties the VP paper leans on ("the insertion algorithm of
	// the TPR*-tree attempts to group objects travelling in the same
	// direction", §6.3); this switch exists for the ablation bench that
	// quantifies it.
	PositionOnlySplits bool
}

func (c Config) withDefaults() Config {
	if c.Horizon <= 0 {
		c.Horizon = 120
	}
	if c.QueryExtent < 0 {
		c.QueryExtent = 0
	} else if c.QueryExtent == 0 {
		c.QueryExtent = 1000
	}
	if c.ReinsertFraction <= 0 || c.ReinsertFraction >= 1 {
		c.ReinsertFraction = 0.3
	}
	return c
}

// Tree is a TPR*-tree. Mutations are not safe for concurrent use; the VP
// index manager and the benchmark harness serialize them. Read-only queries
// (Search, SearchKNN, LeafBounds) may run concurrently with each other —
// they touch no mutable tree state outside the lock-protected buffer pool —
// which the VP manager's parallel partition fan-out relies on.
type Tree struct {
	pool *storage.BufferPool
	cfg  Config

	root   storage.PageID
	height int // 1 = root is a leaf
	size   int

	// clock is the largest reference timestamp the tree has seen. All
	// tightening and cost integrals anchor here: a time-parameterized
	// bound is only valid from its reference time *forward* (backward
	// extrapolation is not conservative), so using a stale operation
	// time — e.g. an old record's reference during a delete — would
	// corrupt parent bounds.
	clock float64

	// reinsertedAt flags levels that already did a forced reinsert during
	// the current top-level operation (R* rule: once per level per insert).
	reinsertedAt map[int]bool

	// pendingObjs/pendingEntries queue evictions from forced reinserts.
	// They are drained only after the triggering descent has fully unwound,
	// so no stack frame ever holds a stale node image while the tree is
	// being restructured underneath it.
	pendingObjs    []model.Object
	pendingEntries []levelEntry

	name string
}

// levelEntry is a subtree entry together with the level of the node it must
// be reinserted into.
type levelEntry struct {
	e     entry
	level int
}

var _ model.Index = (*Tree)(nil)

// NewTree creates an empty TPR*-tree drawing pages from pool.
func NewTree(pool *storage.BufferPool, cfg Config) (*Tree, error) {
	t := &Tree{pool: pool, cfg: cfg.withDefaults(), height: 1, name: "tpr*"}
	id, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	t.root = id
	if err := t.writeNode(&node{id: id, level: 0}); err != nil {
		return nil, err
	}
	return t, nil
}

// SetName overrides the reported index name (the VP manager labels its
// partitions).
func (t *Tree) SetName(s string) { t.name = s }

// Name implements model.Index.
func (t *Tree) Name() string { return t.name }

// Len implements model.Index.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 = single leaf node).
func (t *Tree) Height() int { return t.height }

// IO implements model.Index: cumulative buffer-pool counters.
func (t *Tree) IO() model.IOStats {
	s := t.pool.Stats()
	return model.IOStats{Reads: s.Misses, Writes: s.Writes, Hits: s.Hits}
}

// --- cost model --------------------------------------------------------------

// sweepCost integrates the (query-inflated) area of mr over [t, t+Horizon]:
// the metric of Eq. 1 with the query extent folded in, used for
// ChooseSubtree and splits.
func (t *Tree) sweepCost(mr geom.MovingRect, now float64) float64 {
	h := t.cfg.QueryExtent / 2
	inflated := geom.MovingRect{
		MBR: mr.MBR.ExpandXY(h, h),
		VBR: mr.VBR,
		Ref: mr.Ref,
	}
	return inflated.SweepVolume(now, now+t.cfg.Horizon)
}

// enlargeCost is the increase in sweepCost caused by extending mr to also
// cover o.
func (t *Tree) enlargeCost(mr, o geom.MovingRect, now float64) float64 {
	return t.sweepCost(mr.Union(o, now), now) - t.sweepCost(mr.Rebase(now), now)
}

// --- insert ------------------------------------------------------------------

// Insert implements model.Index. The object's reference time is taken as
// the current time: all cost integrals start there.
func (t *Tree) Insert(o model.Object) error {
	if !o.Pos.IsFinite() || !o.Vel.IsFinite() {
		return fmt.Errorf("tprtree: non-finite object %v", o)
	}
	t.reinsertedAt = make(map[int]bool)
	if o.T > t.clock {
		t.clock = o.T
	}
	now := t.clock
	if err := t.insertObj(o, now); err != nil {
		return err
	}
	if err := t.drainPending(now); err != nil {
		return err
	}
	t.size++
	return nil
}

// drainPending reinserts everything queued by forced reinsertion. Each
// reinsert is a fresh top-level descent; it may queue further evictions at
// levels that have not reinserted yet this operation, so loop until empty.
func (t *Tree) drainPending(now float64) error {
	for len(t.pendingObjs) > 0 || len(t.pendingEntries) > 0 {
		if len(t.pendingEntries) > 0 {
			le := t.pendingEntries[len(t.pendingEntries)-1]
			t.pendingEntries = t.pendingEntries[:len(t.pendingEntries)-1]
			if err := t.insertEntry(le.e, le.level, now); err != nil {
				return err
			}
			continue
		}
		o := t.pendingObjs[len(t.pendingObjs)-1]
		t.pendingObjs = t.pendingObjs[:len(t.pendingObjs)-1]
		if err := t.insertObj(o, now); err != nil {
			return err
		}
	}
	return nil
}

// insertObj routes one object record to a leaf (no size bookkeeping; used
// by both Insert and forced reinsertion).
func (t *Tree) insertObj(o model.Object, now float64) error {
	split, _, err := t.insertRec(t.root, t.height-1, o, nil, -1, now)
	if err != nil {
		return err
	}
	if split != nil {
		return t.growRoot(*split, now)
	}
	return nil
}

// insertEntry routes a subtree entry to the given level (> 0); used when
// condensing after deletes and during internal-node reinsertion.
func (t *Tree) insertEntry(e entry, level int, now float64) error {
	if t.height-1 == level {
		// Target level is the root itself: extend the root.
		root, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		root.entries = append(root.entries, e)
		if root.overflowing() {
			return t.handleOverflowRoot(root, now)
		}
		return t.writeNode(root)
	}
	split, _, err := t.insertEntryRec(t.root, t.height-1, e, level, now)
	if err != nil {
		return err
	}
	if split != nil {
		return t.growRoot(*split, now)
	}
	return nil
}

// growRoot installs a new root above the current one after a root split.
func (t *Tree) growRoot(split splitOut, now float64) error {
	oldRootBound := split.leftBound
	id, err := t.pool.Allocate()
	if err != nil {
		return err
	}
	newRoot := &node{
		id:    id,
		level: t.height,
		entries: []entry{
			{child: t.root, mr: oldRootBound},
			{child: split.right, mr: split.rightBound},
		},
	}
	if err := t.writeNode(newRoot); err != nil {
		return err
	}
	t.root = id
	t.height++
	return nil
}

// splitOut reports a node split to the parent.
type splitOut struct {
	leftBound  geom.MovingRect
	right      storage.PageID
	rightBound geom.MovingRect
}

// insertRec descends to level 0 inserting o. It returns a split record if
// the visited child split, and the new tight bound of the visited child
// (so the parent can tighten its entry without re-reading).
//
// parent/parentIdx identify the entry pointing at this node (nil for root);
// they are only used for error context.
func (t *Tree) insertRec(id storage.PageID, level int, o model.Object, parent *node, parentIdx int, now float64) (*splitOut, geom.MovingRect, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, geom.MovingRect{}, err
	}
	if n.level != level {
		return nil, geom.MovingRect{}, fmt.Errorf("tprtree: page %d level %d, expected %d", id, n.level, level)
	}
	if n.leaf() {
		n.objs = append(n.objs, o)
		if n.overflowing() {
			return t.handleOverflow(n, now)
		}
		if err := t.writeNode(n); err != nil {
			return nil, geom.MovingRect{}, err
		}
		return nil, n.boundAt(now), nil
	}
	ci := t.chooseSubtree(n, objRect(o), now)
	split, childBound, err := t.insertRec(n.entries[ci].child, level-1, o, n, ci, now)
	if err != nil {
		return nil, geom.MovingRect{}, err
	}
	n.entries[ci].mr = childBound // tighten
	if split != nil {
		n.entries[ci].mr = split.leftBound
		n.entries = append(n.entries, entry{child: split.right, mr: split.rightBound})
		if n.overflowing() {
			return t.handleOverflow(n, now)
		}
	}
	if err := t.writeNode(n); err != nil {
		return nil, geom.MovingRect{}, err
	}
	return nil, n.boundAt(now), nil
}

// insertEntryRec descends to targetLevel inserting subtree entry e.
func (t *Tree) insertEntryRec(id storage.PageID, level int, e entry, targetLevel int, now float64) (*splitOut, geom.MovingRect, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, geom.MovingRect{}, err
	}
	if level == targetLevel {
		n.entries = append(n.entries, e)
		if n.overflowing() {
			return t.handleOverflow(n, now)
		}
		if err := t.writeNode(n); err != nil {
			return nil, geom.MovingRect{}, err
		}
		return nil, n.boundAt(now), nil
	}
	ci := t.chooseSubtree(n, e.mr, now)
	split, childBound, err := t.insertEntryRec(n.entries[ci].child, level-1, e, targetLevel, now)
	if err != nil {
		return nil, geom.MovingRect{}, err
	}
	n.entries[ci].mr = childBound
	if split != nil {
		n.entries[ci].mr = split.leftBound
		n.entries = append(n.entries, entry{child: split.right, mr: split.rightBound})
		if n.overflowing() {
			return t.handleOverflow(n, now)
		}
	}
	if err := t.writeNode(n); err != nil {
		return nil, geom.MovingRect{}, err
	}
	return nil, n.boundAt(now), nil
}

// chooseSubtree picks the child entry whose integrated sweeping volume
// grows least when extended to cover mr (ties: smaller resulting volume,
// then smaller current area).
func (t *Tree) chooseSubtree(n *node, mr geom.MovingRect, now float64) int {
	best := 0
	bestEnl := math.Inf(1)
	bestVol := math.Inf(1)
	for i, e := range n.entries {
		enl := t.enlargeCost(e.mr, mr, now)
		vol := t.sweepCost(e.mr.Rebase(now), now)
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

// handleOverflow resolves an overflowing node: forced reinsert on the first
// overflow at this level during the current operation, otherwise split.
// The node n is already 1 entry over capacity.
func (t *Tree) handleOverflow(n *node, now float64) (*splitOut, geom.MovingRect, error) {
	if t.reinsertedAt == nil {
		t.reinsertedAt = make(map[int]bool)
	}
	atRoot := n.id == t.root
	if !atRoot && !t.reinsertedAt[n.level] {
		t.reinsertedAt[n.level] = true
		if err := t.forcedReinsert(n, now); err != nil {
			return nil, geom.MovingRect{}, err
		}
		return nil, n.boundAt(now), nil
	}
	return t.split(n, now)
}

// handleOverflowRoot splits the root when an entry landed directly in it.
func (t *Tree) handleOverflowRoot(root *node, now float64) error {
	split, _, err := t.split(root, now)
	if err != nil {
		return err
	}
	if split != nil {
		return t.growRoot(*split, now)
	}
	return nil
}

// forcedReinsert removes the ReinsertFraction of entries with the largest
// integrated center distance from the node's center trajectory (TPR* "pick
// worst") and queues them for reinsertion after the current descent
// unwinds. The node is written back immediately, so the tree is consistent
// (bounds are conservative: removing entries only loosens them).
func (t *Tree) forcedReinsert(n *node, now float64) error {
	bound := n.boundAt(now)
	c0 := bound.MBR.Center()
	cv := geom.Vec2{
		X: (bound.VBR.MinX + bound.VBR.MaxX) / 2,
		Y: (bound.VBR.MinY + bound.VBR.MaxY) / 2,
	}
	h := t.cfg.Horizon
	// Integrated squared center distance approximated by the trapezoid of
	// distances at now and now+h.
	dist := func(mr geom.MovingRect) float64 {
		m := mr.Rebase(now)
		p0 := m.MBR.Center()
		pv := geom.Vec2{
			X: (m.VBR.MinX + m.VBR.MaxX) / 2,
			Y: (m.VBR.MinY + m.VBR.MaxY) / 2,
		}
		d0 := p0.DistTo(c0)
		d1 := p0.Add(pv.Scale(h)).DistTo(c0.Add(cv.Scale(h)))
		return d0 + d1
	}

	if n.leaf() {
		k := int(float64(len(n.objs)) * t.cfg.ReinsertFraction)
		if k < 1 {
			k = 1
		}
		sortByDesc(len(n.objs), func(i int) float64 { return dist(objRect(n.objs[i])) }, func(i, j int) {
			n.objs[i], n.objs[j] = n.objs[j], n.objs[i]
		})
		t.pendingObjs = append(t.pendingObjs, n.objs[:k]...)
		n.objs = append([]model.Object(nil), n.objs[k:]...)
		return t.writeNode(n)
	}

	k := int(float64(len(n.entries)) * t.cfg.ReinsertFraction)
	if k < 1 {
		k = 1
	}
	sortByDesc(len(n.entries), func(i int) float64 { return dist(n.entries[i].mr) }, func(i, j int) {
		n.entries[i], n.entries[j] = n.entries[j], n.entries[i]
	})
	for _, e := range n.entries[:k] {
		t.pendingEntries = append(t.pendingEntries, levelEntry{e: e, level: n.level})
	}
	n.entries = append([]entry(nil), n.entries[k:]...)
	return t.writeNode(n)
}

// sortByDesc sorts indices [0,n) descending by key using swap (a tiny
// selection-friendly shell to avoid materializing a slice of structs).
func sortByDesc(n int, key func(int) float64, swap func(i, j int)) {
	// Simple insertion sort: n <= InternalCap+1 (~52) or LeafCap+1 (~86).
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = key(i)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && keys[j] > keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
			swap(j, j-1)
		}
	}
}

// --- delete ------------------------------------------------------------------

// Delete implements model.Index: removes the exact record o (located by its
// trajectory; the record must equal the one inserted). Underfull nodes are
// condensed by reinsertion.
func (t *Tree) Delete(o model.Object) error {
	t.reinsertedAt = make(map[int]bool)
	var orphanObjs []model.Object
	var orphanEntries []levelEntry
	// Anchor at the tree clock, never the (possibly stale) record time:
	// bounds must not be rewound (see the clock field).
	now := math.Max(t.clock, o.T)

	found, _, err := t.deleteRec(t.root, o, now, &orphanObjs, &orphanEntries)
	if err != nil {
		return err
	}
	if !found {
		return model.ErrNotFound
	}
	t.size--
	// Shrink the root: an internal root with one child is replaced by it.
	for t.height > 1 {
		root, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		if len(root.entries) != 1 {
			break
		}
		old := t.root
		t.root = root.entries[0].child
		t.height--
		if err := t.pool.Free(old); err != nil {
			return err
		}
	}
	// Reinsert orphans (entries first, at their recorded levels).
	for _, oe := range orphanEntries {
		if oe.level >= t.height {
			// The tree shrank below the orphan's level: splice its
			// children back individually.
			child, err := t.readNode(oe.e.child)
			if err != nil {
				return err
			}
			if child.leaf() {
				orphanObjs = append(orphanObjs, child.objs...)
			} else {
				for _, e := range child.entries {
					if err := t.insertEntry(e, child.level-1, now); err != nil {
						return err
					}
				}
			}
			if err := t.pool.Free(oe.e.child); err != nil {
				return err
			}
			continue
		}
		if err := t.insertEntry(oe.e, oe.level, now); err != nil {
			return err
		}
	}
	for _, obj := range orphanObjs {
		if err := t.insertObj(obj, now); err != nil {
			return err
		}
	}
	return t.drainPending(now)
}

// deleteRec removes o from the subtree at id. Returns (found, new bound).
// Underfull children are dissolved into the orphan lists.
func (t *Tree) deleteRec(id storage.PageID, o model.Object, now float64,
	orphanObjs *[]model.Object, orphanEntries *[]levelEntry) (bool, geom.MovingRect, error) {

	n, err := t.readNode(id)
	if err != nil {
		return false, geom.MovingRect{}, err
	}
	if n.leaf() {
		for i, cand := range n.objs {
			if cand.ID == o.ID {
				n.objs = append(n.objs[:i], n.objs[i+1:]...)
				if err := t.writeNode(n); err != nil {
					return false, geom.MovingRect{}, err
				}
				return true, n.boundAt(now), nil
			}
		}
		return false, geom.MovingRect{}, nil
	}
	for i := 0; i < len(n.entries); i++ {
		e := n.entries[i]
		if !entryMayContain(e.mr, o) {
			continue
		}
		found, childBound, err := t.deleteRec(e.child, o, now, orphanObjs, orphanEntries)
		if err != nil {
			return false, geom.MovingRect{}, err
		}
		if !found {
			continue
		}
		n.entries[i].mr = childBound
		// Condense: dissolve an underfull child into the orphan lists.
		child, err := t.readNode(e.child)
		if err != nil {
			return false, geom.MovingRect{}, err
		}
		if child.underfull() {
			if child.leaf() {
				*orphanObjs = append(*orphanObjs, child.objs...)
			} else {
				for _, ce := range child.entries {
					*orphanEntries = append(*orphanEntries, levelEntry{e: ce, level: child.level})
				}
			}
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			if err := t.pool.Free(child.id); err != nil {
				return false, geom.MovingRect{}, err
			}
		}
		if err := t.writeNode(n); err != nil {
			return false, geom.MovingRect{}, err
		}
		return true, n.boundAt(now), nil
	}
	return false, geom.MovingRect{}, nil
}

// entryMayContain is the descent test for deletes: the entry's rectangle
// must contain the object's position at the entry's reference time and its
// velocity bounds must cover the object's velocity. Both hold for every
// ancestor of the leaf the object lives in (bounds are conservative from
// their reference time both forward in space and across velocities).
func entryMayContain(mr geom.MovingRect, o model.Object) bool {
	const eps = 1e-7
	p := o.PosAt(mr.Ref)
	if !mr.MBR.Expand(eps).ContainsPoint(p) {
		return false
	}
	return o.Vel.X >= mr.VBR.MinX-eps && o.Vel.X <= mr.VBR.MaxX+eps &&
		o.Vel.Y >= mr.VBR.MinY-eps && o.Vel.Y <= mr.VBR.MaxY+eps
}

// Update implements model.Index as deletion followed by insertion (the
// moving-object update model of Section 2.1).
func (t *Tree) Update(old, new model.Object) error {
	if err := t.Delete(old); err != nil {
		return err
	}
	return t.Insert(new)
}
