package tprtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
)

// split divides an overflowing node into two, choosing among candidate
// distributions the one that minimizes the summed integrated sweeping
// volumes of the two groups (the TPR*-tree split objective), with the
// integrated overlap between the groups as tie-breaker.
//
// Candidate distributions follow the R*/TPR* recipe: entries are sorted by
// each MBR boundary and each VBR boundary (8 sort keys — position splits
// alone are blind to velocity skew, which is precisely what matters for
// moving objects), and every prefix/suffix cut respecting the minimum fill
// is evaluated.
func (t *Tree) split(n *node, now float64) (*splitOut, geom.MovingRect, error) {
	var rects []geom.MovingRect
	if n.leaf() {
		rects = make([]geom.MovingRect, len(n.objs))
		for i, o := range n.objs {
			rects[i] = objRect(o).Rebase(now)
		}
	} else {
		rects = make([]geom.MovingRect, len(n.entries))
		for i, e := range n.entries {
			rects[i] = e.mr.Rebase(now)
		}
	}
	minFill := leafMin
	if !n.leaf() {
		minFill = internalMin
	}
	perm, cut := t.chooseSplit(rects, minFill, now)

	// Materialize the two groups.
	rid, err := t.pool.Allocate()
	if err != nil {
		return nil, geom.MovingRect{}, err
	}
	right := &node{id: rid, level: n.level}
	if n.leaf() {
		objs := make([]model.Object, len(n.objs))
		for i, p := range perm {
			objs[i] = n.objs[p]
		}
		n.objs = append([]model.Object(nil), objs[:cut]...)
		right.objs = append([]model.Object(nil), objs[cut:]...)
	} else {
		ents := make([]entry, len(n.entries))
		for i, p := range perm {
			ents[i] = n.entries[p]
		}
		n.entries = append([]entry(nil), ents[:cut]...)
		right.entries = append([]entry(nil), ents[cut:]...)
	}
	if err := t.writeNode(n); err != nil {
		return nil, geom.MovingRect{}, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, geom.MovingRect{}, err
	}
	out := &splitOut{
		leftBound:  n.boundAt(now),
		right:      rid,
		rightBound: right.boundAt(now),
	}
	return out, out.leftBound, nil
}

// chooseSplit returns the permutation of rects and the cut index k (left
// group = perm[:k]) minimizing the split objective.
func (t *Tree) chooseSplit(rects []geom.MovingRect, minFill int, now float64) ([]int, int) {
	n := len(rects)
	if minFill < 1 {
		minFill = 1
	}
	maxFill := n - minFill
	if maxFill < minFill {
		// Degenerate capacity; split in the middle.
		perm := identityPerm(n)
		return perm, n / 2
	}

	type sortKey func(geom.MovingRect) float64
	keys := []sortKey{
		func(r geom.MovingRect) float64 { return r.MBR.MinX },
		func(r geom.MovingRect) float64 { return r.MBR.MaxX },
		func(r geom.MovingRect) float64 { return r.MBR.MinY },
		func(r geom.MovingRect) float64 { return r.MBR.MaxY },
	}
	if !t.cfg.PositionOnlySplits {
		keys = append(keys,
			func(r geom.MovingRect) float64 { return r.VBR.MinX },
			func(r geom.MovingRect) float64 { return r.VBR.MaxX },
			func(r geom.MovingRect) float64 { return r.VBR.MinY },
			func(r geom.MovingRect) float64 { return r.VBR.MaxY },
		)
	}

	bestCost := math.Inf(1)
	bestOverlap := math.Inf(1)
	var bestPerm []int
	bestCut := -1

	for _, key := range keys {
		perm := identityPerm(n)
		sort.SliceStable(perm, func(a, b int) bool {
			return key(rects[perm[a]]) < key(rects[perm[b]])
		})
		// Prefix/suffix bounding rects for O(n) cut evaluation.
		prefix := make([]geom.MovingRect, n)
		suffix := make([]geom.MovingRect, n)
		prefix[0] = rects[perm[0]]
		for i := 1; i < n; i++ {
			prefix[i] = prefix[i-1].Union(rects[perm[i]], now)
		}
		suffix[n-1] = rects[perm[n-1]]
		for i := n - 2; i >= 0; i-- {
			suffix[i] = suffix[i+1].Union(rects[perm[i]], now)
		}
		for k := minFill; k <= maxFill; k++ {
			g1, g2 := prefix[k-1], suffix[k]
			cost := t.sweepCost(g1, now) + t.sweepCost(g2, now)
			if cost > bestCost {
				continue
			}
			ov := overlapSweep(g1, g2, now, now+t.cfg.Horizon)
			if cost < bestCost || ov < bestOverlap {
				bestCost = cost
				bestOverlap = ov
				bestPerm = append(bestPerm[:0], perm...)
				bestCut = k
			}
		}
	}
	return bestPerm, bestCut
}

// overlapSweep integrates the overlap area of two moving rectangles over
// [t0, t1] by Simpson's rule (3 samples — the overlap of two linearly
// moving rectangles is piecewise quadratic, so this is a close, cheap
// approximation used only for tie-breaking).
func overlapSweep(a, b geom.MovingRect, t0, t1 float64) float64 {
	f := func(t float64) float64 {
		return a.AtTime(t).Intersect(b.AtTime(t)).Area()
	}
	h := t1 - t0
	return h / 6 * (f(t0) + 4*f(t0+h/2) + f(t1))
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// --- queries -----------------------------------------------------------------

// Search implements model.Index: all three query types of Section 2.1 via
// the time-parameterized intersection test, with exact refinement of leaf
// candidates through model.Matches (this also restricts circular queries
// from their MBR to the disk).
func (t *Tree) Search(q model.RangeQuery) ([]model.ObjectID, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	qmr := q.AsMovingRect()
	t0, t1 := q.T0, q.EndTime()
	var out []model.ObjectID
	stack := []storage.PageID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.readNode(id)
		if err != nil {
			return nil, err
		}
		if n.leaf() {
			for _, o := range n.objs {
				if model.Matches(o, q) {
					out = append(out, o.ID)
				}
			}
			continue
		}
		for _, e := range n.entries {
			if e.mr.IntersectsDuring(qmr, t0, t1) {
				stack = append(stack, e.child)
			}
		}
	}
	return out, nil
}

// --- diagnostics -------------------------------------------------------------

// LeafBound describes one leaf node's time-parameterized bound; the Fig. 7
// experiment plots the VBR expansion rates of these.
type LeafBound struct {
	MR    geom.MovingRect
	Count int
}

// LeafBounds returns the bound of every leaf node at the given time.
func (t *Tree) LeafBounds(now float64) ([]LeafBound, error) {
	var out []LeafBound
	stack := []storage.PageID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.readNode(id)
		if err != nil {
			return nil, err
		}
		if n.leaf() {
			if len(n.objs) > 0 {
				out = append(out, LeafBound{MR: n.boundAt(now), Count: len(n.objs)})
			}
			continue
		}
		for _, e := range n.entries {
			stack = append(stack, e.child)
		}
	}
	return out, nil
}

// NodeCount returns (internal, leaf) node totals.
func (t *Tree) NodeCount() (internal, leaves int, err error) {
	stack := []storage.PageID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, e := t.readNode(id)
		if e != nil {
			return 0, 0, e
		}
		if n.leaf() {
			leaves++
			continue
		}
		internal++
		for _, en := range n.entries {
			stack = append(stack, en.child)
		}
	}
	return internal, leaves, nil
}

// CheckInvariants verifies structural invariants for tests: entry bounds
// conservatively contain their subtrees (at the entry's reference time and
// in velocity), levels decrease properly, counts match, and fill factors
// hold for non-root nodes.
func (t *Tree) CheckInvariants() error {
	total, err := t.checkNode(t.root, t.height-1, nil)
	if err != nil {
		return err
	}
	if total != t.size {
		return errf("size mismatch: recorded %d, found %d", t.size, total)
	}
	return nil
}

func (t *Tree) checkNode(id storage.PageID, level int, bound *geom.MovingRect) (int, error) {
	n, err := t.readNode(id)
	if err != nil {
		return 0, err
	}
	if n.level != level {
		return 0, errf("page %d: level %d, expected %d", id, n.level, level)
	}
	if id != t.root && n.underfull() {
		return 0, errf("page %d: underfull (%d at level %d)", id, n.count(), n.level)
	}
	if n.leaf() {
		if bound != nil {
			for _, o := range n.objs {
				if !entryMayContain(*bound, o) {
					return 0, errf("page %d: object %d escapes parent bound %v", id, o.ID, *bound)
				}
			}
		}
		return len(n.objs), nil
	}
	total := 0
	for _, e := range n.entries {
		if bound != nil {
			// Parent bound must contain the child entry bound from the
			// parent's reference time onward; check at two times.
			r0 := math.Max(bound.Ref, e.mr.Ref)
			if !bound.Contains(e.mr, r0, r0+t.cfg.Horizon) {
				return 0, errf("page %d: child bound %v escapes parent %v", id, e.mr, *bound)
			}
		}
		sub, err := t.checkNode(e.child, level-1, &e.mr)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("tprtree: "+format, args...)
}
