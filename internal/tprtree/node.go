// Package tprtree implements the TPR-tree family of moving-object indexes
// (Saltenis et al., SIGMOD 2000) with the TPR*-tree improvements of Tao et
// al. (VLDB 2003) that the VP paper builds on (Section 3.1): nodes group
// time-parameterized rectangles (MBR + VBR), insertion descends by minimal
// increase of the *integrated sweeping-region volume* over a horizon, node
// rectangles are tightened to the current time whenever touched, overflow
// triggers a forced reinsert of the worst entries before splitting, and
// splits minimize the integrated volumes of the resulting groups.
//
// Nodes are stored on 4 KB pages behind a storage.BufferPool so that
// queries are charged the same I/O metric the paper reports. The "active
// tabu" path search of the original TPR* insertion is replaced by the
// greedy cost-model descent (documented in DESIGN.md); all cost formulas
// are the paper's.
package tprtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
)

// Page layout:
//
//	[0]   tag (tagNode)
//	[1]   level (0 = leaf)
//	[2:4] count
//	then count fixed-size entries:
//	  leaf entry:     id(8)  pos(16) vel(16) tref(8)            = 48 B
//	  internal entry: child(8) mbr(32) vbr(32) tref(8)          = 80 B
const (
	tagNode = byte(0xA7) // arbitrary page tag value

	nodeHeader        = 4
	leafEntrySize     = 48
	internalEntrySize = 80

	// LeafCap and InternalCap are the fanouts implied by the 4 KB page.
	LeafCap     = (storage.PageSize - nodeHeader) / leafEntrySize     // 85
	InternalCap = (storage.PageSize - nodeHeader) / internalEntrySize // 51
)

// Fill-factor bounds (R*-tree convention: 40 % minimum).
var (
	leafMin     = LeafCap * 2 / 5
	internalMin = InternalCap * 2 / 5
)

// entry is one slot of an internal node: a child page bounded by a
// time-parameterized rectangle.
type entry struct {
	child storage.PageID
	mr    geom.MovingRect
}

// node is the decoded form of a page.
type node struct {
	id      storage.PageID
	level   int // 0 = leaf
	objs    []model.Object
	entries []entry
}

func (n *node) leaf() bool { return n.level == 0 }

func (n *node) count() int {
	if n.leaf() {
		return len(n.objs)
	}
	return len(n.entries)
}

func (n *node) overflowing() bool {
	if n.leaf() {
		return len(n.objs) > LeafCap
	}
	return len(n.entries) > InternalCap
}

func (n *node) underfull() bool {
	if n.leaf() {
		return len(n.objs) < leafMin
	}
	return len(n.entries) < internalMin
}

// boundAt returns the tight time-parameterized bound of the node's contents
// referenced at time t (TPR* tightening).
func (n *node) boundAt(t float64) geom.MovingRect {
	if n.leaf() {
		if len(n.objs) == 0 {
			return geom.MovingRect{MBR: geom.EmptyRect(), Ref: t}
		}
		out := objRect(n.objs[0]).Rebase(t)
		for _, o := range n.objs[1:] {
			out = out.Union(objRect(o), t)
		}
		return out
	}
	if len(n.entries) == 0 {
		return geom.MovingRect{MBR: geom.EmptyRect(), Ref: t}
	}
	out := n.entries[0].mr.Rebase(t)
	for _, e := range n.entries[1:] {
		out = out.Union(e.mr, t)
	}
	return out
}

// objRect returns the degenerate moving rectangle of an object record.
func objRect(o model.Object) geom.MovingRect {
	return geom.MovingPointRect(o.Pos, o.Vel, o.T)
}

// --- serialization ---------------------------------------------------------

func putF64(b []byte, f float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(f)) }
func getF64(b []byte) float64    { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

func putRect(b []byte, r geom.Rect) {
	putF64(b[0:8], r.MinX)
	putF64(b[8:16], r.MinY)
	putF64(b[16:24], r.MaxX)
	putF64(b[24:32], r.MaxY)
}

func getRect(b []byte) geom.Rect {
	return geom.Rect{
		MinX: getF64(b[0:8]), MinY: getF64(b[8:16]),
		MaxX: getF64(b[16:24]), MaxY: getF64(b[24:32]),
	}
}

func (t *Tree) readNode(id storage.PageID) (*node, error) {
	n := &node{id: id}
	bad := false
	err := t.pool.Read(id, func(data []byte) {
		if data[0] != tagNode {
			bad = true
			return
		}
		n.level = int(data[1])
		count := int(binary.LittleEndian.Uint16(data[2:4]))
		off := nodeHeader
		if n.level == 0 {
			n.objs = make([]model.Object, count)
			for i := 0; i < count; i++ {
				n.objs[i] = model.Object{
					ID:  model.ObjectID(binary.LittleEndian.Uint64(data[off : off+8])),
					Pos: geom.Vec2{X: getF64(data[off+8 : off+16]), Y: getF64(data[off+16 : off+24])},
					Vel: geom.Vec2{X: getF64(data[off+24 : off+32]), Y: getF64(data[off+32 : off+40])},
					T:   getF64(data[off+40 : off+48]),
				}
				off += leafEntrySize
			}
		} else {
			n.entries = make([]entry, count)
			for i := 0; i < count; i++ {
				n.entries[i] = entry{
					child: storage.PageID(binary.LittleEndian.Uint64(data[off : off+8])),
					mr: geom.MovingRect{
						MBR: getRect(data[off+8 : off+40]),
						VBR: getRect(data[off+40 : off+72]),
						Ref: getF64(data[off+72 : off+80]),
					},
				}
				off += internalEntrySize
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if bad {
		return nil, fmt.Errorf("tprtree: page %d has unexpected tag", id)
	}
	return n, nil
}

func (t *Tree) writeNode(n *node) error {
	return t.pool.Write(n.id, func(data []byte) {
		data[0] = tagNode
		data[1] = byte(n.level)
		binary.LittleEndian.PutUint16(data[2:4], uint16(n.count()))
		off := nodeHeader
		if n.leaf() {
			for _, o := range n.objs {
				binary.LittleEndian.PutUint64(data[off:off+8], uint64(o.ID))
				putF64(data[off+8:off+16], o.Pos.X)
				putF64(data[off+16:off+24], o.Pos.Y)
				putF64(data[off+24:off+32], o.Vel.X)
				putF64(data[off+32:off+40], o.Vel.Y)
				putF64(data[off+40:off+48], o.T)
				off += leafEntrySize
			}
		} else {
			for _, e := range n.entries {
				binary.LittleEndian.PutUint64(data[off:off+8], uint64(e.child))
				putRect(data[off+8:off+40], e.mr.MBR)
				putRect(data[off+40:off+72], e.mr.VBR)
				putF64(data[off+72:off+80], e.mr.Ref)
				off += internalEntrySize
			}
		}
	})
}
