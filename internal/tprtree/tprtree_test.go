package tprtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
)

func newTestTree(t *testing.T, bufferPages int, cfg Config) *Tree {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(), bufferPages)
	tr, err := NewTree(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// randomWorkload produces n objects with skewed, road-like velocities at
// reference time tref.
func randomWorkload(n int, rng *rand.Rand, tref float64) []model.Object {
	objs := make([]model.Object, n)
	for i := range objs {
		var vel geom.Vec2
		speed := rng.Float64() * 100
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		if rng.Intn(2) == 0 {
			vel = geom.V(speed, rng.NormFloat64()*2)
		} else {
			vel = geom.V(rng.NormFloat64()*2, speed)
		}
		objs[i] = model.Object{
			ID:  model.ObjectID(i + 1),
			Pos: geom.V(rng.Float64()*100000, rng.Float64()*100000),
			Vel: vel,
			T:   tref,
		}
	}
	return objs
}

func sortIDs(ids []model.ObjectID) {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
}

func sameIDs(t *testing.T, got, want []model.ObjectID, context string) {
	t.Helper()
	sortIDs(got)
	sortIDs(want)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\n got:  %v\n want: %v",
			context, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d differs: %d vs %d", context, i, got[i], want[i])
		}
	}
}

func TestEmptyTreeQuery(t *testing.T) {
	tr := newTestTree(t, 50, Config{})
	ids, err := tr.Search(model.RangeQuery{
		Kind: model.TimeSlice,
		Rect: geom.R(0, 0, 1000, 1000),
		Now:  0, T0: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("empty tree returned %v", ids)
	}
}

func TestInsertSearchSingle(t *testing.T) {
	tr := newTestTree(t, 50, Config{})
	o := model.Object{ID: 1, Pos: geom.V(500, 500), Vel: geom.V(10, 0), T: 0}
	if err := tr.Insert(o); err != nil {
		t.Fatal(err)
	}
	// At t=50 the object is at (1000, 500).
	hit, err := tr.Search(model.RangeQuery{
		Kind: model.TimeSlice, Rect: geom.R(900, 400, 1100, 600), Now: 0, T0: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hit) != 1 || hit[0] != 1 {
		t.Fatalf("hit = %v", hit)
	}
	miss, err := tr.Search(model.RangeQuery{
		Kind: model.TimeSlice, Rect: geom.R(0, 0, 100, 100), Now: 0, T0: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(miss) != 0 {
		t.Fatalf("miss = %v", miss)
	}
}

func TestInvalidInsert(t *testing.T) {
	tr := newTestTree(t, 50, Config{})
	bad := model.Object{ID: 1, Pos: geom.Vec2{X: 1, Y: 2}, Vel: geom.Vec2{X: 0, Y: 0}, T: 0}
	bad.Pos.X = nan()
	if err := tr.Insert(bad); err == nil {
		t.Fatal("NaN position accepted")
	}
}

func nan() float64 { var z float64; return z / z }

func TestBulkAgainstOracleAllQueryKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := newTestTree(t, 200, Config{})
	oracle := model.NewBruteForce()
	objs := randomWorkload(3000, rng, 0)
	for _, o := range objs {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 60; trial++ {
		c := geom.V(rng.Float64()*100000, rng.Float64()*100000)
		t0 := rng.Float64() * 60
		t1 := t0 + rng.Float64()*60
		queries := []model.RangeQuery{
			{Kind: model.TimeSlice, Rect: geom.RectFromCenter(c, 3000, 3000), Now: 0, T0: t0},
			{Kind: model.TimeInterval, Rect: geom.RectFromCenter(c, 2000, 2000), Now: 0, T0: t0, T1: t1},
			{Kind: model.MovingRange, Rect: geom.RectFromCenter(c, 2000, 2000),
				Vel: geom.V(rng.Float64()*100-50, rng.Float64()*100-50), Now: 0, T0: t0, T1: t1},
			{Kind: model.TimeSlice, Circle: geom.Circle{C: c, R: 2500}, Now: 0, T0: t0},
			{Kind: model.TimeInterval, Circle: geom.Circle{C: c, R: 1500}, Now: 0, T0: t0, T1: t1},
		}
		for qi, q := range queries {
			got, err := tr.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			sameIDs(t, got, want, q.Kind.String()+" trial "+string(rune('0'+qi)))
		}
	}
}

func TestDeleteAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := newTestTree(t, 200, Config{})
	oracle := model.NewBruteForce()
	objs := randomWorkload(2000, rng, 0)
	for _, o := range objs {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
		_ = oracle.Insert(o)
	}
	// Delete a random half.
	perm := rng.Perm(len(objs))
	for _, p := range perm[:len(objs)/2] {
		if err := tr.Delete(objs[p]); err != nil {
			t.Fatalf("delete %v: %v", objs[p].ID, err)
		}
		_ = oracle.Delete(objs[p])
	}
	if tr.Len() != oracle.Len() {
		t.Fatalf("len %d vs %d", tr.Len(), oracle.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := model.RangeQuery{
			Kind: model.TimeSlice,
			Rect: geom.RectFromCenter(geom.V(rng.Float64()*100000, rng.Float64()*100000), 4000, 4000),
			Now:  0, T0: rng.Float64() * 100,
		}
		got, _ := tr.Search(q)
		want, _ := oracle.Search(q)
		sameIDs(t, got, want, "post-delete slice query")
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := newTestTree(t, 50, Config{})
	o := model.Object{ID: 9, Pos: geom.V(10, 10), Vel: geom.V(1, 1), T: 0}
	if err := tr.Delete(o); err != model.ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := tr.Insert(o); err != nil {
		t.Fatal(err)
	}
	other := o
	other.ID = 10
	if err := tr.Delete(other); err != model.ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if tr.Len() != 1 {
		t.Fatal("failed delete changed size")
	}
}

func TestUpdateMovesObject(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := newTestTree(t, 200, Config{})
	oracle := model.NewBruteForce()
	objs := randomWorkload(1500, rng, 0)
	for _, o := range objs {
		_ = tr.Insert(o)
		_ = oracle.Insert(o)
	}
	// Simulate 3 update rounds: at t = 30, 60, 90 a third of the objects
	// report new positions/velocities.
	cur := append([]model.Object(nil), objs...)
	for round := 1; round <= 3; round++ {
		now := float64(round) * 30
		for i := range cur {
			if rng.Intn(3) != 0 {
				continue
			}
			updated := cur[i]
			updated.Pos = updated.PosAt(now)
			updated.Vel = geom.V(rng.Float64()*200-100, rng.Float64()*200-100)
			updated.T = now
			if err := tr.Update(cur[i], updated); err != nil {
				t.Fatalf("update %d: %v", cur[i].ID, err)
			}
			if err := oracle.Update(cur[i], updated); err != nil {
				t.Fatal(err)
			}
			cur[i] = updated
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for trial := 0; trial < 15; trial++ {
			q := model.RangeQuery{
				Kind: model.TimeSlice,
				Rect: geom.RectFromCenter(geom.V(rng.Float64()*100000, rng.Float64()*100000), 5000, 5000),
				Now:  now, T0: now + rng.Float64()*60,
			}
			got, _ := tr.Search(q)
			want, _ := oracle.Search(q)
			sameIDs(t, got, want, "post-update query")
		}
	}
}

func TestLeafBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := newTestTree(t, 200, Config{})
	objs := randomWorkload(1200, rng, 0)
	total := 0
	for _, o := range objs {
		_ = tr.Insert(o)
	}
	lbs, err := tr.LeafBounds(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, lb := range lbs {
		total += lb.Count
		if lb.MR.MBR.IsEmpty() {
			t.Fatal("empty leaf bound")
		}
		if lb.Count > LeafCap {
			t.Fatalf("leaf with %d entries exceeds cap", lb.Count)
		}
	}
	if total != len(objs) {
		t.Fatalf("leaf counts sum to %d, want %d", total, len(objs))
	}
	internal, leaves, err := tr.NodeCount()
	if err != nil {
		t.Fatal(err)
	}
	if leaves != len(lbs) {
		t.Fatalf("NodeCount leaves %d vs LeafBounds %d", leaves, len(lbs))
	}
	if tr.Height() > 1 && internal == 0 {
		t.Fatal("multi-level tree must have internal nodes")
	}
}

func TestVelocitySkewShrinksSweep(t *testing.T) {
	// The core premise of the VP paper: a tree over single-axis movers has
	// leaf VBRs that are near-1D, so the summed sweep volume is far smaller
	// than for mixed-direction movers. This validates that our TPR* split/
	// insert heuristics actually exploit velocity grouping.
	rng := rand.New(rand.NewSource(10))
	mk := func(mixed bool) float64 {
		tr := newTestTree(t, 500, Config{})
		for i := 0; i < 2000; i++ {
			speed := 20 + rng.Float64()*80
			if rng.Intn(2) == 0 {
				speed = -speed
			}
			vel := geom.V(speed, rng.NormFloat64())
			if mixed && i%2 == 0 {
				vel = geom.V(rng.NormFloat64(), speed)
			}
			o := model.Object{
				ID:  model.ObjectID(i + 1),
				Pos: geom.V(rng.Float64()*100000, rng.Float64()*100000),
				Vel: vel,
				T:   0,
			}
			if err := tr.Insert(o); err != nil {
				t.Fatal(err)
			}
		}
		lbs, err := tr.LeafBounds(0)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, lb := range lbs {
			sum += lb.MR.SweepVolume(0, 60)
		}
		return sum
	}
	oneAxis := mk(false)
	mixed := mk(true)
	if oneAxis*1.3 > mixed {
		t.Fatalf("single-axis sweep %g should be well below mixed %g", oneAxis, mixed)
	}
}

func TestQueryIOSensibleVsScan(t *testing.T) {
	// A selective query should touch far fewer pages than the total page
	// count of the tree.
	rng := rand.New(rand.NewSource(4))
	pool := storage.NewBufferPool(storage.NewDisk(), 50)
	tr, err := NewTree(pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range randomWorkload(20000, rng, 0) {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	internal, leaves, _ := tr.NodeCount()
	totalPages := internal + leaves
	before := pool.Stats()
	_, err = tr.Search(model.RangeQuery{
		Kind: model.TimeSlice,
		Rect: geom.RectFromCenter(geom.V(50000, 50000), 500, 500),
		Now:  0, T0: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := pool.Stats()
	touched := (after.Misses - before.Misses) + (after.Hits - before.Hits)
	if touched <= 0 {
		t.Fatal("query touched nothing")
	}
	if int(touched) > totalPages/4 {
		t.Fatalf("selective query touched %d of %d pages", touched, totalPages)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Horizon != 120 || c.QueryExtent != 1000 || c.ReinsertFraction != 0.3 {
		t.Fatalf("defaults = %+v", c)
	}
	c2 := Config{Horizon: 10, QueryExtent: -5, ReinsertFraction: 0.5}.withDefaults()
	if c2.Horizon != 10 || c2.QueryExtent != 0 || c2.ReinsertFraction != 0.5 {
		t.Fatalf("overrides = %+v", c2)
	}
}

func TestSearchValidatesQuery(t *testing.T) {
	tr := newTestTree(t, 50, Config{})
	if _, err := tr.Search(model.RangeQuery{Kind: model.TimeSlice, Now: 10, T0: 5,
		Rect: geom.R(0, 0, 1, 1)}); err == nil {
		t.Fatal("past query accepted")
	}
	if _, err := tr.Search(model.RangeQuery{Kind: model.TimeInterval, Now: 0, T0: 5, T1: 1,
		Rect: geom.R(0, 0, 1, 1)}); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestPositionOnlySplitsStillCorrect(t *testing.T) {
	// The ablation switch must not affect correctness, only quality.
	rng := rand.New(rand.NewSource(33))
	tr := newTestTree(t, 200, Config{PositionOnlySplits: true})
	oracle := model.NewBruteForce()
	for _, o := range randomWorkload(2000, rng, 0) {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
		_ = oracle.Insert(o)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := model.RangeQuery{
			Kind: model.TimeSlice,
			Rect: geom.RectFromCenter(geom.V(rng.Float64()*100000, rng.Float64()*100000), 4000, 4000),
			Now:  0, T0: rng.Float64() * 100,
		}
		got, _ := tr.Search(q)
		want, _ := oracle.Search(q)
		sameIDs(t, got, want, "position-only splits")
	}
}

func TestVelocityAwareSplitsReduceSweep(t *testing.T) {
	// Quantifies the design choice in the regime where it matters: objects
	// that are spatially co-located but split into two opposing velocity
	// groups. Position sort keys cannot separate them; the velocity keys
	// can, and the separated leaves expand far slower.
	rng := rand.New(rand.NewSource(44))
	objs := make([]model.Object, 2000)
	for i := range objs {
		// Dense cluster: everything within a 200 m blob.
		pos := geom.V(50000+rng.Float64()*200, 50000+rng.Float64()*200)
		speed := 60 + rng.Float64()*40
		if i%2 == 0 {
			speed = -speed
		}
		objs[i] = model.Object{ID: model.ObjectID(i + 1), Pos: pos,
			Vel: geom.V(speed, rng.NormFloat64()), T: 0}
	}
	sweep := func(posOnly bool) float64 {
		tr := newTestTree(t, 500, Config{PositionOnlySplits: posOnly})
		for _, o := range objs {
			if err := tr.Insert(o); err != nil {
				t.Fatal(err)
			}
		}
		lbs, err := tr.LeafBounds(0)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, lb := range lbs {
			total += lb.MR.SweepVolume(0, 60)
		}
		return total
	}
	withVel := sweep(false)
	posOnly := sweep(true)
	t.Logf("sweep volume: velocity-aware %.4g, position-only %.4g (ratio %.2f)",
		withVel, posOnly, posOnly/withVel)
	if withVel*1.2 >= posOnly {
		t.Fatalf("velocity-aware splits (%.4g) should clearly beat position-only (%.4g)",
			withVel, posOnly)
	}
}

func TestKNNHeapOrdering(t *testing.T) {
	// Nodes sort before objects at equal distance (required so an object
	// is only reported when nothing nearer can hide in a subtree).
	h := knnHeap{
		{dist: 1, isNode: false},
		{dist: 1, isNode: true},
		{dist: 0.5, isNode: false},
	}
	if !h.Less(1, 0) {
		t.Fatal("node should order before object at equal distance")
	}
	if !h.Less(2, 0) {
		t.Fatal("smaller distance first")
	}
}

// TestSoakMixedOperations hammers the tree with a long random mix of
// inserts, deletes and updates while repeatedly validating structural
// invariants and query agreement with the oracle — the kind of churn a
// long-running tracking service produces.
func TestSoakMixedOperations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(77))
	tr := newTestTree(t, 100, Config{})
	oracle := model.NewBruteForce()
	live := map[model.ObjectID]model.Object{}
	nextID := model.ObjectID(1)
	now := 0.0

	randomObj := func() model.Object {
		speed := 20 + rng.Float64()*80
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		vel := geom.V(speed, rng.NormFloat64()*2)
		if rng.Intn(2) == 0 {
			vel = geom.V(rng.NormFloat64()*2, speed)
		}
		o := model.Object{
			ID:  nextID,
			Pos: geom.V(rng.Float64()*100000, rng.Float64()*100000),
			Vel: vel,
			T:   now,
		}
		nextID++
		return o
	}
	pick := func() (model.Object, bool) {
		for _, o := range live {
			return o, true
		}
		return model.Object{}, false
	}

	for step := 0; step < 6000; step++ {
		now += 0.01
		switch r := rng.Intn(10); {
		case r < 5 || len(live) == 0: // insert
			o := randomObj()
			if err := tr.Insert(o); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			_ = oracle.Insert(o)
			live[o.ID] = o
		case r < 7: // delete
			o, ok := pick()
			if !ok {
				continue
			}
			if err := tr.Delete(o); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			_ = oracle.Delete(o)
			delete(live, o.ID)
		default: // update
			o, ok := pick()
			if !ok {
				continue
			}
			upd := o
			upd.Pos = o.PosAt(now)
			upd.Vel = geom.V(rng.Float64()*200-100, rng.Float64()*200-100)
			upd.T = now
			if err := tr.Update(o, upd); err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
			_ = oracle.Update(o, upd)
			live[o.ID] = upd
		}
		if step%1000 == 999 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			q := model.RangeQuery{
				Kind: model.TimeSlice,
				Rect: geom.RectFromCenter(geom.V(rng.Float64()*100000, rng.Float64()*100000), 8000, 8000),
				Now:  now, T0: now + rng.Float64()*60,
			}
			got, _ := tr.Search(q)
			want, _ := oracle.Search(q)
			sameIDs(t, got, want, "soak query")
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("size drift: %d vs %d", tr.Len(), len(live))
	}
}
