package tprtree

import (
	"container/heap"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
)

// SearchKNN implements model.KNNIndex with the best-first traversal of
// Hjaltason & Samet: a priority queue ordered by the minimum distance (at
// the query's evaluation time) between the query point and the entry's
// time-parameterized rectangle. When the queue's head is an object, no
// unvisited entry can be nearer, so it is the next neighbor.
func (t *Tree) SearchKNN(q model.KNNQuery) ([]model.Neighbor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	pq := &knnHeap{}
	heap.Push(pq, knnItem{dist: 0, page: t.root, isNode: true})
	var out []model.Neighbor
	for pq.Len() > 0 && len(out) < q.K {
		it := heap.Pop(pq).(knnItem)
		if !it.isNode {
			out = append(out, model.Neighbor{ID: it.id, Dist: it.dist})
			continue
		}
		n, err := t.readNode(it.page)
		if err != nil {
			return nil, err
		}
		if n.leaf() {
			for _, o := range n.objs {
				heap.Push(pq, knnItem{
					dist: o.PosAt(q.T).DistTo(q.Center),
					id:   o.ID,
				})
			}
			continue
		}
		for _, e := range n.entries {
			heap.Push(pq, knnItem{
				dist:   minDistAt(e.mr, q.Center, q.T),
				page:   e.child,
				isNode: true,
			})
		}
	}
	model.SortNeighbors(out)
	return out, nil
}

// minDistAt returns the distance from p to the rectangle mr occupies at
// time t (0 when inside).
func minDistAt(mr geom.MovingRect, p geom.Vec2, t float64) float64 {
	r := mr.AtTime(t)
	dx := maxf(maxf(r.MinX-p.X, 0), p.X-r.MaxX)
	dy := maxf(maxf(r.MinY-p.Y, 0), p.Y-r.MaxY)
	if dx == 0 && dy == 0 {
		return 0
	}
	return geom.V(dx, dy).Norm()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

type knnItem struct {
	dist   float64
	page   storage.PageID
	id     model.ObjectID
	isNode bool
}

type knnHeap []knnItem

func (h knnHeap) Len() int { return len(h) }
func (h knnHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	// Visit nodes before objects at equal distance so an object is only
	// reported once nothing nearer can hide in a subtree.
	return h[i].isNode && !h[j].isNode
}
func (h knnHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x any)   { *h = append(*h, x.(knnItem)) }
func (h *knnHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

var _ model.KNNIndex = (*Tree)(nil)
