package hist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip: every bucket's upper edge maps back to that bucket,
// and indices are monotone in the value.
func TestBucketRoundTrip(t *testing.T) {
	for idx := 0; idx < nBuckets; idx++ {
		v := bucketUpper(idx)
		if got := bucketIndex(v); got != idx {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", idx, v, got)
		}
	}
	prev := -1
	for _, ns := range []int64{0, 1, 15, 16, 17, 31, 32, 1000, 1e6, 1e9, 1e12} {
		idx := bucketIndex(ns)
		if idx <= prev && ns > 0 {
			t.Fatalf("bucketIndex not monotone at %d: %d <= %d", ns, idx, prev)
		}
		prev = idx
	}
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative duration must clamp to bucket 0")
	}
}

// TestQuantileAccuracy: against a sorted reference sample, every reported
// quantile must be >= the true value and within the 1/16 relative error the
// sub-bucket resolution promises.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		// log-uniform over ~6 decades, the shape latency distributions have
		vals[i] = int64(1 << uint(rng.Intn(40)))
		vals[i] += rng.Int63n(vals[i] + 1)
		h.Observe(time.Duration(vals[i]))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(q*float64(n) + 0.5)
		if rank < 1 {
			rank = 1
		}
		truth := vals[rank-1]
		got := int64(h.Quantile(q))
		if got < truth {
			t.Fatalf("q%.3f = %d below true value %d", q, got, truth)
		}
		if float64(got-truth) > float64(truth)/subCount+1 {
			t.Fatalf("q%.3f = %d exceeds true value %d by more than 1/%d", q, got, truth, subCount)
		}
	}
	if h.Count() != int64(n) {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
}

func TestEmptyAndMean(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram must report zeros")
	}
	h.Observe(10 * time.Microsecond)
	h.Observe(30 * time.Microsecond)
	if got := h.Mean(); got != 20*time.Microsecond {
		t.Fatalf("mean = %v, want 20µs", got)
	}
}

// TestConcurrentObserveMerge: racing writers lose nothing, and Merge is the
// sum of its parts.
func TestConcurrentObserveMerge(t *testing.T) {
	const workers, per = 8, 5000
	parts := make([]Histogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				parts[w].Observe(time.Duration(rng.Int63n(int64(time.Millisecond))))
			}
		}(w)
	}
	wg.Wait()
	var all Histogram
	for w := range parts {
		all.Merge(&parts[w])
	}
	if all.Count() != workers*per {
		t.Fatalf("merged count = %d, want %d", all.Count(), workers*per)
	}
	p50, p99, p999 := all.Percentiles()
	if p50 <= 0 || p99 < p50 || p999 < p99 {
		t.Fatalf("percentiles not ordered: %v %v %v", p50, p99, p999)
	}
	all.Reset()
	if all.Count() != 0 || all.Quantile(0.5) != 0 {
		t.Fatalf("reset did not clear")
	}
}
