// Package hist provides a fixed-footprint, lock-free latency histogram for
// the ingest and (future) serve benchmarks: many writer goroutines Observe
// concurrently, a reporter reads quantiles afterwards. Buckets are
// logarithmic with 16 linear sub-buckets per power of two, so any recorded
// duration is reproduced by Quantile with at most ~6% relative error while
// the whole histogram stays under 8 KiB and never allocates after
// construction — an Observe is one atomic add.
package hist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits is the per-octave linear resolution: 2^subBits sub-buckets per
	// power of two bounds the relative quantile error at 2^-subBits.
	subBits  = 4
	subCount = 1 << subBits

	// nBuckets covers every non-negative int64 nanosecond count: values
	// below subCount get exact buckets, and each of the remaining octaves
	// (top bit position subBits..62) contributes subCount buckets.
	nBuckets = subCount + (63-subBits)*subCount
)

// Histogram is a concurrency-safe duration histogram. The zero value is
// ready to use. Observe may race freely with other Observes; quantile reads
// racing writers see some consistent-enough snapshot (each bucket is
// individually atomic), which is what a live progress report wants — for
// exact results, read after the writers are done.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds, for Mean
	buckets [nBuckets]atomic.Int64
}

// bucketIndex maps a nanosecond count to its bucket. Values < subCount are
// exact; above that, the top subBits+1 significant bits select the bucket.
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	if ns < subCount {
		return int(ns)
	}
	msb := bits.Len64(uint64(ns)) - 1 // >= subBits
	shift := uint(msb - subBits)
	// ns>>shift is in [subCount, 2*subCount); consecutive octaves tile the
	// index space contiguously starting right after the exact region.
	return (msb-subBits)*subCount + int(ns>>shift)
}

// bucketUpper returns the largest nanosecond count the bucket holds — the
// conservative (upper-edge) value Quantile reports.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	e := uint((idx - subCount) / subCount)
	sub := int64(idx % subCount)
	return (subCount+sub+1)<<e - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the arithmetic mean of the recorded durations (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the q-quantile (q in [0,1]) as the upper edge of the
// bucket holding the ceil(q*count)-th smallest observation; 0 when empty.
// Quantile(1) is an upper bound on the maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(bucketUpper(nBuckets - 1))
}

// Percentiles returns the p50/p99/p99.9 latencies in one pass-friendly call.
func (h *Histogram) Percentiles() (p50, p99, p999 time.Duration) {
	return h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999)
}

// Merge adds every observation recorded in o into h (o is not modified).
func (h *Histogram) Merge(o *Histogram) {
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for i := range h.buckets {
		if v := o.buckets[i].Load(); v != 0 {
			h.buckets[i].Add(v)
		}
	}
}

// Reset clears the histogram. Not safe to race with Observe.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}
