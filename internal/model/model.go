// Package model defines the moving-object data model shared by every index
// in this repository: linear-motion object records, the three predictive
// range query types of the VP paper (Section 2.1), the common Index
// interface implemented by the TPR*-tree, the Bx-tree and the VP-partitioned
// manager, and an exact brute-force oracle used both for the refinement
// (filter) step of query processing and for correctness testing.
package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// ObjectID identifies a moving object. IDs are assigned by the application;
// indexes treat them as opaque.
type ObjectID uint64

// Object is a linear-motion moving point (Section 2.1): at time t >= T its
// position is Pos + Vel*(t - T). An update replaces the whole record.
type Object struct {
	ID  ObjectID
	Pos geom.Vec2 // reference position at time T
	Vel geom.Vec2 // velocity (m/ts)
	T   float64   // reference timestamp of Pos
}

// PosAt returns the extrapolated position at time t.
func (o Object) PosAt(t float64) geom.Vec2 {
	return o.Pos.Add(o.Vel.Scale(t - o.T))
}

// AsMovingRect returns the degenerate moving rectangle tracking o.
func (o Object) AsMovingRect() geom.MovingRect {
	return geom.MovingPointRect(o.Pos, o.Vel, o.T)
}

// Transform returns the object expressed in the rotated coordinate frame m
// (both position and velocity rotate; reference time is unchanged). Used by
// the VP index manager when inserting into a DVA index.
func (o Object) Transform(m geom.Mat2) Object {
	return Object{ID: o.ID, Pos: m.Apply(o.Pos), Vel: m.Apply(o.Vel), T: o.T}
}

// String implements fmt.Stringer.
func (o Object) String() string {
	return fmt.Sprintf("obj %d pos%v vel%v @%g", o.ID, o.Pos, o.Vel, o.T)
}

// QueryKind distinguishes the three range query types of Section 2.1.
type QueryKind int

const (
	// TimeSlice reports objects inside the region at one timestamp (T0).
	TimeSlice QueryKind = iota
	// TimeInterval reports objects inside the (static) region at any time
	// in [T0, T1].
	TimeInterval
	// MovingRange reports objects that intersect the region as it
	// translates with velocity Vel during [T0, T1].
	MovingRange
)

// String implements fmt.Stringer.
func (k QueryKind) String() string {
	switch k {
	case TimeSlice:
		return "time-slice"
	case TimeInterval:
		return "time-interval"
	case MovingRange:
		return "moving-range"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
}

// RangeQuery is a predictive range query. The region is either a rectangle
// (Circle.R == 0 and Rect non-empty) or a circle (Circle.R > 0); circular
// queries are the paper's default since they resemble "objects within d of
// me" requests and the kNN filter step.
//
// Now is the time the query is issued (all indexes contain objects whose
// reference times are <= Now); T0 >= Now is the (future) query time, and T1
// >= T0 closes the interval for interval/moving queries. For TimeSlice
// queries T1 is ignored and treated as T0.
type RangeQuery struct {
	Kind   QueryKind
	Rect   geom.Rect   // rectangular region (region at time T0 for MovingRange)
	Circle geom.Circle // circular region if Circle.R > 0
	Vel    geom.Vec2   // region velocity (MovingRange only)
	Now    float64
	T0, T1 float64
}

// IsCircle reports whether the query region is circular.
func (q RangeQuery) IsCircle() bool { return q.Circle.R > 0 }

// EndTime returns the effective end of the query time range.
func (q RangeQuery) EndTime() float64 {
	if q.Kind == TimeSlice {
		return q.T0
	}
	return math.Max(q.T0, q.T1)
}

// Region returns the axis-aligned bounding rectangle of the query region at
// its initial time T0.
func (q RangeQuery) Region() geom.Rect {
	if q.IsCircle() {
		return q.Circle.Bound()
	}
	return q.Rect
}

// AsMovingRect returns the query region as a moving rectangle over
// [T0, EndTime]: static for slice/interval queries, translating with Vel
// for moving queries. Circular regions are bounded by their MBR (exact
// refinement happens in Matches).
func (q RangeQuery) AsMovingRect() geom.MovingRect {
	r := q.Region()
	v := geom.Vec2{}
	if q.Kind == MovingRange {
		v = q.Vel
	}
	vbr := geom.Rect{MinX: v.X, MinY: v.Y, MaxX: v.X, MaxY: v.Y}
	return geom.MovingRect{MBR: r, VBR: vbr, Ref: q.T0}
}

// Transform returns the query expressed in the rotated frame m: the
// rectangular region becomes the axis-aligned bound of its rotated corners
// (Algorithm 3 line 4); circle centers rotate with the radius preserved
// (rotations are isometries); velocities rotate. The transformed query is a
// *superset* test — exact containment is re-checked by Matches in the
// original frame.
func (q RangeQuery) Transform(m geom.Mat2) RangeQuery {
	out := q
	if q.IsCircle() {
		out.Circle = geom.Circle{C: m.Apply(q.Circle.C), R: q.Circle.R}
		out.Rect = out.Circle.Bound()
	} else {
		out.Rect = q.Rect.BoundOfTransformed(m)
	}
	out.Vel = m.Apply(q.Vel)
	return out
}

// Validate reports a descriptive error for malformed queries.
func (q RangeQuery) Validate() error {
	if q.Circle.R < 0 {
		return fmt.Errorf("model: negative query radius %g", q.Circle.R)
	}
	if !q.IsCircle() && q.Rect.IsEmpty() {
		return fmt.Errorf("model: empty query rectangle")
	}
	if q.T0 < q.Now {
		return fmt.Errorf("model: query time T0=%g precedes issue time Now=%g", q.T0, q.Now)
	}
	if q.Kind != TimeSlice && q.T1 < q.T0 {
		return fmt.Errorf("model: query interval [%g,%g] is inverted", q.T0, q.T1)
	}
	return nil
}

// Matches is the exact predicate: does object o satisfy q? It is used as
// the refinement step after every index probe (Algorithm 3 line 8) and as
// the test oracle. The math is closed-form: linear motion against a static
// or linearly translating rectangle reduces to interval intersection per
// axis; against a circle it reduces to a quadratic in t.
func Matches(o Object, q RangeQuery) bool {
	t0, t1 := q.T0, q.EndTime()
	var regionVel geom.Vec2
	if q.Kind == MovingRange {
		regionVel = q.Vel
	}
	if q.IsCircle() {
		return circleHit(o, q.Circle, regionVel, t0, t1)
	}
	// Relative motion of the object with respect to the (possibly moving)
	// rectangle.
	rel := geom.MovingPointRect(o.PosAt(t0), o.Vel.Sub(regionVel), t0)
	static := geom.MovingRect{MBR: q.Rect, VBR: geom.Rect{}, Ref: t0}
	return rel.IntersectsDuring(static, t0, t1)
}

// circleHit solves |p(t) - c(t)| <= r for t in [t0, t1] where both p and c
// move linearly.
func circleHit(o Object, c geom.Circle, cVel geom.Vec2, t0, t1 float64) bool {
	// d(t) = d0 + dv*(t - t0)
	d0 := o.PosAt(t0).Sub(c.C)
	dv := o.Vel.Sub(cVel)
	// |d0 + dv*s|^2 <= r^2 for some s in [0, t1-t0]: a quadratic in s whose
	// minimum over the closed interval decides the predicate.
	a := dv.NormSq()
	b := 2 * d0.Dot(dv)
	cc := d0.NormSq() - c.R*c.R
	S := t1 - t0
	if a == 0 {
		// No relative motion (then b = 2*d0.(0) = 0 as well): constant gap.
		return cc <= 0
	}
	sMin := -b / (2 * a)
	if sMin < 0 {
		sMin = 0
	} else if sMin > S {
		sMin = S
	}
	return a*sMin*sMin+b*sMin+cc <= 0
}

// IOStats aggregates simulated disk activity; indexes report deltas of
// these counters around each operation. Reads are buffer-pool misses (the
// paper's "I/O" metric), Hits are buffer-pool hits, Writes are dirty page
// write-backs.
type IOStats struct {
	Reads  int64
	Writes int64
	Hits   int64
}

// Add returns the component-wise sum.
func (s IOStats) Add(o IOStats) IOStats {
	return IOStats{s.Reads + o.Reads, s.Writes + o.Writes, s.Hits + o.Hits}
}

// Sub returns the component-wise difference.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{s.Reads - o.Reads, s.Writes - o.Writes, s.Hits - o.Hits}
}

// Total returns reads+writes: total simulated disk accesses.
func (s IOStats) Total() int64 { return s.Reads + s.Writes }

// Index is the operation set common to all moving-object indexes here: the
// TPR*-tree, the Bx-tree, and the VP-partitioned wrapper around either.
//
// Insert adds a (new) object record. Delete removes the record previously
// inserted for the object — the full record is required because both base
// indexes locate entries by position/velocity/time, not by ID alone (the VP
// manager keeps the id->record table so callers can use UpdateByID). Update
// is delete-then-insert, as in the paper.
type Index interface {
	Insert(o Object) error
	Delete(o Object) error
	Update(old, new Object) error
	Search(q RangeQuery) ([]ObjectID, error)
	Len() int
	IO() IOStats
	Name() string
}

// Sentinel errors shared by every index implementation in this repository.
// Implementations wrap them with context (fmt.Errorf("...: %w", Err...)), so
// callers must test with errors.Is, not equality.
var (
	// ErrNotFound is returned by Delete/Update/Remove when the record is
	// absent.
	ErrNotFound = errors.New("model: object not found")
	// ErrDuplicate is returned by Insert when a record with the same ID is
	// already indexed.
	ErrDuplicate = errors.New("model: duplicate object")
	// ErrUnsupported is returned when an index does not implement the
	// requested operation (e.g. kNN on a base structure without it).
	ErrUnsupported = errors.New("model: operation not supported by this index")
)

// BruteForce is a trivially correct Index used as the oracle in tests and
// as the reference "linear scan" baseline. It is not paged and reports zero
// I/O.
type BruteForce struct {
	objs map[ObjectID]Object
}

// NewBruteForce returns an empty oracle index.
func NewBruteForce() *BruteForce { return &BruteForce{objs: make(map[ObjectID]Object)} }

// Insert implements Index.
func (b *BruteForce) Insert(o Object) error {
	if _, dup := b.objs[o.ID]; dup {
		return fmt.Errorf("model: insert of object %d: %w", o.ID, ErrDuplicate)
	}
	b.objs[o.ID] = o
	return nil
}

// Delete implements Index.
func (b *BruteForce) Delete(o Object) error {
	if _, ok := b.objs[o.ID]; !ok {
		return ErrNotFound
	}
	delete(b.objs, o.ID)
	return nil
}

// Update implements Index.
func (b *BruteForce) Update(old, new Object) error {
	if err := b.Delete(old); err != nil {
		return err
	}
	return b.Insert(new)
}

// Search implements Index.
func (b *BruteForce) Search(q RangeQuery) ([]ObjectID, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	var out []ObjectID
	for _, o := range b.objs {
		if Matches(o, q) {
			out = append(out, o.ID)
		}
	}
	return out, nil
}

// Len implements Index.
func (b *BruteForce) Len() int { return len(b.objs) }

// IO implements Index.
func (b *BruteForce) IO() IOStats { return IOStats{} }

// Name implements Index.
func (b *BruteForce) Name() string { return "scan" }

// Get returns the stored record for id.
func (b *BruteForce) Get(id ObjectID) (Object, bool) {
	o, ok := b.objs[id]
	return o, ok
}
