package model

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// KNNQuery asks for the K objects nearest to Center at (future) time T.
// The paper motivates its circular range queries as "the filter step of
// the k Nearest Neighbor query" (Section 6); this is the full refinement.
type KNNQuery struct {
	Center geom.Vec2
	K      int
	Now    float64 // issue time
	T      float64 // evaluation time (>= Now)
}

// Validate reports malformed queries.
func (q KNNQuery) Validate() error {
	if q.K <= 0 {
		return fmt.Errorf("model: kNN with k=%d", q.K)
	}
	if q.T < q.Now {
		return fmt.Errorf("model: kNN time %g precedes issue time %g", q.T, q.Now)
	}
	return nil
}

// Neighbor is one kNN result.
type Neighbor struct {
	ID   ObjectID
	Dist float64
}

// KNNIndex is implemented by indexes that support k-nearest-neighbor
// search in addition to range queries.
type KNNIndex interface {
	Index
	SearchKNN(q KNNQuery) ([]Neighbor, error)
}

// SortNeighbors orders by distance, ties by id (deterministic results).
func SortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(a, b int) bool {
		if ns[a].Dist != ns[b].Dist {
			return ns[a].Dist < ns[b].Dist
		}
		return ns[a].ID < ns[b].ID
	})
}

// MergeNeighbors combines per-partition result lists into the global top k
// (used by the VP manager: rotations are isometries, so distances computed
// in different partition frames are directly comparable).
func MergeNeighbors(k int, lists ...[]Neighbor) []Neighbor {
	var all []Neighbor
	for _, l := range lists {
		all = append(all, l...)
	}
	SortNeighbors(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// SearchKNN implements KNNIndex for the brute-force oracle.
func (b *BruteForce) SearchKNN(q KNNQuery) ([]Neighbor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ns := make([]Neighbor, 0, len(b.objs))
	for _, o := range b.objs {
		ns = append(ns, Neighbor{ID: o.ID, Dist: o.PosAt(q.T).DistTo(q.Center)})
	}
	SortNeighbors(ns)
	if len(ns) > q.K {
		ns = ns[:q.K]
	}
	return ns, nil
}

var _ KNNIndex = (*BruteForce)(nil)
