package model

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestObjectPosAt(t *testing.T) {
	o := Object{ID: 1, Pos: geom.V(10, 20), Vel: geom.V(2, -1), T: 5}
	if got := o.PosAt(5); got != geom.V(10, 20) {
		t.Fatalf("PosAt(T) = %v", got)
	}
	if got := o.PosAt(8); got != geom.V(16, 17) {
		t.Fatalf("PosAt(8) = %v", got)
	}
	// Extrapolation backwards is legal for the record itself.
	if got := o.PosAt(3); got != geom.V(6, 22) {
		t.Fatalf("PosAt(3) = %v", got)
	}
}

func TestObjectTransformPreservesTrajectory(t *testing.T) {
	// Rotating a record and extrapolating commutes with extrapolating and
	// then rotating — the invariant the VP manager relies on.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		o := Object{
			ID:  ObjectID(i),
			Pos: geom.V(rng.Float64()*1e5, rng.Float64()*1e5),
			Vel: geom.V(rng.Float64()*200-100, rng.Float64()*200-100),
			T:   rng.Float64() * 100,
		}
		m := geom.RotationByAngle(rng.Float64() * 2 * math.Pi)
		tt := o.T + rng.Float64()*100
		a := m.Apply(o.PosAt(tt))
		b := o.Transform(m).PosAt(tt)
		if a.DistTo(b) > 1e-6*(1+a.Norm()) {
			t.Fatalf("transform does not commute: %v vs %v", a, b)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	good := RangeQuery{Kind: TimeSlice, Rect: geom.R(0, 0, 1, 1), Now: 0, T0: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []RangeQuery{
		{Kind: TimeSlice, Rect: geom.EmptyRect(), Now: 0, T0: 5},                      // empty region
		{Kind: TimeSlice, Rect: geom.R(0, 0, 1, 1), Now: 10, T0: 5},                   // past
		{Kind: TimeInterval, Rect: geom.R(0, 0, 1, 1), Now: 0, T0: 5, T1: 1},          // inverted
		{Kind: TimeSlice, Circle: geom.Circle{C: geom.V(0, 0), R: -1}, Now: 0, T0: 5}, // negative radius
	}
	for i, q := range cases {
		if err := q.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, q)
		}
	}
}

func TestQueryKindString(t *testing.T) {
	if TimeSlice.String() != "time-slice" || TimeInterval.String() != "time-interval" ||
		MovingRange.String() != "moving-range" {
		t.Fatal("kind strings")
	}
	if QueryKind(99).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestMatchesTimeSliceRect(t *testing.T) {
	o := Object{ID: 1, Pos: geom.V(0, 0), Vel: geom.V(10, 0), T: 0}
	q := RangeQuery{Kind: TimeSlice, Rect: geom.R(95, -5, 105, 5), Now: 0, T0: 10}
	if !Matches(o, q) {
		t.Fatal("object at (100,0) at t=10 should match")
	}
	q.T0 = 5 // object at (50, 0)
	if Matches(o, q) {
		t.Fatal("object at (50,0) should not match")
	}
}

func TestMatchesIntervalRect(t *testing.T) {
	o := Object{ID: 1, Pos: geom.V(0, 0), Vel: geom.V(10, 0), T: 0}
	// Object passes through x in [95,105] during t in [9.5, 10.5].
	q := RangeQuery{Kind: TimeInterval, Rect: geom.R(95, -5, 105, 5), Now: 0, T0: 2, T1: 9.4}
	if Matches(o, q) {
		t.Fatal("interval ends before arrival")
	}
	q.T1 = 9.6
	if !Matches(o, q) {
		t.Fatal("interval reaches arrival")
	}
}

func TestMatchesMovingRange(t *testing.T) {
	// Region chases the object at the same speed: never catches it.
	o := Object{ID: 1, Pos: geom.V(100, 0), Vel: geom.V(10, 0), T: 0}
	q := RangeQuery{Kind: MovingRange, Rect: geom.R(0, -5, 50, 5),
		Vel: geom.V(10, 0), Now: 0, T0: 0, T1: 100}
	if Matches(o, q) {
		t.Fatal("equal-velocity chase should never catch")
	}
	// Faster region catches at t = 50/10 = (100-50)/(20-10) = 5.
	q.Vel = geom.V(20, 0)
	q.T1 = 4.9
	if Matches(o, q) {
		t.Fatal("catch happens at t=5")
	}
	q.T1 = 5.1
	if !Matches(o, q) {
		t.Fatal("region should catch object at t=5")
	}
}

func TestMatchesCircleExactBoundary(t *testing.T) {
	o := Object{ID: 1, Pos: geom.V(0, 3), Vel: geom.V(1, 0), T: 0}
	// Circle of radius 3 at origin: the object grazes it at closest
	// approach x=0 (distance exactly 3).
	q := RangeQuery{Kind: TimeSlice, Circle: geom.Circle{C: geom.V(0, 0), R: 3}, Now: 0, T0: 0}
	if !Matches(o, q) {
		t.Fatal("boundary contact should match (closed region)")
	}
	q.Circle.R = 2.99
	if Matches(o, q) {
		t.Fatal("no contact at radius 2.99")
	}
}

func TestMatchesCircleStationaryRelative(t *testing.T) {
	// Object and (moving) circle share a velocity: constant gap.
	o := Object{ID: 1, Pos: geom.V(10, 0), Vel: geom.V(5, 5), T: 0}
	q := RangeQuery{Kind: MovingRange, Circle: geom.Circle{C: geom.V(0, 0), R: 9},
		Rect: geom.Circle{C: geom.V(0, 0), R: 9}.Bound(),
		Vel:  geom.V(5, 5), Now: 0, T0: 0, T1: 1000}
	if Matches(o, q) {
		t.Fatal("gap 10 > radius 9 forever")
	}
	q.Circle.R = 10
	if !Matches(o, q) {
		t.Fatal("gap 10 == radius 10")
	}
}

// TestMatchesAgainstSampling cross-checks the closed-form predicate with
// dense trajectory sampling over random scenarios.
func TestMatchesAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	disagree := 0
	for trial := 0; trial < 4000; trial++ {
		o := Object{
			ID:  1,
			Pos: geom.V(rng.Float64()*200-100, rng.Float64()*200-100),
			Vel: geom.V(rng.Float64()*20-10, rng.Float64()*20-10),
			T:   rng.Float64() * 10,
		}
		q := RangeQuery{Now: o.T, T0: o.T + rng.Float64()*10}
		q.T1 = q.T0 + rng.Float64()*10
		switch trial % 3 {
		case 0:
			q.Kind = TimeSlice
		case 1:
			q.Kind = TimeInterval
		default:
			q.Kind = MovingRange
			q.Vel = geom.V(rng.Float64()*20-10, rng.Float64()*20-10)
		}
		if trial%2 == 0 {
			c := geom.V(rng.Float64()*200-100, rng.Float64()*200-100)
			q.Circle = geom.Circle{C: c, R: rng.Float64() * 40}
			q.Rect = q.Circle.Bound()
		} else {
			x, y := rng.Float64()*200-100, rng.Float64()*200-100
			q.Rect = geom.R(x, y, x+rng.Float64()*60, y+rng.Float64()*60)
		}

		got := Matches(o, q)
		want := sampleMatches(o, q, 2000)
		if got != want {
			// Sampling misses grazing contacts; exact true vs sampled false
			// is tolerable, the reverse is a bug.
			if !got && want {
				t.Fatalf("Matches=false but sampling hits: %+v %+v", o, q)
			}
			disagree++
		}
	}
	if disagree > 80 {
		t.Fatalf("too many grazing disagreements: %d", disagree)
	}
}

func sampleMatches(o Object, q RangeQuery, steps int) bool {
	t0, t1 := q.T0, q.EndTime()
	for i := 0; i <= steps; i++ {
		tt := t0
		if steps > 0 {
			tt = t0 + (t1-t0)*float64(i)/float64(steps)
		}
		p := o.PosAt(tt)
		var off geom.Vec2
		if q.Kind == MovingRange {
			off = q.Vel.Scale(tt - t0)
		}
		if q.IsCircle() {
			c := geom.Circle{C: q.Circle.C.Add(off), R: q.Circle.R}
			if c.ContainsPoint(p) {
				return true
			}
		} else {
			if q.Rect.Translate(off).ContainsPoint(p) {
				return true
			}
		}
	}
	return false
}

func TestBruteForceIndexSemantics(t *testing.T) {
	b := NewBruteForce()
	o := Object{ID: 1, Pos: geom.V(1, 1), Vel: geom.V(0, 0), T: 0}
	if err := b.Insert(o); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(o); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if b.Len() != 1 || b.Name() != "scan" {
		t.Fatal("len/name")
	}
	if got, ok := b.Get(1); !ok || got != o {
		t.Fatal("Get")
	}
	upd := o
	upd.Pos = geom.V(2, 2)
	upd.T = 1
	if err := b.Update(o, upd); err != nil {
		t.Fatal(err)
	}
	// Updating an object that was never inserted must fail.
	ghost := Object{ID: 99}
	if err := b.Update(ghost, ghost); err != ErrNotFound {
		t.Fatalf("ghost update: %v", err)
	}
	ids, err := b.Search(RangeQuery{Kind: TimeSlice, Rect: geom.R(0, 0, 5, 5), Now: 1, T0: 2})
	if err != nil || len(ids) != 1 {
		t.Fatalf("search: %v %v", ids, err)
	}
	if _, err := b.Search(RangeQuery{Kind: TimeSlice, Rect: geom.EmptyRect(), Now: 0, T0: 1}); err == nil {
		t.Fatal("invalid query accepted")
	}
	if err := b.Delete(upd); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(upd); err != ErrNotFound {
		t.Fatal("double delete")
	}
	if b.IO() != (IOStats{}) {
		t.Fatal("oracle should report zero IO")
	}
}

func TestIOStatsArithmetic(t *testing.T) {
	a := IOStats{Reads: 5, Writes: 3, Hits: 10}
	b := IOStats{Reads: 1, Writes: 1, Hits: 1}
	if a.Add(b) != (IOStats{6, 4, 11}) {
		t.Fatal("Add")
	}
	if a.Sub(b) != (IOStats{4, 2, 9}) {
		t.Fatal("Sub")
	}
	if a.Total() != 8 {
		t.Fatal("Total")
	}
}

func TestQueryTransformRoundTrip(t *testing.T) {
	// A transformed query must be a superset test: any object matching the
	// original query must have its transformed record match the transformed
	// query's *rect* bound.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1000; trial++ {
		m := geom.RotationByAngle(rng.Float64() * 2 * math.Pi)
		o := Object{
			ID:  1,
			Pos: geom.V(rng.Float64()*1000, rng.Float64()*1000),
			Vel: geom.V(rng.Float64()*40-20, rng.Float64()*40-20),
			T:   0,
		}
		x, y := rng.Float64()*1000, rng.Float64()*1000
		q := RangeQuery{
			Kind: TimeSlice,
			Rect: geom.R(x, y, x+200, y+200),
			Now:  0, T0: rng.Float64() * 20,
		}
		if !Matches(o, q) {
			continue
		}
		tq := q.Transform(m)
		to := o.Transform(m)
		if !tq.Rect.Expand(1e-6).ContainsPoint(to.PosAt(q.T0)) {
			t.Fatalf("transformed query bound misses transformed object")
		}
	}
}

func TestQueryTransformCirclePreservesRadius(t *testing.T) {
	q := RangeQuery{Kind: TimeSlice, Circle: geom.Circle{C: geom.V(3, 4), R: 7}, Now: 0, T0: 1}
	tq := q.Transform(geom.RotationByAngle(1.2))
	if tq.Circle.R != 7 {
		t.Fatalf("radius changed: %g", tq.Circle.R)
	}
	if math.Abs(tq.Circle.C.Norm()-q.Circle.C.Norm()) > 1e-9 {
		t.Fatal("rotation should preserve center norm")
	}
}

func TestSentinelErrorsAreIsable(t *testing.T) {
	b := NewBruteForce()
	o := Object{ID: 1, Pos: geom.V(1, 1), Vel: geom.V(1, 0), T: 0}
	if err := b.Insert(o); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(o); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if err := b.Delete(Object{ID: 9}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete absent: %v", err)
	}
	if err := b.Update(Object{ID: 9}, Object{ID: 9}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update absent: %v", err)
	}
	// Wrapped variants keep matching, bare equality would not.
	wrapped := fmt.Errorf("layer: %w", ErrUnsupported)
	if !errors.Is(wrapped, ErrUnsupported) {
		t.Fatal("wrapped ErrUnsupported not Is-able")
	}
	if wrapped == ErrUnsupported {
		t.Fatal("wrapped error compares equal (should require errors.Is)")
	}
	// The three sentinels are distinct.
	if errors.Is(ErrNotFound, ErrDuplicate) || errors.Is(ErrDuplicate, ErrUnsupported) {
		t.Fatal("sentinel errors alias each other")
	}
}
