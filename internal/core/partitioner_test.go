package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/analysis/cluster"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
)

// speedMixSample synthesizes the workload DVA cannot help with: directions
// uniform over the circle (no dominant axis), speeds bimodal — slow
// pedestrian-like movers plus a fast highway cohort.
func speedMixSample(n int, slowFrac, slowSpeed, fastSpeed float64, seed int64) []geom.Vec2 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Vec2, n)
	for i := range out {
		s := fastSpeed * (0.8 + rng.Float64()*0.4)
		if rng.Float64() < slowFrac {
			s = slowSpeed * (0.5 + rng.Float64())
		}
		ang := rng.Float64() * 2 * math.Pi
		out[i] = geom.V(s*math.Cos(ang), s*math.Sin(ang))
	}
	return out
}

func TestSpeedPartitionerBimodalSample(t *testing.T) {
	sample := speedMixSample(4000, 0.6, 2, 100, 1)
	an, err := SpeedPartitioner{Bands: 2}.Analyze(sample)
	if err != nil {
		t.Fatal(err)
	}
	if an.Kind != KindSpeed || len(an.Frames) != 2 || an.SampleSize != 4000 {
		t.Fatalf("analysis: %+v", an)
	}
	if err := an.Validate(); err != nil {
		t.Fatal(err)
	}
	// The optimal cut separates the walkers (speeds in [1, 3]) from the
	// ~100 m/ts highway cohort; the DP hugs the slow mode since the
	// objective charges each band its population times its top speed.
	cut := an.Frames[0].SpeedMax
	if cut <= 3 || cut > 80 {
		t.Fatalf("band threshold %g does not separate the modes", cut)
	}
	if !math.IsInf(an.Frames[1].SpeedMax, 1) {
		t.Fatalf("top band must reach +Inf, got %g", an.Frames[1].SpeedMax)
	}
	if an.Frames[0].Count+an.Frames[1].Count != len(sample) {
		t.Fatal("band counts do not cover the sample")
	}
	if an.Frames[0].Count < len(sample)/2 {
		t.Fatalf("slow band holds only %d of %d", an.Frames[0].Count, len(sample))
	}
	// RouteVel honors the band bounds.
	if an.RouteVel(geom.V(1, 0)) != 0 || an.RouteVel(geom.V(0, 90)) != 1 {
		t.Fatal("RouteVel mis-routes across the band threshold")
	}
	// Errors and degenerate inputs.
	if _, err := (SpeedPartitioner{}).Analyze(nil); err == nil {
		t.Fatal("empty sample accepted")
	}
	zero, err := SpeedPartitioner{Bands: 3}.Analyze([]geom.Vec2{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if len(zero.Frames) != 1 || zero.Validate() != nil {
		t.Fatalf("all-zero sample should collapse to one band: %+v", zero)
	}
}

func TestOptimalSpeedThresholdsMatchesExhaustiveSearch(t *testing.T) {
	cost := func(speeds, cuts []float64) float64 {
		total := 0.0
		lo := 0.0
		for _, hi := range cuts {
			n := 0
			for _, s := range speeds {
				if s >= lo && (s < hi || hi == cuts[len(cuts)-1]) {
					n++
				}
			}
			total += float64(n) * hi
			lo = hi
		}
		return total
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(200)
		speeds := make([]float64, n)
		for i := range speeds {
			if rng.Float64() < 0.7 {
				speeds[i] = rng.Float64() * 10
			} else {
				speeds[i] = 50 + rng.Float64()*50
			}
		}
		const buckets = 40
		got := OptimalSpeedThresholds(speeds, 2, buckets)
		smax := 0.0
		for _, s := range speeds {
			smax = math.Max(smax, s)
		}
		// Exhaustive sweep of the single interior cut over the same edges.
		best := math.Inf(1)
		for e := 1; e < buckets; e++ {
			c := cost(speeds, []float64{smax * float64(e) / buckets, smax})
			if c < best {
				best = c
			}
		}
		return cost(speeds, got) <= best+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	// Degenerate cases.
	if got := OptimalSpeedThresholds(nil, 2, 100); len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty speeds: %v", got)
	}
	if got := OptimalSpeedThresholds([]float64{5, 7}, 1, 100); len(got) != 1 || got[0] != 7 {
		t.Fatalf("one band: %v", got)
	}
}

func TestNonePartitionerSingleFrame(t *testing.T) {
	an, err := NonePartitioner{}.Analyze(make([]geom.Vec2, 9))
	if err != nil {
		t.Fatal(err)
	}
	if an.Kind != KindNone || len(an.Frames) != 1 || an.Frames[0].Count != 9 {
		t.Fatalf("analysis: %+v", an)
	}
	if err := an.Validate(); err != nil {
		t.Fatal(err)
	}
	if !an.Frames[0].Identity() || an.RouteVel(geom.V(99, 99)) != 0 {
		t.Fatal("none frame must be identity and route everything to 0")
	}
}

func TestAnalysisValidateRejectsMalformed(t *testing.T) {
	inf := math.Inf(1)
	for name, an := range map[string]Analysis{
		"empty":            {},
		"dva-no-outlier":   {Kind: KindDVA, Frames: []Frame{{Axis: geom.V(1, 0)}, {Axis: geom.V(0, 1)}}},
		"dva-outlier-mid":  {Kind: KindDVA, Frames: []Frame{{IsOutlier: true}, {Axis: geom.V(1, 0)}}},
		"dva-only-outlier": {Kind: KindDVA, Frames: []Frame{{IsOutlier: true}}},
		"speed-gap":        {Kind: KindSpeed, Frames: []Frame{{SpeedMax: 10}, {SpeedMin: 20, SpeedMax: inf}}},
		"speed-finite-top": {Kind: KindSpeed, Frames: []Frame{{SpeedMax: 10}, {SpeedMin: 10, SpeedMax: 20}}},
		"speed-outlier":    {Kind: KindSpeed, Frames: []Frame{{SpeedMax: inf, IsOutlier: true}}},
		"none-two":         {Kind: KindNone, Frames: []Frame{{SpeedMax: inf}, {SpeedMax: inf}}},
		"unknown-kind":     {Kind: PartitionerKind(9), Frames: []Frame{{}}},
	} {
		if err := an.Validate(); err == nil {
			t.Errorf("%s: malformed analysis validated", name)
		}
	}
}

// TestDriftStructuralMismatchGuard pins the K-mismatch guard: a fresh
// analysis whose kind or partition count differs from the live manager must
// read as maximally drifted — never as a partial match over mismatched
// indices, never a panic.
func TestDriftStructuralMismatchGuard(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewDisk(), 200)
	sample := sfLikeSample(3000, 0, math.Pi/2, 2.0, 0.05, 8)
	m := newManager(t, tprFactory(pool), sample) // K=2 DVA manager

	// Same layout re-analyzed: essentially no drift.
	an, err := Analyze(sample, AnalyzerConfig{K: 2, Cluster: cluster.Options{Seed: 99}})
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Drift(an); d > 0.05 {
		t.Fatalf("re-analysis of the same sample drifts %g", d)
	}
	// K=3 analysis against the K=2 manager: count mismatch -> DriftMax.
	an3, err := Analyze(sample, AnalyzerConfig{K: 3, Cluster: cluster.Options{Seed: 99}})
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Drift(an3); d != DriftMax {
		t.Fatalf("K-mismatch drift = %g, want DriftMax", d)
	}
	// Cross-kind candidates: DriftMax regardless of frame count.
	speedAn, err := SpeedPartitioner{Bands: 3}.Analyze(sample)
	if err != nil {
		t.Fatal(err)
	}
	noneAn, _ := NonePartitioner{}.Analyze(sample)
	for _, other := range []Analysis{speedAn, noneAn} {
		if d := m.Drift(other); d != DriftMax {
			t.Fatalf("%s vs dva drift = %g, want DriftMax", other.Kind, d)
		}
	}

	// Speed-band manager: threshold shifts scale into (0, DriftMax); band
	// count mismatch snaps to DriftMax.
	speed2, err := SpeedPartitioner{Bands: 2}.Analyze(sample)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewManager(speed2, ManagerConfig{}, tprFactory(pool))
	if err != nil {
		t.Fatal(err)
	}
	if d := sm.Drift(speed2); d != 0 {
		t.Fatalf("identical speed analysis drifts %g", d)
	}
	shifted := speed2
	shifted.Frames = append([]Frame(nil), speed2.Frames...)
	shifted.Frames[0].SpeedMax *= 1.5
	shifted.Frames[1].SpeedMin = shifted.Frames[0].SpeedMax
	if d := sm.Drift(shifted); d <= 0 || d >= DriftMax {
		t.Fatalf("shifted threshold drift = %g, want in (0, DriftMax)", d)
	}
	if d := sm.Drift(speedAn); d != DriftMax {
		t.Fatalf("band-count mismatch drift = %g, want DriftMax", d)
	}
	if d := sm.Drift(an); d != DriftMax {
		t.Fatalf("dva vs speed drift = %g, want DriftMax", d)
	}
}

// TestReanalyzeAcrossKinds drives the full objective ladder through one
// manager — DVA -> speed -> none -> DVA — checking object retention and
// oracle-exact queries after every swap, and that a malformed analysis is
// rejected without disturbing the live set.
func TestReanalyzeAcrossKinds(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewDisk(), 500)
	factory := bxFactory(pool)
	sample := sfLikeSample(3000, 0, math.Pi/2, 2.0, 0.05, 17)
	m := newManager(t, factory, sample)

	rng := rand.New(rand.NewSource(41))
	objs := roadObjects(500, rng)
	oracle := model.NewBruteForce()
	for _, o := range objs {
		if err := m.Insert(o); err != nil {
			t.Fatal(err)
		}
		_ = oracle.Insert(o)
	}
	check := func(stage string) {
		t.Helper()
		if m.Len() != oracle.Len() {
			t.Fatalf("%s: len %d vs %d", stage, m.Len(), oracle.Len())
		}
		qrng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 10; trial++ {
			q := model.RangeQuery{
				Kind: model.TimeSlice,
				Rect: geom.RectFromCenter(geom.V(qrng.Float64()*100000, qrng.Float64()*100000), 6000, 6000),
				Now:  0, T0: qrng.Float64() * 80,
			}
			got, err := m.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := oracle.Search(q)
			sameIDs(t, got, want, stage)
		}
	}

	// Malformed analysis: rejected, manager untouched.
	if err := m.Reanalyze(Analysis{Kind: KindSpeed, Frames: []Frame{{SpeedMax: 10}}}, factory); err == nil {
		t.Fatal("malformed analysis accepted")
	}
	if m.Kind() != KindDVA {
		t.Fatal("failed Reanalyze changed the manager kind")
	}
	check("after rejected analysis")

	speedAn, err := SpeedPartitioner{Bands: 2}.Analyze(sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Reanalyze(speedAn, factory); err != nil {
		t.Fatal(err)
	}
	if m.Kind() != KindSpeed || len(m.Partitions()) != 2 {
		t.Fatalf("kind %v, partitions %d after speed swap", m.Kind(), len(m.Partitions()))
	}
	check("speed")

	noneAn, _ := NonePartitioner{}.Analyze(sample)
	if err := m.Reanalyze(noneAn, factory); err != nil {
		t.Fatal(err)
	}
	if m.Kind() != KindNone || len(m.Partitions()) != 1 {
		t.Fatalf("kind %v, partitions %d after none swap", m.Kind(), len(m.Partitions()))
	}
	check("none")

	dvaAn, err := Analyze(sample, AnalyzerConfig{K: 2, Cluster: cluster.Options{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Reanalyze(dvaAn, factory); err != nil {
		t.Fatal(err)
	}
	if m.Kind() != KindDVA || len(m.Partitions()) != 3 {
		t.Fatalf("kind %v, partitions %d after dva swap", m.Kind(), len(m.Partitions()))
	}
	check("back to dva")

	// Updates and deletes still route correctly after the ladder.
	for _, o := range objs[:50] {
		upd := o
		upd.Pos = o.PosAt(5)
		upd.T = 5
		if err := m.Update(o, upd); err != nil {
			t.Fatal(err)
		}
		if err := m.Delete(upd); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != len(objs)-50 {
		t.Fatalf("len %d after post-ladder deletes", m.Len())
	}
}

// TestEstimateCostRanksObjectives pins the chooser's signal: on an axis-
// bundle sample the DVA layout scores best, on an isotropic speed mixture
// the speed bands do, and the unpartitioned baseline never wins either.
func TestEstimateCostRanksObjectives(t *testing.T) {
	queries := []QueryShape{{HalfW: 500, HalfH: 500, Window: 60}}
	costs := func(sample []geom.Vec2) (dva, speed, none float64) {
		dvaAn, err := Analyze(sample, AnalyzerConfig{K: 2, Cluster: cluster.Options{Seed: 5}})
		if err != nil {
			t.Fatal(err)
		}
		speedAn, err := SpeedPartitioner{Bands: 2}.Analyze(sample)
		if err != nil {
			t.Fatal(err)
		}
		noneAn, _ := NonePartitioner{}.Analyze(sample)
		return EstimateCost(dvaAn, sample, queries),
			EstimateCost(speedAn, sample, queries),
			EstimateCost(noneAn, sample, queries)
	}

	axis := sfLikeSample(4000, 0, math.Pi/2, 2.0, 0.03, 3)
	d, s, n := costs(axis)
	if d >= s || d >= n {
		t.Fatalf("axis bundle: dva %g should beat speed %g and none %g", d, s, n)
	}

	mix := speedMixSample(4000, 0.6, 2, 100, 4)
	d, s, n = costs(mix)
	if s >= d || s >= n {
		t.Fatalf("speed mixture: speed %g should beat dva %g and none %g", s, d, n)
	}

	// Degenerate inputs score zero rather than skewing a comparison.
	noneAn, _ := NonePartitioner{}.Analyze(mix)
	if EstimateCost(noneAn, nil, queries) != 0 || EstimateCost(noneAn, mix, nil) != 0 {
		t.Fatal("empty sample or query log must score 0")
	}
}
