// Package core implements the velocity partitioning (VP) technique — the
// contribution of "Boosting Moving Object Indexing through Velocity
// Partitioning" (Nguyen, He, Zhang, Ward; PVLDB 5(9), 2012) — behind a
// pluggable partitioning-objective contract.
//
// The package has the paper's two components (Fig. 9), generalized:
//
//   - the velocity analyzers (partitioner.go, this file): a Partitioner
//     turns a velocity sample into partition Frames. The paper's objective
//     (DVAPartitioner / Analyze) finds the dominant velocity axes (DVAs)
//     with the PCA-guided k-means of Algorithm 2 and derives each
//     partition's outlier threshold tau by minimizing the search-area
//     expansion objective of Section 5.2 (Eq. 10); SpeedPartitioner
//     implements concentric speed bands, and NonePartitioner the
//     unpartitioned baseline. EstimateCost (cost.go) scores any candidate
//     Analysis against a recent query-shape log so an adaptive store can
//     pick the cheapest objective per workload;
//   - the index manager (manager.go): maintains one moving-object index per
//     partition frame — rotated for DVA frames, identity otherwise — and
//     routes inserts, deletes, updates and range queries across them
//     (Algorithms 1 and 3), whatever objective produced the frames.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/analysis/cluster"
	"repro/internal/analysis/pca"
	"repro/internal/geom"
)

// AnalyzerConfig parameterizes the DVA velocity analyzer. Zero values take
// the paper's settings.
type AnalyzerConfig struct {
	// K is the number of DVA partitions. The paper sets 2 for road
	// networks ("most road networks have two dominant traffic directions").
	K int
	// TauBuckets is the resolution of the cumulative |v_perp| histogram
	// used to pick tau (paper: "a velocity histogram containing 100
	// buckets for determining tau").
	TauBuckets int
	// Cluster carries the k-means iteration bounds and seed.
	Cluster cluster.Options
}

func (c AnalyzerConfig) withDefaults() AnalyzerConfig {
	if c.K <= 0 {
		c.K = 2
	}
	if c.TauBuckets <= 0 {
		c.TauBuckets = 100
	}
	return c
}

// Analyze runs Algorithm 1 (VelocityPartitioning) over a sample of velocity
// points: find the DVAs with the PC-distance k-means, derive tau per
// partition, shed outliers, and recompute each DVA over the survivors. The
// result is a KindDVA Analysis whose frames are the K DVA partitions
// followed by the outlier frame.
func Analyze(sample []geom.Vec2, cfg AnalyzerConfig) (Analysis, error) {
	start := time.Now()
	cfg = cfg.withDefaults()
	if len(sample) < cfg.K {
		return Analysis{}, fmt.Errorf("core: sample of %d points cannot form %d partitions", len(sample), cfg.K)
	}
	// Line 2: find the DVA partitions.
	clusters, _, err := cluster.KMeansAxes(sample, cfg.K, cfg.Cluster)
	if err != nil {
		return Analysis{}, err
	}
	out := Analysis{Kind: KindDVA, Frames: make([]Frame, cfg.K), SampleSize: len(sample)}
	for ci, cl := range clusters {
		member := make([]geom.Vec2, 0, cl.Count)
		for _, idx := range cl.Members {
			member = append(member, sample[idx])
		}
		f := Frame{Axis: cl.Axis}
		if len(member) == 0 {
			out.Frames[ci] = f
			continue
		}
		// Line 4: tau from the perpendicular-speed distribution (Sec. 5.2).
		perp := make([]float64, len(member))
		for i, v := range member {
			perp[i] = v.PerpDistToAxis(cl.Axis)
		}
		f.Tau = OptimalTau(perp, cfg.TauBuckets)
		// Line 5: shed the outliers.
		kept := member[:0]
		for i, v := range member {
			if perp[i] <= f.Tau {
				kept = append(kept, v)
			} else {
				f.OutlierCount++
			}
		}
		f.Count = len(kept)
		out.TotalOutliers += f.OutlierCount
		// Line 6: recompute the DVA over the survivors for a more precise
		// axis (and the dominance diagnostic).
		if len(kept) > 0 {
			if res, err := pca.Analyze(kept, pca.Uncentered); err == nil {
				f.Axis = res.PC1
				_, f.Dominance = res.Axis()
			}
		}
		out.Frames[ci] = f
	}
	out.Frames = append(out.Frames, Frame{IsOutlier: true, Count: out.TotalOutliers})
	out.Elapsed = time.Since(start)
	return out, nil
}

// OptimalTau picks the outlier threshold for one DVA partition by
// minimizing Eq. 10 of the paper, n_d(tau) * (v_yd(tau) - v_ymax), over an
// equal-width cumulative histogram of the partition's perpendicular speeds
// (v_yd(tau) = tau itself: the maximum perpendicular speed retained).
//
// Intuition: retaining more objects (larger n_d) is good only while the
// retained perpendicular speed stays well below the partition-wide maximum;
// the product trades the DVA partition's own expansion rate against pushing
// everything to the 2-D outlier partition.
func OptimalTau(perpSpeeds []float64, buckets int) float64 {
	if len(perpSpeeds) == 0 {
		return 0
	}
	if buckets <= 0 {
		buckets = 100
	}
	vymax := 0.0
	for _, v := range perpSpeeds {
		if v > vymax {
			vymax = v
		}
	}
	if vymax == 0 {
		// Perfectly 1-D partition: nothing to shed.
		return 0
	}
	// Cumulative histogram over [0, vymax].
	counts := make([]int, buckets)
	for _, v := range perpSpeeds {
		b := int(v / vymax * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	bestTau := vymax
	bestCost := math.Inf(1)
	cum := 0
	for b := 0; b < buckets; b++ {
		cum += counts[b]
		tau := vymax * float64(b+1) / float64(buckets)
		cost := float64(cum) * (tau - vymax)
		if cost < bestCost {
			bestCost = cost
			bestTau = tau
		}
	}
	return bestTau
}

// TauCost evaluates the Eq. 10 objective for a specific tau over the given
// perpendicular speeds; exposed for the experiments that sweep fixed tau
// values (Fig. 17) and for property tests against OptimalTau.
func TauCost(perpSpeeds []float64, tau float64) float64 {
	vymax := 0.0
	for _, v := range perpSpeeds {
		if v > vymax {
			vymax = v
		}
	}
	nd := 0
	for _, v := range perpSpeeds {
		if v <= tau {
			nd++
		}
	}
	return float64(nd) * (tau - vymax)
}

// tauHistogram is the online |v_perp| histogram kept per DVA partition so
// tau can be recomputed as the speed distribution drifts (Section 5.5:
// "we handle this situation by continuously updating the histogram used to
// determine tau, and then periodically computing an updated tau").
//
// The histogram range is fixed at creation (from the analysis sample's
// maximum, padded); values beyond it saturate into the last bucket, which
// only makes tau conservative.
type tauHistogram struct {
	limit  float64
	counts []int
	total  int
	maxVal float64
}

func newTauHistogram(limit float64, buckets int) *tauHistogram {
	if limit <= 0 {
		limit = 1
	}
	if buckets <= 0 {
		buckets = 100
	}
	return &tauHistogram{limit: limit, counts: make([]int, buckets)}
}

func (h *tauHistogram) Add(v float64) {
	b := int(v / h.limit * float64(len(h.counts)))
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	if b < 0 {
		b = 0
	}
	h.counts[b]++
	h.total++
	if v > h.maxVal {
		h.maxVal = v
	}
}

// Optimal recomputes tau from the accumulated distribution (same objective
// as OptimalTau, evaluated on bucket upper edges).
func (h *tauHistogram) Optimal() float64 {
	if h.total == 0 {
		return 0
	}
	vymax := math.Min(h.maxVal, h.limit)
	if vymax == 0 {
		return 0
	}
	bestTau := vymax
	bestCost := math.Inf(1)
	cum := 0
	for b := range h.counts {
		cum += h.counts[b]
		tau := h.limit * float64(b+1) / float64(len(h.counts))
		if tau > vymax {
			tau = vymax
		}
		cost := float64(cum) * (tau - vymax)
		if cost < bestCost {
			bestCost = cost
			bestTau = tau
		}
	}
	return bestTau
}
