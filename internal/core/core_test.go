package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/analysis/cluster"
	"repro/internal/bxtree"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/tprtree"
)

// sfLikeSample synthesizes velocity points with two DVAs plus outliers,
// mirroring the San Francisco distribution of Fig. 1(b).
func sfLikeSample(n int, ang1, ang2, jitter, outlierFrac float64, seed int64) []geom.Vec2 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec2, n)
	for i := range pts {
		if rng.Float64() < outlierFrac {
			pts[i] = geom.V(rng.Float64()*200-100, rng.Float64()*200-100)
			continue
		}
		ang := ang1
		if rng.Intn(2) == 1 {
			ang = ang2
		}
		d := geom.V(math.Cos(ang), math.Sin(ang))
		speed := 20 + rng.Float64()*80
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		pts[i] = d.Scale(speed).Add(d.Perp().Scale(rng.NormFloat64() * jitter))
	}
	return pts
}

func axisAngleDiff(a, b geom.Vec2) float64 {
	cos := math.Abs(a.Normalize().Dot(b.Normalize()))
	if cos > 1 {
		cos = 1
	}
	return math.Acos(cos)
}

func TestAnalyzeFindsDVAsAndTau(t *testing.T) {
	sample := sfLikeSample(10000, 0, math.Pi/2, 2.0, 0.05, 1)
	an, err := Analyze(sample, AnalyzerConfig{K: 2, Cluster: cluster.Options{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if an.Kind != KindDVA || len(an.Frames) != 3 || an.NumVelocityFrames() != 2 || an.SampleSize != 10000 {
		t.Fatalf("analysis: %+v", an)
	}
	if !an.Frames[len(an.Frames)-1].IsOutlier {
		t.Fatal("last frame should be the outlier frame")
	}
	if err := an.Validate(); err != nil {
		t.Fatalf("analysis invalid: %v", err)
	}
	for _, want := range []geom.Vec2{{X: 1, Y: 0}, {X: 0, Y: 1}} {
		found := false
		for _, d := range an.Frames {
			if d.IsOutlier {
				continue
			}
			if axisAngleDiff(d.Axis, want) < 0.05 {
				found = true
				// Tau should be a few jitter sigmas: > 1, well below the
				// outlier speeds (~100).
				if d.Tau < 1 || d.Tau > 40 {
					t.Fatalf("tau = %g out of plausible band", d.Tau)
				}
				if d.Dominance < 0.99 {
					t.Fatalf("post-cleanup dominance %g too low", d.Dominance)
				}
			}
		}
		if !found {
			t.Fatalf("axis %v not found", want)
		}
	}
	if an.TotalOutliers == 0 {
		t.Fatal("expected some outliers with 5% uniform noise")
	}
	if an.TotalOutliers > an.SampleSize/3 {
		t.Fatalf("too many outliers: %d", an.TotalOutliers)
	}
	if an.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze([]geom.Vec2{{X: 1}}, AnalyzerConfig{K: 2}); err == nil {
		t.Fatal("tiny sample accepted")
	}
}

func TestOptimalTauMatchesExhaustiveSearch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(300)
		perp := make([]float64, n)
		for i := range perp {
			// Mixture: mostly small, some large.
			if rng.Float64() < 0.8 {
				perp[i] = math.Abs(rng.NormFloat64()) * 3
			} else {
				perp[i] = rng.Float64() * 100
			}
		}
		const buckets = 100
		got := OptimalTau(perp, buckets)
		gotCost := TauCost(perp, got)
		// Exhaustive sweep over the same candidate set.
		vymax := 0.0
		for _, v := range perp {
			if v > vymax {
				vymax = v
			}
		}
		best := math.Inf(1)
		for b := 1; b <= buckets; b++ {
			c := TauCost(perp, vymax*float64(b)/buckets)
			if c < best {
				best = c
			}
		}
		return gotCost <= best+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalTauEdgeCases(t *testing.T) {
	if got := OptimalTau(nil, 100); got != 0 {
		t.Fatalf("empty input tau = %g", got)
	}
	if got := OptimalTau([]float64{0, 0, 0}, 100); got != 0 {
		t.Fatalf("all-zero tau = %g", got)
	}
	// Bimodal: many near zero, few at 100 -> tau should cut below 100.
	perp := make([]float64, 0, 1000)
	for i := 0; i < 950; i++ {
		perp = append(perp, float64(i%5))
	}
	for i := 0; i < 50; i++ {
		perp = append(perp, 100)
	}
	tau := OptimalTau(perp, 100)
	if tau >= 100 || tau < 4 {
		t.Fatalf("bimodal tau = %g, want in [4, 100)", tau)
	}
}

func TestTauHistogramTracksDistribution(t *testing.T) {
	h := newTauHistogram(50, 100)
	rng := rand.New(rand.NewSource(2))
	var vals []float64
	for i := 0; i < 5000; i++ {
		v := math.Abs(rng.NormFloat64()) * 2
		if rng.Float64() < 0.1 {
			v = rng.Float64() * 45
		}
		vals = append(vals, v)
		h.Add(v)
	}
	got := h.Optimal()
	want := OptimalTau(vals, 100)
	// The histogram discretizes over a different range; allow slack.
	if math.Abs(got-want) > want/2+2 {
		t.Fatalf("online tau %g far from batch tau %g", got, want)
	}
	// Saturation above the limit must not panic and stays conservative.
	h.Add(1e9)
	if h.Optimal() <= 0 {
		t.Fatal("tau collapsed after saturating value")
	}
}

// --- manager integration -------------------------------------------------------

// factories for both base index types over one shared pool.
func tprFactory(pool *storage.BufferPool) IndexFactory {
	return func(spec PartitionSpec) (model.Index, error) {
		tr, err := tprtree.NewTree(pool, tprtree.Config{})
		if err != nil {
			return nil, err
		}
		tr.SetName("tpr*:" + spec.Name)
		return tr, nil
	}
}

func bxFactory(pool *storage.BufferPool) IndexFactory {
	return func(spec PartitionSpec) (model.Index, error) {
		tr, err := bxtree.NewTree(pool, bxtree.Config{Domain: spec.Domain})
		if err != nil {
			return nil, err
		}
		tr.SetName("bx:" + spec.Name)
		return tr, nil
	}
}

// roadObjects synthesizes objects moving along two road axes plus outliers.
func roadObjects(n int, rng *rand.Rand) []model.Object {
	objs := make([]model.Object, n)
	for i := range objs {
		var vel geom.Vec2
		switch {
		case rng.Float64() < 0.05: // outlier
			vel = geom.V(rng.Float64()*200-100, rng.Float64()*200-100)
		case rng.Intn(2) == 0:
			s := 20 + rng.Float64()*80
			if rng.Intn(2) == 0 {
				s = -s
			}
			vel = geom.V(s, rng.NormFloat64()*2)
		default:
			s := 20 + rng.Float64()*80
			if rng.Intn(2) == 0 {
				s = -s
			}
			vel = geom.V(rng.NormFloat64()*2, s)
		}
		objs[i] = model.Object{
			ID:  model.ObjectID(i + 1),
			Pos: geom.V(rng.Float64()*100000, rng.Float64()*100000),
			Vel: vel,
			T:   0,
		}
	}
	return objs
}

func newManager(t *testing.T, factory IndexFactory, sample []geom.Vec2) *Manager {
	t.Helper()
	an, err := Analyze(sample, AnalyzerConfig{K: 2, Cluster: cluster.Options{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(an, ManagerConfig{}, factory)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sameIDs(t *testing.T, got, want []model.ObjectID, context string) {
	t.Helper()
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", context, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d: %d vs %d", context, i, got[i], want[i])
		}
	}
}

func TestManagerAgainstOracleBothBases(t *testing.T) {
	for name, mk := range map[string]func(*storage.BufferPool) IndexFactory{
		"tpr": tprFactory, "bx": bxFactory,
	} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			pool := storage.NewBufferPool(storage.NewDisk(), 500)
			objs := roadObjects(2500, rng)
			sample := make([]geom.Vec2, len(objs))
			for i, o := range objs {
				sample[i] = o.Vel
			}
			m := newManager(t, mk(pool), sample)
			oracle := model.NewBruteForce()
			for _, o := range objs {
				if err := m.Insert(o); err != nil {
					t.Fatal(err)
				}
				_ = oracle.Insert(o)
			}
			if m.Len() != oracle.Len() {
				t.Fatalf("len %d vs %d", m.Len(), oracle.Len())
			}
			// Partition sizes: both DVA partitions should hold real shares.
			parts := m.Partitions()
			if len(parts) != 3 {
				t.Fatalf("partitions = %d", len(parts))
			}
			for _, p := range parts[:2] {
				if p.Size < len(objs)/5 {
					t.Fatalf("partition %s only has %d objects", p.Spec.Name, p.Size)
				}
			}
			for trial := 0; trial < 40; trial++ {
				c := geom.V(rng.Float64()*100000, rng.Float64()*100000)
				t0 := rng.Float64() * 60
				t1 := t0 + rng.Float64()*60
				queries := []model.RangeQuery{
					{Kind: model.TimeSlice, Rect: geom.RectFromCenter(c, 3000, 3000), Now: 0, T0: t0},
					{Kind: model.TimeSlice, Circle: geom.Circle{C: c, R: 2500}, Now: 0, T0: t0},
					{Kind: model.TimeInterval, Rect: geom.RectFromCenter(c, 2000, 2000), Now: 0, T0: t0, T1: t1},
					{Kind: model.MovingRange, Rect: geom.RectFromCenter(c, 2000, 2000),
						Vel: geom.V(rng.Float64()*100-50, rng.Float64()*100-50), Now: 0, T0: t0, T1: t1},
				}
				for _, q := range queries {
					got, err := m.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					want, _ := oracle.Search(q)
					sameIDs(t, got, want, name+" "+q.Kind.String())
				}
			}
		})
	}
}

func TestManagerUpdateMigratesPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pool := storage.NewBufferPool(storage.NewDisk(), 500)
	sample := sfLikeSample(5000, 0, math.Pi/2, 2.0, 0.03, 3)
	m := newManager(t, tprFactory(pool), sample)

	// Insert an x-mover; it must land in the x DVA partition.
	o := model.Object{ID: 1, Pos: geom.V(5000, 5000), Vel: geom.V(80, 0.5), T: 0}
	if err := m.Insert(o); err != nil {
		t.Fatal(err)
	}
	partOf := func(id model.ObjectID) int {
		m.mu.RLock()
		defer m.mu.RUnlock()
		return m.objs[id].part
	}
	p0 := partOf(1)
	if m.pars[p0].spec.IsOutlier {
		t.Fatal("x-mover landed in outlier partition")
	}
	// Turn the object 90 degrees: it must migrate to the other DVA.
	turned := model.Object{ID: 1, Pos: o.PosAt(30), Vel: geom.V(0.5, 80), T: 30}
	if err := m.Update(o, turned); err != nil {
		t.Fatal(err)
	}
	p1 := partOf(1)
	if p1 == p0 {
		t.Fatal("update did not migrate between DVA partitions")
	}
	if m.pars[p1].spec.IsOutlier {
		t.Fatal("y-mover landed in outlier partition")
	}
	// Turn it diagonal: should land in the outlier partition.
	diag := model.Object{ID: 1, Pos: turned.PosAt(60), Vel: geom.V(60, 60), T: 60}
	if err := m.Update(turned, diag); err != nil {
		t.Fatal(err)
	}
	if !m.pars[partOf(1)].spec.IsOutlier {
		t.Fatal("diagonal mover not routed to outlier partition")
	}
	// And the object remains queryable through it all.
	ids, err := m.Search(model.RangeQuery{
		Kind: model.TimeSlice,
		Rect: geom.RectFromCenter(diag.PosAt(70), 100, 100),
		Now:  60, T0: 70,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("object lost after migrations: %v", ids)
	}
	_ = rng
}

func TestManagerDeleteAndErrors(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewDisk(), 200)
	sample := sfLikeSample(2000, 0, math.Pi/2, 2.0, 0, 4)
	m := newManager(t, bxFactory(pool), sample)
	o := model.Object{ID: 7, Pos: geom.V(100, 100), Vel: geom.V(50, 0), T: 0}
	if err := m.Delete(o); !errors.Is(err, model.ErrNotFound) {
		t.Fatalf("delete absent: %v", err)
	}
	if err := m.Insert(o); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(o); !errors.Is(err, model.ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if err := m.Update(o, model.Object{ID: 8}); err == nil {
		t.Fatal("id-changing update accepted")
	}
	if err := m.Delete(o); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatal("len after delete")
	}
	if err := m.UpdateByID(o); !errors.Is(err, model.ErrNotFound) {
		t.Fatalf("UpdateByID absent: %v", err)
	}
}

func TestManagerTauOverrideAndRefresh(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewDisk(), 200)
	sample := sfLikeSample(3000, 0, math.Pi/2, 2.0, 0.05, 5)
	an, err := Analyze(sample, AnalyzerConfig{K: 2, Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(an, ManagerConfig{TauRefreshInterval: 500}, tprFactory(pool))
	if err != nil {
		t.Fatal(err)
	}
	// With tau forced to 0, everything lands in the outlier partition.
	m.SetTau(0, 0)
	m.SetTau(1, 0)
	rng := rand.New(rand.NewSource(6))
	for i, o := range roadObjects(400, rng) {
		o.ID = model.ObjectID(i + 1)
		// Give every object some jitter so perp distance > 0.
		o.Vel = o.Vel.Add(geom.V(0.001, 0.001))
		if err := m.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	parts := m.Partitions()
	outlier := parts[len(parts)-1]
	if outlier.Size != 400 {
		t.Fatalf("tau=0 should route all to outlier, got %d there", outlier.Size)
	}
	// Keep inserting past the refresh interval: tau recomputes from the
	// online histograms and objects start landing in DVA partitions again.
	for i, o := range roadObjects(400, rng) {
		o.ID = model.ObjectID(1000 + i)
		if err := m.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if m.Tau(0) == 0 && m.Tau(1) == 0 {
		t.Fatal("tau refresh never fired")
	}
	parts = m.Partitions()
	if parts[0].Size+parts[1].Size == 0 {
		t.Fatal("no objects in DVA partitions after tau refresh")
	}
}

func TestManagerVPBeatsUnpartitionedOnSkewedData(t *testing.T) {
	// The headline claim, in miniature: on two-axis data, query I/O through
	// the VP-partitioned TPR* should be lower than through the
	// unpartitioned TPR*.
	rng := rand.New(rand.NewSource(12))
	objs := roadObjects(8000, rng)
	sample := make([]geom.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}

	queryIO := func(idx model.Index, pool *storage.BufferPool) int64 {
		qrng := rand.New(rand.NewSource(77))
		before := pool.Stats().Misses
		for i := 0; i < 60; i++ {
			c := geom.V(qrng.Float64()*100000, qrng.Float64()*100000)
			_, err := idx.Search(model.RangeQuery{
				Kind: model.TimeSlice,
				Circle: geom.Circle{
					C: c, R: 500,
				},
				Now: 0, T0: 60,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return pool.Stats().Misses - before
	}

	poolU := storage.NewBufferPool(storage.NewDisk(), 50)
	flat, err := tprtree.NewTree(poolU, tprtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := flat.Insert(o); err != nil {
			t.Fatal(err)
		}
	}

	poolP := storage.NewBufferPool(storage.NewDisk(), 50)
	m := newManager(t, tprFactory(poolP), sample)
	for _, o := range objs {
		if err := m.Insert(o); err != nil {
			t.Fatal(err)
		}
	}

	flatIO := queryIO(flat, poolU)
	vpIO := queryIO(m, poolP)
	t.Logf("unpartitioned TPR* I/O: %d, VP TPR* I/O: %d", flatIO, vpIO)
	if vpIO >= flatIO {
		t.Fatalf("VP (%d) should beat unpartitioned (%d) on skewed data", vpIO, flatIO)
	}
}

func TestManagerConfigDefaults(t *testing.T) {
	c := ManagerConfig{}.withDefaults()
	if c.Domain.Area() == 0 || c.TauBuckets != 100 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestManagerConcurrentSearchDuringUpdates(t *testing.T) {
	// Section 5.3 raises the locking concern: a query racing an update
	// that migrates an object between partitions must never observe the
	// object as missing. Hammer the manager with concurrent searches and
	// partition-migrating updates under the race detector.
	pool := storage.NewBufferPool(storage.NewDisk(), 200)
	sample := sfLikeSample(3000, 0, math.Pi/2, 2.0, 0.02, 21)
	m := newManager(t, tprFactory(pool), sample)

	const nObjs = 200
	objs := make([]model.Object, nObjs)
	for i := range objs {
		objs[i] = model.Object{
			ID:  model.ObjectID(i + 1),
			Pos: geom.V(float64(i)*400, float64(i)*400),
			Vel: geom.V(60, 0.1),
			T:   0,
		}
		if err := m.Insert(objs[i]); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 4)

	// Updater: repeatedly rotate every object's velocity by 90 degrees so
	// each update migrates it between the two DVA partitions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur := append([]model.Object(nil), objs...)
		now := 0.0
		for round := 0; round < 20; round++ {
			now += 5
			for i := range cur {
				upd := cur[i]
				upd.Pos = upd.PosAt(now)
				upd.Vel = geom.V(-upd.Vel.Y, upd.Vel.X) // 90-degree turn
				upd.T = now
				if err := m.Update(cur[i], upd); err != nil {
					errCh <- err
					return
				}
				cur[i] = upd
			}
		}
		close(stop)
	}()

	// Searchers: every object must be found by a full-domain query at all
	// times (updates hold the manager lock across the whole migration).
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Whole-domain query: at t=1e4 every object (speed <= ~100)
				// is within +-1.2e6 of its reference position.
				ids, err := m.Search(model.RangeQuery{
					Kind: model.TimeSlice,
					Rect: geom.R(-5e6, -5e6, 5e6, 5e6),
					Now:  1e4, T0: 1e4,
				})
				if err != nil {
					errCh <- err
					return
				}
				if len(ids) != nObjs {
					errCh <- fmt.Errorf("query observed %d of %d objects", len(ids), nObjs)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestReanalyzeRebuildsPartitions(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewDisk(), 500)
	// Start with axes at 0/90 degrees.
	m := newManager(t, tprFactory(pool), sfLikeSample(3000, 0, math.Pi/2, 2.0, 0.02, 31))
	rng := rand.New(rand.NewSource(13))
	objs := make([]model.Object, 400)
	for i := range objs {
		// Traffic actually flows along +-45 degrees.
		ang := math.Pi / 4
		if i%2 == 0 {
			ang = -math.Pi / 4
		}
		d := geom.V(math.Cos(ang), math.Sin(ang))
		speed := 30 + rng.Float64()*60
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		objs[i] = model.Object{
			ID:  model.ObjectID(i + 1),
			Pos: geom.V(rng.Float64()*100000, rng.Float64()*100000),
			Vel: d.Scale(speed).Add(d.Perp().Scale(rng.NormFloat64())),
			T:   0,
		}
		if err := m.Insert(objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Most diagonal movers land in the outlier partition of the 0/90 grid.
	before := m.Partitions()
	outlierBefore := before[len(before)-1].Size

	// Fresh analysis over the actual (diagonal) traffic.
	vels := make([]geom.Vec2, len(objs))
	for i, o := range objs {
		vels[i] = o.Vel
	}
	an, err := Analyze(vels, AnalyzerConfig{K: 2, Cluster: cluster.Options{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if drift := m.Drift(an); drift < math.Pi/8 {
		t.Fatalf("expected large axis drift, got %g rad", drift)
	}
	if err := m.Reanalyze(an, tprFactory(pool)); err != nil {
		t.Fatal(err)
	}
	after := m.Partitions()
	outlierAfter := after[len(after)-1].Size
	if outlierAfter >= outlierBefore {
		t.Fatalf("rebuild should drain the outlier partition: %d -> %d",
			outlierBefore, outlierAfter)
	}
	if after[0].Size+after[1].Size+outlierAfter != len(objs) {
		t.Fatal("objects lost in rebuild")
	}
	// Queries still correct after the rebuild.
	oracle := model.NewBruteForce()
	for _, o := range objs {
		_ = oracle.Insert(o)
	}
	for trial := 0; trial < 15; trial++ {
		q := model.RangeQuery{
			Kind: model.TimeSlice,
			Rect: geom.RectFromCenter(geom.V(rng.Float64()*100000, rng.Float64()*100000), 8000, 8000),
			Now:  0, T0: rng.Float64() * 100,
		}
		got, err := m.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := oracle.Search(q)
		sameIDs(t, got, want, "post-rebuild query")
	}
	// Updates keep working against the new partitions.
	upd := objs[0]
	upd.Pos = upd.PosAt(10)
	upd.T = 10
	if err := m.Update(objs[0], upd); err != nil {
		t.Fatal(err)
	}
}

// TestManagerReportUpserts covers the ID-keyed hooks the Store facade is
// built on: Report (insert-or-update), ReportBatch (single lock, one
// tau-refresh pass) and InsertBulk (bootstrap migration load).
func TestManagerReportUpserts(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewDisk(), 200)
	sample := sfLikeSample(2000, 0, math.Pi/2, 2.0, 0, 4)
	m := newManager(t, bxFactory(pool), sample)

	// Report on a fresh ID inserts.
	o := model.Object{ID: 1, Pos: geom.V(1000, 1000), Vel: geom.V(40, 0.5), T: 0}
	if err := m.Report(o); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("len after first report: %d", m.Len())
	}
	// Report on a known ID replaces, migrating partitions with the velocity.
	turned := model.Object{ID: 1, Pos: geom.V(1400, 1005), Vel: geom.V(0.5, 40), T: 10}
	if err := m.Report(turned); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("len after upsert: %d", m.Len())
	}
	if got, _ := m.Get(1); got != turned {
		t.Fatalf("record after upsert: %+v", got)
	}

	// Batch: a mix of new IDs and upserts of ID 1, applied atomically under
	// one lock acquisition.
	batch := []model.Object{
		{ID: 2, Pos: geom.V(2000, 2000), Vel: geom.V(-35, 0), T: 10},
		{ID: 1, Pos: geom.V(1400, 1400), Vel: geom.V(38, 1), T: 12},
		{ID: 3, Pos: geom.V(3000, 3000), Vel: geom.V(0, -42), T: 12},
	}
	applied, err := m.ReportBatch(batch)
	if err != nil || applied != len(batch) {
		t.Fatalf("batch: applied %d err %v", applied, err)
	}
	if m.Len() != 3 {
		t.Fatalf("len after batch: %d", m.Len())
	}
	ids, err := m.Search(model.RangeQuery{
		Kind: model.TimeSlice, Rect: geom.R(0, 0, 10000, 10000), Now: 12, T0: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("search after batch: %v", ids)
	}

	// InsertBulk rejects duplicates with the typed sentinel.
	if err := m.InsertBulk([]model.Object{{ID: 9, Vel: geom.V(30, 0)}, {ID: 2}}); !errors.Is(err, model.ErrDuplicate) {
		t.Fatalf("bulk duplicate: %v", err)
	}
	// ...but loads disjoint populations fine.
	fresh := make([]model.Object, 50)
	for i := range fresh {
		fresh[i] = model.Object{
			ID:  model.ObjectID(100 + i),
			Pos: geom.V(float64(i)*100, float64(i)*100),
			Vel: geom.V(45, float64(i%3)),
			T:   12,
		}
	}
	if err := m.InsertBulk(fresh); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3+1+50 {
		t.Fatalf("len after bulk: %d", m.Len())
	}
}

// failingIndex wraps an index and fails every insert after a budget is
// exhausted, to force a mid-migration Reanalyze failure.
type failingIndex struct {
	model.Index
	budget *int
}

func (f failingIndex) Insert(o model.Object) error {
	if *f.budget <= 0 {
		return fmt.Errorf("failingIndex: insert budget exhausted")
	}
	*f.budget--
	return f.Index.Insert(o)
}

// TestReanalyzeFailureLeavesManagerIntact pins the rollback contract: a
// Reanalyze that fails mid-migration must leave BOTH the partition set and
// the lookup table exactly as they were. (A previous version restored the
// partitions but kept the half-rerouted table entries, so every later
// Update/Delete of a rerouted object targeted the wrong partition.)
func TestReanalyzeFailureLeavesManagerIntact(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewDisk(), 500)
	m := newManager(t, tprFactory(pool), sfLikeSample(2000, 0, math.Pi/2, 2.0, 0.02, 7))
	rng := rand.New(rand.NewSource(23))
	objs := roadObjects(300, rng)
	for _, o := range objs {
		if err := m.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Partitions()

	// Fresh analysis over rotated traffic, but a factory whose indexes die
	// partway through the re-routing migration.
	vels := make([]geom.Vec2, len(objs))
	for i, o := range objs {
		d := geom.V(math.Cos(math.Pi/4), math.Sin(math.Pi/4))
		vels[i] = d.Scale(o.Vel.Norm())
	}
	an, err := Analyze(vels, AnalyzerConfig{K: 2, Cluster: cluster.Options{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	budget := len(objs) / 2 // enough to reroute half, then fail
	inner := tprFactory(pool)
	factory := func(spec PartitionSpec) (model.Index, error) {
		idx, err := inner(spec)
		if err != nil {
			return nil, err
		}
		return failingIndex{Index: idx, budget: &budget}, nil
	}
	if err := m.Reanalyze(an, factory); err == nil {
		t.Fatal("expected mid-migration Reanalyze failure")
	}

	// Partition set restored byte-for-byte (axes, taus, sizes).
	after := m.Partitions()
	if len(after) != len(before) {
		t.Fatalf("partition count changed: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if after[i].Spec.Axis != before[i].Spec.Axis || after[i].Tau != before[i].Tau ||
			after[i].Size != before[i].Size {
			t.Fatalf("partition %d changed across failed rebuild:\n  %+v\n  %+v",
				i, before[i], after[i])
		}
	}
	// Every object is still updatable and deletable — the table must still
	// point at the partition that actually holds each record.
	for _, o := range objs {
		upd := o
		upd.Pos = o.PosAt(5)
		upd.T = 5
		if err := m.Update(o, upd); err != nil {
			t.Fatalf("update of %d after failed rebuild: %v", o.ID, err)
		}
	}
	for _, o := range objs {
		if err := m.Delete(o); err != nil {
			t.Fatalf("delete of %d after failed rebuild: %v", o.ID, err)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("len %d after deleting everything", m.Len())
	}
}

// TestManagerObjectsSnapshot covers the migration surface used by the
// Store's repartition swap.
func TestManagerObjectsSnapshot(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewDisk(), 200)
	m := newManager(t, bxFactory(pool), sfLikeSample(1000, 0, math.Pi/2, 2.0, 0, 4))
	rng := rand.New(rand.NewSource(3))
	objs := roadObjects(120, rng)
	if err := m.InsertBulk(objs); err != nil {
		t.Fatal(err)
	}
	snap := m.Objects()
	if len(snap) != len(objs) {
		t.Fatalf("snapshot %d objects, want %d", len(snap), len(objs))
	}
	byID := make(map[model.ObjectID]model.Object, len(snap))
	for _, o := range snap {
		byID[o.ID] = o
	}
	for _, o := range objs {
		if got, ok := byID[o.ID]; !ok || got != o {
			t.Fatalf("object %d: snapshot %+v, want %+v", o.ID, got, o)
		}
	}
}
