package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Analysis wire codec, used by the durable Store: partition-swap WAL records
// and checkpoint files persist the Analysis so recovery can rebuild the
// exact same velocity partitions without re-running the analyzer (whose
// k-means would otherwise need the original sample). Elapsed is diagnostic
// only and is not persisted.

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// EncodeAnalysis serializes an Analysis (fixed-width little-endian).
func EncodeAnalysis(an Analysis) []byte {
	b := make([]byte, 0, 24+len(an.DVAs)*48)
	b = binary.LittleEndian.AppendUint64(b, uint64(an.SampleSize))
	b = binary.LittleEndian.AppendUint64(b, uint64(an.TotalOutliers))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(an.DVAs)))
	for _, d := range an.DVAs {
		b = appendF64(b, d.Axis.X)
		b = appendF64(b, d.Axis.Y)
		b = appendF64(b, d.Tau)
		b = binary.LittleEndian.AppendUint64(b, uint64(d.Count))
		b = binary.LittleEndian.AppendUint64(b, uint64(d.OutlierCount))
		b = appendF64(b, d.Dominance)
	}
	return b
}

// DecodeAnalysis reverses EncodeAnalysis.
func DecodeAnalysis(p []byte) (Analysis, error) {
	const header = 24
	const dvaBytes = 48
	if len(p) < header {
		return Analysis{}, fmt.Errorf("core: truncated analysis")
	}
	var an Analysis
	an.SampleSize = int(binary.LittleEndian.Uint64(p))
	an.TotalOutliers = int(binary.LittleEndian.Uint64(p[8:]))
	n := binary.LittleEndian.Uint64(p[16:])
	if uint64(len(p)-header) != n*dvaBytes {
		return Analysis{}, fmt.Errorf("core: analysis length mismatch")
	}
	p = p[header:]
	an.DVAs = make([]DVA, n)
	for i := range an.DVAs {
		d := &an.DVAs[i]
		d.Axis.X = math.Float64frombits(binary.LittleEndian.Uint64(p))
		d.Axis.Y = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		d.Tau = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
		d.Count = int(binary.LittleEndian.Uint64(p[24:]))
		d.OutlierCount = int(binary.LittleEndian.Uint64(p[32:]))
		d.Dominance = math.Float64frombits(binary.LittleEndian.Uint64(p[40:]))
		p = p[dvaBytes:]
	}
	return an, nil
}
