package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Analysis wire codec, used by the durable Store: partition-swap WAL records
// and checkpoint files persist the Analysis so recovery can rebuild the
// exact same velocity partitions without re-running the partitioner (whose
// k-means would otherwise need the original sample). Elapsed is diagnostic
// only and is not persisted.
//
// Two formats coexist:
//
//   - v2 (written by EncodeAnalysis): a sentinel + version header, the
//     partitioner kind, and the full Frame set, so checkpoints carry any
//     objective.
//   - legacy (pre-Partitioner checkpoints): no header; SampleSize leads,
//     followed by the DVA-only partition records. DecodeAnalysis detects it
//     by the absence of the sentinel — a legacy encoding's first word is
//     SampleSize, which can never be 2^64-1 — and decodes it as a KindDVA
//     analysis, synthesizing the outlier frame the old format left
//     implicit.

// encSentinel marks the versioned format. A legacy encoding starts with
// SampleSize (an int, so < 2^63); the all-ones word is unreachable there.
const encSentinel = ^uint64(0)

// encVersion is the current format version.
const encVersion = 2

const (
	v2Header     = 8 + 8 + 1 + 8 + 8 + 8 // sentinel, version, kind, sample, outliers, nframes
	v2FrameBytes = 6*8 + 2*8 + 1         // axis x/y, tau, speed min/max, dominance, count, outlierCount, flags

	legacyHeader     = 24
	legacyFrameBytes = 48
)

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// EncodeAnalysis serializes an Analysis in the versioned format
// (fixed-width little-endian).
func EncodeAnalysis(an Analysis) []byte {
	b := make([]byte, 0, v2Header+len(an.Frames)*v2FrameBytes)
	b = binary.LittleEndian.AppendUint64(b, encSentinel)
	b = binary.LittleEndian.AppendUint64(b, encVersion)
	b = append(b, byte(an.Kind))
	b = binary.LittleEndian.AppendUint64(b, uint64(an.SampleSize))
	b = binary.LittleEndian.AppendUint64(b, uint64(an.TotalOutliers))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(an.Frames)))
	for _, f := range an.Frames {
		b = appendF64(b, f.Axis.X)
		b = appendF64(b, f.Axis.Y)
		b = appendF64(b, f.Tau)
		b = appendF64(b, f.SpeedMin)
		b = appendF64(b, f.SpeedMax)
		b = appendF64(b, f.Dominance)
		b = binary.LittleEndian.AppendUint64(b, uint64(f.Count))
		b = binary.LittleEndian.AppendUint64(b, uint64(f.OutlierCount))
		var flags byte
		if f.IsOutlier {
			flags |= 1
		}
		b = append(b, flags)
	}
	return b
}

// DecodeAnalysis reverses EncodeAnalysis, accepting both the versioned
// format and the legacy pre-Partitioner format still present in old
// checkpoints and WAL swap records.
func DecodeAnalysis(p []byte) (Analysis, error) {
	if len(p) >= 8 && binary.LittleEndian.Uint64(p) == encSentinel {
		return decodeAnalysisV2(p)
	}
	return decodeAnalysisLegacy(p)
}

func decodeAnalysisV2(p []byte) (Analysis, error) {
	if len(p) < v2Header {
		return Analysis{}, fmt.Errorf("core: truncated analysis")
	}
	if v := binary.LittleEndian.Uint64(p[8:]); v != encVersion {
		return Analysis{}, fmt.Errorf("core: unknown analysis format version %d", v)
	}
	var an Analysis
	an.Kind = PartitionerKind(p[16])
	an.SampleSize = int(binary.LittleEndian.Uint64(p[17:]))
	an.TotalOutliers = int(binary.LittleEndian.Uint64(p[25:]))
	n := binary.LittleEndian.Uint64(p[33:])
	if uint64(len(p)-v2Header) != n*v2FrameBytes {
		return Analysis{}, fmt.Errorf("core: analysis length mismatch")
	}
	p = p[v2Header:]
	an.Frames = make([]Frame, n)
	for i := range an.Frames {
		f := &an.Frames[i]
		f.Axis.X = math.Float64frombits(binary.LittleEndian.Uint64(p))
		f.Axis.Y = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		f.Tau = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
		f.SpeedMin = math.Float64frombits(binary.LittleEndian.Uint64(p[24:]))
		f.SpeedMax = math.Float64frombits(binary.LittleEndian.Uint64(p[32:]))
		f.Dominance = math.Float64frombits(binary.LittleEndian.Uint64(p[40:]))
		f.Count = int(binary.LittleEndian.Uint64(p[48:]))
		f.OutlierCount = int(binary.LittleEndian.Uint64(p[56:]))
		f.IsOutlier = p[64]&1 != 0
		p = p[v2FrameBytes:]
	}
	return an, nil
}

// decodeAnalysisLegacy reads the pre-Partitioner format: SampleSize,
// TotalOutliers, a DVA count, then 48 bytes per DVA. The outlier partition
// was implicit in that format (the manager always appended one), so it is
// synthesized here as the final frame.
func decodeAnalysisLegacy(p []byte) (Analysis, error) {
	if len(p) < legacyHeader {
		return Analysis{}, fmt.Errorf("core: truncated analysis")
	}
	var an Analysis
	an.Kind = KindDVA
	an.SampleSize = int(binary.LittleEndian.Uint64(p))
	an.TotalOutliers = int(binary.LittleEndian.Uint64(p[8:]))
	n := binary.LittleEndian.Uint64(p[16:])
	if uint64(len(p)-legacyHeader) != n*legacyFrameBytes {
		return Analysis{}, fmt.Errorf("core: analysis length mismatch")
	}
	p = p[legacyHeader:]
	an.Frames = make([]Frame, n, n+1)
	for i := range an.Frames {
		f := &an.Frames[i]
		f.Axis.X = math.Float64frombits(binary.LittleEndian.Uint64(p))
		f.Axis.Y = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		f.Tau = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
		f.Count = int(binary.LittleEndian.Uint64(p[24:]))
		f.OutlierCount = int(binary.LittleEndian.Uint64(p[32:]))
		f.Dominance = math.Float64frombits(binary.LittleEndian.Uint64(p[40:]))
		p = p[legacyFrameBytes:]
	}
	if n > 0 {
		an.Frames = append(an.Frames, Frame{IsOutlier: true, Count: an.TotalOutliers})
	}
	return an, nil
}
