package core

import (
	"math"

	"repro/internal/geom"
)

// QueryShape summarizes one observed query for the partitioning cost model:
// the region's half-extents and how far into the future it reached. The
// Store keeps a bounded per-shard log of these next to its velocity
// reservoirs; kNN queries log with zero extent (their cost is dominated by
// the velocity-spread term alone).
type QueryShape struct {
	// HalfW/HalfH are the query region's half-extents (world frame).
	HalfW, HalfH float64
	// Window is how far past the issue time the query evaluates
	// (max(T1, T0) - Now, clamped at 0).
	Window float64
}

// EstimateCost scores a candidate partitioning against a velocity sample
// and a recent query-shape log: the Eq.-10 idea — a partition's query
// windows are enlarged by the partition's velocity spread times the query's
// time window — generalized to arbitrary frames and applied per partition.
//
// Every sample velocity is routed through the candidate's static
// thresholds; per partition the velocity bounding box is accumulated in the
// partition's own frame (where a DVA partition's perpendicular spread is at
// most 2·tau while its along-axis spread stays wide, and a speed band's
// spread is bounded by twice its top speed on both axes). The cost of
// partition p for query q is then
//
//	n_p · (2·HalfW + ΔVx_p·Window) · (2·HalfH + ΔVy_p·Window)
//
// — the partition's population times the enlarged search area, i.e. the
// expected number of candidate objects a uniform-density index must touch —
// summed over partitions and averaged over the logged queries. The returned
// value is an unnormalized relative score: comparable between candidates
// evaluated on the same sample and query log, not across samples.
func EstimateCost(an Analysis, sample []geom.Vec2, queries []QueryShape) float64 {
	if len(sample) == 0 || len(queries) == 0 || len(an.Frames) == 0 {
		return 0
	}
	type vbox struct {
		minX, maxX, minY, maxY float64
		n                      int
	}
	boxes := make([]vbox, len(an.Frames))
	for _, v := range sample {
		pi := an.RouteVel(v)
		f := an.Frames[pi]
		fv := v
		if !f.Identity() {
			fv = f.Rotation().Apply(v)
		}
		b := &boxes[pi]
		if b.n == 0 {
			b.minX, b.maxX, b.minY, b.maxY = fv.X, fv.X, fv.Y, fv.Y
		} else {
			b.minX = math.Min(b.minX, fv.X)
			b.maxX = math.Max(b.maxX, fv.X)
			b.minY = math.Min(b.minY, fv.Y)
			b.maxY = math.Max(b.maxY, fv.Y)
		}
		b.n++
	}
	total := 0.0
	for _, b := range boxes {
		if b.n == 0 {
			continue
		}
		dvx, dvy := b.maxX-b.minX, b.maxY-b.minY
		for _, q := range queries {
			w := math.Max(q.Window, 0)
			total += float64(b.n) * (2*q.HalfW + dvx*w) * (2*q.HalfH + dvy*w)
		}
	}
	return total / float64(len(queries))
}
