package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/parallel"
)

// PartitionSpec describes one partition to the index factory.
type PartitionSpec struct {
	// Name labels the partition ("dva0", ..., "outlier"; "speed0", ...;
	// "all" for the unpartitioned objective).
	Name string
	// Domain is the data-space bound in the partition's own coordinate
	// frame: the rotated bound of the world domain for DVA partitions, the
	// world domain itself for identity-rotation partitions. Grid-based
	// indexes (the Bx-tree) size their grids from it.
	Domain geom.Rect
	// Axis is the DVA direction (zero vector for every other partition).
	Axis geom.Vec2
	// IsOutlier marks the DVA layout's outlier partition.
	IsOutlier bool
	// Frame is the full partition frame the spec was built from.
	Frame Frame
}

// IndexFactory builds the underlying moving-object index for one partition.
// All partitions of one manager conventionally share a buffer pool so the
// paper's 50-page RAM budget covers the whole structure.
type IndexFactory func(spec PartitionSpec) (model.Index, error)

// ManagerConfig parameterizes the VP index manager.
type ManagerConfig struct {
	// Domain is the world data space (Table 1: 100,000 x 100,000 m).
	Domain geom.Rect
	// TauRefreshInterval recomputes each partition's tau after this many
	// routed inserts (Section 5.5). <= 0 disables refresh.
	TauRefreshInterval int
	// TauBuckets sizes the online tau histograms (default 100).
	TauBuckets int
	// SearchParallelism bounds the worker pool that fans Search/SearchKNN
	// out across the partitions. 0 means GOMAXPROCS; 1 forces the strictly
	// sequential partition loop (the baseline the parallel path must match
	// byte for byte).
	SearchParallelism int
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.Domain.IsEmpty() || c.Domain.Area() == 0 {
		c.Domain = geom.R(0, 0, 100000, 100000)
	}
	if c.TauBuckets <= 0 {
		c.TauBuckets = 100
	}
	return c
}

// partition is one live partition: the underlying index plus the frame
// transform and routing state.
type partition struct {
	spec     PartitionSpec
	idx      model.Index
	rot      geom.Mat2 // world -> partition frame
	identity bool      // rot is the identity: skip query/object transforms
	frame    Frame
	axis     geom.Vec2
	tau      float64       // live outlier threshold (DVA partitions)
	hist     *tauHistogram // online |v_perp| distribution (DVA partitions)
}

// record tracks where an object lives and its last known state; the paper's
// "simple lookup table" used by deletion (Section 5.3) and by the exact
// refinement step of Algorithm 3.
type record struct {
	obj  model.Object
	part int
}

// Manager is the VP technique's index manager, generalized over
// partitioning objectives: one index per partition frame — k rotated DVA
// indexes plus an outlier index, concentric speed-band indexes, or a single
// unpartitioned index — behind the model.Index interface. It is safe for
// concurrent use; updates that migrate an object between partitions hold
// the manager lock for the whole delete+insert so queries never observe the
// object as missing (the locking concern of Section 5.3), while
// Search/SearchKNN run under the read lock and fan out across the
// partitions in parallel — partition independence (each object lives in
// exactly one partition, and partition indexes share no mutable state on
// their query paths) is exactly what makes the fan-out safe.
type Manager struct {
	mu   sync.RWMutex
	cfg  ManagerConfig
	kind PartitionerKind
	pars []partition // one per analysis frame, in frame order

	objs map[model.ObjectID]record

	insertsSinceRefresh int
	name                string
}

var _ model.Index = (*Manager)(nil)

// frameName labels one partition frame for the index factory.
func frameName(kind PartitionerKind, i int, f Frame) string {
	switch {
	case f.IsOutlier:
		return "outlier"
	case kind == KindSpeed:
		return fmt.Sprintf("speed%d", i)
	case kind == KindNone:
		return "all"
	default:
		return fmt.Sprintf("dva%d", i)
	}
}

// buildPartitions constructs the live partition set for a validated
// analysis: one index per frame, rotated domains for DVA frames, online tau
// histograms only where tau routing applies.
func buildPartitions(an Analysis, cfg ManagerConfig, factory IndexFactory) ([]partition, error) {
	pars := make([]partition, 0, len(an.Frames))
	for i, f := range an.Frames {
		rot := f.Rotation()
		identity := f.Identity()
		domain := cfg.Domain
		if !identity {
			domain = cfg.Domain.BoundOfTransformed(rot)
		}
		spec := PartitionSpec{
			Name:      frameName(an.Kind, i, f),
			Domain:    domain,
			Axis:      f.Axis,
			IsOutlier: f.IsOutlier,
			Frame:     f,
		}
		idx, err := factory(spec)
		if err != nil {
			return nil, fmt.Errorf("core: building %s: %w", spec.Name, err)
		}
		p := partition{
			spec: spec, idx: idx, rot: rot, identity: identity,
			frame: f, axis: f.Axis, tau: f.Tau,
		}
		if an.Kind == KindDVA && !f.IsOutlier {
			// The online tau histogram spans up to the world-domain diagonal
			// speed scale: use 4x the analysis tau (or 1 if zero) padded; the
			// exact limit only affects resolution, not correctness.
			limit := f.Tau * 4
			if limit <= 0 {
				limit = 1
			}
			p.hist = newTauHistogram(limit, cfg.TauBuckets)
		}
		pars = append(pars, p)
	}
	return pars, nil
}

// NewManager builds the partition set from a completed velocity analysis,
// whatever objective produced it.
func NewManager(an Analysis, cfg ManagerConfig, factory IndexFactory) (*Manager, error) {
	cfg = cfg.withDefaults()
	if err := an.Validate(); err != nil {
		return nil, err
	}
	pars, err := buildPartitions(an, cfg, factory)
	if err != nil {
		return nil, err
	}
	return &Manager{
		cfg:  cfg,
		kind: an.Kind,
		pars: pars,
		objs: make(map[model.ObjectID]record),
		name: "vp",
	}, nil
}

// Kind returns the partitioning objective behind the live partition set.
func (m *Manager) Kind() PartitionerKind {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.kind
}

// SetName overrides the reported index name.
func (m *Manager) SetName(s string) { m.name = s }

// Name implements model.Index.
func (m *Manager) Name() string { return m.name }

// Len implements model.Index.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objs)
}

// IO implements model.Index. When all partitions share one buffer pool (the
// legacy constructors' layout) any partition's counters are the manager's,
// so the outlier partition is used as the representative. The Store, which
// gives each partition its own pool, aggregates across its pools itself
// instead of calling this.
func (m *Manager) IO() model.IOStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.pars[len(m.pars)-1].idx.IO()
}

// NumPartitions returns the number of partitions including the outlier.
func (m *Manager) NumPartitions() int { return len(m.pars) }

// PartitionInfo is the read-only view of one partition used by experiments
// and diagnostics.
type PartitionInfo struct {
	Spec  PartitionSpec
	Index model.Index
	Rot   geom.Mat2
	Frame Frame
	Tau   float64
	Size  int
}

// Partitions snapshots the partition set.
func (m *Manager) Partitions() []PartitionInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]PartitionInfo, len(m.pars))
	for i, p := range m.pars {
		out[i] = PartitionInfo{Spec: p.spec, Index: p.idx, Rot: p.rot, Frame: p.frame, Tau: p.tau, Size: p.idx.Len()}
	}
	return out
}

// route decides the partition for an object under the live objective.
// KindDVA: the DVA whose axis is closest in perpendicular velocity
// distance, or the outlier partition when that distance exceeds the DVA's
// (online-refreshed) tau (Section 5.3) — feeding the chosen DVA's tau
// histogram on the way. KindSpeed: the band containing |v|. KindNone: the
// single partition.
func (m *Manager) route(o model.Object) int {
	switch m.kind {
	case KindSpeed:
		s := o.Vel.Norm()
		for i := range m.pars {
			if s < m.pars[i].frame.SpeedMax {
				return i
			}
		}
		return len(m.pars) - 1
	case KindNone:
		return 0
	}
	best := -1
	bestDist := 0.0
	for i := range m.pars {
		p := &m.pars[i]
		if p.spec.IsOutlier {
			continue
		}
		d := o.Vel.PerpDistToAxis(p.axis)
		if best == -1 || d < bestDist {
			best = i
			bestDist = d
		}
	}
	if best == -1 {
		return len(m.pars) - 1
	}
	m.pars[best].hist.Add(bestDist)
	if bestDist > m.pars[best].tau {
		return len(m.pars) - 1 // outlier partition
	}
	return best
}

// maybeRefreshTau recomputes every DVA's tau from its online histogram
// after TauRefreshInterval routed inserts (Section 5.5). n is how many
// routed inserts the caller just performed — batch entry points count a
// whole batch at once so the refresh check runs once per batch instead of
// once per record. Caller holds mu.
func (m *Manager) maybeRefreshTau(n int) {
	if m.cfg.TauRefreshInterval <= 0 {
		return
	}
	m.insertsSinceRefresh += n
	if m.insertsSinceRefresh < m.cfg.TauRefreshInterval {
		return
	}
	m.insertsSinceRefresh = 0
	for i := range m.pars {
		if m.pars[i].hist == nil || m.pars[i].hist.total == 0 {
			continue
		}
		m.pars[i].tau = m.pars[i].hist.Optimal()
	}
}

// Insert implements model.Index.
func (m *Manager) Insert(o model.Object) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.objs[o.ID]; dup {
		return fmt.Errorf("core: insert of object %d: %w", o.ID, model.ErrDuplicate)
	}
	pi := m.route(o)
	if err := m.insertInto(pi, o); err != nil {
		return err
	}
	m.objs[o.ID] = record{obj: o, part: pi}
	m.maybeRefreshTau(1)
	return nil
}

// InsertBulk loads many new objects under a single lock acquisition with one
// tau-refresh pass at the end. This is the bootstrap/migration hook: the
// package-root Store uses it to move a whole staging population into the
// freshly built partitions, and loaders use it to amortize locking during
// initial load. All objects must be new; a duplicate aborts the load at that
// record (earlier records stay inserted).
func (m *Manager) InsertBulk(objs []model.Object) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, o := range objs {
		if _, dup := m.objs[o.ID]; dup {
			return fmt.Errorf("core: bulk insert of object %d: %w", o.ID, model.ErrDuplicate)
		}
		pi := m.route(o)
		if err := m.insertInto(pi, o); err != nil {
			return err
		}
		m.objs[o.ID] = record{obj: o, part: pi}
	}
	m.maybeRefreshTau(len(objs))
	return nil
}

// insertInto stores o (world frame) into partition pi, transforming into
// its coordinate frame first ("a simple matrix multiplication between the
// coordinates of o and the 1st PC of imin").
func (m *Manager) insertInto(pi int, o model.Object) error {
	p := &m.pars[pi]
	if p.identity {
		return p.idx.Insert(o)
	}
	return p.idx.Insert(o.Transform(p.rot))
}

// deleteFrom removes o (world frame) from partition pi.
func (m *Manager) deleteFrom(pi int, o model.Object) error {
	p := &m.pars[pi]
	if p.identity {
		return p.idx.Delete(o)
	}
	return p.idx.Delete(o.Transform(p.rot))
}

// Delete implements model.Index. Only the ID is consulted: the partition
// and exact stored record come from the lookup table.
func (m *Manager) Delete(o model.Object) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.objs[o.ID]
	if !ok {
		return fmt.Errorf("core: delete of object %d: %w", o.ID, model.ErrNotFound)
	}
	if err := m.deleteFrom(rec.part, rec.obj); err != nil {
		return err
	}
	delete(m.objs, o.ID)
	return nil
}

// replaceLocked moves an existing record rec to the new state o (delete from
// its current partition, re-route, insert), rolling back on failure. Caller
// holds mu and has verified rec is the table entry for o.ID.
func (m *Manager) replaceLocked(rec record, o model.Object) error {
	if err := m.deleteFrom(rec.part, rec.obj); err != nil {
		return err
	}
	pi := m.route(o)
	if err := m.insertInto(pi, o); err != nil {
		// Best-effort rollback: put the old record back so the index and
		// the lookup table stay consistent; surface both errors if even
		// that fails.
		if rerr := m.insertInto(rec.part, rec.obj); rerr != nil {
			return fmt.Errorf("core: update failed (%w) and rollback failed (%v)", err, rerr)
		}
		return err
	}
	m.objs[o.ID] = record{obj: o, part: pi}
	return nil
}

// Update implements model.Index: deletion followed by insertion, possibly
// migrating the object to a different partition when its direction of
// travel changed (Section 5.3). The whole move happens under one lock.
func (m *Manager) Update(old, new model.Object) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.objs[old.ID]
	if !ok {
		return fmt.Errorf("core: update of object %d: %w", old.ID, model.ErrNotFound)
	}
	if new.ID != old.ID {
		return fmt.Errorf("core: update changes object id %d -> %d", old.ID, new.ID)
	}
	if err := m.replaceLocked(rec, new); err != nil {
		return err
	}
	m.maybeRefreshTau(1)
	return nil
}

// reportLocked applies one ID-keyed upsert without the tau-refresh check.
// Caller holds mu.
func (m *Manager) reportLocked(o model.Object) error {
	if rec, ok := m.objs[o.ID]; ok {
		return m.replaceLocked(rec, o)
	}
	pi := m.route(o)
	if err := m.insertInto(pi, o); err != nil {
		return err
	}
	m.objs[o.ID] = record{obj: o, part: pi}
	return nil
}

// Report applies an ID-keyed upsert: insert if the object is new, otherwise
// an update driven entirely by the lookup table — the caller never supplies
// the old record. This is the production verb of a location-report stream.
func (m *Manager) Report(o model.Object) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.reportLocked(o); err != nil {
		return err
	}
	m.maybeRefreshTau(1)
	return nil
}

// ReportBatch applies many ID-keyed upserts under a single lock acquisition
// with one tau-refresh check at the end, amortizing both costs across the
// batch. It returns how many records were applied; on error the first
// `applied` records are in the index and the rest are not.
func (m *Manager) ReportBatch(objs []model.Object) (applied int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range objs {
		if err := m.reportLocked(objs[i]); err != nil {
			m.maybeRefreshTau(i)
			return i, fmt.Errorf("core: batch report of object %d: %w", objs[i].ID, err)
		}
	}
	m.maybeRefreshTau(len(objs))
	return len(objs), nil
}

// UpdateByID is a convenience for callers that only track current state:
// the old record comes from the lookup table.
func (m *Manager) UpdateByID(new model.Object) error {
	m.mu.RLock()
	rec, ok := m.objs[new.ID]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: update of object %d: %w", new.ID, model.ErrNotFound)
	}
	return m.Update(rec.obj, new)
}

// Search implements model.Index: Algorithm 3. The query is transformed into
// each rotated partition frame (its region bounded by an axis-aligned MBR
// there), the partitions are probed by a bounded worker pool
// (cfg.SearchParallelism) into per-partition result buffers, and after the
// joins the buffers are merged in partition order, so the output is
// byte-identical to the sequential loop. Identity-rotation partitions — the
// DVA layout's outlier index, every speed band, the unpartitioned objective
// — take the query unchanged.
//
// The merge is the exact refinement of Algorithm 3 line 8, driven entirely
// by the lookup table: a candidate id counts only if the table places it in
// the partition that returned it (which also makes cross-partition
// duplicates structurally impossible — no seen-set needed). Rotated-frame
// candidates of rectangular queries are re-checked against the original
// query in the world frame, because a rotated rectangle is only
// conservatively bounded by its MBR in the partition frame. Circular
// queries skip that re-check on the hot path: rotations are isometries, so
// the circle survives the frame change exactly and the partition index's
// own Matches refinement already was the exact world-frame predicate.
// Identity-rotation candidates always skip it: their partition ran the
// query unchanged.
func (m *Manager) Search(q model.RangeQuery) ([]model.ObjectID, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	lists := make([][]model.ObjectID, len(m.pars))
	err := parallel.Do(len(m.pars), m.cfg.SearchParallelism, func(i int) error {
		p := &m.pars[i]
		pq := q
		if !p.identity {
			pq = q.Transform(p.rot)
		}
		ids, err := p.idx.Search(pq)
		if err != nil {
			return err
		}
		lists[i] = ids
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, ids := range lists {
		total += len(ids)
	}
	exactInFrame := q.IsCircle()
	out := make([]model.ObjectID, 0, total)
	for i, ids := range lists {
		recheck := !m.pars[i].identity && !exactInFrame
		for _, id := range ids {
			rec, ok := m.objs[id]
			if !ok || rec.part != i {
				continue
			}
			if recheck && !model.Matches(rec.obj, q) {
				continue
			}
			out = append(out, id)
		}
	}
	return out, nil
}

// Objects snapshots every live record in the world frame (iteration order
// is unspecified). This is the migration surface of a partition rebuild:
// the Store reads one manager's population and InsertBulks it into a
// freshly built one.
func (m *Manager) Objects() []model.Object {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]model.Object, 0, len(m.objs))
	for _, rec := range m.objs {
		out = append(out, rec.obj)
	}
	return out
}

// Get returns the current world-frame record for an object.
func (m *Manager) Get(id model.ObjectID) (model.Object, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rec, ok := m.objs[id]
	return rec.obj, ok
}

// Tau returns the current outlier threshold of DVA partition i.
func (m *Manager) Tau(i int) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.pars[i].tau
}

// SetTau overrides the outlier threshold of DVA partition i; used by the
// fixed-tau sweep experiment (Fig. 17). It affects future routing only.
func (m *Manager) SetTau(i int, tau float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pars[i].tau = tau
}

// DriftMax is the objective distance Drift reports when a fresh analysis is
// structurally incomparable to the live partition set (different objective
// kind or partition count): the largest possible axis angle, so any
// positive drift threshold trips and the partitions are rebuilt.
const DriftMax = math.Pi / 2

// Drift returns the objective distance (radians-scaled, in [0, DriftMax])
// between the live partition set and a fresh analysis — the signal Section
// 5.5 says should trigger re-partitioning when "the dominant direction of
// object travel changes significantly", generalized across objectives:
//
//   - KindDVA vs KindDVA: the largest angle between a live axis and its
//     closest fresh axis (each live axis matched independently).
//   - KindSpeed vs KindSpeed: the largest relative shift of a band
//     threshold, scaled by DriftMax so a full-range move compares to axis
//     drift on the same threshold scale.
//   - KindNone vs KindNone: 0 (nothing to drift).
//   - Any kind or partition-count mismatch: DriftMax. This is also the
//     guard against an Analysis with a different K than the live manager —
//     a structurally different candidate always reads as maximally
//     drifted, never as a partial match over mismatched indices.
func (m *Manager) Drift(an Analysis) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if an.Kind != m.kind || len(an.Frames) != len(m.pars) {
		return DriftMax
	}
	worst := 0.0
	switch m.kind {
	case KindNone:
		return 0
	case KindSpeed:
		scale := 0.0
		for _, p := range m.pars {
			if !math.IsInf(p.frame.SpeedMax, 1) && p.frame.SpeedMax > scale {
				scale = p.frame.SpeedMax
			}
		}
		for _, f := range an.Frames {
			if !math.IsInf(f.SpeedMax, 1) && f.SpeedMax > scale {
				scale = f.SpeedMax
			}
		}
		if scale == 0 {
			return 0
		}
		for i, p := range m.pars {
			old, fresh := p.frame.SpeedMax, an.Frames[i].SpeedMax
			if math.IsInf(old, 1) || math.IsInf(fresh, 1) {
				continue // the top band's bound is structural, not a threshold
			}
			if d := math.Abs(old-fresh) / scale * DriftMax; d > worst {
				worst = d
			}
		}
	default: // KindDVA
		for i := range m.pars {
			if m.pars[i].spec.IsOutlier {
				continue
			}
			best := DriftMax
			for _, f := range an.Frames {
				if f.IsOutlier {
					continue
				}
				cos := math.Abs(m.pars[i].axis.Normalize().Dot(f.Axis.Normalize()))
				if cos > 1 {
					cos = 1
				}
				if a := math.Acos(cos); a < best {
					best = a
				}
			}
			if best > worst {
				worst = best
			}
		}
	}
	return worst
}

// Reanalyze rebuilds the partition set from a fresh velocity analysis
// (Section 5.5's "rerun the velocity analyzer ... and readjust the
// indexes"), which may change the objective kind and the partition count:
// new partition indexes are created through the factory and every live
// object is re-routed and re-inserted. The manager is locked for the
// duration (a rebuild is a rare, heavyweight maintenance action — the paper
// argues directions are stable enough that this almost never fires; tau
// refresh handles the common speed-only drift).
func (m *Manager) Reanalyze(an Analysis, factory IndexFactory) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := an.Validate(); err != nil {
		return err
	}
	fresh, err := buildPartitions(an, m.cfg, factory)
	if err != nil {
		return err
	}

	// Re-route every object into the fresh partitions through a fresh
	// lookup table, committing the table only after the last insert
	// succeeds. Updating m.objs in place would corrupt the manager on
	// failure: restoring m.pars alone leaves the already-rerouted entries
	// pointing at partition indices of the discarded fresh set, so later
	// deletes and updates would target the wrong (or a nonexistent)
	// partition.
	objs := make(map[model.ObjectID]record, len(m.objs))
	old, oldKind := m.pars, m.kind
	m.pars, m.kind = fresh, an.Kind
	for id, rec := range m.objs {
		pi := m.route(rec.obj)
		if err := m.insertInto(pi, rec.obj); err != nil {
			// Restore; fresh partitions are discarded whole.
			m.pars, m.kind = old, oldKind
			return fmt.Errorf("core: re-routing object %d: %w", id, err)
		}
		objs[id] = record{obj: rec.obj, part: pi}
	}
	m.objs = objs
	m.insertsSinceRefresh = 0
	return nil
}
