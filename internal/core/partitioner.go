package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
)

// PartitionerKind names a partitioning objective. The zero value is KindDVA
// so pre-refactor Analysis values (and their persisted encodings) keep their
// meaning unchanged.
type PartitionerKind uint8

const (
	// KindDVA partitions by dominant velocity axes (the paper's technique):
	// one rotated index per DVA plus a catch-all outlier index.
	KindDVA PartitionerKind = iota
	// KindSpeed partitions by concentric speed bands with identity rotation
	// (Xu et al., "Speed Partitioning for Indexing Moving Objects"): band
	// thresholds minimize the expected query-window enlargement over the
	// sampled speed distribution.
	KindSpeed
	// KindNone keeps a single unpartitioned index — the baseline the
	// adaptive chooser falls back to when neither objective pays for its
	// extra structures.
	KindNone
)

// String implements fmt.Stringer.
func (k PartitionerKind) String() string {
	switch k {
	case KindDVA:
		return "dva"
	case KindSpeed:
		return "speed"
	case KindNone:
		return "none"
	default:
		return fmt.Sprintf("PartitionerKind(%d)", uint8(k))
	}
}

// Frame describes one partition independently of the objective that produced
// it: the rotation into the partition's coordinate frame plus the routing
// parameters, in a shape that serializes, so checkpoints and WAL swap
// records can rebuild the exact partition set. Which fields are meaningful
// depends on the owning Analysis' Kind:
//
//   - KindDVA: Axis is the unit DVA direction (sign-canonical, x >= 0) and
//     Tau the perpendicular-speed outlier threshold (Section 5.2); the final
//     frame has IsOutlier set and an identity rotation.
//   - KindSpeed: [SpeedMin, SpeedMax) is the band's speed range; bands tile
//     [0, +Inf) contiguously and rotation is always the identity.
//   - KindNone: a single identity frame.
type Frame struct {
	// Axis is the DVA direction (zero vector for every other frame).
	Axis geom.Vec2
	// Tau is the DVA outlier threshold: an object whose velocity's
	// perpendicular distance to Axis exceeds Tau routes to the outlier
	// frame.
	Tau float64
	// SpeedMin/SpeedMax bound a speed band, lower inclusive, upper
	// exclusive; the top band's SpeedMax is +Inf.
	SpeedMin, SpeedMax float64
	// IsOutlier marks the DVA layout's catch-all partition.
	IsOutlier bool
	// Count is the number of sample points routed to this frame;
	// OutlierCount is how many a DVA frame shed to the outlier frame.
	Count        int
	OutlierCount int
	// Dominance is lambda1/(lambda1+lambda2) of a DVA frame's retained
	// points: 1.0 means a perfectly 1-D velocity space.
	Dominance float64
}

// Rotation returns the world->frame rotation: [PC1; PC2] for a DVA frame,
// the identity for every other frame.
func (f Frame) Rotation() geom.Mat2 {
	if f.IsOutlier || (f.Axis == geom.Vec2{}) {
		return geom.Identity2
	}
	return geom.RotationTo(f.Axis)
}

// Identity reports whether the frame's rotation is the identity (no
// coordinate transform on the insert/query path).
func (f Frame) Identity() bool { return f.IsOutlier || f.Axis == (geom.Vec2{}) }

// Analysis is a partitioner's output: the objective it ran (Kind), one Frame
// per partition — including the DVA layout's outlier frame — plus
// diagnostics. The index manager builds exactly len(Frames) partition
// indexes from it, whatever the objective.
type Analysis struct {
	// Kind is the objective that produced the frames.
	Kind PartitionerKind
	// Frames lists every partition. For KindDVA the outlier frame is last.
	Frames []Frame
	// TotalOutliers counts sample points assigned to the outlier frame.
	TotalOutliers int
	// SampleSize is the number of velocity points analyzed.
	SampleSize int
	// Elapsed is the analyzer's wall-clock run time (Fig. 18 measures it).
	Elapsed time.Duration
}

// NumVelocityFrames returns the number of non-outlier frames.
func (an Analysis) NumVelocityFrames() int {
	n := 0
	for _, f := range an.Frames {
		if !f.IsOutlier {
			n++
		}
	}
	return n
}

// Validate checks the structural invariants the manager and the cost model
// rely on: at least one frame; for KindDVA exactly one outlier frame, in
// last position; for KindSpeed contiguous bands from 0 to +Inf with no
// outlier frame; for KindNone a single identity frame.
func (an Analysis) Validate() error {
	if len(an.Frames) == 0 {
		return fmt.Errorf("core: analysis has no partition frames")
	}
	switch an.Kind {
	case KindDVA:
		for i, f := range an.Frames {
			if f.IsOutlier != (i == len(an.Frames)-1) {
				return fmt.Errorf("core: DVA analysis: outlier frame must be exactly the last of %d", len(an.Frames))
			}
		}
		if len(an.Frames) < 2 {
			return fmt.Errorf("core: DVA analysis needs at least one DVA frame plus the outlier frame")
		}
	case KindSpeed:
		lo := 0.0
		for i, f := range an.Frames {
			if f.IsOutlier {
				return fmt.Errorf("core: speed analysis has an outlier frame")
			}
			if f.SpeedMin != lo || f.SpeedMax <= f.SpeedMin {
				return fmt.Errorf("core: speed band %d [%g, %g) is not contiguous from %g", i, f.SpeedMin, f.SpeedMax, lo)
			}
			lo = f.SpeedMax
		}
		if !math.IsInf(lo, 1) {
			return fmt.Errorf("core: speed bands end at %g, want +Inf", lo)
		}
	case KindNone:
		if len(an.Frames) != 1 {
			return fmt.Errorf("core: unpartitioned analysis has %d frames, want 1", len(an.Frames))
		}
	default:
		return fmt.Errorf("core: unknown partitioner kind %d", an.Kind)
	}
	return nil
}

// RouteVel returns the frame index a velocity routes to under the analysis'
// own thresholds. The live Manager routes with its online-refreshed taus
// instead; this static router serves the cost model, which scores candidate
// analyses that have no manager yet.
func (an Analysis) RouteVel(v geom.Vec2) int {
	switch an.Kind {
	case KindSpeed:
		s := v.Norm()
		for i, f := range an.Frames {
			if s < f.SpeedMax {
				return i
			}
		}
		return len(an.Frames) - 1
	case KindNone:
		return 0
	default: // KindDVA
		best, bestDist := -1, 0.0
		for i, f := range an.Frames {
			if f.IsOutlier {
				continue
			}
			d := v.PerpDistToAxis(f.Axis)
			if best == -1 || d < bestDist {
				best, bestDist = i, d
			}
		}
		if best == -1 || bestDist > an.Frames[best].Tau {
			return len(an.Frames) - 1
		}
		return best
	}
}

// Partitioner is a pluggable partitioning objective: it turns a velocity
// sample reservoir into partition frames plus diagnostics. Implementations
// must be deterministic for a given sample (the durable Store replays swap
// decisions from logged analyses, never by re-running a partitioner).
type Partitioner interface {
	// Kind names the objective.
	Kind() PartitionerKind
	// Analyze derives the partition frames from a velocity sample.
	Analyze(sample []geom.Vec2) (Analysis, error)
}

// DVAPartitioner is the paper's objective: dominant velocity axes via the
// PCA-guided k-means of Algorithm 2, tau per axis from Eq. 10.
type DVAPartitioner struct {
	Config AnalyzerConfig
}

// Kind implements Partitioner.
func (p DVAPartitioner) Kind() PartitionerKind { return KindDVA }

// Analyze implements Partitioner (see the package-level Analyze).
func (p DVAPartitioner) Analyze(sample []geom.Vec2) (Analysis, error) {
	return Analyze(sample, p.Config)
}

// SpeedPartitioner partitions by concentric speed bands: identity rotation,
// thresholds minimizing the expected enlargement over the sampled speed
// distribution (see OptimalSpeedThresholds).
type SpeedPartitioner struct {
	// Bands is the number of speed bands (<= 0 takes 2, matching the DVA
	// default K so the chooser compares equal structure counts).
	Bands int
	// Buckets is the speed-histogram resolution for the threshold search
	// (<= 0 takes 100, the paper's tau-histogram setting).
	Buckets int
}

// Kind implements Partitioner.
func (p SpeedPartitioner) Kind() PartitionerKind { return KindSpeed }

// Analyze implements Partitioner.
func (p SpeedPartitioner) Analyze(sample []geom.Vec2) (Analysis, error) {
	start := time.Now()
	bands := p.Bands
	if bands <= 0 {
		bands = 2
	}
	if len(sample) == 0 {
		return Analysis{}, fmt.Errorf("core: empty sample cannot form speed bands")
	}
	speeds := make([]float64, len(sample))
	for i, v := range sample {
		speeds[i] = v.Norm()
	}
	cuts := OptimalSpeedThresholds(speeds, bands, p.Buckets)
	an := Analysis{Kind: KindSpeed, SampleSize: len(sample)}
	lo := 0.0
	for i, hi := range cuts {
		f := Frame{SpeedMin: lo}
		if i == len(cuts)-1 {
			f.SpeedMax = math.Inf(1)
		} else {
			f.SpeedMax = hi
		}
		for _, s := range speeds {
			if s >= f.SpeedMin && s < f.SpeedMax {
				f.Count++
			}
		}
		an.Frames = append(an.Frames, f)
		lo = f.SpeedMax
	}
	an.Elapsed = time.Since(start)
	return an, nil
}

// OptimalSpeedThresholds picks band upper bounds t_1 < ... < t_B (t_B is the
// sample maximum; the caller widens the top band to +Inf) minimizing the
// Eq.-10-style enlargement objective sum_j n_j * t_j over an equal-width
// speed histogram: a band's query windows grow with its top speed, so the
// expected enlargement mass of a partitioning is each band's population
// weighted by its own maximum speed — the same population-vs-expansion
// trade Eq. 10 makes for tau, applied to concentric bands. Solved exactly
// over the histogram edges by dynamic programming.
func OptimalSpeedThresholds(speeds []float64, bands, buckets int) []float64 {
	if bands <= 0 {
		bands = 2
	}
	if buckets <= 0 {
		buckets = 100
	}
	smax := 0.0
	for _, s := range speeds {
		if s > smax {
			smax = s
		}
	}
	if smax == 0 || bands == 1 {
		// Degenerate: every object in one band.
		return []float64{smax}
	}
	if buckets < bands {
		buckets = bands
	}
	counts := make([]int, buckets)
	for _, s := range speeds {
		b := int(s / smax * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	cum := make([]int, buckets+1) // cum[e] = count of speeds below edge e
	for b := 0; b < buckets; b++ {
		cum[b+1] = cum[b] + counts[b]
	}
	edge := func(e int) float64 { return smax * float64(e) / float64(buckets) }
	// cost[j][e] = minimal sum n_i*t_i splitting edges (0, e] into j bands.
	const inf = math.MaxFloat64
	prev := make([]float64, buckets+1)
	curr := make([]float64, buckets+1)
	choice := make([][]int, bands+1)
	for e := 0; e <= buckets; e++ {
		prev[e] = float64(cum[e]) * edge(e) // one band up to edge e
	}
	for j := 2; j <= bands; j++ {
		choice[j] = make([]int, buckets+1)
		for e := 0; e <= buckets; e++ {
			curr[e] = inf
			if e < j {
				continue
			}
			for m := j - 1; m < e; m++ {
				c := prev[m] + float64(cum[e]-cum[m])*edge(e)
				if c < curr[e] {
					curr[e] = c
					choice[j][e] = m
				}
			}
		}
		prev, curr = curr, prev
	}
	// Recover the cut edges ending at the full range.
	cuts := make([]float64, bands)
	e := buckets
	for j := bands; j >= 1; j-- {
		cuts[j-1] = edge(e)
		if j > 1 {
			e = choice[j][e]
		}
	}
	return cuts
}

// NonePartitioner is the identity objective: one unpartitioned frame.
type NonePartitioner struct{}

// Kind implements Partitioner.
func (NonePartitioner) Kind() PartitionerKind { return KindNone }

// Analyze implements Partitioner.
func (NonePartitioner) Analyze(sample []geom.Vec2) (Analysis, error) {
	return Analysis{
		Kind:       KindNone,
		Frames:     []Frame{{SpeedMax: math.Inf(1), Count: len(sample)}},
		SampleSize: len(sample),
	}, nil
}
