package core

import (
	"testing"

	"repro/internal/geom"
)

func TestAnalysisCodecRoundTrip(t *testing.T) {
	an := Analysis{
		DVAs: []DVA{
			{Axis: geom.V(0.8, 0.6), Tau: 3.25, Count: 4200, OutlierCount: 17, Dominance: 0.41},
			{Axis: geom.V(-0.6, 0.8), Tau: 1.5, Count: 3800, OutlierCount: 9, Dominance: 0.38},
		},
		TotalOutliers: 26,
		SampleSize:    10_000,
	}
	got, err := DecodeAnalysis(EncodeAnalysis(an))
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleSize != an.SampleSize || got.TotalOutliers != an.TotalOutliers || len(got.DVAs) != len(an.DVAs) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range an.DVAs {
		if got.DVAs[i] != an.DVAs[i] {
			t.Fatalf("DVA %d = %+v, want %+v", i, got.DVAs[i], an.DVAs[i])
		}
	}

	// Empty analysis (no DVAs) round-trips too.
	empty, err := DecodeAnalysis(EncodeAnalysis(Analysis{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.DVAs) != 0 {
		t.Fatalf("empty analysis decoded %d DVAs", len(empty.DVAs))
	}

	// Truncation and trailing bytes are rejected.
	b := EncodeAnalysis(an)
	if _, err := DecodeAnalysis(b[:len(b)-1]); err == nil {
		t.Fatal("truncated analysis decoded")
	}
	if _, err := DecodeAnalysis(append(b, 0)); err == nil {
		t.Fatal("oversized analysis decoded")
	}
	if _, err := DecodeAnalysis(b[:10]); err == nil {
		t.Fatal("truncated header decoded")
	}
}
