package core

import (
	"encoding/hex"
	"math"
	"testing"

	"repro/internal/geom"
)

func TestAnalysisCodecRoundTrip(t *testing.T) {
	an := Analysis{
		Kind: KindDVA,
		Frames: []Frame{
			{Axis: geom.V(0.8, 0.6), Tau: 3.25, Count: 4200, OutlierCount: 17, Dominance: 0.41},
			{Axis: geom.V(-0.6, 0.8), Tau: 1.5, Count: 3800, OutlierCount: 9, Dominance: 0.38},
			{IsOutlier: true, Count: 26},
		},
		TotalOutliers: 26,
		SampleSize:    10_000,
	}
	got, err := DecodeAnalysis(EncodeAnalysis(an))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != an.Kind || got.SampleSize != an.SampleSize || got.TotalOutliers != an.TotalOutliers || len(got.Frames) != len(an.Frames) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range an.Frames {
		if got.Frames[i] != an.Frames[i] {
			t.Fatalf("frame %d = %+v, want %+v", i, got.Frames[i], an.Frames[i])
		}
	}

	// Empty analysis (no frames) round-trips too.
	empty, err := DecodeAnalysis(EncodeAnalysis(Analysis{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Frames) != 0 {
		t.Fatalf("empty analysis decoded %d frames", len(empty.Frames))
	}

	// Truncation and trailing bytes are rejected.
	b := EncodeAnalysis(an)
	if _, err := DecodeAnalysis(b[:len(b)-1]); err == nil {
		t.Fatal("truncated analysis decoded")
	}
	if _, err := DecodeAnalysis(append(b, 0)); err == nil {
		t.Fatal("oversized analysis decoded")
	}
	if _, err := DecodeAnalysis(b[:10]); err == nil {
		t.Fatal("truncated header decoded")
	}
}

func TestAnalysisCodecRoundTripSpeedAndNone(t *testing.T) {
	for _, an := range []Analysis{
		{
			Kind: KindSpeed,
			Frames: []Frame{
				{SpeedMin: 0, SpeedMax: 12.5, Count: 7000},
				{SpeedMin: 12.5, SpeedMax: math.Inf(1), Count: 3000},
			},
			SampleSize: 10_000,
		},
		{
			Kind:       KindNone,
			Frames:     []Frame{{SpeedMax: math.Inf(1), Count: 500}},
			SampleSize: 500,
		},
	} {
		if err := an.Validate(); err != nil {
			t.Fatalf("%s analysis invalid: %v", an.Kind, err)
		}
		got, err := DecodeAnalysis(EncodeAnalysis(an))
		if err != nil {
			t.Fatalf("%s: %v", an.Kind, err)
		}
		if got.Kind != an.Kind || got.SampleSize != an.SampleSize || len(got.Frames) != len(an.Frames) {
			t.Fatalf("%s header mismatch: %+v", an.Kind, got)
		}
		for i := range an.Frames {
			if got.Frames[i] != an.Frames[i] {
				t.Fatalf("%s frame %d = %+v, want %+v", an.Kind, i, got.Frames[i], an.Frames[i])
			}
		}
	}
}

// TestDecodeLegacyAnalysis pins the exact bytes the pre-Partitioner codec
// (PRs 6/7) produced for a two-DVA analysis, proving old checkpoints and
// WAL swap records decode into the frame representation: kind DVA, the DVA
// frames in order, and the formerly implicit outlier frame synthesized
// last.
func TestDecodeLegacyAnalysis(t *testing.T) {
	const legacyHex = "c0060000000000001c00000000000000020000000000000000000000" +
		"0000f03f00000000000000000000000000000c408403000000000000110000000000" +
		"00000ad7a3703d0aef3f0000000000000000000000000000f03f0000000000000240" +
		"20030000000000000b00000000000000713d0ad7a370ed3f"
	raw, err := hex.DecodeString(legacyHex)
	if err != nil {
		t.Fatal(err)
	}
	an, err := DecodeAnalysis(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := Analysis{
		Kind: KindDVA,
		Frames: []Frame{
			{Axis: geom.V(1, 0), Tau: 3.5, Count: 900, OutlierCount: 17, Dominance: 0.97},
			{Axis: geom.V(0, 1), Tau: 2.25, Count: 800, OutlierCount: 11, Dominance: 0.92},
			{IsOutlier: true, Count: 28},
		},
		TotalOutliers: 28,
		SampleSize:    1728,
	}
	if an.Kind != want.Kind || an.SampleSize != want.SampleSize || an.TotalOutliers != want.TotalOutliers {
		t.Fatalf("header: %+v", an)
	}
	if len(an.Frames) != len(want.Frames) {
		t.Fatalf("frames: %d, want %d", len(an.Frames), len(want.Frames))
	}
	for i := range want.Frames {
		if an.Frames[i] != want.Frames[i] {
			t.Fatalf("frame %d = %+v, want %+v", i, an.Frames[i], want.Frames[i])
		}
	}
	if err := an.Validate(); err != nil {
		t.Fatalf("legacy analysis does not validate: %v", err)
	}
}
