package core

import (
	"fmt"

	"repro/internal/model"
)

// SearchKNN implements model.KNNIndex for the partitioned index: each
// partition answers the kNN query in its own coordinate frame — rotations
// are isometries, so the per-partition distances are directly comparable —
// and the manager merges the per-partition top-k lists into the global one.
// Every underlying index must itself support kNN.
func (m *Manager) SearchKNN(q model.KNNQuery) ([]model.Neighbor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	lists := make([][]model.Neighbor, 0, len(m.pars))
	for i := range m.pars {
		p := &m.pars[i]
		knn, ok := p.idx.(model.KNNIndex)
		if !ok {
			return nil, fmt.Errorf("core: partition %s index %T does not support kNN: %w",
				p.spec.Name, p.idx, model.ErrUnsupported)
		}
		pq := q
		if !p.spec.IsOutlier {
			pq.Center = p.rot.Apply(q.Center)
		}
		ns, err := knn.SearchKNN(pq)
		if err != nil {
			return nil, err
		}
		lists = append(lists, ns)
	}
	return model.MergeNeighbors(q.K, lists...), nil
}

var _ model.KNNIndex = (*Manager)(nil)
