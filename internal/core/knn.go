package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/parallel"
)

// SearchKNN implements model.KNNIndex for the partitioned index: each
// partition answers the kNN query in its own coordinate frame — rotations
// are isometries, so the per-partition distances are directly comparable —
// and the manager merges the per-partition top-k lists into the global one.
// Like Search, the partitions are probed by a bounded worker pool into
// per-partition buffers that are merged after the joins, in partition
// order. Every underlying index must itself support kNN (checked up front,
// before any worker runs).
func (m *Manager) SearchKNN(q model.KNNQuery) ([]model.Neighbor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	knns := make([]model.KNNIndex, len(m.pars))
	for i := range m.pars {
		p := &m.pars[i]
		knn, ok := p.idx.(model.KNNIndex)
		if !ok {
			return nil, fmt.Errorf("core: partition %s index %T does not support kNN: %w",
				p.spec.Name, p.idx, model.ErrUnsupported)
		}
		knns[i] = knn
	}
	lists := make([][]model.Neighbor, len(m.pars))
	err := parallel.Do(len(m.pars), m.cfg.SearchParallelism, func(i int) error {
		p := &m.pars[i]
		pq := q
		if !p.identity {
			pq.Center = p.rot.Apply(q.Center)
		}
		ns, err := knns[i].SearchKNN(pq)
		if err != nil {
			return err
		}
		lists[i] = ns
		return nil
	})
	if err != nil {
		return nil, err
	}
	return model.MergeNeighbors(q.K, lists...), nil
}

var _ model.KNNIndex = (*Manager)(nil)
