// Package wal is the write-ahead log behind the Store's durable mode: an
// append-only, segmented log of logical records (reports, removes,
// subscription changes, partition swaps) with CRC-framed entries, group
// commit, and checkpoint-driven truncation.
//
// The log is redo-only and logical: recovery replays records through the
// Store's normal write paths rather than reapplying page images, so the
// index structures are rebuilt rather than trusted. Positions are LSNs —
// global byte offsets over the whole log history — and segment files are
// named by the LSN of their first byte, so a record's position never changes
// when older segments are reclaimed.
//
// Commit implements group commit: the caller that wins the flush lock
// fsyncs everything appended so far and every waiter whose record the flush
// covered returns without issuing its own fsync ("followers ride the
// leader's fsync"). A GroupCommit window makes the leader dwell briefly
// before flushing so concurrent appenders can pile on; SyncNone acknowledges
// without any fsync and trades the WAL tail for throughput.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// Type tags a logical record.
type Type uint8

// Logical record types. Values are persisted in the log; do not renumber.
const (
	TypeReport        Type = 1
	TypeReportBatch   Type = 2
	TypeRemove        Type = 3
	TypeSubscribe     Type = 4
	TypeUnsubscribe   Type = 5
	TypePartitionSwap Type = 6
	TypeRefresh       Type = 7
)

// Frame layout: [length u32][type u8][crc u32][payload]. The CRC covers the
// type byte and the payload, so a torn or misframed tail fails verification.
const frameHeader = 9

// maxRecord bounds a single record so a corrupt length field cannot make
// replay allocate unbounded memory.
const maxRecord = 64 << 20

// DefaultSegmentBytes is the rotation threshold for log segments.
const DefaultSegmentBytes = 4 << 20

// SyncMode selects the durability contract of Commit.
type SyncMode int

const (
	// SyncAlways fsyncs before every Commit returns.
	SyncAlways SyncMode = iota
	// SyncGroup fsyncs before Commit returns, but the flush leader dwells
	// for the configured window first so concurrent commits share one fsync.
	SyncGroup
	// SyncNone never fsyncs on Commit; the OS flushes when it pleases.
	SyncNone
)

// SyncPolicy is a SyncMode plus the group-commit dwell window.
type SyncPolicy struct {
	Mode   SyncMode
	Window time.Duration
}

// Always returns the fsync-per-commit policy.
func Always() SyncPolicy { return SyncPolicy{Mode: SyncAlways} }

// GroupCommit returns a group-commit policy whose flush leader waits up to
// window for followers before fsyncing. A zero window still group-commits:
// followers that arrive during the leader's fsync ride the next flush.
func GroupCommit(window time.Duration) SyncPolicy {
	return SyncPolicy{Mode: SyncGroup, Window: window}
}

// None returns the no-fsync policy.
func None() SyncPolicy { return SyncPolicy{Mode: SyncNone} }

// Options configures Open.
type Options struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// Policy is the Commit durability contract (default Always).
	Policy SyncPolicy
	// Injector, when non-nil, injects crashes and media faults (see
	// storage.FaultInjector).
	Injector *storage.FaultInjector
	// Retry bounds the backoff loop around appends and fsyncs for transient
	// faults; the zero value takes storage.DefaultRetryPolicy behavior.
	Retry storage.RetryPolicy
}

// ErrCorrupt marks a mid-log CRC mismatch: unlike a benign torn tail (bytes
// past the last fsync of a crashed process, expected and safely dropped),
// valid records are known to exist past the bad frame, so dropping the rest
// of the log silently would lose acknowledged history. Callers degrade the
// store instead.
var ErrCorrupt = errors.New("wal: corrupt record")

// CorruptError identifies where in the log corruption was found. It unwraps
// to ErrCorrupt.
type CorruptError struct {
	Path string
	LSN  uint64
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record in %s at LSN %d", e.Path, e.LSN)
}

// Unwrap ties the error to the ErrCorrupt sentinel.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// WAL is an append-only segmented log. Append and Commit are safe for
// concurrent use; Replay and TruncateBefore are meant for the single-
// threaded open/checkpoint paths.
type WAL struct {
	dir string
	opt Options

	mu       sync.Mutex // append state: active segment + appended LSN
	f        *os.File
	segStart uint64
	appended uint64
	failed   bool       // a write error poisoned the active segment
	sealed   []*os.File // rotated-out, not yet fsynced files (SyncNone only)

	flushMu sync.Mutex // the group-commit leader lock
	syncMu  sync.Mutex // serializes fsync with segment close (rotation)
	durable atomic.Uint64

	retries atomic.Int64  // transient-fault retry attempts taken
	corrupt *CorruptError // mid-log corruption found at Open, if any
}

// Open creates dir if needed, scans any existing segments to find the end of
// the valid log, and starts a fresh active segment there. Records already on
// disk are untouched — call Replay to read them back.
func Open(dir string, opt Options) (*WAL, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opt: opt}
	if n := len(segs); n > 0 {
		last := segs[n-1]
		valid, resync, err := scanTail(last.path)
		if err != nil {
			return nil, err
		}
		if resync {
			// Valid frames exist past the invalid one: this is mid-log
			// corruption, not the benign torn tail of a crash. Open still
			// succeeds with the valid prefix — the records past the bad frame
			// cannot be applied consistently — but the loss is never silent:
			// CorruptTail reports it so the store can degrade.
			w.corrupt = &CorruptError{Path: last.path, LSN: last.start + valid}
		}
		w.appended = last.start + valid
	}
	w.durable.Store(w.appended)
	if err := w.openSegment(w.appended); err != nil {
		return nil, err
	}
	return w, nil
}

// openSegment starts the active segment at LSN start. An existing file with
// that name holds only bytes that failed CRC validation (a torn tail from a
// previous generation), so it is safe to clear.
func (w *WAL) openSegment(start uint64) error {
	f, err := os.OpenFile(segmentPath(w.dir, start), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	// Make the directory entry durable so a crash right after segment
	// creation cannot orphan records appended to a file that is not yet
	// linked. Raw (not injector-gated): this runs on Open/rotation control
	// paths where an injected kill would mean "store failed to open", not
	// "crash mid-workload".
	if err := storage.SyncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.segStart = start
	return nil
}

// CorruptTail reports mid-log corruption found while scanning the last
// segment at Open: valid frames existed past a CRC-invalid one. A benign
// torn tail (no valid data after the tear) returns nil.
func (w *WAL) CorruptTail() error {
	if w.corrupt == nil {
		return nil
	}
	return w.corrupt
}

// Retries returns how many transient-fault retry attempts the WAL has taken
// across appends and fsyncs.
func (w *WAL) Retries() int64 { return w.retries.Load() }

// maxPooledBuf caps how large a scratch buffer the frame/encode pools will
// retain; a rare oversized record allocates once and is dropped afterwards,
// so a single huge batch cannot pin megabytes in every pool shard.
const maxPooledBuf = 1 << 20

// framePool recycles Append's frame scratch so the steady-state durable
// write path frames records without a per-record allocation.
var framePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// bufPool recycles record-encode buffers for callers (see GetBuf/PutBuf).
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 256); return &b },
}

// GetBuf hands out a pooled encode buffer (length 0). Encode a record
// payload into it with the Append* codecs, pass the result to WAL.Append —
// which copies the payload into its own frame before returning — and give
// the buffer back with PutBuf.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns an encode buffer obtained from GetBuf to the pool.
func PutBuf(b *[]byte) {
	if b == nil || cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Append frames and writes one record, returning the LSN just past it: the
// record is durable once DurableLSN() >= lsn. Append alone does not fsync —
// pair it with Commit. The payload is copied into the frame before Append
// returns, so callers may reuse (or pool) the payload buffer immediately.
func (w *WAL) Append(t Type, payload []byte) (lsn uint64, err error) {
	// Injected append faults fire before any byte reaches the file, so a
	// transient EIO is retried here without poisoning the segment; a real
	// partial write below still poisons.
	if err := w.opt.Retry.Do(&w.retries, func() error {
		return w.opt.Injector.WALAppend()
	}); err != nil {
		return 0, err
	}
	fp := framePool.Get().(*[]byte)
	frame := *fp
	need := frameHeader + len(payload)
	if cap(frame) < need {
		frame = make([]byte, need)
	} else {
		frame = frame[:need]
	}
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	frame[4] = byte(t)
	crc := crc32.Update(0, crc32.IEEETable, frame[4:5])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(frame[5:], crc)
	copy(frame[frameHeader:], payload)

	w.mu.Lock()
	defer func() {
		w.mu.Unlock()
		if cap(frame) <= maxPooledBuf {
			*fp = frame[:0]
			framePool.Put(fp)
		}
	}()
	if w.f == nil {
		return 0, fmt.Errorf("wal: closed")
	}
	if w.failed {
		return 0, fmt.Errorf("wal: log poisoned by earlier write failure")
	}
	if _, err := w.f.Write(frame); err != nil {
		// A partial frame may be on disk; nothing may be appended after it.
		w.failed = true
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.appended += uint64(len(frame))
	lsn = w.appended
	if w.appended-w.segStart >= uint64(w.opt.SegmentBytes) {
		if err := w.rotateLocked(); err != nil {
			w.failed = true
			return 0, err
		}
	}
	return lsn, nil
}

// rotateLocked seals the active segment and opens the next one. Under a
// syncing policy the sealed segment is fsynced and closed (a rotation is a
// sync point), so only the single active segment can ever have a torn tail;
// under SyncNone the file is parked on w.sealed for the next Sync/Close to
// flush. Caller holds w.mu.
func (w *WAL) rotateLocked() error {
	if w.opt.Policy.Mode == SyncNone {
		w.sealed = append(w.sealed, w.f)
		return w.openSegment(w.appended)
	}
	w.syncMu.Lock()
	err := w.fsync(w.f)
	if err == nil {
		w.durable.Store(w.appended)
		if cerr := w.f.Close(); cerr != nil {
			err = fmt.Errorf("wal: seal segment: %w", cerr)
		}
	}
	w.syncMu.Unlock()
	if err != nil {
		return err
	}
	return w.openSegment(w.appended)
}

// fsync runs the injector sync-point hook and fsyncs the given file,
// retrying transient fsync faults under the retry policy (an injected crash
// is not transient and fails through immediately).
func (w *WAL) fsync(f *os.File) error {
	return w.opt.Retry.Do(&w.retries, func() error {
		if err := w.opt.Injector.SyncPoint(storage.OpWALSync); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		return nil
	})
}

// Commit blocks until the record ending at lsn is durable under the
// configured policy. Concurrent callers elect a flush leader; everyone whose
// record the leader's fsync covered returns without syncing (group commit).
func (w *WAL) Commit(lsn uint64) error {
	if w.opt.Policy.Mode == SyncNone {
		return nil
	}
	for {
		if w.durable.Load() >= lsn {
			return nil
		}
		w.flushMu.Lock()
		if w.durable.Load() >= lsn {
			w.flushMu.Unlock()
			return nil
		}
		if w.opt.Policy.Mode == SyncGroup && w.opt.Policy.Window > 0 {
			time.Sleep(w.opt.Policy.Window)
		}
		w.mu.Lock()
		target := w.appended
		f := w.f
		w.mu.Unlock()
		if f == nil {
			w.flushMu.Unlock()
			return fmt.Errorf("wal: closed")
		}
		// syncMu keeps rotation from closing f out from under the fsync: if
		// a rotation slipped in after the capture it already advanced
		// durable past target (it fsyncs before closing), and the re-check
		// skips the stale file.
		w.syncMu.Lock()
		var err error
		if w.durable.Load() < target {
			if err = w.fsync(f); err == nil {
				w.durable.Store(target)
			}
		}
		w.syncMu.Unlock()
		w.flushMu.Unlock()
		if err != nil {
			return err
		}
	}
}

// Sync forces everything appended so far durable regardless of policy,
// including segments rotated out under SyncNone.
func (w *WAL) Sync() error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	target := w.appended
	f := w.f
	sealed := w.sealed
	w.sealed = nil
	w.mu.Unlock()
	if f == nil {
		return fmt.Errorf("wal: closed")
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for _, s := range sealed {
		if err := w.fsync(s); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
	}
	if w.durable.Load() < target {
		if err := w.fsync(f); err != nil {
			return err
		}
		w.durable.Store(target)
	}
	return nil
}

// AppendedLSN returns the LSN just past the last appended record.
func (w *WAL) AppendedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// DurableLSN returns the LSN up to which the log is known stable.
func (w *WAL) DurableLSN() uint64 { return w.durable.Load() }

// Segments returns the number of segment files currently on disk.
func (w *WAL) Segments() int {
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0
	}
	return len(segs)
}

// Close closes the active segment without forcing a flush (call Sync first
// for a clean shutdown).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	for _, s := range w.sealed {
		_ = s.Close()
	}
	w.sealed = nil
	err := w.f.Close()
	w.f = nil
	return err
}

// TruncateBefore removes segments whose every byte lies below lsn — called
// after a checkpoint has made those records redundant. The active segment is
// never removed.
func (w *WAL) TruncateBefore(lsn uint64) error {
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	w.mu.Lock()
	active := w.segStart
	w.mu.Unlock()
	for i, s := range segs {
		var end uint64
		if i+1 < len(segs) {
			end = segs[i+1].start
		} else {
			break // last segment is (or trails) the active one
		}
		if s.start == active || end > lsn {
			continue
		}
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return nil
}

// Replay streams every record whose end LSN is strictly greater than from,
// in log order, to fn. Within a segment, scanning stops at the first frame
// that fails validation. Whether that stop is an error depends on what is
// known to follow: a segment with a successor must scan cleanly through to
// the successor's start LSN — stopping short means a mid-log CRC mismatch
// over acknowledged records, reported as a CorruptError (wrapping
// ErrCorrupt) so the caller can degrade rather than silently lose the rest
// of the log. The last segment has no successor, so its stop is the benign
// torn tail of a crashed generation and replay ends cleanly.
func (w *WAL) Replay(from uint64, fn func(lsn uint64, t Type, payload []byte) error) error {
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for i, s := range segs {
		var expectedEnd uint64
		if i+1 < len(segs) {
			expectedEnd = segs[i+1].start - s.start
		}
		if err := replaySegment(s, from, expectedEnd, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment streams one segment's valid records. expectedEnd, when
// non-zero, is the byte length the valid scan must reach (the next
// segment's start); stopping short is mid-log corruption.
func replaySegment(s segment, from, expectedEnd uint64, fn func(lsn uint64, t Type, payload []byte) error) error {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return fmt.Errorf("wal: replay %s: %w", s.path, err)
	}
	pos := 0
	stop := func() error {
		if expectedEnd != 0 && uint64(pos) < expectedEnd {
			return &CorruptError{Path: s.path, LSN: s.start + uint64(pos)}
		}
		return nil
	}
	for {
		if pos+frameHeader > len(data) {
			return stop() // clean end or torn header
		}
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		if n > maxRecord || pos+frameHeader+n > len(data) {
			return stop() // torn or garbage length
		}
		t := Type(data[pos+4])
		want := binary.LittleEndian.Uint32(data[pos+5:])
		payload := data[pos+frameHeader : pos+frameHeader+n]
		crc := crc32.Update(0, crc32.IEEETable, data[pos+4:pos+5])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != want {
			return stop() // torn tail or corruption
		}
		pos += frameHeader + n
		end := s.start + uint64(pos)
		if end > from {
			if err := fn(end, t, payload); err != nil {
				return err
			}
		}
	}
}

// Verify checks the integrity of every sealed segment that has a successor:
// its CRC-valid prefix must reach the successor's start. The active segment
// (and a trailing sealed one with no successor) is skipped — its tail is
// legitimately in flux. This is the scrubber's WAL primitive.
func (w *WAL) Verify() error {
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	w.mu.Lock()
	active := w.segStart
	w.mu.Unlock()
	for i, s := range segs {
		if s.start >= active || i+1 >= len(segs) {
			break
		}
		expectedEnd := segs[i+1].start - s.start
		valid, err := validBytes(s.path)
		if err != nil {
			return err
		}
		if valid < expectedEnd {
			return &CorruptError{Path: s.path, LSN: s.start + valid}
		}
	}
	return nil
}

// segment is one on-disk log file, named by the LSN of its first byte.
type segment struct {
	start uint64
	path  string
}

func segmentPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%020d.seg", start))
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		start, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segment{start: start, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// resyncWindow bounds how far past an invalid frame scanTail searches for a
// later valid frame when classifying a tear.
const resyncWindow = 1 << 20

// scanTail measures the CRC-valid prefix of a segment and classifies what
// follows it: resync is true when a later valid frame exists past the
// invalid point, which means the tear is mid-log corruption of acknowledged
// records rather than the benign torn tail of a crash (where nothing valid
// can follow the last partial write).
func scanTail(path string) (valid uint64, resync bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	pos := int(validPrefix(data))
	if pos >= len(data) {
		return uint64(pos), false, nil
	}
	// Try every offset after the invalid frame as a candidate frame start.
	limit := len(data)
	if pos+resyncWindow < limit {
		limit = pos + resyncWindow
	}
	for off := pos + 1; off+frameHeader <= limit; off++ {
		if t := data[off+4]; t < byte(TypeReport) || t > byte(TypeRefresh) {
			continue
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n > maxRecord || off+frameHeader+n > len(data) {
			continue
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		crc := crc32.Update(0, crc32.IEEETable, data[off+4:off+5])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc == binary.LittleEndian.Uint32(data[off+5:]) {
			return uint64(pos), true, nil
		}
	}
	return uint64(pos), false, nil
}

// validBytes measures the CRC-valid prefix of one segment file.
func validBytes(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	return validPrefix(data), nil
}

// validPrefix measures the CRC-valid prefix of a segment image.
func validPrefix(data []byte) uint64 {
	pos := 0
	for {
		if pos+frameHeader > len(data) {
			return uint64(pos)
		}
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		if n > maxRecord || pos+frameHeader+n > len(data) {
			return uint64(pos)
		}
		payload := data[pos+frameHeader : pos+frameHeader+n]
		crc := crc32.Update(0, crc32.IEEETable, data[pos+4:pos+5])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != binary.LittleEndian.Uint32(data[pos+5:]) {
			return uint64(pos)
		}
		pos += frameHeader + n
	}
}
