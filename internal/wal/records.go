package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/monitor"
)

// Record payload codecs. Everything is fixed-width little-endian: an Object
// is 48 bytes (id + pos + vel + t), a RangeQuery is its kind byte plus
// twelve float64 fields, so encode/decode never allocates per field and the
// formats double as the checkpoint file's vocabulary.

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func takeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("wal: truncated record")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func takeF64(b []byte) (float64, []byte, error) {
	u, rest, err := takeU64(b)
	return math.Float64frombits(u), rest, err
}

// objectBytes is the wire size of one model.Object.
const objectBytes = 48

// AppendObject appends the 48-byte encoding of o.
func AppendObject(b []byte, o model.Object) []byte {
	b = appendU64(b, uint64(o.ID))
	b = appendF64(b, o.Pos.X)
	b = appendF64(b, o.Pos.Y)
	b = appendF64(b, o.Vel.X)
	b = appendF64(b, o.Vel.Y)
	b = appendF64(b, o.T)
	return b
}

// TakeObject decodes one object from the front of b.
func TakeObject(b []byte) (model.Object, []byte, error) {
	if len(b) < objectBytes {
		return model.Object{}, nil, fmt.Errorf("wal: truncated object")
	}
	var o model.Object
	o.ID = model.ObjectID(binary.LittleEndian.Uint64(b))
	o.Pos.X = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	o.Pos.Y = math.Float64frombits(binary.LittleEndian.Uint64(b[16:]))
	o.Vel.X = math.Float64frombits(binary.LittleEndian.Uint64(b[24:]))
	o.Vel.Y = math.Float64frombits(binary.LittleEndian.Uint64(b[32:]))
	o.T = math.Float64frombits(binary.LittleEndian.Uint64(b[40:]))
	return o, b[objectBytes:], nil
}

// EncodeReport encodes a single-object report record.
func EncodeReport(o model.Object) []byte {
	return AppendObject(make([]byte, 0, objectBytes), o)
}

// DecodeReport decodes a TypeReport payload.
func DecodeReport(p []byte) (model.Object, error) {
	o, rest, err := TakeObject(p)
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("wal: trailing bytes in report record")
	}
	return o, err
}

// EncodeReportBatch encodes a batch report record.
func EncodeReportBatch(objs []model.Object) []byte {
	b := make([]byte, 0, 8+len(objs)*objectBytes)
	b = appendU64(b, uint64(len(objs)))
	for _, o := range objs {
		b = AppendObject(b, o)
	}
	return b
}

// AppendReportBatch appends a batch report record covering every object in
// every group to b (typically a pooled buffer from GetBuf), so callers that
// already hold their objects grouped per shard never flatten them first.
func AppendReportBatch(b []byte, groups [][]model.Object) []byte {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	b = appendU64(b, uint64(total))
	for _, g := range groups {
		for _, o := range g {
			b = AppendObject(b, o)
		}
	}
	return b
}

// DecodeReportBatch decodes a TypeReportBatch payload.
func DecodeReportBatch(p []byte) ([]model.Object, error) {
	n, rest, err := takeU64(p)
	if err != nil {
		return nil, err
	}
	if uint64(len(rest)) != n*objectBytes {
		return nil, fmt.Errorf("wal: batch record length mismatch")
	}
	objs := make([]model.Object, n)
	for i := range objs {
		objs[i], rest, _ = TakeObject(rest)
	}
	return objs, nil
}

// EncodeRemove encodes a remove record.
func EncodeRemove(id model.ObjectID) []byte {
	return AppendRemove(make([]byte, 0, 8), id)
}

// AppendRemove appends a remove record to b.
func AppendRemove(b []byte, id model.ObjectID) []byte {
	return appendU64(b, uint64(id))
}

// DecodeRemove decodes a TypeRemove payload.
func DecodeRemove(p []byte) (model.ObjectID, error) {
	id, rest, err := takeU64(p)
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("wal: trailing bytes in remove record")
	}
	return model.ObjectID(id), err
}

func appendQuery(b []byte, q model.RangeQuery) []byte {
	b = append(b, byte(q.Kind))
	b = appendF64(b, q.Rect.MinX)
	b = appendF64(b, q.Rect.MinY)
	b = appendF64(b, q.Rect.MaxX)
	b = appendF64(b, q.Rect.MaxY)
	b = appendF64(b, q.Circle.C.X)
	b = appendF64(b, q.Circle.C.Y)
	b = appendF64(b, q.Circle.R)
	b = appendF64(b, q.Vel.X)
	b = appendF64(b, q.Vel.Y)
	b = appendF64(b, q.Now)
	b = appendF64(b, q.T0)
	b = appendF64(b, q.T1)
	return b
}

func takeQuery(b []byte) (model.RangeQuery, []byte, error) {
	if len(b) < 1+12*8 {
		return model.RangeQuery{}, nil, fmt.Errorf("wal: truncated query")
	}
	var q model.RangeQuery
	q.Kind = model.QueryKind(b[0])
	b = b[1:]
	fields := []*float64{
		&q.Rect.MinX, &q.Rect.MinY, &q.Rect.MaxX, &q.Rect.MaxY,
		&q.Circle.C.X, &q.Circle.C.Y, &q.Circle.R,
		&q.Vel.X, &q.Vel.Y, &q.Now, &q.T0, &q.T1,
	}
	for _, f := range fields {
		*f, b, _ = takeF64(b)
	}
	return q, b, nil
}

// AppendSubscription appends the fixed-width encoding of sub.
func AppendSubscription(b []byte, sub monitor.Subscription) []byte {
	b = appendQuery(b, sub.Query)
	b = appendF64(b, sub.Horizon)
	b = appendF64(b, sub.Window)
	return b
}

// TakeSubscription decodes one subscription from the front of b.
func TakeSubscription(b []byte) (monitor.Subscription, []byte, error) {
	var sub monitor.Subscription
	q, rest, err := takeQuery(b)
	if err != nil {
		return sub, nil, err
	}
	sub.Query = q
	if sub.Horizon, rest, err = takeF64(rest); err != nil {
		return sub, nil, err
	}
	if sub.Window, rest, err = takeF64(rest); err != nil {
		return sub, nil, err
	}
	return sub, rest, nil
}

// EncodeSubscribe encodes a subscribe record: the engine-assigned id, the
// subscription, and the registration time (replay must re-seed the result
// set at the same clock).
func EncodeSubscribe(id monitor.SubscriptionID, sub monitor.Subscription, now float64) []byte {
	return AppendSubscribe(make([]byte, 0, 8+1+14*8), id, sub, now)
}

// AppendSubscribe appends a subscribe record to b.
func AppendSubscribe(b []byte, id monitor.SubscriptionID, sub monitor.Subscription, now float64) []byte {
	b = appendU64(b, uint64(id))
	b = AppendSubscription(b, sub)
	b = appendF64(b, now)
	return b
}

// DecodeSubscribe decodes a TypeSubscribe payload.
func DecodeSubscribe(p []byte) (monitor.SubscriptionID, monitor.Subscription, float64, error) {
	id, rest, err := takeU64(p)
	if err != nil {
		return 0, monitor.Subscription{}, 0, err
	}
	sub, rest, err := TakeSubscription(rest)
	if err != nil {
		return 0, monitor.Subscription{}, 0, err
	}
	now, rest, err := takeF64(rest)
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("wal: trailing bytes in subscribe record")
	}
	return monitor.SubscriptionID(id), sub, now, err
}

// EncodeUnsubscribe encodes an unsubscribe record.
func EncodeUnsubscribe(id monitor.SubscriptionID) []byte {
	return AppendUnsubscribe(make([]byte, 0, 8), id)
}

// AppendUnsubscribe appends an unsubscribe record to b.
func AppendUnsubscribe(b []byte, id monitor.SubscriptionID) []byte {
	return appendU64(b, uint64(id))
}

// DecodeUnsubscribe decodes a TypeUnsubscribe payload.
func DecodeUnsubscribe(p []byte) (monitor.SubscriptionID, error) {
	id, rest, err := takeU64(p)
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("wal: trailing bytes in unsubscribe record")
	}
	return monitor.SubscriptionID(id), err
}

// EncodeRefresh encodes a subscription-refresh record (pure time advance).
func EncodeRefresh(now float64) []byte {
	return AppendRefresh(make([]byte, 0, 8), now)
}

// AppendRefresh appends a subscription-refresh record to b.
func AppendRefresh(b []byte, now float64) []byte {
	return appendF64(b, now)
}

// DecodeRefresh decodes a TypeRefresh payload.
func DecodeRefresh(p []byte) (float64, error) {
	now, rest, err := takeF64(p)
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("wal: trailing bytes in refresh record")
	}
	return now, err
}
