package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/storage"
)

func appendRecord(t *testing.T, w *WAL, typ Type, payload []byte) uint64 {
	t.Helper()
	lsn, err := w.Append(typ, payload)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return lsn
}

func collect(t *testing.T, w *WAL, from uint64) (types []Type, payloads [][]byte, lsns []uint64) {
	t.Helper()
	err := w.Replay(from, func(lsn uint64, typ Type, p []byte) error {
		types = append(types, typ)
		payloads = append(payloads, append([]byte(nil), p...))
		lsns = append(lsns, lsn)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return types, payloads, lsns
}

func TestAppendCommitReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	var lsns []uint64
	for i := 0; i < 100; i++ {
		p := []byte{byte(i), byte(i >> 1), byte(i % 7)}
		want = append(want, p)
		lsns = append(lsns, appendRecord(t, w, TypeReport, p))
	}
	if err := w.Commit(lsns[len(lsns)-1]); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := w.DurableLSN(); got != w.AppendedLSN() {
		t.Fatalf("durable %d != appended %d after Commit", got, w.AppendedLSN())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	types, payloads, gotLSNs := collect(t, w2, 0)
	if len(payloads) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(payloads), len(want))
	}
	for i := range want {
		if types[i] != TypeReport {
			t.Fatalf("record %d type %d", i, types[i])
		}
		if string(payloads[i]) != string(want[i]) {
			t.Fatalf("record %d payload %v, want %v", i, payloads[i], want[i])
		}
		if gotLSNs[i] != lsns[i] {
			t.Fatalf("record %d lsn %d, want %d", i, gotLSNs[i], lsns[i])
		}
	}
	// Replay from a mid-log LSN yields exactly the records after it.
	_, tail, _ := collect(t, w2, lsns[49])
	if len(tail) != 50 {
		t.Fatalf("tail replay from lsn[49] yielded %d records, want 50", len(tail))
	}
	if string(tail[0]) != string(want[50]) {
		t.Fatalf("tail starts with %v, want %v", tail[0], want[50])
	}
}

func TestSegmentRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	var lsns []uint64
	for i := 0; i < 40; i++ {
		lsns = append(lsns, appendRecord(t, w, TypeRemove, payload))
	}
	if w.Segments() < 3 {
		t.Fatalf("expected >= 3 segments after 40 x 73-byte frames at 256B rotation, got %d", w.Segments())
	}
	if err := w.Commit(lsns[len(lsns)-1]); err != nil {
		t.Fatal(err)
	}
	before := w.Segments()
	if err := w.TruncateBefore(lsns[20]); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	if w.Segments() >= before {
		t.Fatalf("truncation reclaimed nothing: %d -> %d segments", before, w.Segments())
	}
	// Everything at or after the truncation point must still replay.
	_, payloads, _ := collect(t, w, lsns[20])
	if len(payloads) != 19 {
		t.Fatalf("replayed %d records after truncation, want 19", len(payloads))
	}
	// The active segment is never removed, even if fully covered.
	if err := w.TruncateBefore(w.AppendedLSN() + 1000); err != nil {
		t.Fatal(err)
	}
	if w.Segments() < 1 {
		t.Fatal("active segment was reclaimed")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailIsDropped(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendRecord(t, w, TypeReport, []byte("alpha"))
	last := appendRecord(t, w, TypeReport, []byte("beta"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Corrupt the tail: truncate the segment mid-frame of the last record.
	seg := segmentPath(dir, 0)
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	_, payloads, _ := collect(t, w2, 0)
	if len(payloads) != 1 || string(payloads[0]) != "alpha" {
		t.Fatalf("torn tail replay gave %d records %q, want just alpha", len(payloads), payloads)
	}
	// New appends land after the valid prefix and replay cleanly.
	if lsn := appendRecord(t, w2, TypeReport, []byte("gamma")); lsn <= last-uint64(len("beta")) {
		t.Fatalf("new append lsn %d not past the valid prefix", lsn)
	}
	_, payloads, _ = collect(t, w2, 0)
	if len(payloads) != 2 || string(payloads[1]) != "gamma" {
		t.Fatalf("post-repair replay gave %q", payloads)
	}
}

func TestCorruptMiddleStopsSegmentReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendRecord(t, w, TypeReport, []byte("aaaa"))
	appendRecord(t, w, TypeReport, []byte("bbbb"))
	appendRecord(t, w, TypeReport, []byte("cccc"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Flip a payload byte of the middle record: CRC fails there and replay
	// of the segment stops, keeping only the prefix.
	seg := segmentPath(dir, 0)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[frameHeader+4+frameHeader] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	_, payloads, _ := collect(t, w2, 0)
	if len(payloads) != 1 || string(payloads[0]) != "aaaa" {
		t.Fatalf("corrupt-middle replay gave %q, want just aaaa", payloads)
	}
}

func TestGroupCommitSharesFsyncs(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: GroupCommit(2 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsn, err := w.Append(TypeReport, []byte("payload"))
				if err != nil {
					errs <- err
					return
				}
				if err := w.Commit(lsn); err != nil {
					errs <- err
					return
				}
				if w.DurableLSN() < lsn {
					errs <- errors.New("Commit returned before record durable")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	_, payloads, _ := collect(t, w, 0)
	if len(payloads) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(payloads), writers*each)
	}
}

func TestSyncNoneCommitDoesNotFsync(t *testing.T) {
	dir := t.TempDir()
	fi := storage.NewFaultInjector(1) // the very first sync point kills
	w, err := Open(dir, Options{Policy: None(), Injector: fi})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	lsn := appendRecord(t, w, TypeReport, []byte("x"))
	// Under SyncNone, Commit must not reach a sync point (the injector
	// would kill it).
	if err := w.Commit(lsn); err != nil {
		t.Fatalf("SyncNone Commit: %v", err)
	}
	if fi.SyncPoints() != 0 {
		t.Fatalf("SyncNone Commit hit %d sync points", fi.SyncPoints())
	}
}

func TestInjectedCrashPoisonsLog(t *testing.T) {
	dir := t.TempDir()
	fi := storage.NewFaultInjector(2)
	w, err := Open(dir, Options{Injector: fi})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	lsn := appendRecord(t, w, TypeReport, []byte("one"))
	if err := w.Commit(lsn); err != nil {
		t.Fatalf("first commit should survive: %v", err)
	}
	lsn2, err := w.Append(TypeReport, []byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(lsn2); !errors.Is(err, storage.ErrInjectedCrash) {
		t.Fatalf("second commit error = %v, want ErrInjectedCrash", err)
	}
	// After the kill, appends are refused too.
	if _, err := w.Append(TypeReport, []byte("three")); !errors.Is(err, storage.ErrInjectedCrash) {
		t.Fatalf("post-crash append error = %v, want ErrInjectedCrash", err)
	}
}

func TestTruncateBeforeKeepsLastSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		appendRecord(t, w, TypeReport, make([]byte, 60))
	}
	if err := w.TruncateBefore(w.AppendedLSN()); err != nil {
		t.Fatal(err)
	}
	if got := w.Segments(); got != 1 {
		t.Fatalf("segments after full truncation = %d, want 1 (the active one)", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A reopen after truncation continues from the same LSN space.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) == 0 {
		t.Fatal("no segment files after reopen")
	}
}

func TestRecordCodecsRoundTrip(t *testing.T) {
	o := model.Object{ID: 42, Pos: geom.Vec2{X: 1.5, Y: -2.25}, Vel: geom.Vec2{X: 0.125, Y: 9}, T: 77.5}
	if got, err := DecodeReport(EncodeReport(o)); err != nil || got != o {
		t.Fatalf("report round trip: %+v, %v", got, err)
	}
	batch := []model.Object{o, {ID: 7, T: 1}, {ID: 9, Pos: geom.Vec2{X: 3, Y: 4}}}
	got, err := DecodeReportBatch(EncodeReportBatch(batch))
	if err != nil || len(got) != len(batch) {
		t.Fatalf("batch round trip: %d records, %v", len(got), err)
	}
	for i := range batch {
		if got[i] != batch[i] {
			t.Fatalf("batch[%d] = %+v, want %+v", i, got[i], batch[i])
		}
	}
	if id, err := DecodeRemove(EncodeRemove(99)); err != nil || id != 99 {
		t.Fatalf("remove round trip: %d, %v", id, err)
	}
	sub := monitor.Subscription{
		Query: model.RangeQuery{
			Kind: model.TimeSlice,
			Rect: geom.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4},
			Now:  10, T0: 10, T1: 12,
		},
		Horizon: 30,
		Window:  5,
	}
	id, gotSub, now, err := DecodeSubscribe(EncodeSubscribe(17, sub, 123.5))
	if err != nil || id != 17 || now != 123.5 || gotSub != sub {
		t.Fatalf("subscribe round trip: id=%d now=%v err=%v sub=%+v", id, now, err, gotSub)
	}
	if id, err := DecodeUnsubscribe(EncodeUnsubscribe(17)); err != nil || id != 17 {
		t.Fatalf("unsubscribe round trip: %d, %v", id, err)
	}
	if now, err := DecodeRefresh(EncodeRefresh(55.25)); err != nil || now != 55.25 {
		t.Fatalf("refresh round trip: %v, %v", now, err)
	}
	// Truncated and trailing-byte payloads must error, not misdecode.
	if _, err := DecodeReport([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated report decoded")
	}
	if _, err := DecodeReport(append(EncodeReport(o), 0)); err == nil {
		t.Fatal("oversized report decoded")
	}
	if _, err := DecodeReportBatch(EncodeReportBatch(batch)[:20]); err == nil {
		t.Fatal("truncated batch decoded")
	}
}

func TestMidLogCorruptionInEarlierSegmentFailsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 48)
	for i := 0; i < 12; i++ {
		payload[0] = byte(i)
		appendRecord(t, w, TypeReport, payload)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Segments() < 3 {
		t.Fatalf("want >= 3 segments, got %d", w.Segments())
	}
	w.Close()

	// Corrupt a record in the FIRST segment — a segment with successors, so
	// every byte of it was acknowledged. Replay must not silently stop: it
	// reports a CorruptError wrapping ErrCorrupt.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	b[frameHeader+10] ^= 0xFF
	if err := os.WriteFile(segs[0].path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	replayErr := w2.Replay(0, func(uint64, Type, []byte) error { return nil })
	if !errors.Is(replayErr, ErrCorrupt) {
		t.Fatalf("replay over corrupt sealed segment = %v, want ErrCorrupt", replayErr)
	}
	var ce *CorruptError
	if !errors.As(replayErr, &ce) || ce.LSN != 0 {
		t.Fatalf("corrupt error %v does not point at frame 0", replayErr)
	}
	// Verify (the scrubber's primitive) finds the same corruption without a
	// full replay.
	if err := w2.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify = %v, want ErrCorrupt", err)
	}
}

func TestCorruptTailDistinguishedFromTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendRecord(t, w, TypeReport, []byte("one"))
	appendRecord(t, w, TypeReport, []byte("two"))
	appendRecord(t, w, TypeReport, []byte("three"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Case 1: a benign torn tail — the last record is cut short. No valid
	// frame can follow a partial write, so CorruptTail is nil.
	seg := segmentPath(dir, 0)
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-2); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.CorruptTail(); err != nil {
		t.Fatalf("torn tail classified as corruption: %v", err)
	}
	w2.Close()

	// Case 2: the MIDDLE record's payload is flipped while the final record
	// is intact — valid frames exist past the bad one, so this is mid-log
	// corruption of acknowledged data. Open still succeeds with the prefix,
	// but CorruptTail reports it.
	b := append([]byte(nil), orig...)
	b[frameHeader+3+frameHeader] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// Remove the replacement active segment Open created in case 1 so the
	// only segment is the corrupted one.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.start != 0 {
			os.Remove(s.path)
		}
	}
	w3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if err := w3.CorruptTail(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("CorruptTail = %v, want ErrCorrupt", err)
	}
	// The valid prefix still replays (no error: the corrupted segment's
	// expected end is exactly the prefix the reopened log continues from).
	_, payloads, _ := collect(t, w3, 0)
	if len(payloads) != 1 || string(payloads[0]) != "one" {
		t.Fatalf("prefix replay gave %q, want just one", payloads)
	}
}

func TestWALTransientFaultsRetried(t *testing.T) {
	dir := t.TempDir()
	fi := storage.NewScriptedInjector(
		storage.FaultRule{Op: storage.OpWALAppend, Seq: 1, Kind: storage.FaultTransientEIO},
		storage.FaultRule{Op: storage.OpWALSync, Seq: 1, Kind: storage.FaultSyncFail},
	)
	w, err := Open(dir, Options{
		Injector: fi,
		Retry:    storage.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Both the first append attempt and the first fsync attempt fail with a
	// transient fault; the retry loop hides both from the caller.
	lsn, err := w.Append(TypeReport, []byte("retried"))
	if err != nil {
		t.Fatalf("Append with transient fault = %v, want retried success", err)
	}
	if err := w.Commit(lsn); err != nil {
		t.Fatalf("Commit with transient fsync fault = %v, want retried success", err)
	}
	if w.Retries() < 2 {
		t.Fatalf("Retries = %d, want >= 2", w.Retries())
	}
	_, payloads, _ := collect(t, w, 0)
	if len(payloads) != 1 || string(payloads[0]) != "retried" {
		t.Fatalf("replay gave %q", payloads)
	}
}

func TestWALPermanentAppendFaultSurfaces(t *testing.T) {
	dir := t.TempDir()
	fi := storage.NewScriptedInjector(
		storage.FaultRule{Op: storage.OpWALAppend, Seq: 2, Kind: storage.FaultPermanentEIO},
	)
	w, err := Open(dir, Options{
		Injector: fi,
		Retry:    storage.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(TypeReport, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	_, err = w.Append(TypeReport, []byte("doomed"))
	if err == nil || storage.IsTransient(err) {
		t.Fatalf("append under permanent fault = %v, want non-transient error", err)
	}
	if !storage.IsMediaFault(err) {
		t.Fatalf("append error %v is not classified as a media fault", err)
	}
	// The fault fired before any byte hit the file: the log is NOT poisoned
	// for durability purposes, and the latched op keeps failing.
	if _, err := w.Append(TypeReport, []byte("still doomed")); err == nil {
		t.Fatal("latched permanent append fault cleared itself")
	}
}
