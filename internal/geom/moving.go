package geom

import (
	"fmt"
	"math"
)

// MovingRect is a time-parameterized rectangle: the MBR/VBR pair of the
// TPR-tree family (Section 3.1 of the VP paper). At time t >= Ref the
// rectangle is
//
//	[MBR.MinX + VBR.MinX*(t-Ref), MBR.MaxX + VBR.MaxX*(t-Ref)] x (same in y)
//
// VBR.Min* are the (signed) speeds of the lower boundaries and VBR.Max* of
// the upper boundaries. For a conservative bounding rectangle VBR.Min <=
// VBR.Max per axis, so the rectangle never shrinks; transformed rectangles
// used by the cost model keep the same property.
type MovingRect struct {
	MBR Rect    // reference rectangle at time Ref
	VBR Rect    // boundary velocities
	Ref float64 // reference time
}

// MovingPointRect returns the degenerate moving rectangle tracking a point
// with position p and velocity v at reference time ref.
func MovingPointRect(p, v Vec2, ref float64) MovingRect {
	return MovingRect{MBR: RectFromPoint(p), VBR: Rect{v.X, v.Y, v.X, v.Y}, Ref: ref}
}

// AtTime returns the rectangle occupied at time t (t may precede Ref; the
// expansion is applied linearly in both directions, which callers use for
// rewinding reference times).
func (m MovingRect) AtTime(t float64) Rect {
	dt := t - m.Ref
	out := Rect{
		m.MBR.MinX + m.VBR.MinX*dt,
		m.MBR.MinY + m.VBR.MinY*dt,
		m.MBR.MaxX + m.VBR.MaxX*dt,
		m.MBR.MaxY + m.VBR.MaxY*dt,
	}
	if out.MinX > out.MaxX {
		out.MinX, out.MaxX = out.MaxX, out.MinX
	}
	if out.MinY > out.MaxY {
		out.MinY, out.MaxY = out.MaxY, out.MinY
	}
	return out
}

// Rebase returns an equivalent MovingRect whose reference time is t.
func (m MovingRect) Rebase(t float64) MovingRect {
	return MovingRect{MBR: m.AtTime(t), VBR: m.VBR, Ref: t}
}

// Union returns the tightest MovingRect (at reference time ref) that
// contains both operands for every t >= ref: the MBR is the union of the
// operand rectangles at ref and each VBR boundary takes the more permissive
// speed. This is how TPR-tree nodes bound their children.
func (m MovingRect) Union(o MovingRect, ref float64) MovingRect {
	a, b := m.Rebase(ref), o.Rebase(ref)
	return MovingRect{
		MBR: a.MBR.Union(b.MBR),
		VBR: Rect{
			math.Min(a.VBR.MinX, b.VBR.MinX),
			math.Min(a.VBR.MinY, b.VBR.MinY),
			math.Max(a.VBR.MaxX, b.VBR.MaxX),
			math.Max(a.VBR.MaxY, b.VBR.MaxY),
		},
		Ref: ref,
	}
}

// UnionAll returns the bounding MovingRect of rs at reference time ref.
// It panics on an empty slice.
func UnionAll(rs []MovingRect, ref float64) MovingRect {
	if len(rs) == 0 {
		panic("geom: UnionAll of empty slice")
	}
	out := rs[0].Rebase(ref)
	for _, r := range rs[1:] {
		out = out.Union(r, ref)
	}
	return out
}

// Contains reports whether m contains o for every time in [t0, t1].
// Because boundaries move linearly, containment at both endpoints implies
// containment throughout.
func (m MovingRect) Contains(o MovingRect, t0, t1 float64) bool {
	return m.AtTime(t0).ContainsRect(o.AtTime(t0)) && m.AtTime(t1).ContainsRect(o.AtTime(t1))
}

// IntersectsDuring reports whether m and o share a point at some time in
// [t0, t1]. Each axis contributes two linear constraints (lower of one below
// upper of the other); the rectangles intersect when the intersection of the
// four constraint intervals with [t0, t1] is non-empty. This is the exact
// time-parameterized intersection test used by TPR-tree queries and the
// "transformed node" trick of Fig. 3.
func (m MovingRect) IntersectsDuring(o MovingRect, t0, t1 float64) bool {
	if t1 < t0 {
		return false
	}
	lo, hi := t0, t1
	// Constraint: mLow(t) <= oHigh(t)  ==>  (mLow0 - oHigh0) + (mLowV - oHighV)*(t-base) <= 0
	// All constraints are expressed relative to base time t0.
	ma, oa := m.Rebase(t0), o.Rebase(t0)
	type lin struct{ c0, cv float64 } // c0 + cv*(t - t0) <= 0
	cons := [4]lin{
		{ma.MBR.MinX - oa.MBR.MaxX, ma.VBR.MinX - oa.VBR.MaxX},
		{oa.MBR.MinX - ma.MBR.MaxX, oa.VBR.MinX - ma.VBR.MaxX},
		{ma.MBR.MinY - oa.MBR.MaxY, ma.VBR.MinY - oa.VBR.MaxY},
		{oa.MBR.MinY - ma.MBR.MaxY, oa.VBR.MinY - ma.VBR.MaxY},
	}
	for _, c := range cons {
		if c.cv == 0 {
			if c.c0 > 0 {
				return false
			}
			continue
		}
		// c.c0 + c.cv * s <= 0, s = t - t0 in [0, t1-t0]
		bound := -c.c0 / c.cv
		if c.cv > 0 {
			// satisfied for s <= bound
			hi = math.Min(hi, t0+bound)
		} else {
			// satisfied for s >= bound
			lo = math.Max(lo, t0+bound)
		}
		if lo > hi {
			return false
		}
	}
	return lo <= hi
}

// IntersectionInterval returns the sub-interval of [t0, t1] during which m
// and o intersect, and ok=false if they never do. Used by interval queries
// to report first-contact times and by tests as an oracle.
func (m MovingRect) IntersectionInterval(o MovingRect, t0, t1 float64) (lo, hi float64, ok bool) {
	if t1 < t0 {
		return 0, 0, false
	}
	lo, hi = t0, t1
	ma, oa := m.Rebase(t0), o.Rebase(t0)
	type lin struct{ c0, cv float64 }
	cons := [4]lin{
		{ma.MBR.MinX - oa.MBR.MaxX, ma.VBR.MinX - oa.VBR.MaxX},
		{oa.MBR.MinX - ma.MBR.MaxX, oa.VBR.MinX - ma.VBR.MaxX},
		{ma.MBR.MinY - oa.MBR.MaxY, ma.VBR.MinY - oa.VBR.MaxY},
		{oa.MBR.MinY - ma.MBR.MaxY, oa.VBR.MinY - ma.VBR.MaxY},
	}
	for _, c := range cons {
		if c.cv == 0 {
			if c.c0 > 0 {
				return 0, 0, false
			}
			continue
		}
		bound := t0 - c.c0/c.cv
		if c.cv > 0 {
			hi = math.Min(hi, bound)
		} else {
			lo = math.Max(lo, bound)
		}
		if lo > hi {
			return 0, 0, false
		}
	}
	return lo, hi, true
}

// SweepVolume returns the integral of Area(t) dt for t in [t0, t1]: the
// "volume of the sweeping region" V_N'(qT) of the TPR* cost model (Eq. 1).
// Widths are clamped at zero, handling transformed rectangles that start
// empty and grow (or shrink to nothing).
//
// The integrand is a piecewise quadratic w(t)*h(t) with w, h linear and
// clamped at 0; we split [t0,t1] at the (at most two) clamp roots and
// integrate each quadratic piece exactly.
func (m MovingRect) SweepVolume(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	a := m.Rebase(t0)
	w0 := a.MBR.Width()
	h0 := a.MBR.Height()
	dw := a.VBR.MaxX - a.VBR.MinX
	dh := a.VBR.MaxY - a.VBR.MinY
	T := t1 - t0

	// Collect breakpoints where w or h crosses zero inside (0, T).
	breaks := []float64{0, T}
	addRoot := func(v0, dv float64) {
		if dv != 0 {
			r := -v0 / dv
			if r > 0 && r < T {
				breaks = append(breaks, r)
			}
		}
	}
	addRoot(w0, dw)
	addRoot(h0, dh)
	sortFloats(breaks)

	total := 0.0
	for i := 0; i+1 < len(breaks); i++ {
		s0, s1 := breaks[i], breaks[i+1]
		if s1 <= s0 {
			continue
		}
		mid := (s0 + s1) / 2
		if w0+dw*mid <= 0 || h0+dh*mid <= 0 {
			continue // area is zero on this piece
		}
		// Integrate (w0+dw*s)(h0+dh*s) ds from s0 to s1.
		ii := func(s float64) float64 {
			return w0*h0*s + (w0*dh+h0*dw)*s*s/2 + dw*dh*s*s*s/3
		}
		total += ii(s1) - ii(s0)
	}
	return total
}

// sortFloats is a tiny insertion sort; the slices here have <= 4 elements.
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Transformed returns the "transformed node" N' of m with respect to the
// moving query q, per Section 3.1: the MBR is inflated by half the query
// extent per axis and the VBR takes the relative velocities, so that m
// intersects q during [t0,t1] iff N' contains the (moving) center point of
// q. Both operands are rebased to ref first.
func (m MovingRect) Transformed(q MovingRect, ref float64) MovingRect {
	a, b := m.Rebase(ref), q.Rebase(ref)
	hx := b.MBR.Width() / 2
	hy := b.MBR.Height() / 2
	return MovingRect{
		MBR: a.MBR.ExpandXY(hx, hy),
		VBR: Rect{
			a.VBR.MinX - b.VBR.MaxX,
			a.VBR.MinY - b.VBR.MaxY,
			a.VBR.MaxX - b.VBR.MinX,
			a.VBR.MaxY - b.VBR.MinY,
		},
		Ref: ref,
	}
}

// EnlargedSweep returns the integrated sweeping volume over [t0, t1] of the
// union of m with o, minus that of m alone: the ChooseSubtree metric of the
// TPR*-tree ("minimal increase in integrated area").
func (m MovingRect) EnlargedSweep(o MovingRect, t0, t1 float64) float64 {
	u := m.Union(o, t0)
	return u.SweepVolume(t0, t1) - m.Rebase(t0).SweepVolume(t0, t1)
}

// String implements fmt.Stringer.
func (m MovingRect) String() string {
	return fmt.Sprintf("{MBR:%v VBR:%v @%g}", m.MBR, m.VBR, m.Ref)
}
