package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVecBasics(t *testing.T) {
	v := V(3, 4)
	if v.Norm() != 5 {
		t.Fatalf("Norm = %g, want 5", v.Norm())
	}
	if v.NormSq() != 25 {
		t.Fatalf("NormSq = %g, want 25", v.NormSq())
	}
	if got := v.Add(V(1, -1)); got != V(4, 3) {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Sub(V(1, -1)); got != V(2, 5) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scale(2); got != V(6, 8) {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Dot(V(2, 1)); got != 10 {
		t.Fatalf("Dot = %g", got)
	}
	if got := v.Cross(V(1, 0)); got != -4 {
		t.Fatalf("Cross = %g", got)
	}
	if got := v.Perp(); got != V(-4, 3) {
		t.Fatalf("Perp = %v", got)
	}
	u := v.Normalize()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Fatalf("Normalize norm = %g", u.Norm())
	}
	if V(0, 0).Normalize() != V(0, 0) {
		t.Fatal("Normalize of zero should be zero")
	}
}

func TestPerpDistToAxis(t *testing.T) {
	// Distance of (1,1) to the x-axis is 1.
	if d := V(1, 1).PerpDistToAxis(V(5, 0)); !almostEq(d, 1, 1e-12) {
		t.Fatalf("dist = %g, want 1", d)
	}
	// Distance to the diagonal axis of a point on the diagonal is 0.
	if d := V(3, 3).PerpDistToAxis(V(1, 1)); !almostEq(d, 0, 1e-12) {
		t.Fatalf("dist = %g, want 0", d)
	}
	// Zero axis falls back to the norm.
	if d := V(3, 4).PerpDistToAxis(V(0, 0)); !almostEq(d, 5, 1e-12) {
		t.Fatalf("dist = %g, want 5", d)
	}
	// Sign of axis is irrelevant.
	if d1, d2 := V(2, 5).PerpDistToAxis(V(1, 2)), V(2, 5).PerpDistToAxis(V(-1, -2)); !almostEq(d1, d2, 1e-12) {
		t.Fatalf("axis sign changed distance: %g vs %g", d1, d2)
	}
}

func TestRotationRoundTrip(t *testing.T) {
	f := func(px, py, ang float64) bool {
		p := V(math.Mod(px, 1e6), math.Mod(py, 1e6))
		m := RotationByAngle(math.Mod(ang, 2*math.Pi))
		back := m.Transpose().Apply(m.Apply(p))
		return almostEq(back.X, p.X, 1e-6) && almostEq(back.Y, p.Y, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotationIsometry(t *testing.T) {
	f := func(ax, ay, bx, by, ang float64) bool {
		a, b := V(math.Mod(ax, 1e6), math.Mod(ay, 1e6)), V(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		m := RotationByAngle(ang)
		return almostEq(a.DistTo(b), m.Apply(a).DistTo(m.Apply(b)), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotationToMapsAxisToX(t *testing.T) {
	dir := V(1, 1).Normalize()
	m := RotationTo(dir)
	got := m.Apply(dir)
	if !almostEq(got.X, 1, 1e-12) || !almostEq(got.Y, 0, 1e-12) {
		t.Fatalf("axis maps to %v, want (1,0)", got)
	}
	if !almostEq(m.Det(), 1, 1e-12) {
		t.Fatalf("det = %g, want 1", m.Det())
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 4, 2)
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 || r.Perimeter() != 12 {
		t.Fatalf("bad metrics: %v", r)
	}
	if r.Center() != V(2, 1) {
		t.Fatalf("center = %v", r.Center())
	}
	if !r.ContainsPoint(V(4, 2)) || r.ContainsPoint(V(4.01, 2)) {
		t.Fatal("ContainsPoint boundary wrong")
	}
	// R normalizes corners.
	if R(4, 2, 0, 0) != r {
		t.Fatal("R should normalize corner order")
	}
}

func TestRectEmpty(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 || e.Width() != 0 {
		t.Fatal("empty rect should have zero metrics")
	}
	r := R(1, 1, 2, 2)
	if e.Union(r) != r || r.Union(e) != r {
		t.Fatal("union with empty should be identity")
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Fatal("empty intersects nothing")
	}
	if !r.ContainsRect(e) {
		t.Fatal("every rect contains the empty rect")
	}
}

func TestRectIntersectUnionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randRect := func() Rect {
		x, y := rng.Float64()*100, rng.Float64()*100
		return R(x, y, x+rng.Float64()*50, y+rng.Float64()*50)
	}
	for i := 0; i < 2000; i++ {
		a, b := randRect(), randRect()
		// Symmetry.
		if a.Intersects(b) != b.Intersects(a) {
			t.Fatal("Intersects not symmetric")
		}
		// Intersection non-empty iff Intersects.
		if a.Intersects(b) != !a.Intersect(b).IsEmpty() {
			t.Fatalf("Intersect/Intersects disagree: %v %v", a, b)
		}
		// Union contains both.
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatal("union does not contain operands")
		}
		// Intersection contained in both.
		iv := a.Intersect(b)
		if !iv.IsEmpty() && (!a.ContainsRect(iv) || !b.ContainsRect(iv)) {
			t.Fatal("intersection not contained in operands")
		}
		// Point sampling consistency.
		p := V(rng.Float64()*150, rng.Float64()*150)
		if a.ContainsPoint(p) && b.ContainsPoint(p) && !iv.ContainsPoint(p) {
			t.Fatal("intersection misses common point")
		}
		if a.ContainsPoint(p) && !u.ContainsPoint(p) {
			t.Fatal("union misses member point")
		}
	}
}

func TestRectTransformBound(t *testing.T) {
	r := R(0, 0, 10, 0) // degenerate horizontal segment
	m := RotationByAngle(math.Pi / 2)
	b := r.BoundOfTransformed(m)
	// Rotating the x-axis segment by 90 degrees in the "to-frame" mapping
	// sends (10,0) to (0,-10).
	if !b.ContainsPoint(V(0, -10)) || !b.ContainsPoint(V(0, 0)) {
		t.Fatalf("bound %v does not contain rotated segment", b)
	}
	if b.Width() > 1e-9 {
		t.Fatalf("rotated segment should be vertical, got width %g", b.Width())
	}
}

func TestCircle(t *testing.T) {
	c := Circle{C: V(5, 5), R: 2}
	if !c.ContainsPoint(V(5, 7)) || c.ContainsPoint(V(5, 7.01)) {
		t.Fatal("circle containment boundary wrong")
	}
	if got := c.Bound(); got != R(3, 3, 7, 7) {
		t.Fatalf("bound = %v", got)
	}
	if !c.IntersectsRect(R(6, 6, 10, 10)) {
		t.Fatal("circle should intersect corner-adjacent rect")
	}
	if c.IntersectsRect(R(7.5, 7.5, 10, 10)) {
		t.Fatal("circle should not reach far corner rect")
	}
	// Rect fully inside circle.
	if !c.IntersectsRect(R(4.5, 4.5, 5.5, 5.5)) {
		t.Fatal("rect inside circle must intersect")
	}
}

func TestMovingRectAtTime(t *testing.T) {
	m := MovingRect{MBR: R(0, 0, 2, 2), VBR: Rect{MinX: -1, MinY: 0, MaxX: 1, MaxY: 2}, Ref: 10}
	got := m.AtTime(12)
	want := R(-2, 0, 4, 6)
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("AtTime = %v, want %v", got, want)
	}
	if !m.AtTime(10).ApproxEqual(m.MBR, 0) {
		t.Fatal("AtTime(Ref) must be MBR")
	}
}

func TestMovingRectRebase(t *testing.T) {
	m := MovingRect{MBR: R(0, 0, 2, 2), VBR: Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}, Ref: 0}
	r := m.Rebase(5)
	for _, tt := range []float64{5, 6, 10} {
		if !r.AtTime(tt).ApproxEqual(m.AtTime(tt), 1e-9) {
			t.Fatalf("rebase changed extent at t=%g", tt)
		}
	}
}

func TestMovingRectUnionContains(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randMR := func() MovingRect {
		x, y := rng.Float64()*100, rng.Float64()*100
		return MovingRect{
			MBR: R(x, y, x+rng.Float64()*10, y+rng.Float64()*10),
			VBR: R(rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*4-2),
			Ref: rng.Float64() * 5,
		}
	}
	for i := 0; i < 500; i++ {
		a, b := randMR(), randMR()
		ref := 5.0
		u := a.Union(b, ref)
		for _, dt := range []float64{0, 1, 7, 30} {
			tt := ref + dt
			if !u.AtTime(tt).Expand(1e-9).ContainsRect(a.AtTime(tt)) {
				t.Fatalf("union misses a at t=%g", tt)
			}
			if !u.AtTime(tt).Expand(1e-9).ContainsRect(b.AtTime(tt)) {
				t.Fatalf("union misses b at t=%g", tt)
			}
		}
	}
}

// sampledIntersect is a brute-force oracle for IntersectsDuring.
func sampledIntersect(a, b MovingRect, t0, t1 float64, steps int) bool {
	for i := 0; i <= steps; i++ {
		tt := t0 + (t1-t0)*float64(i)/float64(steps)
		if a.AtTime(tt).Intersects(b.AtTime(tt)) {
			return true
		}
	}
	return false
}

func TestIntersectsDuringAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randMR := func() MovingRect {
		x, y := rng.Float64()*60, rng.Float64()*60
		return MovingRect{
			MBR: R(x, y, x+rng.Float64()*15, y+rng.Float64()*15),
			VBR: R(rng.Float64()*6-3, rng.Float64()*6-3, rng.Float64()*6-3, rng.Float64()*6-3),
			Ref: 0,
		}
	}
	agree, disagree := 0, 0
	for i := 0; i < 3000; i++ {
		a, b := randMR(), randMR()
		got := a.IntersectsDuring(b, 0, 20)
		want := sampledIntersect(a, b, 0, 20, 800)
		if got == want {
			agree++
			continue
		}
		// Sampling can only under-report (miss grazing contact); an exact
		// "true" against sampled "false" is acceptable, the reverse is not.
		if !got && want {
			t.Fatalf("IntersectsDuring=false but sampling found overlap: %v %v", a, b)
		}
		disagree++
	}
	if disagree > 60 { // grazing contacts should be rare
		t.Fatalf("too many grazing disagreements: %d/3000", disagree)
	}
	_ = agree
}

func TestIntersectionInterval(t *testing.T) {
	// Two unit squares approaching each other along x meet at t=4:
	// a spans [0,1], b starts at [9,10] moving -1 per ts.
	a := MovingRect{MBR: R(0, 0, 1, 1), VBR: Rect{}, Ref: 0}
	b := MovingRect{MBR: R(9, 0, 10, 1), VBR: Rect{MinX: -1, MaxX: -1}, Ref: 0}
	lo, hi, ok := a.IntersectionInterval(b, 0, 20)
	if !ok {
		t.Fatal("expected intersection")
	}
	if !almostEq(lo, 8, 1e-9) {
		t.Fatalf("first contact at %g, want 8", lo)
	}
	if !almostEq(hi, 10, 1e-9) { // b's right edge passes a's left edge at t=10
		t.Fatalf("last contact at %g, want 10", hi)
	}
	// Out of window.
	if _, _, ok := a.IntersectionInterval(b, 0, 5); ok {
		t.Fatal("should not intersect before t=8")
	}
}

func TestSweepVolumeStatic(t *testing.T) {
	m := MovingRect{MBR: R(0, 0, 2, 3), VBR: Rect{}, Ref: 0}
	if got := m.SweepVolume(0, 10); !almostEq(got, 60, 1e-9) {
		t.Fatalf("static sweep = %g, want 60", got)
	}
}

func TestSweepVolumeGrowing(t *testing.T) {
	// Unit square growing 1/ts on each side in both axes:
	// area(t) = (1+2t)^2; integral over [0,1] = [ (1+2t)^3 / 6 ] = (27-1)/6.
	m := MovingRect{MBR: R(0, 0, 1, 1), VBR: Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}, Ref: 0}
	want := 26.0 / 6.0
	if got := m.SweepVolume(0, 1); !almostEq(got, want, 1e-9) {
		t.Fatalf("sweep = %g, want %g", got, want)
	}
}

func TestSweepVolumeShrinkingClamps(t *testing.T) {
	// Square shrinking to nothing at t=1 then "negative" (clamped).
	m := MovingRect{MBR: R(0, 0, 2, 2), VBR: Rect{MinX: 1, MinY: 1, MaxX: -1, MaxY: -1}, Ref: 0}
	// area(t) = (2-2t)^2 for t<1, 0 after. Integral over [0,2] = 8/6... :
	// ∫0^1 (2-2t)^2 dt = [ -(2-2t)^3/6 ]0^1 = 8/6.
	want := 8.0 / 6.0
	if got := m.SweepVolume(0, 2); !almostEq(got, want, 1e-9) {
		t.Fatalf("sweep = %g, want %g", got, want)
	}
}

func TestSweepVolumeNumericAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		m := MovingRect{
			MBR: R(rng.Float64()*10, rng.Float64()*10, rng.Float64()*30, rng.Float64()*30),
			VBR: R(rng.Float64()*8-4, rng.Float64()*8-4, rng.Float64()*8-4, rng.Float64()*8-4),
			Ref: 0,
		}
		t1 := rng.Float64() * 20
		got := m.SweepVolume(0, t1)
		// Riemann sum oracle.
		const steps = 4000
		sum := 0.0
		for s := 0; s < steps; s++ {
			tt := t1 * (float64(s) + 0.5) / steps
			sum += m.AtTime(tt).Area()
		}
		sum *= t1 / steps
		if math.Abs(got-sum) > 1e-2*(1+sum) {
			t.Fatalf("sweep %g vs numeric %g for %v over [0,%g]", got, sum, m, t1)
		}
	}
}

func TestTransformedNodeTrick(t *testing.T) {
	// Per Section 3.1: N intersects Q during [0,1] iff the transformed N'
	// contains Q's center (a moving point) during [0,1].
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		n := MovingRect{
			MBR: R(rng.Float64()*50, rng.Float64()*50, rng.Float64()*60, rng.Float64()*60),
			VBR: R(rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*4-2),
			Ref: 0,
		}
		// Rigidly translating query (the moving-range query case), where the
		// transform equivalence is exact.
		qvx, qvy := rng.Float64()*4-2, rng.Float64()*4-2
		q := MovingRect{
			MBR: R(rng.Float64()*50, rng.Float64()*50, rng.Float64()*60, rng.Float64()*60),
			VBR: Rect{MinX: qvx, MinY: qvy, MaxX: qvx, MaxY: qvy},
			Ref: 0,
		}
		direct := n.IntersectsDuring(q, 0, 1)
		np := n.Transformed(q, 0)
		// N' absorbs the relative velocities, so the query collapses to a
		// *static* point at its t=0 center (Fig. 3b).
		center := MovingPointRect(q.MBR.Center(), V(0, 0), 0)
		// Exact equivalence holds when the query translates rigidly (equal
		// boundary speeds per axis), which is the moving-range query case.
		if q.VBR.MinX == q.VBR.MaxX && q.VBR.MinY == q.VBR.MaxY {
			viaTransform := np.IntersectsDuring(center, 0, 1)
			if direct != viaTransform {
				t.Fatalf("transform trick mismatch: %v vs %v", direct, viaTransform)
			}
		}
	}
	// Deterministic check with a translating query.
	n := MovingRect{MBR: R(0, 0, 2, 2), VBR: Rect{}, Ref: 0}
	q := MovingRect{MBR: R(5, 0, 7, 2), VBR: Rect{MinX: -1, MinY: 0, MaxX: -1, MaxY: 0}, Ref: 0}
	np := n.Transformed(q, 0)
	center := MovingPointRect(V(6, 1), V(0, 0), 0)
	if np.IntersectsDuring(center, 0, 2.99) {
		t.Fatal("should not touch before t=3")
	}
	if !np.IntersectsDuring(center, 0, 3.01) {
		t.Fatal("should touch at t=3")
	}
	if !n.IntersectsDuring(q, 0, 3.01) {
		t.Fatal("direct test disagrees")
	}
}

func TestEnlargedSweepZeroForContained(t *testing.T) {
	outer := MovingRect{MBR: R(0, 0, 10, 10), VBR: R(-2, -2, 2, 2), Ref: 0}
	inner := MovingRect{MBR: R(4, 4, 5, 5), VBR: R(-1, -1, 1, 1), Ref: 0}
	if got := outer.EnlargedSweep(inner, 0, 10); got > 1e-9 {
		t.Fatalf("enlargement of contained rect = %g, want 0", got)
	}
	if got := outer.EnlargedSweep(inner.Rebase(0), 0, 10); got < -1e-9 {
		t.Fatalf("negative enlargement %g", got)
	}
}

func TestUnionAll(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UnionAll of empty slice should panic")
		}
	}()
	UnionAll(nil, 0)
}
