package geom

import (
	"fmt"
	"math"
)

// Rect is a closed axis-aligned rectangle [MinX, MaxX] x [MinY, MaxY].
//
// A Rect is also used as a velocity bounding rectangle (VBR): then MinX/MinY
// are the (signed) expansion speeds of the lower boundaries and MaxX/MaxY of
// the upper boundaries, exactly the NV notation of Section 3.1 of the paper.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// R constructs a Rect, normalizing the corner order.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// RectFromPoint returns the degenerate rectangle containing only p.
func RectFromPoint(p Vec2) Rect { return Rect{p.X, p.Y, p.X, p.Y} }

// RectFromCenter returns the rectangle centered at c with half-extents hx, hy.
func RectFromCenter(c Vec2, hx, hy float64) Rect {
	return Rect{c.X - hx, c.Y - hy, c.X + hx, c.Y + hy}
}

// EmptyRect is a canonical empty rectangle: any Union with it yields the
// other operand, and it intersects nothing.
func EmptyRect() Rect {
	return Rect{math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the extent along x (0 for empty rectangles).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the extent along y (0 for empty rectangles).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns the perimeter (margin) of r; used by R*-style split
// tie-breaking.
func (r Rect) Perimeter() float64 { return 2 * (r.Width() + r.Height()) }

// Center returns the center point of r.
func (r Rect) Center() Vec2 { return Vec2{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// ContainsPoint reports whether p lies in the closed rectangle.
func (r Rect) ContainsPoint(p Vec2) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s is entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		math.Max(r.MinX, s.MinX), math.Max(r.MinY, s.MinY),
		math.Min(r.MaxX, s.MaxX), math.Min(r.MaxY, s.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		math.Min(r.MinX, s.MinX), math.Min(r.MinY, s.MinY),
		math.Max(r.MaxX, s.MaxX), math.Max(r.MaxY, s.MaxY),
	}
}

// UnionPoint returns the smallest rectangle containing r and p.
func (r Rect) UnionPoint(p Vec2) Rect { return r.Union(RectFromPoint(p)) }

// Expand grows r by d on every side (shrinks for negative d; may become
// empty).
func (r Rect) Expand(d float64) Rect {
	out := Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// ExpandXY grows r by dx along x and dy along y on each side.
func (r Rect) ExpandXY(dx, dy float64) Rect {
	out := Rect{r.MinX - dx, r.MinY - dy, r.MaxX + dx, r.MaxY + dy}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Translate returns r shifted by v.
func (r Rect) Translate(v Vec2) Rect {
	return Rect{r.MinX + v.X, r.MinY + v.Y, r.MaxX + v.X, r.MaxY + v.Y}
}

// Corners returns the four corner points of r in CCW order starting at
// (MinX, MinY).
func (r Rect) Corners() [4]Vec2 {
	return [4]Vec2{
		{r.MinX, r.MinY}, {r.MaxX, r.MinY}, {r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
	}
}

// BoundOfTransformed returns the axis-aligned bounding rectangle of r after
// each corner has been mapped through m. This is the "rectangular
// axis-aligned MBR of the transformed range" of Algorithm 3, line 4.
func (r Rect) BoundOfTransformed(m Mat2) Rect {
	cs := r.Corners()
	out := RectFromPoint(m.Apply(cs[0]))
	for _, c := range cs[1:] {
		out = out.UnionPoint(m.Apply(c))
	}
	return out
}

// EnlargementArea returns Union(r, s).Area() - r.Area(): the classic R-tree
// insertion metric (used as a static fallback and in tests).
func (r Rect) EnlargementArea(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// ApproxEqual reports whether r and s agree within eps on every boundary.
func (r Rect) ApproxEqual(s Rect, eps float64) bool {
	return math.Abs(r.MinX-s.MinX) <= eps && math.Abs(r.MaxX-s.MaxX) <= eps &&
		math.Abs(r.MinY-s.MinY) <= eps && math.Abs(r.MaxY-s.MaxY) <= eps
}

// Circle is a disk with center C and radius R (R >= 0).
type Circle struct {
	C Vec2
	R float64
}

// ContainsPoint reports whether p lies in the closed disk.
func (c Circle) ContainsPoint(p Vec2) bool { return c.C.DistTo(p) <= c.R }

// Bound returns the axis-aligned bounding rectangle of the circle.
func (c Circle) Bound() Rect { return RectFromCenter(c.C, c.R, c.R) }

// IntersectsRect reports whether the disk and rectangle share a point.
func (c Circle) IntersectsRect(r Rect) bool {
	if r.IsEmpty() {
		return false
	}
	dx := math.Max(math.Max(r.MinX-c.C.X, 0), c.C.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-c.C.Y, 0), c.C.Y-r.MaxY)
	return dx*dx+dy*dy <= c.R*c.R
}
