// Package geom provides the 2-D computational geometry used by every index
// in this repository: vectors, axis-aligned rectangles, time-parameterized
// (moving) rectangles with velocity bounds, circles, and the sweeping-region
// integrals that underlie the TPR*-tree cost model of Tao et al. (Eq. 1 of
// the VP paper) and the outlier-threshold optimization (Eq. 8-10).
//
// All coordinates are float64 metres; times are float64 timestamps ("ts").
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2-D vector (or point, depending on context).
type Vec2 struct {
	X, Y float64
}

// V is shorthand for constructing a Vec2.
func V(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v . w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z-component of the 3-D cross product, i.e. the signed
// area of the parallelogram spanned by v and w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// NormSq returns the squared Euclidean length of v.
func (v Vec2) NormSq() float64 { return v.X*v.X + v.Y*v.Y }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged (callers that care must check Norm() > 0 themselves).
func (v Vec2) Normalize() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return Vec2{v.X / n, v.Y / n}
}

// Perp returns v rotated 90 degrees counter-clockwise.
func (v Vec2) Perp() Vec2 { return Vec2{-v.Y, v.X} }

// Angle returns the angle of v in radians in (-pi, pi].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// DistTo returns the Euclidean distance between v and w interpreted as
// points.
func (v Vec2) DistTo(w Vec2) float64 { return v.Sub(w).Norm() }

// PerpDistToAxis returns the perpendicular distance from the point v to the
// line through the origin with (not necessarily unit) direction axis. This
// is the distance measure used by the PC-distance k-means (Algorithm 2) and
// the outlier test (Section 5.2): velocity points close to a dominant
// velocity axis have a small perpendicular distance to it.
func (v Vec2) PerpDistToAxis(axis Vec2) float64 {
	n := axis.Norm()
	if n == 0 {
		return v.Norm()
	}
	return math.Abs(v.Cross(axis)) / n
}

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%g, %g)", v.X, v.Y) }

// IsFinite reports whether both components are finite numbers.
func (v Vec2) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) && !math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// Lerp returns v + t*(w-v).
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return Vec2{v.X + t*(w.X-v.X), v.Y + t*(w.Y-v.Y)}
}

// Mat2 is a 2x2 matrix stored row-major. It is used for the rotation into
// and out of a DVA-aligned coordinate frame (Section 5.3-5.4: "the
// transformation process involves a simple matrix multiplication").
type Mat2 struct {
	A, B float64 // row 0
	C, D float64 // row 1
}

// Identity2 is the identity matrix.
var Identity2 = Mat2{1, 0, 0, 1}

// RotationTo returns the orthonormal matrix whose rows are (unit, unit.Perp()).
// Multiplying a world-frame vector by it yields the vector expressed in the
// frame whose x-axis is the given (unit) direction. This is exactly the
// "[PC1; PC2]" change of basis the VP paper applies per DVA index.
func RotationTo(unit Vec2) Mat2 {
	u := unit.Normalize()
	p := u.Perp()
	return Mat2{u.X, u.Y, p.X, p.Y}
}

// RotationByAngle returns the matrix mapping world coordinates into the
// frame rotated by theta radians (i.e. RotationTo of the direction vector
// (cos theta, sin theta)).
func RotationByAngle(theta float64) Mat2 {
	return RotationTo(Vec2{math.Cos(theta), math.Sin(theta)})
}

// Apply returns m * v.
func (m Mat2) Apply(v Vec2) Vec2 {
	return Vec2{m.A*v.X + m.B*v.Y, m.C*v.X + m.D*v.Y}
}

// Transpose returns the transpose of m. For rotation matrices this is the
// inverse, so it maps DVA-frame coordinates back to the world frame.
func (m Mat2) Transpose() Mat2 { return Mat2{m.A, m.C, m.B, m.D} }

// Mul returns the matrix product m * n.
func (m Mat2) Mul(n Mat2) Mat2 {
	return Mat2{
		m.A*n.A + m.B*n.C, m.A*n.B + m.B*n.D,
		m.C*n.A + m.D*n.C, m.C*n.B + m.D*n.D,
	}
}

// Det returns the determinant of m.
func (m Mat2) Det() float64 { return m.A*m.D - m.B*m.C }
