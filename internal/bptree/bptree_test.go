package bptree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
)

func newTestTree(t *testing.T, bufferPages int) *Tree {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(), bufferPages)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mkEntry(k uint64, id model.ObjectID) Entry {
	return Entry{
		Key: Key{K: k, ID: id},
		Pos: geom.V(float64(k), float64(id)),
		Vel: geom.V(1, -1),
		T:   42,
	}
}

func TestKeyLess(t *testing.T) {
	cases := []struct {
		a, b Key
		want bool
	}{
		{Key{1, 1}, Key{2, 0}, true},
		{Key{2, 0}, Key{1, 9}, false},
		{Key{1, 1}, Key{1, 2}, true},
		{Key{1, 2}, Key{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Fatalf("%v < %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestInsertGetSmall(t *testing.T) {
	tr := newTestTree(t, 50)
	e := mkEntry(10, 7)
	if err := tr.Insert(e); err != nil {
		t.Fatal(err)
	}
	got, ok, err := tr.Get(e.Key)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if got != e {
		t.Fatalf("got %+v, want %+v", got, e)
	}
	if _, ok, _ := tr.Get(Key{10, 8}); ok {
		t.Fatal("found absent key")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	tr := newTestTree(t, 50)
	e := mkEntry(5, 5)
	if err := tr.Insert(e); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(e); err == nil {
		t.Fatal("duplicate composite key should be rejected")
	}
}

func TestSameKeyDifferentIDs(t *testing.T) {
	tr := newTestTree(t, 50)
	for id := model.ObjectID(0); id < 200; id++ {
		if err := tr.Insert(mkEntry(77, id)); err != nil {
			t.Fatal(err)
		}
	}
	var got []model.ObjectID
	if err := tr.Scan(77, 78, func(e Entry) bool {
		got = append(got, e.Key.ID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("scan found %d, want 200", len(got))
	}
	for i, id := range got {
		if id != model.ObjectID(i) {
			t.Fatalf("ids out of order at %d: %d", i, id)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkInsertScanDelete(t *testing.T) {
	tr := newTestTree(t, 50)
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{K: uint64(rng.Intn(2000)), ID: model.ObjectID(i)}
		if err := tr.Insert(Entry{Key: keys[i], T: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatal("tree should have split")
	}
	// Full scan returns everything sorted.
	var scanned []Key
	if err := tr.Scan(0, ^uint64(0), func(e Entry) bool {
		scanned = append(scanned, e.Key)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(scanned) != n {
		t.Fatalf("scan found %d, want %d", len(scanned), n)
	}
	if !sort.SliceIsSorted(scanned, func(a, b int) bool { return scanned[a].Less(scanned[b]) }) {
		t.Fatal("scan out of order")
	}
	// Delete everything in random order.
	perm := rng.Perm(n)
	for step, p := range perm {
		if err := tr.Delete(keys[p]); err != nil {
			t.Fatalf("delete %v (step %d): %v", keys[p], step, err)
		}
		if step%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", step+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after full delete", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d after full delete, want 1", tr.Height())
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := newTestTree(t, 50)
	if err := tr.Delete(Key{1, 1}); err != model.ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := tr.Insert(mkEntry(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(Key{1, 2}); err != model.ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestScanRange(t *testing.T) {
	tr := newTestTree(t, 50)
	for k := uint64(0); k < 1000; k += 2 { // even keys only
		if err := tr.Insert(Entry{Key: Key{K: k, ID: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	if err := tr.Scan(100, 200, func(e Entry) bool {
		got = append(got, e.Key.K)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("scan [100,200) found %d, want 50", len(got))
	}
	if got[0] != 100 || got[len(got)-1] != 198 {
		t.Fatalf("range bounds wrong: %d..%d", got[0], got[len(got)-1])
	}
	// Early termination.
	count := 0
	if err := tr.Scan(0, ^uint64(0), func(Entry) bool {
		count++
		return count < 10
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
	// Empty range.
	if err := tr.Scan(200, 200, func(Entry) bool { t.Fatal("visited"); return true }); err != nil {
		t.Fatal(err)
	}
}

// TestModelEquivalence drives the tree and a sorted-map model with the same
// random operation stream and checks full agreement (property-based model
// test).
func TestModelEquivalence(t *testing.T) {
	tr := newTestTree(t, 30)
	oracle := make(map[Key]Entry)
	rng := rand.New(rand.NewSource(99))

	randKey := func() Key {
		return Key{K: uint64(rng.Intn(300)), ID: model.ObjectID(rng.Intn(50))}
	}
	for step := 0; step < 20000; step++ {
		k := randKey()
		switch rng.Intn(3) {
		case 0, 1: // insert
			e := Entry{Key: k, Pos: geom.V(rng.Float64(), rng.Float64()), T: float64(step)}
			_, exists := oracle[k]
			err := tr.Insert(e)
			if exists && err == nil {
				t.Fatalf("step %d: duplicate insert accepted", step)
			}
			if !exists {
				if err != nil {
					t.Fatalf("step %d: insert failed: %v", step, err)
				}
				oracle[k] = e
			}
		case 2: // delete
			_, exists := oracle[k]
			err := tr.Delete(k)
			if exists != (err == nil) {
				t.Fatalf("step %d: delete mismatch: exists=%v err=%v", step, exists, err)
			}
			delete(oracle, k)
		}
		if tr.Len() != len(oracle) {
			t.Fatalf("step %d: len %d vs oracle %d", step, tr.Len(), len(oracle))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Final full comparison via scan.
	var fromTree []Entry
	if err := tr.Scan(0, ^uint64(0), func(e Entry) bool {
		fromTree = append(fromTree, e)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(fromTree) != len(oracle) {
		t.Fatalf("scan %d vs oracle %d", len(fromTree), len(oracle))
	}
	for _, e := range fromTree {
		want, ok := oracle[e.Key]
		if !ok {
			t.Fatalf("tree has stray key %v", e.Key)
		}
		if want.T != e.T {
			t.Fatalf("payload mismatch for %v", e.Key)
		}
	}
}

func TestEntryRoundTripThroughPages(t *testing.T) {
	// Force evictions with a tiny buffer so entries round-trip through the
	// simulated disk encoding.
	tr := newTestTree(t, 3)
	entries := make([]Entry, 500)
	for i := range entries {
		entries[i] = Entry{
			Key: Key{K: uint64(i * 3), ID: model.ObjectID(i)},
			Pos: geom.V(float64(i)*1.5, -float64(i)),
			Vel: geom.V(float64(i%7)-3, float64(i%5)-2),
			T:   float64(i) / 3,
		}
		if err := tr.Insert(entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range entries {
		got, ok, err := tr.Get(want.Key)
		if err != nil || !ok {
			t.Fatalf("Get %v: ok=%v err=%v", want.Key, ok, err)
		}
		if got != want {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
		}
	}
}

func TestIOAccountedThroughPool(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewDisk(), 5)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(Entry{Key: Key{K: uint64(i), ID: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	before := pool.Stats()
	if err := tr.Scan(0, 100, func(Entry) bool { return true }); err != nil {
		t.Fatal(err)
	}
	after := pool.Stats()
	if after.Misses == before.Misses && after.Hits == before.Hits {
		t.Fatal("scan touched no pages?")
	}
}

func TestObjectConversion(t *testing.T) {
	e := mkEntry(9, 4)
	o := e.Object()
	if o.ID != 4 || o.Pos != e.Pos || o.Vel != e.Vel || o.T != e.T {
		t.Fatalf("Object() = %+v", o)
	}
}
