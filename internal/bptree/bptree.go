// Package bptree implements a disk-paged B+-tree keyed by (uint64 key,
// uint64 object id) composite keys, storing fixed-size moving-object
// records in its leaves. It is the substrate under the Bx-tree (Section 3.2
// of the VP paper), which maps 2-D positions to 1-D keys and relies on the
// B+-tree for paged storage, logarithmic point operations and leaf-chained
// range scans.
//
// Nodes live on 4 KB pages behind a storage.BufferPool, so every traversal
// is charged through the same I/O accounting the paper measures. Duplicate
// keys are supported naturally because the object id participates in the
// ordering, keeping every composite key unique.
package bptree

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
)

// Key is the composite B+-tree key: K orders first, ID breaks ties (and
// makes composite keys unique — multiple objects may share a Bx cell).
type Key struct {
	K  uint64
	ID model.ObjectID
}

// Less reports k < o in lexicographic order.
func (k Key) Less(o Key) bool {
	if k.K != o.K {
		return k.K < o.K
	}
	return k.ID < o.ID
}

// Entry is a leaf record: the key plus the object state needed to answer
// predictive queries (position/velocity/reference time).
type Entry struct {
	Key Key
	Pos geom.Vec2
	Vel geom.Vec2
	T   float64
}

// Object converts the entry back into a model.Object.
func (e Entry) Object() model.Object {
	return model.Object{ID: e.Key.ID, Pos: e.Pos, Vel: e.Vel, T: e.T}
}

// Page layout constants. A leaf page is:
//
//	[0]    tag (tagLeaf)
//	[1:3]  count (uint16)
//	[3:11] next leaf PageID
//	then count * entrySize records
//
// An internal page is:
//
//	[0]    tag (tagInternal)
//	[1:3]  count = number of separator keys (children = count+1)
//	then (count+1) * 8 child PageIDs, then count * keySize separators
const (
	tagLeaf     = byte(0xB1) // distinct page tags; values arbitrary
	tagInternal = byte(0xB2)

	entrySize = 16 + 16 + 16 + 8 // key(16) + pos(16) + vel(16) + t(8)
	keySize   = 16

	leafHeader = 1 + 2 + 8
	// LeafCap is the maximum number of entries per leaf page.
	LeafCap = (storage.PageSize - leafHeader) / entrySize // 72
	// InternalCap is the maximum number of separator keys per internal page.
	InternalCap = (storage.PageSize - 3 - 8) / (8 + keySize) // 170

	leafMin     = LeafCap / 2
	internalMin = InternalCap / 2
)

// node is the decoded in-memory form of a page.
type node struct {
	id       storage.PageID
	leaf     bool
	entries  []Entry          // leaf only
	next     storage.PageID   // leaf only
	keys     []Key            // internal only
	children []storage.PageID // internal only, len(keys)+1
}

// Tree is the B+-tree handle. Mutations are not safe for concurrent use;
// callers (the Bx-tree, which is itself wrapped by the VP manager's lock)
// serialize them. Read-only operations (Scan, Get) may run concurrently
// with each other — they share no mutable tree state and all page access is
// serialized by the buffer pool — which is what lets the VP manager fan a
// query out across partitions under a read lock.
type Tree struct {
	pool   *storage.BufferPool
	root   storage.PageID
	height int // 1 = root is a leaf
	size   int // number of entries
}

// New creates an empty tree whose nodes are allocated from pool.
func New(pool *storage.BufferPool) (*Tree, error) {
	t := &Tree{pool: pool, height: 1}
	id, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	t.root = id
	if err := t.writeNode(&node{id: id, leaf: true}); err != nil {
		return nil, err
	}
	return t, nil
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 = single leaf).
func (t *Tree) Height() int { return t.height }

// --- serialization ---------------------------------------------------------

func putKey(b []byte, k Key) {
	binary.LittleEndian.PutUint64(b[0:8], k.K)
	binary.LittleEndian.PutUint64(b[8:16], uint64(k.ID))
}

func getKey(b []byte) Key {
	return Key{
		K:  binary.LittleEndian.Uint64(b[0:8]),
		ID: model.ObjectID(binary.LittleEndian.Uint64(b[8:16])),
	}
}

func putF64(b []byte, f float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(f))
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func encodeEntry(b []byte, e Entry) {
	putKey(b[0:16], e.Key)
	putF64(b[16:24], e.Pos.X)
	putF64(b[24:32], e.Pos.Y)
	putF64(b[32:40], e.Vel.X)
	putF64(b[40:48], e.Vel.Y)
	putF64(b[48:56], e.T)
}

func decodeEntry(b []byte) Entry {
	return Entry{
		Key: getKey(b[0:16]),
		Pos: geom.Vec2{X: getF64(b[16:24]), Y: getF64(b[24:32])},
		Vel: geom.Vec2{X: getF64(b[32:40]), Y: getF64(b[40:48])},
		T:   getF64(b[48:56]),
	}
}

// readNode decodes the page into a fresh node.
func (t *Tree) readNode(id storage.PageID) (*node, error) {
	n := new(node)
	if err := t.readNodeInto(n, id); err != nil {
		return nil, err
	}
	return n, nil
}

// readNodeInto decodes the page into n, reusing n's slice capacity. The
// read-only traversals (Scan, Get) recycle one node across a whole descent
// plus leaf chain instead of allocating a decoded image per page; mutating
// paths keep readNode because they hold several nodes alive at once.
// Callers must not retain decoded slices across a subsequent readNodeInto of
// the same node.
func (t *Tree) readNodeInto(n *node, id storage.PageID) error {
	n.id = id
	n.leaf = false
	n.next = storage.NilPage
	n.entries = n.entries[:0]
	n.keys = n.keys[:0]
	n.children = n.children[:0]
	err := t.pool.Read(id, func(data []byte) {
		switch data[0] {
		case tagLeaf:
			n.leaf = true
			count := int(binary.LittleEndian.Uint16(data[1:3]))
			n.next = storage.PageID(binary.LittleEndian.Uint64(data[3:11]))
			if cap(n.entries) < count {
				n.entries = make([]Entry, count)
			} else {
				n.entries = n.entries[:count]
			}
			off := leafHeader
			for i := 0; i < count; i++ {
				n.entries[i] = decodeEntry(data[off : off+entrySize])
				off += entrySize
			}
		case tagInternal:
			count := int(binary.LittleEndian.Uint16(data[1:3]))
			if cap(n.children) < count+1 {
				n.children = make([]storage.PageID, count+1)
			} else {
				n.children = n.children[:count+1]
			}
			off := 3
			for i := 0; i <= count; i++ {
				n.children[i] = storage.PageID(binary.LittleEndian.Uint64(data[off : off+8]))
				off += 8
			}
			if cap(n.keys) < count {
				n.keys = make([]Key, count)
			} else {
				n.keys = n.keys[:count]
			}
			for i := 0; i < count; i++ {
				n.keys[i] = getKey(data[off : off+keySize])
				off += keySize
			}
		default:
			// Signal through the closure by leaving n.leaf and counts zeroed;
			// detect below via the tag copy.
			n.id = storage.NilPage
		}
	})
	if err != nil {
		return err
	}
	if n.id == storage.NilPage {
		return fmt.Errorf("bptree: page %d has unknown tag", id)
	}
	return nil
}

// writeNode encodes the node onto its page.
func (t *Tree) writeNode(n *node) error {
	return t.pool.Write(n.id, func(data []byte) {
		if n.leaf {
			data[0] = tagLeaf
			binary.LittleEndian.PutUint16(data[1:3], uint16(len(n.entries)))
			binary.LittleEndian.PutUint64(data[3:11], uint64(n.next))
			off := leafHeader
			for _, e := range n.entries {
				encodeEntry(data[off:off+entrySize], e)
				off += entrySize
			}
		} else {
			data[0] = tagInternal
			binary.LittleEndian.PutUint16(data[1:3], uint16(len(n.keys)))
			off := 3
			for _, c := range n.children {
				binary.LittleEndian.PutUint64(data[off:off+8], uint64(c))
				off += 8
			}
			for _, k := range n.keys {
				putKey(data[off:off+keySize], k)
				off += keySize
			}
		}
	})
}

// --- search helpers --------------------------------------------------------

// childIndex returns the child slot to descend for key k: the first i with
// k < keys[i], else the last child. Separator keys[i] is the smallest key
// in children[i+1].
func childIndex(keys []Key, k Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if k.Less(keys[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// leafLowerBound returns the first entry index with entries[i].Key >= k.
func leafLowerBound(entries []Entry, k Key) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].Key.Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// --- insert ----------------------------------------------------------------

// Insert adds an entry. Inserting an existing composite key returns an
// error (updates are delete+insert, per the moving-object model).
func (t *Tree) Insert(e Entry) error {
	split, err := t.insertRec(t.root, t.height, e)
	if err != nil {
		return err
	}
	if split != nil {
		// Grow a new root.
		id, err := t.pool.Allocate()
		if err != nil {
			return err
		}
		newRoot := &node{
			id:       id,
			keys:     []Key{split.key},
			children: []storage.PageID{t.root, split.right},
		}
		if err := t.writeNode(newRoot); err != nil {
			return err
		}
		t.root = id
		t.height++
	}
	t.size++
	return nil
}

// splitResult propagates a child split to the parent.
type splitResult struct {
	key   Key            // smallest key of (or separator for) the right node
	right storage.PageID // new right sibling
}

func (t *Tree) insertRec(id storage.PageID, level int, e Entry) (*splitResult, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	if level == 1 {
		if !n.leaf {
			return nil, fmt.Errorf("bptree: expected leaf at page %d", id)
		}
		i := leafLowerBound(n.entries, e.Key)
		if i < len(n.entries) && n.entries[i].Key == e.Key {
			return nil, fmt.Errorf("bptree: duplicate key (%d,%d)", e.Key.K, e.Key.ID)
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		if len(n.entries) <= LeafCap {
			return nil, t.writeNode(n)
		}
		return t.splitLeaf(n)
	}
	ci := childIndex(n.keys, e.Key)
	split, err := t.insertRec(n.children[ci], level-1, e)
	if err != nil || split == nil {
		return nil, err
	}
	// Insert the separator and right child at slot ci.
	n.keys = append(n.keys, Key{})
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = split.key
	n.children = append(n.children, storage.NilPage)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = split.right
	if len(n.keys) <= InternalCap {
		return nil, t.writeNode(n)
	}
	return t.splitInternal(n)
}

func (t *Tree) splitLeaf(n *node) (*splitResult, error) {
	mid := len(n.entries) / 2
	rid, err := t.pool.Allocate()
	if err != nil {
		return nil, err
	}
	right := &node{
		id:      rid,
		leaf:    true,
		entries: append([]Entry(nil), n.entries[mid:]...),
		next:    n.next,
	}
	n.entries = n.entries[:mid]
	n.next = rid
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	return &splitResult{key: right.entries[0].Key, right: rid}, nil
}

func (t *Tree) splitInternal(n *node) (*splitResult, error) {
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	rid, err := t.pool.Allocate()
	if err != nil {
		return nil, err
	}
	right := &node{
		id:       rid,
		keys:     append([]Key(nil), n.keys[mid+1:]...),
		children: append([]storage.PageID(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	return &splitResult{key: upKey, right: rid}, nil
}

// --- delete ----------------------------------------------------------------

// Delete removes the entry with the given composite key; model.ErrNotFound
// if absent.
func (t *Tree) Delete(k Key) error {
	found, err := t.deleteRec(t.root, t.height, k)
	if err != nil {
		return err
	}
	if !found {
		return model.ErrNotFound
	}
	t.size--
	// Collapse the root if it became a trivial internal node.
	if t.height > 1 {
		root, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		if len(root.keys) == 0 {
			old := t.root
			t.root = root.children[0]
			t.height--
			if err := t.pool.Free(old); err != nil {
				return err
			}
		}
	}
	return nil
}

func (t *Tree) deleteRec(id storage.PageID, level int, k Key) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if level == 1 {
		i := leafLowerBound(n.entries, k)
		if i >= len(n.entries) || n.entries[i].Key != k {
			return false, nil
		}
		n.entries = append(n.entries[:i], n.entries[i+1:]...)
		return true, t.writeNode(n)
	}
	ci := childIndex(n.keys, k)
	found, err := t.deleteRec(n.children[ci], level-1, k)
	if err != nil || !found {
		return found, err
	}
	// Rebalance child ci if it underflowed.
	if err := t.fixChild(n, ci, level-1); err != nil {
		return false, err
	}
	return true, nil
}

// fixChild rebalances n.children[ci] (at the given level) if underfull,
// borrowing from or merging with a sibling, then rewrites n.
func (t *Tree) fixChild(n *node, ci, childLevel int) error {
	child, err := t.readNode(n.children[ci])
	if err != nil {
		return err
	}
	if !t.underfull(child) {
		return nil
	}
	// Prefer the left sibling, else the right.
	var li, ri int // indexes of left/right pair to work with
	if ci > 0 {
		li, ri = ci-1, ci
	} else if ci < len(n.children)-1 {
		li, ri = ci, ci+1
	} else {
		return nil // root's only child; nothing to do
	}
	left, err := t.readNode(n.children[li])
	if err != nil {
		return err
	}
	right, err := t.readNode(n.children[ri])
	if err != nil {
		return err
	}
	sep := n.keys[li] // separator between left and right

	if child.leaf {
		if len(left.entries)+len(right.entries) <= LeafCap {
			// Merge right into left.
			left.entries = append(left.entries, right.entries...)
			left.next = right.next
			n.keys = append(n.keys[:li], n.keys[li+1:]...)
			n.children = append(n.children[:ri], n.children[ri+1:]...)
			if err := t.writeNode(left); err != nil {
				return err
			}
			if err := t.pool.Free(right.id); err != nil {
				return err
			}
			return t.writeNode(n)
		}
		// Borrow: even out the two leaves.
		all := append(left.entries, right.entries...)
		mid := len(all) / 2
		left.entries = append([]Entry(nil), all[:mid]...)
		right.entries = append([]Entry(nil), all[mid:]...)
		n.keys[li] = right.entries[0].Key
		if err := t.writeNode(left); err != nil {
			return err
		}
		if err := t.writeNode(right); err != nil {
			return err
		}
		return t.writeNode(n)
	}

	// Internal children.
	if len(left.keys)+1+len(right.keys) <= InternalCap {
		// Merge: left + sep + right.
		left.keys = append(append(left.keys, sep), right.keys...)
		left.children = append(left.children, right.children...)
		n.keys = append(n.keys[:li], n.keys[li+1:]...)
		n.children = append(n.children[:ri], n.children[ri+1:]...)
		if err := t.writeNode(left); err != nil {
			return err
		}
		if err := t.pool.Free(right.id); err != nil {
			return err
		}
		return t.writeNode(n)
	}
	// Rotate one key through the parent toward the underfull side.
	if len(left.keys) < len(right.keys) {
		// Move right's first key/child to left.
		left.keys = append(left.keys, sep)
		left.children = append(left.children, right.children[0])
		n.keys[li] = right.keys[0]
		right.keys = right.keys[1:]
		right.children = right.children[1:]
	} else {
		// Move left's last key/child to right.
		right.keys = append([]Key{sep}, right.keys...)
		right.children = append([]storage.PageID{left.children[len(left.children)-1]}, right.children...)
		n.keys[li] = left.keys[len(left.keys)-1]
		left.keys = left.keys[:len(left.keys)-1]
		left.children = left.children[:len(left.children)-1]
	}
	if err := t.writeNode(left); err != nil {
		return err
	}
	if err := t.writeNode(right); err != nil {
		return err
	}
	return t.writeNode(n)
}

func (t *Tree) underfull(n *node) bool {
	if n.leaf {
		return len(n.entries) < leafMin
	}
	return len(n.keys) < internalMin
}

// --- scans -----------------------------------------------------------------

// Scan visits entries with loKey <= Key.K < hiKey in key order, following
// the leaf chain. visit returning false stops the scan early. The whole
// traversal decodes pages into one stack-allocated scratch node: the scan
// path allocates nothing per page, so a query's cost is its I/O, not its
// garbage. visit receives each entry by value and may retain it.
func (t *Tree) Scan(loKey, hiKey uint64, visit func(Entry) bool) error {
	if hiKey <= loKey {
		return nil
	}
	lo := Key{K: loKey, ID: 0}
	id := t.root
	level := t.height
	var n node
	for level > 1 {
		if err := t.readNodeInto(&n, id); err != nil {
			return err
		}
		id = n.children[childIndex(n.keys, lo)]
		level--
	}
	for id != storage.NilPage {
		if err := t.readNodeInto(&n, id); err != nil {
			return err
		}
		i := leafLowerBound(n.entries, lo)
		for ; i < len(n.entries); i++ {
			e := n.entries[i]
			if e.Key.K >= hiKey {
				return nil
			}
			if !visit(e) {
				return nil
			}
		}
		id = n.next
	}
	return nil
}

// Get returns the entry with the exact composite key.
func (t *Tree) Get(k Key) (Entry, bool, error) {
	id := t.root
	level := t.height
	var n node
	for level > 1 {
		if err := t.readNodeInto(&n, id); err != nil {
			return Entry{}, false, err
		}
		id = n.children[childIndex(n.keys, k)]
		level--
	}
	if err := t.readNodeInto(&n, id); err != nil {
		return Entry{}, false, err
	}
	i := leafLowerBound(n.entries, k)
	if i < len(n.entries) && n.entries[i].Key == k {
		return n.entries[i], true, nil
	}
	return Entry{}, false, nil
}

// --- invariants (tests) ----------------------------------------------------

// CheckInvariants validates structural invariants: key ordering within and
// across nodes, separator correctness, fill factors, uniform leaf depth and
// the leaf chain. Used by tests; O(n).
func (t *Tree) CheckInvariants() error {
	count, _, err := t.check(t.root, t.height, nil, nil)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("bptree: size %d but found %d entries", t.size, count)
	}
	return nil
}

// check returns (entry count, leftmost leaf id) for the subtree.
func (t *Tree) check(id storage.PageID, level int, lo, hi *Key) (int, storage.PageID, error) {
	n, err := t.readNode(id)
	if err != nil {
		return 0, storage.NilPage, err
	}
	inBounds := func(k Key) bool {
		if lo != nil && k.Less(*lo) {
			return false
		}
		if hi != nil && !k.Less(*hi) {
			return false
		}
		return true
	}
	if level == 1 {
		if !n.leaf {
			return 0, storage.NilPage, fmt.Errorf("bptree: non-leaf at leaf level (page %d)", id)
		}
		if id != t.root && len(n.entries) < leafMin {
			return 0, storage.NilPage, fmt.Errorf("bptree: underfull leaf %d (%d entries)", id, len(n.entries))
		}
		for i, e := range n.entries {
			if i > 0 && !n.entries[i-1].Key.Less(e.Key) {
				return 0, storage.NilPage, fmt.Errorf("bptree: leaf %d keys out of order", id)
			}
			if !inBounds(e.Key) {
				return 0, storage.NilPage, fmt.Errorf("bptree: leaf %d key out of separator bounds", id)
			}
		}
		return len(n.entries), id, nil
	}
	if n.leaf {
		return 0, storage.NilPage, fmt.Errorf("bptree: leaf at internal level (page %d)", id)
	}
	if id != t.root && len(n.keys) < internalMin {
		return 0, storage.NilPage, fmt.Errorf("bptree: underfull internal %d (%d keys)", id, len(n.keys))
	}
	for i, k := range n.keys {
		if i > 0 && !n.keys[i-1].Less(k) {
			return 0, storage.NilPage, fmt.Errorf("bptree: internal %d keys out of order", id)
		}
		if !inBounds(k) {
			return 0, storage.NilPage, fmt.Errorf("bptree: internal %d separator out of bounds", id)
		}
	}
	total := 0
	var first storage.PageID
	for i, c := range n.children {
		var clo, chi *Key
		if i == 0 {
			clo = lo
		} else {
			clo = &n.keys[i-1]
		}
		if i == len(n.keys) {
			chi = hi
		} else {
			chi = &n.keys[i]
		}
		cnt, leftmost, err := t.check(c, level-1, clo, chi)
		if err != nil {
			return 0, storage.NilPage, err
		}
		if i == 0 {
			first = leftmost
		}
		total += cnt
	}
	return total, first, nil
}
