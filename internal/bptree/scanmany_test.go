package bptree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
)

// buildTree inserts n entries with keys drawn from [0, keySpace) and
// returns the tree plus the sorted entry list.
func buildTree(t *testing.T, rng *rand.Rand, n int, keySpace uint64) *Tree {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(), 64)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e := Entry{
			Key: Key{K: rng.Uint64() % keySpace, ID: model.ObjectID(i + 1)},
			Pos: geom.V(rng.Float64()*1000, rng.Float64()*1000),
			Vel: geom.V(rng.Float64()*10-5, rng.Float64()*10-5),
			T:   rng.Float64() * 100,
		}
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// unionRanges normalizes a Lo-sorted range list into its merged union —
// what repeated Scan calls over the union cover exactly once.
func unionRanges(ranges []ScanRange) []ScanRange {
	var out []ScanRange
	for _, r := range ranges {
		if r.Hi <= r.Lo {
			continue
		}
		if len(out) > 0 && r.Lo <= out[len(out)-1].Hi {
			if r.Hi > out[len(out)-1].Hi {
				out[len(out)-1].Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// oracleScan answers what ScanMany must produce: one Scan per merged range,
// with an optional shared early-stop budget across the whole batch.
func oracleScan(t *testing.T, tr *Tree, ranges []ScanRange, limit int) []Entry {
	t.Helper()
	var out []Entry
	for _, r := range unionRanges(ranges) {
		stopped := false
		err := tr.Scan(r.Lo, r.Hi, func(e Entry) bool {
			if limit >= 0 && len(out) >= limit {
				stopped = true
				return false
			}
			out = append(out, e)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if stopped {
			break
		}
	}
	return out
}

func runScanMany(t *testing.T, tr *Tree, ranges []ScanRange, limit int) []Entry {
	t.Helper()
	var out []Entry
	err := tr.ScanMany(ranges, func(e Entry) bool {
		if limit >= 0 && len(out) >= limit {
			return false
		}
		out = append(out, e)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomRanges draws a Lo-sorted batch that deliberately includes empty,
// adjacent, overlapping, duplicate and past-the-end intervals.
func randomRanges(rng *rand.Rand, keySpace uint64) []ScanRange {
	n := rng.Intn(24)
	out := make([]ScanRange, 0, n)
	for i := 0; i < n; i++ {
		lo := rng.Uint64() % (keySpace + keySpace/4) // sometimes past max key
		var hi uint64
		switch rng.Intn(5) {
		case 0:
			hi = lo // empty
		case 1:
			hi = lo + 1 + rng.Uint64()%4 // tiny
		case 2:
			hi = lo + 1 + rng.Uint64()%(keySpace/8+1) // wide
		case 3:
			hi = lo + 1 + rng.Uint64()%64
		default:
			if lo > 8 {
				lo -= 8 // encourage overlap with the previous range
			}
			hi = lo + 1 + rng.Uint64()%128
		}
		out = append(out, ScanRange{Lo: lo, Hi: hi})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	// Occasionally make consecutive ranges exactly adjacent; the shift can
	// leapfrog a later Lo, so restore the sort afterwards.
	for i := 1; i < len(out); i++ {
		if rng.Intn(6) == 0 {
			out[i].Lo = out[i-1].Hi
			if out[i].Hi < out[i].Lo {
				out[i].Hi = out[i].Lo + rng.Uint64()%32
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	return out
}

// TestScanManyDifferential fuzzes ScanMany against repeated Scan across
// tree sizes (empty through multi-level) and adversarial range batches.
func TestScanManyDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const keySpace = 1 << 14
	// 16000 entries forces height 3 (> InternalCap * leafMin), so re-seeks
	// exercise a multi-level path stack, not just the root.
	for _, n := range []int{0, 1, 5, LeafCap, LeafCap + 1, 500, 4000, 16000} {
		tr := buildTree(t, rng, n, keySpace)
		for trial := 0; trial < 60; trial++ {
			ranges := randomRanges(rng, keySpace)
			got := runScanMany(t, tr, ranges, -1)
			want := oracleScan(t, tr, ranges, -1)
			if !entriesEqual(got, want) {
				t.Fatalf("n=%d trial=%d ranges=%v: ScanMany %d entries != oracle %d entries",
					n, trial, ranges, len(got), len(want))
			}
		}
	}
}

// TestDifferentialFuzzReachesHeightThree guards the fuzz's coverage: the
// largest tree size must produce height >= 3 so re-seeks exercise a
// multi-level path stack, not just the root.
func TestDifferentialFuzzReachesHeightThree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := buildTree(t, rng, 16000, 1<<14)
	if tr.Height() < 3 {
		t.Fatalf("16000-entry tree has height %d; fuzz no longer covers multi-level re-seeks", tr.Height())
	}
}

// TestScanManyEdgeBatches pins the documented edge cases explicitly.
func TestScanManyEdgeBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const keySpace = 1 << 12
	tr := buildTree(t, rng, 2000, keySpace)
	empty := buildTree(t, rng, 0, keySpace)
	cases := []struct {
		name   string
		tree   *Tree
		ranges []ScanRange
	}{
		{"nil batch", tr, nil},
		{"all empty ranges", tr, []ScanRange{{5, 5}, {9, 3}, {100, 100}}},
		{"empty tree", empty, []ScanRange{{0, keySpace}}},
		{"empty tree many", empty, []ScanRange{{1, 2}, {7, 9}, {100, 400}}},
		{"past max key", tr, []ScanRange{{keySpace * 2, keySpace * 3}}},
		{"straddles max key", tr, []ScanRange{{keySpace - 64, keySpace * 2}}},
		{"adjacent", tr, []ScanRange{{10, 20}, {20, 30}, {30, 40}}},
		{"overlapping", tr, []ScanRange{{10, 200}, {50, 120}, {100, 300}}},
		{"contained", tr, []ScanRange{{0, keySpace}, {17, 23}}},
		{"full then past", tr, []ScanRange{{0, keySpace}, {keySpace + 5, keySpace + 9}}},
		{"singletons far apart", tr, []ScanRange{{3, 4}, {1000, 1001}, {3000, 3001}}},
	}
	for _, c := range cases {
		got := runScanMany(t, c.tree, c.ranges, -1)
		want := oracleScan(t, c.tree, c.ranges, -1)
		if !entriesEqual(got, want) {
			t.Errorf("%s: ScanMany %d entries != oracle %d entries", c.name, len(got), len(want))
		}
	}
}

// TestScanManyEarlyStop: a false-returning visitor must stop the whole
// batch with exactly the oracle's prefix delivered.
func TestScanManyEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const keySpace = 1 << 13
	tr := buildTree(t, rng, 3000, keySpace)
	for trial := 0; trial < 40; trial++ {
		ranges := randomRanges(rng, keySpace)
		limit := rng.Intn(40)
		got := runScanMany(t, tr, ranges, limit)
		want := oracleScan(t, tr, ranges, limit)
		if !entriesEqual(got, want) {
			t.Fatalf("trial=%d limit=%d: ScanMany %d entries != oracle %d", trial, limit, len(got), len(want))
		}
	}
}

func TestScanManyRejectsUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := buildTree(t, rng, 10, 1024)
	err := tr.ScanMany([]ScanRange{{100, 200}, {50, 60}}, func(Entry) bool { return true })
	if err == nil {
		t.Fatal("unsorted batch accepted")
	}
}

// TestScanManyMixedWorkloadInvariants interleaves mutation phases with
// concurrent batched scans (scans may run concurrently with each other, not
// with mutations — the callers' contract) and checks structural invariants
// after every phase. Run under -race in CI.
func TestScanManyMixedWorkloadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const keySpace = 1 << 12
	pool := storage.NewBufferPool(storage.NewDisk(), 48)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[Key]Entry)
	nextID := model.ObjectID(1)
	for round := 0; round < 8; round++ {
		for i := 0; i < 400; i++ {
			e := Entry{
				Key: Key{K: rng.Uint64() % keySpace, ID: nextID},
				Pos: geom.V(rng.Float64(), rng.Float64()),
				T:   float64(round),
			}
			nextID++
			if err := tr.Insert(e); err != nil {
				t.Fatal(err)
			}
			live[e.Key] = e
		}
		for k := range live {
			if rng.Intn(3) != 0 {
				continue
			}
			if err := tr.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(live, k)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*10 + g)))
				for i := 0; i < 10; i++ {
					ranges := randomRanges(rng, keySpace)
					var got []Entry
					if err := tr.ScanMany(ranges, func(e Entry) bool {
						got = append(got, e)
						return true
					}); err != nil {
						t.Error(err)
						return
					}
					for _, e := range got {
						if want, ok := live[e.Key]; !ok || want != e {
							t.Errorf("scan returned entry not in live set: %v", e)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
