package bptree

import (
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
)

// ScanRange is a half-open interval [Lo, Hi) of key-space values (Key.K),
// the unit of work ScanMany batches. The Bx-tree produces one ScanRange per
// merged space-filling-curve interval of a time bucket.
type ScanRange struct {
	Lo, Hi uint64
}

// scanFrame caches one decoded internal node of the current root-to-leaf
// path. hi/hiOK is the exclusive upper bound of the node's key space
// (hiOK=false on the rightmost spine, whose bound is open); the lower bound
// needs no tracking because the scan cursor only ever moves forward, so a
// cached frame whose upper bound admits the next target is always a true
// ancestor of the target's leaf.
type scanFrame struct {
	id       storage.PageID
	keys     []Key
	children []storage.PageID
	hi       Key
	hiOK     bool
}

// batchScanner carries the reusable state of one ScanMany call: the decoded
// path stack and the per-leaf result scratch. Everything is sized once per
// call and recycled across leaves and re-seeks, so the steady-state scan
// allocates nothing per page.
type batchScanner struct {
	t       *Tree
	frames  []scanFrame // frames[0] = root; len = height-1 (internal levels)
	scratch []Entry     // entries matched on the current leaf page
}

// readFrame decodes the internal page id into f, reusing f's slice capacity.
func (s *batchScanner) readFrame(f *scanFrame, id storage.PageID) error {
	ok := false
	err := s.t.pool.Read(id, func(data []byte) {
		if data[0] != tagInternal {
			return
		}
		ok = true
		count := int(binary.LittleEndian.Uint16(data[1:3]))
		if cap(f.children) < count+1 {
			f.children = make([]storage.PageID, count+1)
		} else {
			f.children = f.children[:count+1]
		}
		off := 3
		for i := 0; i <= count; i++ {
			f.children[i] = storage.PageID(binary.LittleEndian.Uint64(data[off : off+8]))
			off += 8
		}
		if cap(f.keys) < count {
			f.keys = make([]Key, count)
		} else {
			f.keys = f.keys[:count]
		}
		for i := 0; i < count; i++ {
			f.keys[i] = getKey(data[off : off+keySize])
			off += keySize
		}
	})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("bptree: page %d is not an internal node", id)
	}
	f.id = id
	return nil
}

// seek descends to the leaf owning target's key space, starting from the
// deepest cached ancestor whose subtree still contains target rather than
// from the root: shared path prefixes cost no page accesses on a re-seek,
// so jumping to the next interval of a batch touches only the nodes that
// actually differ. It returns the leaf page id and the exclusive upper
// bound of the leaf's key space (boundOK=false for the rightmost leaf).
// Targets must be non-decreasing across the seeks of one batchScanner.
func (s *batchScanner) seek(target Key) (leaf storage.PageID, bound Key, boundOK bool, err error) {
	t := s.t
	if len(s.frames) == 0 {
		return t.root, Key{}, false, nil
	}
	if s.frames[0].id != t.root {
		if err := s.readFrame(&s.frames[0], t.root); err != nil {
			return storage.NilPage, Key{}, false, err
		}
		s.frames[0].hiOK = false
	}
	// Deepest cached frame still containing target.
	start := 0
	for start+1 < len(s.frames) {
		f := &s.frames[start+1]
		if f.id == storage.NilPage || (f.hiOK && !target.Less(f.hi)) {
			break
		}
		start++
	}
	for level := start; ; level++ {
		f := &s.frames[level]
		ci := childIndex(f.keys, target)
		child := f.children[ci]
		childHi, childHiOK := f.hi, f.hiOK
		if ci < len(f.keys) {
			childHi, childHiOK = f.keys[ci], true
		}
		if level+1 == len(s.frames) {
			return child, childHi, childHiOK, nil
		}
		next := &s.frames[level+1]
		if next.id != child {
			if err := s.readFrame(next, child); err != nil {
				return storage.NilPage, Key{}, false, err
			}
		}
		next.hi, next.hiOK = childHi, childHiOK
	}
}

// ScanMany visits every entry whose Key.K lies in the union of ranges, in
// key order, exactly once — the batched equivalent of one Scan call per
// range. ranges must be sorted by Lo (overlapping or touching ranges are
// fine: the union is scanned once); unsorted input is rejected. visit
// returning false stops the whole batch. visit receives each entry by value
// and may retain it.
//
// Unlike a loop of Scan calls — one full root-to-leaf descent per range —
// ScanMany descends once and then walks the leaf sibling chain, re-seeking
// through a cached stack of the internal path only when the next range
// jumps past the current leaf, and then touching only the path nodes that
// differ. Leaf pages are filtered against the raw page bytes inside the
// buffer-pool read: entry keys are compared in place and only entries
// inside a range are decoded, so a leaf that merely bridges two ranges
// costs one page access and no decoding.
func (t *Tree) ScanMany(ranges []ScanRange, visit func(Entry) bool) error {
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Lo < ranges[i-1].Lo {
			return fmt.Errorf("bptree: ScanMany ranges not sorted by Lo at index %d", i)
		}
	}
	ri := 0
	for ri < len(ranges) && ranges[ri].Hi <= ranges[ri].Lo {
		ri++
	}
	if ri == len(ranges) {
		return nil
	}

	s := batchScanner{t: t}
	if t.height > 1 {
		s.frames = make([]scanFrame, t.height-1)
	}
	leaf, _, _, err := s.seek(Key{K: ranges[ri].Lo})
	if err != nil {
		return err
	}
	for {
		var (
			next    storage.PageID
			lastK   uint64
			count   int
			badLeaf bool
			done    bool
		)
		s.scratch = s.scratch[:0]
		err := t.pool.Read(leaf, func(data []byte) {
			if data[0] != tagLeaf {
				badLeaf = true
				return
			}
			count = int(binary.LittleEndian.Uint16(data[1:3]))
			next = storage.PageID(binary.LittleEndian.Uint64(data[3:11]))
			if count == 0 {
				return
			}
			lastK = binary.LittleEndian.Uint64(data[leafHeader+(count-1)*entrySize:])
			// First slot with K >= the pending range's Lo, against raw bytes.
			lo, hi := 0, count
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if binary.LittleEndian.Uint64(data[leafHeader+mid*entrySize:]) < ranges[ri].Lo {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			for i := lo; i < count; i++ {
				off := leafHeader + i*entrySize
				k := binary.LittleEndian.Uint64(data[off : off+8])
				for k >= ranges[ri].Hi {
					ri++
					if ri == len(ranges) {
						done = true
						return
					}
				}
				if k >= ranges[ri].Lo {
					s.scratch = append(s.scratch, decodeEntry(data[off:off+entrySize]))
				}
			}
		})
		if err != nil {
			return err
		}
		if badLeaf {
			return fmt.Errorf("bptree: page %d is not a leaf", leaf)
		}
		for _, e := range s.scratch {
			if !visit(e) {
				return nil
			}
		}
		if done || ri == len(ranges) {
			return nil
		}
		if count > 0 && ranges[ri].Lo <= lastK {
			// Mid-range: the pending range has keys at or before this leaf's
			// last entry, so its remainder (if any) continues on the sibling
			// chain — no re-seek, one next-pointer hop.
			if next == storage.NilPage {
				return nil
			}
			leaf = next
			continue
		}
		// The pending range starts past this leaf's last entry: re-seek
		// through the path stack.
		target := Key{K: ranges[ri].Lo}
		nleaf, bound, boundOK, err := s.seek(target)
		if err != nil {
			return err
		}
		if nleaf != leaf {
			leaf = nleaf
			continue
		}
		// The target maps back into this exhausted leaf: the key space
		// [target, bound) is provably empty. Ranges that end at or below the
		// bound are done; one reaching to or past it continues on the sibling
		// chain (entries at K == bound.K may straddle the separator's ID
		// component); one starting strictly past it needs a fresh seek, which
		// is then guaranteed to land on a later leaf.
		if !boundOK {
			return nil // rightmost leaf: nothing beyond the last entry
		}
		for ri < len(ranges) && ranges[ri].Hi <= bound.K {
			ri++
		}
		if ri == len(ranges) {
			return nil
		}
		if ranges[ri].Lo <= bound.K {
			if next == storage.NilPage {
				return nil
			}
			leaf = next
			continue
		}
		leaf, _, _, err = s.seek(Key{K: ranges[ri].Lo})
		if err != nil {
			return err
		}
	}
}
