package bxtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func testHist() *velocityHistogram {
	return newVelocityHistogram(geom.R(0, 0, 1000, 1000), 10)
}

func TestHistogramEmpty(t *testing.T) {
	h := testHist()
	if _, _, ok := h.Range(geom.R(0, 0, 1000, 1000)); ok {
		t.Fatal("empty histogram should report no data")
	}
}

func TestHistogramSingleCell(t *testing.T) {
	h := testHist()
	h.Add(geom.V(50, 50), geom.V(10, -5)) // cell (0,0)
	h.Add(geom.V(60, 60), geom.V(-3, 7))  // same cell
	vmin, vmax, ok := h.Range(geom.R(0, 0, 99, 99))
	if !ok {
		t.Fatal("no data")
	}
	if vmin != geom.V(-3, -5) || vmax != geom.V(10, 7) {
		t.Fatalf("bounds: %v %v", vmin, vmax)
	}
}

func TestHistogramDisjointCells(t *testing.T) {
	h := testHist()
	h.Add(geom.V(50, 50), geom.V(100, 0))   // cell (0,0)
	h.Add(geom.V(950, 950), geom.V(0, 100)) // cell (9,9)
	// A window over only the first cell must not see the second's velocity.
	_, vmax, ok := h.Range(geom.R(0, 0, 99, 99))
	if !ok || vmax.Y != 0 {
		t.Fatalf("leaked velocity from remote cell: %v", vmax)
	}
	// A window over everything sees both.
	_, vmax, ok = h.Range(geom.R(0, 0, 1000, 1000))
	if !ok || vmax != geom.V(100, 100) {
		t.Fatalf("global window: %v", vmax)
	}
}

func TestHistogramWindowOverEmptyCellsFallsBackGlobally(t *testing.T) {
	h := testHist()
	h.Add(geom.V(50, 50), geom.V(42, -42))
	// Window over occupied-free cells: must return the global bounds, not
	// claim emptiness (conservative for the enlargement iteration).
	vmin, vmax, ok := h.Range(geom.R(500, 500, 600, 600))
	if !ok {
		t.Fatal("should fall back to global bounds")
	}
	if vmax.X != 42 || vmin.Y != -42 {
		t.Fatalf("fallback bounds: %v %v", vmin, vmax)
	}
	// Window fully outside the domain: same fallback.
	if _, _, ok := h.Range(geom.R(5000, 5000, 6000, 6000)); !ok {
		t.Fatal("outside-domain window should fall back")
	}
}

func TestHistogramClampsOutOfDomainPositions(t *testing.T) {
	h := testHist()
	h.Add(geom.V(-100, 2000), geom.V(5, 5)) // clamps to cell (0, 9)
	_, vmax, ok := h.Range(geom.R(0, 900, 100, 1000))
	if !ok || vmax != geom.V(5, 5) {
		t.Fatalf("clamped add not visible: %v ok=%v", vmax, ok)
	}
}

func TestHistogramMonotoneWindows(t *testing.T) {
	// Growing the window can only widen (never shrink) the velocity
	// bounds — the property the downward enlargement iteration needs.
	h := testHist()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		h.Add(geom.V(rng.Float64()*1000, rng.Float64()*1000),
			geom.V(rng.Float64()*200-100, rng.Float64()*200-100))
	}
	for trial := 0; trial < 200; trial++ {
		x, y := rng.Float64()*800, rng.Float64()*800
		small := geom.R(x, y, x+rng.Float64()*100, y+rng.Float64()*100)
		big := small.Expand(rng.Float64() * 200)
		smin, smax, ok1 := h.Range(small)
		bmin, bmax, ok2 := h.Range(big)
		if !ok1 || !ok2 {
			t.Fatal("no data")
		}
		if bmin.X > smin.X || bmin.Y > smin.Y || bmax.X < smax.X || bmax.Y < smax.Y {
			t.Fatalf("window growth narrowed bounds: small [%v,%v] big [%v,%v]",
				smin, smax, bmin, bmax)
		}
	}
}
