package bxtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
)

func newTestTree(t *testing.T, bufferPages int, cfg Config) *Tree {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(), bufferPages)
	tr, err := NewTree(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randomWorkload(n int, rng *rand.Rand, tref float64) []model.Object {
	objs := make([]model.Object, n)
	for i := range objs {
		speed := rng.Float64() * 100
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		var vel geom.Vec2
		if rng.Intn(2) == 0 {
			vel = geom.V(speed, rng.NormFloat64()*2)
		} else {
			vel = geom.V(rng.NormFloat64()*2, speed)
		}
		objs[i] = model.Object{
			ID:  model.ObjectID(i + 1),
			Pos: geom.V(rng.Float64()*100000, rng.Float64()*100000),
			Vel: vel,
			T:   tref,
		}
	}
	return objs
}

func sameIDs(t *testing.T, got, want []model.ObjectID, context string) {
	t.Helper()
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", context, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d differs: %d vs %d", context, i, got[i], want[i])
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.GridOrder != 8 || c.Buckets != 2 || c.MaxUpdateInterval != 120 ||
		c.HistogramCells != 64 || c.MaxScanRanges != 16 || c.ExpansionRounds != 4 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Domain != geom.R(0, 0, 100000, 100000) {
		t.Fatalf("default domain: %v", c.Domain)
	}
}

func TestGridOrderValidation(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewDisk(), 10)
	if _, err := NewTree(pool, Config{GridOrder: 30}); err == nil {
		t.Fatal("excessive grid order accepted")
	}
}

func TestBoundaryIndexing(t *testing.T) {
	tr := newTestTree(t, 50, Config{}) // bucket width = 60
	cases := []struct {
		tm  float64
		idx int64
	}{
		{0, 0}, {0.1, 1}, {59.9, 1}, {60, 1}, {60.1, 2}, {120, 2}, {121, 3},
	}
	for _, c := range cases {
		if got := tr.boundaryIndex(c.tm); got != c.idx {
			t.Fatalf("boundaryIndex(%g) = %d, want %d", c.tm, got, c.idx)
		}
	}
	if tr.refTime(2) != 120 {
		t.Fatalf("refTime(2) = %g", tr.refTime(2))
	}
}

func TestInsertSearchSingle(t *testing.T) {
	tr := newTestTree(t, 50, Config{})
	o := model.Object{ID: 1, Pos: geom.V(500, 500), Vel: geom.V(10, 0), T: 0}
	if err := tr.Insert(o); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.ActiveBuckets() != 1 {
		t.Fatalf("len=%d buckets=%d", tr.Len(), tr.ActiveBuckets())
	}
	hit, err := tr.Search(model.RangeQuery{
		Kind: model.TimeSlice, Rect: geom.R(900, 400, 1100, 600), Now: 0, T0: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hit) != 1 || hit[0] != 1 {
		t.Fatalf("hit = %v", hit)
	}
	miss, err := tr.Search(model.RangeQuery{
		Kind: model.TimeSlice, Rect: geom.R(0, 0, 100, 100), Now: 0, T0: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(miss) != 0 {
		t.Fatalf("miss = %v", miss)
	}
}

func TestBulkAgainstOracleAllQueryKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, zorder := range []bool{false, true} {
		tr := newTestTree(t, 200, Config{UseZOrder: zorder})
		oracle := model.NewBruteForce()
		// Spread insert times over one bucket width so two buckets go live.
		objs := randomWorkload(3000, rng, 0)
		for i, o := range objs {
			o.T = float64(i%100) * 0.7 // 0..69.3
			o.Pos = o.PosAt(o.T)       // keep record self-consistent
			o.T = float64(i%100) * 0.7
			objs[i] = o
			if err := tr.Insert(o); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Insert(o); err != nil {
				t.Fatal(err)
			}
		}
		if tr.ActiveBuckets() < 2 {
			t.Fatalf("expected >=2 active buckets, got %d", tr.ActiveBuckets())
		}
		for trial := 0; trial < 50; trial++ {
			c := geom.V(rng.Float64()*100000, rng.Float64()*100000)
			t0 := 70 + rng.Float64()*60
			t1 := t0 + rng.Float64()*60
			queries := []model.RangeQuery{
				{Kind: model.TimeSlice, Rect: geom.RectFromCenter(c, 3000, 3000), Now: 70, T0: t0},
				{Kind: model.TimeInterval, Rect: geom.RectFromCenter(c, 2000, 2000), Now: 70, T0: t0, T1: t1},
				{Kind: model.MovingRange, Rect: geom.RectFromCenter(c, 2000, 2000),
					Vel: geom.V(rng.Float64()*100-50, rng.Float64()*100-50), Now: 70, T0: t0, T1: t1},
				{Kind: model.TimeSlice, Circle: geom.Circle{C: c, R: 2500}, Now: 70, T0: t0},
			}
			for _, q := range queries {
				got, err := tr.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				want, err := oracle.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				sameIDs(t, got, want, q.Kind.String())
			}
		}
	}
}

// TestBatchedScanByteIdenticalToLegacy feeds an identical workload to a
// batched-scan tree and a LegacyScan (per-interval descent) tree and
// requires Search/SearchObjects to agree element for element, in order —
// the byte-identical guarantee the batched leaf-walk engine makes.
func TestBatchedScanByteIdenticalToLegacy(t *testing.T) {
	for _, zorder := range []bool{false, true} {
		rng := rand.New(rand.NewSource(67))
		batched := newTestTree(t, 200, Config{UseZOrder: zorder})
		legacy := newTestTree(t, 200, Config{UseZOrder: zorder, LegacyScan: true})
		objs := randomWorkload(2500, rng, 0)
		for i, o := range objs {
			o.T = float64(i%100) * 0.7
			o.Pos = o.PosAt(o.T)
			o.T = float64(i%100) * 0.7
			objs[i] = o
			for _, tr := range []*Tree{batched, legacy} {
				if err := tr.Insert(o); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Churn: deletes and forward updates so buckets rotate.
		for i := 0; i < 600; i++ {
			o := objs[rng.Intn(len(objs))]
			if o.ID == 0 {
				continue
			}
			nu := o
			nu.T = 75 + rng.Float64()*20
			nu.Pos = o.PosAt(nu.T)
			for _, tr := range []*Tree{batched, legacy} {
				if err := tr.Update(o, nu); err != nil {
					t.Fatal(err)
				}
			}
			objs[nu.ID-1] = nu
		}
		for trial := 0; trial < 80; trial++ {
			c := geom.V(rng.Float64()*100000, rng.Float64()*100000)
			t0 := 95 + rng.Float64()*60
			t1 := t0 + rng.Float64()*60
			queries := []model.RangeQuery{
				{Kind: model.TimeSlice, Rect: geom.RectFromCenter(c, 4000, 4000), Now: 95, T0: t0},
				{Kind: model.TimeInterval, Rect: geom.RectFromCenter(c, 2500, 2500), Now: 95, T0: t0, T1: t1},
				{Kind: model.MovingRange, Rect: geom.RectFromCenter(c, 2500, 2500),
					Vel: geom.V(rng.Float64()*100-50, rng.Float64()*100-50), Now: 95, T0: t0, T1: t1},
				{Kind: model.TimeSlice, Circle: geom.Circle{C: c, R: 3000}, Now: 95, T0: t0},
			}
			for _, q := range queries {
				got, err := batched.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				want, err := legacy.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s zorder=%v: batched %d ids, legacy %d", q.Kind, zorder, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s zorder=%v: id %d differs: %d vs %d (order must match too)",
							q.Kind, zorder, i, got[i], want[i])
					}
				}
				gobj, err := batched.SearchObjects(q)
				if err != nil {
					t.Fatal(err)
				}
				wobj, err := legacy.SearchObjects(q)
				if err != nil {
					t.Fatal(err)
				}
				if len(gobj) != len(wobj) {
					t.Fatalf("%s zorder=%v: batched %d objects, legacy %d", q.Kind, zorder, len(gobj), len(wobj))
				}
				for i := range wobj {
					if gobj[i] != wobj[i] {
						t.Fatalf("%s zorder=%v: object %d differs", q.Kind, zorder, i)
					}
				}
			}
		}
	}
}

func TestDeleteAndUpdateAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := newTestTree(t, 200, Config{})
	oracle := model.NewBruteForce()
	objs := randomWorkload(2000, rng, 0)
	for _, o := range objs {
		_ = tr.Insert(o)
		_ = oracle.Insert(o)
	}
	cur := append([]model.Object(nil), objs...)
	// Rounds of updates moving objects into later buckets.
	for round := 1; round <= 4; round++ {
		now := float64(round) * 30
		for i := range cur {
			if rng.Intn(3) != 0 {
				continue
			}
			upd := cur[i]
			upd.Pos = upd.PosAt(now)
			upd.Vel = geom.V(rng.Float64()*200-100, rng.Float64()*200-100)
			upd.T = now
			if err := tr.Update(cur[i], upd); err != nil {
				t.Fatalf("update: %v", err)
			}
			_ = oracle.Update(cur[i], upd)
			cur[i] = upd
		}
		if tr.Len() != oracle.Len() {
			t.Fatalf("len %d vs %d", tr.Len(), oracle.Len())
		}
		for trial := 0; trial < 15; trial++ {
			q := model.RangeQuery{
				Kind: model.TimeSlice,
				Rect: geom.RectFromCenter(geom.V(rng.Float64()*100000, rng.Float64()*100000), 4000, 4000),
				Now:  now, T0: now + rng.Float64()*60,
			}
			got, _ := tr.Search(q)
			want, _ := oracle.Search(q)
			sameIDs(t, got, want, "post-update")
		}
	}
	// Buckets for long-gone boundaries must have been garbage collected.
	if tr.ActiveBuckets() > 4 {
		t.Fatalf("stale buckets: %d", tr.ActiveBuckets())
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := newTestTree(t, 50, Config{})
	o := model.Object{ID: 3, Pos: geom.V(10, 10), Vel: geom.V(1, 1), T: 0}
	if err := tr.Delete(o); err != model.ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestObjectsOutsideDomainClamped(t *testing.T) {
	tr := newTestTree(t, 50, Config{})
	oracle := model.NewBruteForce()
	// Fast object whose extrapolated reference position exits the domain.
	o := model.Object{ID: 1, Pos: geom.V(99990, 50000), Vel: geom.V(500, 0), T: 1}
	_ = tr.Insert(o)
	_ = oracle.Insert(o)
	// And one that starts outside.
	o2 := model.Object{ID: 2, Pos: geom.V(-500, -500), Vel: geom.V(-10, -10), T: 1}
	_ = tr.Insert(o2)
	_ = oracle.Insert(o2)
	for _, q := range []model.RangeQuery{
		{Kind: model.TimeSlice, Rect: geom.R(90000, 40000, 200000, 60000), Now: 1, T0: 30},
		{Kind: model.TimeSlice, Rect: geom.R(-2000, -2000, 0, 0), Now: 1, T0: 30},
	} {
		got, err := tr.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := oracle.Search(q)
		sameIDs(t, got, want, "clamped")
	}
	// Deleting the clamped objects must work (key recomputed identically).
	if err := tr.Delete(o); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(o2); err != nil {
		t.Fatal(err)
	}
}

func TestQueryBeforeReferenceTime(t *testing.T) {
	// Objects are indexed forward at a future boundary; a query for a time
	// before that boundary exercises the negative-gap enlargement.
	tr := newTestTree(t, 50, Config{})
	oracle := model.NewBruteForce()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		o := model.Object{
			ID:  model.ObjectID(i + 1),
			Pos: geom.V(rng.Float64()*100000, rng.Float64()*100000),
			Vel: geom.V(rng.Float64()*200-100, rng.Float64()*200-100),
			T:   5, // boundary will be 60
		}
		_ = tr.Insert(o)
		_ = oracle.Insert(o)
	}
	q := model.RangeQuery{
		Kind: model.TimeSlice,
		Rect: geom.RectFromCenter(geom.V(50000, 50000), 8000, 8000),
		Now:  5, T0: 10, // well before the reference time 60
	}
	got, err := tr.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := oracle.Search(q)
	sameIDs(t, got, want, "pre-reference query")
}

func TestExpansionRateReflectsVelocitySkew(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func(axisAligned bool) geom.Vec2 {
		tr := newTestTree(t, 100, Config{})
		for i := 0; i < 2000; i++ {
			speed := 20 + rng.Float64()*80
			if rng.Intn(2) == 0 {
				speed = -speed
			}
			vel := geom.V(speed, rng.NormFloat64())
			if !axisAligned && i%2 == 0 {
				vel = geom.V(rng.NormFloat64(), speed)
			}
			_ = tr.Insert(model.Object{
				ID:  model.ObjectID(i + 1),
				Pos: geom.V(rng.Float64()*100000, rng.Float64()*100000),
				Vel: vel, T: 0,
			})
		}
		rates := tr.ExpansionRate(geom.RectFromCenter(geom.V(50000, 50000), 5000, 5000))
		if len(rates) == 0 {
			t.Fatal("no expansion rates")
		}
		var avg geom.Vec2
		for _, r := range rates {
			avg = avg.Add(r)
		}
		return avg.Scale(1 / float64(len(rates)))
	}
	skewed := mk(true)
	mixed := mk(false)
	// Single-axis data: y-rate should be tiny relative to x-rate.
	if skewed.Y*5 > skewed.X {
		t.Fatalf("skewed rates should be anisotropic: %v", skewed)
	}
	// Mixed data: both rates comparable.
	if mixed.Y*3 < mixed.X {
		t.Fatalf("mixed rates should be isotropic-ish: %v", mixed)
	}
}

func TestQueryIOBoundedByScanCap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pool := storage.NewBufferPool(storage.NewDisk(), 50)
	tr, err := NewTree(pool, Config{MaxScanRanges: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range randomWorkload(10000, rng, 0) {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	before := pool.Stats()
	_, err = tr.Search(model.RangeQuery{
		Kind: model.TimeSlice,
		Rect: geom.RectFromCenter(geom.V(50000, 50000), 500, 500),
		Now:  0, T0: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := pool.Stats()
	touched := (after.Misses - before.Misses) + (after.Hits - before.Hits)
	if touched <= 0 {
		t.Fatal("query touched nothing")
	}
	// 1 bucket x 4 ranges x height(<=3) descents + leaves; sanity bound.
	if touched > 400 {
		t.Fatalf("query touched %d pages", touched)
	}
}

func TestHeightReported(t *testing.T) {
	tr := newTestTree(t, 100, Config{})
	if tr.Height() != 1 {
		t.Fatalf("empty height = %d", tr.Height())
	}
	rng := rand.New(rand.NewSource(1))
	for _, o := range randomWorkload(5000, rng, 0) {
		_ = tr.Insert(o)
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d after 5000 inserts", tr.Height())
	}
}
