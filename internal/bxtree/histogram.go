package bxtree

import (
	"math"

	"repro/internal/geom"
)

// velocityHistogram is the grid-based min/max velocity summary the Bx-tree
// consults to enlarge query windows (Section 3.2: "histograms on a grid
// base are maintained for the maximum/minimum velocity of different
// portions of the data space"). Each cell keeps the componentwise min and
// max velocity of the objects whose reference position falls in it.
//
// The histogram is insert-only; the owning bucket's bounded lifetime keeps
// it from going stale (see Tree.Delete).
type velocityHistogram struct {
	domain geom.Rect
	cells  int
	// min/max velocity per cell, row-major; count tracks occupancy.
	minVX, maxVX []float64
	minVY, maxVY []float64
	count        []int32
	// global fallbacks for windows that clip nothing.
	gMin, gMax geom.Vec2
	total      int
}

func newVelocityHistogram(domain geom.Rect, cells int) *velocityHistogram {
	n := cells * cells
	h := &velocityHistogram{
		domain: domain,
		cells:  cells,
		minVX:  make([]float64, n),
		maxVX:  make([]float64, n),
		minVY:  make([]float64, n),
		maxVY:  make([]float64, n),
		count:  make([]int32, n),
	}
	return h
}

// cellIndex maps a position to its histogram cell (clamped).
func (h *velocityHistogram) cellIndex(p geom.Vec2) int {
	fx := (p.X - h.domain.MinX) / h.domain.Width() * float64(h.cells)
	fy := (p.Y - h.domain.MinY) / h.domain.Height() * float64(h.cells)
	cx := clampInt(int(fx), 0, h.cells-1)
	cy := clampInt(int(fy), 0, h.cells-1)
	return cy*h.cells + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Add records an object's velocity at its reference position.
func (h *velocityHistogram) Add(pos, vel geom.Vec2) {
	i := h.cellIndex(pos)
	if h.count[i] == 0 {
		h.minVX[i], h.maxVX[i] = vel.X, vel.X
		h.minVY[i], h.maxVY[i] = vel.Y, vel.Y
	} else {
		h.minVX[i] = math.Min(h.minVX[i], vel.X)
		h.maxVX[i] = math.Max(h.maxVX[i], vel.X)
		h.minVY[i] = math.Min(h.minVY[i], vel.Y)
		h.maxVY[i] = math.Max(h.maxVY[i], vel.Y)
	}
	h.count[i]++
	if h.total == 0 {
		h.gMin, h.gMax = vel, vel
	} else {
		h.gMin = geom.Vec2{X: math.Min(h.gMin.X, vel.X), Y: math.Min(h.gMin.Y, vel.Y)}
		h.gMax = geom.Vec2{X: math.Max(h.gMax.X, vel.X), Y: math.Max(h.gMax.Y, vel.Y)}
	}
	h.total++
}

// Range returns the componentwise min/max velocity over the cells that
// intersect region r. ok is false when the histogram is empty; when r
// covers no occupied cell the global bounds are returned (conservative:
// an expanding window must not under-estimate velocities just because its
// current footprint is sparse).
func (h *velocityHistogram) Range(r geom.Rect) (vmin, vmax geom.Vec2, ok bool) {
	if h.total == 0 {
		return geom.Vec2{}, geom.Vec2{}, false
	}
	clipped := r.Intersect(h.domain)
	if clipped.IsEmpty() {
		return h.gMin, h.gMax, true
	}
	x0 := clampInt(int((clipped.MinX-h.domain.MinX)/h.domain.Width()*float64(h.cells)), 0, h.cells-1)
	x1 := clampInt(int((clipped.MaxX-h.domain.MinX)/h.domain.Width()*float64(h.cells)), 0, h.cells-1)
	y0 := clampInt(int((clipped.MinY-h.domain.MinY)/h.domain.Height()*float64(h.cells)), 0, h.cells-1)
	y1 := clampInt(int((clipped.MaxY-h.domain.MinY)/h.domain.Height()*float64(h.cells)), 0, h.cells-1)

	found := false
	for cy := y0; cy <= y1; cy++ {
		row := cy * h.cells
		for cx := x0; cx <= x1; cx++ {
			i := row + cx
			if h.count[i] == 0 {
				continue
			}
			if !found {
				vmin = geom.Vec2{X: h.minVX[i], Y: h.minVY[i]}
				vmax = geom.Vec2{X: h.maxVX[i], Y: h.maxVY[i]}
				found = true
				continue
			}
			vmin.X = math.Min(vmin.X, h.minVX[i])
			vmin.Y = math.Min(vmin.Y, h.minVY[i])
			vmax.X = math.Max(vmax.X, h.maxVX[i])
			vmax.Y = math.Max(vmax.Y, h.maxVY[i])
		}
	}
	if !found {
		return h.gMin, h.gMax, true
	}
	return vmin, vmax, true
}
