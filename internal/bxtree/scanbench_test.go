package bxtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
)

func benchTree(b *testing.B, legacy bool) *Tree {
	b.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(), 8)
	tr, err := NewTree(pool, Config{LegacyScan: legacy})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4000; i++ {
		o := model.Object{
			ID:  model.ObjectID(i + 1),
			Pos: geom.V(rng.Float64()*100000, rng.Float64()*100000),
			Vel: geom.V(rng.NormFloat64()*30, rng.NormFloat64()*30),
			T:   float64(i%100) * 0.7,
		}
		if err := tr.Insert(o); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

func benchSearch(b *testing.B, legacy bool) {
	tr := benchTree(b, legacy)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := geom.V(rng.Float64()*100000, rng.Float64()*100000)
		q := model.RangeQuery{Kind: model.TimeSlice, Circle: geom.Circle{C: c, R: 2500},
			Rect: geom.Circle{C: c, R: 2500}.Bound(), Now: 70, T0: 130}
		if _, err := tr.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchLegacy(b *testing.B)  { benchSearch(b, true) }
func BenchmarkSearchBatched(b *testing.B) { benchSearch(b, false) }
