// Package bxtree implements the Bx-tree of Jensen, Lin and Ooi (VLDB 2004)
// as described in Section 3.2 of the VP paper: moving objects are
// discretized onto a grid, linearized with a space-filling curve (Hilbert
// by default) and stored in a paged B+-tree under keys prefixed by a time
// bucket. Predictive queries enlarge their window by the min/max velocities
// of the data (kept in grid-based velocity histograms) scaled by the gap
// between the query time and the bucket's reference time, using the
// iterative-expansion refinement of Jensen et al. (MDM 2006, [14] in the
// paper) that the paper's experimental configuration adopts.
//
// Deviations from the original presentation (both behaviour-preserving,
// see DESIGN.md): the bucket prefix is the raw bucket boundary index rather
// than its value modulo n+1 (the modulo is only a key-compression trick),
// and velocity histograms are kept per active bucket so that stale maxima
// age out exactly when their bucket empties.
package bxtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bptree"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/sfc"
	"repro/internal/storage"
)

// Config parameterizes a Bx-tree. The zero value is completed with the
// paper's defaults by NewTree.
type Config struct {
	// Domain is the indexed data space (Table 1: 100,000 x 100,000 m).
	// Positions outside are clamped to the boundary for key purposes.
	Domain geom.Rect
	// GridOrder is the number of bits per axis of the space-filling-curve
	// grid (default 8, i.e. 256x256 cells).
	GridOrder uint
	// Buckets is the number of time buckets n (paper setting: 2). The
	// bucket width is MaxUpdateInterval / Buckets.
	Buckets int
	// MaxUpdateInterval is the guaranteed maximum time between an object's
	// consecutive updates (Table 1: 120 ts).
	MaxUpdateInterval float64
	// UseZOrder selects the Z-curve instead of the Hilbert curve.
	UseZOrder bool
	// HistogramCells is the velocity histogram resolution per axis
	// (the paper uses 1000 on a 100k-object workload; default here 64 —
	// resolution is a pure precision/CPU knob, see the ablation bench).
	HistogramCells int
	// MaxScanRanges caps the number of key ranges scanned per bucket per
	// query; curve intervals beyond the cap are bridged smallest-gap-first
	// (scanning a few extra keys instead of fragmenting the scan). Default
	// 16.
	MaxScanRanges int
	// ExpansionRounds bounds the iterative query enlargement (default 4).
	ExpansionRounds int
	// LegacyScan restores the per-interval scan path — one full B+-tree
	// root-to-leaf descent per curve interval — instead of the batched
	// leaf-walk engine (bptree.ScanMany) that serves a whole bucket's
	// intervals with one descent plus sibling hops. Results are identical
	// either way; the knob exists as the measured baseline of the scan
	// benchmark (vpbench -exp scan) and for differential tests.
	LegacyScan bool
}

func (c Config) withDefaults() Config {
	if c.Domain.IsEmpty() || c.Domain.Area() == 0 {
		c.Domain = geom.R(0, 0, 100000, 100000)
	}
	if c.GridOrder == 0 {
		c.GridOrder = 8
	}
	if c.Buckets <= 0 {
		c.Buckets = 2
	}
	if c.MaxUpdateInterval <= 0 {
		c.MaxUpdateInterval = 120
	}
	if c.HistogramCells <= 0 {
		c.HistogramCells = 64
	}
	if c.MaxScanRanges <= 0 {
		c.MaxScanRanges = 16
	}
	if c.ExpansionRounds <= 0 {
		c.ExpansionRounds = 4
	}
	return c
}

// bucket tracks one active time bucket: the objects indexed at reference
// time Ref, plus its velocity histogram.
type bucket struct {
	idx   int64   // boundary index (Ref / bucketWidth)
	ref   float64 // reference time objects in this bucket are indexed at
	count int
	hist  *velocityHistogram
}

// Tree is a Bx-tree. Mutations are not safe for concurrent use (the VP
// manager and the harness serialize them, as with the TPR*-tree); read-only
// queries may run concurrently with each other — all mutable state is
// behind the buffer pool's lock — which the VP manager's parallel partition
// fan-out relies on.
type Tree struct {
	cfg   Config
	curve sfc.Curve
	bt    *bptree.Tree
	pool  *storage.BufferPool

	bucketWidth float64
	buckets     map[int64]*bucket
	size        int
	name        string
}

var _ model.Index = (*Tree)(nil)

// NewTree creates an empty Bx-tree drawing pages from pool.
func NewTree(pool *storage.BufferPool, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	var curve sfc.Curve
	var err error
	if cfg.UseZOrder {
		curve, err = sfc.NewZOrder(cfg.GridOrder)
	} else {
		curve, err = sfc.NewHilbert(cfg.GridOrder)
	}
	if err != nil {
		return nil, err
	}
	// The key layout dedicates 2*GridOrder low bits to the curve value;
	// the bucket index must fit in what remains.
	if 2*cfg.GridOrder > 48 {
		return nil, fmt.Errorf("bxtree: grid order %d leaves too few bucket bits", cfg.GridOrder)
	}
	bt, err := bptree.New(pool)
	if err != nil {
		return nil, err
	}
	return &Tree{
		cfg:         cfg,
		curve:       curve,
		bt:          bt,
		pool:        pool,
		bucketWidth: cfg.MaxUpdateInterval / float64(cfg.Buckets),
		buckets:     make(map[int64]*bucket),
		name:        "bx",
	}, nil
}

// SetName overrides the reported index name.
func (t *Tree) SetName(s string) { t.name = s }

// Name implements model.Index.
func (t *Tree) Name() string { return t.name }

// Len implements model.Index.
func (t *Tree) Len() int { return t.size }

// IO implements model.Index.
func (t *Tree) IO() model.IOStats {
	s := t.pool.Stats()
	return model.IOStats{Reads: s.Misses, Writes: s.Writes, Hits: s.Hits}
}

// Height returns the underlying B+-tree height (update cost is directly
// proportional to it — Section 6.3 of the paper).
func (t *Tree) Height() int { return t.bt.Height() }

// ActiveBuckets returns the number of live time buckets (diagnostics).
func (t *Tree) ActiveBuckets() int { return len(t.buckets) }

// --- key construction --------------------------------------------------------

// boundaryIndex returns the index of the first bucket boundary at or after
// time tm: objects updated at tm are indexed forward at that boundary.
func (t *Tree) boundaryIndex(tm float64) int64 {
	return int64(math.Ceil(tm / t.bucketWidth))
}

// refTime converts a boundary index back to its timestamp.
func (t *Tree) refTime(idx int64) float64 { return float64(idx) * t.bucketWidth }

// cellOf maps a position (clamped into the domain) to its grid cell.
func (t *Tree) cellOf(p geom.Vec2) (uint32, uint32) {
	d := t.cfg.Domain
	size := float64(t.curve.Size())
	cx := (p.X - d.MinX) / d.Width() * size
	cy := (p.Y - d.MinY) / d.Height() * size
	clamp := func(v float64) uint32 {
		if v < 0 {
			return 0
		}
		if v >= size {
			return uint32(size) - 1
		}
		return uint32(v)
	}
	return clamp(cx), clamp(cy)
}

// keyFor computes the composite B+-tree key prefix for an object record:
// the object's position is extrapolated to the bucket reference time,
// clamped into the domain, discretized and linearized.
func (t *Tree) keyFor(o model.Object) (uint64, int64) {
	idx := t.boundaryIndex(o.T)
	ref := t.refTime(idx)
	cx, cy := t.cellOf(o.PosAt(ref))
	k := uint64(idx)<<(2*t.cfg.GridOrder) | t.curve.Encode(cx, cy)
	return k, idx
}

// --- insert / delete / update ------------------------------------------------

// Insert implements model.Index.
func (t *Tree) Insert(o model.Object) error {
	if !o.Pos.IsFinite() || !o.Vel.IsFinite() {
		return fmt.Errorf("bxtree: non-finite object %v", o)
	}
	k, idx := t.keyFor(o)
	err := t.bt.Insert(bptree.Entry{
		Key: bptree.Key{K: k, ID: o.ID},
		Pos: o.Pos,
		Vel: o.Vel,
		T:   o.T,
	})
	if err != nil {
		return err
	}
	b := t.buckets[idx]
	if b == nil {
		b = &bucket{
			idx:  idx,
			ref:  t.refTime(idx),
			hist: newVelocityHistogram(t.cfg.Domain, t.cfg.HistogramCells),
		}
		t.buckets[idx] = b
	}
	b.count++
	b.hist.Add(o.PosAt(b.ref), o.Vel)
	t.size++
	return nil
}

// Delete implements model.Index. The record must equal the inserted one:
// the key is recomputed deterministically from it.
func (t *Tree) Delete(o model.Object) error {
	k, idx := t.keyFor(o)
	if err := t.bt.Delete(bptree.Key{K: k, ID: o.ID}); err != nil {
		return err
	}
	if b := t.buckets[idx]; b != nil {
		b.count--
		// The histogram stays conservative until the bucket dies; buckets
		// live at most MaxUpdateInterval, bounding the staleness exactly
		// as the paper's periodic histogram refresh does.
		if b.count <= 0 {
			delete(t.buckets, idx)
		}
	}
	t.size--
	return nil
}

// Update implements model.Index (delete + insert; the object moves to the
// newest time bucket, which is how the Bx-tree migrates objects forward).
func (t *Tree) Update(old, new model.Object) error {
	if err := t.Delete(old); err != nil {
		return err
	}
	return t.Insert(new)
}

// --- queries -------------------------------------------------------------------

// Search implements model.Index for all three query kinds of Section 2.1.
// Matching IDs are collected directly through the scan visitor — no
// intermediate []model.Object is materialized just to copy the IDs out.
func (t *Tree) Search(q model.RangeQuery) ([]model.ObjectID, error) {
	out := make([]model.ObjectID, 0, 8)
	err := t.searchVisit(q, func(o model.Object) {
		out = append(out, o.ID)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SearchObjects is Search returning full records (the kNN refinement needs
// positions, not just ids).
func (t *Tree) SearchObjects(q model.RangeQuery) ([]model.Object, error) {
	var out []model.Object
	err := t.searchVisit(q, func(o model.Object) {
		out = append(out, o)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// queryScratch is the per-query scratch state searchVisit threads through
// the buckets: the bucket order, the curve-interval buffer and the scan
// batch are each allocated once and recycled bucket to bucket.
type queryScratch struct {
	idxs   []int64
	ivs    []sfc.Interval
	ranges []bptree.ScanRange
}

// searchVisit runs q over every time bucket, emitting each matching object
// exactly once. Buckets are visited in ascending boundary order so results
// are deterministic for a given tree state — the property the parallel
// partition fan-out leans on when asserting its merge is byte-identical to
// the sequential path; within a bucket, objects stream in key order.
func (t *Tree) searchVisit(q model.RangeQuery, emit func(model.Object)) error {
	if err := q.Validate(); err != nil {
		return err
	}
	var sc queryScratch
	sc.idxs = make([]int64, 0, len(t.buckets))
	for idx := range t.buckets {
		sc.idxs = append(sc.idxs, idx)
	}
	sort.Slice(sc.idxs, func(i, j int) bool { return sc.idxs[i] < sc.idxs[j] })
	for _, idx := range sc.idxs {
		if err := t.searchBucket(t.buckets[idx], q, &sc, emit); err != nil {
			return err
		}
	}
	return nil
}

// searchBucket runs the enlarged-window scan over one time bucket: the
// window is decomposed into curve intervals once, the interval list is
// merged gap-aware down to the scan budget, and the whole batch is served
// by a single bptree.ScanMany leaf walk (one descent, sibling hops between
// nearby intervals, path-stack re-seeks across gaps) unless cfg.LegacyScan
// requests the per-interval descent baseline.
func (t *Tree) searchBucket(b *bucket, q model.RangeQuery, sc *queryScratch, emit func(model.Object)) error {
	w := t.enlargedWindow(b, q)
	if w.IsEmpty() {
		return nil
	}
	// Map the window to cell coordinates through cellOf, which *saturates*
	// at the boundary cells. Keys were generated from positions clamped the
	// same way, so a window overshooting the domain still scans the
	// boundary cells where clamped objects live; the exact Matches filter
	// removes any false candidates this admits.
	x0, y0 := t.cellOf(geom.V(w.MinX, w.MinY))
	x1, y1 := t.cellOf(geom.V(w.MaxX, w.MaxY))
	sc.ivs = t.curve.AppendWindow(sc.ivs[:0], x0, y0, x1, y1)
	ivs := sfc.MergeIntervals(sc.ivs, t.cfg.MaxScanRanges)

	prefix := uint64(b.idx) << (2 * t.cfg.GridOrder)
	visit := func(e bptree.Entry) bool {
		o := e.Object()
		if model.Matches(o, q) {
			emit(o)
		}
		return true
	}
	if t.cfg.LegacyScan {
		for _, iv := range ivs {
			if err := t.bt.Scan(prefix+iv.Lo, prefix+iv.Hi, visit); err != nil {
				return err
			}
		}
		return nil
	}
	sc.ranges = sc.ranges[:0]
	for _, iv := range ivs {
		sc.ranges = append(sc.ranges, bptree.ScanRange{Lo: prefix + iv.Lo, Hi: prefix + iv.Hi})
	}
	return t.bt.ScanMany(sc.ranges, visit)
}

// enlargedWindow computes the query window in the bucket's reference frame.
//
// The classic Bx enlargement uses the bucket's global min/max velocities —
// always correct but loose when only a few objects are fast. The iterative
// refinement of Jensen et al. [14] shrinks it: starting from the globally
// enlarged window, re-read the histogram over the current window and
// re-enlarge with the (tighter) local velocity bounds. Because each window
// is a subset of the previous one, the velocity bounds can only tighten,
// so the iteration decreases monotonically and — by induction from the
// provably safe global start — every stored position of a matching object
// stays inside every iterate. We stop at a fixpoint or after
// ExpansionRounds rounds.
func (t *Tree) enlargedWindow(b *bucket, q model.RangeQuery) geom.Rect {
	r0, r1, dt0, dt1 := t.queryEndpoints(b, q)
	if b.hist.total == 0 {
		return geom.EmptyRect()
	}
	enlarge := func(vmin, vmax geom.Vec2) geom.Rect {
		return enlargeForGap(r0, vmin, vmax, dt0).Union(enlargeForGap(r1, vmin, vmax, dt1))
	}
	w := enlarge(b.hist.gMin, b.hist.gMax)
	for round := 0; round < t.cfg.ExpansionRounds; round++ {
		vmin, vmax, ok := b.hist.Range(w)
		if !ok {
			return geom.EmptyRect()
		}
		next := enlarge(vmin, vmax)
		// Monotone non-increasing by construction; guard numerically.
		next = next.Intersect(w)
		if next.IsEmpty() {
			return geom.EmptyRect()
		}
		if w.ContainsRect(next) && next.ContainsRect(w) {
			break // fixpoint
		}
		w = next
	}
	return w
}

// queryEndpoints returns the query region at its two time endpoints (for
// slice queries both collapse to T0) and the signed gaps between those
// times and the bucket reference time.
func (t *Tree) queryEndpoints(b *bucket, q model.RangeQuery) (r0, r1 geom.Rect, dt0, dt1 float64) {
	r0 = q.Region()
	r1 = r0
	t0 := q.T0
	t1 := q.EndTime()
	if q.Kind == model.MovingRange {
		r1 = r0.Translate(q.Vel.Scale(t1 - t0))
	}
	return r0, r1, t0 - b.ref, t1 - b.ref
}

// enlargeForGap expands region r to cover the stored (reference-time)
// positions of all objects with velocities in [vmin, vmax] that are inside
// r at reference+dt: stored = queried - v*dt, so each boundary moves by the
// extreme of -v*dt.
func enlargeForGap(r geom.Rect, vmin, vmax geom.Vec2, dt float64) geom.Rect {
	ax0, ax1 := vmin.X*dt, vmax.X*dt
	ay0, ay1 := vmin.Y*dt, vmax.Y*dt
	return geom.Rect{
		MinX: r.MinX - math.Max(ax0, ax1),
		MaxX: r.MaxX - math.Min(ax0, ax1),
		MinY: r.MinY - math.Max(ay0, ay1),
		MaxY: r.MaxY - math.Min(ay0, ay1),
	}
}

// ExpansionRate reports, for each active bucket, the speed (m/ts) at which
// the enlarged query window grows per unit of query predictive time along
// each axis, i.e. the velocity spread the histogram yields under the query
// region. This is the quantity plotted in Fig. 7(c,d) of the paper.
func (t *Tree) ExpansionRate(region geom.Rect) []geom.Vec2 {
	var out []geom.Vec2
	for _, b := range t.buckets {
		vmin, vmax, ok := b.hist.Range(region)
		if !ok {
			continue
		}
		out = append(out, geom.Vec2{X: vmax.X - vmin.X, Y: vmax.Y - vmin.Y})
	}
	return out
}
