package bxtree

import (
	"math"

	"repro/internal/bptree"
	"repro/internal/geom"
	"repro/internal/model"
)

// SearchKNN implements model.KNNIndex with the incremental-range strategy
// the original Bx-tree paper uses: issue a circular range query whose
// radius is estimated from the data density, and double it until the k-th
// nearest candidate lies within the queried radius (which proves no closer
// object was missed). Falls back to a full scan when the radius outgrows
// the data space.
func (t *Tree) SearchKNN(q model.KNNQuery) ([]model.Neighbor, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if t.size == 0 {
		return nil, nil
	}
	k := q.K
	if k > t.size {
		k = t.size
	}
	// Radius expected to contain k objects under uniform density, padded.
	density := float64(t.size) / t.cfg.Domain.Area()
	r := 2 * math.Sqrt(float64(k)/(math.Pi*density))
	diag := math.Hypot(t.cfg.Domain.Width(), t.cfg.Domain.Height())
	// Objects can drift outside the domain by at most their travel since
	// their reference time; 4x the diagonal comfortably covers workloads.
	maxR := 4 * diag

	for {
		rq := model.RangeQuery{
			Kind:   model.TimeSlice,
			Circle: geom.Circle{C: q.Center, R: r},
			Rect:   geom.Circle{C: q.Center, R: r}.Bound(),
			Now:    q.Now,
			T0:     q.T,
		}
		objs, err := t.SearchObjects(rq)
		if err != nil {
			return nil, err
		}
		if len(objs) >= k {
			ns := neighborsOf(objs, q)
			if ns[k-1].Dist <= r {
				return ns[:k], nil
			}
		}
		if r >= maxR {
			return t.knnFullScan(q, k)
		}
		r *= 2
	}
}

// knnFullScan scans every bucket's whole key range: the correct (and
// expensive) last resort for adversarial distributions.
func (t *Tree) knnFullScan(q model.KNNQuery, k int) ([]model.Neighbor, error) {
	var objs []model.Object
	for _, b := range t.buckets {
		prefix := uint64(b.idx) << (2 * t.cfg.GridOrder)
		end := prefix + (uint64(1) << (2 * t.cfg.GridOrder))
		err := t.bt.Scan(prefix, end, func(e bptree.Entry) bool {
			objs = append(objs, e.Object())
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	ns := neighborsOf(objs, q)
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns, nil
}

func neighborsOf(objs []model.Object, q model.KNNQuery) []model.Neighbor {
	ns := make([]model.Neighbor, len(objs))
	for i, o := range objs {
		ns[i] = model.Neighbor{ID: o.ID, Dist: o.PosAt(q.T).DistTo(q.Center)}
	}
	model.SortNeighbors(ns)
	return ns
}

var _ model.KNNIndex = (*Tree)(nil)
