package monitor

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/tprtree"
)

func newMonitor(t *testing.T) *Monitor {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(), 100)
	tr, err := tprtree.NewTree(pool, tprtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(tr)
}

func circleSub(c geom.Vec2, r, horizon float64) Subscription {
	return Subscription{
		Query:   model.RangeQuery{Circle: geom.Circle{C: c, R: r}, Rect: geom.Circle{C: c, R: r}.Bound()},
		Horizon: horizon,
	}
}

func TestSubscribeSeedsResults(t *testing.T) {
	m := newMonitor(t)
	// Object heading toward the watched zone: at t=0+h(10) it is at x=100.
	o := model.Object{ID: 1, Pos: geom.V(0, 0), Vel: geom.V(10, 0), T: 0}
	if _, err := m.ProcessInsert(o); err != nil {
		t.Fatal(err)
	}
	id, evs, err := m.Subscribe(circleSub(geom.V(100, 0), 20, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != Enter || evs[0].ID != 1 {
		t.Fatalf("seed events: %v", evs)
	}
	if got := m.Results(id); len(got) != 1 || got[0] != 1 {
		t.Fatalf("results: %v", got)
	}
}

func TestUpdateEmitsEnterLeave(t *testing.T) {
	m := newMonitor(t)
	o := model.Object{ID: 1, Pos: geom.V(0, 0), Vel: geom.V(10, 0), T: 0}
	if _, err := m.ProcessInsert(o); err != nil {
		t.Fatal(err)
	}
	id, _, err := m.Subscribe(circleSub(geom.V(100, 0), 20, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Turn the object away: at t=0 it reports velocity -10; predicted
	// position at t+10 is x=-100 -> leave.
	turned := model.Object{ID: 1, Pos: geom.V(0, 0), Vel: geom.V(-10, 0), T: 0}
	evs, err := m.ProcessUpdate(o, turned)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != Leave {
		t.Fatalf("events: %v", evs)
	}
	if len(m.Results(id)) != 0 {
		t.Fatal("result set should be empty")
	}
	// Turn it back -> enter again.
	back := model.Object{ID: 1, Pos: geom.V(0, 0), Vel: geom.V(10, 0), T: 0}
	evs, err = m.ProcessUpdate(turned, back)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != Enter {
		t.Fatalf("events: %v", evs)
	}
}

func TestRefreshCatchesTimeDrift(t *testing.T) {
	m := newMonitor(t)
	// Object moving through the zone: inside the prediction at t=0
	// (predicted x=100), far past it by t=20 (predicted x=300).
	o := model.Object{ID: 1, Pos: geom.V(0, 0), Vel: geom.V(10, 0), T: 0}
	if _, err := m.ProcessInsert(o); err != nil {
		t.Fatal(err)
	}
	id, evs, err := m.Subscribe(circleSub(geom.V(100, 0), 20, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("seed: %v", evs)
	}
	// No updates happen; time passes.
	evs, err = m.Refresh(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != Leave || evs[0].T != 20 {
		t.Fatalf("refresh events: %v", evs)
	}
	if len(m.Results(id)) != 0 {
		t.Fatal("drifted object should have left")
	}
}

func TestDeleteLeavesAllSets(t *testing.T) {
	m := newMonitor(t)
	o := model.Object{ID: 7, Pos: geom.V(100, 0), Vel: geom.V(0, 0), T: 0}
	if _, err := m.ProcessInsert(o); err != nil {
		t.Fatal(err)
	}
	a, _, _ := m.Subscribe(circleSub(geom.V(100, 0), 50, 0), 0)
	b, _, _ := m.Subscribe(circleSub(geom.V(120, 0), 50, 0), 0)
	evs, err := m.ProcessDelete(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("expected 2 leave events, got %v", evs)
	}
	for _, e := range evs {
		if e.Kind != Leave {
			t.Fatalf("expected leave: %v", e)
		}
	}
	if len(m.Results(a))+len(m.Results(b)) != 0 {
		t.Fatal("result sets not emptied")
	}
}

func TestUnsubscribe(t *testing.T) {
	m := newMonitor(t)
	id, _, err := m.Subscribe(circleSub(geom.V(0, 0), 10, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Unsubscribe(id)
	o := model.Object{ID: 1, Pos: geom.V(0, 0), Vel: geom.V(0, 0), T: 0}
	evs, err := m.ProcessInsert(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("events after unsubscribe: %v", evs)
	}
}

func TestSubscriptionValidation(t *testing.T) {
	m := newMonitor(t)
	if _, _, err := m.Subscribe(Subscription{Horizon: -1}, 0); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

// TestMonitorConsistencyUnderStream drives a random update stream and
// checks after every batch that the incrementally maintained result sets
// equal a from-scratch evaluation.
func TestMonitorConsistencyUnderStream(t *testing.T) {
	m := newMonitor(t)
	rng := rand.New(rand.NewSource(9))
	objs := make([]model.Object, 300)
	for i := range objs {
		objs[i] = model.Object{
			ID:  model.ObjectID(i + 1),
			Pos: geom.V(rng.Float64()*10000, rng.Float64()*10000),
			Vel: geom.V(rng.Float64()*100-50, rng.Float64()*100-50),
			T:   0,
		}
		if _, err := m.ProcessInsert(objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	subs := []SubscriptionID{}
	for i := 0; i < 5; i++ {
		id, _, err := m.Subscribe(circleSub(
			geom.V(rng.Float64()*10000, rng.Float64()*10000), 1500, 30), 0)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, id)
	}
	check := func(now float64) {
		for _, id := range subs {
			got := m.Results(id)
			s := m.subs[id]
			want := []model.ObjectID{}
			for _, o := range objs {
				if model.Matches(o, s.QueryAt(now)) {
					want = append(want, o.ID)
				}
			}
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if len(got) != len(want) {
				t.Fatalf("sub %d at t=%g: %d vs %d members", id, now, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("sub %d at t=%g: member %d differs", id, now, i)
				}
			}
		}
	}
	for round := 1; round <= 5; round++ {
		now := float64(round) * 10
		for i := range objs {
			if rng.Intn(3) != 0 {
				continue
			}
			upd := objs[i]
			upd.Pos = upd.PosAt(now)
			upd.Vel = geom.V(rng.Float64()*100-50, rng.Float64()*100-50)
			upd.T = now
			if _, err := m.ProcessUpdate(objs[i], upd); err != nil {
				t.Fatal(err)
			}
			objs[i] = upd
		}
		// Incremental sets may lag time drift until Refresh.
		if _, err := m.Refresh(now); err != nil {
			t.Fatal(err)
		}
		check(now)
	}
	if m.Now() != 50 {
		t.Fatalf("clock: %g", m.Now())
	}
}

// reporterIndex adapts the brute-force oracle to the Reporter surface so
// the ID-keyed monitor verbs can be tested without the package-root Store
// (which would be an import cycle from here).
type reporterIndex struct{ *model.BruteForce }

func (r reporterIndex) Report(o model.Object) error {
	if _, ok := r.Get(o.ID); ok {
		if err := r.BruteForce.Delete(model.Object{ID: o.ID}); err != nil {
			return err
		}
	}
	return r.BruteForce.Insert(o)
}

func (r reporterIndex) Remove(id model.ObjectID) error {
	return r.BruteForce.Delete(model.Object{ID: id})
}

func TestProcessReportAndRemove(t *testing.T) {
	m := New(reporterIndex{model.NewBruteForce()})
	id, _, err := m.Subscribe(Subscription{
		Query: model.RangeQuery{Kind: model.TimeSlice, Circle: geom.Circle{C: geom.V(100, 100), R: 50}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// First report (an insert) inside the fence.
	evs, err := m.ProcessReport(model.Object{ID: 1, Pos: geom.V(110, 100), Vel: geom.V(0, 0), T: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != Enter || evs[0].Sub != id {
		t.Fatalf("report insert events: %v", evs)
	}
	// Second report (an upsert — no old record supplied) outside.
	evs, err = m.ProcessReport(model.Object{ID: 1, Pos: geom.V(500, 500), Vel: geom.V(0, 0), T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != Leave {
		t.Fatalf("report upsert events: %v", evs)
	}
	// Back inside, then removed by bare ID.
	if _, err := m.ProcessReport(model.Object{ID: 1, Pos: geom.V(90, 100), Vel: geom.V(0, 0), T: 2}); err != nil {
		t.Fatal(err)
	}
	evs, err = m.ProcessRemove(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != Leave {
		t.Fatalf("remove events: %v", evs)
	}
	if _, err := m.ProcessRemove(1); !errors.Is(err, model.ErrNotFound) {
		t.Fatalf("remove absent: %v", err)
	}
}

func TestProcessReportUnsupportedIndex(t *testing.T) {
	// A bare base index has no ID-keyed surface.
	m := newMonitor(t)
	if _, err := m.ProcessReport(model.Object{ID: 1, T: 0}); !errors.Is(err, model.ErrUnsupported) {
		t.Fatalf("report on plain index: %v", err)
	}
	if _, err := m.ProcessRemove(1); !errors.Is(err, model.ErrUnsupported) {
		t.Fatalf("remove on plain index: %v", err)
	}
}

// TestEventDeterminism pins the event-ordering contract: every emitting
// verb returns its delta batch sorted by (Sub, ID, Kind), so two identical
// runs produce byte-identical event streams even though the result sets
// live in randomized-iteration Go maps.
func TestEventDeterminism(t *testing.T) {
	build := func() (*Monitor, []model.Object) {
		m := New(reporterIndex{model.NewBruteForce()})
		// Three overlapping fences, so most objects produce several events
		// per verb — the shuffled-order symptom needs multi-event batches.
		for _, c := range []geom.Vec2{geom.V(500, 500), geom.V(520, 500), geom.V(500, 540)} {
			if _, _, err := m.Subscribe(circleSub(c, 300, 0), 0); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(31))
		objs := make([]model.Object, 40)
		for i := range objs {
			objs[i] = model.Object{
				ID:  model.ObjectID(i + 1),
				Pos: geom.V(rng.Float64()*1000, rng.Float64()*1000),
				Vel: geom.V(rng.Float64()*20-10, rng.Float64()*20-10),
				T:   0,
			}
		}
		return m, objs
	}

	sorted := func(evs []Event) bool {
		return sort.SliceIsSorted(evs, func(i, j int) bool {
			if evs[i].Sub != evs[j].Sub {
				return evs[i].Sub < evs[j].Sub
			}
			if evs[i].ID != evs[j].ID {
				return evs[i].ID < evs[j].ID
			}
			return evs[i].Kind < evs[j].Kind
		})
	}

	// drive runs the identical scenario and returns the full event log.
	drive := func() []Event {
		m, objs := build()
		var log []Event
		emit := func(evs []Event, err error, verb string) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s: %v", verb, err)
			}
			if !sorted(evs) {
				t.Fatalf("%s batch not sorted: %v", verb, evs)
			}
			log = append(log, evs...)
		}
		for _, o := range objs {
			evs, err := m.ProcessReport(o)
			emit(evs, err, "report")
		}
		// Time passes: every membership is re-derived at once.
		evs, err := m.Refresh(30)
		emit(evs, err, "refresh")
		// Move a batch of objects far away and re-report.
		for i := 0; i < len(objs); i += 3 {
			o := objs[i]
			o.Pos = geom.V(5000, 5000)
			o.T = 30
			evs, err := m.ProcessReport(o)
			emit(evs, err, "re-report")
		}
		// Removes leave every fence at once.
		for i := 1; i < len(objs); i += 4 {
			evs, err := m.ProcessRemove(objs[i].ID)
			emit(evs, err, "remove")
		}
		evs, err = m.Refresh(60)
		emit(evs, err, "refresh2")
		return log
	}

	a, b := drive(), drive()
	if len(a) != len(b) {
		t.Fatalf("event logs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("scenario emitted no events")
	}
}
