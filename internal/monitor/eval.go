// Evaluation core: subscription instantiation, exact predicate evaluation,
// and result-set diffing, decoupled from any index. The legacy Monitor and
// the package-root Store's subscription engine both build on this file —
// the Monitor with a single ResultSet under one lock, the Store with one
// ResultSet per shard so reports to different shards evaluate their
// subscriptions concurrently.
package monitor

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// QueryAt instantiates the subscription's query template for evaluation
// time t: the region is evaluated as a time-slice at t+Horizon, or over
// the interval [t+Horizon, t+Horizon+Window] when Window > 0 — static for
// ordinary templates, translating with the template's Vel for MovingRange
// templates (the convoy-protection query of the paper's Section 6). Now,
// T0 and T1 of the embedded template are managed fields — QueryAt
// overwrites them on every instantiation; Kind is preserved only as the
// MovingRange marker.
func (s Subscription) QueryAt(t float64) model.RangeQuery {
	q := s.Query
	q.Now = t
	q.T0 = t + s.Horizon
	switch {
	case q.Kind == model.MovingRange:
		q.T1 = q.T0 + s.Window
	case s.Window > 0:
		q.Kind = model.TimeInterval
		q.T1 = q.T0 + s.Window
	default:
		q.Kind = model.TimeSlice
	}
	return q
}

// Validate reports a descriptive error for malformed subscriptions: a
// negative horizon or window, or a region template (negative radius, empty
// rectangle with no circle) that every later instantiation would reject.
// Subscribe calls it so a broken subscription fails once, immediately,
// instead of failing every subsequent refresh.
func (s Subscription) Validate() error {
	if s.Horizon < 0 || s.Window < 0 {
		return fmt.Errorf("monitor: negative horizon/window")
	}
	// The time fields of an instantiated query are valid by construction
	// (T0 = t+Horizon >= t = Now, T1 >= T0), so this checks exactly the
	// caller-controlled region template.
	if err := s.QueryAt(0).Validate(); err != nil {
		return fmt.Errorf("monitor: invalid subscription region: %w", err)
	}
	return nil
}

// MatchesAt is the exact predicate: does object o satisfy subscription s
// when evaluated at time now?
func MatchesAt(o model.Object, s Subscription, now float64) bool {
	return model.Matches(o, s.QueryAt(now))
}

// ResultSet maintains the current membership of every subscription over one
// population of objects, in both directions: per subscription (the result
// sets) and per object (which subscriptions contain it), so an object
// update touches only its own memberships plus the candidate subscriptions
// the caller passes in, and an object removal never scans the subscription
// registry at all.
//
// A ResultSet does no locking and holds no reference to an index or a
// subscription registry; the caller owns both and serializes access. The
// package-root Store partitions one logical result set into per-shard
// ResultSets (each object's memberships live in the ResultSet of the shard
// its ID hashes to); the legacy Monitor uses a single instance.
type ResultSet struct {
	bySub map[SubscriptionID]map[model.ObjectID]bool
	byObj map[model.ObjectID]map[SubscriptionID]bool
}

// NewResultSet returns an empty membership table.
func NewResultSet() *ResultSet {
	return &ResultSet{
		bySub: make(map[SubscriptionID]map[model.ObjectID]bool),
		byObj: make(map[model.ObjectID]map[SubscriptionID]bool),
	}
}

// set records id as a member of sub.
func (r *ResultSet) set(sub SubscriptionID, id model.ObjectID) {
	m := r.bySub[sub]
	if m == nil {
		m = make(map[model.ObjectID]bool)
		r.bySub[sub] = m
	}
	m[id] = true
	o := r.byObj[id]
	if o == nil {
		o = make(map[SubscriptionID]bool)
		r.byObj[id] = o
	}
	o[sub] = true
}

// clear removes id from sub's result set.
func (r *ResultSet) clear(sub SubscriptionID, id model.ObjectID) {
	if m := r.bySub[sub]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(r.bySub, sub)
		}
	}
	if o := r.byObj[id]; o != nil {
		delete(o, sub)
		if len(o) == 0 {
			delete(r.byObj, id)
		}
	}
}

// Contains reports whether id is currently in sub's result set.
func (r *ResultSet) Contains(sub SubscriptionID, id model.ObjectID) bool {
	return r.bySub[sub][id]
}

// Reconcile incrementally re-evaluates one object against the
// subscriptions that could be affected, flipping membership bits and
// returning the enter/leave deltas in unspecified order — callers that
// emit them sort the merged batch (the Store merges deltas of many
// reconciles into one sorted batch; sorting here too would be paid again
// on every report).
//
// With present == false the object has been removed: it leaves every
// result set it was in, with no predicate evaluation (cands, all and subs
// are ignored). Otherwise o is the object's current record, evaluated at
// time now against (a) every candidate in cands — the caller's coarse
// filter output, which must include every subscription the object could
// possibly match — and (b) every subscription currently containing the
// object, so a conservative filter miss can still only cost a predicate
// test, never a stale membership. With all == true, cands is ignored and
// every subscription in subs is a candidate (the unfiltered path).
func (r *ResultSet) Reconcile(id model.ObjectID, o model.Object, present bool, now float64,
	cands []SubscriptionID, all bool, subs map[SubscriptionID]Subscription) []Event {
	var evs []Event
	if !present {
		for sub := range r.byObj[id] {
			r.clear(sub, id)
			evs = append(evs, Event{Sub: sub, ID: id, Kind: Leave, T: now})
		}
		return evs
	}
	eval := func(sub SubscriptionID, s Subscription) {
		member := r.bySub[sub][id]
		match := MatchesAt(o, s, now)
		switch {
		case match && !member:
			r.set(sub, id)
			evs = append(evs, Event{Sub: sub, ID: id, Kind: Enter, T: now})
		case !match && member:
			r.clear(sub, id)
			evs = append(evs, Event{Sub: sub, ID: id, Kind: Leave, T: now})
		}
	}
	if all {
		for sub, s := range subs {
			eval(sub, s)
		}
		return evs
	}
	for _, sub := range cands {
		if s, ok := subs[sub]; ok {
			eval(sub, s)
		}
	}
	// Memberships the candidate list did not cover: the object moved out of
	// the filter's expanded region for these subscriptions, so they are
	// (almost certainly) leaves — but each is re-proved with the exact
	// predicate, so a too-tight filter can never evict a true member.
	if mem := r.byObj[id]; len(mem) > 0 {
		inCands := make(map[SubscriptionID]bool, len(cands))
		for _, sub := range cands {
			inCands[sub] = true
		}
		for sub := range mem {
			if inCands[sub] {
				continue
			}
			if s, ok := subs[sub]; ok {
				eval(sub, s)
			}
		}
	}
	return evs
}

// ApplySnapshot replaces sub's result set (restricted to this ResultSet's
// object population) with the given fresh membership — the output of a full
// index query — and returns the deltas sorted by (ID, Kind). The caller
// guarantees fresh contains only objects belonging to this ResultSet (the
// Store pre-partitions a query result by shard; the Monitor owns the whole
// population).
func (r *ResultSet) ApplySnapshot(sub SubscriptionID, fresh []model.ObjectID, now float64) []Event {
	next := make(map[model.ObjectID]bool, len(fresh))
	var evs []Event
	for _, id := range fresh {
		next[id] = true
		if !r.bySub[sub][id] {
			r.set(sub, id)
			evs = append(evs, Event{Sub: sub, ID: id, Kind: Enter, T: now})
		}
	}
	for id := range r.bySub[sub] {
		if !next[id] {
			r.clear(sub, id)
			evs = append(evs, Event{Sub: sub, ID: id, Kind: Leave, T: now})
		}
	}
	return SortEvents(evs)
}

// Members returns sub's current result set in ascending ObjectID order.
func (r *ResultSet) Members(sub SubscriptionID) []model.ObjectID {
	m := r.bySub[sub]
	out := make([]model.ObjectID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Seed installs ids as members of sub without emitting events — the
// checkpoint-restore path, where memberships are historical fact rather than
// fresh enter transitions.
func (r *ResultSet) Seed(sub SubscriptionID, ids []model.ObjectID) {
	for _, id := range ids {
		r.set(sub, id)
	}
}

// MemberCount returns the size of sub's result set.
func (r *ResultSet) MemberCount(sub SubscriptionID) int { return len(r.bySub[sub]) }

// DropSub forgets sub entirely (both directions), with no events — the
// Unsubscribe semantics.
func (r *ResultSet) DropSub(sub SubscriptionID) {
	for id := range r.bySub[sub] {
		r.clear(sub, id)
	}
	delete(r.bySub, sub)
}
