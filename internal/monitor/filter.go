package monitor

import (
	"math"

	"repro/internal/geom"
	"repro/internal/model"
)

// This file implements the coarse spatial subscription filter: a uniform
// grid per velocity class that maps a location report to the (usually few)
// subscriptions it could possibly affect, so incremental evaluation costs
// O(relevant subscriptions) instead of O(all subscriptions).
//
// The core idea is the standing-query dual of a range query's velocity
// expansion. A subscription watches its region at t+Horizon (through
// t+Horizon+Window); an object reported with velocity v can only reach that
// region if it starts within Δ·v of it, Δ = Horizon+Window. Indexing each
// subscription under its region expanded by Δ times a bound on object
// velocity makes a single point probe at the report's current position a
// conservative candidate test.
//
// Velocity partitioning is what makes the expansion tight. A global bound
// must expand every region by Δ·vmax in every direction — quadratic growth
// in the maximum speed, the exact pathology Section 4 of the VP paper
// ascribes to unpartitioned indexes. With the DVA analysis in hand, the
// filter keeps one grid per velocity class (one per DVA, plus an isotropic
// catch-all for outliers): a class with axis a and perpendicular bound τ
// expands regions by Δ·smax along a but only Δ·τ across it — near-linear
// growth, because τ is small for a good DVA. A report is routed to the one
// class covering its velocity (the same nearest-axis / τ rule the partition
// manager uses) and probes only that class's grid.
//
// The along-axis speed bounds (and the catch-all's radius) are discovered
// online: they start at zero and grow, with headroom, the first time a
// routed velocity exceeds them, rebuilding that class's grid. A probe that
// observes a not-yet-covered velocity reports ok=false and the caller falls
// back to testing every subscription for that one report — soundness never
// depends on the bounds being up to date.

// VelocityClass bounds one velocity population for the filter: speeds along
// Axis (discovered online) and at most Perp across it. A zero Axis declares
// the class isotropic: a disc of online-discovered radius, used for
// outliers and for unpartitioned stores.
type VelocityClass struct {
	// Axis is the class's dominant velocity axis (unit length; zero for an
	// isotropic class).
	Axis geom.Vec2
	// Perp bounds the velocity component perpendicular to Axis — the
	// partition's τ. Ignored for isotropic classes.
	Perp float64
}

// filterClass is one velocity class's grid.
type filterClass struct {
	axis      geom.Vec2
	isotropic bool
	perp      float64
	// along is the online speed bound: |v·axis| for DVA classes, |v| for
	// the isotropic class. Grown (with headroom) on the first violation.
	along float64
	// rects caches each subscription's expanded region under this class's
	// bounds, so removal and cell assignment never recompute geometry.
	rects map[SubscriptionID]geom.Rect
	// cells is the n×n grid of subscription lists, row-major.
	cells [][]SubscriptionID
}

// DefaultFilterCells is the per-axis grid resolution used when NewFilter is
// given a non-positive cell count.
const DefaultFilterCells = 64

// Filter is the coarse spatial subscription filter. It does no locking;
// the caller serializes Add/Remove/SetClasses/Grow against Candidates.
type Filter struct {
	domain geom.Rect
	n      int
	cw, ch float64
	// classes holds the DVA classes first and the isotropic catch-all
	// last, mirroring the partition manager's layout. There is always at
	// least the catch-all.
	classes []*filterClass
}

// NewFilter builds a filter over the given data space with an n×n grid per
// velocity class (n <= 0 takes DefaultFilterCells). It starts with a single
// isotropic class — the right shape for an unpartitioned store; SetClasses
// installs the per-DVA classes once a velocity analysis exists.
func NewFilter(domain geom.Rect, n int) *Filter {
	if n <= 0 {
		n = DefaultFilterCells
	}
	if domain.IsEmpty() || domain.Area() == 0 {
		domain = geom.R(0, 0, 100000, 100000)
	}
	f := &Filter{
		domain: domain,
		n:      n,
		cw:     domain.Width() / float64(n),
		ch:     domain.Height() / float64(n),
	}
	f.classes = []*filterClass{f.newClass(VelocityClass{}, 0)}
	return f
}

// newClass builds an empty class grid with the given seed speed bound.
func (f *Filter) newClass(vc VelocityClass, along float64) *filterClass {
	c := &filterClass{
		axis:      vc.Axis.Normalize(),
		isotropic: vc.Axis == (geom.Vec2{}),
		perp:      vc.Perp,
		along:     along,
		rects:     make(map[SubscriptionID]geom.Rect),
		cells:     make([][]SubscriptionID, f.n*f.n),
	}
	return c
}

// SetClasses rebuilds the filter around a fresh velocity analysis: one
// class per DVA (axis + τ) plus the trailing isotropic catch-all, each
// grid re-populated from subs. The new classes' speed bounds are seeded
// from the largest bound discovered so far — a conservative (larger =
// safer) carry-over that avoids a rebuild storm right after a partition
// swap.
func (f *Filter) SetClasses(classes []VelocityClass, subs map[SubscriptionID]Subscription) {
	seed := 0.0
	for _, c := range f.classes {
		seed = math.Max(seed, c.along)
	}
	fresh := make([]*filterClass, 0, len(classes)+1)
	for _, vc := range classes {
		if vc.Axis == (geom.Vec2{}) {
			continue // isotropic classes collapse into the catch-all
		}
		fresh = append(fresh, f.newClass(vc, seed))
	}
	fresh = append(fresh, f.newClass(VelocityClass{}, seed))
	f.classes = fresh
	for id, s := range subs {
		f.Add(id, s)
	}
}

// expandedRect returns sub's region grown by everything an object of class
// c could contribute: the region's swept bound over the evaluation window
// (circles by their MBR, moving regions by the union of their start and
// end rectangles — the exact predicate refines later) expanded per world
// axis by Δ times the class's velocity AABB, Δ = Horizon+Window.
func (f *Filter) expandedRect(c *filterClass, s Subscription) geom.Rect {
	delta := s.Horizon + s.Window
	b := s.Query.Region()
	if s.Query.Kind == model.MovingRange && s.Window > 0 {
		b = b.Union(b.Translate(s.Query.Vel.Scale(s.Window)))
	}
	if c.isotropic {
		return b.Expand(delta * c.along)
	}
	ax, ay := math.Abs(c.axis.X), math.Abs(c.axis.Y)
	return b.ExpandXY(
		delta*(c.along*ax+c.perp*ay),
		delta*(c.along*ay+c.perp*ax),
	)
}

// cellRange returns the grid index range covered by r, clamped into the
// domain — geometry outside the domain lands on the border cells, which
// keeps out-of-domain subscriptions and reports conservatively matched.
func (f *Filter) cellRange(r geom.Rect) (ix0, iy0, ix1, iy1 int) {
	return f.ix(r.MinX), f.iy(r.MinY), f.ix(r.MaxX), f.iy(r.MaxY)
}

func (f *Filter) ix(x float64) int { return clampCell((x-f.domain.MinX)/f.cw, f.n) }
func (f *Filter) iy(y float64) int { return clampCell((y-f.domain.MinY)/f.ch, f.n) }

func clampCell(v float64, n int) int {
	i := int(v)
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// addToClass indexes one subscription into one class grid.
func (f *Filter) addToClass(c *filterClass, id SubscriptionID, s Subscription) {
	r := f.expandedRect(c, s)
	c.rects[id] = r
	ix0, iy0, ix1, iy1 := f.cellRange(r)
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			cell := iy*f.n + ix
			c.cells[cell] = append(c.cells[cell], id)
		}
	}
}

// Add indexes a subscription into every class grid.
func (f *Filter) Add(id SubscriptionID, s Subscription) {
	for _, c := range f.classes {
		f.addToClass(c, id, s)
	}
}

// Remove strips a subscription out of every class grid.
func (f *Filter) Remove(id SubscriptionID) {
	for _, c := range f.classes {
		r, ok := c.rects[id]
		if !ok {
			continue
		}
		delete(c.rects, id)
		ix0, iy0, ix1, iy1 := f.cellRange(r)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				cell := iy*f.n + ix
				list := c.cells[cell]
				for i, sid := range list {
					if sid == id {
						c.cells[cell] = append(list[:i], list[i+1:]...)
						break
					}
				}
			}
		}
	}
}

// route picks the class covering v: the DVA class whose axis is nearest in
// perpendicular velocity distance, if that distance is within its τ;
// otherwise the trailing catch-all.
func (f *Filter) route(v geom.Vec2) (int, float64) {
	best, bestDist := -1, 0.0
	for i, c := range f.classes {
		if c.isotropic {
			continue
		}
		d := v.PerpDistToAxis(c.axis)
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	if best >= 0 && bestDist <= f.classes[best].perp {
		return best, math.Abs(v.Dot(f.classes[best].axis))
	}
	return len(f.classes) - 1, v.Norm()
}

// Candidates returns the subscriptions the report could affect when
// evaluated at time now: the grid cell of the object's extrapolated
// position in its velocity class. ok == false means the class's online
// speed bound does not cover the report's velocity yet; the caller must
// treat every subscription as a candidate for this report and call Grow.
// The returned slice aliases filter internals — read it before the next
// mutation and do not modify it.
func (f *Filter) Candidates(o model.Object, now float64) (cands []SubscriptionID, ok bool) {
	ci, along := f.route(o.Vel)
	c := f.classes[ci]
	if along > c.along {
		return nil, false
	}
	p := o.PosAt(now)
	return c.cells[f.iy(p.Y)*f.n+f.ix(p.X)], true
}

// Covers reports whether v fits inside its routed class's speed bound.
func (f *Filter) Covers(v geom.Vec2) bool {
	ci, along := f.route(v)
	return along <= f.classes[ci].along
}

// Grow raises the routed class's online speed bound to cover v — with 50%
// headroom, so bound growth is logarithmic in the observed speed range —
// and rebuilds that class's grid from subs. A no-op when v is already
// covered.
func (f *Filter) Grow(v geom.Vec2, subs map[SubscriptionID]Subscription) {
	ci, along := f.route(v)
	c := f.classes[ci]
	if along <= c.along {
		return
	}
	c.along = along * 1.5
	c.rects = make(map[SubscriptionID]geom.Rect, len(subs))
	c.cells = make([][]SubscriptionID, f.n*f.n)
	for id, s := range subs {
		f.addToClass(c, id, s)
	}
}

// NumClasses returns the number of velocity classes (DVA classes plus the
// catch-all).
func (f *Filter) NumClasses() int { return len(f.classes) }
