// Package monitor implements continuous (standing) range queries over
// moving-object indexes. This is the service shape the VP paper's
// introduction motivates: GPS devices "report their locations to a server
// in order to get location based services", and those services watch
// regions — a dispatch zone, a geofence, a protective box — continuously
// rather than asking one-shot queries.
//
// A subscription is a region plus a prediction horizon h. At evaluation
// time t its result set is every object that satisfies the region at t+h.
// The package is layered:
//
//   - eval.go is the reusable evaluation core — subscription instantiation
//     (QueryAt), validation, the exact predicate (MatchesAt), and the
//     ResultSet membership table with incremental reconcile / snapshot
//     diffing — decoupled from any index.
//   - filter.go is the coarse spatial subscription filter: per-velocity-
//     class grids that map one report to the few subscriptions it could
//     affect, with per-partition τ bounds keeping the expansion tight.
//   - monitor.go (this file) is the legacy single-lock Monitor that wraps
//     one model.Index. The package-root Store composes the same core and
//     filter into its sharded, Store-native subscription engine instead;
//     new code should subscribe on the Store directly.
package monitor

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// SubscriptionID identifies a standing query.
type SubscriptionID uint64

// EventKind says how a result set changed.
type EventKind int

const (
	// Enter: the object joined the subscription's result set.
	Enter EventKind = iota
	// Leave: the object left the result set.
	Leave
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if k == Enter {
		return "enter"
	}
	return "leave"
}

// Event is one result-set delta.
type Event struct {
	Sub  SubscriptionID
	ID   model.ObjectID
	Kind EventKind
	T    float64 // evaluation time that produced the delta
}

// SortEvents orders one delta batch deterministically: by subscription,
// then object, then kind. The result sets live in Go maps, whose iteration
// order is deliberately randomized, so without this two identical runs
// would emit identical deltas in shuffled order — and a consumer diffing or
// replaying event logs would see phantom differences. Every emitting verb
// sorts its batch before returning it.
func SortEvents(evs []Event) []Event {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Sub != evs[j].Sub {
			return evs[i].Sub < evs[j].Sub
		}
		if evs[i].ID != evs[j].ID {
			return evs[i].ID < evs[j].ID
		}
		return evs[i].Kind < evs[j].Kind
	})
	return evs
}

// sortedSubIDs snapshots the subscription IDs in ascending order, for the
// verbs that walk every subscription. Caller holds mu.
func (m *Monitor) sortedSubIDs() []SubscriptionID {
	ids := make([]SubscriptionID, 0, len(m.subs))
	for id := range m.subs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Subscription describes a standing query.
type Subscription struct {
	// Query is the region template. Kind/T0/T1 are managed by the
	// monitor: at evaluation time t the query is executed as a time-slice
	// (or interval of length Window) at t+Horizon.
	Query model.RangeQuery
	// Horizon is the prediction lookahead (ts).
	Horizon float64
	// Window extends the evaluation to an interval [t+Horizon,
	// t+Horizon+Window]; 0 means a pure time-slice.
	Window float64
}

// Reporter is the ID-keyed upsert surface of the package-root Store.
// Indexes that implement it (the Store does; the raw base trees do not)
// unlock the production verbs ProcessReport and ProcessRemove, which need
// no caller-supplied old record.
type Reporter interface {
	model.Index
	Report(o model.Object) error
	Remove(id model.ObjectID) error
	Get(id model.ObjectID) (model.Object, bool)
}

// Monitor maintains standing queries over an index. Mutating verbs hold the
// write lock (result-set deltas must be totally ordered); the snapshot
// accessors (Results, Now) take the read lock so concurrent dashboards
// polling result sets never serialize against each other.
//
// The Monitor evaluates every subscription on every update — O(all
// subscriptions) per report. The package-root Store's native subscription
// engine shares this package's evaluation core but adds the spatial filter
// and sharding; prefer Store.Subscribe for production traffic.
type Monitor struct {
	mu     sync.RWMutex
	idx    model.Index
	nextID SubscriptionID
	subs   map[SubscriptionID]Subscription
	// rs holds the current membership per subscription.
	rs  *ResultSet
	now float64
}

// New wraps an index (which may already contain objects; call Refresh to
// seed result sets).
func New(idx model.Index) *Monitor {
	return &Monitor{
		idx:  idx,
		subs: make(map[SubscriptionID]Subscription),
		rs:   NewResultSet(),
	}
}

// Index returns the wrapped index.
func (m *Monitor) Index() model.Index { return m.idx }

// Subscribe registers a standing query and returns its id. The subscription
// is validated up front — a negative horizon/window or a malformed region
// template fails here, once, instead of failing every later refresh. The
// initial result set is computed immediately at the monitor's current time.
func (m *Monitor) Subscribe(s Subscription, now float64) (SubscriptionID, []Event, error) {
	if err := s.Validate(); err != nil {
		return 0, nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advance(now)
	m.nextID++
	id := m.nextID
	m.subs[id] = s
	evs, err := m.refreshLocked(id, now)
	if err != nil {
		delete(m.subs, id)
		m.rs.DropSub(id)
		return 0, nil, err
	}
	return id, evs, nil
}

// Unsubscribe removes a standing query.
func (m *Monitor) Unsubscribe(id SubscriptionID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.subs, id)
	m.rs.DropSub(id)
}

// Results snapshots the current result set of a subscription, in ascending
// ObjectID order — deterministic, matching the event-stream ordering
// guarantee, so two identical runs produce byte-identical snapshots.
func (m *Monitor) Results(id SubscriptionID) []model.ObjectID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.rs.Members(id)
}

// ProcessUpdate applies the object update to the index and incrementally
// re-evaluates the updated object against every subscription, emitting
// enter/leave deltas. The update's reference time advances the monitor
// clock.
func (m *Monitor) ProcessUpdate(old, new model.Object) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.idx.Update(old, new); err != nil {
		return nil, err
	}
	m.advance(new.T)
	return SortEvents(m.rs.Reconcile(new.ID, new, true, m.now, nil, true, m.subs)), nil
}

// ProcessReport applies an ID-keyed upsert through a Reporter index (the
// package-root Store) and incrementally re-evaluates the object — the
// production entry point for a location-report stream, where the server,
// not the device, knows the previous record. Returns a model.ErrUnsupported
// error when the wrapped index has no ID-keyed surface.
func (m *Monitor) ProcessReport(o model.Object) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep, ok := m.idx.(Reporter)
	if !ok {
		return nil, fmt.Errorf("monitor: index %s does not accept ID-keyed reports: %w",
			m.idx.Name(), model.ErrUnsupported)
	}
	if err := rep.Report(o); err != nil {
		return nil, err
	}
	m.advance(o.T)
	return SortEvents(m.rs.Reconcile(o.ID, o, true, m.now, nil, true, m.subs)), nil
}

// ProcessRemove deletes an object by ID through a Reporter index; the
// object leaves every result set it was in. Returns a model.ErrUnsupported
// error when the wrapped index has no ID-keyed surface.
func (m *Monitor) ProcessRemove(id model.ObjectID) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep, ok := m.idx.(Reporter)
	if !ok {
		return nil, fmt.Errorf("monitor: index %s does not accept ID-keyed removes: %w",
			m.idx.Name(), model.ErrUnsupported)
	}
	if err := rep.Remove(id); err != nil {
		return nil, err
	}
	return SortEvents(m.rs.Reconcile(id, model.Object{}, false, m.now, nil, false, nil)), nil
}

// ProcessInsert indexes a new object and evaluates it against every
// subscription.
func (m *Monitor) ProcessInsert(o model.Object) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.idx.Insert(o); err != nil {
		return nil, err
	}
	m.advance(o.T)
	return SortEvents(m.rs.Reconcile(o.ID, o, true, m.now, nil, true, m.subs)), nil
}

// ProcessDelete removes an object; it leaves every result set it was in.
func (m *Monitor) ProcessDelete(o model.Object) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.idx.Delete(o); err != nil {
		return nil, err
	}
	return SortEvents(m.rs.Reconcile(o.ID, model.Object{}, false, m.now, nil, false, nil)), nil
}

// Refresh re-runs every subscription's query at the given time, emitting
// deltas caused by the passage of time (objects drifting in or out of the
// predicted region without reporting updates). Subscriptions are refreshed
// in ascending ID order and each one's deltas are sorted, so the emitted
// stream is fully deterministic — including the partial stream returned
// alongside an error.
func (m *Monitor) Refresh(now float64) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advance(now)
	var evs []Event
	for _, id := range m.sortedSubIDs() {
		e, err := m.refreshLocked(id, now)
		if err != nil {
			return evs, err
		}
		evs = append(evs, e...)
	}
	return evs, nil
}

// refreshLocked recomputes one subscription's result set via the index.
func (m *Monitor) refreshLocked(id SubscriptionID, now float64) ([]Event, error) {
	s := m.subs[id]
	ids, err := m.idx.Search(s.QueryAt(now))
	if err != nil {
		return nil, err
	}
	return m.rs.ApplySnapshot(id, ids, now), nil
}

// advance moves the monitor clock monotonically forward.
func (m *Monitor) advance(t float64) {
	if t > m.now {
		m.now = t
	}
}

// Now returns the monitor's current clock.
func (m *Monitor) Now() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.now
}
