package monitor

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

// TestResultsSorted pins the satellite fix: Results returns ascending
// ObjectIDs, not Go map iteration order.
func TestResultsSorted(t *testing.T) {
	m := New(reporterIndex{model.NewBruteForce()})
	id, _, err := m.Subscribe(circleSub(geom.V(0, 0), 1e6, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, oid := range rng.Perm(64) {
		if _, err := m.ProcessReport(model.Object{ID: model.ObjectID(oid + 1), T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Results(id)
	if len(got) != 64 {
		t.Fatalf("got %d members", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("Results not sorted: %v", got)
	}
}

// TestSubscribeValidatesQuery pins the other satellite fix: a subscription
// whose embedded region template fails validation is rejected at Subscribe
// time, not at every later refresh.
func TestSubscribeValidatesQuery(t *testing.T) {
	m := New(reporterIndex{model.NewBruteForce()})
	// Empty (inverted) rectangle, no circle: every instantiation of this
	// template would be rejected by RangeQuery.Validate.
	empty := Subscription{Query: model.RangeQuery{Rect: geom.EmptyRect()}, Horizon: 10}
	if _, _, err := m.Subscribe(empty, 0); err == nil {
		t.Fatal("empty-region subscription accepted")
	}
	// Negative radius.
	bad := Subscription{Query: model.RangeQuery{Circle: geom.Circle{C: geom.V(0, 0), R: -1}}}
	if _, _, err := m.Subscribe(bad, 0); err == nil {
		t.Fatal("negative-radius subscription accepted")
	}
	// The failed subscribes must leave no residue: a valid subscribe works
	// and a refresh sees no broken subscriptions.
	if _, _, err := m.Subscribe(circleSub(geom.V(0, 0), 10, 5), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refresh(1); err != nil {
		t.Fatalf("refresh after rejected subscribes: %v", err)
	}
}

func TestSubscriptionValidateValues(t *testing.T) {
	ok := circleSub(geom.V(0, 0), 5, 3)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid subscription rejected: %v", err)
	}
	for _, bad := range []Subscription{
		{Query: ok.Query, Horizon: -1},
		{Query: ok.Query, Window: -1},
		{Query: model.RangeQuery{Rect: geom.EmptyRect()}},
		{Query: model.RangeQuery{Circle: geom.Circle{R: -2}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid subscription %+v accepted", bad)
		}
	}
}

// TestReconcileMatchesSnapshot drives random incremental reconciles and
// checks the ResultSet against from-scratch predicate evaluation.
func TestReconcileMatchesSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	subs := make(map[SubscriptionID]Subscription)
	for i := 1; i <= 12; i++ {
		subs[SubscriptionID(i)] = circleSub(
			geom.V(rng.Float64()*1000, rng.Float64()*1000), 150+rng.Float64()*200, rng.Float64()*20)
	}
	rs := NewResultSet()
	objs := map[model.ObjectID]model.Object{}
	now := 0.0
	for step := 0; step < 400; step++ {
		id := model.ObjectID(1 + rng.Intn(60))
		if rng.Intn(6) == 0 {
			delete(objs, id)
			evs := rs.Reconcile(id, model.Object{}, false, now, nil, false, nil)
			for _, e := range evs {
				if e.Kind != Leave {
					t.Fatalf("removal emitted %v", e)
				}
			}
			continue
		}
		o := model.Object{
			ID:  id,
			Pos: geom.V(rng.Float64()*1000, rng.Float64()*1000),
			Vel: geom.V(rng.Float64()*40-20, rng.Float64()*40-20),
			T:   now,
		}
		objs[id] = o
		rs.Reconcile(id, o, true, now, nil, true, subs)
		now += 0.25
	}
	for sid, s := range subs {
		want := map[model.ObjectID]bool{}
		for id, o := range objs {
			if MatchesAt(o, s, now-0.25) {
				want[id] = true
			}
		}
		got := rs.Members(sid)
		// Memberships are only re-derived when their object reports, so
		// time drift can make them stale; replay a snapshot first.
		var fresh []model.ObjectID
		for id := range want {
			fresh = append(fresh, id)
		}
		rs.ApplySnapshot(sid, fresh, now)
		got = rs.Members(sid)
		if len(got) != len(want) {
			t.Fatalf("sub %d: %d members, want %d", sid, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("sub %d: stale member %d", sid, id)
			}
		}
	}
}

// TestFilterConservative is the filter's soundness property: for random
// subscriptions, classes, and reports, every subscription the object
// actually matches must appear in the candidate list (or the probe must
// demand the unfiltered fallback).
func TestFilterConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	domain := geom.R(0, 0, 10000, 10000)
	axes := []geom.Vec2{geom.V(1, 0), geom.V(1, 1).Normalize()}

	for round := 0; round < 20; round++ {
		f := NewFilter(domain, 32)
		subs := make(map[SubscriptionID]Subscription)
		for i := 1; i <= 40; i++ {
			s := Subscription{
				Query: model.RangeQuery{Circle: geom.Circle{
					C: geom.V(rng.Float64()*12000-1000, rng.Float64()*12000-1000),
					R: 50 + rng.Float64()*800,
				}},
				Horizon: rng.Float64() * 40,
				Window:  rng.Float64() * 10,
			}
			s.Query.Rect = s.Query.Circle.Bound()
			if i%5 == 0 {
				// Moving-range subscription: the region translates with its
				// own velocity during the window.
				s.Query = model.RangeQuery{
					Kind: model.MovingRange,
					Rect: geom.RectFromCenter(geom.V(rng.Float64()*10000, rng.Float64()*10000),
						100+rng.Float64()*600, 100+rng.Float64()*600),
					Vel: geom.V(rng.Float64()*60-30, rng.Float64()*60-30),
				}
				s.Window = rng.Float64() * 15
			}
			id := SubscriptionID(i)
			subs[id] = s
			f.Add(id, s)
		}
		if round%2 == 1 {
			f.SetClasses([]VelocityClass{
				{Axis: axes[0], Perp: 3 + rng.Float64()*5},
				{Axis: axes[1], Perp: 3 + rng.Float64()*5},
			}, subs)
		}
		for i := 0; i < 300; i++ {
			speed := rng.Float64() * 60
			ang := rng.Float64() * 2 * math.Pi
			o := model.Object{
				ID:  model.ObjectID(i),
				Pos: geom.V(rng.Float64()*11000-500, rng.Float64()*11000-500),
				Vel: geom.V(speed*math.Cos(ang), speed*math.Sin(ang)),
				T:   float64(i) / 10,
			}
			now := o.T + rng.Float64()*5 // clock may run ahead of the report
			cands, ok := f.Candidates(o, now)
			if !ok {
				f.Grow(o.Vel, subs)
				if !f.Covers(o.Vel) {
					t.Fatal("Grow did not cover the velocity")
				}
				cands, ok = f.Candidates(o, now)
				if !ok {
					t.Fatal("probe failed after Grow")
				}
			}
			inCands := make(map[SubscriptionID]bool, len(cands))
			for _, id := range cands {
				inCands[id] = true
			}
			for id, s := range subs {
				if MatchesAt(o, s, now) && !inCands[id] {
					t.Fatalf("round %d: filter dropped matching sub %d for %v at now=%g (classes=%d)",
						round, id, o, now, f.NumClasses())
				}
			}
		}
	}
}

// TestFilterRemove checks that removed subscriptions stop appearing as
// candidates in every class.
func TestFilterRemove(t *testing.T) {
	f := NewFilter(geom.R(0, 0, 1000, 1000), 8)
	s := circleSub(geom.V(500, 500), 400, 10)
	f.Add(1, s)
	f.Add(2, s)
	f.SetClasses([]VelocityClass{{Axis: geom.V(1, 0), Perp: 2}}, map[SubscriptionID]Subscription{1: s, 2: s})
	f.Grow(geom.V(5, 0), map[SubscriptionID]Subscription{1: s, 2: s})
	f.Remove(1)
	o := model.Object{ID: 9, Pos: geom.V(500, 500), Vel: geom.V(5, 0), T: 0}
	cands, ok := f.Candidates(o, 0)
	if !ok {
		t.Fatal("probe not covered")
	}
	for _, id := range cands {
		if id == 1 {
			t.Fatal("removed subscription still a candidate")
		}
	}
	found := false
	for _, id := range cands {
		found = found || id == 2
	}
	if !found {
		t.Fatal("remaining subscription missing from candidates")
	}
}

// TestMonitorSubscribeStillRejectsNegativeHorizon keeps the original
// validation error reachable through the new Validate path.
func TestMonitorSubscribeStillRejectsNegativeHorizon(t *testing.T) {
	m := New(reporterIndex{model.NewBruteForce()})
	_, _, err := m.Subscribe(Subscription{Horizon: -1}, 0)
	if err == nil {
		t.Fatal("negative horizon accepted")
	}
	var ignored *model.Object
	_ = ignored
	if errors.Is(err, model.ErrUnsupported) {
		t.Fatalf("unexpected sentinel: %v", err)
	}
}
