package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestDoVisitsEveryIndexOnce(t *testing.T) {
	for _, limit := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 3, 50} {
			var counts [50]atomic.Int32
			if err := Do(n, limit, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatalf("n=%d limit=%d: %v", n, limit, err)
			}
			for i := 0; i < n; i++ {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("n=%d limit=%d: index %d visited %d times", n, limit, i, c)
				}
			}
			for i := n; i < len(counts); i++ {
				if counts[i].Load() != 0 {
					t.Fatalf("n=%d limit=%d: out-of-range index %d visited", n, limit, i)
				}
			}
		}
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	for _, limit := range []int{1, 4} {
		err := Do(10, limit, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("limit=%d: got %v, want fail-3", limit, err)
		}
	}
}

func TestDoSequentialStopsAtFirstError(t *testing.T) {
	var visited atomic.Int32
	sentinel := errors.New("boom")
	err := Do(10, 1, func(i int) error {
		visited.Add(1)
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if v := visited.Load(); v != 3 {
		t.Fatalf("sequential mode visited %d indices after error, want 3", v)
	}
}
