// Package parallel provides the tiny bounded fan-out primitive behind the
// partitioned query paths: the VP manager fans a query across its velocity
// partitions and the Store fans operations across its ObjectID shards, both
// through Do. Keeping it in one place pins down the concurrency contract —
// bounded workers, deterministic error selection, strict sequential
// degeneration at limit 1 — so the "parallel results must be byte-identical
// to the sequential path" property is enforced by construction at every call
// site rather than re-proved per caller.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Do runs f(0..n-1) on at most limit concurrent workers and waits for all of
// them. limit <= 0 means GOMAXPROCS. With n <= 1 or limit == 1 it degrades
// to a plain sequential loop on the calling goroutine (no goroutines, no
// channel traffic) that stops at the first error — the exact pre-fan-out
// behavior, used as the comparison baseline in tests and benchmarks.
//
// In the parallel case every index is still visited exactly once (workers
// that already started are not cancelled), and the returned error is the one
// from the lowest index that failed, so error selection does not depend on
// goroutine scheduling.
func Do(n, limit int, f func(i int) error) error {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if n <= 1 || limit == 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := limit
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
