//go:build unix

package storage

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can map the data file at all;
// OpenFileStore falls back to pread silently when it cannot.
const mmapSupported = true

// mmapFile maps length bytes of f read-only and shared: the mapping observes
// every pwrite the store issues through the same file, so the read path sees
// exactly what a pread would, minus the syscall and the copy into a scratch
// slot.
func mmapFile(f *os.File, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
