//go:build !unix

package storage

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform can map the data file at all;
// OpenFileStore falls back to pread silently when it cannot.
const mmapSupported = false

func mmapFile(_ *os.File, _ int) ([]byte, error) {
	return nil, errors.New("storage: mmap not supported on this platform")
}

func munmapFile(_ []byte) error { return nil }
