package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// flipByte inverts one byte of a file in place.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[off] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// withBackends runs a subtest against each PageStore implementation — and
// against the FileStore's mmap read path where the platform has one — so the
// interface contract (allocation, validation errors, free-list ID reuse) is
// asserted once for all of them.
func withBackends(t *testing.T, fn func(t *testing.T, ps PageStore)) {
	t.Helper()
	t.Run("MemStore", func(t *testing.T) {
		fn(t, NewMemStore())
	})
	t.Run("FileStore", func(t *testing.T) {
		fs, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.dat"), FileStoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fs.Close() })
		fn(t, fs)
	})
	t.Run("FileStoreMmap", func(t *testing.T) {
		if !mmapSupported {
			t.Skip("no mmap on this platform")
		}
		fs, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.dat"), FileStoreOptions{Mmap: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fs.Close() })
		fn(t, fs)
	})
}

// fileVariants runs a FileStore-specific subtest once per read path: the
// plain pread configuration and, where supported, the mmap one. Corruption,
// quarantine, and superblock handling must be identical in both.
func fileVariants(t *testing.T, fn func(t *testing.T, opts FileStoreOptions)) {
	t.Helper()
	t.Run("pread", func(t *testing.T) { fn(t, FileStoreOptions{}) })
	t.Run("mmap", func(t *testing.T) {
		if !mmapSupported {
			t.Skip("no mmap on this platform")
		}
		fn(t, FileStoreOptions{Mmap: true})
	})
}

func TestPageStoreContract(t *testing.T) {
	withBackends(t, func(t *testing.T, ps PageStore) {
		a, err := ps.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		b, err := ps.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if a == NilPage || b == NilPage || a == b {
			t.Fatalf("bad ids %d, %d", a, b)
		}
		if ps.NumPages() != 2 {
			t.Fatalf("NumPages = %d, want 2", ps.NumPages())
		}
		var page [PageSize]byte
		page[0], page[PageSize-1] = 0xAB, 0xCD
		if err := ps.WritePage(a, &page); err != nil {
			t.Fatal(err)
		}
		var got [PageSize]byte
		if err := ps.ReadPage(a, &got); err != nil {
			t.Fatal(err)
		}
		if got != page {
			t.Fatal("read back different bytes")
		}
		if ps.PhysicalReads() != 1 || ps.PhysicalWrites() != 1 {
			t.Fatalf("counters = %d reads, %d writes", ps.PhysicalReads(), ps.PhysicalWrites())
		}

		// Validation: unallocated, freed, and double-freed pages error.
		if err := ps.ReadPage(a+100, &got); err == nil {
			t.Fatal("read of unallocated page succeeded")
		}
		if err := ps.Free(a); err != nil {
			t.Fatal(err)
		}
		if err := ps.Free(a); err == nil {
			t.Fatal("double free succeeded")
		}
		if err := ps.ReadPage(a, &got); err == nil {
			t.Fatal("read of freed page succeeded")
		}
		if err := ps.WritePage(a, &page); err == nil {
			t.Fatal("write of freed page succeeded")
		}
		if ps.FreePages() != 1 {
			t.Fatalf("FreePages = %d, want 1", ps.FreePages())
		}
		if err := ps.Sync(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPageStoreFreeListReuse(t *testing.T) {
	withBackends(t, func(t *testing.T, ps PageStore) {
		ids := make([]PageID, 6)
		for i := range ids {
			id, err := ps.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		// Free three pages; both backends recycle most-recently-freed first.
		freed := []PageID{ids[1], ids[3], ids[4]}
		for _, id := range freed {
			var junk [PageSize]byte
			for i := range junk {
				junk[i] = 0xEE
			}
			if err := ps.WritePage(id, &junk); err != nil {
				t.Fatal(err)
			}
			if err := ps.Free(id); err != nil {
				t.Fatal(err)
			}
		}
		high := ps.NumPages()
		for i := len(freed) - 1; i >= 0; i-- {
			id, err := ps.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id != freed[i] {
				t.Fatalf("allocation %d recycled page %d, want %d (LIFO reuse)", len(freed)-1-i, id, freed[i])
			}
			// Recycled pages come back zeroed, not with their stale image.
			var got [PageSize]byte
			if err := ps.ReadPage(id, &got); err != nil {
				t.Fatal(err)
			}
			if got != ([PageSize]byte{}) {
				t.Fatalf("recycled page %d not zeroed", id)
			}
		}
		if ps.NumPages() != high+len(freed) {
			t.Fatalf("NumPages = %d, want %d", ps.NumPages(), high+len(freed))
		}
		if ps.FreePages() != 0 {
			t.Fatalf("FreePages = %d after full recycle", ps.FreePages())
		}
		// The free list exhausted: the next allocation must be a fresh id.
		id, err := ps.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for _, old := range ids {
			if id == old {
				t.Fatalf("fresh allocation reused live id %d", id)
			}
		}
	})
}

func TestPageStoreErrorPaths(t *testing.T) {
	withBackends(t, func(t *testing.T, ps PageStore) {
		id, err := ps.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		var page [PageSize]byte

		// NilPage and out-of-range ids are rejected by every verb.
		if err := ps.ReadPage(NilPage, &page); err == nil {
			t.Fatal("read of nil page succeeded")
		}
		if err := ps.WritePage(NilPage, &page); err == nil {
			t.Fatal("write of nil page succeeded")
		}
		if err := ps.Free(NilPage); err == nil {
			t.Fatal("free of nil page succeeded")
		}
		if err := ps.ReadPage(id+1000, &page); err == nil {
			t.Fatal("read of out-of-range page succeeded")
		}
		if err := ps.WritePage(id+1000, &page); err == nil {
			t.Fatal("write of out-of-range page succeeded")
		}
		if err := ps.Free(id + 1000); err == nil {
			t.Fatal("free of out-of-range page succeeded")
		}

		// Already-free ids are rejected by every verb.
		if err := ps.Free(id); err != nil {
			t.Fatal(err)
		}
		if err := ps.ReadPage(id, &page); err == nil {
			t.Fatal("read of freed page succeeded")
		}
		if err := ps.WritePage(id, &page); err == nil {
			t.Fatal("write of freed page succeeded")
		}
		if err := ps.Free(id); err == nil {
			t.Fatal("double free succeeded")
		}

		// Failed accesses are not I/O.
		if ps.PhysicalReads() != 0 || ps.PhysicalWrites() != 0 {
			t.Fatalf("counters = %d reads, %d writes after failures only",
				ps.PhysicalReads(), ps.PhysicalWrites())
		}
	})
}

func TestPageStoreAfterClose(t *testing.T) {
	withBackends(t, func(t *testing.T, ps PageStore) {
		id, err := ps.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.Close(); err != nil {
			t.Fatal(err)
		}
		// Second close is idempotent.
		if err := ps.Close(); err != nil {
			t.Fatalf("second Close = %v, want nil", err)
		}
		var page [PageSize]byte
		if _, err := ps.Allocate(); !errors.Is(err, os.ErrClosed) {
			t.Fatalf("Allocate after Close = %v, want os.ErrClosed", err)
		}
		if err := ps.ReadPage(id, &page); !errors.Is(err, os.ErrClosed) {
			t.Fatalf("ReadPage after Close = %v, want os.ErrClosed", err)
		}
		if err := ps.WritePage(id, &page); !errors.Is(err, os.ErrClosed) {
			t.Fatalf("WritePage after Close = %v, want os.ErrClosed", err)
		}
		if err := ps.Free(id); !errors.Is(err, os.ErrClosed) {
			t.Fatalf("Free after Close = %v, want os.ErrClosed", err)
		}
		if err := ps.Sync(); !errors.Is(err, os.ErrClosed) {
			t.Fatalf("Sync after Close = %v, want os.ErrClosed", err)
		}
	})
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	fileVariants(t, testFileStorePersistsAcrossReopen)
}

func testFileStorePersistsAcrossReopen(t *testing.T, opts FileStoreOptions) {
	path := filepath.Join(t.TempDir(), "pages.dat")
	fs, err := OpenFileStore(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]PageID, 5)
	for i := range ids {
		if ids[i], err = fs.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	var page [PageSize]byte
	copy(page[:], "persisted payload")
	if err := fs.WritePage(ids[2], &page); err != nil {
		t.Fatal(err)
	}
	if err := fs.Free(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := fs.Free(ids[4]); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: allocator state (high-water mark, free list) and page images
	// must survive.
	fs2, err := OpenFileStore(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if got := fs2.NumPages(); got != 3 {
		t.Fatalf("NumPages after reopen = %d, want 3", got)
	}
	if got := fs2.FreePages(); got != 2 {
		t.Fatalf("FreePages after reopen = %d, want 2", got)
	}
	var got [PageSize]byte
	if err := fs2.ReadPage(ids[2], &got); err != nil {
		t.Fatal(err)
	}
	if got != page {
		t.Fatal("page image lost across reopen")
	}
	if err := fs2.ReadPage(ids[0], &got); err == nil {
		t.Fatal("freed page readable after reopen")
	}
	// Free-list order survives too: last freed is recycled first.
	id, err := fs2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[4] {
		t.Fatalf("recycled %d after reopen, want %d", id, ids[4])
	}
}

func TestFileStoreTruncateDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.dat")
	fs, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFileStore(path, FileStoreOptions{Truncate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if got := fs2.NumPages(); got != 0 {
		t.Fatalf("NumPages after truncating open = %d, want 0", got)
	}
}

func TestFileStoreRejectsCorruptSuperblock(t *testing.T) {
	fileVariants(t, func(t *testing.T, opts FileStoreOptions) {
		path := filepath.Join(t.TempDir(), "pages.dat")
		fs, err := OpenFileStore(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := fs.Close(); err != nil {
			t.Fatal(err)
		}
		// Both superblock copies must be destroyed before open fails.
		flipByte(t, path, sbOffNextID+2)              // copy A's nextID field
		flipByte(t, path, sbCopyStride+sbOffNextID+2) // copy B's nextID field
		if _, err := OpenFileStore(path, opts); err == nil {
			t.Fatal("corrupt superblock accepted")
		}
	})
}

func TestFileStoreSuperblockSurvivesTornCopy(t *testing.T) {
	fileVariants(t, testFileStoreSuperblockSurvivesTornCopy)
}

func testFileStoreSuperblockSurvivesTornCopy(t *testing.T, opts FileStoreOptions) {
	path := filepath.Join(t.TempDir(), "pages.dat")
	fs, err := OpenFileStore(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, err := fs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var page [PageSize]byte
	copy(page[:], "survives torn superblock")
	if err := fs.WritePage(ids[1], &page); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// Superblock writes alternate copies by generation; destroying the copy
	// the *last* write landed in must fall back to the older copy, while
	// destroying the stale copy must be a no-op. Probe both offsets: exactly
	// one of them holds the newest generation, and the store must open with
	// a usable allocator either way.
	for _, off := range []int64{sbOffGen, sbCopyStride + sbOffGen} {
		func() {
			dir := t.TempDir()
			cp := filepath.Join(dir, "pages.dat")
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(cp, b, 0o644); err != nil {
				t.Fatal(err)
			}
			flipByte(t, cp, off)
			fs2, err := OpenFileStore(cp, opts)
			if err != nil {
				t.Fatalf("open with one torn superblock copy (off %d): %v", off, err)
			}
			defer fs2.Close()
			if got := fs2.NumPages(); got != 3 && got != 0 {
				t.Fatalf("NumPages = %d after torn copy at %d", got, off)
			}
		}()
	}
}

func TestFileStoreSuperblockGenerationAdvances(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.dat")
	var lastGen uint64
	for i := 0; i < 3; i++ {
		fs, err := OpenFileStore(path, FileStoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := fs.Close(); err != nil {
			t.Fatal(err)
		}
		fs2, err := OpenFileStore(path, FileStoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if fs2.gen <= lastGen {
			t.Fatalf("generation %d did not advance past %d", fs2.gen, lastGen)
		}
		lastGen = fs2.gen
		if err := fs2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFileStoreMmapRemapOnGrow(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	fs, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.dat"), FileStoreOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if !fs.MmapActive() {
		t.Fatal("mmap requested but not active")
	}
	// Pages allocated after the initial mapping force remaps; every image
	// must read back intact through the (re)mapped window.
	var ids []PageID
	for i := 0; i < 64; i++ {
		id, err := fs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		var page [PageSize]byte
		page[0], page[PageSize-1] = byte(i), byte(255-i)
		if err := fs.WritePage(id, &page); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		var got [PageSize]byte
		if err := fs.ReadPage(id, &got); err != nil {
			t.Fatalf("read page %d: %v", id, err)
		}
		if got[0] != byte(i) || got[PageSize-1] != byte(255-i) {
			t.Fatalf("page %d read back wrong image", id)
		}
	}
	if fs.PhysicalReads() != int64(len(ids)) {
		t.Fatalf("PhysicalReads = %d, want %d", fs.PhysicalReads(), len(ids))
	}
}

func TestFaultInjectorKillsAtNthSync(t *testing.T) {
	fi := NewFaultInjector(2)
	path := filepath.Join(t.TempDir(), "pages.dat")
	fs, err := OpenFileStore(path, FileStoreOptions{Injector: fi})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("first sync should survive: %v", err)
	}
	if err := fs.Sync(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("second sync error = %v, want ErrInjectedCrash", err)
	}
	if !fi.Dead() {
		t.Fatal("injector not dead after the kill point")
	}
	// Post-kill, every write-side operation is refused.
	if _, err := fs.Allocate(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("post-crash Allocate error = %v", err)
	}
	var page [PageSize]byte
	if err := fs.WritePage(1, &page); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("post-crash WritePage error = %v", err)
	}
	// A nil injector is inert.
	var nilFI *FaultInjector
	if err := nilFI.BeforeWrite(); err != nil {
		t.Fatal(err)
	}
	if err := nilFI.BeforeSync(); err != nil {
		t.Fatal(err)
	}
}
