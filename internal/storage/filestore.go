package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
)

// FileStore superblock layout (stored in slot 0 of the data file, before
// page id 1): magic, version, allocator high-water mark, free-list head and
// length, and a CRC over all of it. The free list is threaded through the
// freed pages themselves — each free page's first 8 bytes hold the next free
// id — so the superblock stays O(1) no matter how many pages are free.
const (
	fsMagic   = 0x56504653 // "VPFS"
	fsVersion = 1

	sbOffMagic    = 0
	sbOffVersion  = 4
	sbOffNextID   = 8
	sbOffFreeHead = 16
	sbOffNFree    = 24
	sbOffCRC      = 32
	sbSize        = 36
)

// FileStore is a durable PageStore over a single data file: page id N lives
// at byte offset N*PageSize (slot 0 holds the superblock), reads and writes
// are page-aligned pread/pwrite on a shared descriptor (no lock on the data
// path), Sync persists the superblock and fsyncs, and freed pages form an
// intrusive free list whose head is in the superblock so allocation state
// survives restarts.
//
// FileStore carries no redo information of its own — crash consistency of
// the pages comes from the Store's write-ahead log, which is why the Store's
// durable mode rebuilds index pages from logical state at open rather than
// trusting page images newer than the last checkpoint.
type FileStore struct {
	f    *os.File
	path string
	fi   *FaultInjector

	mu      sync.Mutex // allocator + superblock state
	nextID  uint64     // high-water mark: ids 1..nextID exist
	free    []PageID   // recycle stack; top of stack == on-disk chain head
	freeSet map[PageID]struct{}
	sbDirty bool

	reads  atomic.Int64
	writes atomic.Int64
}

// FileStoreOptions configures OpenFileStore.
type FileStoreOptions struct {
	// Truncate discards any existing contents (the Store's durable mode does
	// this at every open: pages are rebuilt from checkpoint + WAL replay).
	Truncate bool
	// Injector, when non-nil, simulates kill -9 at a chosen sync point.
	Injector *FaultInjector
}

// OpenFileStore opens (creating if needed) the single-file page store at
// path. Without Truncate, the superblock and free list of a previous
// generation are validated and restored.
func OpenFileStore(path string, opt FileStoreOptions) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	fs := &FileStore{f: f, path: path, fi: opt.Injector, freeSet: make(map[PageID]struct{})}
	if opt.Truncate {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: truncate %s: %w", path, err)
		}
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < PageSize {
		// Fresh store: reserve slot 0 for the superblock.
		if err := f.Truncate(PageSize); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: init %s: %w", path, err)
		}
		fs.sbDirty = true
		return fs, nil
	}
	if err := fs.loadSuperblock(st.Size()); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// loadSuperblock validates and restores allocator state from slot 0,
// rebuilding the in-memory free stack by walking the on-disk chain.
func (fs *FileStore) loadSuperblock(size int64) error {
	var sb [sbSize]byte
	if _, err := fs.f.ReadAt(sb[:], 0); err != nil {
		return fmt.Errorf("storage: superblock read: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sb[sbOffMagic:]); got != fsMagic {
		return fmt.Errorf("storage: %s: bad superblock magic %#x", fs.path, got)
	}
	if got := binary.LittleEndian.Uint32(sb[sbOffVersion:]); got != fsVersion {
		return fmt.Errorf("storage: %s: unsupported version %d", fs.path, got)
	}
	if got, want := binary.LittleEndian.Uint32(sb[sbOffCRC:]), crc32.ChecksumIEEE(sb[:sbOffCRC]); got != want {
		return fmt.Errorf("storage: %s: superblock CRC mismatch", fs.path)
	}
	fs.nextID = binary.LittleEndian.Uint64(sb[sbOffNextID:])
	if have := uint64(size/PageSize) - 1; fs.nextID > have {
		return fmt.Errorf("storage: %s: superblock claims %d pages, file holds %d", fs.path, fs.nextID, have)
	}
	head := PageID(binary.LittleEndian.Uint64(sb[sbOffFreeHead:]))
	nfree := binary.LittleEndian.Uint64(sb[sbOffNFree:])
	chain := make([]PageID, 0, nfree)
	var next [8]byte
	for id := head; id != NilPage; {
		if uint64(id) > fs.nextID || uint64(len(chain)) >= nfree {
			return fmt.Errorf("storage: %s: corrupt free list at page %d", fs.path, id)
		}
		if _, ok := fs.freeSet[id]; ok {
			return fmt.Errorf("storage: %s: free-list cycle at page %d", fs.path, id)
		}
		chain = append(chain, id)
		fs.freeSet[id] = struct{}{}
		if _, err := fs.f.ReadAt(next[:], int64(id)*PageSize); err != nil {
			return fmt.Errorf("storage: %s: free-list read: %w", fs.path, err)
		}
		id = PageID(binary.LittleEndian.Uint64(next[:]))
	}
	if uint64(len(chain)) != nfree {
		return fmt.Errorf("storage: %s: free list holds %d pages, superblock claims %d", fs.path, len(chain), nfree)
	}
	// Stack pop order must match chain order: top of stack = chain head.
	fs.free = make([]PageID, len(chain))
	for i, id := range chain {
		fs.free[len(chain)-1-i] = id
	}
	return nil
}

// writeSuperblockLocked persists allocator state into slot 0. Caller holds
// fs.mu.
func (fs *FileStore) writeSuperblockLocked() error {
	var head PageID
	if n := len(fs.free); n > 0 {
		head = fs.free[n-1]
	}
	var sb [sbSize]byte
	binary.LittleEndian.PutUint32(sb[sbOffMagic:], fsMagic)
	binary.LittleEndian.PutUint32(sb[sbOffVersion:], fsVersion)
	binary.LittleEndian.PutUint64(sb[sbOffNextID:], fs.nextID)
	binary.LittleEndian.PutUint64(sb[sbOffFreeHead:], uint64(head))
	binary.LittleEndian.PutUint64(sb[sbOffNFree:], uint64(len(fs.free)))
	binary.LittleEndian.PutUint32(sb[sbOffCRC:], crc32.ChecksumIEEE(sb[:sbOffCRC]))
	if _, err := fs.f.WriteAt(sb[:], 0); err != nil {
		return fmt.Errorf("storage: superblock write: %w", err)
	}
	fs.sbDirty = false
	return nil
}

// checkLocked validates that id is a live page. Caller holds fs.mu.
func (fs *FileStore) checkLocked(id PageID, op string) error {
	if id == NilPage || uint64(id) > fs.nextID {
		return fmt.Errorf("storage: %s of unallocated page %d", op, id)
	}
	if _, ok := fs.freeSet[id]; ok {
		return fmt.Errorf("storage: %s of freed page %d", op, id)
	}
	return nil
}

// Allocate reserves a page id, recycling the most recently freed id if any;
// fresh pages extend the file (zero-filled by the filesystem).
func (fs *FileStore) Allocate() (PageID, error) {
	if err := fs.fi.BeforeWrite(); err != nil {
		return NilPage, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n := len(fs.free); n > 0 {
		id := fs.free[n-1]
		fs.free = fs.free[:n-1]
		delete(fs.freeSet, id)
		fs.sbDirty = true
		// The recycled page may hold a stale image (and the free-list next
		// pointer); contract says zeroed contents.
		var zero [PageSize]byte
		if _, err := fs.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
			return NilPage, fmt.Errorf("storage: page clear: %w", err)
		}
		return id, nil
	}
	fs.nextID++
	id := PageID(fs.nextID)
	if err := fs.f.Truncate(int64(fs.nextID+1) * PageSize); err != nil {
		fs.nextID--
		return NilPage, fmt.Errorf("storage: extend: %w", err)
	}
	fs.sbDirty = true
	return id, nil
}

// Free releases a page onto the intrusive free list.
func (fs *FileStore) Free(id PageID) error {
	if err := fs.fi.BeforeWrite(); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkLocked(id, "free"); err != nil {
		return err
	}
	var head PageID
	if n := len(fs.free); n > 0 {
		head = fs.free[n-1]
	}
	var next [8]byte
	binary.LittleEndian.PutUint64(next[:], uint64(head))
	if _, err := fs.f.WriteAt(next[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: free-list write: %w", err)
	}
	fs.free = append(fs.free, id)
	fs.freeSet[id] = struct{}{}
	fs.sbDirty = true
	return nil
}

// ReadPage reads the page image with a positioned read (no allocator lock
// held during the transfer).
func (fs *FileStore) ReadPage(id PageID, dst *[PageSize]byte) error {
	fs.mu.Lock()
	err := fs.checkLocked(id, "read")
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	if _, err := fs.f.ReadAt(dst[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	fs.reads.Add(1)
	return nil
}

// WritePage writes the page image with a positioned write.
func (fs *FileStore) WritePage(id PageID, src *[PageSize]byte) error {
	if err := fs.fi.BeforeWrite(); err != nil {
		return err
	}
	fs.mu.Lock()
	err := fs.checkLocked(id, "write")
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	if _, err := fs.f.WriteAt(src[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	fs.writes.Add(1)
	return nil
}

// Sync persists the superblock (if allocator state changed) and fsyncs the
// data file: on return every prior WritePage/Allocate/Free is stable.
func (fs *FileStore) Sync() error {
	if err := fs.fi.BeforeSync(); err != nil {
		return err
	}
	fs.mu.Lock()
	if fs.sbDirty {
		if err := fs.writeSuperblockLocked(); err != nil {
			fs.mu.Unlock()
			return err
		}
	}
	fs.mu.Unlock()
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("storage: fsync %s: %w", fs.path, err)
	}
	return nil
}

// Close flushes allocator state and closes the file.
func (fs *FileStore) Close() error {
	syncErr := fs.Sync()
	if err := fs.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// Path returns the data file path.
func (fs *FileStore) Path() string { return fs.path }

// Injector returns the fault injector wired at open, possibly nil (the
// FaultInjector methods are nil-receiver safe).
func (fs *FileStore) Injector() *FaultInjector { return fs.fi }

// NumPages returns the number of live pages.
func (fs *FileStore) NumPages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return int(fs.nextID) - len(fs.free)
}

// FreePages returns the number of pages on the free list awaiting reuse.
func (fs *FileStore) FreePages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.free)
}

// PhysicalReads returns the number of successful page reads so far.
func (fs *FileStore) PhysicalReads() int64 { return fs.reads.Load() }

// PhysicalWrites returns the number of successful page writes so far.
func (fs *FileStore) PhysicalWrites() int64 { return fs.writes.Load() }
