package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// FileStore on-disk layout. Each logical 4 KB page occupies one slot of
// slotSize bytes: the page image followed by an integrity trailer holding a
// CRC-32C over (page id || page data). Binding the id into the checksum
// catches misdirected writes (a valid page persisted at the wrong offset) as
// well as torn writes and bit rot. An all-zero slot is also valid — it is
// the state of a freshly extended or just-recycled page — so allocation
// never has to write trailers.
//
// Slot 0 holds the superblock twice (copies A and B at sbCopyStride apart),
// written alternately with a monotonically increasing generation: a torn
// superblock write destroys at most the copy being written, and load picks
// the valid copy with the highest generation. The free list is threaded
// through the freed pages themselves — each free page's first 8 bytes hold
// the next free id — so the superblock stays O(1) no matter how many pages
// are free.
const (
	fsMagic   = 0x56504653 // "VPFS"
	fsVersion = 2          // v2: checksummed slots + dual-generation superblock

	pageTrailerLen = 8 // [4]CRC-32C(id || data)  [4]reserved (zero)
	slotSize       = PageSize + pageTrailerLen

	sbOffMagic    = 0
	sbOffVersion  = 4
	sbOffGen      = 8
	sbOffNextID   = 16
	sbOffFreeHead = 24
	sbOffNFree    = 32
	sbOffCRC      = 40
	sbSize        = 44

	sbCopyStride = 512 // copy A at offset 0, copy B at offset 512 of slot 0
)

// castagnoli is the CRC-32C polynomial table used for page trailers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptPage marks a page whose checksum did not match its contents:
// a torn write, bit rot, or a misdirected write. Checksum failures are
// detected on read — the corrupt image is never decoded — and quarantine the
// page until a full rewrite repairs it.
var ErrCorruptPage = errors.New("storage: page checksum mismatch")

// CorruptPageError identifies which page of which store failed its checksum.
// It unwraps to ErrCorruptPage.
type CorruptPageError struct {
	Path string
	ID   PageID
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("storage: %s: page %d checksum mismatch", e.Path, e.ID)
}

// Unwrap ties the error to the ErrCorruptPage sentinel.
func (e *CorruptPageError) Unwrap() error { return ErrCorruptPage }

// slotPool recycles slot-sized scratch buffers for the read/write paths.
var slotPool = sync.Pool{
	New: func() any { return new([slotSize]byte) },
}

// pageCRC computes the trailer checksum: CRC-32C over the 8-byte
// little-endian page id followed by the page image.
func pageCRC(id PageID, data []byte) uint32 {
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], uint64(id))
	crc := crc32.Update(0, castagnoli, idb[:])
	return crc32.Update(crc, castagnoli, data)
}

// nScrubLocks stripes the per-page write/verify locks that let the scrubber
// read a page atomically with respect to concurrent writers without
// serializing the data path (writers share a stripe with RLock).
const nScrubLocks = 64

// FileStore is a durable PageStore over a single data file: page id N lives
// at byte offset N*slotSize (slot 0 holds the superblock copies), reads and
// writes are slot-aligned pread/pwrite on a shared descriptor (no lock on
// the data path), every data slot carries a CRC-32C trailer verified on
// read, Sync persists the superblock and fsyncs, and freed pages form an
// intrusive free list whose head is in the superblock so allocation state
// survives restarts.
//
// Pages that fail their checksum are quarantined: further reads fail fast
// with CorruptPageError until a successful full-page write repairs the slot.
// A background scrubber (see VerifyPage/LivePages) sweeps cold pages on a
// cadence so corruption is found before a query trips over it.
//
// FileStore carries no redo information of its own — crash consistency of
// the pages comes from the Store's write-ahead log, which is why the Store's
// durable mode rebuilds index pages from logical state at open rather than
// trusting page images newer than the last checkpoint.
type FileStore struct {
	f      *os.File
	path   string
	fi     *FaultInjector
	closed atomic.Bool

	mu      sync.Mutex // allocator + superblock state
	nextID  uint64     // high-water mark: ids 1..nextID exist
	free    []PageID   // recycle stack; top of stack == on-disk chain head
	freeSet map[PageID]struct{}
	sbDirty bool
	gen     uint64 // superblock generation last persisted

	// quarantined pages failed a checksum and fail fast on read until
	// rewritten in full.
	quarMu      sync.Mutex
	quarantined map[PageID]struct{}

	// scrub stripes: writers take RLock for the slot update; VerifyPage
	// takes Lock so its read-verify pair is atomic vs in-flight writes.
	scrub [nScrubLocks]sync.RWMutex

	// Read-only shared mapping of the data file (FileStoreOptions.Mmap).
	// mapMu orders readers against remap-on-grow and unmap-on-close; mapped
	// is nil whenever the mapping is off, failed, or torn down, and every
	// read falls back to pread then. Writes never go through the mapping —
	// they stay positioned pwrites on f, which a MAP_SHARED mapping of the
	// same file observes coherently.
	mapMu  sync.RWMutex
	mapped []byte
	mmapOn bool // mapping requested (and supported); remap after growth

	reads  atomic.Int64
	writes atomic.Int64
}

// scrubLock maps a page id onto its lock stripe (Fibonacci hashing, same
// discipline as the buffer pool's stripes).
func (fs *FileStore) scrubLock(id PageID) *sync.RWMutex {
	return &fs.scrub[(uint64(id)*0x9E3779B97F4A7C15)>>(64-6)]
}

// FileStoreOptions configures OpenFileStore.
type FileStoreOptions struct {
	// Truncate discards any existing contents (the Store's durable mode does
	// this at every open: pages are rebuilt from checkpoint + WAL replay).
	Truncate bool
	// Injector, when non-nil, injects crashes and media faults (fault.go).
	Injector *FaultInjector
	// Mmap serves reads from a read-only shared mapping of the data file
	// (checksums verified straight off the mapping, no pread and no copy
	// into a scratch slot); writes keep their pwrite+fsync path. The store
	// remaps after the file grows and falls back to pread gracefully when
	// the platform or the mapping call refuses.
	Mmap bool
}

// errClosed builds the after-Close error for op; it unwraps to os.ErrClosed.
func (fs *FileStore) errClosed(op string) error {
	return fmt.Errorf("storage: %s on closed store %s: %w", op, fs.path, os.ErrClosed)
}

// OpenFileStore opens (creating if needed) the single-file page store at
// path. Without Truncate, the superblock and free list of a previous
// generation are validated and restored. A fresh store is made durable
// before return: the initial superblock is written and fsynced and the
// parent directory entry is fsynced, so a crash immediately after creation
// leaves a well-formed (empty) store. Those creation-time syncs are raw —
// never routed through the injector — so fault scripts model a misbehaving
// disk under load, not a store that failed to be born.
func OpenFileStore(path string, opt FileStoreOptions) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	fs := &FileStore{
		f:           f,
		path:        path,
		fi:          opt.Injector,
		freeSet:     make(map[PageID]struct{}),
		quarantined: make(map[PageID]struct{}),
	}
	if opt.Truncate {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: truncate %s: %w", path, err)
		}
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < slotSize {
		// Fresh store: reserve slot 0 for the superblock copies and persist
		// them (plus the directory entry) before first use.
		if err := f.Truncate(slotSize); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: init %s: %w", path, err)
		}
		fs.mu.Lock()
		werr := fs.writeSuperblockLocked()
		fs.mu.Unlock()
		if werr == nil {
			werr = f.Sync()
		}
		if werr == nil {
			werr = SyncDir(filepath.Dir(path))
		}
		if werr != nil {
			f.Close()
			return nil, fmt.Errorf("storage: init %s: %w", path, werr)
		}
		fs.enableMmap(opt.Mmap, slotSize)
		return fs, nil
	}
	if err := fs.loadSuperblock(st.Size()); err != nil {
		f.Close()
		return nil, err
	}
	fs.enableMmap(opt.Mmap, st.Size())
	return fs, nil
}

// enableMmap arms the mmap read path when requested and supported. A refused
// mapping is not an error — the store simply keeps the pread path, and the
// next remapLocked (after growth) tries again.
func (fs *FileStore) enableMmap(want bool, size int64) {
	if !want || !mmapSupported {
		return
	}
	fs.mmapOn = true
	fs.mapMu.Lock()
	fs.remapLocked(size)
	fs.mapMu.Unlock()
}

// remapLocked replaces the mapping with one covering size bytes; on failure
// the mapping is left down (readers fall back to pread). Caller holds mapMu
// exclusively.
func (fs *FileStore) remapLocked(size int64) {
	if fs.mapped != nil {
		_ = munmapFile(fs.mapped)
		fs.mapped = nil
	}
	if size <= 0 || int64(int(size)) != size {
		return
	}
	m, err := mmapFile(fs.f, int(size))
	if err != nil {
		return
	}
	fs.mapped = m
}

// MmapActive reports whether reads are currently served from the mapping.
func (fs *FileStore) MmapActive() bool {
	fs.mapMu.RLock()
	defer fs.mapMu.RUnlock()
	return fs.mapped != nil
}

// parseSuperblock validates one superblock copy and returns its fields.
func parseSuperblock(sb []byte) (gen, nextID uint64, head PageID, nfree uint64, ok bool) {
	if binary.LittleEndian.Uint32(sb[sbOffMagic:]) != fsMagic {
		return 0, 0, 0, 0, false
	}
	if binary.LittleEndian.Uint32(sb[sbOffVersion:]) != fsVersion {
		return 0, 0, 0, 0, false
	}
	if binary.LittleEndian.Uint32(sb[sbOffCRC:]) != crc32.ChecksumIEEE(sb[:sbOffCRC]) {
		return 0, 0, 0, 0, false
	}
	gen = binary.LittleEndian.Uint64(sb[sbOffGen:])
	nextID = binary.LittleEndian.Uint64(sb[sbOffNextID:])
	head = PageID(binary.LittleEndian.Uint64(sb[sbOffFreeHead:]))
	nfree = binary.LittleEndian.Uint64(sb[sbOffNFree:])
	return gen, nextID, head, nfree, true
}

// loadSuperblock restores allocator state from the newest valid superblock
// copy, rebuilding the in-memory free stack by walking the on-disk chain.
func (fs *FileStore) loadSuperblock(size int64) error {
	var raw [sbCopyStride + sbSize]byte
	if _, err := fs.f.ReadAt(raw[:], 0); err != nil {
		return fmt.Errorf("storage: superblock read: %w", err)
	}
	genA, nextA, headA, nfreeA, okA := parseSuperblock(raw[0:sbSize])
	genB, nextB, headB, nfreeB, okB := parseSuperblock(raw[sbCopyStride : sbCopyStride+sbSize])
	var gen, nextID, nfree uint64
	var head PageID
	switch {
	case okA && (!okB || genA >= genB):
		gen, nextID, head, nfree = genA, nextA, headA, nfreeA
	case okB:
		gen, nextID, head, nfree = genB, nextB, headB, nfreeB
	default:
		return fmt.Errorf("storage: %s: no valid superblock copy", fs.path)
	}
	fs.gen = gen
	fs.nextID = nextID
	if have := uint64(size/slotSize) - 1; fs.nextID > have {
		return fmt.Errorf("storage: %s: superblock claims %d pages, file holds %d", fs.path, fs.nextID, have)
	}
	chain := make([]PageID, 0, nfree)
	var next [8]byte
	for id := head; id != NilPage; {
		if uint64(id) > fs.nextID || uint64(len(chain)) >= nfree {
			return fmt.Errorf("storage: %s: corrupt free list at page %d", fs.path, id)
		}
		if _, ok := fs.freeSet[id]; ok {
			return fmt.Errorf("storage: %s: free-list cycle at page %d", fs.path, id)
		}
		chain = append(chain, id)
		fs.freeSet[id] = struct{}{}
		if _, err := fs.f.ReadAt(next[:], int64(id)*slotSize); err != nil {
			return fmt.Errorf("storage: %s: free-list read: %w", fs.path, err)
		}
		id = PageID(binary.LittleEndian.Uint64(next[:]))
	}
	if uint64(len(chain)) != nfree {
		return fmt.Errorf("storage: %s: free list holds %d pages, superblock claims %d", fs.path, len(chain), nfree)
	}
	// Stack pop order must match chain order: top of stack = chain head.
	fs.free = make([]PageID, len(chain))
	for i, id := range chain {
		fs.free[len(chain)-1-i] = id
	}
	return nil
}

// writeSuperblockLocked persists allocator state into the next superblock
// copy (alternating by generation). Caller holds fs.mu.
func (fs *FileStore) writeSuperblockLocked() error {
	var head PageID
	if n := len(fs.free); n > 0 {
		head = fs.free[n-1]
	}
	fs.gen++
	var sb [sbSize]byte
	binary.LittleEndian.PutUint32(sb[sbOffMagic:], fsMagic)
	binary.LittleEndian.PutUint32(sb[sbOffVersion:], fsVersion)
	binary.LittleEndian.PutUint64(sb[sbOffGen:], fs.gen)
	binary.LittleEndian.PutUint64(sb[sbOffNextID:], fs.nextID)
	binary.LittleEndian.PutUint64(sb[sbOffFreeHead:], uint64(head))
	binary.LittleEndian.PutUint64(sb[sbOffNFree:], uint64(len(fs.free)))
	binary.LittleEndian.PutUint32(sb[sbOffCRC:], crc32.ChecksumIEEE(sb[:sbOffCRC]))
	off := int64(0)
	if fs.gen&1 == 0 {
		off = sbCopyStride
	}
	if _, err := fs.f.WriteAt(sb[:], off); err != nil {
		fs.gen--
		return fmt.Errorf("storage: superblock write: %w", err)
	}
	fs.sbDirty = false
	return nil
}

// checkLocked validates that id is a live page. Caller holds fs.mu.
func (fs *FileStore) checkLocked(id PageID, op string) error {
	if id == NilPage || uint64(id) > fs.nextID {
		return fmt.Errorf("storage: %s of unallocated page %d", op, id)
	}
	if _, ok := fs.freeSet[id]; ok {
		return fmt.Errorf("storage: %s of freed page %d", op, id)
	}
	return nil
}

// isQuarantined reports whether id is quarantined after a checksum failure.
func (fs *FileStore) isQuarantined(id PageID) bool {
	fs.quarMu.Lock()
	_, ok := fs.quarantined[id]
	fs.quarMu.Unlock()
	return ok
}

func (fs *FileStore) setQuarantined(id PageID, bad bool) {
	fs.quarMu.Lock()
	if bad {
		fs.quarantined[id] = struct{}{}
	} else {
		delete(fs.quarantined, id)
	}
	fs.quarMu.Unlock()
}

// Quarantined returns how many pages are currently quarantined.
func (fs *FileStore) Quarantined() int {
	fs.quarMu.Lock()
	defer fs.quarMu.Unlock()
	return len(fs.quarantined)
}

// Allocate reserves a page id, recycling the most recently freed id if any;
// fresh pages extend the file (zero-filled by the filesystem, which is a
// valid zero page under the all-zero-slot rule).
func (fs *FileStore) Allocate() (PageID, error) {
	if fs.closed.Load() {
		return NilPage, fs.errClosed("allocate")
	}
	if err := fs.fi.BeforeWrite(); err != nil {
		return NilPage, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n := len(fs.free); n > 0 {
		id := fs.free[n-1]
		fs.free = fs.free[:n-1]
		delete(fs.freeSet, id)
		fs.sbDirty = true
		// The recycled slot holds a stale image, its stale trailer, and the
		// free-list next pointer; contract says zeroed contents, and a fully
		// zero slot is checksum-valid by the all-zero rule.
		zero := slotPool.Get().(*[slotSize]byte)
		clear(zero[:])
		lk := fs.scrubLock(id)
		lk.RLock()
		_, err := fs.f.WriteAt(zero[:], int64(id)*slotSize)
		lk.RUnlock()
		slotPool.Put(zero)
		if err != nil {
			return NilPage, fmt.Errorf("storage: page clear: %w", err)
		}
		fs.setQuarantined(id, false)
		return id, nil
	}
	fs.nextID++
	id := PageID(fs.nextID)
	if err := fs.f.Truncate(int64(fs.nextID+1) * slotSize); err != nil {
		fs.nextID--
		return NilPage, fmt.Errorf("storage: extend: %w", err)
	}
	fs.sbDirty = true
	if fs.mmapOn {
		// Remap to cover the new slot; a failed remap just leaves reads on
		// the pread fallback until the next growth.
		fs.mapMu.Lock()
		fs.remapLocked(int64(fs.nextID+1) * slotSize)
		fs.mapMu.Unlock()
	}
	return id, nil
}

// Free releases a page onto the intrusive free list.
func (fs *FileStore) Free(id PageID) error {
	if fs.closed.Load() {
		return fs.errClosed("free")
	}
	if err := fs.fi.BeforeWrite(); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkLocked(id, "free"); err != nil {
		return err
	}
	var head PageID
	if n := len(fs.free); n > 0 {
		head = fs.free[n-1]
	}
	var next [8]byte
	binary.LittleEndian.PutUint64(next[:], uint64(head))
	lk := fs.scrubLock(id)
	lk.RLock()
	_, err := fs.f.WriteAt(next[:], int64(id)*slotSize)
	lk.RUnlock()
	if err != nil {
		return fmt.Errorf("storage: free-list write: %w", err)
	}
	fs.free = append(fs.free, id)
	fs.freeSet[id] = struct{}{}
	fs.sbDirty = true
	return nil
}

// verifySlot checks a slot image against its trailer; an all-zero slot is a
// valid zero page. slot must be slotSize bytes (a scratch buffer or a window
// straight into the mapping).
func verifySlot(id PageID, slot []byte) bool {
	want := binary.LittleEndian.Uint32(slot[PageSize:])
	if pageCRC(id, slot[:PageSize]) == want {
		return true
	}
	for _, b := range slot {
		if b != 0 {
			return false
		}
	}
	return true
}

// readMapped serves one slot read from the mapping: verify the checksum
// against the mapped bytes and copy only the page image out. Returns false
// when the mapping is down or does not cover the slot yet (a grow raced the
// remap) — the caller falls back to pread. corrupt distinguishes a checksum
// failure (handled like the pread path: quarantine) from a miss.
func (fs *FileStore) readMapped(id PageID, dst *[PageSize]byte) (served, corrupt bool) {
	fs.mapMu.RLock()
	defer fs.mapMu.RUnlock()
	off := int64(id) * slotSize
	if fs.mapped == nil || off+slotSize > int64(len(fs.mapped)) {
		return false, false
	}
	slot := fs.mapped[off : off+slotSize]
	if !verifySlot(id, slot) {
		return true, true
	}
	copy(dst[:], slot[:PageSize])
	return true, false
}

// ReadPage reads the page image with a positioned read (no allocator lock
// held during the transfer) and verifies its checksum before returning it: a
// torn write or bit rot comes back as CorruptPageError, never as decoded
// garbage. A failed page is quarantined — later reads fail fast until a full
// write repairs it.
func (fs *FileStore) ReadPage(id PageID, dst *[PageSize]byte) error {
	if fs.closed.Load() {
		return fs.errClosed("read")
	}
	fs.mu.Lock()
	err := fs.checkLocked(id, "read")
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	if fs.isQuarantined(id) {
		return &CorruptPageError{Path: fs.path, ID: id}
	}
	if err := fs.fi.PageRead(id); err != nil {
		return err
	}
	if fs.mmapOn {
		if served, corrupt := fs.readMapped(id, dst); served {
			if corrupt {
				fs.setQuarantined(id, true)
				return &CorruptPageError{Path: fs.path, ID: id}
			}
			fs.reads.Add(1)
			return nil
		}
	}
	slot := slotPool.Get().(*[slotSize]byte)
	defer slotPool.Put(slot)
	if _, err := fs.f.ReadAt(slot[:], int64(id)*slotSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if !verifySlot(id, slot[:]) {
		fs.setQuarantined(id, true)
		return &CorruptPageError{Path: fs.path, ID: id}
	}
	copy(dst[:], slot[:PageSize])
	fs.reads.Add(1)
	return nil
}

// WritePage writes the page image and its checksum trailer with one
// positioned write. A successful full write repairs a quarantined slot. A
// scripted torn-write or bit-flip fault corrupts the persisted image while
// reporting success — exactly how real silent corruption behaves; the
// checksum catches it on the next read.
func (fs *FileStore) WritePage(id PageID, src *[PageSize]byte) error {
	if fs.closed.Load() {
		return fs.errClosed("write")
	}
	kind, err := fs.fi.PageWrite(id)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	err = fs.checkLocked(id, "write")
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	slot := slotPool.Get().(*[slotSize]byte)
	defer slotPool.Put(slot)
	copy(slot[:PageSize], src[:])
	binary.LittleEndian.PutUint32(slot[PageSize:], pageCRC(id, src[:]))
	binary.LittleEndian.PutUint32(slot[PageSize+4:], 0)
	n := int64(slotSize)
	switch kind {
	case FaultTornWrite:
		// Persist only a prefix, as if power failed mid-sector-train.
		n = 1536
	case FaultBitFlip:
		slot[PageSize/2] ^= 0x10
	}
	lk := fs.scrubLock(id)
	lk.RLock()
	_, werr := fs.f.WriteAt(slot[:n], int64(id)*slotSize)
	lk.RUnlock()
	if werr != nil {
		return fmt.Errorf("storage: write page %d: %w", id, werr)
	}
	if kind == FaultNone {
		fs.setQuarantined(id, false)
	}
	fs.writes.Add(1)
	return nil
}

// VerifyPage re-reads a page from disk and checks its checksum without going
// through the buffer pool — the scrubber's primitive. It takes the page's
// scrub stripe exclusively so an in-flight write cannot present a half-slot,
// and re-checks liveness after a failure so a page freed mid-verify is not
// reported. A confirmed-bad page is quarantined.
func (fs *FileStore) VerifyPage(id PageID) error {
	if fs.closed.Load() {
		return fs.errClosed("verify")
	}
	fs.mu.Lock()
	err := fs.checkLocked(id, "verify")
	fs.mu.Unlock()
	if err != nil {
		return nil // freed or never allocated: nothing to verify
	}
	slot := slotPool.Get().(*[slotSize]byte)
	defer slotPool.Put(slot)
	lk := fs.scrubLock(id)
	lk.Lock()
	_, rerr := fs.f.ReadAt(slot[:], int64(id)*slotSize)
	ok := rerr == nil && verifySlot(id, slot[:])
	lk.Unlock()
	if rerr != nil {
		return fmt.Errorf("storage: verify page %d: %w", id, rerr)
	}
	if ok {
		return nil
	}
	// The slot may legitimately mismatch if the page was freed (next-pointer
	// scribble) or recycled between our liveness check and the read.
	fs.mu.Lock()
	err = fs.checkLocked(id, "verify")
	fs.mu.Unlock()
	if err != nil {
		return nil
	}
	fs.setQuarantined(id, true)
	return &CorruptPageError{Path: fs.path, ID: id}
}

// LivePages snapshots the ids of all live (allocated, not freed) pages —
// the scrubber's sweep set.
func (fs *FileStore) LivePages() []PageID {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]PageID, 0, int(fs.nextID)-len(fs.free))
	for id := PageID(1); uint64(id) <= fs.nextID; id++ {
		if _, ok := fs.freeSet[id]; !ok {
			out = append(out, id)
		}
	}
	return out
}

// Sync persists the superblock (if allocator state changed) and fsyncs the
// data file: on return every prior WritePage/Allocate/Free is stable.
func (fs *FileStore) Sync() error {
	if fs.closed.Load() {
		return fs.errClosed("sync")
	}
	return fs.sync()
}

// sync is Sync without the closed check, shared with Close.
func (fs *FileStore) sync() error {
	if err := fs.fi.SyncPoint(OpPageSync); err != nil {
		return err
	}
	fs.mu.Lock()
	if fs.sbDirty {
		if err := fs.writeSuperblockLocked(); err != nil {
			fs.mu.Unlock()
			return err
		}
	}
	fs.mu.Unlock()
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("storage: fsync %s: %w", fs.path, err)
	}
	return nil
}

// Close flushes allocator state and closes the file. Close is idempotent
// and concurrency-safe: the first call does the work, every later call
// returns nil.
func (fs *FileStore) Close() error {
	if !fs.closed.CompareAndSwap(false, true) {
		return nil
	}
	syncErr := fs.sync()
	fs.mapMu.Lock()
	if fs.mapped != nil {
		_ = munmapFile(fs.mapped)
		fs.mapped = nil
	}
	fs.mapMu.Unlock()
	if err := fs.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// Path returns the data file path.
func (fs *FileStore) Path() string { return fs.path }

// Injector returns the fault injector wired at open, possibly nil (the
// FaultInjector methods are nil-receiver safe).
func (fs *FileStore) Injector() *FaultInjector { return fs.fi }

// NumPages returns the number of live pages.
func (fs *FileStore) NumPages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return int(fs.nextID) - len(fs.free)
}

// FreePages returns the number of pages on the free list awaiting reuse.
func (fs *FileStore) FreePages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.free)
}

// PhysicalReads returns the number of successful page reads so far.
func (fs *FileStore) PhysicalReads() int64 { return fs.reads.Load() }

// PhysicalWrites returns the number of successful page writes so far.
func (fs *FileStore) PhysicalWrites() int64 { return fs.writes.Load() }
