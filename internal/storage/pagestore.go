package storage

import (
	"errors"
	"sync"
	"sync/atomic"
)

// PageStore is the backend contract behind every BufferPool: fixed 4 KB
// pages addressed by PageID, an allocator with a free list (freed ids are
// recycled), raw page I/O, and a durability barrier. Two implementations
// exist: MemStore (the paper's simulated disk, default) and FileStore (a
// real single-file store used by the Store's WithDataDir mode).
//
// All methods are safe for concurrent use. PhysicalReads/PhysicalWrites
// count only successful page transfers — the "query I/O" the paper plots is
// buffer-pool misses, which map 1:1 onto PhysicalReads of the backing store.
type PageStore interface {
	// Allocate reserves a page id (recycling freed ids) with zeroed contents.
	Allocate() (PageID, error)
	// Free releases a page back to the free list. Freeing an unallocated or
	// already-free page is an error.
	Free(id PageID) error
	// ReadPage copies the page image into dst.
	ReadPage(id PageID, dst *[PageSize]byte) error
	// WritePage stores the page image.
	WritePage(id PageID, src *[PageSize]byte) error
	// Sync is a durability barrier: on return, every page written before the
	// call has reached stable storage (no-op for MemStore).
	Sync() error
	// NumPages returns the number of live (allocated, not freed) pages.
	NumPages() int
	// FreePages returns the number of freed pages awaiting reuse.
	FreePages() int
	// PhysicalReads returns the number of successful page reads so far.
	PhysicalReads() int64
	// PhysicalWrites returns the number of successful page writes so far.
	PhysicalWrites() int64
	// Close releases any underlying resources. The store must not be used
	// afterwards.
	Close() error
}

var (
	_ PageStore = (*MemStore)(nil)
	_ PageStore = (*FileStore)(nil)
)

// ErrInjectedCrash is returned by every durable-storage operation after a
// FaultInjector has fired: the process is considered dead from that point,
// exactly as if kill -9 had landed between two syscalls.
var ErrInjectedCrash = errors.New("storage: injected crash")

// FaultInjector simulates storage faults for the recovery tests. Its
// original model is kill -9 at a chosen durability barrier: writes and
// fsyncs call its hooks; at the Nth sync point the fsync itself fails and
// every subsequent write or sync fails too, so everything written before the
// kill survives (it was in the OS buffer cache) while nothing after it can
// happen — the recovered state must land between the last acknowledged
// operation and the last issued one.
//
// Beyond fail-stop, an injector may carry a FaultScript (NewScriptedInjector
// / NewSeededInjector, fault.go) that injects transient/permanent EIO, torn
// page writes, bit flips, fsync failures, and latency spikes at every
// FileStore/WAL I/O site.
//
// A nil *FaultInjector is valid and never fires, so production paths can
// call the hooks unconditionally.
type FaultInjector struct {
	killAt int64 // 1-based sync point that dies; 0 = never
	syncs  atomic.Int64
	dead   atomic.Bool

	// Scriptable fault plane (fault.go). script is set at construction and
	// never mutated; counts holds per-op attempt sequence numbers; injected
	// counts non-latency faults delivered. permPages/permOps latch targets
	// hit by a permanent fault so every later attempt fails too.
	script    FaultScript
	counts    [nFaultOps]atomic.Int64
	injected  atomic.Int64
	permMu    sync.Mutex
	permPages map[PageID]struct{}
	permOps   [nFaultOps]bool
}

// NewFaultInjector returns an injector that kills the process model at the
// killAtSync-th sync point (1-based). killAtSync <= 0 never fires.
func NewFaultInjector(killAtSync int64) *FaultInjector {
	return &FaultInjector{killAt: killAtSync}
}

// BeforeWrite gates a write syscall: it fails iff the injector already fired.
func (fi *FaultInjector) BeforeWrite() error {
	if fi == nil || !fi.dead.Load() {
		return nil
	}
	return ErrInjectedCrash
}

// BeforeSync gates an fsync at the checkpoint writer. It counts the sync
// point and, at the configured kill point, marks the injector dead and fails
// this fsync too. It is SyncPoint(OpCheckpointSync); the FileStore and WAL
// call SyncPoint with their own op so scripted sync faults can tell the
// sites apart while the legacy kill counter stays one global sequence.
func (fi *FaultInjector) BeforeSync() error {
	return fi.SyncPoint(OpCheckpointSync)
}

// SyncPoints returns how many sync points have been observed so far.
func (fi *FaultInjector) SyncPoints() int64 {
	if fi == nil {
		return 0
	}
	return fi.syncs.Load()
}

// Dead reports whether the injector has fired.
func (fi *FaultInjector) Dead() bool { return fi != nil && fi.dead.Load() }
