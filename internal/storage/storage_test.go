package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDiskAllocateReadWrite(t *testing.T) {
	d := NewDisk()
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == NilPage {
		t.Fatal("allocated NilPage")
	}
	var buf [PageSize]byte
	buf[0] = 0xAB
	buf[PageSize-1] = 0xCD
	if err := d.WritePage(id, &buf); err != nil {
		t.Fatal(err)
	}
	var got [PageSize]byte
	if err := d.ReadPage(id, &got); err != nil {
		t.Fatal(err)
	}
	if got != buf {
		t.Fatal("read back mismatch")
	}
	if d.PhysicalReads() != 1 || d.PhysicalWrites() != 1 {
		t.Fatalf("counters: r=%d w=%d", d.PhysicalReads(), d.PhysicalWrites())
	}
}

func TestDiskFreedPageErrors(t *testing.T) {
	d := NewDisk()
	id, _ := d.Allocate()
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	var buf [PageSize]byte
	if err := d.ReadPage(id, &buf); err == nil {
		t.Fatal("read of freed page should error")
	}
	if err := d.WritePage(id, &buf); err == nil {
		t.Fatal("write of freed page should error")
	}
	if err := d.Free(id); err == nil {
		t.Fatal("double free should error")
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 2)
	a, _ := p.Allocate()
	if err := p.Write(a, func(data []byte) { data[0] = 1 }); err != nil {
		t.Fatal(err)
	}
	// Freshly allocated pages are resident: no read miss yet.
	if s := p.Stats(); s.Misses != 0 {
		t.Fatalf("misses = %d after allocate+write", s.Misses)
	}
	if err := p.Read(a, func(data []byte) {
		if data[0] != 1 {
			t.Error("lost write")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Hits != 2 { // write + read both hit the fresh frame
		t.Fatalf("hits = %d, want 2", s.Hits)
	}
}

func TestBufferPoolEvictionLRU(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 2)
	a, _ := p.Allocate()
	b, _ := p.Allocate()
	c, _ := p.Allocate() // evicts a (LRU)
	// Write distinct markers.
	for i, id := range []PageID{a, b, c} {
		v := byte(i + 1)
		if err := p.Write(id, func(data []byte) { data[0] = v }); err != nil {
			t.Fatal(err)
		}
	}
	// After writing a, b, c with capacity 2 the pool holds the 2 MRU pages.
	base := p.Stats().Misses
	if err := p.Read(c, func(data []byte) {
		if data[0] != 3 {
			t.Error("c corrupted")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Misses != base {
		t.Fatal("c should be resident")
	}
	if err := p.Read(a, func(data []byte) {
		if data[0] != 1 {
			t.Error("a lost its dirty data across eviction")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Misses != base+1 {
		t.Fatal("a should have been a miss")
	}
}

func TestBufferPoolWriteBackOnEviction(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 1)
	a, _ := p.Allocate()
	if err := p.Write(a, func(data []byte) { data[7] = 0x77 }); err != nil {
		t.Fatal(err)
	}
	b, _ := p.Allocate() // evicts dirty a -> must write back
	_ = b
	if d.PhysicalWrites() == 0 {
		t.Fatal("dirty page not written back on eviction")
	}
	if err := p.Read(a, func(data []byte) {
		if data[7] != 0x77 {
			t.Error("data lost through eviction")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolManyPages(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, DefaultBufferPages)
	const n = 500
	ids := make([]PageID, n)
	for i := range ids {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		v := byte(i % 251)
		if err := p.Write(id, func(data []byte) { data[100] = v }); err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		want := byte(i % 251)
		if err := p.Read(id, func(data []byte) {
			if data[100] != want {
				t.Errorf("page %d: got %d want %d", id, data[100], want)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if p.Resident() > DefaultBufferPages {
		t.Fatalf("resident %d exceeds capacity", p.Resident())
	}
}

func TestBufferPoolFree(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 4)
	a, _ := p.Allocate()
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Read(a, func([]byte) {}); err == nil {
		t.Fatal("read of freed page should fail")
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 8)
	a, _ := p.Allocate()
	if err := p.Write(a, func(data []byte) { data[0] = 9 }); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if d.PhysicalWrites() == 0 {
		t.Fatal("FlushAll wrote nothing")
	}
	// Page remains resident and readable.
	if err := p.Read(a, func(data []byte) {
		if data[0] != 9 {
			t.Error("flush corrupted page")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewBufferPool(NewDisk(), 0)
}

func TestBufferPoolConcurrentAccess(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 16)
	const pages = 64
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i], _ = p.Allocate()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(g*31+i)%pages]
				if err := p.Write(id, func(data []byte) { data[g]++ }); err != nil {
					errs <- err
					return
				}
				if err := p.Read(id, func(data []byte) {}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 1)
	a, _ := p.Allocate()
	b, _ := p.Allocate() // evicts a
	_ = p.Read(a, func([]byte) {})
	_ = p.Read(b, func([]byte) {})
	_ = p.Read(a, func([]byte) {})
	s := p.Stats()
	// a was evicted by b's allocation, read(a)=miss, read(b)=miss (evicted
	// by a), read(a)=miss again.
	if s.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (%+v)", s.Misses, s)
	}
}

func TestStripeCountPureFunctionOfCapacity(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1}, {2, 1}, {16, 1}, {31, 1}, {32, 2}, {50, 2},
		{64, 4}, {128, 8}, {384, 8}, {10_000, 8},
	}
	for _, c := range cases {
		p := NewBufferPool(NewDisk(), c.capacity)
		if got := p.Stripes(); got != c.want {
			t.Errorf("stripes(capacity=%d) = %d, want %d", c.capacity, got, c.want)
		}
		// The stripe budgets must sum to the pool capacity exactly.
		total := 0
		for i := range p.stripes {
			total += p.stripes[i].capacity
		}
		if total != c.capacity {
			t.Errorf("capacity %d: stripe budgets sum to %d", c.capacity, total)
		}
	}
}

// TestStatsExactUnderConcurrentReaders pins down the optimistic fast path's
// accounting: with every page resident, N goroutines hammering Read must
// produce exactly N*perG hits — a fast-path hit that went uncounted (or
// double-counted) shows up as a wrong total, not a flaky ratio.
func TestStatsExactUnderConcurrentReaders(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 64) // multiple stripes; everything stays resident
	const pages = 48
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i], _ = p.Allocate()
	}
	base := p.Stats()
	if base.Misses != 0 {
		t.Fatalf("fresh allocations counted as misses: %+v", base)
	}
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := p.Read(ids[(g*13+i)%pages], func([]byte) {}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := p.Stats()
	if s.Misses != 0 {
		t.Fatalf("resident working set missed %d times", s.Misses)
	}
	if got, want := s.Hits-base.Hits, int64(goroutines*perG); got != want {
		t.Fatalf("hits = %d, want exactly %d", got, want)
	}
}

// TestStatsExactUnderConcurrentThrash is the same exactness claim when the
// working set overflows the pool: every Read is either a hit or a miss,
// never both, never neither, even while evictions race the fast path.
func TestStatsExactUnderConcurrentThrash(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 32)
	const pages = 96
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i], _ = p.Allocate()
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	base := p.Stats()
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := p.Read(ids[(g*29+i*7)%pages], func([]byte) {}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := p.Stats()
	accesses := (s.Hits - base.Hits) + (s.Misses - base.Misses)
	if want := int64(goroutines * perG); accesses != want {
		t.Fatalf("hits+misses = %d, want exactly %d (%+v)", accesses, want, s)
	}
	if s.Misses == base.Misses {
		t.Fatal("thrashing working set produced no misses; test is not exercising eviction")
	}
}

// TestStripedPoolEvictionStillLRU: with multiple stripes, eviction within a
// stripe must still pick the least recently used unpinned frame (the global
// access clock makes "least recent" exact, not approximate).
func TestStripedPoolEvictionStillLRU(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 32) // 2 stripes of 16
	if p.Stripes() < 2 {
		t.Skip("striping thresholds changed; test needs >= 2 stripes")
	}
	// Fill one stripe to capacity, then touch all but one of its pages and
	// force an eviction: the untouched page must be the victim.
	s0 := &p.stripes[0]
	var inStripe []PageID
	for len(inStripe) < s0.capacity+1 {
		id, _ := d.Allocate()
		if p.stripeFor(id) == s0 {
			inStripe = append(inStripe, id)
		}
	}
	resident := inStripe[:s0.capacity]
	overflow := inStripe[s0.capacity]
	for _, id := range resident {
		if err := p.Read(id, func([]byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	victim := resident[3]
	for _, id := range resident {
		if id == victim {
			continue
		}
		if err := p.Read(id, func([]byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Read(overflow, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	base := p.Stats().Misses
	if err := p.Read(victim, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Misses != base+1 {
		t.Fatal("LRU page was not the eviction victim")
	}
	// Reloading the victim evicted the now-eldest frame, not the most
	// recently used overflow page, which must still be resident.
	if err := p.Read(overflow, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Misses != base+1 {
		t.Fatal("recently used page was evicted instead of the LRU one")
	}
}

func ExampleBufferPool() {
	disk := NewDisk()
	pool := NewBufferPool(disk, DefaultBufferPages)
	id, _ := pool.Allocate()
	_ = pool.Write(id, func(data []byte) { data[0] = 42 })
	_ = pool.Read(id, func(data []byte) { fmt.Println(data[0]) })
	// Output: 42
}

func TestFullPoolBlocksUntilUnpin(t *testing.T) {
	// With a 1-frame pool, a fetch that finds the only frame pinned by
	// another goroutine must wait for the pin to release (back-pressure),
	// not evict the pinned frame and not fail.
	d := NewDisk()
	p := NewBufferPool(d, 1)
	a, _ := p.Allocate()
	b, _ := d.Allocate()

	holding := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = p.Read(a, func([]byte) {
			close(holding)
			<-release
		})
	}()
	<-holding

	done := make(chan error, 1)
	go func() { done <- p.Read(b, func([]byte) {}) }()
	select {
	case err := <-done:
		t.Fatalf("fetch completed while the only frame was pinned (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
		// Still blocked: the pinned frame was not evicted from under its
		// reader.
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("fetch after unpin: %v", err)
	}
}

func TestTinyPoolConcurrentReaders(t *testing.T) {
	// More concurrent readers than frames: every read must still succeed
	// (waiting as needed), and pinned frames must never be evicted.
	d := NewDisk()
	p := NewBufferPool(d, 2)
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(w+i)%len(ids)]
				if err := p.Read(id, func(data []byte) {}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFreePinnedPageRejected(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 2)
	a, _ := p.Allocate()
	var freeErr error
	if err := p.Read(a, func([]byte) {
		freeErr = p.Free(a)
	}); err != nil {
		t.Fatal(err)
	}
	if freeErr == nil {
		t.Fatal("freeing a pinned page should fail")
	}
	if err := p.Free(a); err != nil {
		t.Fatalf("freeing after unpin: %v", err)
	}
}

func TestReadUnallocatedThroughPool(t *testing.T) {
	p := NewBufferPool(NewDisk(), 2)
	if err := p.Read(PageID(12345), func([]byte) {}); err == nil {
		t.Fatal("read of never-allocated page should fail")
	}
	if err := p.Read(NilPage, func([]byte) {}); err == nil {
		t.Fatal("read of nil page should fail")
	}
}

func TestDiskLatencyInjection(t *testing.T) {
	d := NewDisk()
	d.SetLatency(2 * time.Millisecond)
	p := NewBufferPool(d, 1)
	a, _ := p.Allocate()
	bpg, _ := p.Allocate() // evicts a (write-back pays latency)
	_ = bpg
	start := time.Now()
	_ = p.Read(a, func([]byte) {}) // miss: pays read latency
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestDiskFailedAccessNotCounted(t *testing.T) {
	d := NewDisk()
	// A generous latency makes an accidental sleep on the failure path show
	// up as a timing violation as well as a counter violation.
	d.SetLatency(200 * time.Millisecond)
	var buf [PageSize]byte

	start := time.Now()
	if err := d.ReadPage(PageID(999), &buf); err == nil {
		t.Fatal("read of unallocated page should fail")
	}
	if err := d.WritePage(PageID(999), &buf); err == nil {
		t.Fatal("write of unallocated page should fail")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("failed accesses slept the injected latency: %v", elapsed)
	}
	if r, w := d.PhysicalReads(), d.PhysicalWrites(); r != 0 || w != 0 {
		t.Fatalf("failed accesses counted as I/O: reads=%d writes=%d", r, w)
	}

	d.SetLatency(0)
	id, _ := d.Allocate()
	if err := d.WritePage(id, &buf); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(id, &buf); err != nil {
		t.Fatal(err)
	}
	if r, w := d.PhysicalReads(), d.PhysicalWrites(); r != 1 || w != 1 {
		t.Fatalf("successful accesses miscounted: reads=%d writes=%d", r, w)
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(id, &buf); err == nil {
		t.Fatal("read of freed page should fail")
	}
	if r := d.PhysicalReads(); r != 1 {
		t.Fatalf("failed read after free counted: reads=%d", r)
	}
}
