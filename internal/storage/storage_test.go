package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDiskAllocateReadWrite(t *testing.T) {
	d := NewDisk()
	id := d.Allocate()
	if id == NilPage {
		t.Fatal("allocated NilPage")
	}
	var buf [PageSize]byte
	buf[0] = 0xAB
	buf[PageSize-1] = 0xCD
	if err := d.write(id, &buf); err != nil {
		t.Fatal(err)
	}
	var got [PageSize]byte
	if err := d.read(id, &got); err != nil {
		t.Fatal(err)
	}
	if got != buf {
		t.Fatal("read back mismatch")
	}
	if d.PhysicalReads() != 1 || d.PhysicalWrites() != 1 {
		t.Fatalf("counters: r=%d w=%d", d.PhysicalReads(), d.PhysicalWrites())
	}
}

func TestDiskFreedPageErrors(t *testing.T) {
	d := NewDisk()
	id := d.Allocate()
	d.Free(id)
	var buf [PageSize]byte
	if err := d.read(id, &buf); err == nil {
		t.Fatal("read of freed page should error")
	}
	if err := d.write(id, &buf); err == nil {
		t.Fatal("write of freed page should error")
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 2)
	a, _ := p.Allocate()
	if err := p.Write(a, func(data []byte) { data[0] = 1 }); err != nil {
		t.Fatal(err)
	}
	// Freshly allocated pages are resident: no read miss yet.
	if s := p.Stats(); s.Misses != 0 {
		t.Fatalf("misses = %d after allocate+write", s.Misses)
	}
	if err := p.Read(a, func(data []byte) {
		if data[0] != 1 {
			t.Error("lost write")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Hits != 2 { // write + read both hit the fresh frame
		t.Fatalf("hits = %d, want 2", s.Hits)
	}
}

func TestBufferPoolEvictionLRU(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 2)
	a, _ := p.Allocate()
	b, _ := p.Allocate()
	c, _ := p.Allocate() // evicts a (LRU)
	// Write distinct markers.
	for i, id := range []PageID{a, b, c} {
		v := byte(i + 1)
		if err := p.Write(id, func(data []byte) { data[0] = v }); err != nil {
			t.Fatal(err)
		}
	}
	// After writing a, b, c with capacity 2 the pool holds the 2 MRU pages.
	base := p.Stats().Misses
	if err := p.Read(c, func(data []byte) {
		if data[0] != 3 {
			t.Error("c corrupted")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Misses != base {
		t.Fatal("c should be resident")
	}
	if err := p.Read(a, func(data []byte) {
		if data[0] != 1 {
			t.Error("a lost its dirty data across eviction")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Misses != base+1 {
		t.Fatal("a should have been a miss")
	}
}

func TestBufferPoolWriteBackOnEviction(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 1)
	a, _ := p.Allocate()
	if err := p.Write(a, func(data []byte) { data[7] = 0x77 }); err != nil {
		t.Fatal(err)
	}
	b, _ := p.Allocate() // evicts dirty a -> must write back
	_ = b
	if d.PhysicalWrites() == 0 {
		t.Fatal("dirty page not written back on eviction")
	}
	if err := p.Read(a, func(data []byte) {
		if data[7] != 0x77 {
			t.Error("data lost through eviction")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolManyPages(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, DefaultBufferPages)
	const n = 500
	ids := make([]PageID, n)
	for i := range ids {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		v := byte(i % 251)
		if err := p.Write(id, func(data []byte) { data[100] = v }); err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		want := byte(i % 251)
		if err := p.Read(id, func(data []byte) {
			if data[100] != want {
				t.Errorf("page %d: got %d want %d", id, data[100], want)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if p.Resident() > DefaultBufferPages {
		t.Fatalf("resident %d exceeds capacity", p.Resident())
	}
}

func TestBufferPoolFree(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 4)
	a, _ := p.Allocate()
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Read(a, func([]byte) {}); err == nil {
		t.Fatal("read of freed page should fail")
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 8)
	a, _ := p.Allocate()
	if err := p.Write(a, func(data []byte) { data[0] = 9 }); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if d.PhysicalWrites() == 0 {
		t.Fatal("FlushAll wrote nothing")
	}
	// Page remains resident and readable.
	if err := p.Read(a, func(data []byte) {
		if data[0] != 9 {
			t.Error("flush corrupted page")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewBufferPool(NewDisk(), 0)
}

func TestBufferPoolConcurrentAccess(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 16)
	const pages = 64
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i], _ = p.Allocate()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(g*31+i)%pages]
				if err := p.Write(id, func(data []byte) { data[g]++ }); err != nil {
					errs <- err
					return
				}
				if err := p.Read(id, func(data []byte) {}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 1)
	a, _ := p.Allocate()
	b, _ := p.Allocate() // evicts a
	_ = p.Read(a, func([]byte) {})
	_ = p.Read(b, func([]byte) {})
	_ = p.Read(a, func([]byte) {})
	s := p.Stats()
	// a was evicted by b's allocation, read(a)=miss, read(b)=miss (evicted
	// by a), read(a)=miss again.
	if s.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (%+v)", s.Misses, s)
	}
}

func ExampleBufferPool() {
	disk := NewDisk()
	pool := NewBufferPool(disk, DefaultBufferPages)
	id, _ := pool.Allocate()
	_ = pool.Write(id, func(data []byte) { data[0] = 42 })
	_ = pool.Read(id, func(data []byte) { fmt.Println(data[0]) })
	// Output: 42
}

func TestAllFramesPinnedError(t *testing.T) {
	// With a 1-frame pool, fetching a second page while the first is
	// pinned must fail cleanly instead of evicting the pinned frame.
	d := NewDisk()
	p := NewBufferPool(d, 1)
	a, _ := p.Allocate()
	b := d.Allocate()
	var innerErr error
	if err := p.Read(a, func([]byte) {
		innerErr = p.Read(b, func([]byte) {})
	}); err != nil {
		t.Fatal(err)
	}
	if innerErr == nil {
		t.Fatal("nested fetch with all frames pinned should fail")
	}
	// After the pin is released, the fetch succeeds.
	if err := p.Read(b, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
}

func TestFreePinnedPageRejected(t *testing.T) {
	d := NewDisk()
	p := NewBufferPool(d, 2)
	a, _ := p.Allocate()
	var freeErr error
	if err := p.Read(a, func([]byte) {
		freeErr = p.Free(a)
	}); err != nil {
		t.Fatal(err)
	}
	if freeErr == nil {
		t.Fatal("freeing a pinned page should fail")
	}
	if err := p.Free(a); err != nil {
		t.Fatalf("freeing after unpin: %v", err)
	}
}

func TestReadUnallocatedThroughPool(t *testing.T) {
	p := NewBufferPool(NewDisk(), 2)
	if err := p.Read(PageID(12345), func([]byte) {}); err == nil {
		t.Fatal("read of never-allocated page should fail")
	}
	if err := p.Read(NilPage, func([]byte) {}); err == nil {
		t.Fatal("read of nil page should fail")
	}
}

func TestDiskLatencyInjection(t *testing.T) {
	d := NewDisk()
	d.SetLatency(2 * time.Millisecond)
	p := NewBufferPool(d, 1)
	a, _ := p.Allocate()
	bpg, _ := p.Allocate() // evicts a (write-back pays latency)
	_ = bpg
	start := time.Now()
	_ = p.Read(a, func([]byte) {}) // miss: pays read latency
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}
