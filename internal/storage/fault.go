package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// This file is the storage fault plane: a typed error taxonomy for media
// faults, a scriptable fault injector at the PageStore/WAL boundary, and the
// bounded-backoff retry policy the buffer pool and the WAL drive transient
// faults through.
//
// The taxonomy splits faults along one axis that matters to callers — does
// retrying help? Transient faults (a flaky bus returning EIO, an fsync that
// fails once) are retried with exponential backoff and never surface when the
// retry wins. Persistent faults (a latched bad sector, exhausted retries, a
// checksum mismatch) surface as errors and drive the Store's health state
// machine toward read-only degradation (see vpindex health.go).

// FaultOp identifies one I/O site the injector can interpose on.
type FaultOp uint8

const (
	// OpPageRead is a FileStore.ReadPage transfer.
	OpPageRead FaultOp = iota
	// OpPageWrite is a FileStore.WritePage transfer.
	OpPageWrite
	// OpPageSync is a FileStore.Sync barrier.
	OpPageSync
	// OpWALAppend is a WAL record write.
	OpWALAppend
	// OpWALSync is a WAL fsync (group commit, rotation, Sync).
	OpWALSync
	// OpCheckpointSync is a checkpoint file or directory fsync.
	OpCheckpointSync

	nFaultOps
)

// String names the op for error messages.
func (op FaultOp) String() string {
	switch op {
	case OpPageRead:
		return "page-read"
	case OpPageWrite:
		return "page-write"
	case OpPageSync:
		return "page-sync"
	case OpWALAppend:
		return "wal-append"
	case OpWALSync:
		return "wal-sync"
	case OpCheckpointSync:
		return "checkpoint-sync"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// FaultKind classifies what the injector does to one I/O.
type FaultKind uint8

const (
	// FaultNone lets the I/O through untouched.
	FaultNone FaultKind = iota
	// FaultTransientEIO fails this one attempt with a retryable I/O error.
	FaultTransientEIO
	// FaultPermanentEIO latches the target (the page, or the whole op for
	// sync/append sites) as bad: this and every later attempt fails.
	FaultPermanentEIO
	// FaultTornWrite lets a page write succeed but persists only a prefix of
	// the on-disk slot — the checksum catches it on the next read.
	FaultTornWrite
	// FaultBitFlip lets a page write succeed but flips one bit of the
	// persisted image — bit rot, caught by the checksum on the next read.
	FaultBitFlip
	// FaultSyncFail fails one fsync attempt (retryable).
	FaultSyncFail
	// FaultLatency delays the I/O without failing it.
	FaultLatency
)

// String names the kind for error messages.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultTransientEIO:
		return "transient-eio"
	case FaultPermanentEIO:
		return "permanent-eio"
	case FaultTornWrite:
		return "torn-write"
	case FaultBitFlip:
		return "bit-flip"
	case FaultSyncFail:
		return "sync-fail"
	case FaultLatency:
		return "latency"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FaultDecision is one scripted outcome for one I/O attempt.
type FaultDecision struct {
	Kind FaultKind
	// Latency delays the attempt before the Kind applies (also honored with
	// FaultNone/FaultLatency for pure latency spikes).
	Latency time.Duration
}

// FaultScript decides the fate of each I/O attempt. seq is the 1-based
// attempt counter of op (each retry is a fresh attempt with a fresh seq);
// page is the page id for page ops and 0 otherwise. Implementations must be
// safe for concurrent use.
type FaultScript interface {
	Decide(op FaultOp, seq int64, page PageID) FaultDecision
}

// FaultRule is one deterministic trigger of a scripted schedule.
type FaultRule struct {
	// Op is the I/O site the rule watches.
	Op FaultOp
	// Seq fires on the Seq-th attempt of Op (1-based). 0 fires on every
	// attempt.
	Seq int64
	// Page restricts the rule to one page id (page ops only). 0 matches any.
	Page PageID
	// Kind is the injected fault.
	Kind FaultKind
	// Count bounds how many times the rule may fire; 0 is unlimited.
	Count int
	// Latency delays the attempt (useful alone with FaultLatency).
	Latency time.Duration
}

// scripted is the deterministic FaultScript behind Script.
type scripted struct {
	mu    sync.Mutex
	rules []FaultRule
	fired []int
}

// Script builds a deterministic fault schedule from rules; the first matching
// rule wins each attempt.
func Script(rules ...FaultRule) FaultScript {
	return &scripted{rules: rules, fired: make([]int, len(rules))}
}

func (s *scripted) Decide(op FaultOp, seq int64, page PageID) FaultDecision {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.rules {
		if r.Op != op {
			continue
		}
		if r.Seq != 0 && r.Seq != seq {
			continue
		}
		if r.Page != 0 && r.Page != page {
			continue
		}
		if r.Count > 0 && s.fired[i] >= r.Count {
			continue
		}
		s.fired[i]++
		return FaultDecision{Kind: r.Kind, Latency: r.Latency}
	}
	return FaultDecision{}
}

// FaultRates is the per-attempt probability profile of a seeded random
// schedule. Rates are independent probabilities in [0, 1]; the applicable
// ones are checked in declaration order and the first hit wins.
type FaultRates struct {
	// TransientEIO applies to page reads, page writes, and WAL appends.
	TransientEIO float64
	// PermanentEIO applies to the same sites and latches the target bad.
	PermanentEIO float64
	// TornWrite and BitFlip apply to page writes.
	TornWrite float64
	BitFlip   float64
	// SyncFail applies to every sync site (transient).
	SyncFail float64
	// Latency is the probability of a latency spike up to MaxLatency on any
	// attempt (independent of the fault outcome).
	Latency    float64
	MaxLatency time.Duration
}

// seeded is the probabilistic FaultScript behind SeededFaults.
type seeded struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rates FaultRates
}

// SeededFaults builds a reproducible probabilistic fault schedule: the same
// seed and the same sequence of attempts produce the same faults.
func SeededFaults(seed int64, rates FaultRates) FaultScript {
	return &seeded{rng: rand.New(rand.NewSource(seed)), rates: rates}
}

func (s *seeded) Decide(op FaultOp, _ int64, _ PageID) FaultDecision {
	s.mu.Lock()
	defer s.mu.Unlock()
	var d FaultDecision
	if s.rates.Latency > 0 && s.rng.Float64() < s.rates.Latency && s.rates.MaxLatency > 0 {
		d.Latency = time.Duration(s.rng.Int63n(int64(s.rates.MaxLatency)) + 1)
		d.Kind = FaultLatency
	}
	switch op {
	case OpPageRead, OpWALAppend:
		switch {
		case s.rng.Float64() < s.rates.TransientEIO:
			d.Kind = FaultTransientEIO
		case s.rng.Float64() < s.rates.PermanentEIO:
			d.Kind = FaultPermanentEIO
		}
	case OpPageWrite:
		switch {
		case s.rng.Float64() < s.rates.TransientEIO:
			d.Kind = FaultTransientEIO
		case s.rng.Float64() < s.rates.PermanentEIO:
			d.Kind = FaultPermanentEIO
		case s.rng.Float64() < s.rates.TornWrite:
			d.Kind = FaultTornWrite
		case s.rng.Float64() < s.rates.BitFlip:
			d.Kind = FaultBitFlip
		}
	case OpPageSync, OpWALSync, OpCheckpointSync:
		if s.rng.Float64() < s.rates.SyncFail {
			d.Kind = FaultSyncFail
		}
	}
	return d
}

// FaultError is an injected (or classified) media fault. It unwraps to
// syscall.EIO so errors.Is(err, syscall.EIO) matches, and its Transient
// method feeds IsTransient.
type FaultError struct {
	Op   FaultOp
	Page PageID
	Kind FaultKind
}

func (e *FaultError) Error() string {
	if e.Page != NilPage {
		return fmt.Sprintf("storage: injected %s fault on %s of page %d", e.Kind, e.Op, e.Page)
	}
	return fmt.Sprintf("storage: injected %s fault on %s", e.Kind, e.Op)
}

// Unwrap ties every injected fault to the canonical I/O errno.
func (e *FaultError) Unwrap() error { return syscall.EIO }

// Transient reports whether retrying the attempt may succeed.
func (e *FaultError) Transient() bool {
	return e.Kind == FaultTransientEIO || e.Kind == FaultSyncFail
}

// retriesExhausted marks a transient fault that survived a full retry budget:
// the inner cause is preserved for inspection, but the wrapper reports
// non-transient so callers escalate instead of retrying again. errors.As
// finds the outermost Transient() first, which is exactly the override.
type retriesExhausted struct{ err error }

func (e *retriesExhausted) Error() string {
	return fmt.Sprintf("storage: retries exhausted: %v", e.err)
}
func (e *retriesExhausted) Unwrap() error   { return e.err }
func (e *retriesExhausted) Transient() bool { return false }

// IsTransient reports whether err is a media fault worth retrying. The
// outermost Transient() in the unwrap chain wins, so a retries-exhausted
// wrapper around a transient fault correctly reads as non-transient.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// IsMediaFault reports whether err is a storage-media fault (injected or
// real), as opposed to a caller bug like reading an unallocated page. Media
// faults that are not transient are what degrade a Store to read-only.
func IsMediaFault(err error) bool {
	var fe *FaultError
	if errors.As(err, &fe) {
		return true
	}
	return errors.Is(err, ErrCorruptPage) || errors.Is(err, syscall.EIO)
}

// RetryPolicy bounds the exponential-backoff retry loop wrapped around the
// buffer pool's page I/O and the WAL's append/fsync paths. Only transient
// faults (IsTransient) are retried; everything else returns immediately.
// The zero value takes the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (first try included). <= 0
	// takes DefaultRetryAttempts.
	MaxAttempts int
	// BaseDelay is the sleep after the first failed attempt; it doubles per
	// retry. <= 0 takes DefaultRetryBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. <= 0 takes DefaultRetryMaxDelay.
	MaxDelay time.Duration
}

// Retry policy defaults: four attempts spanning ~7 ms of backoff — long
// enough to ride out a transient controller hiccup, short enough that a
// genuinely bad device degrades the store quickly instead of stalling it.
const (
	DefaultRetryAttempts  = 4
	DefaultRetryBaseDelay = time.Millisecond
	DefaultRetryMaxDelay  = 50 * time.Millisecond
)

// DefaultRetryPolicy returns the default bounded-backoff policy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: DefaultRetryAttempts,
		BaseDelay:   DefaultRetryBaseDelay,
		MaxDelay:    DefaultRetryMaxDelay,
	}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryMaxDelay
	}
	return p
}

// Do runs op, retrying transient failures with exponential backoff up to the
// attempt budget. retries, when non-nil, counts the retry attempts taken.
// When the budget runs out on a transient fault the error comes back wrapped
// as non-transient (retries exhausted), so callers escalate exactly once.
func (p RetryPolicy) Do(retries *atomic.Int64, op func() error) error {
	p = p.withDefaults()
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !IsTransient(err) {
			return err
		}
		if attempt >= p.MaxAttempts {
			return &retriesExhausted{err: err}
		}
		if retries != nil {
			retries.Add(1)
		}
		time.Sleep(delay)
		delay *= 2
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// SyncDir fsyncs a directory so a freshly created file's directory entry is
// durable. Deliberately not routed through any fault injector: it runs on
// the Open paths, where an injected kill would fail store creation rather
// than model a crash.
func SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storage: open dir %s: %w", path, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: fsync dir %s: %w", path, err)
	}
	return nil
}

// --- FaultInjector script integration -------------------------------------
//
// The legacy kill -9 model (NewFaultInjector: die at the Nth sync point)
// lives in pagestore.go. The hooks below extend the same injector into the
// scriptable fault plane: every FileStore/WAL I/O site consults its op hook,
// which runs the legacy crash bookkeeping first and then the script, if any.

// NewScriptedInjector returns an injector driven by a deterministic rule
// schedule (see FaultRule / Script).
func NewScriptedInjector(rules ...FaultRule) *FaultInjector {
	return &FaultInjector{script: Script(rules...)}
}

// NewSeededInjector returns an injector driven by a seeded probabilistic
// schedule (see FaultRates / SeededFaults).
func NewSeededInjector(seed int64, rates FaultRates) *FaultInjector {
	return &FaultInjector{script: SeededFaults(seed, rates)}
}

// InjectedFaults returns how many non-latency faults the script has injected.
func (fi *FaultInjector) InjectedFaults() int64 {
	if fi == nil {
		return 0
	}
	return fi.injected.Load()
}

// decide consults the script for one attempt, applying latency in place.
func (fi *FaultInjector) decide(op FaultOp, page PageID) FaultDecision {
	if fi.script == nil {
		return FaultDecision{}
	}
	seq := fi.counts[op].Add(1)
	d := fi.script.Decide(op, seq, page)
	if d.Latency > 0 {
		time.Sleep(d.Latency)
	}
	return d
}

// permPage reports (and latches) whether a page carries a permanent fault.
func (fi *FaultInjector) permPage(id PageID) bool {
	fi.permMu.Lock()
	defer fi.permMu.Unlock()
	_, ok := fi.permPages[id]
	return ok
}

func (fi *FaultInjector) latchPage(id PageID) {
	fi.permMu.Lock()
	if fi.permPages == nil {
		fi.permPages = make(map[PageID]struct{})
	}
	fi.permPages[id] = struct{}{}
	fi.permMu.Unlock()
}

func (fi *FaultInjector) permOp(op FaultOp) bool {
	fi.permMu.Lock()
	defer fi.permMu.Unlock()
	return fi.permOps[op]
}

func (fi *FaultInjector) latchOp(op FaultOp) {
	fi.permMu.Lock()
	fi.permOps[op] = true
	fi.permMu.Unlock()
}

// PageRead gates one FileStore read attempt of page id. Reads are not
// refused after a legacy kill (matching the pre-script behavior: a dead
// process model has no reads left to issue, and recovery opens a fresh
// injector anyway).
func (fi *FaultInjector) PageRead(id PageID) error {
	if fi == nil {
		return nil
	}
	if fi.permPage(id) {
		fi.injected.Add(1)
		return &FaultError{Op: OpPageRead, Page: id, Kind: FaultPermanentEIO}
	}
	switch d := fi.decide(OpPageRead, id); d.Kind {
	case FaultTransientEIO:
		fi.injected.Add(1)
		return &FaultError{Op: OpPageRead, Page: id, Kind: FaultTransientEIO}
	case FaultPermanentEIO:
		fi.injected.Add(1)
		fi.latchPage(id)
		return &FaultError{Op: OpPageRead, Page: id, Kind: FaultPermanentEIO}
	}
	return nil
}

// PageWrite gates one FileStore write attempt of page id. A nil error with a
// non-FaultNone kind instructs the store to corrupt the persisted image
// (torn prefix or bit flip) while reporting success to the caller — exactly
// how real silent corruption behaves.
func (fi *FaultInjector) PageWrite(id PageID) (FaultKind, error) {
	if fi == nil {
		return FaultNone, nil
	}
	if fi.dead.Load() {
		return FaultNone, ErrInjectedCrash
	}
	if fi.permPage(id) {
		fi.injected.Add(1)
		return FaultNone, &FaultError{Op: OpPageWrite, Page: id, Kind: FaultPermanentEIO}
	}
	switch d := fi.decide(OpPageWrite, id); d.Kind {
	case FaultTransientEIO:
		fi.injected.Add(1)
		return FaultNone, &FaultError{Op: OpPageWrite, Page: id, Kind: FaultTransientEIO}
	case FaultPermanentEIO:
		fi.injected.Add(1)
		fi.latchPage(id)
		return FaultNone, &FaultError{Op: OpPageWrite, Page: id, Kind: FaultPermanentEIO}
	case FaultTornWrite, FaultBitFlip:
		fi.injected.Add(1)
		return d.Kind, nil
	}
	return FaultNone, nil
}

// WALAppend gates one WAL record write attempt. It runs before any byte
// reaches the log file, so a transient fault is retryable without poisoning
// the segment.
func (fi *FaultInjector) WALAppend() error {
	if fi == nil {
		return nil
	}
	if fi.dead.Load() {
		return ErrInjectedCrash
	}
	if fi.permOp(OpWALAppend) {
		fi.injected.Add(1)
		return &FaultError{Op: OpWALAppend, Kind: FaultPermanentEIO}
	}
	switch d := fi.decide(OpWALAppend, NilPage); d.Kind {
	case FaultTransientEIO:
		fi.injected.Add(1)
		return &FaultError{Op: OpWALAppend, Kind: FaultTransientEIO}
	case FaultPermanentEIO:
		fi.injected.Add(1)
		fi.latchOp(OpWALAppend)
		return &FaultError{Op: OpWALAppend, Kind: FaultPermanentEIO}
	}
	return nil
}

// SyncPoint gates one fsync attempt at op. It carries the legacy kill -9
// counter — every sync site shares one global sequence, exactly as
// BeforeSync counted before — plus the scripted sync faults.
func (fi *FaultInjector) SyncPoint(op FaultOp) error {
	if fi == nil {
		return nil
	}
	if fi.dead.Load() {
		return ErrInjectedCrash
	}
	n := fi.syncs.Add(1)
	if fi.killAt > 0 && n >= fi.killAt {
		fi.dead.Store(true)
		return ErrInjectedCrash
	}
	if fi.permOp(op) {
		fi.injected.Add(1)
		return &FaultError{Op: op, Kind: FaultPermanentEIO}
	}
	switch d := fi.decide(op, NilPage); d.Kind {
	case FaultSyncFail, FaultTransientEIO:
		fi.injected.Add(1)
		return &FaultError{Op: op, Kind: FaultSyncFail}
	case FaultPermanentEIO:
		fi.injected.Add(1)
		fi.latchOp(op)
		return &FaultError{Op: op, Kind: FaultPermanentEIO}
	}
	return nil
}
