// Package storage is the page-store subsystem every index in this
// repository sits on: fixed-size pages (4 KB, Table 1), a PageStore
// interface with two backends, and an LRU buffer pool (50 pages by default).
// Every index stores its nodes through a BufferPool, so "query I/O" is
// exactly the number of buffer-pool misses a query incurs — the metric
// plotted throughout Section 6 of the paper.
//
// The MemStore backend is the paper's simulated disk: a map from PageID to
// page images with read/write counters and an optional per-access latency so
// wall-clock time tracks I/O the way a spinning disk would; it is the
// default and keeps benchmark figures comparable to the paper. The FileStore
// backend (filestore.go) is a real single-file page store with page-aligned
// pread/pwrite, fsync on Sync, and a free list persisted through a
// superblock — the durable half of the Store's WithDataDir mode.
package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the simulated disk page size in bytes (Table 1: 4 KB).
const PageSize = 4096

// DefaultBufferPages is the paper's default RAM buffer size (Table 1).
const DefaultBufferPages = 50

// PageID identifies a page on the simulated disk. Page 0 is never allocated
// so the zero value can mean "no page".
type PageID uint64

// NilPage is the invalid page id.
const NilPage PageID = 0

// Disk is the historical name of the simulated in-memory backend; it remains
// as an alias so existing call sites (and the deprecated New/NewVP
// constructors) keep compiling unchanged.
type Disk = MemStore

// MemStore is the simulated non-volatile store the paper measures against.
// It is safe for concurrent use: multiple buffer pools may front a single
// MemStore (the Store gives every partition its own pool over one shared
// store). Freed page ids are recycled by Allocate (most recently freed
// first), so long-lived stores with index rebuild churn do not leak ids.
type MemStore struct {
	mu      sync.Mutex
	pages   map[PageID][]byte
	free    []PageID // LIFO recycle stack of freed ids
	nextID  uint64
	closed  atomic.Bool
	reads   atomic.Int64
	writes  atomic.Int64
	latency atomic.Int64 // injected ns per successful physical access
}

// errMemClosed builds the after-Close error for op; it unwraps to
// os.ErrClosed, matching the FileStore contract.
func errMemClosed(op string) error {
	return fmt.Errorf("storage: %s on closed store: %w", op, os.ErrClosed)
}

// NewMemStore returns an empty in-memory page store.
func NewMemStore() *MemStore {
	return &MemStore{pages: make(map[PageID][]byte)}
}

// NewDisk returns an empty in-memory page store (historical name).
func NewDisk() *MemStore { return NewMemStore() }

// SetLatency injects an artificial delay per successful physical read/write.
// Zero (default) disables it. Safe to call while the store is in use.
func (d *MemStore) SetLatency(l time.Duration) { d.latency.Store(int64(l)) }

// Allocate reserves a page id, recycling the most recently freed id if any.
// The page contents start zeroed.
func (d *MemStore) Allocate() (PageID, error) {
	if d.closed.Load() {
		return NilPage, errMemClosed("allocate")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var id PageID
	if n := len(d.free); n > 0 {
		id = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		d.nextID++
		id = PageID(d.nextID)
	}
	d.pages[id] = make([]byte, PageSize)
	return id, nil
}

// Free releases a page back to the free list. Freed pages may not be read
// again until reallocated.
func (d *MemStore) Free(id PageID) error {
	if d.closed.Load() {
		return errMemClosed("free")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.pages[id]; !ok {
		return fmt.Errorf("storage: free of unallocated page %d", id)
	}
	delete(d.pages, id)
	d.free = append(d.free, id)
	return nil
}

// ReadPage copies the page image into dst. The physical-read counter and the
// injected latency apply only to successful accesses: a read of an
// unallocated page fails fast and is not an I/O.
func (d *MemStore) ReadPage(id PageID, dst *[PageSize]byte) error {
	if d.closed.Load() {
		return errMemClosed("read")
	}
	d.mu.Lock()
	src, ok := d.pages[id]
	if ok {
		copy(dst[:], src)
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if l := d.latency.Load(); l > 0 {
		time.Sleep(time.Duration(l))
	}
	d.reads.Add(1)
	return nil
}

// WritePage stores the page image. Counting and latency follow the same rule
// as ReadPage: only successful accesses are I/O.
func (d *MemStore) WritePage(id PageID, src *[PageSize]byte) error {
	if d.closed.Load() {
		return errMemClosed("write")
	}
	d.mu.Lock()
	dst, ok := d.pages[id]
	if ok {
		copy(dst, src[:])
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	if l := d.latency.Load(); l > 0 {
		time.Sleep(time.Duration(l))
	}
	d.writes.Add(1)
	return nil
}

// Sync is a no-op: the simulated store has no volatile write-back cache.
func (d *MemStore) Sync() error {
	if d.closed.Load() {
		return errMemClosed("sync")
	}
	return nil
}

// Close marks the store closed; every later operation fails with an error
// wrapping os.ErrClosed. Close is idempotent: repeated calls return nil.
func (d *MemStore) Close() error {
	d.closed.Store(true)
	return nil
}

// PhysicalReads returns the number of physical page reads so far.
func (d *MemStore) PhysicalReads() int64 { return d.reads.Load() }

// PhysicalWrites returns the number of physical page writes so far.
func (d *MemStore) PhysicalWrites() int64 { return d.writes.Load() }

// NumPages returns the number of live pages (diagnostics / space metric).
func (d *MemStore) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// FreePages returns the number of pages on the free list awaiting reuse.
func (d *MemStore) FreePages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.free)
}

// frame is a buffer-pool slot. Pin counts and the LRU stamp are atomic so
// the hit fast path can take them under the stripe's shared (read) lock,
// concurrently with other readers; dirty is atomic for the same reason
// (Write marks it outside any lock). The page image itself is only ever
// mutated by a Write closure while the frame is pinned.
type frame struct {
	id    PageID
	data  [PageSize]byte
	pins  atomic.Int32
	dirty atomic.Bool
	stamp atomic.Uint64 // pool-global LRU clock value of the last access
}

// poolStripe is one lock domain of a striped BufferPool: a slice of the page
// table plus its share of the frame budget. Pages are assigned to stripes by
// an id hash, so two goroutines touching unrelated pages almost never meet
// on the same lock.
type poolStripe struct {
	mu       sync.RWMutex
	cond     *sync.Cond // on the write side of mu; signaled on unpin / frame exit
	waiters  atomic.Int32
	capacity int
	frames   map[PageID]*frame
	// owned tracks every page this stripe's pool allocated and has not yet
	// freed, so Retire can release a whole abandoned index's disk footprint.
	owned map[PageID]struct{}
}

// Stripe sizing: a pool only splits into multiple LRU domains when every
// domain still gets a healthy number of frames, so tiny pools (including
// every exact-eviction unit-test configuration) keep the classic single-LRU
// behavior bit for bit. Stripes are a pure function of capacity — never of
// GOMAXPROCS — so eviction patterns and I/O counts are reproducible across
// machines.
const (
	maxPoolStripes     = 8
	minFramesPerStripe = 16
)

func stripeCount(capacity int) int {
	n := capacity / minFramesPerStripe
	if n > maxPoolStripes {
		n = maxPoolStripes
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// BufferPool is an LRU page cache in front of a Disk. It is safe for
// concurrent use by multiple goroutines and is lock-striped: the page table
// is sharded by page-id hash into independent stripes, each with its own
// RWMutex, frame budget and eviction state, so the shard×partition query
// fan-out above it stops serializing on a single pool mutex. A page hit
// takes only its stripe's read lock — lookups, pins, LRU stamps and the
// hit counter are all atomic — so concurrent readers of cached pages
// proceed in parallel; only misses (which pay the simulated disk access
// anyway) take the stripe's write lock.
//
// Eviction is exact LRU within a stripe: every access stamps the frame from
// a pool-global monotonic clock and a miss evicts the unpinned frame with
// the smallest stamp. A stripe whose frames are all pinned by other
// goroutines applies back-pressure — the fetch waits for a pin to release
// instead of failing — so even a pool smaller than the number of concurrent
// readers serves every request under its RAM budget. Pins are only ever
// held across the in-memory encode/decode closures of Read/Write, never
// across another pool access, which is what makes the waiting deadlock-free.
type BufferPool struct {
	disk     PageStore
	capacity int
	stripes  []poolStripe
	clock    atomic.Uint64
	hits     atomic.Int64
	misses   atomic.Int64
	writes   atomic.Int64
	retry    RetryPolicy // zero value = defaults (see RetryPolicy.Do)
	retries  atomic.Int64
}

// SetRetryPolicy configures the bounded-backoff retry loop wrapped around
// the pool's physical page reads and write-backs. Only transient faults
// (IsTransient) are retried. Must be called before the pool is shared
// between goroutines.
func (b *BufferPool) SetRetryPolicy(p RetryPolicy) { b.retry = p }

// Retries returns how many transient-fault retry attempts the pool has
// taken so far.
func (b *BufferPool) Retries() int64 { return b.retries.Load() }

// readPage and writePage are the pool's only physical I/O paths; both drive
// transient faults through the retry policy.
func (b *BufferPool) readPage(id PageID, dst *[PageSize]byte) error {
	return b.retry.Do(&b.retries, func() error { return b.disk.ReadPage(id, dst) })
}

func (b *BufferPool) writePage(id PageID, src *[PageSize]byte) error {
	return b.retry.Do(&b.retries, func() error { return b.disk.WritePage(id, src) })
}

// NewBufferPool returns a pool of the given capacity (pages) over any
// PageStore backend. Capacity must be >= 1.
func NewBufferPool(disk PageStore, capacity int) *BufferPool {
	if capacity < 1 {
		panic("storage: buffer pool capacity must be >= 1")
	}
	b := &BufferPool{
		disk:     disk,
		capacity: capacity,
		stripes:  make([]poolStripe, stripeCount(capacity)),
	}
	per := capacity / len(b.stripes)
	extra := capacity % len(b.stripes)
	for i := range b.stripes {
		s := &b.stripes[i]
		s.capacity = per
		if i < extra {
			s.capacity++
		}
		s.frames = make(map[PageID]*frame, s.capacity)
		s.owned = make(map[PageID]struct{})
		s.cond = sync.NewCond(&s.mu)
	}
	return b
}

// stripeFor hashes a page id to its stripe. Fibonacci hashing spreads the
// sequential ids the disk allocator hands out evenly across stripes.
func (b *BufferPool) stripeFor(id PageID) *poolStripe {
	if len(b.stripes) == 1 {
		return &b.stripes[0]
	}
	return &b.stripes[uint64(id)*0x9E3779B97F4A7C15%uint64(len(b.stripes))]
}

// Stripes returns the number of lock stripes (diagnostics).
func (b *BufferPool) Stripes() int { return len(b.stripes) }

// Disk returns the underlying page store.
func (b *BufferPool) Disk() PageStore { return b.disk }

// Capacity returns the pool capacity in pages.
func (b *BufferPool) Capacity() int { return b.capacity }

// Stats is a snapshot of buffer-pool activity.
type Stats struct {
	Misses int64 // pages read from disk (the paper's "I/O")
	Hits   int64 // pages served from the buffer
	Writes int64 // dirty pages written back
}

// Stats returns current counters.
func (b *BufferPool) Stats() Stats {
	return Stats{Misses: b.misses.Load(), Hits: b.hits.Load(), Writes: b.writes.Load()}
}

// evictOne writes back and drops the stripe's least recently used unpinned
// frame. evicted is false (with a nil error) when every frame is pinned —
// the caller waits for an unpin; err reports only real write-back failures.
// Caller holds s.mu (write). Pin counts cannot rise while the write lock is
// held (pinning needs at least the read lock), so a zero-pin victim stays
// evictable through the write-back.
//
// Victim selection scans the stripe — O(stripe capacity) — instead of
// popping an intrusive LRU list. That is the deliberate price of the hit
// fast path: a linked list would need the write lock on every hit to relink,
// which is exactly the serialization the stamp design removes, while the
// scan runs only on evictions, which accompany a disk access anyway and are
// bounded by the stripe (not pool) capacity.
func (b *BufferPool) evictOne(s *poolStripe) (evicted bool, err error) {
	var victim *frame
	for _, f := range s.frames {
		if f.pins.Load() != 0 {
			continue
		}
		if victim == nil || f.stamp.Load() < victim.stamp.Load() {
			victim = f
		}
	}
	if victim == nil {
		return false, nil
	}
	if victim.dirty.Load() {
		if err := b.writePage(victim.id, &victim.data); err != nil {
			return false, err
		}
		b.writes.Add(1)
	}
	delete(s.frames, victim.id)
	return true, nil
}

// pin returns the frame for id with one pin taken, loading the page from
// disk on a miss. The fast path serves hits under the stripe's read lock;
// the slow path takes the write lock, evicting (or waiting out a stripe
// full of pinned frames — pins are never held across another pool access,
// so some other goroutine always makes progress) and re-checks the table
// each round, since the waited-for page may have been loaded by a
// concurrent fetch meanwhile.
func (b *BufferPool) pin(id PageID) (*frame, error) {
	if id == NilPage {
		return nil, fmt.Errorf("storage: fetch of nil page")
	}
	s := b.stripeFor(id)
	s.mu.RLock()
	if f, ok := s.frames[id]; ok {
		f.pins.Add(1)
		f.stamp.Store(b.clock.Add(1))
		s.mu.RUnlock()
		b.hits.Add(1)
		return f, nil
	}
	s.mu.RUnlock()

	s.mu.Lock()
	for {
		if f, ok := s.frames[id]; ok {
			f.pins.Add(1)
			f.stamp.Store(b.clock.Add(1))
			s.mu.Unlock()
			b.hits.Add(1)
			return f, nil
		}
		if len(s.frames) < s.capacity {
			break
		}
		evicted, err := b.evictOne(s)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if !evicted {
			s.waiters.Add(1)
			s.cond.Wait()
			s.waiters.Add(-1)
		}
	}
	f := &frame{id: id}
	if err := b.readPage(id, &f.data); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	f.pins.Store(1)
	f.stamp.Store(b.clock.Add(1))
	s.frames[id] = f
	s.mu.Unlock()
	b.misses.Add(1)
	return f, nil
}

// unpin releases one pin and wakes any fetch waiting out a fully pinned
// stripe. The waiter count is read under the stripe's read lock: a waiter
// increments it and parks while holding the write lock, so by the time our
// RLock is granted the waiter is either not yet committed to waiting (its
// next table scan sees the released pin) or already parked in Wait (the
// broadcast reaches it) — no wake-up can fall between.
func (b *BufferPool) unpin(s *poolStripe, f *frame) {
	s.mu.RLock()
	f.pins.Add(-1)
	waiters := s.waiters.Load()
	s.mu.RUnlock()
	if waiters > 0 {
		s.cond.Broadcast()
	}
}

// Read runs fn with read access to the page contents. The page is pinned
// for the duration of fn; fn must not retain the slice and must not access
// any buffer pool (a pin held across another pool access could make a full
// pool wait on itself).
func (b *BufferPool) Read(id PageID, fn func(data []byte)) error {
	f, err := b.pin(id)
	if err != nil {
		return err
	}
	fn(f.data[:])
	b.unpin(b.stripeFor(id), f)
	return nil
}

// Write runs fn with mutable access to the page contents and marks the page
// dirty. The same rules as Read apply to fn.
func (b *BufferPool) Write(id PageID, fn func(data []byte)) error {
	f, err := b.pin(id)
	if err != nil {
		return err
	}
	fn(f.data[:])
	f.dirty.Store(true)
	b.unpin(b.stripeFor(id), f)
	return nil
}

// Allocate reserves a new page and installs a zeroed, dirty frame for it so
// the first access is not charged as a read miss (freshly allocated pages
// have no on-disk image worth reading). Like pin, it waits out a stripe
// full of pinned frames.
func (b *BufferPool) Allocate() (PageID, error) {
	id, err := b.disk.Allocate()
	if err != nil {
		return NilPage, err
	}
	s := b.stripeFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.frames) >= s.capacity {
		evicted, err := b.evictOne(s)
		if err != nil {
			return NilPage, err
		}
		if !evicted {
			s.waiters.Add(1)
			s.cond.Wait()
			s.waiters.Add(-1)
		}
	}
	f := &frame{id: id}
	f.dirty.Store(true)
	f.stamp.Store(b.clock.Add(1))
	s.frames[id] = f
	s.owned[id] = struct{}{}
	return id, nil
}

// Free drops the page from the pool (without write-back) and releases it on
// disk. The page must not be pinned.
func (b *BufferPool) Free(id PageID) error {
	s := b.stripeFor(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		if f.pins.Load() > 0 {
			s.mu.Unlock()
			return fmt.Errorf("storage: freeing pinned page %d", id)
		}
		delete(s.frames, id)
	}
	delete(s.owned, id)
	s.mu.Unlock()
	s.cond.Broadcast() // a frame left: a waiting fetch may now have room
	return b.disk.Free(id)
}

// Retire permanently releases the pool: every cached frame is dropped
// without write-back and every page the pool ever allocated (and not since
// freed) is released on the disk. This is for pools whose whole index
// structure is being abandoned — a replaced partition epoch, a staging
// index after the bootstrap cutover — so repeated rebuilds do not
// accumulate dead pages and cached frames forever. The caller must
// guarantee no index still uses the pool; the pool must not be used
// afterwards.
func (b *BufferPool) Retire() {
	for i := range b.stripes {
		s := &b.stripes[i]
		s.mu.Lock()
		s.frames = make(map[PageID]*frame)
		for id := range s.owned {
			_ = b.disk.Free(id) // best-effort: the structure is abandoned
		}
		s.owned = make(map[PageID]struct{})
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}

// FlushAll writes back every dirty frame (kept resident). Used by tests and
// when snapshotting space usage.
func (b *BufferPool) FlushAll() error {
	for i := range b.stripes {
		s := &b.stripes[i]
		s.mu.Lock()
		for id, f := range s.frames {
			if f.dirty.Load() {
				if err := b.writePage(id, &f.data); err != nil {
					s.mu.Unlock()
					return err
				}
				b.writes.Add(1)
				f.dirty.Store(false)
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// Resident returns the number of frames currently cached (diagnostics).
func (b *BufferPool) Resident() int {
	n := 0
	for i := range b.stripes {
		s := &b.stripes[i]
		s.mu.RLock()
		n += len(s.frames)
		s.mu.RUnlock()
	}
	return n
}
