// Package storage simulates the disk subsystem the VP paper measures
// against: fixed-size pages (4 KB, Table 1), an in-memory "disk" with read/
// write counters, and an LRU buffer pool (50 pages by default). Every index
// in this repository stores its nodes through a BufferPool, so "query I/O"
// is exactly the number of buffer-pool misses a query incurs — the metric
// plotted throughout Section 6 of the paper.
//
// The disk is a map from PageID to page images. An optional per-miss latency
// can be injected so that wall-clock time tracks I/O the way a spinning disk
// would; it is off by default (unit tests) and enabled by the benchmark CLI.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the simulated disk page size in bytes (Table 1: 4 KB).
const PageSize = 4096

// DefaultBufferPages is the paper's default RAM buffer size (Table 1).
const DefaultBufferPages = 50

// PageID identifies a page on the simulated disk. Page 0 is never allocated
// so the zero value can mean "no page".
type PageID uint64

// NilPage is the invalid page id.
const NilPage PageID = 0

// Page is a fixed-size page image. Callers mutate Data and must mark the
// page dirty through the buffer pool API so write-back happens on eviction.
type Page struct {
	ID   PageID
	Data [PageSize]byte
}

// Disk is the simulated non-volatile store. It is safe for concurrent use:
// multiple buffer pools may front a single Disk (the Store gives every
// partition its own pool over one shared disk).
type Disk struct {
	mu      sync.Mutex
	pages   map[PageID][]byte
	nextID  uint64
	reads   atomic.Int64
	writes  atomic.Int64
	latency atomic.Int64 // injected ns per successful physical access
}

// NewDisk returns an empty disk.
func NewDisk() *Disk {
	return &Disk{pages: make(map[PageID][]byte)}
}

// SetLatency injects an artificial delay per successful physical read/write.
// Zero (default) disables it. Safe to call while the disk is in use.
func (d *Disk) SetLatency(l time.Duration) { d.latency.Store(int64(l)) }

// Allocate reserves a fresh page id. The page contents start zeroed.
func (d *Disk) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextID++
	id := PageID(d.nextID)
	d.pages[id] = make([]byte, PageSize)
	return id
}

// Free releases a page. Freed pages may not be read again.
func (d *Disk) Free(id PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.pages, id)
}

// read copies the page image into dst. The physical-read counter and the
// injected latency apply only to successful accesses: a read of an
// unallocated page fails fast and is not an I/O.
func (d *Disk) read(id PageID, dst *[PageSize]byte) error {
	d.mu.Lock()
	src, ok := d.pages[id]
	if ok {
		copy(dst[:], src)
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if l := d.latency.Load(); l > 0 {
		time.Sleep(time.Duration(l))
	}
	d.reads.Add(1)
	return nil
}

// write stores the page image. Counting and latency follow the same rule as
// read: only successful accesses are I/O.
func (d *Disk) write(id PageID, src *[PageSize]byte) error {
	d.mu.Lock()
	dst, ok := d.pages[id]
	if ok {
		copy(dst, src[:])
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	if l := d.latency.Load(); l > 0 {
		time.Sleep(time.Duration(l))
	}
	d.writes.Add(1)
	return nil
}

// PhysicalReads returns the number of physical page reads so far.
func (d *Disk) PhysicalReads() int64 { return d.reads.Load() }

// PhysicalWrites returns the number of physical page writes so far.
func (d *Disk) PhysicalWrites() int64 { return d.writes.Load() }

// NumPages returns the number of live pages (diagnostics / space metric).
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// frame is a buffer-pool slot.
type frame struct {
	page  Page
	dirty bool
	pins  int
	// LRU doubly-linked list links (nil page id terminates).
	prev, next PageID
}

// BufferPool is an LRU page cache in front of a Disk. It is safe for
// concurrent use by multiple goroutines: a single mutex guards the frame
// table, and a fetch that finds every frame pinned by other goroutines
// applies back-pressure — it waits for a pin to release instead of failing
// — so even a pool smaller than the number of concurrent readers serves
// every request under its RAM budget. Pins are only ever held across the
// in-memory encode/decode closures of Read/Write, never across another
// pool access, which is what makes the waiting deadlock-free.
type BufferPool struct {
	mu       sync.Mutex
	unpinned *sync.Cond // signaled whenever a pin releases or a frame leaves
	disk     *Disk
	capacity int
	frames   map[PageID]*frame
	head     PageID // most recently used
	tail     PageID // least recently used
	// owned tracks every page this pool allocated and has not yet freed,
	// so Retire can release a whole abandoned index's disk footprint.
	owned  map[PageID]struct{}
	hits   atomic.Int64
	misses atomic.Int64
	writes atomic.Int64
}

// NewBufferPool returns a pool of the given capacity (pages) over disk.
// Capacity must be >= 1.
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	if capacity < 1 {
		panic("storage: buffer pool capacity must be >= 1")
	}
	b := &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		owned:    make(map[PageID]struct{}),
	}
	b.unpinned = sync.NewCond(&b.mu)
	return b
}

// Disk returns the underlying disk.
func (b *BufferPool) Disk() *Disk { return b.disk }

// Capacity returns the pool capacity in pages.
func (b *BufferPool) Capacity() int { return b.capacity }

// Stats is a snapshot of buffer-pool activity.
type Stats struct {
	Misses int64 // pages read from disk (the paper's "I/O")
	Hits   int64 // pages served from the buffer
	Writes int64 // dirty pages written back
}

// Stats returns current counters.
func (b *BufferPool) Stats() Stats {
	return Stats{Misses: b.misses.Load(), Hits: b.hits.Load(), Writes: b.writes.Load()}
}

// lruRemove unlinks f (id) from the LRU list.
func (b *BufferPool) lruRemove(id PageID, f *frame) {
	if f.prev != NilPage {
		b.frames[f.prev].next = f.next
	} else {
		b.head = f.next
	}
	if f.next != NilPage {
		b.frames[f.next].prev = f.prev
	} else {
		b.tail = f.prev
	}
	f.prev, f.next = NilPage, NilPage
}

// lruPushFront makes f (id) the most recently used.
func (b *BufferPool) lruPushFront(id PageID, f *frame) {
	f.prev = NilPage
	f.next = b.head
	if b.head != NilPage {
		b.frames[b.head].prev = id
	}
	b.head = id
	if b.tail == NilPage {
		b.tail = id
	}
}

// evictOne writes back and drops the least recently used unpinned frame.
// evicted is false (with a nil error) when every frame is pinned — the
// caller waits for an unpin; err reports only real write-back failures.
func (b *BufferPool) evictOne() (evicted bool, err error) {
	for id := b.tail; id != NilPage; {
		f := b.frames[id]
		if f.pins == 0 {
			if f.dirty {
				if err := b.disk.write(id, &f.page.Data); err != nil {
					return false, err
				}
				b.writes.Add(1)
			}
			b.lruRemove(id, f)
			delete(b.frames, id)
			return true, nil
		}
		id = f.prev
	}
	return false, nil
}

// fetch returns the frame for id, loading it from disk on a miss. When the
// pool is full of pinned frames it waits for a pin to release (pins are
// never held across another pool access, so some other goroutine always
// makes progress) and re-checks the table, since the waited-for page may
// have been loaded by a concurrent fetch meanwhile.
func (b *BufferPool) fetch(id PageID) (*frame, error) {
	if id == NilPage {
		return nil, fmt.Errorf("storage: fetch of nil page")
	}
	for {
		if f, ok := b.frames[id]; ok {
			b.hits.Add(1)
			b.lruRemove(id, f)
			b.lruPushFront(id, f)
			return f, nil
		}
		if len(b.frames) < b.capacity {
			break
		}
		evicted, err := b.evictOne()
		if err != nil {
			return nil, err
		}
		if !evicted {
			b.unpinned.Wait()
		}
	}
	f := &frame{page: Page{ID: id}}
	if err := b.disk.read(id, &f.page.Data); err != nil {
		return nil, err
	}
	b.misses.Add(1)
	b.frames[id] = f
	b.lruPushFront(id, f)
	return f, nil
}

// Read runs fn with read access to the page contents. The page is pinned
// for the duration of fn; fn must not retain the slice and must not access
// any buffer pool (a pin held across another pool access could make a full
// pool wait on itself).
func (b *BufferPool) Read(id PageID, fn func(data []byte)) error {
	b.mu.Lock()
	f, err := b.fetch(id)
	if err != nil {
		b.mu.Unlock()
		return err
	}
	f.pins++
	b.mu.Unlock()

	fn(f.page.Data[:])

	b.mu.Lock()
	f.pins--
	b.unpinned.Broadcast()
	b.mu.Unlock()
	return nil
}

// Write runs fn with mutable access to the page contents and marks the page
// dirty. The same rules as Read apply to fn.
func (b *BufferPool) Write(id PageID, fn func(data []byte)) error {
	b.mu.Lock()
	f, err := b.fetch(id)
	if err != nil {
		b.mu.Unlock()
		return err
	}
	f.pins++
	b.mu.Unlock()

	fn(f.page.Data[:])

	b.mu.Lock()
	f.dirty = true
	f.pins--
	b.unpinned.Broadcast()
	b.mu.Unlock()
	return nil
}

// Allocate reserves a new page and installs a zeroed, dirty frame for it so
// the first access is not charged as a read miss (freshly allocated pages
// have no on-disk image worth reading). Like fetch, it waits out a pool
// full of pinned frames.
func (b *BufferPool) Allocate() (PageID, error) {
	id := b.disk.Allocate()
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.frames) >= b.capacity {
		evicted, err := b.evictOne()
		if err != nil {
			return NilPage, err
		}
		if !evicted {
			b.unpinned.Wait()
		}
	}
	f := &frame{page: Page{ID: id}, dirty: true}
	b.frames[id] = f
	b.lruPushFront(id, f)
	b.owned[id] = struct{}{}
	return id, nil
}

// Free drops the page from the pool (without write-back) and releases it on
// disk. The page must not be pinned.
func (b *BufferPool) Free(id PageID) error {
	b.mu.Lock()
	if f, ok := b.frames[id]; ok {
		if f.pins > 0 {
			b.mu.Unlock()
			return fmt.Errorf("storage: freeing pinned page %d", id)
		}
		b.lruRemove(id, f)
		delete(b.frames, id)
		b.unpinned.Broadcast()
	}
	delete(b.owned, id)
	b.mu.Unlock()
	b.disk.Free(id)
	return nil
}

// Retire permanently releases the pool: every cached frame is dropped
// without write-back and every page the pool ever allocated (and not since
// freed) is released on the disk. This is for pools whose whole index
// structure is being abandoned — a replaced partition epoch, a staging
// index after the bootstrap cutover — so repeated rebuilds do not
// accumulate dead pages and cached frames forever. The caller must
// guarantee no index still uses the pool; the pool must not be used
// afterwards.
func (b *BufferPool) Retire() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.frames = make(map[PageID]*frame)
	b.head, b.tail = NilPage, NilPage
	for id := range b.owned {
		b.disk.Free(id)
	}
	b.owned = nil
	b.unpinned.Broadcast()
}

// FlushAll writes back every dirty frame (kept resident). Used by tests and
// when snapshotting space usage.
func (b *BufferPool) FlushAll() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, f := range b.frames {
		if f.dirty {
			if err := b.disk.write(id, &f.page.Data); err != nil {
				return err
			}
			b.writes.Add(1)
			f.dirty = false
		}
	}
	return nil
}

// Resident returns the number of frames currently cached (diagnostics).
func (b *BufferPool) Resident() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frames)
}
