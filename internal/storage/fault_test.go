package storage

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func openTestStore(t *testing.T, fi *FaultInjector) *FileStore {
	return openTestStoreWith(t, fi, FileStoreOptions{})
}

// openTestStoreWith opens a scratch FileStore with the given options (read
// path, truncation) plus the injector; fileVariants feeds it both read paths.
func openTestStoreWith(t *testing.T, fi *FaultInjector, opts FileStoreOptions) *FileStore {
	t.Helper()
	opts.Injector = fi
	fs, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.dat"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func TestCorruptPageDetectedOnRead(t *testing.T) {
	fileVariants(t, testCorruptPageDetectedOnRead)
}

func testCorruptPageDetectedOnRead(t *testing.T, opts FileStoreOptions) {
	fs := openTestStoreWith(t, nil, opts)
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var page [PageSize]byte
	copy(page[:], "integrity matters")
	if err := fs.WritePage(id, &page); err != nil {
		t.Fatal(err)
	}
	// Bit rot: flip one byte of the persisted image behind the store's back.
	flipByte(t, fs.Path(), int64(id)*slotSize+100)

	var got [PageSize]byte
	err = fs.ReadPage(id, &got)
	if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("read of corrupted page = %v, want ErrCorruptPage", err)
	}
	var cpe *CorruptPageError
	if !errors.As(err, &cpe) || cpe.ID != id {
		t.Fatalf("error %v does not carry the page id", err)
	}
	if fs.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", fs.Quarantined())
	}
	// Quarantine fails fast without touching disk.
	if err := fs.ReadPage(id, &got); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("second read = %v, want ErrCorruptPage", err)
	}
	// A full rewrite repairs the slot.
	if err := fs.WritePage(id, &page); err != nil {
		t.Fatal(err)
	}
	if fs.Quarantined() != 0 {
		t.Fatalf("Quarantined = %d after repair, want 0", fs.Quarantined())
	}
	if err := fs.ReadPage(id, &got); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if got != page {
		t.Fatal("repaired page has wrong contents")
	}
}

func TestTornWriteCaughtByChecksum(t *testing.T) {
	fileVariants(t, testTornWriteCaughtByChecksum)
}

func testTornWriteCaughtByChecksum(t *testing.T, opts FileStoreOptions) {
	fi := NewScriptedInjector(FaultRule{Op: OpPageWrite, Seq: 2, Kind: FaultTornWrite})
	fs := openTestStoreWith(t, fi, opts)
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var page [PageSize]byte
	for i := range page {
		page[i] = byte(i)
	}
	if err := fs.WritePage(id, &page); err != nil {
		t.Fatal(err)
	}
	// Second write is torn: it reports success but persists only a prefix of
	// the (different) new image, leaving a front/back mix on disk.
	for i := range page {
		page[i] = byte(255 - i%256)
	}
	if err := fs.WritePage(id, &page); err != nil {
		t.Fatalf("torn write must report success, got %v", err)
	}
	var got [PageSize]byte
	if err := fs.ReadPage(id, &got); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("read after torn write = %v, want ErrCorruptPage", err)
	}
	if fi.InjectedFaults() != 1 {
		t.Fatalf("InjectedFaults = %d, want 1", fi.InjectedFaults())
	}
}

func TestBitFlipCaughtByChecksum(t *testing.T) {
	fileVariants(t, testBitFlipCaughtByChecksum)
}

func testBitFlipCaughtByChecksum(t *testing.T, opts FileStoreOptions) {
	fi := NewScriptedInjector(FaultRule{Op: OpPageWrite, Seq: 1, Kind: FaultBitFlip})
	fs := openTestStoreWith(t, fi, opts)
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var page [PageSize]byte
	copy(page[:], "will be flipped")
	if err := fs.WritePage(id, &page); err != nil {
		t.Fatalf("bit-flip write must report success, got %v", err)
	}
	var got [PageSize]byte
	if err := fs.ReadPage(id, &got); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("read after bit flip = %v, want ErrCorruptPage", err)
	}
}

func TestVerifyPageScrubPrimitive(t *testing.T) {
	fileVariants(t, testVerifyPageScrubPrimitive)
}

func testVerifyPageScrubPrimitive(t *testing.T, opts FileStoreOptions) {
	fs := openTestStoreWith(t, nil, opts)
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var page [PageSize]byte
	copy(page[:], "scrub me")
	if err := fs.WritePage(id, &page); err != nil {
		t.Fatal(err)
	}
	if err := fs.VerifyPage(id); err != nil {
		t.Fatalf("verify of clean page: %v", err)
	}
	// A freed page is skipped, not reported.
	id2, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Free(id2); err != nil {
		t.Fatal(err)
	}
	if err := fs.VerifyPage(id2); err != nil {
		t.Fatalf("verify of freed page = %v, want nil", err)
	}
	// Corruption is found without a client read, and quarantines.
	flipByte(t, fs.Path(), int64(id)*slotSize+7)
	if err := fs.VerifyPage(id); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("verify of corrupted page = %v, want ErrCorruptPage", err)
	}
	if fs.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", fs.Quarantined())
	}
	live := fs.LivePages()
	if len(live) != 1 || live[0] != id {
		t.Fatalf("LivePages = %v, want [%d]", live, id)
	}
}

func TestTransientFaultsRetriedByPolicy(t *testing.T) {
	// One transient EIO on the only read attempt sequence; the retry (a
	// fresh attempt, fresh seq) succeeds.
	fi := NewScriptedInjector(FaultRule{Op: OpPageRead, Seq: 1, Kind: FaultTransientEIO})
	fs := openTestStore(t, fi)
	pool := NewBufferPool(fs, 4)
	pool.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond})
	id, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Write(id, func(d []byte) { copy(d, "retried") }); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Drop the frame so the next Read is a physical read.
	pool.stripeFor(id).mu.Lock()
	delete(pool.stripeFor(id).frames, id)
	pool.stripeFor(id).mu.Unlock()

	var got []byte
	if err := pool.Read(id, func(d []byte) { got = append(got, d[:7]...) }); err != nil {
		t.Fatalf("read with transient fault = %v, want retried success", err)
	}
	if string(got) != "retried" {
		t.Fatalf("got %q", got)
	}
	if pool.Retries() < 1 {
		t.Fatalf("Retries = %d, want >= 1", pool.Retries())
	}
}

func TestRetryPolicyExhaustionIsNotTransient(t *testing.T) {
	calls := 0
	var retries atomic.Int64
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	err := p.Do(&retries, func() error {
		calls++
		return &FaultError{Op: OpPageRead, Page: 7, Kind: FaultTransientEIO}
	})
	if calls != 3 {
		t.Fatalf("attempts = %d, want 3", calls)
	}
	if retries.Load() != 2 {
		t.Fatalf("retries = %d, want 2", retries.Load())
	}
	if err == nil || IsTransient(err) {
		t.Fatalf("exhausted error %v must be non-transient", err)
	}
	// The inner fault is still reachable for classification.
	if !IsMediaFault(err) {
		t.Fatalf("exhausted error %v must stay a media fault", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("exhausted error %v must unwrap to EIO", err)
	}
}

func TestRetryPolicyPermanentFailsImmediately(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	err := p.Do(nil, func() error {
		calls++
		return &FaultError{Op: OpPageWrite, Page: 3, Kind: FaultPermanentEIO}
	})
	if calls != 1 {
		t.Fatalf("attempts = %d, want 1 (permanent faults are not retried)", calls)
	}
	if IsTransient(err) {
		t.Fatal("permanent fault classified transient")
	}
}

func TestPermanentFaultLatchesPage(t *testing.T) {
	fi := NewScriptedInjector(FaultRule{Op: OpPageRead, Seq: 1, Kind: FaultPermanentEIO})
	fs := openTestStore(t, fi)
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var page [PageSize]byte
	if err := fs.WritePage(id, &page); err != nil {
		t.Fatal(err)
	}
	var got [PageSize]byte
	if err := fs.ReadPage(id, &got); !IsMediaFault(err) || IsTransient(err) {
		t.Fatalf("first read = %v, want permanent media fault", err)
	}
	// Every later attempt fails too, even though the rule only fired once.
	for i := 0; i < 3; i++ {
		if err := fs.ReadPage(id, &got); err == nil {
			t.Fatal("latched page readable")
		}
	}
}

func TestSeededFaultsAreReproducible(t *testing.T) {
	rates := FaultRates{TransientEIO: 0.3, TornWrite: 0.2, SyncFail: 0.5}
	a := SeededFaults(42, rates)
	b := SeededFaults(42, rates)
	for i := int64(1); i <= 200; i++ {
		op := FaultOp(i % int64(nFaultOps))
		da := a.Decide(op, i, PageID(i))
		db := b.Decide(op, i, PageID(i))
		if da != db {
			t.Fatalf("seeded schedules diverge at %d: %v vs %v", i, da, db)
		}
	}
}

func TestScriptedRuleCountBounds(t *testing.T) {
	s := Script(FaultRule{Op: OpWALSync, Kind: FaultSyncFail, Count: 2})
	fired := 0
	for i := int64(1); i <= 5; i++ {
		if s.Decide(OpWALSync, i, NilPage).Kind == FaultSyncFail {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("rule fired %d times, want 2 (Count bound)", fired)
	}
}

func TestScriptedInjectorSyncFaults(t *testing.T) {
	fi := NewScriptedInjector(FaultRule{Op: OpPageSync, Seq: 1, Kind: FaultSyncFail})
	fs := openTestStore(t, fi)
	if err := fs.Sync(); !IsTransient(err) {
		t.Fatalf("first sync = %v, want transient fault", err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("second sync = %v, want nil", err)
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{os.ErrClosed, false},
		{ErrInjectedCrash, false},
		{ErrCorruptPage, false},
		{&FaultError{Op: OpPageRead, Kind: FaultTransientEIO}, true},
		{&FaultError{Op: OpWALSync, Kind: FaultSyncFail}, true},
		{&FaultError{Op: OpPageWrite, Kind: FaultPermanentEIO}, false},
		{&retriesExhausted{err: &FaultError{Kind: FaultTransientEIO}}, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if !IsMediaFault(&CorruptPageError{Path: "x", ID: 1}) {
		t.Error("CorruptPageError not a media fault")
	}
	if IsMediaFault(os.ErrClosed) {
		t.Error("os.ErrClosed classified as media fault")
	}
}
