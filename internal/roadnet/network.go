// Package roadnet provides the road-network substrate for the benchmark
// workloads: a synthetic network generator with controlled direction skew
// and density, and an event-driven trip simulator that moves objects along
// edges with piecewise-linear motion.
//
// The VP paper evaluates on four OSM-derived networks (Chicago, San
// Francisco, Melbourne CBD, New York). Those extracts are not available
// here, so the generator synthesizes networks that preserve the two
// properties the paper's experiments actually exercise (see DESIGN.md):
//
//  1. the *direction skew* of the velocity distribution the network induces
//     (CH most skewed ... NY least, Section 6), controlled by the angular
//     jitter of the street grid and the fraction of diagonal connectors;
//  2. the *edge length / density*, which sets the update frequency (NY and
//     MEL have the most nodes/edges and hence the highest update rate).
package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// NodeID indexes a network node.
type NodeID int32

// Node is a road intersection (or street end).
type Node struct {
	Pos geom.Vec2
}

// Edge is one directed half of a road segment in the adjacency list.
type Edge struct {
	To    NodeID
	Limit float64 // speed limit as a fraction of the workload max speed (0,1]
}

// Network is an undirected road graph stored as adjacency lists (each
// undirected segment appears as two directed edges).
type Network struct {
	Nodes []Node
	Adj   [][]Edge
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.Nodes) }

// NumEdges returns the undirected segment count.
func (n *Network) NumEdges() int {
	total := 0
	for _, a := range n.Adj {
		total += len(a)
	}
	return total / 2
}

// addEdge inserts the undirected segment a-b.
func (n *Network) addEdge(a, b NodeID, limit float64) {
	n.Adj[a] = append(n.Adj[a], Edge{To: b, Limit: limit})
	n.Adj[b] = append(n.Adj[b], Edge{To: a, Limit: limit})
}

// GenConfig controls the synthetic network generator.
type GenConfig struct {
	// Domain is the covered data space.
	Domain geom.Rect
	// BaseAngle rotates the whole grid (radians); the two street families
	// run at BaseAngle and BaseAngle+90 degrees.
	BaseAngle float64
	// Spacing is the distance between parallel streets (m). Smaller
	// spacing => shorter edges => more nodes and more frequent updates.
	Spacing float64
	// AngleJitter is the per-node positional jitter expressed as a
	// fraction of Spacing; it bends streets so edge directions scatter
	// around the grid axes (more jitter => less velocity skew).
	AngleJitter float64
	// DiagonalFrac adds a diagonal connector across this fraction of grid
	// cells (Broadway-style avenues): a third movement direction.
	DiagonalFrac float64
	// ArterialEvery makes every k-th street an arterial with speed limit
	// 1.0; other streets get ResidentialLimit. 0 disables arterials.
	ArterialEvery int
	// ResidentialLimit is the non-arterial speed limit fraction (0,1].
	ResidentialLimit float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Domain.IsEmpty() || c.Domain.Area() == 0 {
		c.Domain = geom.R(0, 0, 100000, 100000)
	}
	if c.Spacing <= 0 {
		c.Spacing = 800
	}
	if c.ResidentialLimit <= 0 || c.ResidentialLimit > 1 {
		c.ResidentialLimit = 0.5
	}
	if c.ArterialEvery < 0 {
		c.ArterialEvery = 0
	}
	return c
}

// Generate builds a jittered, optionally diagonal-laced grid network
// covering the domain.
func Generate(cfg GenConfig) (*Network, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	u := geom.V(math.Cos(cfg.BaseAngle), math.Sin(cfg.BaseAngle))
	v := u.Perp()
	// Lattice index range big enough to cover the (rotated) domain: the
	// domain diagonal over the spacing, centered.
	diag := math.Hypot(cfg.Domain.Width(), cfg.Domain.Height())
	half := int(diag/cfg.Spacing)/2 + 2
	origin := cfg.Domain.Center()

	type cellKey struct{ i, j int }
	ids := make(map[cellKey]NodeID)
	net := &Network{}

	inDomain := func(p geom.Vec2) bool { return cfg.Domain.ContainsPoint(p) }
	nodeAt := func(i, j int) (NodeID, bool) {
		if id, ok := ids[cellKey{i, j}]; ok {
			return id, ok
		}
		base := origin.Add(u.Scale(float64(i) * cfg.Spacing)).Add(v.Scale(float64(j) * cfg.Spacing))
		jit := geom.V(rng.NormFloat64(), rng.NormFloat64()).Scale(cfg.AngleJitter * cfg.Spacing)
		p := base.Add(jit)
		if !inDomain(p) {
			return 0, false
		}
		id := NodeID(len(net.Nodes))
		net.Nodes = append(net.Nodes, Node{Pos: p})
		net.Adj = append(net.Adj, nil)
		ids[cellKey{i, j}] = id
		return id, true
	}
	limitFor := func(line int) float64 {
		if cfg.ArterialEvery > 0 && line%cfg.ArterialEvery == 0 {
			return 1.0
		}
		return cfg.ResidentialLimit
	}

	for i := -half; i <= half; i++ {
		for j := -half; j <= half; j++ {
			a, ok := nodeAt(i, j)
			if !ok {
				continue
			}
			// Edge along u (constant j line) and along v (constant i line).
			if b, ok := nodeAt(i+1, j); ok {
				net.addEdge(a, b, limitFor(j))
			}
			if b, ok := nodeAt(i, j+1); ok {
				net.addEdge(a, b, limitFor(i))
			}
			if cfg.DiagonalFrac > 0 && rng.Float64() < cfg.DiagonalFrac {
				if b, ok := nodeAt(i+1, j+1); ok {
					net.addEdge(a, b, cfg.ResidentialLimit)
				}
			}
		}
	}
	if net.NumEdges() == 0 {
		return nil, fmt.Errorf("roadnet: generated network has no edges (domain %v, spacing %g)",
			cfg.Domain, cfg.Spacing)
	}
	return net, nil
}

// Preset identifies a benchmark network preset mirroring the qualitative
// characteristics of the paper's four road networks (see package comment).
type Preset string

const (
	// Chicago: the most skewed velocity distribution (near-perfect grid),
	// long edges (fewest updates).
	Chicago Preset = "CH"
	// SanFrancisco: strongly two-axis with modest jitter.
	SanFrancisco Preset = "SA"
	// Melbourne: denser CBD grid, more jitter, a few diagonals; high
	// update frequency.
	Melbourne Preset = "MEL"
	// NewYork: densest, most diagonals (least skew), highest update
	// frequency.
	NewYork Preset = "NY"
)

// Presets lists the four road-network presets in the paper's order.
func Presets() []Preset { return []Preset{Chicago, SanFrancisco, Melbourne, NewYork} }

// PresetConfig returns the generator configuration for a preset over the
// given domain.
func PresetConfig(p Preset, domain geom.Rect, seed int64) (GenConfig, error) {
	base := GenConfig{Domain: domain, Seed: seed, ArterialEvery: 5, ResidentialLimit: 0.5}
	switch p {
	case Chicago:
		base.BaseAngle = 0
		base.Spacing = 900
		base.AngleJitter = 0.02
		base.DiagonalFrac = 0.0
	case SanFrancisco:
		base.BaseAngle = 0.30 // SF's grid sits rotated against north
		base.Spacing = 800
		base.AngleJitter = 0.05
		base.DiagonalFrac = 0.01
	case Melbourne:
		base.BaseAngle = 0.12
		base.Spacing = 450
		base.AngleJitter = 0.08
		base.DiagonalFrac = 0.04
	case NewYork:
		base.BaseAngle = 0.50 // Manhattan's 29-degree tilt
		base.Spacing = 400
		base.AngleJitter = 0.10
		base.DiagonalFrac = 0.10
	default:
		return GenConfig{}, fmt.Errorf("roadnet: unknown preset %q", p)
	}
	return base, nil
}
