package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

func testDomain() geom.Rect { return geom.R(0, 0, 20000, 20000) }

func TestGenerateBasics(t *testing.T) {
	net, err := Generate(GenConfig{Domain: testDomain(), Spacing: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() < 100 {
		t.Fatalf("too few nodes: %d", net.NumNodes())
	}
	if net.NumEdges() < net.NumNodes() {
		t.Fatalf("grid should have ~2 edges per node: %d nodes, %d edges",
			net.NumNodes(), net.NumEdges())
	}
	// All nodes in domain.
	for _, n := range net.Nodes {
		if !testDomain().ContainsPoint(n.Pos) {
			t.Fatalf("node outside domain: %v", n.Pos)
		}
	}
	// Adjacency symmetric.
	for a, adj := range net.Adj {
		for _, e := range adj {
			found := false
			for _, back := range net.Adj[e.To] {
				if back.To == NodeID(a) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing reverse", a, e.To)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(GenConfig{Domain: testDomain(), Spacing: 600, Seed: 9})
	b, _ := Generate(GenConfig{Domain: testDomain(), Spacing: 600, Seed: 9})
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different networks")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Pos != b.Nodes[i].Pos {
			t.Fatal("node positions differ")
		}
	}
}

func TestGenerateEmptyDomainFails(t *testing.T) {
	_, err := Generate(GenConfig{Domain: geom.R(0, 0, 10, 10), Spacing: 50000})
	if err == nil {
		t.Fatal("degenerate network accepted")
	}
}

func TestPresetConfigs(t *testing.T) {
	for _, p := range Presets() {
		cfg, err := PresetConfig(p, testDomain(), 3)
		if err != nil {
			t.Fatal(err)
		}
		net, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if net.NumNodes() == 0 {
			t.Fatalf("%s: empty", p)
		}
	}
	if _, err := PresetConfig("XX", testDomain(), 0); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPresetDensityOrdering(t *testing.T) {
	// MEL and NY must be denser (more nodes => more updates) than CH/SA,
	// matching the paper's description of the four networks.
	counts := map[Preset]int{}
	for _, p := range Presets() {
		cfg, _ := PresetConfig(p, testDomain(), 5)
		net, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		counts[p] = net.NumNodes()
	}
	if counts[Melbourne] <= counts[Chicago] || counts[Melbourne] <= counts[SanFrancisco] {
		t.Fatalf("MEL should be denser: %v", counts)
	}
	if counts[NewYork] <= counts[Chicago] || counts[NewYork] <= counts[SanFrancisco] {
		t.Fatalf("NY should be denser: %v", counts)
	}
}

// directionSkew measures what fraction of sampled edge directions lie
// within tol radians of the two dominant axes of the preset grid.
func directionSkew(t *testing.T, p Preset, tol float64) float64 {
	t.Helper()
	cfg, _ := PresetConfig(p, testDomain(), 11)
	net, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := geom.V(math.Cos(cfg.BaseAngle), math.Sin(cfg.BaseAngle))
	v := u.Perp()
	aligned, total := 0, 0
	for a, adj := range net.Adj {
		pa := net.Nodes[a].Pos
		for _, e := range adj {
			d := net.Nodes[e.To].Pos.Sub(pa).Normalize()
			total++
			for _, axis := range []geom.Vec2{u, v} {
				if math.Abs(d.Dot(axis)) > math.Cos(tol) {
					aligned++
					break
				}
			}
		}
	}
	return float64(aligned) / float64(total)
}

func TestPresetSkewOrdering(t *testing.T) {
	// Velocity-direction skew: CH >= SA >= NY (the paper: "the CH road
	// network's velocity distribution is the most skewed, followed by the
	// SA, the MEL and the NY").
	tol := 8 * math.Pi / 180
	ch := directionSkew(t, Chicago, tol)
	sa := directionSkew(t, SanFrancisco, tol)
	mel := directionSkew(t, Melbourne, tol)
	ny := directionSkew(t, NewYork, tol)
	t.Logf("skew: CH=%.3f SA=%.3f MEL=%.3f NY=%.3f", ch, sa, mel, ny)
	if !(ch >= sa && sa >= mel && mel >= ny) {
		t.Fatalf("skew ordering violated: CH=%.3f SA=%.3f MEL=%.3f NY=%.3f", ch, sa, mel, ny)
	}
	if ch < 0.9 {
		t.Fatalf("Chicago should be nearly perfectly aligned, got %.3f", ch)
	}
}

func TestTravelerPiecewiseLinear(t *testing.T) {
	cfg, _ := PresetConfig(Chicago, testDomain(), 2)
	net, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	tr := NewTraveler(net, 1, rng, 100, false, testDomain(), 0)
	prev := tr.State()
	if prev.T != 0 {
		t.Fatal("initial reference time should be 0")
	}
	const maxUI = 30.0
	for step := 0; step < 500; step++ {
		next, tm := tr.NextEvent(maxUI)
		if tm < prev.T {
			t.Fatalf("time went backwards: %g -> %g", prev.T, tm)
		}
		if tm-prev.T > maxUI+1e-9 {
			t.Fatalf("update interval %g exceeds max %g", tm-prev.T, maxUI)
		}
		// Continuity: the new reference position must be where the old
		// trajectory put the object at the event time.
		want := prev.PosAt(tm)
		if next.Pos.DistTo(want) > 1e-6*(1+want.Norm()) {
			t.Fatalf("step %d: trajectory discontinuity: %v vs %v", step, next.Pos, want)
		}
		if next.T != tm {
			t.Fatal("event time and reference time disagree")
		}
		if next.Vel.Norm() > 100+1e-9 {
			t.Fatalf("speed %g exceeds max", next.Vel.Norm())
		}
		prev = next
	}
}

func TestTravelerOffRoadStaysInDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := NewTraveler(nil, 2, rng, 50, true, testDomain(), 0)
	prev := tr.State()
	// The linear-motion contract forbids clamping positions, so legs may
	// overshoot the boundary by at most one leg's travel (speed cap 50 x
	// max leg 50 ts = 2500 m) before the bounce turns them around.
	bound := testDomain().Expand(2500 + 1)
	for step := 0; step < 300; step++ {
		next, tm := tr.NextEvent(60)
		if !bound.ContainsPoint(next.Pos) {
			t.Fatalf("off-road reference position escaped: %v", next.Pos)
		}
		if tm-prev.T > 60+1e-9 {
			t.Fatal("max update interval violated")
		}
		prev = next
	}
}

func TestTravelerSpeedCapRespected(t *testing.T) {
	cfg, _ := PresetConfig(NewYork, testDomain(), 6)
	net, _ := Generate(cfg)
	for i := 0; i < 50; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		tr := NewTraveler(net, model.ObjectID(i), rng, 80, i%5 == 0, testDomain(), 0)
		if tr.State().Vel.Norm() > 80+1e-9 {
			t.Fatalf("initial speed %g exceeds cap", tr.State().Vel.Norm())
		}
		for s := 0; s < 50; s++ {
			next, _ := tr.NextEvent(40)
			if next.Vel.Norm() > 80+1e-9 {
				t.Fatalf("speed %g exceeds cap", next.Vel.Norm())
			}
		}
	}
}
