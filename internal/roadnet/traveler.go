package roadnet

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/model"
)

// Traveler simulates one object moving through the network with
// piecewise-linear motion: between events it moves at constant velocity
// along its current edge, exactly matching the linear-motion record the
// index holds (Section 2.1 of the paper). An event — and hence an index
// update — happens when the object reaches a node and turns, or when the
// maximum update interval forces a report.
type Traveler struct {
	net      *Network
	rng      *rand.Rand
	maxSpeed float64 // workload-wide maximum speed (m/ts)
	ownCap   float64 // this object's personal cap <= maxSpeed

	state  model.Object
	target NodeID  // node being driven toward
	arrive float64 // arrival time at target

	// Off-road travelers (the outlier population) move freely and
	// re-randomize direction at every update.
	offRoad bool
	domain  geom.Rect
}

// NewTraveler places an object on a random edge (or off-road) at time t0.
// offRoad objects form the outlier population: they move in arbitrary
// directions inside the domain.
func NewTraveler(net *Network, id model.ObjectID, rng *rand.Rand, maxSpeed float64,
	offRoad bool, domain geom.Rect, t0 float64) *Traveler {

	tr := &Traveler{
		net:      net,
		rng:      rng,
		maxSpeed: maxSpeed,
		ownCap:   maxSpeed * (0.4 + 0.6*rng.Float64()),
		offRoad:  offRoad,
		domain:   domain,
	}
	if offRoad || net == nil {
		tr.offRoad = true
		pos := geom.V(
			domain.MinX+rng.Float64()*domain.Width(),
			domain.MinY+rng.Float64()*domain.Height(),
		)
		tr.state = model.Object{ID: id, Pos: pos, Vel: tr.randomFreeVelocity(), T: t0}
		tr.arrive = t0 + tr.freeLegDuration()
		return tr
	}
	// Pick a random node with at least one neighbor, a random incident
	// edge, and a random fraction along it.
	var from NodeID
	for tries := 0; ; tries++ {
		from = NodeID(rng.Intn(len(net.Nodes)))
		if len(net.Adj[from]) > 0 {
			break
		}
		if tries > 1000 {
			// Pathological network; fall back to off-road.
			return NewTraveler(nil, id, rng, maxSpeed, true, domain, t0)
		}
	}
	e := net.Adj[from][rng.Intn(len(net.Adj[from]))]
	a := net.Nodes[from].Pos
	b := net.Nodes[e.To].Pos
	frac := rng.Float64()
	pos := a.Lerp(b, frac)
	speed := tr.drawSpeed(e.Limit)
	dir := b.Sub(a).Normalize()
	tr.state = model.Object{ID: id, Pos: pos, Vel: dir.Scale(speed), T: t0}
	tr.target = e.To
	dist := b.Sub(pos).Norm()
	tr.arrive = t0 + safeDiv(dist, speed)
	return tr
}

// State returns the object's current linear-motion record.
func (tr *Traveler) State() model.Object { return tr.state }

// drawSpeed samples a speed for an edge with the given limit fraction.
func (tr *Traveler) drawSpeed(limit float64) float64 {
	cap := tr.ownCap * limit
	s := cap * (0.5 + 0.5*tr.rng.Float64())
	if s <= 0 {
		s = tr.maxSpeed * 0.05
	}
	return s
}

func (tr *Traveler) randomFreeVelocity() geom.Vec2 {
	ang := tr.rng.Float64() * 2 * math.Pi
	speed := tr.ownCap * (0.3 + 0.7*tr.rng.Float64())
	return geom.V(speed*math.Cos(ang), speed*math.Sin(ang))
}

func (tr *Traveler) freeLegDuration() float64 {
	return 10 + tr.rng.Float64()*40
}

// NextEvent advances the traveler to its next update at or before
// tr.state.T + maxUI and returns the new record. The returned time is when
// the update is issued; the old record is whatever State() held before the
// call.
func (tr *Traveler) NextEvent(maxUI float64) (model.Object, float64) {
	deadline := tr.state.T + maxUI
	if tr.offRoad {
		t := tr.arrive
		if t > deadline {
			t = deadline
		}
		pos := tr.state.PosAt(t)
		pos, vel := bounce(pos, tr.randomFreeVelocity(), tr.domain)
		tr.state = model.Object{ID: tr.state.ID, Pos: pos, Vel: vel, T: t}
		tr.arrive = t + tr.freeLegDuration()
		return tr.state, t
	}
	if tr.arrive > deadline {
		// Forced report mid-edge: same velocity, fresh reference time
		// (keeps the maximum-update-interval guarantee the Bx-tree's
		// bucket scheme relies on).
		pos := tr.state.PosAt(deadline)
		tr.state = model.Object{ID: tr.state.ID, Pos: pos, Vel: tr.state.Vel, T: deadline}
		return tr.state, deadline
	}
	// Arrived at the target node: turn onto a next edge.
	t := tr.arrive
	node := tr.target
	pos := tr.net.Nodes[node].Pos
	cameFrom := tr.state.Vel.Scale(-1).Normalize()
	next := tr.chooseNextEdge(node, cameFrom)
	if next == nil {
		// Dead end: U-turn along the only edge, or stall briefly.
		tr.state = model.Object{ID: tr.state.ID, Pos: pos, Vel: tr.state.Vel.Scale(-1), T: t}
		tr.target = tr.findNodeBack(node)
		tr.arrive = t + safeDiv(tr.net.Nodes[tr.target].Pos.Sub(pos).Norm(), tr.state.Vel.Norm())
		return tr.state, t
	}
	b := tr.net.Nodes[next.To].Pos
	dir := b.Sub(pos).Normalize()
	speed := tr.drawSpeed(next.Limit)
	tr.state = model.Object{ID: tr.state.ID, Pos: pos, Vel: dir.Scale(speed), T: t}
	tr.target = next.To
	tr.arrive = t + safeDiv(b.Sub(pos).Norm(), speed)
	return tr.state, t
}

// chooseNextEdge picks the outgoing edge at node: with high probability the
// straightest continuation (drivers mostly go straight, which is what keeps
// road velocities skewed), otherwise uniformly, avoiding an immediate
// U-turn when alternatives exist.
func (tr *Traveler) chooseNextEdge(node NodeID, cameFrom geom.Vec2) *Edge {
	adj := tr.net.Adj[node]
	if len(adj) == 0 {
		return nil
	}
	pos := tr.net.Nodes[node].Pos
	// Candidates that are not the reverse of where we came from.
	var candidates []int
	for i, e := range adj {
		d := tr.net.Nodes[e.To].Pos.Sub(pos).Normalize()
		if d.Dot(cameFrom) > 0.98 { // essentially a U-turn
			continue
		}
		candidates = append(candidates, i)
	}
	if len(candidates) == 0 {
		return nil
	}
	if tr.rng.Float64() < 0.75 {
		// Straightest continuation: maximize dot with current heading.
		heading := cameFrom.Scale(-1)
		best := candidates[0]
		bestDot := -2.0
		for _, i := range candidates {
			d := tr.net.Nodes[adj[i].To].Pos.Sub(pos).Normalize()
			if dot := d.Dot(heading); dot > bestDot {
				bestDot = dot
				best = i
			}
		}
		return &adj[best]
	}
	return &adj[candidates[tr.rng.Intn(len(candidates))]]
}

// findNodeBack returns the node at the other end of the reversed heading
// (used for dead-end U-turns): the neighbor whose direction best matches
// the new velocity.
func (tr *Traveler) findNodeBack(node NodeID) NodeID {
	adj := tr.net.Adj[node]
	if len(adj) == 0 {
		return node
	}
	pos := tr.net.Nodes[node].Pos
	dir := tr.state.Vel.Normalize()
	best := adj[0].To
	bestDot := -2.0
	for _, e := range adj {
		d := tr.net.Nodes[e.To].Pos.Sub(pos).Normalize()
		if dot := d.Dot(dir); dot > bestDot {
			bestDot = dot
			best = e.To
		}
	}
	return best
}

// bounce redirects a free mover that overshot the domain back toward it.
// The position is NOT clamped: the linear-motion contract (Section 2.1)
// requires the object to be exactly where its last reported trajectory put
// it, so only the new velocity changes; the overshoot is bounded by one
// leg's travel.
func bounce(pos geom.Vec2, vel geom.Vec2, domain geom.Rect) (geom.Vec2, geom.Vec2) {
	if pos.X < domain.MinX && vel.X < 0 {
		vel.X = -vel.X
	}
	if pos.X > domain.MaxX && vel.X > 0 {
		vel.X = -vel.X
	}
	if pos.Y < domain.MinY && vel.Y < 0 {
		vel.Y = -vel.Y
	}
	if pos.Y > domain.MaxY && vel.Y > 0 {
		vel.Y = -vel.Y
	}
	return pos, vel
}

func safeDiv(a, b float64) float64 {
	if b <= 0 {
		return 1
	}
	return a / b
}
