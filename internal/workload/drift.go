package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/model"
)

// DriftParams configures the direction-drift workload: a population of
// linear movers whose dominant axis of travel rotates mid-run. This is the
// scenario Section 5.5 of the VP paper warns about — "the dominant
// direction of object travel changes significantly" — and the workload the
// adaptive repartitioning experiment (vpbench -exp drift) runs: before
// SwitchT objects travel (both ways) along Angle0 with a small
// perpendicular jitter, after SwitchT along Angle1, so an index partitioned
// for the first phase degrades in the second unless it re-analyzes.
type DriftParams struct {
	NumObjects int
	Domain     geom.Rect
	// MeanSpeed ± SpeedJitter is the speed along the dominant axis; the
	// sign is random, so the axis carries traffic in both directions.
	MeanSpeed   float64
	SpeedJitter float64
	// PerpJitter is the standard deviation of the speed component
	// perpendicular to the dominant axis (a Gaussian truncated at 4 sigma:
	// concentrated with a thin tail, the shape Eq. 10's tau optimization
	// assumes; small ⇒ near-1D velocity space ⇒ strong VP benefit).
	PerpJitter float64
	// Axes is the number of dominant travel axes, spread evenly over a
	// half-turn (2 ⇒ a perpendicular road grid, the paper's k=2 scenario;
	// default 2). Each report draws one of them at random.
	Axes int
	// Angle0 and Angle1 rotate the whole axis bundle (radians) before and
	// after SwitchT. With Axes=2 the axes repeat every 90°, so a rotation
	// of π/4 is the worst-case drift.
	Angle0, Angle1 float64
	SwitchT        float64
	Duration       float64
	// UpdateInterval is how often each object reports; reports are
	// staggered evenly across the population, so the stream carries
	// NumObjects reports per interval.
	UpdateInterval float64
	Seed           int64
}

func (p DriftParams) withDefaults() DriftParams {
	if p.NumObjects <= 0 {
		p.NumObjects = 1000
	}
	if p.Domain.IsEmpty() || p.Domain.Area() == 0 {
		p.Domain = geom.R(0, 0, 100000, 100000)
	}
	if p.MeanSpeed <= 0 {
		p.MeanSpeed = 60
	}
	if p.SpeedJitter < 0 {
		p.SpeedJitter = 0
	}
	if p.PerpJitter < 0 {
		p.PerpJitter = 0
	}
	if p.Axes <= 0 {
		p.Axes = 2
	}
	if p.Duration <= 0 {
		p.Duration = 240
	}
	if p.SwitchT <= 0 || p.SwitchT >= p.Duration {
		p.SwitchT = p.Duration / 2
	}
	if p.UpdateInterval <= 0 {
		p.UpdateInterval = p.Duration / 8
	}
	return p
}

// DriftGenerator produces the deterministic direction-drift report stream.
type DriftGenerator struct {
	params DriftParams
	rng    *rand.Rand
	objs   []model.Object // current state per object
	round  int
	next   int // next object index within the round
}

// NewDriftGenerator builds the population at time 0 (phase-0 velocities).
func NewDriftGenerator(p DriftParams) (*DriftGenerator, error) {
	p = p.withDefaults()
	if p.UpdateInterval > p.Duration {
		return nil, fmt.Errorf("workload: drift update interval %g exceeds duration %g",
			p.UpdateInterval, p.Duration)
	}
	g := &DriftGenerator{
		params: p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		objs:   make([]model.Object, p.NumObjects),
	}
	for i := range g.objs {
		g.objs[i] = model.Object{
			ID: model.ObjectID(i + 1),
			Pos: geom.V(
				p.Domain.MinX+g.rng.Float64()*p.Domain.Width(),
				p.Domain.MinY+g.rng.Float64()*p.Domain.Height(),
			),
			Vel: g.velocityAt(0),
			T:   0,
		}
	}
	return g, nil
}

// Params returns the (defaulted) parameter set in effect.
func (g *DriftGenerator) Params() DriftParams { return g.params }

// rotationAt is the axis-bundle rotation in effect at time t.
func (g *DriftGenerator) rotationAt(t float64) float64 {
	if t < g.params.SwitchT {
		return g.params.Angle0
	}
	return g.params.Angle1
}

// AxesAt returns the dominant axes (unit vectors) in effect at time t.
func (g *DriftGenerator) AxesAt(t float64) []geom.Vec2 {
	p := g.params
	rot := g.rotationAt(t)
	out := make([]geom.Vec2, p.Axes)
	for i := range out {
		a := rot + float64(i)*math.Pi/float64(p.Axes)
		out[i] = geom.V(math.Cos(a), math.Sin(a))
	}
	return out
}

// velocityAt draws one velocity for a report at time t: MeanSpeed ±
// SpeedJitter along one of the phase's axes (random axis, random sign) plus
// ±PerpJitter across it.
func (g *DriftGenerator) velocityAt(t float64) geom.Vec2 {
	p := g.params
	a := g.rotationAt(t) + float64(g.rng.Intn(p.Axes))*math.Pi/float64(p.Axes)
	speed := p.MeanSpeed + (g.rng.Float64()*2-1)*p.SpeedJitter
	if g.rng.Intn(2) == 0 {
		speed = -speed
	}
	perp := g.rng.NormFloat64()
	if perp > 4 {
		perp = 4
	} else if perp < -4 {
		perp = -4
	}
	perp *= p.PerpJitter
	dir := geom.V(math.Cos(a), math.Sin(a))
	n := geom.V(-dir.Y, dir.X)
	return dir.Scale(speed).Add(n.Scale(perp))
}

// Initial returns the population at time 0. The returned slice is a copy;
// the generator keeps evolving its own state as Next is called.
func (g *DriftGenerator) Initial() []model.Object {
	return append([]model.Object(nil), g.objs...)
}

// VelocitySample draws n phase-0 velocities — the upfront analysis sample
// for a store partitioned before the drift.
func (g *DriftGenerator) VelocitySample(n int) []geom.Vec2 {
	rng := rand.New(rand.NewSource(g.params.Seed + 7))
	sub := &DriftGenerator{params: g.params, rng: rng}
	out := make([]geom.Vec2, n)
	for i := range out {
		out[i] = sub.velocityAt(0)
	}
	return out
}

// Next pulls the next location report, time-ordered: object i of round k
// reports at (k + i/N) · UpdateInterval with a velocity drawn from the
// phase in effect at that instant, its position advanced linearly since its
// previous report (wrapped into the domain). ok is false once the stream
// passes the duration.
func (g *DriftGenerator) Next() (model.Object, bool) {
	p := g.params
	t := (float64(g.round) + float64(g.next)/float64(len(g.objs))) * p.UpdateInterval
	if t > p.Duration {
		return model.Object{}, false
	}
	i := g.next
	g.next++
	if g.next == len(g.objs) {
		g.next = 0
		g.round++
	}
	o := g.objs[i]
	dt := t - o.T
	o.Pos = g.wrap(o.Pos.Add(o.Vel.Scale(dt)))
	o.Vel = g.velocityAt(t)
	o.T = t
	g.objs[i] = o
	return o, true
}

// wrap folds a position back into the domain (toroidal), keeping the
// population density constant however long the run.
func (g *DriftGenerator) wrap(v geom.Vec2) geom.Vec2 {
	d := g.params.Domain
	w, h := d.Width(), d.Height()
	x := math.Mod(v.X-d.MinX, w)
	if x < 0 {
		x += w
	}
	y := math.Mod(v.Y-d.MinY, h)
	if y < 0 {
		y += h
	}
	return geom.V(d.MinX+x, d.MinY+y)
}

// DriftQueries generates n circular predictive queries with issue times
// spread uniformly over [t0, t1] (same shape as Generator.Queries, but over
// an explicit time window so the drift experiment can sample each phase).
func (g *DriftGenerator) DriftQueries(n int, t0, t1, radius, predictive float64, seed int64) []model.RangeQuery {
	rng := rand.New(rand.NewSource(seed))
	d := g.params.Domain
	out := make([]model.RangeQuery, n)
	for i := range out {
		issue := t0 + (t1-t0)*float64(i+1)/float64(n+1)
		c := geom.V(d.MinX+rng.Float64()*d.Width(), d.MinY+rng.Float64()*d.Height())
		out[i] = model.RangeQuery{
			Kind:   model.TimeSlice,
			Circle: geom.Circle{C: c, R: radius},
			Rect:   geom.Circle{C: c, R: radius}.Bound(),
			Now:    issue,
			T0:     issue + predictive,
		}
	}
	return out
}
