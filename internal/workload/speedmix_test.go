package workload

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestSpeedMixGeneratorShape(t *testing.T) {
	p := SpeedMixParams{NumObjects: 800, Duration: 60, UpdateInterval: 10, Seed: 3}
	g, err := NewSpeedMixGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	p = g.Params()

	classify := func(v geom.Vec2) (slow, fast bool) {
		s := v.Norm()
		return s >= p.SlowSpeed-p.SlowJitter && s <= p.SlowSpeed+p.SlowJitter,
			s >= p.FastSpeed-p.FastJitter && s <= p.FastSpeed+p.FastJitter
	}

	// The initial population splits into the two cohorts at SlowFraction,
	// every speed inside its cohort's band.
	init := g.Initial()
	if len(init) != 800 {
		t.Fatalf("population %d", len(init))
	}
	nslow := 0
	var sum geom.Vec2
	for _, o := range init {
		slow, fast := classify(o.Vel)
		if !slow && !fast {
			t.Fatalf("velocity %v in neither cohort band", o.Vel)
		}
		if slow {
			nslow++
		}
		sum = sum.Add(o.Vel.Scale(1 / o.Vel.Norm()))
		if !p.Domain.ContainsPoint(o.Pos) {
			t.Fatalf("initial position %v outside domain", o.Pos)
		}
	}
	if got, want := float64(nslow)/800, p.SlowFraction; math.Abs(got-want) > 0.01 {
		t.Fatalf("slow fraction %g, want %g", got, want)
	}
	// Headings are isotropic: the mean unit heading stays near zero (a
	// dominant axis would pull it or the axis-aligned spread apart).
	if r := sum.Scale(1.0 / 800).Norm(); r > 0.1 {
		t.Fatalf("mean heading magnitude %g suggests a dominant direction", r)
	}

	// The stream is time-ordered, respects the duration, keeps cohorts
	// stable, and wraps positions into the domain.
	slowAt := map[int64]bool{}
	for i, o := range init {
		slowAt[int64(o.ID)] = i < nslow
	}
	last := -1.0
	n := 0
	for {
		o, ok := g.Next()
		if !ok {
			break
		}
		n++
		if o.T < last {
			t.Fatalf("stream went backwards: %g after %g", o.T, last)
		}
		last = o.T
		if o.T > p.Duration {
			t.Fatalf("report at %g past duration %g", o.T, p.Duration)
		}
		if !p.Domain.ContainsPoint(o.Pos) {
			t.Fatalf("report position %v outside domain", o.Pos)
		}
		slow, fast := classify(o.Vel)
		if slowAt[int64(o.ID)] && !slow {
			t.Fatalf("slow object %d reported fast velocity %v", o.ID, o.Vel)
		}
		if !slowAt[int64(o.ID)] && !fast {
			t.Fatalf("fast object %d reported slow velocity %v", o.ID, o.Vel)
		}
	}
	// Six full rounds fit strictly below the duration; round 6's first
	// report lands exactly at t=60 and the staggered rest exceed it.
	if want := 800*6 + 1; n != want {
		t.Fatalf("stream carried %d reports, want %d", n, want)
	}

	// VelocitySample reflects the mixture without consuming the stream.
	sample := g.VelocitySample(1000)
	nslow = 0
	for _, v := range sample {
		slow, fast := classify(v)
		if !slow && !fast {
			t.Fatalf("sample velocity %v in neither band", v)
		}
		if slow {
			nslow++
		}
	}
	if got := float64(nslow) / 1000; math.Abs(got-p.SlowFraction) > 0.05 {
		t.Fatalf("sample slow fraction %g", got)
	}

	// Determinism: an identically seeded generator replays the stream.
	g2, err := NewSpeedMixGenerator(SpeedMixParams{NumObjects: 800, Duration: 60, UpdateInterval: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := NewSpeedMixGenerator(SpeedMixParams{NumObjects: 800, Duration: 60, UpdateInterval: 10, Seed: 3})
	for i := 0; i < 2000; i++ {
		a, aok := g1.Next()
		b, bok := g2.Next()
		if aok != bok || a != b {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, b)
		}
	}

	// Queries carry the requested window and shape.
	qs := g.Queries(10, 5, 55, 500, 60, 9)
	if len(qs) != 10 {
		t.Fatalf("%d queries", len(qs))
	}
	for _, q := range qs {
		if q.Now < 5 || q.Now > 55 || q.T0 != q.Now+60 || q.Circle.R != 500 {
			t.Fatalf("query %+v out of spec", q)
		}
	}

	// Invalid interval is rejected.
	if _, err := NewSpeedMixGenerator(SpeedMixParams{Duration: 10, UpdateInterval: 20}); err == nil {
		t.Fatal("interval > duration accepted")
	}
}
