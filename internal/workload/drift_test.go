package workload

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func driftTestParams() DriftParams {
	return DriftParams{
		NumObjects:     200,
		Domain:         geom.R(0, 0, 10000, 10000),
		MeanSpeed:      60,
		SpeedJitter:    30,
		PerpJitter:     3,
		Angle0:         0,
		Angle1:         1.2,
		SwitchT:        60,
		Duration:       120,
		UpdateInterval: 20,
		Seed:           9,
	}
}

// TestDriftGeneratorDeterminism: same params, same stream.
func TestDriftGeneratorDeterminism(t *testing.T) {
	a, err := NewDriftGenerator(driftTestParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDriftGenerator(driftTestParams())
	if err != nil {
		t.Fatal(err)
	}
	ia, ib := a.Initial(), b.Initial()
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("initial[%d]: %v vs %v", i, ia[i], ib[i])
		}
	}
	for n := 0; ; n++ {
		oa, oka := a.Next()
		ob, okb := b.Next()
		if oka != okb {
			t.Fatalf("stream lengths diverge at %d", n)
		}
		if !oka {
			if n == 0 {
				t.Fatal("empty stream")
			}
			return
		}
		if oa != ob {
			t.Fatalf("event %d: %v vs %v", n, oa, ob)
		}
	}
}

// TestDriftGeneratorPhases pins the drift semantics: reports are
// time-ordered, positions stay inside the domain, and velocities align with
// Angle0 before SwitchT and Angle1 after (within the perpendicular jitter).
func TestDriftGeneratorPhases(t *testing.T) {
	p := driftTestParams()
	g, err := NewDriftGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	// closest returns the axis of the bundle the velocity rides and its
	// perpendicular speed off it.
	closest := func(v geom.Vec2, axes []geom.Vec2) (geom.Vec2, float64) {
		best, bestD := axes[0], v.PerpDistToAxis(axes[0])
		for _, a := range axes[1:] {
			if d := v.PerpDistToAxis(a); d < bestD {
				best, bestD = a, d
			}
		}
		return best, bestD
	}
	last := -1.0
	n, pre, post := 0, 0, 0
	for {
		o, ok := g.Next()
		if !ok {
			break
		}
		n++
		if o.T < last {
			t.Fatalf("time went backwards: %g after %g", o.T, last)
		}
		last = o.T
		if !p.Domain.ContainsPoint(o.Pos) {
			t.Fatalf("object %d left the domain: %v", o.ID, o.Pos)
		}
		if o.T >= p.SwitchT {
			post++
		} else {
			pre++
		}
		axis, d := closest(o.Vel, g.AxesAt(o.T))
		if d > 4*p.PerpJitter+1e-9 {
			t.Fatalf("report at t=%g: perp speed %g exceeds 4-sigma jitter %g", o.T, d, 4*p.PerpJitter)
		}
		speed := math.Abs(o.Vel.Dot(axis))
		lo, hi := p.MeanSpeed-p.SpeedJitter-4*p.PerpJitter, p.MeanSpeed+p.SpeedJitter+1e-9
		if speed < lo-1e-9 || speed > hi {
			t.Fatalf("report at t=%g: axis speed %g outside [%g, %g]", o.T, speed, lo, hi)
		}
	}
	// Duration/UpdateInterval rounds plus the t=Duration boundary round.
	if n < p.NumObjects*int(p.Duration/p.UpdateInterval) {
		t.Fatalf("stream too short: %d reports", n)
	}
	if pre == 0 || post == 0 {
		t.Fatalf("phases not both exercised: pre=%d post=%d", pre, post)
	}
	// The upfront sample is phase-0 and deterministic.
	s1, s2 := g.VelocitySample(50), g.VelocitySample(50)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("velocity sample not deterministic at %d", i)
		}
		if _, d := closest(s1[i], g.AxesAt(0)); d > 4*p.PerpJitter+1e-9 {
			t.Fatalf("sample %d not phase-0 aligned: %v", i, s1[i])
		}
	}
}
