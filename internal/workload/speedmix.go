package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/model"
)

// SpeedMixParams configures the speed-mixture workload: a population whose
// headings are uniform over the circle — no dominant travel axis for the
// DVA objective to exploit — while the speed distribution is sharply
// bimodal: a slow cohort (pedestrians, delivery carts) mixed with a fast
// one (highway traffic). This is the scenario speed partitioning (Xu et
// al.) targets and the DVA technique cannot help with: partitioning by
// direction leaves every partition's velocity bounding box as wide as the
// fast cohort, while concentric speed bands confine the slow majority to a
// tiny box.
type SpeedMixParams struct {
	NumObjects int
	Domain     geom.Rect
	// SlowFraction of the population belongs to the slow cohort (objects
	// keep their cohort for their whole lifetime; default 0.6).
	SlowFraction float64
	// SlowSpeed ± SlowJitter is the slow cohort's speed range (defaults 2
	// and 1 m/ts).
	SlowSpeed, SlowJitter float64
	// FastSpeed ± FastJitter is the fast cohort's speed range (defaults 100
	// and 20 m/ts).
	FastSpeed, FastJitter float64
	Duration              float64
	// UpdateInterval is how often each object reports; reports are
	// staggered evenly across the population.
	UpdateInterval float64
	Seed           int64
}

func (p SpeedMixParams) withDefaults() SpeedMixParams {
	if p.NumObjects <= 0 {
		p.NumObjects = 1000
	}
	if p.Domain.IsEmpty() || p.Domain.Area() == 0 {
		p.Domain = geom.R(0, 0, 100000, 100000)
	}
	if p.SlowFraction <= 0 || p.SlowFraction >= 1 {
		p.SlowFraction = 0.6
	}
	if p.SlowSpeed <= 0 {
		p.SlowSpeed = 2
	}
	if p.SlowJitter <= 0 || p.SlowJitter >= p.SlowSpeed {
		p.SlowJitter = p.SlowSpeed / 2
	}
	if p.FastSpeed <= 0 {
		p.FastSpeed = 100
	}
	if p.FastJitter <= 0 || p.FastJitter >= p.FastSpeed {
		p.FastJitter = p.FastSpeed / 5
	}
	if p.Duration <= 0 {
		p.Duration = 240
	}
	if p.UpdateInterval <= 0 {
		p.UpdateInterval = p.Duration / 8
	}
	return p
}

// SpeedMixGenerator produces the deterministic speed-mixture report stream.
type SpeedMixGenerator struct {
	params SpeedMixParams
	rng    *rand.Rand
	objs   []model.Object
	slow   []bool // cohort per object, fixed at creation
	round  int
	next   int
}

// NewSpeedMixGenerator builds the population at time 0: the first
// SlowFraction·N objects are the slow cohort, the rest the fast one, all
// with uniform headings.
func NewSpeedMixGenerator(p SpeedMixParams) (*SpeedMixGenerator, error) {
	p = p.withDefaults()
	if p.UpdateInterval > p.Duration {
		return nil, fmt.Errorf("workload: speed-mix update interval %g exceeds duration %g",
			p.UpdateInterval, p.Duration)
	}
	g := &SpeedMixGenerator{
		params: p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		objs:   make([]model.Object, p.NumObjects),
		slow:   make([]bool, p.NumObjects),
	}
	for i := range g.objs {
		g.slow[i] = float64(i) < p.SlowFraction*float64(p.NumObjects)
		g.objs[i] = model.Object{
			ID: model.ObjectID(i + 1),
			Pos: geom.V(
				p.Domain.MinX+g.rng.Float64()*p.Domain.Width(),
				p.Domain.MinY+g.rng.Float64()*p.Domain.Height(),
			),
			Vel: g.velocity(g.slow[i]),
			T:   0,
		}
	}
	return g, nil
}

// Params returns the (defaulted) parameter set in effect.
func (g *SpeedMixGenerator) Params() SpeedMixParams { return g.params }

// velocity draws one velocity for the given cohort: uniform heading, speed
// uniform within the cohort's band.
func (g *SpeedMixGenerator) velocity(slow bool) geom.Vec2 {
	p := g.params
	speed := p.FastSpeed + (g.rng.Float64()*2-1)*p.FastJitter
	if slow {
		speed = p.SlowSpeed + (g.rng.Float64()*2-1)*p.SlowJitter
	}
	ang := g.rng.Float64() * 2 * math.Pi
	return geom.V(speed*math.Cos(ang), speed*math.Sin(ang))
}

// Initial returns the population at time 0. The returned slice is a copy;
// the generator keeps evolving its own state as Next is called.
func (g *SpeedMixGenerator) Initial() []model.Object {
	return append([]model.Object(nil), g.objs...)
}

// VelocitySample draws n velocities from the mixture — the upfront analysis
// sample for a store partitioned before the stream starts.
func (g *SpeedMixGenerator) VelocitySample(n int) []geom.Vec2 {
	p := g.params
	sub := &SpeedMixGenerator{params: p, rng: rand.New(rand.NewSource(p.Seed + 7))}
	out := make([]geom.Vec2, n)
	for i := range out {
		out[i] = sub.velocity(float64(i%1000) < p.SlowFraction*1000)
	}
	return out
}

// Next pulls the next location report, time-ordered: object i of round k
// reports at (k + i/N) · UpdateInterval with a fresh heading from its
// cohort, its position advanced linearly since its previous report (wrapped
// into the domain). ok is false once the stream passes the duration.
func (g *SpeedMixGenerator) Next() (model.Object, bool) {
	p := g.params
	t := (float64(g.round) + float64(g.next)/float64(len(g.objs))) * p.UpdateInterval
	if t > p.Duration {
		return model.Object{}, false
	}
	i := g.next
	g.next++
	if g.next == len(g.objs) {
		g.next = 0
		g.round++
	}
	o := g.objs[i]
	dt := t - o.T
	o.Pos = g.wrap(o.Pos.Add(o.Vel.Scale(dt)))
	o.Vel = g.velocity(g.slow[i])
	o.T = t
	g.objs[i] = o
	return o, true
}

// wrap folds a position back into the domain (toroidal), keeping the
// population density constant however long the run.
func (g *SpeedMixGenerator) wrap(v geom.Vec2) geom.Vec2 {
	d := g.params.Domain
	w, h := d.Width(), d.Height()
	x := math.Mod(v.X-d.MinX, w)
	if x < 0 {
		x += w
	}
	y := math.Mod(v.Y-d.MinY, h)
	if y < 0 {
		y += h
	}
	return geom.V(d.MinX+x, d.MinY+y)
}

// Queries generates n circular predictive queries with issue times spread
// uniformly over [t0, t1] (the same shape DriftQueries produces, so the
// partition-objective experiment can issue identical query streams over
// every workload).
func (g *SpeedMixGenerator) Queries(n int, t0, t1, radius, predictive float64, seed int64) []model.RangeQuery {
	rng := rand.New(rand.NewSource(seed))
	d := g.params.Domain
	out := make([]model.RangeQuery, n)
	for i := range out {
		issue := t0 + (t1-t0)*float64(i+1)/float64(n+1)
		c := geom.V(d.MinX+rng.Float64()*d.Width(), d.MinY+rng.Float64()*d.Height())
		out[i] = model.RangeQuery{
			Kind:   model.TimeSlice,
			Circle: geom.Circle{C: c, R: radius},
			Rect:   geom.Circle{C: c, R: radius}.Bound(),
			Now:    issue,
			T0:     issue + predictive,
		}
	}
	return out
}
