package workload

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/geom"
	"repro/internal/model"
)

// Trace persistence: update streams serialized as CSV so workloads can be
// captured once (e.g. from real GPS feeds) and replayed deterministically
// against any index configuration. The format matches cmd/datagen's
// `-what updates` output with the old record appended:
//
//	t,id,x,y,vx,vy,old_x,old_y,old_vx,old_vy,old_t
//
// and an initial-population header section is written separately by
// WriteObjects (id,x,y,vx,vy,t — datagen's `-what objects` format).

// WriteObjects serializes an object population.
func WriteObjects(w io.Writer, objs []model.Object) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "id,x,y,vx,vy,t"); err != nil {
		return err
	}
	for _, o := range objs {
		if _, err := fmt.Fprintf(bw, "%d,%g,%g,%g,%g,%g\n",
			o.ID, o.Pos.X, o.Pos.Y, o.Vel.X, o.Vel.Y, o.T); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadObjects parses a population written by WriteObjects.
func ReadObjects(r io.Reader) ([]model.Object, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading objects: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: empty object trace")
	}
	out := make([]model.Object, 0, len(rows)-1)
	for i, row := range rows[1:] { // skip header
		if len(row) != 6 {
			return nil, fmt.Errorf("workload: object row %d has %d fields", i+2, len(row))
		}
		vals, err := parseFloats(row[1:])
		if err != nil {
			return nil, fmt.Errorf("workload: object row %d: %w", i+2, err)
		}
		id, err := strconv.ParseUint(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: object row %d id: %w", i+2, err)
		}
		out = append(out, model.Object{
			ID:  model.ObjectID(id),
			Pos: geom.V(vals[0], vals[1]),
			Vel: geom.V(vals[2], vals[3]),
			T:   vals[4],
		})
	}
	return out, nil
}

// WriteUpdates serializes an update stream (pull the events from a
// Generator or any other source).
func WriteUpdates(w io.Writer, next func() (UpdateEvent, bool)) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t,id,x,y,vx,vy,old_x,old_y,old_vx,old_vy,old_t"); err != nil {
		return err
	}
	for {
		ev, ok := next()
		if !ok {
			break
		}
		if _, err := fmt.Fprintf(bw, "%g,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			ev.T, ev.New.ID,
			ev.New.Pos.X, ev.New.Pos.Y, ev.New.Vel.X, ev.New.Vel.Y,
			ev.Old.Pos.X, ev.Old.Pos.Y, ev.Old.Vel.X, ev.Old.Vel.Y, ev.Old.T); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadUpdates parses a stream written by WriteUpdates, returning a pull
// function with the same shape as Generator.NextUpdate.
func ReadUpdates(r io.Reader) (func() (UpdateEvent, bool, error), error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading update header: %w", err)
	}
	if len(header) != 11 {
		return nil, fmt.Errorf("workload: update header has %d fields, want 11", len(header))
	}
	return func() (UpdateEvent, bool, error) {
		row, err := cr.Read()
		if err == io.EOF {
			return UpdateEvent{}, false, nil
		}
		if err != nil {
			return UpdateEvent{}, false, err
		}
		id, err := strconv.ParseUint(row[1], 10, 64)
		if err != nil {
			return UpdateEvent{}, false, fmt.Errorf("workload: update id: %w", err)
		}
		vals := make([]float64, 0, 10)
		for _, f := range append(row[:1:1], row[2:]...) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return UpdateEvent{}, false, fmt.Errorf("workload: update field %q: %w", f, err)
			}
			vals = append(vals, v)
		}
		ev := UpdateEvent{
			T: vals[0],
			New: model.Object{
				ID:  model.ObjectID(id),
				Pos: geom.V(vals[1], vals[2]),
				Vel: geom.V(vals[3], vals[4]),
				T:   vals[0],
			},
			Old: model.Object{
				ID:  model.ObjectID(id),
				Pos: geom.V(vals[5], vals[6]),
				Vel: geom.V(vals[7], vals[8]),
				T:   vals[9],
			},
		}
		return ev, true, nil
	}, nil
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("field %d (%q): %w", i, f, err)
		}
		out[i] = v
	}
	return out, nil
}
