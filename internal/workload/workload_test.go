package workload

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

func smallParams(ds Dataset) Params {
	p := DefaultParams(ds, 500)
	p.Duration = 60
	p.NumQueries = 20
	p.SampleSize = 300
	p.Domain = geom.R(0, 0, 20000, 20000)
	return p
}

func TestGeneratorInitialPopulation(t *testing.T) {
	for _, ds := range Datasets() {
		g, err := NewGenerator(smallParams(ds))
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		init := g.Initial()
		if len(init) != 500 {
			t.Fatalf("%s: %d objects", ds, len(init))
		}
		seen := map[model.ObjectID]bool{}
		for _, o := range init {
			if o.T != 0 {
				t.Fatalf("%s: initial reference time %g", ds, o.T)
			}
			if !g.Params().Domain.ContainsPoint(o.Pos) {
				t.Fatalf("%s: object outside domain", ds)
			}
			if o.Vel.Norm() > g.Params().MaxSpeed+1e-9 {
				t.Fatalf("%s: speed %g above max", ds, o.Vel.Norm())
			}
			if seen[o.ID] {
				t.Fatalf("%s: duplicate id %d", ds, o.ID)
			}
			seen[o.ID] = true
		}
	}
}

func TestUpdateStreamOrderedAndConsistent(t *testing.T) {
	g, err := NewGenerator(smallParams(Chicago))
	if err != nil {
		t.Fatal(err)
	}
	last := map[model.ObjectID]model.Object{}
	for _, o := range g.Initial() {
		last[o.ID] = o
	}
	prevT := 0.0
	count := 0
	maxUI := g.Params().MaxUpdateInterval
	for {
		ev, ok := g.NextUpdate()
		if !ok {
			break
		}
		count++
		if ev.T < prevT {
			t.Fatalf("stream out of order: %g after %g", ev.T, prevT)
		}
		prevT = ev.T
		if ev.T > g.Params().Duration {
			t.Fatalf("event beyond duration: %g", ev.T)
		}
		// Old record must be exactly the object's last reported state.
		want, ok := last[ev.Old.ID]
		if !ok {
			t.Fatalf("update for unknown object %d", ev.Old.ID)
		}
		if want != ev.Old {
			t.Fatalf("old record mismatch for %d:\n have %+v\n want %+v",
				ev.Old.ID, ev.Old, want)
		}
		// Continuity: new reference position on the old trajectory.
		if ev.New.Pos.DistTo(ev.Old.PosAt(ev.New.T)) > 1e-6*(1+ev.New.Pos.Norm()) {
			t.Fatal("discontinuous update")
		}
		if ev.New.T-ev.Old.T > maxUI+1e-9 {
			t.Fatalf("update gap %g exceeds max interval", ev.New.T-ev.Old.T)
		}
		last[ev.New.ID] = ev.New
	}
	if count == 0 {
		t.Fatal("no updates generated")
	}
	// Roughly: every object updates at least every maxUI; duration 60 =>
	// at least ~ n * duration/maxUI events for road data (far more since
	// edges are short).
	if count < 500*int(60/maxUI) {
		t.Fatalf("suspiciously few updates: %d", count)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, _ := NewGenerator(smallParams(SanFrancisco))
	g2, _ := NewGenerator(smallParams(SanFrancisco))
	u1 := g1.Updates()
	u2 := g2.Updates()
	if len(u1) != len(u2) {
		t.Fatalf("update counts differ: %d vs %d", len(u1), len(u2))
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	q1 := g1.Queries(10)
	q2 := g2.Queries(10)
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatal("queries differ")
		}
	}
}

func TestQueriesValid(t *testing.T) {
	g, _ := NewGenerator(smallParams(Melbourne))
	for _, q := range g.Queries(25) {
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		if !q.IsCircle() {
			t.Fatal("default queries should be circular")
		}
		if math.Abs((q.T0-q.Now)-g.Params().PredictiveTime) > 1e-9 {
			t.Fatalf("predictive gap %g", q.T0-q.Now)
		}
	}
	p := smallParams(Melbourne)
	p.UseRectQueries = true
	g2, _ := NewGenerator(p)
	for _, q := range g2.Queries(5) {
		if q.IsCircle() {
			t.Fatal("rect workload produced circles")
		}
		if math.Abs(q.Rect.Width()-p.RectQuerySide) > 1e-9 {
			t.Fatalf("rect side %g", q.Rect.Width())
		}
	}
	for _, q := range g.IntervalQueries(5, 20) {
		if q.Kind != model.TimeInterval || q.T1-q.T0 != 20 {
			t.Fatalf("interval query wrong: %+v", q)
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range g.MovingQueries(5, 20) {
		if q.Kind != model.MovingRange {
			t.Fatal("kind")
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVelocitySampleSkew(t *testing.T) {
	// Chicago velocities must be concentrated near the two grid axes;
	// uniform velocities must not.
	alignedFrac := func(ds Dataset) float64 {
		g, err := NewGenerator(smallParams(ds))
		if err != nil {
			t.Fatal(err)
		}
		sample := g.VelocitySample(300)
		if len(sample) != 300 {
			t.Fatalf("sample size %d", len(sample))
		}
		aligned := 0
		for _, v := range sample {
			if v.Norm() == 0 {
				continue
			}
			d := v.Normalize()
			// Chicago's base angle is 0.
			if math.Abs(d.X) > math.Cos(10*math.Pi/180) || math.Abs(d.Y) > math.Cos(10*math.Pi/180) {
				aligned++
			}
		}
		return float64(aligned) / 300
	}
	ch := alignedFrac(Chicago)
	un := alignedFrac(Uniform)
	t.Logf("aligned: CH=%.2f uniform=%.2f", ch, un)
	if ch < 0.75 {
		t.Fatalf("Chicago sample should be axis-aligned: %.2f", ch)
	}
	if un > 0.5 {
		t.Fatalf("uniform sample too aligned: %.2f", un)
	}
}

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams(Chicago, 100000)
	if p.MaxSpeed != 100 || p.MaxUpdateInterval != 120 || p.Duration != 240 ||
		p.QueryRadius != 500 || p.PredictiveTime != 60 ||
		p.Domain != geom.R(0, 0, 100000, 100000) || p.SampleSize != 10000 {
		t.Fatalf("Table 1 defaults wrong: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformHasNoNetwork(t *testing.T) {
	g, err := NewGenerator(smallParams(Uniform))
	if err != nil {
		t.Fatal(err)
	}
	if g.Network() != nil {
		t.Fatal("uniform workload should have no network")
	}
	// Updates still flow and respect the interval.
	ev, ok := g.NextUpdate()
	if !ok {
		t.Fatal("no updates")
	}
	if ev.T <= 0 || ev.T > g.Params().Duration {
		t.Fatalf("bad event time %g", ev.T)
	}
}
