// Package workload reimplements the moving-object index benchmark of Chen,
// Jensen and Lin (PVLDB 2008, [6] in the VP paper) that the paper's entire
// experimental study runs on: populations of linear-motion objects driven
// over road networks (or uniformly, for the synthetic data set), a
// time-ordered update stream respecting a maximum update interval, and
// predictive range query streams. All parameters and defaults follow
// Table 1 of the paper; everything is deterministic under a seed.
package workload

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/roadnet"
)

// Dataset names a data distribution: one of the four road-network presets
// or the uniform synthetic distribution.
type Dataset string

const (
	Chicago      Dataset = Dataset(roadnet.Chicago)
	SanFrancisco Dataset = Dataset(roadnet.SanFrancisco)
	Melbourne    Dataset = Dataset(roadnet.Melbourne)
	NewYork      Dataset = Dataset(roadnet.NewYork)
	Uniform      Dataset = "uniform"
)

// Datasets lists all five in the paper's order.
func Datasets() []Dataset {
	return []Dataset{Chicago, SanFrancisco, Melbourne, NewYork, Uniform}
}

// Params is the experiment parameter set of Table 1. Bold defaults are
// produced by DefaultParams.
type Params struct {
	Dataset           Dataset
	NumObjects        int     // 100K ... 500K (default 100K)
	MaxSpeed          float64 // 20 ... 200 m/ts (default 100)
	MaxUpdateInterval float64 // 120 ts
	Duration          float64 // 240 ts (600 in one experiment)
	QueryRadius       float64 // 100 ... 1000 m (default 500), circular queries
	RectQuerySide     float64 // 1000 m sides for the rectangular variant
	UseRectQueries    bool
	PredictiveTime    float64 // 0 ... 120 ts (default 60)
	NumQueries        int
	SampleSize        int // velocity sample for the analyzer (paper: 10,000)
	OffRoadFraction   float64
	Seed              int64
	Domain            geom.Rect
}

// DefaultParams returns Table 1's bold settings, with the object count and
// query count scaled by the caller (paper scale: 100000 objects; the test
// suite uses smaller populations).
func DefaultParams(ds Dataset, numObjects int) Params {
	return Params{
		Dataset:           ds,
		NumObjects:        numObjects,
		MaxSpeed:          100,
		MaxUpdateInterval: 120,
		Duration:          240,
		QueryRadius:       500,
		RectQuerySide:     1000,
		PredictiveTime:    60,
		NumQueries:        200,
		SampleSize:        10000,
		OffRoadFraction:   0.04,
		Seed:              42,
		Domain:            geom.R(0, 0, 100000, 100000),
	}
}

func (p Params) withDefaults() Params {
	if p.Domain.IsEmpty() || p.Domain.Area() == 0 {
		p.Domain = geom.R(0, 0, 100000, 100000)
	}
	if p.NumObjects <= 0 {
		p.NumObjects = 1000
	}
	if p.MaxSpeed <= 0 {
		p.MaxSpeed = 100
	}
	if p.MaxUpdateInterval <= 0 {
		p.MaxUpdateInterval = 120
	}
	if p.Duration <= 0 {
		p.Duration = 240
	}
	if p.QueryRadius <= 0 {
		p.QueryRadius = 500
	}
	if p.RectQuerySide <= 0 {
		p.RectQuerySide = 1000
	}
	if p.NumQueries <= 0 {
		p.NumQueries = 100
	}
	if p.SampleSize <= 0 {
		p.SampleSize = 10000
	}
	if p.SampleSize > p.NumObjects {
		p.SampleSize = p.NumObjects
	}
	return p
}

// UpdateEvent is one object update: the record being replaced and its
// replacement (an index processes it as Delete(Old) + Insert(New)).
type UpdateEvent struct {
	T        float64
	Old, New model.Object
}

// Generator produces a deterministic workload: an initial population, a
// time-ordered update stream (pull-based, so paper-scale runs do not
// materialize millions of events), velocity samples, and query streams.
type Generator struct {
	params    Params
	net       *roadnet.Network
	travelers []*roadnet.Traveler
	initial   []model.Object

	// Event heap: one pending event per traveler.
	heap eventHeap
}

// NewGenerator builds the network (if any) and the initial population at
// time 0.
func NewGenerator(p Params) (*Generator, error) {
	p = p.withDefaults()
	g := &Generator{params: p}
	rng := rand.New(rand.NewSource(p.Seed))

	if p.Dataset != Uniform {
		cfg, err := roadnet.PresetConfig(roadnet.Preset(p.Dataset), p.Domain, p.Seed)
		if err != nil {
			return nil, err
		}
		net, err := roadnet.Generate(cfg)
		if err != nil {
			return nil, err
		}
		g.net = net
	}

	g.travelers = make([]*roadnet.Traveler, p.NumObjects)
	g.initial = make([]model.Object, p.NumObjects)
	for i := range g.travelers {
		offRoad := g.net == nil || rng.Float64() < p.OffRoadFraction
		tr := roadnet.NewTraveler(g.net, model.ObjectID(i+1),
			rand.New(rand.NewSource(p.Seed^int64(i*2654435761+1))),
			p.MaxSpeed, offRoad, p.Domain, 0)
		g.travelers[i] = tr
		g.initial[i] = tr.State()
	}
	// Prime the event heap with each traveler's first event.
	g.heap = make(eventHeap, 0, p.NumObjects)
	for i, tr := range g.travelers {
		old := tr.State()
		next, t := tr.NextEvent(p.MaxUpdateInterval)
		heap.Push(&g.heap, pendingEvent{t: t, idx: i, old: old, new: next})
	}
	return g, nil
}

// Params returns the (defaulted) parameter set in effect.
func (g *Generator) Params() Params { return g.params }

// Network returns the underlying road network (nil for Uniform).
func (g *Generator) Network() *roadnet.Network { return g.net }

// Initial returns the population at time 0. The slice is shared; callers
// must not mutate it.
func (g *Generator) Initial() []model.Object { return g.initial }

// VelocitySample returns n velocity points from the initial population (the
// analyzer's input; the paper samples 10,000 velocity points from the
// current workload).
func (g *Generator) VelocitySample(n int) []geom.Vec2 {
	if n > len(g.initial) {
		n = len(g.initial)
	}
	rng := rand.New(rand.NewSource(g.params.Seed + 7))
	out := make([]geom.Vec2, n)
	for i, p := range rng.Perm(len(g.initial))[:n] {
		out[i] = g.initial[p].Vel
	}
	return out
}

// NextUpdate pulls the next update event, or ok=false when the stream has
// passed the workload duration.
func (g *Generator) NextUpdate() (UpdateEvent, bool) {
	for g.heap.Len() > 0 {
		pe := heap.Pop(&g.heap).(pendingEvent)
		if pe.t > g.params.Duration {
			// All later events exceed the duration too (heap order), but
			// other travelers may still have earlier ones; only this
			// traveler is done. Do not reschedule it.
			continue
		}
		tr := g.travelers[pe.idx]
		old := tr.State()
		next, t := tr.NextEvent(g.params.MaxUpdateInterval)
		heap.Push(&g.heap, pendingEvent{t: t, idx: pe.idx, old: old, new: next})
		return UpdateEvent{T: pe.t, Old: pe.old, New: pe.new}, true
	}
	return UpdateEvent{}, false
}

// Updates materializes the entire update stream (convenient at test scale;
// paper-scale callers should pull from NextUpdate).
func (g *Generator) Updates() []UpdateEvent {
	var out []UpdateEvent
	for {
		ev, ok := g.NextUpdate()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// Queries generates the predictive range query stream: n queries with issue
// times spread uniformly over (0, Duration], each asking about issue time +
// PredictiveTime, centered uniformly in the domain. Circular by default;
// rectangular (RectQuerySide squares) when UseRectQueries is set.
func (g *Generator) Queries(n int) []model.RangeQuery {
	p := g.params
	rng := rand.New(rand.NewSource(p.Seed + 13))
	out := make([]model.RangeQuery, n)
	for i := range out {
		issue := p.Duration * float64(i+1) / float64(n+1)
		c := geom.V(
			p.Domain.MinX+rng.Float64()*p.Domain.Width(),
			p.Domain.MinY+rng.Float64()*p.Domain.Height(),
		)
		q := model.RangeQuery{
			Kind: model.TimeSlice,
			Now:  issue,
			T0:   issue + p.PredictiveTime,
		}
		if p.UseRectQueries {
			q.Rect = geom.RectFromCenter(c, p.RectQuerySide/2, p.RectQuerySide/2)
		} else {
			q.Circle = geom.Circle{C: c, R: p.QueryRadius}
			q.Rect = q.Circle.Bound()
		}
		out[i] = q
	}
	return out
}

// IntervalQueries and MovingQueries produce the other two query types of
// Section 2.1 for the correctness suites and the extension benches.
func (g *Generator) IntervalQueries(n int, length float64) []model.RangeQuery {
	qs := g.Queries(n)
	for i := range qs {
		qs[i].Kind = model.TimeInterval
		qs[i].T1 = qs[i].T0 + length
	}
	return qs
}

// MovingQueries attaches a random velocity to each query region.
func (g *Generator) MovingQueries(n int, length float64) []model.RangeQuery {
	p := g.params
	rng := rand.New(rand.NewSource(p.Seed + 17))
	qs := g.Queries(n)
	for i := range qs {
		qs[i].Kind = model.MovingRange
		qs[i].T1 = qs[i].T0 + length
		qs[i].Vel = geom.V(rng.Float64()*p.MaxSpeed-p.MaxSpeed/2,
			rng.Float64()*p.MaxSpeed-p.MaxSpeed/2)
	}
	return qs
}

// Validate sanity-checks parameter combinations that would make a workload
// meaningless.
func (p Params) Validate() error {
	p = p.withDefaults()
	if p.MaxUpdateInterval > p.Duration*10 {
		return fmt.Errorf("workload: max update interval %g absurd for duration %g",
			p.MaxUpdateInterval, p.Duration)
	}
	return nil
}

// --- event heap ------------------------------------------------------------

type pendingEvent struct {
	t        float64
	idx      int
	old, new model.Object
}

type eventHeap []pendingEvent

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(pendingEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
