package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestObjectsRoundTrip(t *testing.T) {
	g, err := NewGenerator(smallParams(Chicago))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteObjects(&buf, g.Initial()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadObjects(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Initial()
	if len(got) != len(want) {
		t.Fatalf("%d vs %d objects", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("object %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestUpdatesRoundTrip(t *testing.T) {
	g, err := NewGenerator(smallParams(SanFrancisco))
	if err != nil {
		t.Fatal(err)
	}
	want := g.Updates()
	// Regenerate to re-stream the same events.
	g2, err := NewGenerator(smallParams(SanFrancisco))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, func() (UpdateEvent, bool) { return g2.NextUpdate() }); err != nil {
		t.Fatal(err)
	}
	next, err := ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		ev, ok, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("stream ended at %d of %d", i, len(want))
		}
		if ev.T != w.T || ev.New != w.New {
			t.Fatalf("event %d: %+v vs %+v", i, ev, w)
		}
		// Old record round-trips everything except its redundant ID (same
		// as New) — check the trajectory fields.
		if ev.Old.Pos != w.Old.Pos || ev.Old.Vel != w.Old.Vel || ev.Old.T != w.Old.T {
			t.Fatalf("event %d old: %+v vs %+v", i, ev.Old, w.Old)
		}
	}
	if _, ok, _ := next(); ok {
		t.Fatal("stream has extra events")
	}
}

func TestReadObjectsMalformed(t *testing.T) {
	cases := []string{
		"",                              // empty
		"id,x,y,vx,vy,t\n1,2,3\n",       // wrong field count
		"id,x,y,vx,vy,t\nx,1,2,3,4,5\n", // bad id
		"id,x,y,vx,vy,t\n1,a,2,3,4,5\n", // bad float
	}
	for i, c := range cases {
		if _, err := ReadObjects(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestReadUpdatesMalformed(t *testing.T) {
	if _, err := ReadUpdates(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("short header accepted")
	}
	next, err := ReadUpdates(strings.NewReader(
		"t,id,x,y,vx,vy,old_x,old_y,old_vx,old_vy,old_t\n1,zz,0,0,0,0,0,0,0,0,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := next(); err == nil {
		t.Fatal("bad id row accepted")
	}
}
