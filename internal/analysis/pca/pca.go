// Package pca implements 2-D principal components analysis (Section 2.2 of
// the VP paper). It is deliberately specialized: the VP technique only ever
// analyzes 2-D velocity points, so the eigen-decomposition of the symmetric
// 2x2 scatter matrix is closed-form.
//
// Two scatter conventions are provided. Centered is textbook PCA (variance
// about the mean). Uncentered uses the second moment about the origin; its
// first eigenvector is the axis through the origin minimizing the summed
// squared perpendicular distances of the points — precisely the objective
// Algorithm 2 of the paper minimizes when clustering velocity points around
// dominant velocity axes, and identical to centered PCA when traffic flows
// both ways along each road (mean velocity ~ 0).
package pca

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Mode selects the scatter matrix convention.
type Mode int

const (
	// Centered computes variance about the sample mean (textbook PCA).
	Centered Mode = iota
	// Uncentered computes the second moment about the origin; the first
	// PC is then the best-fit axis through the origin.
	Uncentered
)

// Result is the outcome of a 2-D PCA.
type Result struct {
	Mean    geom.Vec2 // sample mean (zero vector for Uncentered mode)
	PC1     geom.Vec2 // first principal component, unit length
	PC2     geom.Vec2 // second principal component, unit length, PC1.Perp()
	Lambda1 float64   // variance along PC1 (>= Lambda2 >= 0)
	Lambda2 float64   // variance along PC2
}

// ErrTooFewPoints is returned when fewer than one point is supplied.
var ErrTooFewPoints = fmt.Errorf("pca: need at least one point")

// Analyze runs PCA over the points. For degenerate inputs (all points
// identical, or all at the origin in Uncentered mode) the principal
// directions default to the standard axes with zero variance.
func Analyze(points []geom.Vec2, mode Mode) (Result, error) {
	if len(points) == 0 {
		return Result{}, ErrTooFewPoints
	}
	var mean geom.Vec2
	if mode == Centered {
		for _, p := range points {
			mean = mean.Add(p)
		}
		mean = mean.Scale(1 / float64(len(points)))
	}
	// Scatter matrix [[sxx, sxy], [sxy, syy]].
	var sxx, sxy, syy float64
	for _, p := range points {
		d := p.Sub(mean)
		sxx += d.X * d.X
		sxy += d.X * d.Y
		syy += d.Y * d.Y
	}
	n := float64(len(points))
	sxx /= n
	sxy /= n
	syy /= n

	l1, l2, v1 := eigenSym2(sxx, sxy, syy)
	res := Result{
		Mean:    mean,
		PC1:     v1,
		PC2:     v1.Perp(),
		Lambda1: l1,
		Lambda2: l2,
	}
	return res, nil
}

// eigenSym2 returns the eigenvalues (descending) and the unit eigenvector of
// the larger eigenvalue for the symmetric matrix [[a, b], [b, c]].
func eigenSym2(a, b, c float64) (l1, l2 float64, v1 geom.Vec2) {
	tr := a + c
	disc := math.Sqrt((a-c)*(a-c) + 4*b*b)
	l1 = (tr + disc) / 2
	l2 = (tr - disc) / 2
	// Eigenvector for l1: rows of (M - l1*I) are orthogonal to it, so v1 is
	// proportional to (b, l1-a) or (l1-c, b); pick the numerically larger.
	u := geom.Vec2{X: b, Y: l1 - a}
	w := geom.Vec2{X: l1 - c, Y: b}
	if w.NormSq() > u.NormSq() {
		u = w
	}
	if u.NormSq() == 0 {
		// Isotropic (or zero) scatter: any direction is principal; use x.
		u = geom.Vec2{X: 1, Y: 0}
	}
	u = u.Normalize()
	// Canonical sign: make the representative direction point into the
	// right half-plane (x > 0, ties broken by y > 0) so axes compare
	// stably across runs. An axis and its negation are the same DVA.
	if u.X < 0 || (u.X == 0 && u.Y < 0) {
		u = u.Scale(-1)
	}
	return l1, l2, u
}

// Axis reports PC1 as the dominant axis with its "dominance" ratio
// lambda1/(lambda1+lambda2) in [0.5, 1]; 1 means perfectly 1-D data. The
// velocity analyzer uses the ratio as a diagnostic of how 1-D a partition
// has become after outlier removal.
func (r Result) Axis() (dir geom.Vec2, dominance float64) {
	total := r.Lambda1 + r.Lambda2
	if total <= 0 {
		return r.PC1, 0.5
	}
	return r.PC1, r.Lambda1 / total
}
