package pca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil, Centered); err != ErrTooFewPoints {
		t.Fatalf("err = %v, want ErrTooFewPoints", err)
	}
}

func TestAnalyzeDegenerateSinglePoint(t *testing.T) {
	res, err := Analyze([]geom.Vec2{{X: 3, Y: 4}}, Centered)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda1 != 0 || res.Lambda2 != 0 {
		t.Fatalf("single centered point should have zero variance: %+v", res)
	}
	// Uncentered: the single point defines the axis through the origin.
	res, err = Analyze([]geom.Vec2{{X: 3, Y: 4}}, Uncentered)
	if err != nil {
		t.Fatal(err)
	}
	want := geom.V(3, 4).Normalize()
	if math.Abs(res.PC1.Dot(want))+1e-9 < 1 {
		t.Fatalf("PC1 = %v, want +-%v", res.PC1, want)
	}
}

func TestPCUnitAndOrthogonal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Vec2, 50)
		for i := range pts {
			pts[i] = geom.V(rng.NormFloat64()*10, rng.NormFloat64()*3)
		}
		for _, mode := range []Mode{Centered, Uncentered} {
			res, err := Analyze(pts, mode)
			if err != nil {
				return false
			}
			if math.Abs(res.PC1.Norm()-1) > 1e-9 || math.Abs(res.PC2.Norm()-1) > 1e-9 {
				return false
			}
			if math.Abs(res.PC1.Dot(res.PC2)) > 1e-9 {
				return false
			}
			if res.Lambda1 < res.Lambda2 || res.Lambda2 < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKnownAxis(t *testing.T) {
	// Points spread along the diagonal with small perpendicular noise.
	rng := rand.New(rand.NewSource(11))
	dir := geom.V(1, 1).Normalize()
	perp := dir.Perp()
	pts := make([]geom.Vec2, 500)
	for i := range pts {
		along := rng.NormFloat64() * 20
		across := rng.NormFloat64() * 0.5
		pts[i] = dir.Scale(along).Add(perp.Scale(across))
	}
	for _, mode := range []Mode{Centered, Uncentered} {
		res, err := Analyze(pts, mode)
		if err != nil {
			t.Fatal(err)
		}
		if got := math.Abs(res.PC1.Dot(dir)); got < 0.999 {
			t.Fatalf("mode %v: PC1 %v not aligned with diagonal (|cos| = %g)", mode, res.PC1, got)
		}
		if res.Lambda1 < 100*res.Lambda2 {
			t.Fatalf("mode %v: eigenvalue gap too small: %g vs %g", mode, res.Lambda1, res.Lambda2)
		}
		_, dom := res.Axis()
		if dom < 0.98 {
			t.Fatalf("mode %v: dominance %g, want near 1", mode, dom)
		}
	}
}

func TestVarianceDecomposition(t *testing.T) {
	// lambda1 + lambda2 must equal total variance (trace invariance).
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Vec2, 300)
	for i := range pts {
		pts[i] = geom.V(rng.NormFloat64()*7, rng.NormFloat64()*2+1)
	}
	res, err := Analyze(pts, Centered)
	if err != nil {
		t.Fatal(err)
	}
	var mean geom.Vec2
	for _, p := range pts {
		mean = mean.Add(p)
	}
	mean = mean.Scale(1 / float64(len(pts)))
	var total float64
	for _, p := range pts {
		total += p.Sub(mean).NormSq()
	}
	total /= float64(len(pts))
	if math.Abs(res.Lambda1+res.Lambda2-total) > 1e-9*total {
		t.Fatalf("trace mismatch: %g vs %g", res.Lambda1+res.Lambda2, total)
	}
}

func TestUncenteredMinimizesPerpDist(t *testing.T) {
	// The first uncentered PC must beat (or match) any other axis through
	// the origin on summed squared perpendicular distance.
	rng := rand.New(rand.NewSource(17))
	pts := make([]geom.Vec2, 200)
	for i := range pts {
		ang := 0.3 + rng.NormFloat64()*0.1
		r := rng.Float64()*50 - 25
		pts[i] = geom.V(r*math.Cos(ang), r*math.Sin(ang))
	}
	res, err := Analyze(pts, Uncentered)
	if err != nil {
		t.Fatal(err)
	}
	cost := func(axis geom.Vec2) float64 {
		var s float64
		for _, p := range pts {
			d := p.PerpDistToAxis(axis)
			s += d * d
		}
		return s
	}
	best := cost(res.PC1)
	for a := 0.0; a < math.Pi; a += 0.01 {
		if c := cost(geom.V(math.Cos(a), math.Sin(a))); c < best-1e-6 {
			t.Fatalf("axis at angle %g beats PC1: %g < %g", a, c, best)
		}
	}
}

func TestCanonicalSign(t *testing.T) {
	// PC1 must land in the right half-plane regardless of data sign.
	pts := []geom.Vec2{{X: -5, Y: -5}, {X: 5, Y: 5}, {X: -10, Y: -10}}
	res, err := Analyze(pts, Uncentered)
	if err != nil {
		t.Fatal(err)
	}
	if res.PC1.X < 0 {
		t.Fatalf("PC1 %v not sign-canonical", res.PC1)
	}
}

func TestIsotropicData(t *testing.T) {
	// Perfectly isotropic scatter: any axis is fine; dominance ~ 0.5.
	pts := []geom.Vec2{{X: 1, Y: 0}, {X: -1, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: -1}}
	res, err := Analyze(pts, Uncentered)
	if err != nil {
		t.Fatal(err)
	}
	_, dom := res.Axis()
	if math.Abs(dom-0.5) > 1e-9 {
		t.Fatalf("dominance = %g, want 0.5", dom)
	}
}
