// Package cluster implements the clustering algorithms of Section 5.1 of
// the VP paper:
//
//   - KMeansAxes — the paper's approach (Algorithm 2, "FindDVAs"): k-means
//     where each cluster is represented by the first principal component of
//     its members and points are assigned by *perpendicular distance to that
//     axis*. This clusters velocity points by direction of travel.
//   - KMeansCentroids — naive approach II: classic centroid k-means, kept as
//     a baseline (the paper shows it fails to find DVAs, Fig. 10b/12a).
//
// Naive approach I (plain PCA over the whole sample) is just
// pca.Analyze(points, ...); the ablation bench calls it directly.
package cluster

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis/pca"
	"repro/internal/geom"
)

// AxisCluster is one DVA partition produced by KMeansAxes.
type AxisCluster struct {
	Axis    geom.Vec2 // unit direction of the cluster's 1st PC (the DVA)
	Count   int       // number of member points
	Var1    float64   // scatter along the axis
	Var2    float64   // scatter perpendicular to the axis
	Members []int     // indices into the input slice
}

// CentroidCluster is one partition produced by KMeansCentroids.
type CentroidCluster struct {
	Centroid geom.Vec2
	Axis     geom.Vec2 // 1st PC of the members (computed afterwards)
	Count    int
	Members  []int
}

// Options controls the iteration bounds shared by both algorithms.
type Options struct {
	MaxIter  int   // cap on reassignment rounds (default 100)
	Restarts int   // extra random restarts, best objective wins (default 2)
	Seed     int64 // RNG seed for the random initial assignment
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Restarts < 0 {
		o.Restarts = 0
	} else if o.Restarts == 0 {
		o.Restarts = 2
	}
	return o
}

// KMeansAxes partitions points into k clusters by perpendicular distance to
// each cluster's first principal component (Algorithm 2). It returns the
// clusters and the assignment (point index -> cluster index).
//
// Degenerate situations are handled the way a robust implementation must:
// an emptied cluster is reseeded with the point farthest from its current
// axis assignment, and the whole procedure is restarted a few times with
// different random initial partitions, keeping the assignment with the
// smallest total squared perpendicular distance.
func KMeansAxes(points []geom.Vec2, k int, opt Options) ([]AxisCluster, []int, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if len(points) < k {
		return nil, nil, fmt.Errorf("cluster: %d points cannot form %d clusters", len(points), k)
	}
	opt = opt.withDefaults()

	bestObjective := -1.0
	var bestAssign []int
	var bestAxes []geom.Vec2
	rng := rand.New(rand.NewSource(opt.Seed))

	for attempt := 0; attempt <= opt.Restarts; attempt++ {
		assign, axes, obj := runAxesOnce(points, k, opt.MaxIter, rng)
		if bestObjective < 0 || obj < bestObjective {
			bestObjective = obj
			bestAssign = assign
			bestAxes = axes
		}
	}

	clusters := make([]AxisCluster, k)
	for c := range clusters {
		clusters[c].Axis = bestAxes[c]
	}
	for i, c := range bestAssign {
		clusters[c].Members = append(clusters[c].Members, i)
		clusters[c].Count++
	}
	// Final per-cluster PCA for the variance diagnostics (and to refresh
	// the axis exactly once more over the final membership).
	for c := range clusters {
		if clusters[c].Count == 0 {
			continue
		}
		member := make([]geom.Vec2, 0, clusters[c].Count)
		for _, i := range clusters[c].Members {
			member = append(member, points[i])
		}
		res, err := pca.Analyze(member, pca.Uncentered)
		if err == nil {
			clusters[c].Axis = res.PC1
			clusters[c].Var1 = res.Lambda1
			clusters[c].Var2 = res.Lambda2
		}
	}
	return clusters, bestAssign, nil
}

// runAxesOnce performs one randomized run of Algorithm 2 and returns the
// assignment, the final axes and the total squared perpendicular distance.
func runAxesOnce(points []geom.Vec2, k, maxIter int, rng *rand.Rand) ([]int, []geom.Vec2, float64) {
	n := len(points)
	assign := make([]int, n)
	// Line 3-4: random initial partition, but guarantee every cluster gets
	// at least one point so the first PCA is defined.
	perm := rng.Perm(n)
	for i, p := range perm {
		if i < k {
			assign[p] = i
		} else {
			assign[p] = rng.Intn(k)
		}
	}
	axes := make([]geom.Vec2, k)
	members := make([][]geom.Vec2, k)

	for iter := 0; iter < maxIter; iter++ {
		// Line 6: recompute the 1st PC of each partition.
		for c := range members {
			members[c] = members[c][:0]
		}
		for i, c := range assign {
			members[c] = append(members[c], points[i])
		}
		for c := range axes {
			if len(members[c]) == 0 {
				// Reseed an emptied cluster with a random point.
				axes[c] = points[rng.Intn(n)].Normalize()
				if axes[c].Norm() == 0 {
					axes[c] = geom.Vec2{X: 1}
				}
				continue
			}
			res, err := pca.Analyze(members[c], pca.Uncentered)
			if err != nil {
				axes[c] = geom.Vec2{X: 1}
				continue
			}
			axes[c] = res.PC1
		}
		// Lines 7-9: move each point to the axis with the smallest
		// perpendicular distance.
		moved := false
		for i, p := range points {
			best := assign[i]
			bestD := p.PerpDistToAxis(axes[best])
			for c, ax := range axes {
				if c == best {
					continue
				}
				if d := p.PerpDistToAxis(ax); d < bestD {
					bestD = d
					best = c
				}
			}
			if best != assign[i] {
				assign[i] = best
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	var obj float64
	for i, p := range points {
		d := p.PerpDistToAxis(axes[assign[i]])
		obj += d * d
	}
	return assign, axes, obj
}

// KMeansCentroids is classic k-means on the raw points (naive approach II).
// Each returned cluster also carries the 1st PC of its members, which is
// what the naive approach would report as that cluster's DVA.
func KMeansCentroids(points []geom.Vec2, k int, opt Options) ([]CentroidCluster, []int, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if len(points) < k {
		return nil, nil, fmt.Errorf("cluster: %d points cannot form %d clusters", len(points), k)
	}
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	n := len(points)

	// Forgy initialization: k distinct random points as seeds.
	centroids := make([]geom.Vec2, k)
	for i, p := range rng.Perm(n)[:k] {
		centroids[i] = points[p]
	}
	assign := make([]int, n)
	for iter := 0; iter < opt.MaxIter; iter++ {
		moved := false
		for i, p := range points {
			best, bestD := 0, p.DistTo(centroids[0])
			for c := 1; c < k; c++ {
				if d := p.DistTo(centroids[c]); d < bestD {
					bestD = d
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				moved = true
			}
		}
		counts := make([]int, k)
		sums := make([]geom.Vec2, k)
		for i, c := range assign {
			counts[c]++
			sums[c] = sums[c].Add(points[i])
		}
		for c := range centroids {
			if counts[c] == 0 {
				centroids[c] = points[rng.Intn(n)]
				continue
			}
			centroids[c] = sums[c].Scale(1 / float64(counts[c]))
		}
		if !moved && iter > 0 {
			break
		}
	}

	clusters := make([]CentroidCluster, k)
	for c := range clusters {
		clusters[c].Centroid = centroids[c]
	}
	for i, c := range assign {
		clusters[c].Members = append(clusters[c].Members, i)
		clusters[c].Count++
	}
	for c := range clusters {
		if clusters[c].Count == 0 {
			clusters[c].Axis = geom.Vec2{X: 1}
			continue
		}
		member := make([]geom.Vec2, 0, clusters[c].Count)
		for _, i := range clusters[c].Members {
			member = append(member, points[i])
		}
		if res, err := pca.Analyze(member, pca.Centered); err == nil {
			clusters[c].Axis = res.PC1
		}
	}
	return clusters, assign, nil
}
