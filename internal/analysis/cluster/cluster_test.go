package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// twoAxisSample synthesizes a San-Francisco-like velocity distribution
// (Fig. 1b of the paper): two dominant axes with bidirectional traffic,
// Gaussian jitter across the axis, plus a fraction of outliers.
func twoAxisSample(n int, ang1, ang2, jitter, outlierFrac float64, seed int64) []geom.Vec2 {
	rng := rand.New(rand.NewSource(seed))
	dirs := []geom.Vec2{
		{X: math.Cos(ang1), Y: math.Sin(ang1)},
		{X: math.Cos(ang2), Y: math.Sin(ang2)},
	}
	pts := make([]geom.Vec2, n)
	for i := range pts {
		if rng.Float64() < outlierFrac {
			pts[i] = geom.V(rng.Float64()*200-100, rng.Float64()*200-100)
			continue
		}
		d := dirs[rng.Intn(2)]
		speed := 20 + rng.Float64()*80
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		p := d.Scale(speed)
		pts[i] = p.Add(d.Perp().Scale(rng.NormFloat64() * jitter))
	}
	return pts
}

// axisAngleDiff returns the angular distance between two axes (sign and
// direction agnostic, in [0, pi/2]).
func axisAngleDiff(a, b geom.Vec2) float64 {
	cos := math.Abs(a.Normalize().Dot(b.Normalize()))
	if cos > 1 {
		cos = 1
	}
	return math.Acos(cos)
}

func TestKMeansAxesRecoversOrthogonalDVAs(t *testing.T) {
	pts := twoAxisSample(5000, 0, math.Pi/2, 2.0, 0, 1)
	clusters, assign, err := KMeansAxes(pts, 2, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != len(pts) {
		t.Fatal("assignment length mismatch")
	}
	want := []geom.Vec2{{X: 1, Y: 0}, {X: 0, Y: 1}}
	for _, w := range want {
		found := false
		for _, c := range clusters {
			if axisAngleDiff(c.Axis, w) < 0.05 {
				found = true
			}
		}
		if !found {
			t.Fatalf("no cluster axis near %v: got %v and %v",
				w, clusters[0].Axis, clusters[1].Axis)
		}
	}
	// Balanced memberships (roughly half each).
	for _, c := range clusters {
		if c.Count < len(pts)/4 {
			t.Fatalf("unbalanced cluster: %d of %d", c.Count, len(pts))
		}
	}
}

func TestKMeansAxesRecoversNonOrthogonalDVAs(t *testing.T) {
	// The paper stresses VP works "for any number of DVAs separated by any
	// angle": axes at 10 and 55 degrees.
	a1, a2 := 10*math.Pi/180, 55*math.Pi/180
	pts := twoAxisSample(6000, a1, a2, 1.5, 0, 2)
	clusters, _, err := KMeansAxes(pts, 2, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, ang := range []float64{a1, a2} {
		w := geom.V(math.Cos(ang), math.Sin(ang))
		found := false
		for _, c := range clusters {
			if axisAngleDiff(c.Axis, w) < 0.06 {
				found = true
			}
		}
		if !found {
			t.Fatalf("axis %g deg not recovered (got %v, %v)",
				ang*180/math.Pi, clusters[0].Axis, clusters[1].Axis)
		}
	}
}

func TestKMeansAxesThreeDVAs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	angles := []float64{0, math.Pi / 3, 2 * math.Pi / 3}
	var pts []geom.Vec2
	for i := 0; i < 6000; i++ {
		ang := angles[rng.Intn(3)]
		d := geom.V(math.Cos(ang), math.Sin(ang))
		speed := 20 + rng.Float64()*80
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		pts = append(pts, d.Scale(speed).Add(d.Perp().Scale(rng.NormFloat64()*1.5)))
	}
	clusters, _, err := KMeansAxes(pts, 3, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, ang := range angles {
		w := geom.V(math.Cos(ang), math.Sin(ang))
		found := false
		for _, c := range clusters {
			if axisAngleDiff(c.Axis, w) < 0.08 {
				found = true
			}
		}
		if !found {
			t.Fatalf("axis %g deg not recovered", ang*180/math.Pi)
		}
	}
}

func TestKMeansAxesAssignmentConsistent(t *testing.T) {
	pts := twoAxisSample(2000, 0, math.Pi/2, 2.0, 0.05, 4)
	clusters, assign, err := KMeansAxes(pts, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Every point must be assigned to the cluster whose axis is closest
	// (the convergence condition of Algorithm 2).
	for i, p := range pts {
		d0 := p.PerpDistToAxis(clusters[0].Axis)
		d1 := p.PerpDistToAxis(clusters[1].Axis)
		got := assign[i]
		want := 0
		if d1 < d0 {
			want = 1
		}
		if got != want && math.Abs(d0-d1) > 1e-9 {
			t.Fatalf("point %d assigned to %d but axis %d is closer (%g vs %g)",
				i, got, want, d0, d1)
		}
	}
	// Cluster member lists mirror the assignment.
	total := 0
	for ci, c := range clusters {
		total += c.Count
		for _, m := range c.Members {
			if assign[m] != ci {
				t.Fatal("member list disagrees with assignment")
			}
		}
	}
	if total != len(pts) {
		t.Fatalf("cluster counts sum to %d, want %d", total, len(pts))
	}
}

func TestKMeansAxesSingleCluster(t *testing.T) {
	pts := twoAxisSample(500, math.Pi/4, math.Pi/4, 1.0, 0, 6)
	clusters, _, err := KMeansAxes(pts, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := axisAngleDiff(clusters[0].Axis, geom.V(1, 1)); d > 0.05 {
		t.Fatalf("single-cluster axis off by %g rad", d)
	}
}

func TestKMeansAxesErrors(t *testing.T) {
	pts := []geom.Vec2{{X: 1, Y: 1}}
	if _, _, err := KMeansAxes(pts, 0, Options{}); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, _, err := KMeansAxes(pts, 2, Options{}); err == nil {
		t.Fatal("more clusters than points should fail")
	}
}

func TestKMeansAxesDegenerateInputs(t *testing.T) {
	// All-zero velocities (stationary fleet): must not crash, axes default.
	pts := make([]geom.Vec2, 100)
	clusters, assign, err := KMeansAxes(pts, 2, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 100 || len(clusters) != 2 {
		t.Fatal("degenerate input mishandled")
	}
	// Identical nonzero points.
	for i := range pts {
		pts[i] = geom.V(10, 5)
	}
	if _, _, err := KMeansAxes(pts, 2, Options{Seed: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansAxesDeterministicForSeed(t *testing.T) {
	pts := twoAxisSample(1000, 0, math.Pi/2, 2.0, 0.02, 10)
	c1, a1, err := KMeansAxes(pts, 2, Options{Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	c2, a2, err := KMeansAxes(pts, 2, Options{Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
	for i := range c1 {
		if c1[i].Axis != c2[i].Axis {
			t.Fatal("same seed produced different axes")
		}
	}
}

func TestCentroidKMeansFailsToFindDVAs(t *testing.T) {
	// Reproduces the paper's Fig. 10b observation: centroid k-means on a
	// two-axis bidirectional distribution does NOT recover the axes, while
	// KMeansAxes does. We assert the perpendicular-scatter objective of the
	// axis method is materially better.
	pts := twoAxisSample(4000, 0, math.Pi/2, 2.0, 0, 20)
	axClusters, axAssign, err := KMeansAxes(pts, 2, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cenClusters, cenAssign, err := KMeansCentroids(pts, 2, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	perpCost := func(assign []int, axes []geom.Vec2) float64 {
		var s float64
		for i, p := range pts {
			d := p.PerpDistToAxis(axes[assign[i]])
			s += d * d
		}
		return s
	}
	axCost := perpCost(axAssign, []geom.Vec2{axClusters[0].Axis, axClusters[1].Axis})
	cenCost := perpCost(cenAssign, []geom.Vec2{cenClusters[0].Axis, cenClusters[1].Axis})
	if axCost*3 > cenCost {
		t.Fatalf("axis k-means (%g) should beat centroid k-means (%g) by >3x on perpendicular scatter",
			axCost, cenCost)
	}
}

func TestCentroidKMeansBasic(t *testing.T) {
	// Two well-separated blobs: centroid k-means must separate them.
	rng := rand.New(rand.NewSource(14))
	var pts []geom.Vec2
	for i := 0; i < 500; i++ {
		pts = append(pts, geom.V(rng.NormFloat64()+20, rng.NormFloat64()))
		pts = append(pts, geom.V(rng.NormFloat64()-20, rng.NormFloat64()))
	}
	clusters, assign, err := KMeansCentroids(pts, 2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != len(pts) {
		t.Fatal("bad assignment length")
	}
	var hasLeft, hasRight bool
	for _, c := range clusters {
		if c.Centroid.X > 15 {
			hasRight = true
		}
		if c.Centroid.X < -15 {
			hasLeft = true
		}
	}
	if !hasLeft || !hasRight {
		t.Fatalf("centroids did not separate blobs: %v, %v",
			clusters[0].Centroid, clusters[1].Centroid)
	}
}

func TestCentroidKMeansErrors(t *testing.T) {
	if _, _, err := KMeansCentroids(nil, 1, Options{}); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, _, err := KMeansCentroids([]geom.Vec2{{X: 1}}, 0, Options{}); err == nil {
		t.Fatal("k=0 should fail")
	}
}
