package vpindex

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/storage"
)

// Health is the Store's fault-tolerance state. Transitions are one-way:
//
//	Healthy ──(persistent media fault)──▶ Degraded ──(crash/Close)──▶ Failed
//
// A Healthy store serves everything. A Degraded store is read-only: every
// write verb (Report, ReportBatch, Insert, Update, Remove, Subscribe,
// Unsubscribe, RefreshSubscriptions) returns an error wrapping ErrDegraded,
// while Get, Search, SearchKNN, SubscriptionResults, and the Events stream
// keep serving from the in-memory state — degradation sheds durability, not
// availability. A Failed store (closed, or hit an injected crash) refuses
// writes with ErrFailed.
//
// Classification happens at the write-verb exits via the error taxonomy of
// internal/storage: transient faults are retried by the configured
// RetryPolicy and never move the state machine; a persistent media fault
// (permanent EIO, exhausted retries, a checksum failure) degrades; an
// injected crash fails. The background scrubber (WithScrubEvery, ScrubNow)
// degrades proactively when it finds latent corruption.
type Health int32

const (
	// HealthHealthy is the normal full-service state.
	HealthHealthy Health = iota
	// HealthDegraded is the read-only state entered on a persistent
	// storage fault: reads and subscriptions keep serving, writes return
	// ErrDegraded. The data directory keeps every acknowledged write up to
	// the fault, so a later Open (after the media is repaired) recovers it.
	HealthDegraded
	// HealthFailed is terminal: the store is closed or its simulated
	// process image is dead (ErrInjectedCrash). Writes return ErrFailed.
	HealthFailed
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthFailed:
		return "failed"
	default:
		return fmt.Sprintf("health(%d)", int32(h))
	}
}

// Health returns the Store's current fault-tolerance state. A non-durable
// Store is always Healthy.
func (s *Store) Health() Health { return Health(s.health.Load()) }

// degrade moves a Healthy store to Degraded (read-only), recording why.
// Only the first degradation records its reason and emits a MaintHealth
// event; an already-degraded or failed store is left alone.
func (s *Store) degrade(reason string, cause error) {
	if !s.health.CompareAndSwap(int32(HealthHealthy), int32(HealthDegraded)) {
		return
	}
	s.healthMu.Lock()
	s.healthReason, s.healthCause = reason, cause
	s.healthMu.Unlock()
	err := fmt.Errorf("vpindex: degraded to read-only: %s", reason)
	if cause != nil {
		err = fmt.Errorf("vpindex: degraded to read-only (%s): %w", reason, cause)
	}
	ev := MaintenanceEvent{Op: MaintHealth, Err: err}
	s.recordMaintenance(ev)
	s.notifyMaintenance(ev)
}

// failStore moves the store to Failed from any prior state. The first
// transition out of Healthy keeps its recorded reason; a clean Close (the
// one orderly path here) emits no maintenance event.
func (s *Store) failStore(reason string, cause error) {
	for {
		cur := s.health.Load()
		if cur == int32(HealthFailed) {
			return
		}
		if s.health.CompareAndSwap(cur, int32(HealthFailed)) {
			break
		}
	}
	s.healthMu.Lock()
	if s.healthReason == "" {
		s.healthReason, s.healthCause = reason, cause
	}
	s.healthMu.Unlock()
	if cause == nil {
		return // orderly Close, not a fault
	}
	ev := MaintenanceEvent{Op: MaintHealth, Err: fmt.Errorf("vpindex: store failed (%s): %w", reason, cause)}
	s.recordMaintenance(ev)
	s.notifyMaintenance(ev)
}

// writeAllowed is the write-verb health gate. The returned error wraps both
// the state sentinel (ErrDegraded / ErrFailed) and the recorded cause, so
// errors.Is matches either — in particular, writes refused after an injected
// crash still match ErrInjectedCrash, which the kill-point oracle asserts.
func (s *Store) writeAllowed() error {
	switch Health(s.health.Load()) {
	case HealthHealthy:
		return nil
	case HealthDegraded:
		return s.healthErr(ErrDegraded)
	default:
		return s.healthErr(ErrFailed)
	}
}

// healthErr builds the refusal error for the current unhealthy state.
func (s *Store) healthErr(sentinel error) error {
	s.healthMu.Lock()
	reason, cause := s.healthReason, s.healthCause
	s.healthMu.Unlock()
	if cause != nil {
		return fmt.Errorf("vpindex: write refused (%s): %w: %w", reason, sentinel, cause)
	}
	return fmt.Errorf("vpindex: write refused (%s): %w", reason, sentinel)
}

// noteIOFault classifies an error that escaped a Store verb and advances the
// health state machine. Transient faults were already retried below and never
// reach here with IsTransient true after exhaustion (the retry wrapper strips
// transience), so anything still transient — or not a storage fault at all
// (ErrNotFound, ErrDuplicate, validation errors) — is left alone. Called
// after all Store locks are released.
func (s *Store) noteIOFault(err error) {
	if err == nil {
		return
	}
	switch {
	case errors.Is(err, ErrInjectedCrash):
		s.failStore("injected crash", err)
	case storage.IsMediaFault(err) && !storage.IsTransient(err):
		s.degrade("persistent storage fault", err)
	}
}

// scrubLoop is the background integrity scrubber (WithScrubEvery): every
// tick it verifies each live page's checksum and the sealed log segments,
// degrading the store when latent corruption is found instead of letting a
// future read trip over it.
func (s *Store) scrubLoop(every time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			_ = s.scrubOnce()
		}
	}
}

// ScrubNow runs one synchronous integrity scrub pass — every live page of
// the page file is checksum-verified (without disturbing cached frames) and
// the sealed WAL segments are re-scanned — returning the first corruption
// found, or nil. Corruption quarantines the page, degrades the store to
// read-only, and surfaces as a MaintScrub maintenance event. Returns
// ErrUnsupported for a non-durable Store.
func (s *Store) ScrubNow() error {
	if s.dur == nil {
		return fmt.Errorf("vpindex: scrub of a non-durable store: %w", ErrUnsupported)
	}
	return s.scrubOnce()
}

// scrubOnce verifies every live page and the sealed log segments once,
// recording the pass and degrading on corruption.
func (s *Store) scrubOnce() error {
	d := s.dur
	var (
		first   error
		corrupt int64
	)
	live := d.fstore.LivePages()
	for _, id := range live {
		if err := d.fstore.VerifyPage(id); err != nil {
			corrupt++
			if first == nil {
				first = err
			}
		}
	}
	if err := d.wal.Verify(); err != nil {
		corrupt++
		if first == nil {
			first = err
		}
	}
	d.scrubPasses.Add(1)
	if corrupt > 0 {
		d.scrubCorrupt.Add(corrupt)
		s.degrade("scrub found corruption", first)
	}
	ev := MaintenanceEvent{Op: MaintScrub, Err: first, SampleSize: len(live)}
	s.recordMaintenance(ev)
	s.notifyMaintenance(ev)
	return first
}
