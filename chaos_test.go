package vpindex_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	vpindex "repro"
)

// The chaos oracle: drive a durable Store through a randomized write/read
// workload under a seeded probabilistic fault schedule, then reopen the data
// directory with a clean injector and require that no acknowledged write was
// silently lost. Every object id carries a shadow candidate list:
//
//   - an acknowledged Report/Remove resets the list to exactly that outcome
//     (SyncAlways: an ack means the record is on stable storage);
//   - a failed write APPENDS its would-be outcome (the record may or may not
//     have reached the log before the fault — both survivals are legal);
//
// so the recovered Get(id) must match one of the candidates. Transient-only
// schedules additionally require zero client-visible errors and a Healthy
// store: the retry policy must absorb everything.
//
// 56 seeds × 4 fault profiles; runs under -race in CI.

const (
	chaosSeeds     = 56
	chaosWorkers   = 2
	chaosOps       = 120 // per worker
	chaosIDsPerW   = 60
	chaosBootstrap = 24
)

// chaosCandidate is one legal post-recovery state of an object.
type chaosCandidate struct {
	obj  vpindex.Object
	gone bool
}

// chaosRates maps a seed to its fault profile. Rates are chosen so that with
// MaxAttempts=5 the probability of a transient burst exhausting the retry
// budget is ~1e-8 per op — transient-only seeds must finish clean.
func chaosRates(seed int64) vpindex.FaultRates {
	switch seed % 4 {
	case 0: // transient-only: must be fully absorbed
		return vpindex.FaultRates{TransientEIO: 0.02, SyncFail: 0.03}
	case 1: // + silent page corruption, caught by checksums on later reads
		return vpindex.FaultRates{TransientEIO: 0.02, SyncFail: 0.02, TornWrite: 0.02, BitFlip: 0.01}
	case 2: // + permanent media faults that degrade the store
		return vpindex.FaultRates{TransientEIO: 0.02, SyncFail: 0.02, PermanentEIO: 0.005}
	default: // everything at once, plus latency spikes
		return vpindex.FaultRates{
			TransientEIO: 0.02, SyncFail: 0.02,
			TornWrite: 0.01, BitFlip: 0.01, PermanentEIO: 0.003,
			Latency: 0.01, MaxLatency: 100 * time.Microsecond,
		}
	}
}

// chaosOpts builds the store configuration for one seed; fi == nil opens the
// same directory with no fault injection (the recovery pass).
func chaosOpts(dir string, seed int64, fi *vpindex.FaultInjector) []vpindex.Option {
	kind := vpindex.TPRStar
	if seed%2 == 1 {
		kind = vpindex.Bx
	}
	opts := []vpindex.Option{
		vpindex.WithKind(kind),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(8),
		vpindex.WithShards(2),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithAutoPartition(chaosBootstrap),
		vpindex.WithSeed(seed),
		vpindex.WithDataDir(dir),
		vpindex.WithWALSegmentBytes(4096),
		vpindex.WithRetryPolicy(vpindex.RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   20 * time.Microsecond,
			MaxDelay:    200 * time.Microsecond,
		}),
	}
	if fi != nil {
		opts = append(opts, vpindex.WithFaultInjector(fi))
	}
	return opts
}

// acceptableChaosErr says whether a write error under an injected-fault
// schedule is an honest refusal: a classified media fault, or the explicit
// degraded/failed gate. Anything else (a silent wrong answer, an unclassified
// internal error) fails the oracle.
func acceptableChaosErr(err error) bool {
	return vpindex.IsMediaFault(err) ||
		errors.Is(err, vpindex.ErrDegraded) ||
		errors.Is(err, vpindex.ErrFailed) ||
		errors.Is(err, vpindex.ErrInjectedCrash)
}

// chaosWorker drives one goroutine's share of the workload over a disjoint id
// range and returns its shadow candidates plus every error a verb surfaced.
func chaosWorker(store *vpindex.Store, seed int64, g int) (map[vpindex.ObjectID][]chaosCandidate, []error) {
	rng := rand.New(rand.NewSource(seed*97 + int64(g)))
	base := 1 + g*1000
	cands := make(map[vpindex.ObjectID][]chaosCandidate)
	ensure := func(id vpindex.ObjectID) {
		if _, ok := cands[id]; !ok {
			cands[id] = []chaosCandidate{{gone: true}}
		}
	}
	var errs []error
	for op := 0; op < chaosOps; op++ {
		pick := base + rng.Intn(chaosIDsPerW)
		id := vpindex.ObjectID(pick)
		switch r := rng.Float64(); {
		case r < 0.10:
			ensure(id)
			switch err := store.Remove(id); {
			case err == nil:
				cands[id] = []chaosCandidate{{gone: true}}
			case errors.Is(err, vpindex.ErrNotFound):
				// Logical miss (the id is not live in memory): nothing was
				// logged, nothing durable changed.
			default:
				errs = append(errs, err)
				cands[id] = append(cands[id], chaosCandidate{gone: true})
			}
		case r < 0.25:
			n := 2 + rng.Intn(3)
			objs := make([]vpindex.Object, 0, n)
			seen := map[int]bool{pick: true}
			objs = append(objs, testObject(pick, rng))
			for len(objs) < n {
				b := base + rng.Intn(chaosIDsPerW)
				if seen[b] {
					continue
				}
				seen[b] = true
				objs = append(objs, testObject(b, rng))
			}
			err := store.ReportBatch(objs)
			for _, o := range objs {
				ensure(o.ID)
				if err == nil {
					cands[o.ID] = []chaosCandidate{{obj: o}}
				} else {
					// A failed batch may still have logged the records that
					// landed before the fault; keep both possibilities.
					cands[o.ID] = append(cands[o.ID], chaosCandidate{obj: o})
				}
			}
			if err != nil {
				errs = append(errs, err)
			}
		default:
			o := testObject(pick, rng)
			ensure(id)
			if err := store.Report(o); err == nil {
				cands[id] = []chaosCandidate{{obj: o}}
			} else {
				errs = append(errs, err)
				cands[id] = append(cands[id], chaosCandidate{obj: o})
			}
		}
		// Reads are never gated; under transient-only schedules they must
		// succeed, otherwise a surfaced media fault is acceptable.
		if op%17 == 3 {
			store.Get(id)
		}
		if op%41 == 7 {
			if _, err := store.Search(wholeDomain()); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return cands, errs
}

func TestChaosOracle(t *testing.T) {
	for seed := int64(1); seed <= chaosSeeds; seed++ {
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosSeed(t, seed)
		})
	}
}

func runChaosSeed(t *testing.T, seed int64) {
	dir := t.TempDir()
	fi := vpindex.NewSeededInjector(seed, chaosRates(seed))
	store, err := vpindex.Open(chaosOpts(dir, seed, fi)...)
	if err != nil {
		t.Fatalf("open under faults: %v", err)
	}

	shadows := make([]map[vpindex.ObjectID][]chaosCandidate, chaosWorkers)
	workerErrs := make([][]error, chaosWorkers)
	var wg sync.WaitGroup
	for g := 0; g < chaosWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shadows[g], workerErrs[g] = chaosWorker(store, seed, g)
		}(g)
	}
	wg.Wait()
	finalHealth := store.Health()
	// Close errors are discarded deliberately: acknowledged writes were
	// fsynced at commit time (SyncAlways), and the page file is rebuilt from
	// checkpoint + log at the next open, so a faulted final sync loses
	// nothing the oracle below wouldn't catch.
	_ = store.Close()

	transientOnly := seed%4 == 0
	for g, errs := range workerErrs {
		for _, err := range errs {
			if transientOnly {
				t.Fatalf("worker %d: client-visible error under a transient-only schedule: %v", g, err)
			}
			if !acceptableChaosErr(err) {
				t.Fatalf("worker %d: unclassified error under faults: %v", g, err)
			}
		}
	}
	if transientOnly && finalHealth != vpindex.HealthHealthy {
		t.Fatalf("transient-only schedule left store %v, want healthy", finalHealth)
	}

	// Recovery with a clean injector must always succeed, and every id must
	// land on one of its shadow candidates: acknowledged writes survived,
	// failed writes either landed or vanished — never anything else.
	recovered, err := vpindex.Open(chaosOpts(dir, seed, nil)...)
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	defer recovered.Close()
	if got := recovered.Health(); got != vpindex.HealthHealthy {
		t.Fatalf("reopened store health = %v, want healthy (no fault injection)", got)
	}
	for _, cands := range shadows {
		for id, cs := range cands {
			got, ok := recovered.Get(id)
			matched := false
			for _, c := range cs {
				if c.gone == !ok && (c.gone || got == c.obj) {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("seed %d: recovered Get(%d) = (%+v, %v) matches no candidate of %d acknowledged/attempted states",
					seed, id, got, ok, len(cs))
			}
		}
	}
}
