package vpindex

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/storage"
)

// This file holds the pre-Store constructor API. It remains fully
// functional so existing experiments and tests keep running, but new code
// should use Open: the Store covers both of these types behind one surface,
// adds ID-keyed upserts and batch operations, and is safe for concurrent
// use — the raw Index here is not.

// Index is an unpartitioned moving-object index (a TPR*-tree or a Bx-tree)
// over a simulated paged disk.
//
// Deprecated: use Open without WithVelocityPartitioning; the Store exposes
// the same searches plus the ID-keyed Report/Remove verbs.
type Index struct {
	model.Index
	pool *storage.BufferPool
}

// New builds an unpartitioned index.
//
// Deprecated: use Open(WithBaseOptions(opts)).
func New(opts Options) (*Index, error) {
	opts = opts.withDefaults()
	disk := storage.NewDisk()
	disk.SetLatency(opts.DiskLatency)
	pool := storage.NewBufferPool(disk, opts.BufferPages)
	idx, err := buildBase(pool, opts, opts.Domain, "")
	if err != nil {
		return nil, err
	}
	return &Index{Index: idx, pool: pool}, nil
}

// Stats returns cumulative simulated I/O counters.
func (ix *Index) Stats() IOStats {
	s := ix.pool.Stats()
	return IOStats{Reads: s.Misses, Writes: s.Writes, Hits: s.Hits}
}

// SearchKNN returns the k objects nearest the query center at the query's
// evaluation time (both base index kinds support it; the TPR*-tree uses
// best-first traversal, the Bx-tree incremental range expansion). A base
// structure without a kNN implementation yields ErrUnsupported.
func (ix *Index) SearchKNN(q KNNQuery) ([]Neighbor, error) {
	knn, ok := ix.Index.(model.KNNIndex)
	if !ok {
		return nil, fmt.Errorf("vpindex: %s does not support kNN: %w", ix.Index.Name(), ErrUnsupported)
	}
	return knn.SearchKNN(q)
}

// Pool exposes the buffer pool for instrumentation (benchmarks snapshot
// miss counters around operations).
func (ix *Index) Pool() *storage.BufferPool { return ix.pool }

// VPOptions configures a velocity-partitioned index.
//
// Deprecated: use Open's functional options (WithVelocityPartitioning,
// WithTauBuckets, WithTauRefreshInterval, WithSeed).
type VPOptions struct {
	// Options configures the base index used for every partition.
	Options
	// K is the number of DVA partitions (default 2: road networks have two
	// dominant directions; the paper's setting).
	K int
	// TauBuckets sizes the tau histograms (default 100, paper setting).
	TauBuckets int
	// TauRefreshInterval recomputes tau after this many inserts
	// (Section 5.5); 0 disables.
	TauRefreshInterval int
	// Seed makes the analyzer's clustering deterministic.
	Seed int64
}

// VPIndex is a velocity-partitioned index: k DVA-aligned indexes plus an
// outlier index behind the same interface, per Section 5 of the paper.
//
// Deprecated: use Open with WithVelocityPartitioning; the Store also
// removes the upfront-sample requirement via WithAutoPartition.
type VPIndex struct {
	*core.Manager
	pool     *storage.BufferPool
	analysis core.Analysis
}

// NewVP analyzes the velocity sample and builds the partitioned index. The
// sample should be representative of the workload (the paper uses 10,000
// velocity points).
//
// Deprecated: use Open(WithBaseOptions(opts.Options),
// WithVelocityPartitioning(opts.K), WithVelocitySample(sample), ...); or
// WithAutoPartition to drop the upfront sample entirely.
func NewVP(sample []Vec2, opts VPOptions) (*VPIndex, error) {
	opts.Options = opts.Options.withDefaults()
	if opts.K <= 0 {
		opts.K = 2
	}
	an, err := core.Analyze(sample, core.AnalyzerConfig{
		K:          opts.K,
		TauBuckets: opts.TauBuckets,
		Cluster:    clusterOptions(opts.Seed),
	})
	if err != nil {
		return nil, err
	}
	disk := storage.NewDisk()
	disk.SetLatency(opts.DiskLatency)
	pool := storage.NewBufferPool(disk, opts.BufferPages)
	mgr, err := core.NewManager(an, core.ManagerConfig{
		Domain:             opts.Domain,
		TauRefreshInterval: opts.TauRefreshInterval,
		TauBuckets:         opts.TauBuckets,
		// The paper's experiments probe partitions sequentially through one
		// shared buffer pool; parallel probing would make the pool's
		// eviction order — and with it the I/O metric every figure plots —
		// depend on goroutine scheduling. The Store opts into fan-out with
		// its per-partition pools; the reproduction surface stays exact.
		SearchParallelism: 1,
	}, func(spec core.PartitionSpec) (model.Index, error) {
		return buildBase(pool, opts.Options, spec.Domain, spec.Name)
	})
	if err != nil {
		return nil, err
	}
	mgr.SetName(opts.Kind.String() + "(vp)")
	return &VPIndex{Manager: mgr, pool: pool, analysis: an}, nil
}

// Analysis returns the velocity analysis that shaped the partitions.
func (ix *VPIndex) Analysis() core.Analysis { return ix.analysis }

// Stats returns cumulative simulated I/O counters (shared by all
// partitions).
func (ix *VPIndex) Stats() IOStats {
	s := ix.pool.Stats()
	return IOStats{Reads: s.Misses, Writes: s.Writes, Hits: s.Hits}
}

// Pool exposes the shared buffer pool for instrumentation.
func (ix *VPIndex) Pool() *storage.BufferPool { return ix.pool }

// Monitor maintains standing range queries over one index behind a single
// mutex.
//
// Deprecated: subscribe on the Store directly (Store.Subscribe,
// Store.Events, Store.RefreshSubscriptions). The Store evaluates
// subscriptions shard-parallel and filters them spatially, where the
// Monitor re-serializes every report and re-evaluates every subscription.
type Monitor = monitor.Monitor

// NewMonitor wraps an index with the legacy single-lock continuous-query
// layer. Drive all further traffic through the monitor so result sets stay
// consistent; wrapping a Store enables the ID-keyed
// ProcessReport/ProcessRemove verbs.
//
// Deprecated: use the Store's native subscription surface instead —
// Store.Subscribe registers the standing query, every Report/ReportBatch
// evaluates it incrementally without an extra wrapper lock, and
// Store.Events delivers the deltas asynchronously. NewMonitor remains for
// wrapping raw indexes and as the comparison baseline in benchmarks.
func NewMonitor(idx Searcher) *Monitor { return monitor.New(idx) }
