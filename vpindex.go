// Package vpindex is a moving-object indexing library implementing the
// velocity partitioning (VP) technique of "Boosting Moving Object Indexing
// through Velocity Partitioning" (Nguyen, He, Zhang, Ward — PVLDB 5(9),
// 2012), together with complete from-scratch implementations of the two
// base indexes the paper builds on: the TPR*-tree (Tao et al., VLDB 2003)
// and the Bx-tree (Jensen et al., VLDB 2004).
//
// # Store: the public API
//
// The package's entry point is the Store, a concurrency-safe facade that
// serves ID-keyed location reports the way a live tracking service does:
//
//	s, _ := vpindex.Open(
//		vpindex.WithKind(vpindex.Bx),
//		vpindex.WithVelocityPartitioning(2),
//		vpindex.WithAutoPartition(10_000),
//	)
//	_ = s.Report(vpindex.Object{ID: 1, Pos: vpindex.V(100, 200), Vel: vpindex.V(10, 0), T: 0})
//	ids, _ := s.Search(vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(400, 200), R: 50}, 0, 30))
//
// Report upserts by ID (no old record needed), Remove deletes by ID,
// ReportBatch amortizes locking across a batch, and Search/SearchKNN answer
// predictive queries in every configuration. Failures are typed — compare
// with errors.Is against ErrNotFound, ErrDuplicate and ErrUnsupported.
//
// # Continuous queries
//
// Standing queries are first-class on the Store: Subscribe registers a
// region plus a prediction horizon, every report incrementally maintains
// the result sets (evaluation is sharded like the write path and filtered
// by a velocity-class spatial grid, so a report only tests the
// subscriptions it could affect), RefreshSubscriptions picks up pure time
// drift, and Events delivers the enter/leave deltas as an ordered
// asynchronous stream with configurable back-pressure (WithEventBuffer).
// The deprecated NewMonitor wrapper remains for raw indexes.
//
// # Model
//
// Objects are linear movers (Section 2.1 of the paper): a record carries a
// reference position, a velocity, and the reference timestamp; the object
// is assumed to follow that trajectory until it reports an update. Indexes
// answer three kinds of predictive range queries: time-slice, time-interval,
// and moving-range, with circular or rectangular regions, plus kNN.
//
// # Velocity partitioning
//
// With WithVelocityPartitioning, the Store analyzes the workload's
// velocities, discovers the dominant velocity axes (DVAs) with a PCA-guided
// k-means, and maintains one index per DVA — each in a coordinate frame
// rotated so its DVA is the x-axis — plus an outlier index. Objects whose
// direction is near a DVA live in a near-1D velocity space, which slows the
// growth of query search regions from quadratic in the maximum speed to
// near linear (Section 4).
//
// The analysis sample can be supplied upfront (WithVelocitySample) or — the
// production path — collected online: with WithAutoPartition(n), the Store
// starts unpartitioned, accumulates the first n reported velocities, then
// partitions itself and migrates every live object, with queries serving
// throughout.
//
// The partitions also stay adaptive after the bootstrap (Section 5.5 of
// the paper): each shard keeps a bounded reservoir of recently reported
// velocities, and a configured policy (WithRepartitionEvery /
// WithDriftThreshold) periodically re-analyzes it off the write path,
// rebuilding the partitions shard by shard when the dominant axes have
// drifted — Store.Repartition is the manual trigger. Maintenance outcomes
// are decoupled from the write verbs: see Store.LastMaintenanceError and
// WithMaintenanceHook.
//
// # Concurrency
//
// The Store is sharded by ObjectID (WithShards, default GOMAXPROCS): each
// shard has its own lock and index structure, so ID-keyed writes to
// different shards run in parallel, and queries fan out across shards and
// velocity partitions with bounded worker pools (WithSearchParallelism)
// whose merged results are byte-identical to the sequential probe order.
//
// # Storage
//
// All indexes store nodes on simulated 4 KB disk pages behind LRU buffer
// pools (50 pages each by default) over one shared disk; the Store gives
// every partition its own pool so page-cache hits on independent partitions
// never contend on one pool mutex, while the deprecated New/NewVP
// constructors keep the paper's single shared pool. Stats reports the
// buffer-pool misses that the paper plots as "query I/O", aggregated across
// all pools.
//
// The former constructors New and NewVP still work but are deprecated; see
// their doc comments for the Open equivalents.
package vpindex

import (
	"fmt"
	"time"

	"repro/internal/analysis/cluster"
	"repro/internal/bxtree"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/storage"
	"repro/internal/tprtree"
)

// clusterOptions derives deterministic k-means options from a seed.
func clusterOptions(seed int64) cluster.Options {
	return cluster.Options{Seed: seed}
}

// Re-exported data-model types. These are aliases, so values flow freely
// between the public API and the internal packages.
type (
	// Object is a linear-motion moving point.
	Object = model.Object
	// ObjectID identifies an object.
	ObjectID = model.ObjectID
	// RangeQuery is a predictive range query (see model.RangeQuery).
	RangeQuery = model.RangeQuery
	// QueryKind distinguishes time-slice / time-interval / moving-range.
	QueryKind = model.QueryKind
	// IOStats aggregates simulated disk counters.
	IOStats = model.IOStats
	// KNNQuery asks for the K nearest objects at a future time.
	KNNQuery = model.KNNQuery
	// Neighbor is one kNN result (id + distance).
	Neighbor = model.Neighbor
	// Vec2 is a 2-D vector or point.
	Vec2 = geom.Vec2
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Circle is a disk-shaped query region.
	Circle = geom.Circle
)

// Query kinds.
const (
	TimeSlice    = model.TimeSlice
	TimeInterval = model.TimeInterval
	MovingRange  = model.MovingRange
)

// V constructs a Vec2.
func V(x, y float64) Vec2 { return geom.V(x, y) }

// R constructs a Rect from two corners (normalized).
func R(x0, y0, x1, y1 float64) Rect { return geom.R(x0, y0, x1, y1) }

// SliceQuery builds a circular time-slice query issued at now about time t.
func SliceQuery(c Circle, now, t float64) RangeQuery {
	return RangeQuery{Kind: TimeSlice, Circle: c, Rect: c.Bound(), Now: now, T0: t}
}

// RectSliceQuery builds a rectangular time-slice query.
func RectSliceQuery(r Rect, now, t float64) RangeQuery {
	return RangeQuery{Kind: TimeSlice, Rect: r, Now: now, T0: t}
}

// IntervalQuery builds a rectangular time-interval query over [t0, t1].
func IntervalQuery(r Rect, now, t0, t1 float64) RangeQuery {
	return RangeQuery{Kind: TimeInterval, Rect: r, Now: now, T0: t0, T1: t1}
}

// MovingQuery builds a moving range query: the region starts at r at t0 and
// translates with velocity vel until t1.
func MovingQuery(r Rect, vel Vec2, now, t0, t1 float64) RangeQuery {
	return RangeQuery{Kind: MovingRange, Rect: r, Vel: vel, Now: now, T0: t0, T1: t1}
}

// Searcher is the operation set shared by all indexes in this package.
type Searcher = model.Index

// Kind selects the base index structure.
type Kind int

const (
	// TPRStar is the TPR*-tree (R-tree family).
	TPRStar Kind = iota
	// Bx is the Bx-tree (B+-tree over a space-filling curve).
	Bx
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case TPRStar:
		return "tpr*"
	case Bx:
		return "bx"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options configures the base index structure shared by every partition.
// The zero value takes the paper's defaults. New code should prefer Open's
// functional options (WithKind, WithDomain, ...), which cover every field
// here; Options remains the carrier type behind both surfaces.
type Options struct {
	// Kind selects the base structure (default TPRStar).
	Kind Kind
	// Domain is the data space (default 100,000 x 100,000 m, Table 1).
	Domain Rect
	// BufferPages sizes the LRU buffer pool (default 50, Table 1).
	BufferPages int
	// DiskLatency injects a delay per physical page access so execution
	// time tracks I/O like a disk would; 0 (default) disables it.
	DiskLatency time.Duration

	// Horizon is the TPR*-tree cost-integral horizon (default 120 ts).
	Horizon float64
	// QueryExtent is the query side length the TPR*-tree optimizes for
	// (default 1000 m).
	QueryExtent float64

	// GridOrder is the Bx-tree curve grid's bits per axis (default 8).
	GridOrder uint
	// Buckets is the Bx-tree's time-bucket count (default 2).
	Buckets int
	// MaxUpdateInterval is the guaranteed max time between an object's
	// updates (default 120 ts).
	MaxUpdateInterval float64
	// HistogramCells is the Bx velocity histogram resolution (default 64).
	HistogramCells int
	// UseZOrder switches the Bx-tree to the Z-curve.
	UseZOrder bool
	// LegacyScan restores the Bx-tree's per-interval scan path (one B+-tree
	// descent per curve interval) instead of the batched leaf-walk engine.
	// Results are identical; this is the measured baseline of the scan
	// benchmark. Ignored by the TPR*-tree.
	LegacyScan bool
}

func (o Options) withDefaults() Options {
	if o.Domain.IsEmpty() || o.Domain.Area() == 0 {
		o.Domain = geom.R(0, 0, 100000, 100000)
	}
	if o.BufferPages <= 0 {
		o.BufferPages = storage.DefaultBufferPages
	}
	return o
}

// buildBase constructs the configured base index over the given pool.
func buildBase(pool *storage.BufferPool, opts Options, domain Rect, nameSuffix string) (model.Index, error) {
	switch opts.Kind {
	case TPRStar:
		t, err := tprtree.NewTree(pool, tprtree.Config{
			Horizon:     opts.Horizon,
			QueryExtent: opts.QueryExtent,
		})
		if err != nil {
			return nil, err
		}
		if nameSuffix != "" {
			t.SetName("tpr*:" + nameSuffix)
		}
		return t, nil
	case Bx:
		t, err := bxtree.NewTree(pool, bxtree.Config{
			Domain:            domain,
			GridOrder:         opts.GridOrder,
			Buckets:           opts.Buckets,
			MaxUpdateInterval: opts.MaxUpdateInterval,
			HistogramCells:    opts.HistogramCells,
			UseZOrder:         opts.UseZOrder,
			LegacyScan:        opts.LegacyScan,
		})
		if err != nil {
			return nil, err
		}
		if nameSuffix != "" {
			t.SetName("bx:" + nameSuffix)
		}
		return t, nil
	default:
		return nil, fmt.Errorf("vpindex: unknown index kind %v: %w", opts.Kind, ErrUnsupported)
	}
}

// Continuous-query types: standing subscriptions with incremental
// enter/leave events as reports stream in. The Store serves them natively —
// Subscribe/Unsubscribe/SubscriptionResults/RefreshSubscriptions/Events —
// with sharded incremental evaluation and a coarse velocity-class spatial
// filter, so the cost per report is proportional to the subscriptions the
// report could actually affect (see subscriptions.go). The deprecated
// single-lock wrapper lives in legacy.go as NewMonitor.
type (
	// Subscription is a standing region + prediction horizon.
	Subscription = monitor.Subscription
	// MonitorEvent is one result-set delta (enter/leave).
	MonitorEvent = monitor.Event
	// SubscriptionID identifies a standing query.
	SubscriptionID = monitor.SubscriptionID
)

// Subscription event kinds.
const (
	Enter = monitor.Enter
	Leave = monitor.Leave
)
