package vpindex_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	vpindex "repro"
	"repro/internal/model"
)

// TestStoreConcurrentMixedOracle hammers a sharded Store with a concurrent
// mixed workload — ID-keyed reports and removes from writers owning
// disjoint ID ranges, with readers running Search/SearchKNN/Get/Len
// throughout — crossing the auto-partition cutover mid-stream. Each writer
// tracks the final state of its own IDs; after the storm the merged states
// seed a BruteForce mirror and the Store must agree with it exactly on
// Len, Get, Search (all three query kinds), and kNN distances.
func TestStoreConcurrentMixedOracle(t *testing.T) {
	const (
		writers   = 4
		readers   = 2
		perWriter = 400
		idsPer    = 500
		threshold = 600 // total reports cross this mid-stream
	)
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithAutoPartition(threshold),
		vpindex.WithTauRefreshInterval(300),
		vpindex.WithSeed(6),
	)
	if err != nil {
		t.Fatal(err)
	}

	// final[w] is writer w's last-write-wins view of its own ID range;
	// disjoint ranges make the merged view deterministic despite scheduling.
	final := make([]map[vpindex.ObjectID]*vpindex.Object, writers)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		final[w] = make(map[vpindex.ObjectID]*vpindex.Object)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			base := w * idsPer
			for i := 0; i < perWriter; i++ {
				id := base + 1 + rng.Intn(idsPer)
				o := testObject(id, rng)
				o.T = float64(i) / 8
				if i%9 == 8 {
					err := store.Remove(o.ID)
					if err != nil && !errors.Is(err, vpindex.ErrNotFound) {
						errs <- fmt.Errorf("writer %d remove: %w", w, err)
						return
					}
					if err == nil {
						delete(final[w], o.ID)
					}
					continue
				}
				if err := store.Report(o); err != nil {
					errs <- fmt.Errorf("writer %d report: %w", w, err)
					return
				}
				final[w][o.ID] = &o
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + r)))
			for i := 0; i < 200; i++ {
				now := float64(i) / 4
				q := vpindex.SliceQuery(vpindex.Circle{
					C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 3000,
				}, now, now+10)
				if _, err := store.Search(q); err != nil {
					errs <- fmt.Errorf("reader %d search: %w", r, err)
					return
				}
				if _, err := store.SearchKNN(vpindex.KNNQuery{
					Center: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
					K:      5, Now: now, T: now + 10,
				}); err != nil {
					errs <- fmt.Errorf("reader %d knn: %w", r, err)
					return
				}
				store.Get(vpindex.ObjectID(1 + rng.Intn(writers*idsPer)))
				store.Len()
				store.BootstrapProgress()
				store.Partitioned()
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !store.Partitioned() {
		t.Fatal("concurrent stream never crossed the bootstrap threshold")
	}

	// Quiescent oracle comparison against the merged final states.
	oracle := model.NewBruteForce()
	for w := range final {
		for _, o := range final[w] {
			if err := oracle.Insert(*o); err != nil {
				t.Fatal(err)
			}
		}
	}
	if store.Len() != oracle.Len() {
		t.Fatalf("len %d vs oracle %d", store.Len(), oracle.Len())
	}
	for id := 1; id <= writers*idsPer; id++ {
		g, gok := store.Get(vpindex.ObjectID(id))
		w, wok := oracle.Get(vpindex.ObjectID(id))
		if gok != wok || (gok && g != w) {
			t.Fatalf("get %d: (%v,%v) vs oracle (%v,%v)", id, g, gok, w, wok)
		}
	}
	rng := rand.New(rand.NewSource(55))
	now := float64(perWriter) / 8
	for i := 0; i < 12; i++ {
		queries := []vpindex.RangeQuery{
			vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 2500}, now, now+20),
			vpindex.IntervalQuery(vpindex.R(2000, 2000, 9000, 9000), now, now+5, now+25),
			vpindex.MovingQuery(vpindex.R(0, 0, 6000, 6000), vpindex.V(30, 10), now, now, now+30),
		}
		for _, q := range queries {
			got, err := store.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			got, want = sortedIDs(got), sortedIDs(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%v: got %v want %v", q.Kind, got, want)
			}
		}
	}
	q := vpindex.KNNQuery{Center: vpindex.V(10000, 10000), K: 10, Now: now, T: now + 30}
	got, err := store.SearchKNN(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := oracle.SearchKNN(q)
	if len(got) != len(want) {
		t.Fatalf("kNN %d vs %d results", len(got), len(want))
	}
	for i := range got {
		if diff := got[i].Dist - want[i].Dist; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("kNN %d: dist %g vs %g", i, got[i].Dist, want[i].Dist)
		}
	}
}

// TestStoreParallelSearchMatchesSequential pins the fan-out contract: a
// Store probing shards and partitions with the parallel worker pools must
// return results byte-identical — same elements, same order — to an
// identically configured and identically loaded Store forced onto the
// strictly sequential path with WithSearchParallelism(1).
func TestStoreParallelSearchMatchesSequential(t *testing.T) {
	for _, kind := range []vpindex.Kind{vpindex.TPRStar, vpindex.Bx} {
		t.Run(kind.String(), func(t *testing.T) {
			open := func(searchPar int) *vpindex.Store {
				t.Helper()
				s, err := vpindex.Open(
					vpindex.WithKind(kind),
					vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
					vpindex.WithBufferPages(30),
					vpindex.WithShards(4),
					vpindex.WithSearchParallelism(searchPar),
					vpindex.WithVelocityPartitioning(2),
					vpindex.WithVelocitySample(testSample(800, 11)),
					vpindex.WithSeed(5),
				)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			par, seq := open(0), open(1)
			if runtime.GOMAXPROCS(0) == 1 {
				t.Log("GOMAXPROCS=1: parallel path degenerates to sequential; test still pins equality")
			}

			rng := rand.New(rand.NewSource(21))
			for i := 1; i <= 600; i++ {
				o := testObject(i, rng)
				if err := par.Report(o); err != nil {
					t.Fatal(err)
				}
				if err := seq.Report(o); err != nil {
					t.Fatal(err)
				}
			}
			for i := 3; i <= 600; i += 7 {
				if err := par.Remove(vpindex.ObjectID(i)); err != nil {
					t.Fatal(err)
				}
				if err := seq.Remove(vpindex.ObjectID(i)); err != nil {
					t.Fatal(err)
				}
			}

			for i := 0; i < 25; i++ {
				queries := []vpindex.RangeQuery{
					vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 3000}, 0, 25),
					vpindex.IntervalQuery(vpindex.R(rng.Float64()*10000, rng.Float64()*10000, 15000, 15000), 0, 5, 25),
					vpindex.MovingQuery(vpindex.R(0, 0, 5000, 5000), vpindex.V(40, 20), 0, 0, 30),
				}
				for _, q := range queries {
					got, err := par.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					want, err := seq.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("%v: parallel %v != sequential %v", q.Kind, got, want)
					}
				}
				kq := vpindex.KNNQuery{
					Center: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
					K:      8, Now: 0, T: 20,
				}
				got, err := par.SearchKNN(kq)
				if err != nil {
					t.Fatal(err)
				}
				want, err := seq.SearchKNN(kq)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("kNN: parallel %v != sequential %v", got, want)
				}
			}
		})
	}
}

// TestStoreBatchedScanMatchesLegacyScan extends the merge oracle along the
// storage axis: a Bx Store on the batched leaf-walk scan engine must return
// results byte-identical — same elements, same order — to an identically
// configured and loaded Store forced onto the pre-change per-interval
// descent path (WithLegacyScan), across the sequential and parallel merge
// paths alike.
func TestStoreBatchedScanMatchesLegacyScan(t *testing.T) {
	open := func(opts ...vpindex.Option) *vpindex.Store {
		t.Helper()
		base := []vpindex.Option{
			vpindex.WithKind(vpindex.Bx),
			vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
			vpindex.WithBufferPages(30),
			vpindex.WithShards(4),
			vpindex.WithVelocityPartitioning(2),
			vpindex.WithVelocitySample(testSample(800, 11)),
			vpindex.WithSeed(5),
		}
		s, err := vpindex.Open(append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	batched := open()
	legacy := open(vpindex.WithLegacyScan(), vpindex.WithSearchParallelism(1))

	rng := rand.New(rand.NewSource(29))
	for i := 1; i <= 700; i++ {
		o := testObject(i, rng)
		if err := batched.Report(o); err != nil {
			t.Fatal(err)
		}
		if err := legacy.Report(o); err != nil {
			t.Fatal(err)
		}
	}
	for i := 2; i <= 700; i += 9 {
		if err := batched.Remove(vpindex.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
		if err := legacy.Remove(vpindex.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		queries := []vpindex.RangeQuery{
			vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 3000}, 0, 25),
			vpindex.IntervalQuery(vpindex.R(rng.Float64()*10000, rng.Float64()*10000, 15000, 15000), 0, 5, 25),
			vpindex.MovingQuery(vpindex.R(0, 0, 5000, 5000), vpindex.V(40, 20), 0, 0, 30),
		}
		for _, q := range queries {
			got, err := batched.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := legacy.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%v: batched %v != legacy %v", q.Kind, got, want)
			}
		}
	}
}

// TestStoreShardsOption pins WithShards semantics: the default tracks
// GOMAXPROCS, explicit counts are honored, and non-positive counts fall
// back to the default.
func TestStoreShardsOption(t *testing.T) {
	s, err := vpindex.Open()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.NumShards(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default shards %d, want GOMAXPROCS %d", got, want)
	}
	for _, n := range []int{1, 3, 16} {
		s, err := vpindex.Open(vpindex.WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		if s.NumShards() != n {
			t.Fatalf("WithShards(%d): got %d", n, s.NumShards())
		}
	}
	s, err = vpindex.Open(vpindex.WithShards(-2))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.NumShards(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("WithShards(-2): got %d, want %d", got, want)
	}
}

// TestStoreConcurrentRepartitionOracle mirrors the bootstrap-cutover oracle
// across the other migration: writers with disjoint ID ranges whose traffic
// rotates 45° mid-storm, readers running Search/SearchKNN/Get/Len
// throughout, while repartition swaps (manual triggers plus the automatic
// drift policy) rebuild every shard's partitions live. After the storm the
// merged writer states seed a BruteForce mirror and the Store must agree
// exactly on Len, Get, Search and kNN distances.
func TestStoreConcurrentRepartitionOracle(t *testing.T) {
	const (
		writers   = 4
		readers   = 2
		perWriter = 400
		idsPer    = 500
	)
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithShards(4),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(axisSample(500, 0, 12)),
		vpindex.WithRepartitionPolicy(vpindex.RepartitionPolicy{
			Every:          300,
			DriftThreshold: 0.3,
			ReservoirSize:  400,
		}),
		vpindex.WithTauRefreshInterval(250),
		vpindex.WithSeed(6),
	)
	if err != nil {
		t.Fatal(err)
	}

	var (
		written atomic.Int64
		wg      sync.WaitGroup
	)
	final := make([]map[vpindex.ObjectID]*vpindex.Object, writers)
	errs := make(chan error, writers+readers+1)

	for w := 0; w < writers; w++ {
		final[w] = make(map[vpindex.ObjectID]*vpindex.Object)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			base := w * idsPer
			for i := 0; i < perWriter; i++ {
				id := base + 1 + rng.Intn(idsPer)
				// Traffic rotates 45° halfway through the storm.
				angle := 0.0
				if i >= perWriter/2 {
					angle = math.Pi / 4
				}
				o := axisObject(id, angle, rng)
				o.T = float64(i) / 8
				if i%9 == 8 {
					err := store.Remove(o.ID)
					if err != nil && !errors.Is(err, vpindex.ErrNotFound) {
						errs <- fmt.Errorf("writer %d remove: %w", w, err)
						return
					}
					if err == nil {
						delete(final[w], o.ID)
					}
					continue
				}
				if err := store.Report(o); err != nil {
					errs <- fmt.Errorf("writer %d report: %w", w, err)
					return
				}
				final[w][o.ID] = &o
				written.Add(1)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(600 + r)))
			for i := 0; i < 200; i++ {
				now := float64(i) / 4
				q := vpindex.SliceQuery(vpindex.Circle{
					C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 3000,
				}, now, now+10)
				if _, err := store.Search(q); err != nil {
					errs <- fmt.Errorf("reader %d search: %w", r, err)
					return
				}
				if _, err := store.SearchKNN(vpindex.KNNQuery{
					Center: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
					K:      5, Now: now, T: now + 10,
				}); err != nil {
					errs <- fmt.Errorf("reader %d knn: %w", r, err)
					return
				}
				store.Get(vpindex.ObjectID(1 + rng.Intn(writers*idsPer)))
				store.Len()
				store.Partitions()
				store.Stats()
			}
		}(r)
	}
	// A maintenance goroutine forces two manual swaps mid-storm (at roughly
	// one-third and two-thirds of the write volume), racing the writers,
	// readers, and any automatic drift checks the policy fires.
	wg.Add(1)
	go func() {
		defer wg.Done()
		total := int64(writers * perWriter)
		for _, frac := range []int64{3, 2} {
			for written.Load() < total/frac {
				time.Sleep(time.Millisecond)
			}
			if err := store.Repartition(); err != nil {
				errs <- fmt.Errorf("manual repartition: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := store.Stats().Repartitions; n < 2 {
		t.Fatalf("expected at least the two manual swaps, got %d", n)
	}
	if err := store.LastMaintenanceError(); err != nil {
		t.Fatalf("maintenance error after storm: %v", err)
	}

	// Quiescent oracle comparison against the merged final states.
	oracle := model.NewBruteForce()
	for w := range final {
		for _, o := range final[w] {
			if err := oracle.Insert(*o); err != nil {
				t.Fatal(err)
			}
		}
	}
	if store.Len() != oracle.Len() {
		t.Fatalf("len %d vs oracle %d", store.Len(), oracle.Len())
	}
	for id := 1; id <= writers*idsPer; id++ {
		g, gok := store.Get(vpindex.ObjectID(id))
		w, wok := oracle.Get(vpindex.ObjectID(id))
		if gok != wok || (gok && g != w) {
			t.Fatalf("get %d: (%v,%v) vs oracle (%v,%v)", id, g, gok, w, wok)
		}
	}
	rng := rand.New(rand.NewSource(56))
	now := float64(perWriter) / 8
	for i := 0; i < 12; i++ {
		queries := []vpindex.RangeQuery{
			vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 2500}, now, now+20),
			vpindex.IntervalQuery(vpindex.R(2000, 2000, 9000, 9000), now, now+5, now+25),
			vpindex.MovingQuery(vpindex.R(0, 0, 6000, 6000), vpindex.V(30, 10), now, now, now+30),
		}
		for _, q := range queries {
			got, err := store.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			got, want = sortedIDs(got), sortedIDs(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%v: got %v want %v", q.Kind, got, want)
			}
		}
	}
	q := vpindex.KNNQuery{Center: vpindex.V(10000, 10000), K: 10, Now: now, T: now + 30}
	got, err := store.SearchKNN(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := oracle.SearchKNN(q)
	if len(got) != len(want) {
		t.Fatalf("kNN %d vs %d results", len(got), len(want))
	}
	for i := range got {
		if diff := got[i].Dist - want[i].Dist; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("kNN %d: dist %g vs %g", i, got[i].Dist, want[i].Dist)
		}
	}
}
