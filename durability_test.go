package vpindex_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	vpindex "repro"
)

// durableOpts is the base configuration for the durability tests: a sharded,
// velocity-partitioned store with the online bootstrap, small enough that a
// full Open/recover cycle is cheap.
func durableOpts(extra ...vpindex.Option) []vpindex.Option {
	opts := []vpindex.Option{
		vpindex.WithKind(vpindex.TPRStar),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithShards(2),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithAutoPartition(16),
		vpindex.WithSeed(5),
	}
	return append(opts, extra...)
}

// wholeDomain is a time-slice query that matches every live object: the rect
// is so much larger than the domain that no reachable position escapes it.
func wholeDomain() vpindex.RangeQuery {
	return vpindex.RectSliceQuery(vpindex.R(-1e6, -1e6, 1e6, 1e6), 0, 0)
}

func TestDurableStoreRecoversState(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(vpindex.WithDataDir(dir))
	store, err := vpindex.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.DurabilityStats(); !ok {
		t.Fatal("durable store reports no durability stats")
	}

	rng := rand.New(rand.NewSource(42))
	live := map[vpindex.ObjectID]vpindex.Object{}
	for i := 1; i <= 60; i++ {
		o := testObject(i, rng)
		if err := store.Report(o); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		live[o.ID] = o
	}
	for _, id := range []vpindex.ObjectID{7, 21, 40} {
		if err := store.Remove(id); err != nil {
			t.Fatalf("remove %d: %v", id, err)
		}
		delete(live, id)
	}
	sub := vpindex.Subscription{Query: wholeDomain(), Horizon: 1000}
	subID, _, err := store.Subscribe(sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantSub, err := store.SubscriptionResults(subID)
	if err != nil {
		t.Fatal(err)
	}
	wantSearch, err := store.Search(wholeDomain())
	if err != nil {
		t.Fatal(err)
	}
	partitioned := store.Partitioned()
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	recovered, err := vpindex.Open(opts...)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer recovered.Close()
	if got := recovered.Len(); got != len(live) {
		t.Fatalf("recovered Len = %d, want %d", got, len(live))
	}
	for id, want := range live {
		got, ok := recovered.Get(id)
		if !ok || got != want {
			t.Fatalf("recovered Get(%d) = %+v, %v; want %+v", id, got, ok, want)
		}
	}
	if _, ok := recovered.Get(7); ok {
		t.Fatal("removed object resurrected by recovery")
	}
	gotSearch, err := recovered.Search(wholeDomain())
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(gotSearch), sortedIDs(wantSearch)) {
		t.Fatalf("recovered Search = %v, want %v", gotSearch, wantSearch)
	}
	if got := recovered.NumSubscriptions(); got != 1 {
		t.Fatalf("recovered NumSubscriptions = %d, want 1", got)
	}
	gotSub, err := recovered.SubscriptionResults(subID)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(gotSub), sortedIDs(wantSub)) {
		t.Fatalf("recovered subscription results = %v, want %v", gotSub, wantSub)
	}
	if got := recovered.Partitioned(); got != partitioned {
		t.Fatalf("recovered Partitioned = %v, want %v", got, partitioned)
	}
	st, _ := recovered.DurabilityStats()
	if st.ReplayedRecords == 0 {
		t.Fatal("recovery replayed nothing")
	}
}

func TestCheckpointReclaimsWALAndBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(vpindex.WithDataDir(dir), vpindex.WithWALSegmentBytes(2048))
	store, err := vpindex.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 1; i <= 120; i++ {
		if err := store.Report(testObject(i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := store.DurabilityStats()
	if before.WALSegments < 2 {
		t.Fatalf("expected rotation before checkpoint, got %d segments", before.WALSegments)
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	after, _ := store.DurabilityStats()
	if after.Checkpoints != 1 || after.CheckpointLSN == 0 {
		t.Fatalf("checkpoint stats = %+v", after)
	}
	if after.WALSegments >= before.WALSegments {
		t.Fatalf("checkpoint reclaimed nothing: %d -> %d segments", before.WALSegments, after.WALSegments)
	}

	// A short tail after the checkpoint: recovery must replay only the tail,
	// not the 120 records the snapshot already covers.
	if err := store.Report(testObject(200, rng)); err != nil {
		t.Fatal(err)
	}
	if err := store.Remove(3); err != nil {
		t.Fatal(err)
	}
	want, err := store.Search(wholeDomain())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := vpindex.Open(opts...)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer recovered.Close()
	got, err := recovered.Search(wholeDomain())
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(got), sortedIDs(want)) {
		t.Fatalf("recovered Search = %v, want %v", got, want)
	}
	st, _ := recovered.DurabilityStats()
	if st.ReplayedRecords == 0 || st.ReplayedRecords >= 120 {
		t.Fatalf("replayed %d records, want a short tail (checkpoint not honored)", st.ReplayedRecords)
	}
}

func TestAutoCheckpointFires(t *testing.T) {
	store, err := vpindex.Open(durableOpts(
		vpindex.WithDataDir(t.TempDir()),
		vpindex.WithCheckpointEvery(25),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 1; i <= 80; i++ {
		if err := store.Report(testObject(i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := store.DurabilityStats(); st.Checkpoints >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-checkpoint never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCheckpointRequiresDurableStore(t *testing.T) {
	store, err := vpindex.Open(durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Checkpoint(); !errors.Is(err, vpindex.ErrUnsupported) {
		t.Fatalf("checkpoint on mem store = %v, want ErrUnsupported", err)
	}
	if _, ok := store.DurabilityStats(); ok {
		t.Fatal("mem store claims durability stats")
	}
}

func TestRecoveryAfterAbandonedStore(t *testing.T) {
	// A store abandoned without Close models a plain crash: under SyncAlways,
	// every acknowledged verb — including an unsubscribe — must survive.
	dir := t.TempDir()
	opts := durableOpts(vpindex.WithDataDir(dir), vpindex.WithSyncPolicy(vpindex.SyncAlways()))
	store, err := vpindex.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 1; i <= 30; i++ {
		if err := store.Report(testObject(i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	keepID, _, err := store.Subscribe(vpindex.Subscription{Query: wholeDomain(), Horizon: 1000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	dropID, _, err := store.Subscribe(vpindex.Subscription{Query: wholeDomain(), Horizon: 1000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Unsubscribe(dropID); err != nil {
		t.Fatal(err)
	}
	want, err := store.SubscriptionResults(keepID)
	if err != nil {
		t.Fatal(err)
	}
	// No Close: the dirty process just stops.

	recovered, err := vpindex.Open(opts...)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer recovered.Close()
	if got := recovered.NumSubscriptions(); got != 1 {
		t.Fatalf("recovered NumSubscriptions = %d, want 1", got)
	}
	if _, err := recovered.SubscriptionResults(dropID); err == nil {
		t.Fatal("unsubscribed id resurrected by recovery")
	}
	got, err := recovered.SubscriptionResults(keepID)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(got), sortedIDs(want)) {
		t.Fatalf("recovered subscription = %v, want %v", got, want)
	}
}

// ---------------------------------------------------------------------------
// Kill-point differential oracle.
// ---------------------------------------------------------------------------

// durOp is one scripted operation for the crash oracle.
type durOp struct {
	kind byte // 's' subscribe, 'r' report, 'd' remove
	obj  vpindex.Object
	id   vpindex.ObjectID
}

// oracleScript builds a deterministic single-threaded op sequence: a
// subscription over the whole domain, then interleaved reports and removes
// over a small id space. The report volume crosses the auto-partition
// threshold, so the kill matrix also lands inside the bootstrap cutover and
// its partition-swap record.
func oracleScript(seed int64, n int) []durOp {
	rng := rand.New(rand.NewSource(seed))
	script := []durOp{{kind: 's'}}
	live := map[vpindex.ObjectID]bool{}
	for len(script) < n {
		if len(live) > 3 && rng.Intn(5) == 0 {
			ids := make([]vpindex.ObjectID, 0, len(live))
			for id := range live {
				ids = append(ids, id)
			}
			id := sortedIDs(ids)[rng.Intn(len(ids))]
			script = append(script, durOp{kind: 'd', id: id})
			delete(live, id)
			continue
		}
		o := testObject(1+rng.Intn(12), rng)
		script = append(script, durOp{kind: 'r', obj: o})
		live[o.ID] = true
	}
	return script
}

// applyOp drives one scripted op against a live store.
func applyOp(s *vpindex.Store, op durOp) error {
	switch op.kind {
	case 's':
		_, _, err := s.Subscribe(vpindex.Subscription{Query: wholeDomain(), Horizon: 1000}, 0)
		return err
	case 'd':
		return s.Remove(op.id)
	default:
		return s.Report(op.obj)
	}
}

// oraclePrefix computes the brute-force survivor state after the first m
// scripted ops: the live object map and whether the subscription exists. The
// subscription covers the whole domain with a huge horizon, so its result
// set is exactly the live set — no engine simulation needed.
func oraclePrefix(script []durOp, m int) (live map[vpindex.ObjectID]vpindex.Object, subscribed bool) {
	live = map[vpindex.ObjectID]vpindex.Object{}
	for _, op := range script[:m] {
		switch op.kind {
		case 's':
			subscribed = true
		case 'd':
			delete(live, op.id)
		default:
			live[op.obj.ID] = op.obj
		}
	}
	return live, subscribed
}

// matchesPrefix reports whether the recovered store's full state — Len, Get,
// Search, subscription registry and result set — equals the brute-force
// survivor at prefix m.
func matchesPrefix(t *testing.T, s *vpindex.Store, script []durOp, m int) bool {
	t.Helper()
	live, subscribed := oraclePrefix(script, m)
	if s.Len() != len(live) {
		return false
	}
	for id, want := range live {
		got, ok := s.Get(id)
		if !ok || got != want {
			return false
		}
	}
	found, err := s.Search(wholeDomain())
	if err != nil {
		t.Fatalf("recovered search: %v", err)
	}
	wantIDs := make([]vpindex.ObjectID, 0, len(live))
	for id := range live {
		wantIDs = append(wantIDs, id)
	}
	if !equalIDs(sortedIDs(found), sortedIDs(wantIDs)) {
		return false
	}
	wantSubs := 0
	if subscribed {
		wantSubs = 1
	}
	if s.NumSubscriptions() != wantSubs {
		return false
	}
	if subscribed {
		// The script's subscribe is op 0 in a fresh store: id 1.
		members, err := s.SubscriptionResults(vpindex.SubscriptionID(1))
		if err != nil {
			return false
		}
		if !equalIDs(sortedIDs(members), sortedIDs(wantIDs)) {
			return false
		}
	}
	return true
}

// TestKillPointRecoveryOracle is the crash-recovery differential oracle: for
// every sync point N the injector kills the process image mid-fsync; the
// recovered store must equal the brute-force survivor of some acknowledged-
// consistent prefix. Under a synchronous policy the admissible prefixes are
// exactly {acked, acked+1}: every acked op is durable, and only the op that
// died mid-commit may have reached the log (its bytes landed before the
// failed fsync) or an overlapping checkpoint.
func TestKillPointRecoveryOracle(t *testing.T) {
	script := oracleScript(1337, 36)
	policies := map[string]vpindex.SyncPolicy{
		"always": vpindex.SyncAlways(),
	}
	if !testing.Short() {
		policies["group-commit"] = vpindex.SyncGroupCommit(100 * time.Microsecond)
	}
	for name, pol := range policies {
		t.Run(name, func(t *testing.T) {
			for killAt := int64(1); ; killAt++ {
				dir := t.TempDir()
				fi := vpindex.NewFaultInjector(killAt)
				opts := durableOpts(
					vpindex.WithDataDir(dir),
					vpindex.WithSyncPolicy(pol),
					vpindex.WithFaultInjector(fi),
					vpindex.WithCheckpointEvery(10),
					vpindex.WithWALSegmentBytes(2048),
				)
				store, err := vpindex.Open(opts...)
				if err != nil {
					t.Fatalf("killAt %d: open: %v", killAt, err)
				}
				acked := 0
				crashed := false
				for _, op := range script {
					if err := applyOp(store, op); err != nil {
						if !errors.Is(err, vpindex.ErrInjectedCrash) {
							t.Fatalf("killAt %d: op %d failed with %v, not an injected crash", killAt, acked, err)
						}
						crashed = true
						break
					}
					acked++
				}
				if !crashed {
					// The script outran the kill point (or the kill landed in a
					// background checkpoint, which loses no acknowledged op):
					// recovery must now yield the complete state, and higher
					// kill points change nothing more.
					_ = store.Close()
					recovered, err := vpindex.Open(durableOpts(vpindex.WithDataDir(dir))...)
					if err != nil {
						t.Fatalf("killAt %d: final recovery: %v", killAt, err)
					}
					if !matchesPrefix(t, recovered, script, len(script)) {
						t.Fatalf("killAt %d: clean run did not recover the full script", killAt)
					}
					recovered.Close()
					if fi.SyncPoints() < killAt {
						t.Logf("matrix covered %d kill points", killAt-1)
						return
					}
					continue
				}
				_ = store.Close() // release descriptors; the injector blocks any further effect

				recovered, err := vpindex.Open(durableOpts(vpindex.WithDataDir(dir))...)
				if err != nil {
					t.Fatalf("killAt %d: recovery open: %v", killAt, err)
				}
				ok := matchesPrefix(t, recovered, script, acked) ||
					(acked+1 <= len(script) && matchesPrefix(t, recovered, script, acked+1))
				if !ok {
					t.Fatalf("killAt %d (policy %s): recovered state matches neither prefix %d nor %d of the script",
						killAt, name, acked, acked+1)
				}
				recovered.Close()
			}
		})
	}
}

func equalIDs(a, b []vpindex.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
